package srj_test

// Fleet observability end to end: the /metrics expositions of server
// and router must reparse and carry the shared taxonomy with live
// values, and one request ID must be traceable through every hop —
// router access log, backend access log, failover warning, and the
// error values clients get back.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"log/slog"

	srj "repro"
	"repro/internal/obs"
	"repro/srjtest"
)

// syncBuffer is a goroutine-safe log sink: handlers write from
// request goroutines while the test reads after the fact.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// logLines decodes every JSON log line in the buffer.
func (s *syncBuffer) logLines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(s.String(), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// requestIDs returns the request_id of every log line with the given
// msg ("" matches all).
func requestIDs(t *testing.T, buf *syncBuffer, msg string) []string {
	t.Helper()
	var ids []string
	for _, m := range buf.logLines(t) {
		if msg != "" && m["msg"] != msg {
			continue
		}
		if id, ok := m["request_id"].(string); ok && id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// scrape fetches and parses url's /metrics exposition, failing the
// test on transport, content-type, or format violations.
func scrape(t *testing.T, base string) []obs.ParsedFamily {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("GET /metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(string(raw))
	if err != nil {
		t.Fatalf("exposition does not reparse: %v\n%s", err, raw)
	}
	return fams
}

// sumSamples sums every sample named name (for histograms pass the
// expanded _count/_sum names) across the parsed families. The second
// return reports whether any matched.
func sumSamples(fams []obs.ParsedFamily, name string) (float64, bool) {
	total, found := 0.0, false
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name == name {
				total += s.Value
				found = true
			}
		}
	}
	return total, found
}

// obsFleet is a 2-backend fleet behind a router, every tier serving
// its HTTP surface on a real listener with its own log buffer.
type obsFleet struct {
	routerURL   string
	backendURLs []string
	routerLog   *syncBuffer
	backendLogs []*syncBuffer
	router      *srj.Router
	client      *srj.Client
}

func startObsFleet(t *testing.T, cfg srjtest.Config, n int, maxT int) *obsFleet {
	t.Helper()
	fl := &obsFleet{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		buf := &syncBuffer{}
		srv, err := srj.NewServer(&srj.ServerOptions{
			Datasets: func(name string) ([]srj.Point, []srj.Point, error) {
				return cfg.R, cfg.S, nil
			},
			MaxT:     maxT,
			Logger:   slog.New(slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelInfo})),
			SlowDraw: time.Nanosecond, // every draw logs, so the attribution is testable
			DataDir:  t.TempDir(),     // durability on, so the WAL families are observable
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
		fl.backendLogs = append(fl.backendLogs, buf)
	}
	fl.backendURLs = addrs
	fl.routerLog = &syncBuffer{}
	rt, err := srj.NewRouter(addrs, srj.RouterOptions{
		HTTPClient:    confTransport(t),
		ProbeInterval: -1,
		Logger:        slog.New(slog.NewJSONHandler(fl.routerLog, &slog.HandlerOptions{Level: slog.LevelInfo})),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	fl.router = rt
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	fl.routerURL = rts.URL
	fl.client = srj.NewClientHTTP(rts.URL, confTransport(t))
	return fl
}

// TestMetricsEndToEnd draws through the router's HTTP surface and then
// asserts both tiers' /metrics serve valid exposition carrying the
// shared taxonomy with nonzero values, and that /v1/stats carries the
// store-level fields the satellite adds.
func TestMetricsEndToEnd(t *testing.T) {
	R, S, l := srjtest.Data()
	cfg := srjtest.Config{R: R, S: S, L: l}
	fl := startObsFleet(t, cfg, 2, 100_000)
	ctx := context.Background()
	key := srj.EngineKey{Dataset: "conf", L: l, Seed: 5}
	src := fl.client.Bind(key)

	const drawT = 2000
	if _, err := src.Draw(ctx, srj.Request{T: drawT}); err != nil {
		t.Fatal(err)
	}
	// An update creates a dynamic store on every shard (broadcast) and
	// bumps its generation, so the store families go live.
	if _, err := src.Apply(ctx, srj.Update{InsertR: []srj.Point{{ID: 1 << 28, X: 1, Y: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Draw(ctx, srj.Request{T: drawT}); err != nil {
		t.Fatal(err)
	}

	// Router exposition.
	rf := scrape(t, fl.routerURL)
	if v, ok := sumSamples(rf, "srj_draw_duration_seconds_count"); !ok || v < 2 {
		t.Errorf("router draw histogram count = %g (found %v), want >= 2", v, ok)
	}
	if v, ok := sumSamples(rf, "srj_draw_samples_total"); !ok || v < 2*drawT {
		t.Errorf("router srj_draw_samples_total = %g, want >= %d", v, 2*drawT)
	}
	if v, ok := sumSamples(rf, "srj_requests_total"); !ok || v < 3 {
		t.Errorf("router srj_requests_total = %g, want >= 3", v)
	}
	if v, ok := sumSamples(rf, "srj_router_backend_up"); !ok || v < 1 {
		t.Errorf("srj_router_backend_up sum = %g (found %v), want >= 1 healthy backend", v, ok)
	}
	if _, ok := sumSamples(rf, "srj_router_backend_requests_total"); !ok {
		t.Error("srj_router_backend_requests_total missing from router exposition")
	}

	// Backend expositions, summed across the fleet: wherever the ring
	// sent the draws, the totals must add up.
	var drawCount, samples, builds, stores, gen float64
	var walAppends, lastApplied float64
	for _, u := range fl.backendURLs {
		bf := scrape(t, u)
		v, _ := sumSamples(bf, "srj_draw_duration_seconds_count")
		drawCount += v
		v, _ = sumSamples(bf, "srj_draw_samples_total")
		samples += v
		v, _ = sumSamples(bf, "srj_registry_builds_total")
		builds += v
		v, _ = sumSamples(bf, "srj_stores")
		stores += v
		v, _ = sumSamples(bf, "srj_store_generation")
		gen += v
		v, _ = sumSamples(bf, "srj_wal_appends_total")
		walAppends += v
		v, _ = sumSamples(bf, "srj_store_last_applied_update_id")
		lastApplied += v
	}
	if drawCount < 2 {
		t.Errorf("backend draw histogram counts sum to %g, want >= 2", drawCount)
	}
	if samples < 2*drawT {
		t.Errorf("backend srj_draw_samples_total sum to %g, want >= %d", samples, 2*drawT)
	}
	if builds < 1 {
		t.Errorf("backend srj_registry_builds_total sum to %g, want >= 1", builds)
	}
	if stores != 2 { // the update broadcast creates one store per shard
		t.Errorf("srj_stores sum to %g, want 2", stores)
	}
	if gen < 2 { // generation >= 1 on each shard
		t.Errorf("srj_store_generation sum to %g, want >= 2", gen)
	}
	if walAppends != 2 { // the broadcast wrote one log record per shard
		t.Errorf("srj_wal_appends_total sum to %g, want 2", walAppends)
	}
	if lastApplied != 2 { // the router stamped update ID 1 on both shards
		t.Errorf("srj_store_last_applied_update_id sum to %g, want 2", lastApplied)
	}

	// The JSON surface: router-aggregated /v1/stats lists each shard's
	// store with the backend attributed and the new store-level fields.
	st, err := fl.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Stores) != 2 {
		t.Fatalf("aggregated stats list %d stores, want one per shard: %+v", len(st.Stores), st.Stores)
	}
	for _, info := range st.Stores {
		if info.Backend == "" {
			t.Errorf("aggregated store info missing backend attribution: %+v", info)
		}
		if info.Generation < 1 {
			t.Errorf("store generation = %d, want >= 1", info.Generation)
		}
		if info.Key.Dataset != "conf" {
			t.Errorf("store key = %+v", info.Key)
		}
		// The durability surface rides through the router aggregation:
		// each shard reports the sequenced ID it applied and its live
		// log footprint.
		if info.LastAppliedID != 1 {
			t.Errorf("store last_applied_update_id = %d, want 1: %+v", info.LastAppliedID, info)
		}
		if info.WALSegments < 1 || info.WALBytes <= 0 || info.WALAppends != 1 {
			t.Errorf("store WAL footprint missing from aggregated stats: %+v", info)
		}
	}
}

// TestRequestIDPropagation: a caller-supplied ID survives to the
// server's access and slow-draw logs, and error values carry the ID
// (caller-supplied or server-minted) back to the client.
func TestRequestIDPropagation(t *testing.T) {
	R, S, l := srjtest.Data()
	buf := &syncBuffer{}
	srv, err := srj.NewServer(&srj.ServerOptions{
		Datasets: func(name string) ([]srj.Point, []srj.Point, error) {
			return R, S, nil
		},
		MaxT:     10_000,
		Logger:   slog.New(slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelInfo})),
		SlowDraw: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := srj.NewClientHTTP(ts.URL, confTransport(t))
	src := cl.Bind(srj.EngineKey{Dataset: "conf", L: l, Seed: 3})

	const callerID = "e2e-caller-id-1"
	ctx := srj.WithRequestID(context.Background(), callerID)
	if _, err := src.Draw(ctx, srj.Request{T: 100}); err != nil {
		t.Fatal(err)
	}
	access := requestIDs(t, buf, "request")
	if !contains(access, callerID) {
		t.Errorf("access log does not carry the caller ID %q: %v", callerID, access)
	}
	slow := requestIDs(t, buf, "slow draw")
	if !contains(slow, callerID) {
		t.Errorf("slow-draw log does not carry the caller ID %q: %v", callerID, slow)
	}

	// A rejected draw (T over the cap) carries the caller's ID on the
	// error value.
	_, err = src.Draw(ctx, srj.Request{T: 20_000})
	var apiErr *srj.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("over-cap draw: %v, want *APIError", err)
	}
	if apiErr.RequestID != callerID {
		t.Errorf("APIError.RequestID = %q, want %q", apiErr.RequestID, callerID)
	}
	if !strings.Contains(apiErr.Error(), callerID) {
		t.Errorf("APIError.Error() does not mention the ID: %q", apiErr.Error())
	}

	// Without a caller ID the server mints one; the error still
	// carries it, and it appears in the access log.
	_, err = src.Draw(context.Background(), srj.Request{T: 20_000})
	if !errors.As(err, &apiErr) {
		t.Fatalf("over-cap draw: %v, want *APIError", err)
	}
	if apiErr.RequestID == "" {
		t.Error("server-minted request ID missing from APIError")
	}
	if !contains(requestIDs(t, buf, "request"), apiErr.RequestID) {
		t.Errorf("minted ID %q not in the access log", apiErr.RequestID)
	}
}

// TestRequestIDAcrossFailover: one draw whose home shard dies
// mid-stream. The ID the router minted must appear in the router's
// access log, in its failover warning, and in the access logs of BOTH
// backends the draw touched.
func TestRequestIDAcrossFailover(t *testing.T) {
	R, S, l := srjtest.Data()
	cfg := srjtest.Config{R: R, S: S, L: l}
	key := srj.EngineKey{Dataset: "conf", L: l, Seed: 11}
	var kills atomic.Int32
	fl := startObsFleetWithFlakyHome(t, cfg, 3, key, &kills)
	src := fl.client.Bind(key)
	ctx := context.Background()

	kills.Store(1)
	var got int
	err := src.DrawFunc(ctx, srj.Request{T: 5000, Seed: 123}, func(batch []srj.Pair) error {
		got += len(batch)
		return nil
	})
	if err != nil {
		t.Fatalf("draw with failover: %v", err)
	}
	if kills.Load() >= 1 {
		t.Fatal("fault injector never fired")
	}
	if got != 5000 {
		t.Fatalf("failover delivered %d samples, want 5000", got)
	}

	// The failover warning names the request; its ID is the one the
	// router minted for the whole draw.
	failoverIDs := requestIDs(t, fl.routerLog, "failover")
	if len(failoverIDs) == 0 {
		t.Fatalf("no failover log line with a request_id:\n%s", fl.routerLog.String())
	}
	rid := failoverIDs[0]
	if !contains(requestIDs(t, fl.routerLog, "request"), rid) {
		t.Errorf("failover ID %q missing from the router access log", rid)
	}
	// Both the dying home shard and the shard that finished the draw
	// logged the same ID.
	hops := 0
	for i, buf := range fl.backendLogs {
		if contains(requestIDs(t, buf, "request"), rid) {
			hops++
		} else if fl.backendURLs[i] == fl.router.Locate(key) {
			t.Logf("backend %d (%s) log:\n%s", i, fl.backendURLs[i], buf.String())
		}
	}
	if hops < 2 {
		t.Errorf("request ID %q seen on %d backends, want the failed hop and the failover hop (>= 2)", rid, hops)
	}
}

// startObsFleetWithFlakyHome is startObsFleet with the key's home
// shard wrapped in the mid-stream fault injector.
func startObsFleetWithFlakyHome(t *testing.T, cfg srjtest.Config, n int, key srj.EngineKey, kills *atomic.Int32) *obsFleet {
	t.Helper()
	fl := &obsFleet{}
	addrs := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		buf := &syncBuffer{}
		srv, err := srj.NewServer(&srj.ServerOptions{
			Datasets: func(name string) ([]srj.Point, []srj.Point, error) {
				return cfg.R, cfg.S, nil
			},
			MaxT:   100_000,
			Logger: slog.New(slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelInfo})),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(srv)
		ts.Start()
		t.Cleanup(ts.Close)
		servers[i] = ts
		addrs[i] = ts.URL
		fl.backendLogs = append(fl.backendLogs, buf)
	}
	fl.backendURLs = addrs
	fl.routerLog = &syncBuffer{}
	rt, err := srj.NewRouter(addrs, srj.RouterOptions{
		HTTPClient:    confTransport(t),
		ProbeInterval: -1,
		Logger:        slog.New(slog.NewJSONHandler(fl.routerLog, &slog.HandlerOptions{Level: slog.LevelInfo})),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	fl.router = rt
	home := rt.Locate(key)
	for i, a := range addrs {
		if a == home {
			servers[i].Config.Handler = flakyBackend(t, servers[i].Config.Handler, kills)
		}
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	fl.routerURL = rts.URL
	fl.client = srj.NewClientHTTP(rts.URL, confTransport(t))
	return fl
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
