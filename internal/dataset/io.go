package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// WriteCSV writes points as "id,x,y" lines.
func WriteCSV(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%d,%g,%g\n", p.ID, p.X, p.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses "id,x,y" lines (blank lines and #-comments ignored).
func ReadCSV(r io.Reader) ([]geom.Point, error) {
	var pts []geom.Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("dataset: line %d: want 3 fields, got %d", lineNo, len(parts))
		}
		id, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad id: %w", lineNo, err)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad x: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad y: %w", lineNo, err)
		}
		pts = append(pts, geom.Point{X: x, Y: y, ID: int32(id)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

// binaryMagic guards the binary format against accidental misuse.
const binaryMagic = uint32(0x53524a31) // "SRJ1"

// WriteBinary writes points in a compact little-endian binary format:
// magic, count, then (id int32, x float64, y float64) records.
func WriteBinary(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, binaryMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(pts))); err != nil {
		return err
	}
	for _, p := range pts {
		if err := binary.Write(bw, binary.LittleEndian, p.ID); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.X); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the WriteBinary format.
func ReadBinary(r io.Reader) ([]geom.Point, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %#x", magic)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("dataset: reading count: %w", err)
	}
	const maxPoints = 1 << 32
	if count > maxPoints {
		return nil, fmt.Errorf("dataset: implausible point count %d", count)
	}
	pts := make([]geom.Point, 0, count)
	for i := uint64(0); i < count; i++ {
		var id int32
		var x, y float64
		if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &y); err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		pts = append(pts, geom.Point{X: x, Y: y, ID: id})
	}
	return pts, nil
}

// SaveFile writes pts to path, choosing CSV for ".csv" suffixes and
// the binary format otherwise.
func SaveFile(path string, pts []geom.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		if err := WriteCSV(f, pts); err != nil {
			return err
		}
	} else {
		if err := WriteBinary(f, pts); err != nil {
			return err
		}
	}
	return f.Close()
}

// LoadFile reads pts from path using the extension rule of SaveFile.
func LoadFile(path string) ([]geom.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return ReadCSV(f)
	}
	return ReadBinary(f)
}
