package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestAllGeneratorsBasics(t *testing.T) {
	for _, name := range Names() {
		gen, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 100, 5000} {
				pts := gen(n, 42)
				if len(pts) != n {
					t.Fatalf("n=%d: got %d points", n, len(pts))
				}
				ids := map[int32]bool{}
				for _, p := range pts {
					if p.X < 0 || p.X > Domain || p.Y < 0 || p.Y > Domain {
						t.Fatalf("point %v outside domain", p)
					}
					if math.IsNaN(p.X) || math.IsNaN(p.Y) {
						t.Fatalf("NaN coordinate in %v", p)
					}
					if ids[p.ID] {
						t.Fatalf("duplicate ID %d", p.ID)
					}
					ids[p.ID] = true
				}
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Names() {
		gen, _ := ByName(name)
		a := gen(1000, 7)
		b := gen(1000, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: point %d differs across equal-seed runs", name, i)
			}
		}
		c := gen(1000, 8)
		same := 0
		for i := range a {
			if a[i].X == c[i].X && a[i].Y == c[i].Y {
				same++
			}
		}
		if same > 10 {
			t.Fatalf("%s: different seeds produced %d identical points", name, same)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

// TestDistributionShapes sanity-checks the family-specific skew: the
// clustered families must concentrate mass much more than uniform.
func TestDistributionShapes(t *testing.T) {
	const n = 20000
	occupancy := func(pts []geom.Point) float64 {
		g, err := grid.Build(pts, 100) // 100x100 cells over the domain
		if err != nil {
			t.Fatal(err)
		}
		return float64(g.NumCells())
	}
	uni := occupancy(Uniform(n, 1))
	for _, name := range []string{"castreet", "foursquare", "nyc", "imis"} {
		gen, _ := ByName(name)
		if occ := occupancy(gen(n, 1)); occ >= uni {
			t.Errorf("%s occupies %g cells, expected fewer than uniform's %g (skew missing)", name, occ, uni)
		}
	}
}

// TestTrajectoryCorrelation: consecutive IMIS points of one vessel
// must be close (smooth trajectories).
func TestTrajectoryCorrelation(t *testing.T) {
	pts := IMIS(10000, 3)
	close := 0
	for i := 1; i < 2000; i++ {
		if math.Hypot(pts[i].X-pts[i-1].X, pts[i].Y-pts[i-1].Y) < 50 {
			close++
		}
	}
	if close < 1500 {
		t.Fatalf("only %d/2000 consecutive IMIS points are close; trajectories not smooth", close)
	}
}

func TestNYCSnapping(t *testing.T) {
	pts := NYC(5000, 4)
	// Most points should be within a few units of the 12-unit lattice.
	snapped := 0
	for _, p := range pts {
		dx := math.Abs(p.X - math.Round(p.X/12)*12)
		if dx < 5 {
			snapped++
		}
	}
	if snapped < len(pts)*8/10 {
		t.Fatalf("only %d/%d NYC points near the lattice", snapped, len(pts))
	}
}

func TestSplitRS(t *testing.T) {
	pts := Uniform(10000, 5)
	R, S := SplitRS(pts, 0.5, 9)
	if len(R)+len(S) != len(pts) {
		t.Fatalf("split lost points: %d + %d != %d", len(R), len(S), len(pts))
	}
	if math.Abs(float64(len(R))-5000) > 300 {
		t.Fatalf("unbalanced split: |R| = %d", len(R))
	}
	for i, p := range R {
		if p.ID != int32(i) {
			t.Fatal("R IDs not dense")
		}
	}
	for i, p := range S {
		if p.ID != int32(i) {
			t.Fatal("S IDs not dense")
		}
	}
	// Skewed ratio.
	R2, _ := SplitRS(pts, 0.1, 9)
	if math.Abs(float64(len(R2))-1000) > 150 {
		t.Fatalf("ratio 0.1 split: |R| = %d", len(R2))
	}
}

func TestPrefix(t *testing.T) {
	pts := Uniform(1000, 6)
	for _, f := range []float64{0, 0.2, 0.5, 1.0, 1.5} {
		got := Prefix(pts, f)
		want := int(1000 * math.Min(f, 1))
		if f <= 0 {
			want = 0
		}
		if len(got) != want {
			t.Fatalf("fraction %g: got %d, want %d", f, len(got), want)
		}
		for i, p := range got {
			if p.ID != int32(i) {
				t.Fatal("Prefix IDs not dense")
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Foursquare(500, 7)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("got %d points", len(got))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d: %v != %v", i, got[i], pts[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"1,2\n",   // too few fields
		"a,2,3\n", // bad id
		"1,x,3\n", // bad x
		"1,2,y\n", // bad y
	}
	for _, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", c)
		}
	}
	// Comments and blanks are fine.
	got, err := ReadCSV(bytes.NewBufferString("# header\n\n1,2,3\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("comment handling: %v, %d", err, len(got))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	pts := NYC(1000, 8)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("got %d points", len(got))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("garbage-data")); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := ReadBinary(bytes.NewBuffer(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pts := CaStreet(200, 9)
	for _, name := range []string{"pts.csv", "pts.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, pts); err != nil {
			t.Fatal(err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pts) {
			t.Fatalf("%s: got %d points", name, len(got))
		}
		for i := range pts {
			if got[i] != pts[i] {
				t.Fatalf("%s: point %d differs", name, i)
			}
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file should fail")
	}
}
