// Package dataset synthesizes the four point-set families used by the
// paper's evaluation and provides load/save utilities.
//
// The paper evaluates on four real datasets (CaStreet road MBRs,
// Foursquare POIs, IMIS vessel positions, NYC taxi pick-ups/drop-offs)
// that are not redistributable and reach hundreds of millions of
// points. This package substitutes generators that preserve the
// distributional *shape* those datasets contribute to the experiments
// — skew, clustering, and spatial correlation on the same normalized
// [0, 10000]^2 domain — at sizes that run on one machine:
//
//   - CaStreet:   vertices along a jittered polyline road network
//     (line-like density, strong local correlation).
//   - Foursquare: Zipf-sized Gaussian POI clusters around "city"
//     centers (heavy-tailed cluster skew).
//   - IMIS:       smooth random-waypoint vessel trajectories inside a
//     coastal band (dense correlated runs).
//   - NYC:        hotspot Gaussian mixture snapped to a street lattice
//     plus uniform background noise (extreme hotspot density).
//
// All generators are deterministic in (n, seed).
package dataset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Domain is the normalized coordinate domain used by the paper:
// [0, 10000] x [0, 10000].
const Domain = 10000.0

// Generator produces n deterministic points for a seed.
type Generator func(n int, seed uint64) []geom.Point

// clamp keeps a coordinate inside the domain.
func clamp(v float64) float64 {
	if v < 0 {
		return -v // reflect to keep density near the border
	}
	if v > Domain {
		return 2*Domain - v
	}
	return v
}

func clampPoint(x, y float64, id int32) geom.Point {
	x, y = clamp(x), clamp(y)
	// A double reflection can still escape on extreme outliers.
	x = math.Min(math.Max(x, 0), Domain)
	y = math.Min(math.Max(y, 0), Domain)
	return geom.Point{X: x, Y: y, ID: id}
}

// Uniform scatters points uniformly over the domain; the neutral
// reference workload.
func Uniform(n int, seed uint64) []geom.Point {
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, Domain), Y: r.Range(0, Domain), ID: int32(i)}
	}
	return pts
}

// Gaussian scatters points around the domain center with the given
// relative standard deviation (fraction of the domain side).
func Gaussian(relSigma float64) Generator {
	return func(n int, seed uint64) []geom.Point {
		r := rng.New(seed)
		sigma := relSigma * Domain
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = clampPoint(
				Domain/2+r.NormFloat64()*sigma,
				Domain/2+r.NormFloat64()*sigma,
				int32(i),
			)
		}
		return pts
	}
}

// CaStreet emulates road-network vertex data: a web of polyline roads
// whose vertices carry small jitter. Density concentrates along
// 1-dimensional structures, as in the California road MBR corpus.
func CaStreet(n int, seed uint64) []geom.Point {
	r := rng.New(seed)
	pts := make([]geom.Point, 0, n)
	numRoads := n/400 + 1
	id := int32(0)
	for len(pts) < n {
		// A road starts anywhere and wanders with momentum.
		x, y := r.Range(0, Domain), r.Range(0, Domain)
		dir := r.Range(0, 2*math.Pi)
		segLen := r.Range(20, 80)
		steps := n/numRoads + 1
		for s := 0; s < steps && len(pts) < n; s++ {
			dir += r.NormFloat64() * 0.25 // gentle curvature
			x += math.Cos(dir) * segLen
			y += math.Sin(dir) * segLen
			if x < 0 || x > Domain || y < 0 || y > Domain {
				dir += math.Pi / 2 // bounce back into the domain
				x = math.Min(math.Max(x, 0), Domain)
				y = math.Min(math.Max(y, 0), Domain)
			}
			pts = append(pts, clampPoint(x+r.NormFloat64()*3, y+r.NormFloat64()*3, id))
			id++
		}
	}
	return pts[:n]
}

// Foursquare emulates POI check-in data: Zipf-sized Gaussian clusters
// around city centers over a sparse uniform background.
func Foursquare(n int, seed uint64) []geom.Point {
	r := rng.New(seed)
	numCenters := int(math.Sqrt(float64(n)))/2 + 4
	type center struct {
		x, y, sigma, weight float64
	}
	centers := make([]center, numCenters)
	weights := make([]float64, numCenters)
	for i := range centers {
		// Zipf-like cluster mass: weight ∝ 1/rank^1.1.
		w := 1 / math.Pow(float64(i+1), 1.1)
		centers[i] = center{
			x:     r.Range(0, Domain),
			y:     r.Range(0, Domain),
			sigma: r.Range(0.002, 0.02) * Domain,
		}
		weights[i] = w
	}
	// Cumulative weights for O(log k) cluster selection.
	cum := make([]float64, numCenters)
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		if r.Float64() < 0.05 { // uniform background
			pts[i] = geom.Point{X: r.Range(0, Domain), Y: r.Range(0, Domain), ID: int32(i)}
			continue
		}
		u := r.Float64() * total
		ci := sort.SearchFloat64s(cum, u)
		if ci >= numCenters {
			ci = numCenters - 1
		}
		c := centers[ci]
		pts[i] = clampPoint(c.x+r.NormFloat64()*c.sigma, c.y+r.NormFloat64()*c.sigma, int32(i))
	}
	return pts
}

// IMIS emulates vessel tracking data: smooth random-waypoint
// trajectories confined to a coastal band, producing long correlated
// runs of nearby points.
func IMIS(n int, seed uint64) []geom.Point {
	r := rng.New(seed)
	numVessels := n/2000 + 8
	perVessel := n/numVessels + 1
	pts := make([]geom.Point, 0, n)
	id := int32(0)
	// The "coast" is a sine band across the domain; vessels stay near it.
	coastY := func(x float64) float64 {
		return Domain/2 + 0.25*Domain*math.Sin(3*math.Pi*x/Domain)
	}
	for v := 0; v < numVessels && len(pts) < n; v++ {
		x := r.Range(0, Domain)
		y := coastY(x) + r.NormFloat64()*0.05*Domain
		tx, ty := r.Range(0, Domain), coastY(r.Range(0, Domain))
		speed := r.Range(2, 15)
		for s := 0; s < perVessel && len(pts) < n; s++ {
			dx, dy := tx-x, ty-y
			dist := math.Hypot(dx, dy)
			if dist < speed*2 { // reached waypoint: pick a new one
				tx = r.Range(0, Domain)
				ty = coastY(tx) + r.NormFloat64()*0.05*Domain
				dx, dy = tx-x, ty-y
				dist = math.Hypot(dx, dy)
			}
			if dist > 0 {
				x += dx / dist * speed
				y += dy / dist * speed
			}
			pts = append(pts, clampPoint(x+r.NormFloat64(), y+r.NormFloat64(), id))
			id++
		}
	}
	return pts[:n]
}

// NYC emulates taxi GPS data: a mixture of intense hotspots snapped to
// a street lattice with uniform background noise.
func NYC(n int, seed uint64) []geom.Point {
	r := rng.New(seed)
	const gridStep = 12.0 // street lattice spacing
	numHotspots := 40
	type hotspot struct{ x, y, sigma float64 }
	hs := make([]hotspot, numHotspots)
	for i := range hs {
		hs[i] = hotspot{
			x:     r.Range(0.1*Domain, 0.9*Domain),
			y:     r.Range(0.1*Domain, 0.9*Domain),
			sigma: r.Range(0.005, 0.04) * Domain,
		}
	}
	snap := func(v float64) float64 {
		return math.Round(v/gridStep)*gridStep + r.NormFloat64()*1.5
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		var x, y float64
		if r.Float64() < 0.1 { // background trips
			x, y = r.Range(0, Domain), r.Range(0, Domain)
		} else {
			h := hs[r.Intn(numHotspots)]
			x = h.x + r.NormFloat64()*h.sigma
			y = h.y + r.NormFloat64()*h.sigma
		}
		pts[i] = clampPoint(snap(x), snap(y), int32(i))
	}
	return pts
}

// Named maps the paper's dataset names to their generators.
var Named = map[string]Generator{
	"castreet":   CaStreet,
	"foursquare": Foursquare,
	"imis":       IMIS,
	"nyc":        NYC,
	"uniform":    Uniform,
	"gaussian":   Gaussian(0.15),
}

// Names lists the generator names in the paper's order followed by
// the synthetic extras.
func Names() []string {
	return []string{"castreet", "foursquare", "imis", "nyc", "uniform", "gaussian"}
}

// ByName returns the named generator.
func ByName(name string) (Generator, error) {
	g, ok := Named[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
	}
	return g, nil
}

// SplitRS randomly assigns each point to R with probability ratio
// (the paper assigns each point to R or S at random; by default
// |R| ≈ |S|, i.e. ratio = 0.5). IDs are reassigned so that both sides
// are densely numbered from 0.
func SplitRS(pts []geom.Point, ratio float64, seed uint64) (R, S []geom.Point) {
	r := rng.New(seed)
	for _, p := range pts {
		if r.Float64() < ratio {
			p.ID = int32(len(R))
			R = append(R, p)
		} else {
			p.ID = int32(len(S))
			S = append(S, p)
		}
	}
	return R, S
}

// Prefix returns the first fraction of the points with fresh IDs —
// the scaling knob of the paper's Fig. 4/Fig. 7 experiments (random
// sampling of the dataset; our generators are already shuffled in
// construction order, except trajectories, so we stride instead).
func Prefix(pts []geom.Point, fraction float64) []geom.Point {
	if fraction >= 1 {
		return pts
	}
	if fraction <= 0 {
		return nil
	}
	k := int(float64(len(pts)) * fraction)
	if k == 0 {
		return nil
	}
	// Stride sampling keeps spatial coverage for trajectory-like
	// datasets where prefixes would cover only some vessels.
	stride := float64(len(pts)) / float64(k)
	out := make([]geom.Point, 0, k)
	for i := 0; i < k; i++ {
		p := pts[int(float64(i)*stride)]
		p.ID = int32(i)
		out = append(out, p)
	}
	return out
}
