package dataset

// Direct tests of the file I/O layer: CSV and binary round-trips,
// the malformed-input error paths of each reader, and a
// SaveFile→LoadFile property test across both formats.

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func randomPts(seed uint64, n int) []geom.Point {
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			ID: int32(i) - int32(n/2), // negative IDs must survive too
			X:  r.Range(-1e9, 1e9),
			Y:  r.Range(-1e9, 1e9),
		}
	}
	return pts
}

func samePoints(t *testing.T, got, want []geom.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestCSVRoundTripRandom(t *testing.T) {
	pts := randomPts(1, 500)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, got, pts)
}

func TestCSVReadSkipsBlanksAndComments(t *testing.T) {
	in := "# header comment\n\n1, 2.5, 3.5\n\n  # indented comment\n2,4,5\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []geom.Point{{ID: 1, X: 2.5, Y: 3.5}, {ID: 2, X: 4, Y: 5}}
	samePoints(t, got, want)
}

func TestCSVMalformed(t *testing.T) {
	cases := map[string]string{
		"too few fields":  "1,2\n",
		"too many fields": "1,2,3,4\n",
		"bad id":          "one,2,3\n",
		"fractional id":   "1.5,2,3\n",
		"bad x":           "1,nope,3\n",
		"bad y":           "1,2,nope\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(in)); err == nil {
				t.Fatalf("ReadCSV(%q) accepted", in)
			}
		})
	}
}

func TestBinaryRoundTripSizes(t *testing.T) {
	for _, n := range []int{0, 1, 1000} {
		pts := randomPts(2, n)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, pts); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		samePoints(t, got, pts)
	}
}

func TestBinaryPreservesExtremeFloats(t *testing.T) {
	pts := []geom.Point{
		{ID: 1, X: math.MaxFloat64, Y: -math.MaxFloat64},
		{ID: 2, X: math.SmallestNonzeroFloat64, Y: 0},
		{ID: -3, X: math.Copysign(0, -1), Y: 1e-300},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if got[i].ID != pts[i].ID ||
			math.Float64bits(got[i].X) != math.Float64bits(pts[i].X) ||
			math.Float64bits(got[i].Y) != math.Float64bits(pts[i].Y) {
			t.Fatalf("point %d: %v != %v (bit-exact)", i, got[i], pts[i])
		}
	}
}

func TestBinaryMalformed(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, randomPts(3, 10)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	t.Run("empty input", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[0] ^= 0xFF
		if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(good[:6])); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("truncated records", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(good[:len(good)-5])); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("implausible count", func(t *testing.T) {
		// Claim 2^40 records with no data behind the claim: the
		// reader must refuse rather than allocate.
		var buf bytes.Buffer
		WriteBinary(&buf, nil)
		b := buf.Bytes()
		b[4+5] = 1 // count is little-endian at offset 4; set bit 40
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("csv is not binary", func(t *testing.T) {
		if _, err := ReadBinary(strings.NewReader("1,2,3\n")); err == nil {
			t.Fatal("accepted")
		}
	})
}

// TestSaveLoadProperty: for random point sets and both on-disk
// formats, LoadFile(SaveFile(pts)) == pts.
func TestSaveLoadProperty(t *testing.T) {
	dir := t.TempDir()
	for trial := uint64(0); trial < 6; trial++ {
		n := int(trial * 137 % 700) // includes the empty set
		pts := randomPts(trial+10, n)
		for _, name := range []string{"pts.csv", "pts.bin"} {
			path := filepath.Join(dir, name)
			if err := SaveFile(path, pts); err != nil {
				t.Fatal(err)
			}
			got, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			samePoints(t, got, pts)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}
