package obs

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// goldenSet builds the fixed MetricSet testdata/golden.prom renders.
func goldenSet() *MetricSet {
	m := NewMetricSet()
	m.Counter(MetricRequests, "API requests by outcome code.", 3, L(LabelCode, "ok"))
	m.Counter(MetricRequests, "API requests by outcome code.", 2, L(LabelCode, "bad_request"))
	m.Gauge(MetricRegistryEntries, "Resident engines.", 2)
	m.Histogram(MetricDrawDuration, "Draw latency.",
		HistogramSnapshot{Bounds: []float64{0.1, 0.5}, Counts: []uint64{1, 2}, Sum: 1.4, Count: 4},
		L(LabelAlgorithm, "bbst"))
	m.Gauge("srj_test_escape", "Help with \\ backslash\nand newline.", 1,
		L("value", "a\"b\\c\nd"))
	return m
}

// TestGoldenExposition pins the exact rendered bytes: family sort
// order, cumulative buckets, +Inf, escaping. A diff here is a wire
// format change and should be a conscious one.
func TestGoldenExposition(t *testing.T) {
	var b strings.Builder
	if _, err := goldenSet().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden.prom")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("exposition drifted from testdata/golden.prom:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestGoldenRoundTrip: the golden exposition reparses, escapes
// included.
func TestGoldenRoundTrip(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden.prom")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	esc, ok := byName["srj_test_escape"]
	if !ok || len(esc.Samples) != 1 {
		t.Fatalf("srj_test_escape missing: %+v", byName)
	}
	if got := esc.Samples[0].Labels[0].Value; got != "a\"b\\c\nd" {
		t.Errorf("escaped label round-trip = %q", got)
	}
	hist := byName[MetricDrawDuration]
	if hist.Type != "histogram" || len(hist.Samples) != 5 {
		t.Errorf("histogram family parsed wrong: %+v", hist)
	}
}

func TestCounterDuplicateSeriesSum(t *testing.T) {
	m := NewMetricSet()
	m.Counter("x_total", "h", 1, L("code", "ok"))
	m.Counter("x_total", "h", 2, L("code", "ok"))
	var b strings.Builder
	m.WriteTo(&b)
	if !strings.Contains(b.String(), `x_total{code="ok"} 3`) {
		t.Errorf("duplicate counter series must sum:\n%s", b.String())
	}
}

func TestGaugeDuplicateSeriesOverwrites(t *testing.T) {
	m := NewMetricSet()
	m.Gauge("x", "h", 1)
	m.Gauge("x", "h", 7)
	var b strings.Builder
	m.WriteTo(&b)
	if !strings.Contains(b.String(), "x 7\n") {
		t.Errorf("duplicate gauge series must keep the latest value:\n%s", b.String())
	}
}

func TestHistogramDuplicateSeriesMerges(t *testing.T) {
	m := NewMetricSet()
	s := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{1}, Sum: 0.5, Count: 1}
	m.Histogram("x_seconds", "h", s)
	m.Histogram("x_seconds", "h", s)
	var b strings.Builder
	m.WriteTo(&b)
	if !strings.Contains(b.String(), "x_seconds_count 2") {
		t.Errorf("duplicate histogram series must merge:\n%s", b.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a family under another kind must panic")
		}
	}()
	m := NewMetricSet()
	m.Counter("x_total", "h", 1)
	m.Gauge("x_total", "h", 1)
}

func TestInvalidMetricNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name must panic")
		}
	}()
	NewMetricSet().Counter("1bad", "h", 1)
}

func TestHandler(t *testing.T) {
	h := Handler(func(m *MetricSet) {
		m.Gauge(MetricUptime, "Process uptime.", 12.5)
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	fams, err := ParseExposition(rec.Body.String())
	if err != nil {
		t.Fatalf("handler output does not reparse: %v\n%s", err, rec.Body.String())
	}
	if len(fams) != 1 || fams[0].Name != MetricUptime || fams[0].Samples[0].Value != 12.5 {
		t.Errorf("parsed %+v", fams)
	}
}
