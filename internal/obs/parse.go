package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsedSample is one sample line of an exposition.
type ParsedSample struct {
	Name   string
	Labels []Label
	Value  float64
}

// ParsedFamily is one metric family of an exposition.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParseExposition parses Prometheus text exposition format 0.0.4 and
// enforces the invariants the renderer promises: HELP/TYPE lines
// precede their samples, no family or series appears twice, every
// sample parses. It exists for the round-trip tests (obs unit tests
// and the e2e /metrics assertions), not as a general scrape client.
func ParseExposition(text string) ([]ParsedFamily, error) {
	var (
		fams  []ParsedFamily
		index = map[string]int{} // family name → fams index
		seen  = map[string]bool{}
		cur   = -1 // index of the family whose block we're inside
	)
	famFor := func(name string, line int) (*ParsedFamily, error) {
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if i, ok := index[trimmed]; ok && fams[i].Type == "histogram" {
					base = trimmed
				}
				break
			}
		}
		i, ok := index[base]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q before any HELP/TYPE for %q", line, name, base)
		}
		return &fams[i], nil
	}
	for n, raw := range strings.Split(text, "\n") {
		line := n + 1
		s := strings.TrimRight(raw, " \t")
		if s == "" {
			continue
		}
		switch {
		case strings.HasPrefix(s, "# HELP "):
			rest := strings.TrimPrefix(s, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if _, ok := index[name]; ok {
				return nil, fmt.Errorf("line %d: duplicate family %q", line, name)
			}
			index[name] = len(fams)
			cur = len(fams)
			fams = append(fams, ParsedFamily{Name: name, Help: help})
		case strings.HasPrefix(s, "# TYPE "):
			rest := strings.TrimPrefix(s, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE line", line)
			}
			i, exists := index[name]
			if exists && fams[i].Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
			}
			if exists && len(fams[i].Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %q after its samples", line, name)
			}
			if !exists {
				index[name] = len(fams)
				i = len(fams)
				fams = append(fams, ParsedFamily{Name: name})
			}
			fams[i].Type = typ
			cur = i
		case strings.HasPrefix(s, "#"):
			// Other comments are legal and ignored.
		default:
			sm, err := parseSampleLine(s)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			f, err := famFor(sm.Name, line)
			if err != nil {
				return nil, err
			}
			if cur < 0 || fams[cur].Name != f.Name {
				return nil, fmt.Errorf("line %d: sample %q outside its family block %q", line, sm.Name, f.Name)
			}
			series := sm.Name + renderLabels(sm.Labels)
			if seen[series] {
				return nil, fmt.Errorf("line %d: duplicate series %s", line, series)
			}
			seen[series] = true
			f.Samples = append(f.Samples, sm)
		}
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %q has HELP but no TYPE", f.Name)
		}
		if len(f.Samples) == 0 {
			return nil, fmt.Errorf("family %q has no samples", f.Name)
		}
	}
	return fams, nil
}

// parseSampleLine parses `name{l="v",...} value` (timestamp suffixes
// are not rendered by this package and not accepted).
func parseSampleLine(s string) (ParsedSample, error) {
	var sm ParsedSample
	i := 0
	for i < len(s) && s[i] != '{' && s[i] != ' ' {
		i++
	}
	sm.Name = s[:i]
	if !validMetricName(sm.Name) {
		return sm, fmt.Errorf("invalid metric name %q", sm.Name)
	}
	if i < len(s) && s[i] == '{' {
		j := strings.IndexByte(s[i:], '}')
		if j < 0 {
			return sm, fmt.Errorf("unterminated label set")
		}
		labels, err := parseLabels(s[i+1 : i+j])
		if err != nil {
			return sm, err
		}
		sm.Labels = labels
		i += j + 1
	}
	val := strings.TrimSpace(s[i:])
	if val == "" {
		return sm, fmt.Errorf("missing value")
	}
	v, err := parseValue(val)
	if err != nil {
		return sm, fmt.Errorf("bad value %q: %w", val, err)
	}
	sm.Value = v
	return sm, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses the inside of a {...} label set, undoing the
// renderer's escaping.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=': %q", s)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		s = s[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in label %q", name)
				}
				i++
				switch s[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[i], name)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		out = append(out, Label{Name: name, Value: b.String()})
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}
