package obs

import "sync"

// CounterVec is a push-side counter family over one label whose value
// domain is bounded by construction (outcome codes, algorithm names —
// the metriclabel analyzer rejects unbounded feeds). The map grows to
// the domain size and no further, so the mutex is uncontended after
// warm-up... but the hot paths still only touch it once per request.
type CounterVec struct {
	mu sync.Mutex
	m  map[string]*counterCell
}

type counterCell struct{ v uint64 }

// NewCounterVec returns an empty vec.
func NewCounterVec() *CounterVec {
	return &CounterVec{m: make(map[string]*counterCell)}
}

// Add increments the series for the given label value by delta.
func (c *CounterVec) Add(value string, delta uint64) {
	c.mu.Lock()
	cell, ok := c.m[value]
	if !ok {
		cell = &counterCell{}
		c.m[value] = cell
	}
	cell.v += delta
	c.mu.Unlock()
}

// Inc increments the series for the given label value by one.
func (c *CounterVec) Inc(value string) { c.Add(value, 1) }

// Each calls fn for every (label value, count) pair. Iteration order
// is unspecified; MetricSet sorts at render time.
func (c *CounterVec) Each(fn func(value string, count uint64)) {
	c.mu.Lock()
	type kv struct {
		k string
		v uint64
	}
	pairs := make([]kv, 0, len(c.m))
	for k, cell := range c.m {
		pairs = append(pairs, kv{k, cell.v})
	}
	c.mu.Unlock()
	for _, p := range pairs {
		fn(p.k, p.v)
	}
}

// HistogramVec is a push-side histogram family over one bounded
// label. Cells are created under the mutex on first sight of a label
// value; Observe on an existing cell is lock-free after the lookup.
type HistogramVec struct {
	bounds []float64
	mu     sync.Mutex
	m      map[string]*Histogram
}

// NewHistogramVec returns an empty vec over the given bucket bounds.
func NewHistogramVec(bounds []float64) *HistogramVec {
	return &HistogramVec{bounds: bounds, m: make(map[string]*Histogram)}
}

// With returns (creating if needed) the histogram for a label value.
// Callers on hot paths should hold the returned *Histogram rather
// than calling With per request when the label is fixed.
func (h *HistogramVec) With(value string) *Histogram {
	h.mu.Lock()
	hist, ok := h.m[value]
	if !ok {
		hist = NewHistogram(h.bounds)
		h.m[value] = hist
	}
	h.mu.Unlock()
	return hist
}

// Observe records v in the series for the given label value.
func (h *HistogramVec) Observe(value string, v float64) { h.With(value).Observe(v) }

// Each calls fn for every (label value, snapshot) pair.
func (h *HistogramVec) Each(fn func(value string, snap HistogramSnapshot)) {
	h.mu.Lock()
	type kv struct {
		k string
		h *Histogram
	}
	pairs := make([]kv, 0, len(h.m))
	for k, hist := range h.m {
		pairs = append(pairs, kv{k, hist})
	}
	h.mu.Unlock()
	for _, p := range pairs {
		fn(p.k, p.h.Snapshot())
	}
}
