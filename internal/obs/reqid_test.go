package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNewRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
		if sanitizeRequestID(id) != id {
			t.Fatalf("minted ID %q does not survive its own sanitizer", id)
		}
	}
}

func TestEnsureRequestIDMintsAndWritesBack(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	id := EnsureRequestID(r)
	if id == "" {
		t.Fatal("no ID minted")
	}
	if got := r.Header.Get(RequestIDHeader); got != id {
		t.Errorf("header not written back: %q vs %q", got, id)
	}
}

func TestEnsureRequestIDAcceptsSaneCaller(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	r.Header.Set(RequestIDHeader, "caller-chose-this-1")
	if id := EnsureRequestID(r); id != "caller-chose-this-1" {
		t.Errorf("sane caller ID replaced: %q", id)
	}
}

func TestSanitizeRequestIDRejects(t *testing.T) {
	bad := []string{
		"",
		strings.Repeat("x", maxRequestIDLen+1),
		"has space",
		"log\ninjection",
		"tab\there",
		`quote"`,
		`back\slash`,
		"ctrl\x01char",
		"non-ascii-é",
	}
	for _, id := range bad {
		if got := sanitizeRequestID(id); got != "" {
			t.Errorf("sanitize(%q) = %q, want rejection", id, got)
		}
	}
	if got := sanitizeRequestID("ok-id_123"); got != "ok-id_123" {
		t.Errorf("sane ID rejected: %q", got)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := WithRequestID(context.Background(), "abc-1")
	if RequestIDFrom(ctx) != "abc-1" {
		t.Error("ctx round trip failed")
	}
	if RequestIDFrom(context.Background()) != "" {
		t.Error("empty ctx must yield empty ID")
	}
}

func TestStatusRecorder(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := &StatusRecorder{ResponseWriter: rec}
	sr.Write([]byte("x"))
	if sr.Status != 200 {
		t.Errorf("implicit status = %d, want 200", sr.Status)
	}
	rec2 := httptest.NewRecorder()
	sr2 := &StatusRecorder{ResponseWriter: rec2}
	sr2.WriteHeader(404)
	sr2.WriteHeader(500) // first write wins, like net/http
	if sr2.Status != 404 {
		t.Errorf("Status = %d, want first WriteHeader to win", sr2.Status)
	}
	if sr2.Unwrap() != rec2 {
		t.Error("Unwrap must expose the underlying writer")
	}
}
