package obs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestRoundTripProperty renders seeded-random metric sets and asserts
// the parser recovers every series exactly: names, labels (nasty
// characters included), values, and histogram bucket/sum/count
// structure. This is the contract GET /metrics rests on — whatever
// the collectors assemble, the exposition must reparse.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		m := NewMetricSet()
		type expect struct {
			name   string
			labels []Label
			kind   familyKind
			value  float64
			snap   HistogramSnapshot
		}
		var expects []expect
		seen := map[string]bool{}
		nFam := 1 + rng.Intn(6)
		for f := 0; f < nFam; f++ {
			name := fmt.Sprintf("srj_prop_%c_%d", 'a'+rng.Intn(26), rng.Intn(100))
			if seen[name] {
				continue
			}
			seen[name] = true
			kind := familyKind(rng.Intn(3))
			nSeries := 1 + rng.Intn(3)
			used := map[string]bool{}
			for s := 0; s < nSeries; s++ {
				labels := randomLabels(rng)
				key := renderLabels(labels)
				if used[key] {
					continue
				}
				used[key] = true
				switch kind {
				case kindCounter:
					v := float64(rng.Intn(1_000_000))
					m.Counter(name, "help for "+name, v, labels...)
					expects = append(expects, expect{name: name, labels: labels, kind: kind, value: v})
				case kindGauge:
					v := (rng.Float64() - 0.5) * 1e6
					m.Gauge(name, "help for "+name, v, labels...)
					expects = append(expects, expect{name: name, labels: labels, kind: kind, value: v})
				case kindHistogram:
					snap := randomSnapshot(rng)
					m.Histogram(name, "help for "+name, snap, labels...)
					expects = append(expects, expect{name: name, labels: labels, kind: kind, snap: snap})
				}
			}
		}
		var b strings.Builder
		if _, err := m.WriteTo(&b); err != nil {
			t.Fatalf("iter %d: render: %v", iter, err)
		}
		fams, err := ParseExposition(b.String())
		if err != nil {
			t.Fatalf("iter %d: output does not reparse: %v\n%s", iter, err, b.String())
		}
		byName := map[string]ParsedFamily{}
		for _, f := range fams {
			byName[f.Name] = f
		}
		for _, e := range expects {
			f, ok := byName[e.name]
			if !ok {
				t.Fatalf("iter %d: family %s lost in round trip", iter, e.name)
			}
			switch e.kind {
			case kindCounter, kindGauge:
				v, ok := findSample(f, e.name, e.labels)
				if !ok {
					t.Fatalf("iter %d: series %s%s lost", iter, e.name, renderLabels(e.labels))
				}
				if v != e.value && !(math.IsNaN(v) && math.IsNaN(e.value)) {
					t.Fatalf("iter %d: %s%s = %g, want %g", iter, e.name, renderLabels(e.labels), v, e.value)
				}
			case kindHistogram:
				checkHistogramSeries(t, iter, f, e.name, e.labels, e.snap)
			}
		}
	}
}

// randomLabels draws 0–2 labels with values spanning the escape-worthy
// character set.
func randomLabels(rng *rand.Rand) []Label {
	alphabet := []rune(`abc XYZ 0-9 "quote" \slash` + "\nnewline\ttab é✓")
	n := rng.Intn(3)
	var out []Label
	names := []string{"algorithm", "code", "backend", "reason", "extra"}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	for i := 0; i < n; i++ {
		var v strings.Builder
		for j := rng.Intn(12); j >= 0; j-- {
			v.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		out = append(out, Label{Name: names[i], Value: v.String()})
	}
	// The renderer emits labels in insertion order; sort so identical
	// sets always hash to the same series key.
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// randomSnapshot draws a small histogram with ascending bounds.
func randomSnapshot(rng *rand.Rand) HistogramSnapshot {
	n := 1 + rng.Intn(5)
	bounds := make([]float64, n)
	counts := make([]uint64, n)
	last := 0.0
	var total uint64
	for i := range bounds {
		last += 0.001 + rng.Float64()
		bounds[i] = last
		counts[i] = uint64(rng.Intn(50))
		total += counts[i]
	}
	total += uint64(rng.Intn(10)) // +Inf bucket
	return HistogramSnapshot{Bounds: bounds, Counts: counts, Sum: rng.Float64() * 100, Count: total}
}

func findSample(f ParsedFamily, name string, labels []Label) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name == name && labelsEqual(s.Labels, labels) {
			return s.Value, true
		}
	}
	return 0, false
}

// checkHistogramSeries asserts the parsed family contains the
// cumulative buckets, +Inf, _sum, and _count the snapshot dictates.
func checkHistogramSeries(t *testing.T, iter int, f ParsedFamily, name string, labels []Label, snap HistogramSnapshot) {
	t.Helper()
	var cum uint64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		le := append(append([]Label(nil), labels...), Label{Name: "le", Value: formatValue(bound)})
		v, ok := findSample(f, name+"_bucket", le)
		if !ok || v != float64(cum) {
			t.Fatalf("iter %d: bucket %s le=%s = %g,%v want %d", iter, name, formatValue(bound), v, ok, cum)
		}
	}
	inf := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
	if v, ok := findSample(f, name+"_bucket", inf); !ok || v != float64(snap.Count) {
		t.Fatalf("iter %d: +Inf bucket = %g,%v want %d", iter, v, ok, snap.Count)
	}
	if v, ok := findSample(f, name+"_sum", labels); !ok || math.Abs(v-snap.Sum) > math.Abs(snap.Sum)*1e-12 {
		t.Fatalf("iter %d: _sum = %g,%v want %g", iter, v, ok, snap.Sum)
	}
	if v, ok := findSample(f, name+"_count", labels); !ok || v != float64(snap.Count) {
		t.Fatalf("iter %d: _count = %g,%v want %d", iter, v, ok, snap.Count)
	}
}
