package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"sync/atomic"
)

// RequestIDHeader carries the request ID across every hop: client →
// router → backend server, and back on responses (including error
// responses), so one grep correlates the whole path of a draw.
const RequestIDHeader = "X-SRJ-Request-ID"

// maxRequestIDLen caps caller-supplied IDs so a hostile client can't
// bloat logs or headers.
const maxRequestIDLen = 128

type ctxKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// idPrefix and idCounter mint process-unique request IDs without a
// clock or a per-request rand read: an 8-byte random process prefix
// plus a monotone counter.
var (
	idPrefix  = func() string { var b [8]byte; rand.Read(b[:]); return hex.EncodeToString(b[:]) }()
	idCounter atomic.Uint64
)

// NewRequestID mints a process-unique request ID.
func NewRequestID() string {
	return idPrefix + "-" + strconv.FormatUint(idCounter.Add(1), 16)
}

// EnsureRequestID returns the request's ID, minting one if the caller
// did not supply a (sane) one, and writes it back onto r.Header so a
// proxy forwarding r's headers propagates it downstream.
func EnsureRequestID(r *http.Request) string {
	id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
	if id == "" {
		id = NewRequestID()
	}
	r.Header.Set(RequestIDHeader, id)
	return id
}

// sanitizeRequestID rejects caller-supplied IDs that could inject
// into logs or headers: too long, or containing anything outside
// printable non-space ASCII.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' || id[i] == '"' || id[i] == '\\' {
			return ""
		}
	}
	return id
}

// StatusRecorder wraps a ResponseWriter to expose the status code
// after the handler ran, for access logging and outcome counting. It
// forwards Flush and exposes Unwrap so http.ResponseController keeps
// reaching the underlying writer (the streaming path sets per-frame
// write deadlines through it).
type StatusRecorder struct {
	http.ResponseWriter
	Status int
}

// WriteHeader records the status and forwards.
func (s *StatusRecorder) WriteHeader(code int) {
	if s.Status == 0 {
		s.Status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

// Write forwards, defaulting the recorded status to 200 like net/http.
func (s *StatusRecorder) Write(p []byte) (int, error) {
	if s.Status == 0 {
		s.Status = http.StatusOK
	}
	return s.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer if it flushes.
func (s *StatusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (s *StatusRecorder) Unwrap() http.ResponseWriter { return s.ResponseWriter }
