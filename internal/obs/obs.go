// Package obs is the fleet's one observability layer: a stdlib-only
// metrics core (the module vendors nothing, like internal/lint) that
// renders Prometheus text exposition format, plus the request-ID
// tracing the serving tiers thread through every hop.
//
// The design splits metrics into two halves:
//
//   - Push: Histogram, CounterVec, and HistogramVec are lock-free (or
//     near-lock-free) accumulators the hot paths write into — one
//     histogram observation per finished request, never per rejection
//     trial (the PR 5 lesson: two clock reads per trial measurably
//     slowed the sampler, so per-trial instrumentation is banned from
//     the draw loop).
//   - Pull: a MetricSet is assembled fresh at each scrape from the
//     stats snapshots the subsystems already keep (registry counters,
//     backend health flags, store generations), then rendered. No
//     global registry, no double bookkeeping, and counters stay
//     monotonic because the underlying atomics are.
//
// Metric and label names are part of one fleet-wide taxonomy (the
// Metric*/Label* constants): srjserver and srjrouter export the same
// shapes, so a single scrape config and dashboard watches every tier.
// Label cardinality is bounded by construction — algorithm, code,
// backend, reason — and the metriclabel analyzer (internal/lint)
// rejects label values fed from unbounded sources such as dataset
// names or request fields.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served
// by GET /metrics.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// The fleet-wide metric taxonomy. srjserver and srjrouter both export
// srj_draw_duration_seconds and srj_requests_total, so one dashboard
// aggregates across tiers; the registry/store/router families appear
// on the tier that owns the state. Per-dataset detail deliberately
// does NOT appear here — dataset names are unbounded label input, and
// belong on the JSON surface (/v1/stats) where cardinality is free.
const (
	// MetricDrawDuration is a histogram of full draw-request latency,
	// labeled by algorithm on the server and unlabeled on the router
	// (which sees every algorithm through one proxy path).
	MetricDrawDuration = "srj_draw_duration_seconds"
	// MetricDrawSamples counts join samples delivered to clients.
	MetricDrawSamples = "srj_draw_samples_total"
	// MetricAcceptanceRate is the paper's load-bearing performance
	// signal: accepted samples over rejection trials, per algorithm,
	// across the resident engines.
	MetricAcceptanceRate = "srj_acceptance_rate"
	// MetricRequests counts API requests by outcome code.
	MetricRequests = "srj_requests_total"
	// MetricUptime is process uptime in seconds.
	MetricUptime = "srj_uptime_seconds"

	MetricRegistryHits          = "srj_registry_hits_total"
	MetricRegistryMisses        = "srj_registry_misses_total"
	MetricRegistryBuilds        = "srj_registry_builds_total"
	MetricRegistryEvictions     = "srj_registry_evictions_total"
	MetricRegistryEntries       = "srj_registry_entries"
	MetricRegistryBytes         = "srj_registry_bytes"
	MetricRegistryBudget        = "srj_registry_budget_bytes"
	MetricRegistryBuildDuration = "srj_registry_build_duration_seconds"

	MetricStores = "srj_stores"
	// MetricStoreGeneration is the highest current generation across
	// the process's dynamic stores (per-store detail carries dataset
	// names and lives in /v1/stats instead).
	MetricStoreGeneration    = "srj_store_generation"
	MetricStoreDeltaFraction = "srj_store_delta_fraction"
	MetricStorePendingOps    = "srj_store_pending_ops"
	MetricStoreRebuilds      = "srj_store_rebuilds_total"
	// MetricStoreInPlaceOps counts operations absorbed by in-place
	// index maintenance. In steady churn it grows while
	// srj_store_rebuilds_total stays flat — the two together are the
	// dashboard signal that stores are on the Õ(ops) write path.
	MetricStoreInPlaceOps = "srj_store_inplace_ops_total"

	// The durability family (internal/wal). All key-free aggregates
	// over the process's persisted stores, like the store family:
	// counters sum per-store counters (stores are never dropped from
	// the map, so the sums are monotonic); segments/bytes are gauges —
	// snapshot pruning legitimately shrinks them.
	MetricWALAppends   = "srj_wal_appends_total"
	MetricWALSyncs     = "srj_wal_syncs_total"
	MetricWALSnapshots = "srj_wal_snapshots_total"
	MetricWALSegments  = "srj_wal_segments"
	MetricWALBytes     = "srj_wal_bytes"
	// MetricStoreLastApplied is the highest last-applied update ID
	// across stores — the fleet-convergence signal: after a broadcast,
	// every shard's value agrees.
	MetricStoreLastApplied = "srj_store_last_applied_update_id"
	// MetricStorePersistErrors counts snapshot failures across the
	// process's stores — the alertable form of the /v1/stats
	// last_persist_err field (and the /healthz degradation signal): a
	// nonzero rate means a shard is serving from a log it can no
	// longer prune.
	MetricStorePersistErrors = "srj_store_persist_errors_total"

	MetricRouterBackendUp       = "srj_router_backend_up"
	MetricRouterBackendRequests = "srj_router_backend_requests_total"
	MetricRouterBackendFailures = "srj_router_backend_failures_total"
	MetricRouterFailovers       = "srj_router_failovers_total"
)

// The bounded label names of the taxonomy.
const (
	LabelAlgorithm = "algorithm" // validated against the known-algorithm list
	LabelCode      = "code"      // a server.Code* outcome code
	LabelBackend   = "backend"   // a backend address (admin-bounded membership)
	LabelReason    = "reason"    // eviction reason: "budget" or "manual"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// L constructs a Label. Label values must come from bounded domains
// (the metriclabel analyzer enforces this at build time).
func L(name, value string) Label { return Label{Name: name, Value: value} }

// familyKind is the TYPE of a metric family.
type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// sample is one series within a family.
type sample struct {
	labels []Label
	value  float64           // counter/gauge
	snap   HistogramSnapshot // histogram
}

// family is one metric family: name, help, kind, series.
type family struct {
	name    string
	help    string
	kind    familyKind
	samples []sample
}

// MetricSet is one scrape's worth of metrics, assembled fresh per
// /metrics request from live stats snapshots and rendered with
// WriteTo. It is not safe for concurrent use — each scrape builds its
// own.
type MetricSet struct {
	families map[string]*family
}

// NewMetricSet returns an empty set.
func NewMetricSet() *MetricSet {
	return &MetricSet{families: make(map[string]*family)}
}

// Counter adds one counter series. Adding the same (name, labels)
// series twice sums the values, so contributors never produce the
// duplicate series the exposition format forbids.
func (m *MetricSet) Counter(name, help string, value float64, labels ...Label) {
	f := m.family(name, help, kindCounter)
	if s := f.find(labels); s != nil {
		s.value += value
		return
	}
	f.samples = append(f.samples, sample{labels: labels, value: value})
}

// Gauge adds one gauge series. A repeated (name, labels) series keeps
// the latest value.
func (m *MetricSet) Gauge(name, help string, value float64, labels ...Label) {
	f := m.family(name, help, kindGauge)
	if s := f.find(labels); s != nil {
		s.value = value
		return
	}
	f.samples = append(f.samples, sample{labels: labels, value: value})
}

// Histogram adds one histogram series. A repeated (name, labels)
// series merges the snapshots.
func (m *MetricSet) Histogram(name, help string, snap HistogramSnapshot, labels ...Label) {
	f := m.family(name, help, kindHistogram)
	if s := f.find(labels); s != nil {
		s.snap = s.snap.Merge(snap)
		return
	}
	f.samples = append(f.samples, sample{labels: labels, snap: snap})
}

// family returns (creating on first use) the named family. Name and
// label validity are programmer errors — names are compile-time
// constants — so violations panic rather than corrupt the exposition.
func (m *MetricSet) family(name, help string, kind familyKind) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f, ok := m.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		m.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s redeclared as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// find returns the existing series with exactly these labels, if any.
func (f *family) find(labels []Label) *sample {
	for i := range f.samples {
		if labelsEqual(f.samples[i].labels, labels) {
			return &f.samples[i]
		}
	}
	return nil
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteTo renders the set in Prometheus text exposition format 0.0.4:
// families sorted by name, each preceded by its HELP and TYPE lines,
// histograms expanded into cumulative _bucket series plus _sum and
// _count. The output re-parses with ParseExposition (the round-trip
// test holds the two to each other).
func (m *MetricSet) WriteTo(w io.Writer) (int64, error) {
	names := make([]string, 0, len(m.families))
	for name := range m.families {
		names = append(names, name)
	}
	sort.Strings(names)
	cw := &countWriter{w: w}
	for _, name := range names {
		f := m.families[name]
		if len(f.samples) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			if f.kind == kindHistogram {
				writeHistogram(cw, f.name, s)
				continue
			}
			fmt.Fprintf(cw, "%s%s %s\n", f.name, renderLabels(s.labels), formatValue(s.value))
		}
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	return cw.n, cw.err
}

// writeHistogram expands one histogram series: cumulative buckets
// (the le label appended after the series' own labels), then sum and
// count.
func writeHistogram(w io.Writer, name string, s sample) {
	cum := uint64(0)
	for i, bound := range s.snap.Bounds {
		cum += s.snap.Counts[i]
		le := append(append([]Label(nil), s.labels...), Label{Name: "le", Value: formatValue(bound)})
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(le), cum)
	}
	inf := append(append([]Label(nil), s.labels...), Label{Name: "le", Value: "+Inf"})
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(inf), s.snap.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels), formatValue(s.snap.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels), s.snap.Count)
}

// renderLabels renders {a="x",b="y"}, or "" for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes backslash, double-quote, and newline — the
// three characters the text format requires escaping in label values.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// countWriter tracks bytes written and the first error.
type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// Handler serves GET /metrics: collect assembles a fresh MetricSet
// per scrape from live stats snapshots, and the rendered exposition
// is written with the 0.0.4 content type.
func Handler(collect func(m *MetricSet)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := NewMetricSet()
		collect(m)
		var b strings.Builder
		if _, err := m.WriteTo(&b); err != nil {
			http.Error(w, "rendering metrics: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		io.WriteString(w, b.String())
	})
}
