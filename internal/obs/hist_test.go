package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramObservePlacement(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.9, 2} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.05 and 0.1 land in le=0.1 (bounds are inclusive upper), 0.3 in
	// le=0.5, 0.9 in le=1, and 2 in the implicit +Inf bucket.
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5 (must include the +Inf bucket)", s.Count)
	}
	if got, want := s.Sum, 0.05+0.1+0.3+0.9+2; math.Abs(got-want) > 1e-12 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestHistogramBoundsMustAscend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DrawDurationBuckets)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g+1) * 1e-4)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*per)
	}
	var sum float64
	for g := 0; g < goroutines; g++ {
		sum += float64(g+1) * 1e-4 * per
	}
	if math.Abs(s.Sum-sum) > 1e-9 {
		t.Errorf("Sum = %g, want %g", s.Sum, sum)
	}
}

func TestQuantile(t *testing.T) {
	empty := HistogramSnapshot{}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty snapshot must yield NaN")
	}
	// 10 observations uniformly inside (0, 1]: bucket (0,1] holds all,
	// so the median interpolates to 0.5.
	s := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{10, 0}, Count: 10}
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("p50 = %g, want 0.5", got)
	}
	// Everything beyond the last bound clamps to it.
	inf := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{0}, Count: 5}
	if got := inf.Quantile(0.99); got != 1 {
		t.Errorf("+Inf-bucket quantile = %g, want clamp to last bound 1", got)
	}
	if !math.IsNaN(s.Quantile(-0.1)) || !math.IsNaN(s.Quantile(1.1)) {
		t.Error("out-of-range q must yield NaN")
	}
}

func TestMergeSameBounds(t *testing.T) {
	a := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{1, 2}, Sum: 3, Count: 4}
	b := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{10, 20}, Sum: 30, Count: 40}
	m := a.Merge(b)
	if m.Counts[0] != 11 || m.Counts[1] != 22 || m.Sum != 33 || m.Count != 44 {
		t.Errorf("merge = %+v", m)
	}
}

func TestMergeDifferingBounds(t *testing.T) {
	a := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{1}, Sum: 1, Count: 2}
	b := HistogramSnapshot{Bounds: []float64{5}, Counts: []uint64{7}, Sum: 9, Count: 11}
	m := a.Merge(b)
	// Resolution degrades to the receiver's bounds, but the totals
	// must still aggregate.
	if m.Sum != 10 || m.Count != 13 {
		t.Errorf("merge totals = sum %g count %d, want 10/13", m.Sum, m.Count)
	}
	if len(m.Bounds) != 1 || m.Bounds[0] != 1 || m.Counts[0] != 1 {
		t.Errorf("merge kept wrong detail: %+v", m)
	}
}

func TestMergeEmpty(t *testing.T) {
	b := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{3}, Sum: 2, Count: 3}
	m := (HistogramSnapshot{}).Merge(b)
	if m.Count != 3 || m.Sum != 2 || len(m.Counts) != 1 || m.Counts[0] != 3 {
		t.Errorf("zero.Merge(b) = %+v, want b", m)
	}
	m2 := b.Merge(HistogramSnapshot{})
	if m2.Count != 3 || m2.Sum != 2 || m2.Counts[0] != 3 {
		t.Errorf("b.Merge(zero) = %+v, want b", m2)
	}
}
