package obs

import (
	"net/http"
	"net/http/pprof"
)

// MountPprof registers the net/http/pprof handlers explicitly on mux
// (the package's init-time DefaultServeMux registration does not help
// a private mux). Both srjserver and srjrouter mount these behind an
// opt-in flag — profiling endpoints do not belong on an open port by
// default.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
