package obs

import (
	"math"
	"sync/atomic"
)

// DrawDurationBuckets covers draw latency from "engine already warm,
// trivial T" (~50µs) through "cold build ahead of the draw" (~10s),
// roughly ×2.5 per step. Both tiers use the same bounds so router and
// server histograms aggregate.
var DrawDurationBuckets = []float64{
	50e-6, 125e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// BuildDurationBuckets covers registry engine builds: index
// construction over millions of points runs tens of milliseconds to
// minutes.
var BuildDurationBuckets = []float64{
	10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram is a fixed-bucket, lock-free latency accumulator. One
// Observe per finished request is the intended write rate — cheap
// enough for the serving path (a binary search over ~17 bounds plus
// two atomic adds), but still too expensive for the per-trial
// rejection loop, which stays uninstrumented.
type Histogram struct {
	bounds []float64
	// counts has one slot per bound plus a final +Inf slot. Slots are
	// per-bucket (not cumulative); rendering accumulates.
	counts []atomic.Uint64
	count  atomic.Uint64
	// sumBits accumulates the float64 sum via CAS on its bit pattern.
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds. The bounds slice is retained; callers pass the shared
// package-level bucket vars.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy. Concurrent Observes may be
// torn across count/sum (a snapshot is not a linearization point),
// which is fine for monitoring: every individual field is monotone.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)-1),
	}
	var seen uint64
	for i := range s.Counts {
		s.Counts[i] = h.counts[i].Load()
		seen += s.Counts[i]
	}
	seen += h.counts[len(h.counts)-1].Load()
	s.Count = seen
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// HistogramSnapshot is an immutable histogram state: per-bucket (not
// cumulative) counts for each bound, plus total count (including the
// implicit +Inf bucket) and sum. It marshals into stats JSON and
// renders into exposition format.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Merge combines two snapshots over identical bounds (the usual case:
// every srj histogram uses a shared package-level bucket var). If the
// bounds differ, the receiver's bucket detail is dropped and only
// Sum/Count aggregate — counts stay consistent, resolution degrades.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Sum:   s.Sum + o.Sum,
		Count: s.Count + o.Count,
	}
	if len(s.Bounds) == 0 {
		out.Bounds, out.Counts = o.Bounds, append([]uint64(nil), o.Counts...)
		return out
	}
	if len(o.Bounds) == 0 || !sameBounds(s.Bounds, o.Bounds) {
		out.Bounds, out.Counts = s.Bounds, append([]uint64(nil), s.Counts...)
		return out
	}
	out.Bounds = s.Bounds
	out.Counts = make([]uint64, len(s.Counts))
	for i := range out.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing bucket — the same estimate
// Prometheus's histogram_quantile computes. Returns NaN for an empty
// snapshot; observations beyond the last bound clamp to it.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			if c == 0 {
				return upper
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum += c
	}
	// Rank falls in the +Inf bucket: the best bounded estimate is the
	// largest finite bound.
	return s.Bounds[len(s.Bounds)-1]
}
