package wal

// FuzzWALReplay throws arbitrary bytes at the segment reader as the
// final (torn-tail-tolerant) segment of a log. Invariants under any
// input: open+replay never panics; the key hash embedded in the bytes
// is honored; and recovery is idempotent — whatever records the first
// open salvages, a second open of the same (now repaired) directory
// replays identically.

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func FuzzWALReplay(f *testing.F) {
	// Seed with a genuine two-record segment and progressively damaged
	// variants so the fuzzer starts inside the interesting format space.
	seedDir := f.TempDir()
	l, err := OpenLog(seedDir, Options{KeyHash: testKeyHash})
	if err != nil {
		f.Fatal(err)
	}
	if err := l.Append(1, []byte("alpha payload")); err != nil {
		f.Fatal(err)
	}
	if err := l.Append(2, []byte("beta")); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(seedDir, segPrefix+"*"+segSuffix))
	if err != nil || len(names) != 1 {
		f.Fatalf("seed segments: %v, %v", names, err)
	}
	valid, err := os.ReadFile(names[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])   // torn payload
	f.Add(valid[:segHeaderLen])   // header only
	f.Add(valid[:segHeaderLen-2]) // torn header
	f.Add([]byte{})               // empty file
	f.Add([]byte("not a wal segment at all, just prose"))
	flipped := append([]byte(nil), valid...)
	flipped[segHeaderLen+2] ^= 0x40 // damaged first record id
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, segPrefix+"0000000000000001"+segSuffix)
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Use the key hash the bytes claim, so structurally valid inputs
		// get past the header check and exercise the record reader.
		var hash uint64
		if len(data) >= segHeaderLen {
			hash = binary.LittleEndian.Uint64(data[5:segHeaderLen])
		}
		l, err := OpenLog(dir, Options{KeyHash: hash})
		if err != nil {
			return // refused: fine, as long as it didn't panic
		}
		type rec struct {
			id      uint64
			payload []byte
		}
		var got []rec
		if err := l.Replay(func(id uint64, payload []byte) error {
			got = append(got, rec{id, append([]byte(nil), payload...)})
			return nil
		}); err != nil {
			t.Fatalf("open accepted the log but replay failed: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Idempotence: the first open truncated any torn tail in place,
		// so a second open must accept and replay the same records.
		l2, err := OpenLog(dir, Options{KeyHash: hash})
		if err != nil {
			t.Fatalf("reopen after salvage refused: %v", err)
		}
		defer l2.Close()
		var again []rec
		if err := l2.Replay(func(id uint64, payload []byte) error {
			again = append(again, rec{id, append([]byte(nil), payload...)})
			return nil
		}); err != nil {
			t.Fatalf("replay after salvage failed: %v", err)
		}
		if len(again) != len(got) {
			t.Fatalf("salvage not idempotent: %d records, then %d", len(got), len(again))
		}
		for i := range got {
			if got[i].id != again[i].id || !bytes.Equal(got[i].payload, again[i].payload) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
	})
}
