package wal

// Dataset-level recovery: update batches round-trip through the SRJU
// payload encoding, snapshots capture and prune, a record addressed to
// a different key is refused, and — the torture core — a store
// recovered from a log truncated at any record boundary equals the
// oracle that applied the same update prefix in memory.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/registry"
	"repro/internal/server"
)

var testKey = registry.Key{Dataset: "torture", L: 50, Algorithm: "bbst", Seed: 9}

// scriptUpdate is the deterministic i-th update batch: inserts on both
// sides, and from the third batch on, deletes of earlier inserts.
func scriptUpdate(i int) dynamic.Update {
	u := dynamic.Update{
		InsertR: []geom.Point{{ID: int32(1000 + 2*i), X: float64(10 * i), Y: float64(5 * i)}},
		InsertS: []geom.Point{{ID: int32(2000 + 2*i), X: float64(10*i) + 3, Y: float64(5*i) - 2}},
	}
	if i >= 3 {
		u.DeleteR = []int32{int32(1000 + 2*(i-3))}
	}
	if i >= 4 {
		u.DeleteS = []int32{int32(2000 + 2*(i-4))}
	}
	return u
}

// openTestDataset opens the dataset for testKey under dir.
func openTestDataset(t *testing.T, dir string, opts Options) *Dataset {
	t.Helper()
	m, err := OpenManager(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	d, err := m.Open(testKey)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func updatesEqual(a, b dynamic.Update) bool {
	eqP := func(x, y []geom.Point) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	eqI := func(x, y []int32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eqP(a.InsertR, b.InsertR) && eqP(a.InsertS, b.InsertS) &&
		eqI(a.DeleteR, b.DeleteR) && eqI(a.DeleteS, b.DeleteS)
}

func TestDatasetAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	d := openTestDataset(t, dir, Options{})
	const n = 8
	for i := 1; i <= n; i++ {
		if err := d.Append(uint64(i), scriptUpdate(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDataset(t, dir, Options{})
	var got []dynamic.SeqUpdate
	err := d2.Replay(0, func(id uint64, u dynamic.Update) error {
		got = append(got, dynamic.SeqUpdate{ID: id, U: u})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, rec := range got {
		if rec.ID != uint64(i+1) {
			t.Fatalf("record %d has ID %d", i, rec.ID)
		}
		if !updatesEqual(rec.U, scriptUpdate(i+1)) {
			t.Fatalf("record %d decoded update differs: %+v", i+1, rec.U)
		}
	}
	// A fromID skips the covered prefix exactly.
	var after []uint64
	if err := d2.Replay(5, func(id uint64, u dynamic.Update) error {
		after = append(after, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(after) != 3 || after[0] != 6 {
		t.Fatalf("Replay(5) returned IDs %v", after)
	}
}

func TestDatasetSnapshotRoundtripAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Small segments so the snapshot has whole sealed segments to
	// retire.
	d := openTestDataset(t, dir, Options{SegmentBytes: 256})
	const n = 12
	for i := 1; i <= n; i++ {
		if err := d.Append(uint64(i), scriptUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	R := []geom.Point{{ID: 1, X: 1, Y: 2}, {ID: 2, X: 3, Y: 4}}
	S := []geom.Point{{ID: 7, X: -1, Y: -2}}
	before := d.PersistStats()
	if err := d.Snapshot(9, 8, R, S); err != nil {
		t.Fatal(err)
	}
	after := d.PersistStats()
	if after.Segments >= before.Segments {
		t.Fatalf("snapshot pruned nothing: %d -> %d segments", before.Segments, after.Segments)
	}
	if after.LastSnapshotID != 8 || after.Snapshots != 1 {
		t.Fatalf("snapshot stats: %+v", after)
	}
	// Going backwards is refused.
	if err := d.Snapshot(9, 7, R, S); err == nil {
		t.Fatal("snapshot behind the existing one accepted")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDataset(t, dir, Options{SegmentBytes: 256})
	snap, ok, err := d2.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot: %v, ok=%v", err, ok)
	}
	if snap.Generation != 9 || snap.LastID != 8 {
		t.Fatalf("snapshot header: %+v", snap)
	}
	if len(snap.R) != len(R) || len(snap.S) != len(S) || snap.R[0] != R[0] || snap.R[1] != R[1] || snap.S[0] != S[0] {
		t.Fatalf("snapshot points differ: %+v", snap)
	}
	// Replay past the snapshot yields exactly the uncovered tail.
	var ids []uint64
	if err := d2.Replay(snap.LastID, func(id uint64, u dynamic.Update) error {
		ids = append(ids, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != n-8 || ids[0] != 9 {
		t.Fatalf("post-snapshot replay IDs %v", ids)
	}
}

func TestDatasetCorruptSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	d := openTestDataset(t, dir, Options{})
	if err := d.Append(1, scriptUpdate(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(1, 1, []geom.Point{{ID: 1, X: 1, Y: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "*", snapPrefix+"*"+snapSuffix))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshot files: %v, %v", snaps, err)
	}
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := openTestDataset(t, dir, Options{})
	if _, _, err := d2.LoadSnapshot(); !errors.Is(err, ErrCorrupt) {
		// The newest snapshot failing validation must be an error, not
		// a silent ok=false — falling back past pruned records would
		// serve shortened history.
		t.Fatalf("corrupt snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestDatasetKeyMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	d := openTestDataset(t, dir, Options{})
	if err := d.Append(1, scriptUpdate(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Dir(datasetMetaPath(t, dir))

	// A directory claimed by one key refuses to open as another.
	m, err := OpenManager(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	other := testKey
	other.Seed++
	if _, err := m.Open(other); err != nil {
		t.Fatalf("distinct keys get distinct directories: %v", err)
	}

	// A log record whose payload addresses a different key is refused
	// at replay, even when the envelope's key hash matches (simulated
	// by appending through a raw log with the right hash).
	l, err := OpenLog(sub, Options{KeyHash: KeyHash(testKey)})
	if err != nil {
		t.Fatal(err)
	}
	req := server.UpdateRequest{
		Dataset: other.Dataset, L: other.L, Algorithm: other.Algorithm, Seed: other.Seed,
		InsertR: []geom.Point{{ID: 5, X: 1, Y: 1}},
	}
	var buf bytes.Buffer
	if err := server.EncodeUpdateRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDataset(t, dir, Options{})
	err = d2.Replay(0, func(id uint64, u dynamic.Update) error { return nil })
	if !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("foreign-key record: err = %v, want ErrKeyMismatch", err)
	}
}

// datasetMetaPath finds testKey's meta.json under the manager dir.
func datasetMetaPath(t *testing.T, dir string) string {
	t.Helper()
	metas, err := filepath.Glob(filepath.Join(dir, "*", metaName))
	if err != nil || len(metas) == 0 {
		t.Fatalf("meta files: %v, %v", metas, err)
	}
	return metas[0]
}

func TestDatasetLostLeadingSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	d := openTestDataset(t, dir, Options{SegmentBytes: 256})
	const n = 12
	for i := 1; i <= n; i++ {
		if err := d.Append(uint64(i), scriptUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Dir(datasetMetaPath(t, dir))
	segs, err := filepath.Glob(filepath.Join(sub, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	if err := os.Remove(segs[0]); err != nil {
		t.Fatal(err)
	}
	// With no snapshot covering the hole, replay must refuse — the
	// missing records were acknowledged history.
	d2 := openTestDataset(t, dir, Options{SegmentBytes: 256})
	err = d2.Replay(0, func(id uint64, u dynamic.Update) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lost leading segment: err = %v, want ErrCorrupt", err)
	}
}

func TestManagerKeysEnumeration(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManager(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keyB := registry.Key{Dataset: "beta", L: 10, Algorithm: "grid", Seed: 2}
	for _, k := range []registry.Key{testKey, keyB} {
		if _, err := m.Open(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenManager(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	keys, err := m2.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("Keys() = %v", keys)
	}
	seen := map[registry.Key]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if !seen[testKey] || !seen[keyB] {
		t.Fatalf("Keys() = %v, want both persisted keys", keys)
	}
}

// TestDatasetTruncationRecoversOraclePrefix is the dataset-level
// torture: with the log's final segment truncated at EVERY byte
// offset, recovery must yield exactly a prefix of the oracle update
// sequence — decoded content equal, never a skipped, reordered, or
// half-applied record.
func TestDatasetTruncationRecoversOraclePrefix(t *testing.T) {
	dir := t.TempDir()
	d := openTestDataset(t, dir, Options{})
	const n = 6
	oracle := make([]dynamic.Update, n)
	for i := 1; i <= n; i++ {
		oracle[i-1] = scriptUpdate(i)
		if err := d.Append(uint64(i), oracle[i-1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Dir(datasetMetaPath(t, dir))
	segs, err := filepath.Glob(filepath.Join(sub, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	intact, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(intact); cut++ {
		work := t.TempDir()
		wsub := filepath.Join(work, filepath.Base(sub))
		if err := os.MkdirAll(wsub, 0o755); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			raw, err := os.ReadFile(filepath.Join(sub, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(wsub, e.Name()), raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		wseg := filepath.Join(wsub, filepath.Base(segs[0]))
		if err := os.WriteFile(wseg, intact[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := OpenManager(work, Options{})
		if err != nil {
			t.Fatalf("cut=%d: OpenManager: %v", cut, err)
		}
		wd, err := m.Open(testKey)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		var got []dynamic.SeqUpdate
		if err := wd.Replay(0, func(id uint64, u dynamic.Update) error {
			got = append(got, dynamic.SeqUpdate{ID: id, U: u})
			return nil
		}); err != nil {
			t.Fatalf("cut=%d: Replay: %v", cut, err)
		}
		if len(got) > n {
			t.Fatalf("cut=%d: replayed %d records from a %d-record log", cut, len(got), n)
		}
		for i, rec := range got {
			if rec.ID != uint64(i+1) || !updatesEqual(rec.U, oracle[i]) {
				t.Fatalf("cut=%d: record %d diverges from oracle: id=%d u=%+v", cut, i, rec.ID, rec.U)
			}
		}
		if cut == len(intact) && len(got) != n {
			t.Fatalf("intact log replayed only %d/%d records", len(got), n)
		}
		m.Close()
	}
}
