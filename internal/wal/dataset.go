package wal

// The per-dataset durability unit and the data-dir manager. A Dataset
// owns one directory (meta.json + segments + snapshots), implements
// dynamic.Persister so a Store writes ahead through it, and replays
// its contents at recovery. A Manager owns the data dir, enumerates
// the datasets a previous process persisted, and opens them under one
// shared Options.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/registry"
	"repro/internal/server"
)

const (
	snapMagic   = uint32(0x53524a53) // "SRJS"
	snapVersion = uint8(1)
	snapPrefix  = "snap-"
	snapSuffix  = ".srs"
	metaName    = "meta.json"

	// snapHeaderLen: magic, version, keyhash, generation, lastID, nR, nS.
	snapHeaderLen = 4 + 1 + 8 + 8 + 8 + 4 + 4
	pointLen      = 20

	// maxSnapshotPoints bounds one side of a snapshot so a corrupt
	// count cannot force an unbounded allocation before the CRC check.
	maxSnapshotPoints = 1 << 28
)

// ErrKeyMismatch reports a WAL record or snapshot whose embedded
// dataset key does not match the dataset being recovered. Recovery
// refuses it — replaying another dataset's mutations would silently
// corrupt this one.
var ErrKeyMismatch = errors.New("wal: record dataset key does not match")

// KeyHash fingerprints an engine key (generation ignored) for segment
// and snapshot headers: a moved or mislabeled directory fails fast on
// open instead of replaying a different dataset's records.
func KeyHash(key registry.Key) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key.Dataset)
	h.Write([]byte{0})
	io.WriteString(h, key.Algorithm)
	h.Write([]byte{0})
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], math.Float64bits(key.L))
	binary.LittleEndian.PutUint64(b[8:], key.Seed)
	h.Write(b[:])
	return h.Sum64()
}

// meta is the JSON identity record of one dataset directory.
type meta struct {
	Dataset   string  `json:"dataset"`
	L         float64 `json:"l"`
	Algorithm string  `json:"algorithm"`
	Seed      uint64  `json:"seed,omitempty"`
}

func (m meta) key() registry.Key {
	return registry.Key{Dataset: m.Dataset, L: m.L, Algorithm: server.NormalizeAlgorithm(m.Algorithm), Seed: m.Seed}
}

// Snapshot is one recovered point-set snapshot: the materialized base
// sides as of LastID, served at Generation when it was taken.
type Snapshot struct {
	Generation uint64
	LastID     uint64
	R, S       []geom.Point
}

// Dataset is the durability unit of one engine key: its meta record,
// segment log, and snapshots, in one directory. It implements
// dynamic.Persister. All methods are safe for concurrent use.
type Dataset struct {
	dir  string
	key  registry.Key
	hash uint64
	log  *Log

	mu         sync.Mutex
	lastSnapID uint64
	snapshots  uint64
	closed     bool
}

// openDataset opens (or initializes) the dataset directory for key.
func openDataset(dir string, key registry.Key, opts Options) (*Dataset, error) {
	hash := KeyHash(key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(dir, metaName)
	raw, err := os.ReadFile(metaPath)
	switch {
	case err == nil:
		var m meta
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("wal: %s: %w", metaPath, err)
		}
		if got := m.key(); got != key {
			return nil, fmt.Errorf("%w: directory %s holds %s, not %s", ErrKeyMismatch, dir, got, key)
		}
	case errors.Is(err, os.ErrNotExist):
		m := meta{Dataset: key.Dataset, L: key.L, Algorithm: key.Algorithm, Seed: key.Seed}
		blob, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := writeFileAtomic(metaPath, blob); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	opts.KeyHash = hash
	log, err := OpenLog(dir, opts)
	if err != nil {
		return nil, err
	}
	d := &Dataset{dir: dir, key: key, hash: hash, log: log}
	if id, _, err := d.newestSnapshotLocked(); err == nil {
		d.lastSnapID = id
	}
	return d, nil
}

// Key returns the engine key this dataset persists.
func (d *Dataset) Key() registry.Key { return d.key }

// Dir returns the dataset's directory.
func (d *Dataset) Dir() string { return d.dir }

// LastID reports the last record ID in the log (0 when empty); the
// snapshot may cover beyond it after pruning, so recovery starts from
// max(snapshot LastID, replayed records).
func (d *Dataset) LastID() uint64 { return d.log.LastID() }

// Append writes one sequenced update batch to the log — the
// dynamic.Persister write-ahead hook. The payload is the SRJU wire
// encoding of the batch addressed to this dataset's key, so the log
// is readable by the same decoder that reads /v1/update bodies.
func (d *Dataset) Append(id uint64, u dynamic.Update) error {
	req := server.UpdateRequest{
		Dataset:   d.key.Dataset,
		L:         d.key.L,
		Algorithm: d.key.Algorithm,
		Seed:      d.key.Seed,
		InsertR:   u.InsertR,
		InsertS:   u.InsertS,
		DeleteR:   u.DeleteR,
		DeleteS:   u.DeleteS,
	}
	var buf bytes.Buffer
	if err := server.EncodeUpdateRequest(&buf, req); err != nil {
		return err
	}
	return d.log.Append(id, buf.Bytes())
}

// Snapshot persists the materialized base point sets covering update
// IDs <= lastID — the dynamic.Persister compaction hook. The file is
// written whole to a temp name, fsynced, and renamed, so a crash
// leaves either the old snapshot or the new one, never a torn
// in-between; then older snapshots and fully-covered log segments are
// pruned.
func (d *Dataset) Snapshot(gen, lastID uint64, R, S []geom.Point) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("wal: dataset is closed")
	}
	if lastID < d.lastSnapID {
		return fmt.Errorf("wal: snapshot at ID %d behind existing snapshot %d", lastID, d.lastSnapID)
	}
	buf := make([]byte, snapHeaderLen, snapHeaderLen+pointLen*(len(R)+len(S))+4)
	binary.LittleEndian.PutUint32(buf[:4], snapMagic)
	buf[4] = snapVersion
	binary.LittleEndian.PutUint64(buf[5:13], d.hash)
	binary.LittleEndian.PutUint64(buf[13:21], gen)
	binary.LittleEndian.PutUint64(buf[21:29], lastID)
	binary.LittleEndian.PutUint32(buf[29:33], uint32(len(R)))
	binary.LittleEndian.PutUint32(buf[33:37], uint32(len(S)))
	for _, p := range R {
		buf = appendPoint(buf, p)
	}
	for _, p := range S {
		buf = appendPoint(buf, p)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	name := fmt.Sprintf("%s%016x%s", snapPrefix, lastID, snapSuffix)
	if err := writeFileAtomic(filepath.Join(d.dir, name), buf); err != nil {
		return err
	}
	d.snapshots++
	d.lastSnapID = lastID
	// Best effort from here: the snapshot is durable; stale files just
	// occupy space until the next snapshot retries the cleanup.
	d.pruneSnapshotsLocked(lastID)
	if err := d.log.Prune(lastID); err != nil {
		return err
	}
	return nil
}

func appendPoint(buf []byte, p geom.Point) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.ID))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
}

// pruneSnapshotsLocked removes snapshots older than keep.
func (d *Dataset) pruneSnapshotsLocked(keep uint64) {
	ids, names, err := d.snapshotList()
	if err != nil {
		return
	}
	for i, id := range ids {
		if id < keep {
			os.Remove(filepath.Join(d.dir, names[i]))
		}
	}
	syncDir(d.dir)
}

// snapshotList returns snapshot IDs and filenames, ascending.
func (d *Dataset) snapshotList() ([]uint64, []string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, nil, err
	}
	var ids []uint64
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 16, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
		names = append(names, name)
	}
	sort.Sort(&snapOrder{ids, names})
	return ids, names, nil
}

type snapOrder struct {
	ids   []uint64
	names []string
}

func (s *snapOrder) Len() int           { return len(s.ids) }
func (s *snapOrder) Less(a, b int) bool { return s.ids[a] < s.ids[b] }
func (s *snapOrder) Swap(a, b int) {
	s.ids[a], s.ids[b] = s.ids[b], s.ids[a]
	s.names[a], s.names[b] = s.names[b], s.names[a]
}

func (d *Dataset) newestSnapshotLocked() (uint64, string, error) {
	ids, names, err := d.snapshotList()
	if err != nil || len(ids) == 0 {
		return 0, "", os.ErrNotExist
	}
	return ids[len(ids)-1], names[len(names)-1], nil
}

// LoadSnapshot reads the newest snapshot. ok is false when none
// exists; a snapshot that fails validation is an error (recovery must
// refuse, not silently fall back past pruned log records).
func (d *Dataset) LoadSnapshot() (snap Snapshot, ok bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, name, err := d.newestSnapshotLocked()
	if errors.Is(err, os.ErrNotExist) {
		return Snapshot{}, false, nil
	}
	if err != nil {
		return Snapshot{}, false, err
	}
	raw, err := os.ReadFile(filepath.Join(d.dir, name))
	if err != nil {
		return Snapshot{}, false, err
	}
	snap, err = decodeSnapshot(raw, d.hash)
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("%s: %w", name, err)
	}
	return snap, true, nil
}

func decodeSnapshot(raw []byte, wantHash uint64) (Snapshot, error) {
	if len(raw) < snapHeaderLen+4 {
		return Snapshot{}, fmt.Errorf("%w: snapshot truncated (%d bytes)", ErrCorrupt, len(raw))
	}
	if m := binary.LittleEndian.Uint32(raw[:4]); m != snapMagic {
		return Snapshot{}, fmt.Errorf("%w: bad snapshot magic %#x", ErrCorrupt, m)
	}
	if v := raw[4]; v != snapVersion {
		return Snapshot{}, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, v)
	}
	if h := binary.LittleEndian.Uint64(raw[5:13]); h != wantHash {
		return Snapshot{}, fmt.Errorf("%w: snapshot key hash %#x (want %#x)", ErrKeyMismatch, h, wantHash)
	}
	body, crcRaw := raw[:len(raw)-4], raw[len(raw)-4:]
	if sum := crc32.Checksum(body, castagnoli); sum != binary.LittleEndian.Uint32(crcRaw) {
		return Snapshot{}, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	nR := binary.LittleEndian.Uint32(raw[29:33])
	nS := binary.LittleEndian.Uint32(raw[33:37])
	if nR > maxSnapshotPoints || nS > maxSnapshotPoints ||
		int64(len(body)) != int64(snapHeaderLen)+pointLen*(int64(nR)+int64(nS)) {
		return Snapshot{}, fmt.Errorf("%w: snapshot size does not match point counts", ErrCorrupt)
	}
	snap := Snapshot{
		Generation: binary.LittleEndian.Uint64(raw[13:21]),
		LastID:     binary.LittleEndian.Uint64(raw[21:29]),
		R:          decodePoints(raw[snapHeaderLen:], int(nR)),
		S:          decodePoints(raw[snapHeaderLen+pointLen*int(nR):], int(nS)),
	}
	return snap, nil
}

func decodePoints(raw []byte, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		rec := raw[i*pointLen:]
		pts[i] = geom.Point{
			ID: int32(binary.LittleEndian.Uint32(rec[:4])),
			X:  math.Float64frombits(binary.LittleEndian.Uint64(rec[4:12])),
			Y:  math.Float64frombits(binary.LittleEndian.Uint64(rec[12:20])),
		}
	}
	return pts
}

// Replay streams every logged update with ID > fromID, decoded and
// key-checked, to fn in ID order. A record addressed to a different
// key is refused with ErrKeyMismatch — never silently skipped.
func (d *Dataset) Replay(fromID uint64, fn func(id uint64, u dynamic.Update) error) error {
	// The log is internally gapless, so its first record tells whether
	// it still reaches back to the snapshot: a log starting past
	// fromID+1 lost a leading segment that no snapshot covers, and
	// replaying around the hole would serve silently-shortened history.
	if first := d.log.FirstID(); first > fromID+1 {
		return fmt.Errorf("%w: log starts at record %d but the snapshot covers only through %d", ErrCorrupt, first, fromID)
	}
	return d.log.Replay(func(id uint64, payload []byte) error {
		if id <= fromID {
			return nil // covered by the snapshot
		}
		req, err := server.DecodeUpdateBody(bytes.NewReader(payload), 0)
		if err != nil {
			return fmt.Errorf("%w: record %d payload: %v", ErrCorrupt, id, err)
		}
		if got := req.Key(); got != d.key {
			return fmt.Errorf("%w: record %d addressed to %s, dataset is %s", ErrKeyMismatch, id, got, d.key)
		}
		return fn(id, req.Ops())
	})
}

// PersistStats is the dynamic.Persister observability hook.
func (d *Dataset) PersistStats() dynamic.PersistStats {
	ls := d.log.Stats()
	d.mu.Lock()
	defer d.mu.Unlock()
	return dynamic.PersistStats{
		Segments:       ls.Segments,
		Bytes:          ls.Bytes,
		Appends:        ls.Appends,
		Syncs:          ls.Syncs,
		Snapshots:      d.snapshots,
		LastSnapshotID: d.lastSnapID,
	}
}

// Close syncs and closes the dataset's log.
func (d *Dataset) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	return d.log.Close()
}

// Manager owns one data directory: a subdirectory per persisted
// dataset, named by the sanitized dataset name plus the key hash so
// distinct keys never collide.
type Manager struct {
	dir  string
	opts Options

	mu     sync.Mutex
	open   map[string]*Dataset
	closed bool
}

// OpenManager opens (creating if needed) the data directory.
func OpenManager(dir string, opts Options) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Manager{dir: dir, opts: opts, open: make(map[string]*Dataset)}, nil
}

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.dir }

// dirFor names the subdirectory of one key.
func (m *Manager) dirFor(key registry.Key) string {
	return filepath.Join(m.dir, fmt.Sprintf("%s-%016x", sanitize(key.Dataset), KeyHash(key)))
}

// sanitize maps a dataset name to a filesystem-safe slug (identity
// rests on the key hash suffix, so collisions here are harmless).
func sanitize(name string) string {
	if len(name) > 64 {
		name = name[:64]
	}
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "dataset"
	}
	return string(out)
}

// Open opens (or initializes) the dataset for key, reusing an
// already-open one. The key's generation is ignored.
func (m *Manager) Open(key registry.Key) (*Dataset, error) {
	key.Generation = 0
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("wal: manager is closed")
	}
	dir := m.dirFor(key)
	if d, ok := m.open[dir]; ok {
		return d, nil
	}
	d, err := openDataset(dir, key, m.opts)
	if err != nil {
		return nil, err
	}
	m.open[dir] = d
	return d, nil
}

// Keys enumerates the datasets persisted under the data dir (from
// their meta records), sorted by key string — the recovery worklist.
func (m *Manager) Keys() ([]registry.Key, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	var keys []registry.Key
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(m.dir, e.Name(), metaName))
		if errors.Is(err, os.ErrNotExist) {
			continue // not a dataset directory
		}
		if err != nil {
			return nil, err
		}
		var mt meta
		if err := json.Unmarshal(raw, &mt); err != nil {
			return nil, fmt.Errorf("wal: %s: %w", filepath.Join(e.Name(), metaName), err)
		}
		keys = append(keys, mt.key())
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].String() < keys[b].String() })
	return keys, nil
}

// Close closes every open dataset. The manager is not reusable after.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	var first error
	names := make([]string, 0, len(m.open))
	for name := range m.open {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := m.open[name].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeFileAtomic writes blob to path via a temp file, fsync, and
// rename, then fsyncs the directory — the standard crash-safe
// publish.
func writeFileAtomic(path string, blob []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}
