package wal

// Log-level crash-recovery torture: the reader's contract is that an
// arbitrary prefix of the final segment (a torn tail) recovers the
// longest intact record prefix, any single corrupt byte in the tail
// truncates cleanly at the preceding record boundary, and damage to
// sealed history — an interior segment — is refused outright.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

const testKeyHash = uint64(0xdeadbeefcafef00d)

// testPayload is the deterministic payload of record id.
func testPayload(id uint64) []byte {
	p := make([]byte, 16+int(id%7))
	binary.LittleEndian.PutUint64(p, id^0x5a5a5a5a)
	for i := 8; i < len(p); i++ {
		p[i] = byte(id + uint64(i))
	}
	return p
}

// buildLog appends records 1..n under opts and closes the log.
func buildLog(t *testing.T, dir string, n int, opts Options) {
	t.Helper()
	l, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= uint64(n); id++ {
		if err := l.Append(id, testPayload(id)); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayAll opens the log and collects every replayed record.
func replayAll(t *testing.T, dir string, opts Options) (ids []uint64, payloads [][]byte) {
	t.Helper()
	l, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	err = l.Replay(func(id uint64, payload []byte) error {
		ids = append(ids, id)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return ids, payloads
}

// checkPrefix asserts the replayed records are exactly 1..n with the
// canonical payloads.
func checkPrefix(t *testing.T, ids []uint64, payloads [][]byte, n int) {
	t.Helper()
	if len(ids) != n {
		t.Fatalf("replayed %d records, want %d (ids %v)", len(ids), n, ids)
	}
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Fatalf("record %d has ID %d", i, id)
		}
		want := testPayload(id)
		if string(payloads[i]) != string(want) {
			t.Fatalf("record %d payload mismatch", id)
		}
	}
}

// copyDir clones every regular file of src into a fresh temp dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// segFiles lists segment filenames sorted by first ID.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// recordEnds parses a segment file and returns the byte offset of each
// record's end, plus the IDs, using the same reader the log trusts.
func recordEnds(t *testing.T, path string) (ends []int64, ids []uint64) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(segHeaderLen, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	r := &countReader{r: f, n: segHeaderLen}
	for {
		id, _, err := readRecord(r, 0, nil)
		if errors.Is(err, io.EOF) {
			return ends, ids
		}
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		ends = append(ends, r.n)
		ids = append(ids, id)
	}
}

func TestLogRoundtripRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// ~30 bytes per record against a 128-byte threshold: plenty of
	// rotations.
	opts := Options{SegmentBytes: 128, KeyHash: testKeyHash}
	buildLog(t, dir, 20, opts)
	if n := len(segFiles(t, dir)); n < 3 {
		t.Fatalf("only %d segments after 20 appends at a 128B threshold", n)
	}
	ids, payloads := replayAll(t, dir, opts)
	checkPrefix(t, ids, payloads, 20)

	// Appends resume exactly where the recovered log ends.
	l, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LastID(); got != 20 {
		t.Fatalf("recovered LastID = %d", got)
	}
	if err := l.Append(22, testPayload(22)); err == nil {
		t.Fatal("append skipped ID 21 and was accepted")
	}
	if err := l.Append(21, testPayload(21)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ids, payloads = replayAll(t, dir, opts)
	checkPrefix(t, ids, payloads, 21)
}

func TestLogKeyHashRefused(t *testing.T) {
	dir := t.TempDir()
	opts := Options{KeyHash: testKeyHash}
	buildLog(t, dir, 3, opts)
	_, err := OpenLog(dir, Options{KeyHash: testKeyHash + 1})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign key hash: err = %v, want ErrCorrupt", err)
	}
}

// TestLogTornTailEveryOffset is the crash-simulation core: the final
// segment truncated at EVERY byte offset must recover exactly the
// records wholly below the cut, never an error, never a partial or
// damaged record.
func TestLogTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	opts := Options{SegmentBytes: 256, KeyHash: testKeyHash}
	const n = 16
	buildLog(t, master, n, opts)
	segs := segFiles(t, master)
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, have %d", len(segs))
	}
	final := segs[len(segs)-1]
	ends, ids := recordEnds(t, final)
	fi, err := os.Stat(final)
	if err != nil {
		t.Fatal(err)
	}
	priorRecords := n - len(ids) // records living in sealed segments

	for cut := int64(0); cut <= fi.Size(); cut++ {
		// Records of the final segment intact below the cut.
		intact := 0
		for _, end := range ends {
			if end <= cut {
				intact++
			}
		}
		dir := copyDir(t, master)
		if err := os.Truncate(filepath.Join(dir, filepath.Base(final)), cut); err != nil {
			t.Fatal(err)
		}
		rids, rpayloads := replayAll(t, dir, opts)
		checkPrefix(t, rids, rpayloads, priorRecords+intact)
	}
}

// TestLogByteFlipTail: a single corrupt byte anywhere in the final
// segment's record area truncates the log at the last record boundary
// before the damage — CRC32C catches every single-byte flip.
func TestLogByteFlipTail(t *testing.T) {
	master := t.TempDir()
	opts := Options{SegmentBytes: 256, KeyHash: testKeyHash}
	const n = 16
	buildLog(t, master, n, opts)
	segs := segFiles(t, master)
	final := segs[len(segs)-1]
	ends, ids := recordEnds(t, final)
	fi, err := os.Stat(final)
	if err != nil {
		t.Fatal(err)
	}
	priorRecords := n - len(ids)

	for off := int64(0); off < fi.Size(); off++ {
		dir := copyDir(t, master)
		path := filepath.Join(dir, filepath.Base(final))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[off] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if off < segHeaderLen {
			// Header damage is not a torn tail: identity and format
			// bytes are written once, fsynced at rotation, and never
			// legitimately half-present with records behind them.
			if _, err := OpenLog(dir, opts); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at header offset %d: err = %v, want ErrCorrupt", off, err)
			}
			continue
		}
		// Records wholly before the damaged record survive.
		intact := 0
		for _, end := range ends {
			if end <= off {
				intact++
			}
		}
		rids, rpayloads := replayAll(t, dir, opts)
		checkPrefix(t, rids, rpayloads, priorRecords+intact)
	}
}

// TestLogInteriorCorruptionRefused: the tolerance is for the tail
// only. A sealed (non-final) segment was fsynced before its successor
// existed, so any damage there is real corruption and recovery must
// refuse rather than silently drop acknowledged history.
func TestLogInteriorCorruptionRefused(t *testing.T) {
	master := t.TempDir()
	opts := Options{SegmentBytes: 256, KeyHash: testKeyHash}
	buildLog(t, master, 16, opts)
	segs := segFiles(t, master)
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, have %d", len(segs))
	}
	interior := filepath.Base(segs[0])

	t.Run("byte flip", func(t *testing.T) {
		dir := copyDir(t, master)
		path := filepath.Join(dir, interior)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[segHeaderLen+5] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenLog(dir, opts); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("interior flip: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncation", func(t *testing.T) {
		dir := copyDir(t, master)
		fi, err := os.Stat(filepath.Join(dir, interior))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(filepath.Join(dir, interior), fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenLog(dir, opts); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("interior truncation: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("missing segment", func(t *testing.T) {
		if len(segs) < 3 {
			t.Fatalf("need >= 3 segments, have %d", len(segs))
		}
		dir := copyDir(t, master)
		if err := os.Remove(filepath.Join(dir, filepath.Base(segs[1]))); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenLog(dir, opts); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("missing interior segment: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("missing first segment", func(t *testing.T) {
		// At the log level a missing leading segment is
		// indistinguishable from legitimate pruning; the open succeeds
		// and FirstID exposes the hole for the dataset layer to judge
		// against its snapshot coverage.
		dir := copyDir(t, master)
		if err := os.Remove(filepath.Join(dir, interior)); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLog(dir, opts)
		if err != nil {
			t.Fatalf("missing leading segment must open as a pruned log: %v", err)
		}
		defer l.Close()
		if first := l.FirstID(); first <= 1 {
			t.Fatalf("FirstID = %d, want the post-hole start", first)
		}
	})
}

// TestLogPrune: snapshots retire whole covered segments; the active
// segment survives regardless, and replay after pruning starts at the
// first surviving record.
func TestLogPrune(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 256, KeyHash: testKeyHash}
	buildLog(t, dir, 16, opts)
	l, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	before := l.Stats()
	if before.Segments < 3 {
		t.Fatalf("need >= 3 segments, have %d", before.Segments)
	}
	if err := l.Prune(12); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("prune removed nothing: %d -> %d segments", before.Segments, after.Segments)
	}
	var first uint64
	err = l.Replay(func(id uint64, payload []byte) error {
		if first == 0 {
			first = id
		}
		if string(payload) != string(testPayload(id)) {
			t.Fatalf("record %d payload damaged by prune", id)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first == 0 || first > 13 {
		t.Fatalf("first surviving record %d; pruning up to 12 must keep every record past 12", first)
	}
	// Appends continue across a prune.
	if err := l.Append(17, testPayload(17)); err != nil {
		t.Fatal(err)
	}
	if got := l.LastID(); got != 17 {
		t.Fatalf("LastID = %d after post-prune append", got)
	}
}

// TestLogTornRotation: a crash between creating a fresh segment and
// writing its header leaves a short final file; open drops it and
// appends resume in a recreated segment.
func TestLogTornRotation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 256, KeyHash: testKeyHash}
	buildLog(t, dir, 6, opts)
	// Simulate the torn rotation by hand: a next segment whose header
	// never landed (0 and a few bytes).
	for _, tear := range [][]byte{nil, {0x53}, {0x53, 0x52, 0x4a}} {
		name := filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, 7, segSuffix))
		if err := os.WriteFile(name, tear, 0o644); err != nil {
			t.Fatal(err)
		}
		ids, payloads := replayAll(t, dir, opts)
		checkPrefix(t, ids, payloads, 6)
		if _, err := os.Stat(name); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("torn rotation file survived open: %v", err)
		}
	}
	l, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(7, testPayload(7)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ids, payloads := replayAll(t, dir, opts)
	checkPrefix(t, ids, payloads, 7)
}
