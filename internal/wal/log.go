// Package wal is the durability subsystem of the serving stack: an
// append-only write-ahead log of update batches, point-set snapshots,
// and the recovery path that rebuilds a dynamic store from the two.
//
// The on-disk record payload is the existing SRJU binary update
// encoding (internal/server/update_wire.go) — the same fuzz-hardened
// bytes that travel on POST /v1/update — wrapped in a CRC32C-framed
// envelope carrying the monotonic per-dataset update ID the router
// stamps. Layout of one dataset directory:
//
//	meta.json             the full engine key (identity of the log)
//	seg-<firstID>.wal     log segments, rotated at a size threshold
//	snap-<lastID>.srs     point-set snapshot covering IDs <= lastID
//
// A segment file is:
//
//	header  : magic uint32 ("SRJW"), version uint8, keyhash uint64
//	record* : crc uint32 (CRC32C of the remaining 12 header bytes and
//	          the payload), id uint64, len uint32, payload bytes
//
// All integers little-endian. The reader is torn-tail tolerant: a
// truncated or corrupt record in the *final* segment marks the clean
// end of the log (the tail is discarded on open, exactly like an
// aborted transaction), while corruption in an interior segment is a
// hard error — bytes fsynced before a later segment was created
// cannot legitimately be damaged by a crash.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	segMagic   = uint32(0x53524a57) // "SRJW"
	segVersion = uint8(1)

	segHeaderLen = 4 + 1 + 8 // magic, version, keyhash
	recHeaderLen = 4 + 8 + 4 // crc, id, len
	segPrefix    = "seg-"
	segSuffix    = ".wal"

	// DefaultSegmentBytes is the rotation threshold: an active segment
	// past this size closes and a fresh one opens, bounding how much
	// pruning must keep and how much an interior-corruption blast
	// radius can be.
	DefaultSegmentBytes = int64(64 << 20)

	// MaxRecordBytes bounds one record's payload so a corrupt length
	// field cannot force an unbounded allocation before the CRC check.
	MaxRecordBytes = 256 << 20
)

// castagnoli is the CRC32C polynomial table (the same checksum family
// storage systems use for on-disk framing; hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports damage the log refuses to read past: a bad
// segment header, or an invalid record anywhere but the final
// segment's tail.
var ErrCorrupt = errors.New("wal: log is corrupt")

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acknowledged update is
	// ever lost, at the cost of one fsync per batch.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs dirty segments on a background ticker
	// (Options.SyncInterval): a crash loses at most one interval of
	// acknowledged updates.
	SyncInterval
	// SyncOff never fsyncs explicitly; the OS page cache decides.
	// Durability is then only as good as a clean process exit.
	SyncOff
)

// ParseSyncPolicy maps the -fsync flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off", "never":
		return SyncOff, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return "always"
}

// Options parameterize a Log (and, through the Manager, every
// dataset's log under one data dir).
type Options struct {
	// SegmentBytes is the rotation threshold (<= 0 means
	// DefaultSegmentBytes).
	SegmentBytes int64
	// Sync is the fsync policy.
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncInterval (<= 0 means
	// 100ms).
	SyncInterval time.Duration
	// KeyHash stamps every segment header; Open refuses segments whose
	// header hash differs — a moved or mislabeled directory fails fast
	// instead of replaying a different dataset's records.
	KeyHash uint64
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

func (o Options) syncInterval() time.Duration {
	if o.SyncInterval > 0 {
		return o.SyncInterval
	}
	return 100 * time.Millisecond
}

// segment is one on-disk log file. Records inside carry consecutive
// IDs; firstID is encoded in the filename so pruning and ordering
// never need to open the file.
type segment struct {
	name    string
	firstID uint64
	lastID  uint64 // last valid record ID; firstID-1 when empty
	size    int64  // valid byte size (header + intact records)
}

// Log is the append-only segment log of one dataset. All methods are
// safe for concurrent use; appends serialize internally.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	segs    []segment
	f       *os.File // active (final) segment, nil until first append
	dirty   bool     // active segment has unsynced bytes
	lastID  uint64   // last appended/recovered record ID
	appends uint64
	syncs   uint64
	closed  bool

	stop     chan struct{} // closes the SyncInterval flusher
	flushErr error         // first background fsync failure, surfaced on Close
	wg       sync.WaitGroup
}

// OpenLog opens (or initializes) the segment log in dir, scanning
// every segment, truncating a torn tail off the final one, and
// refusing interior corruption or a key-hash mismatch. dir must
// exist.
func OpenLog(dir string, opts Options) (*Log, error) {
	l := &Log{dir: dir, opts: opts}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.wg.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// scan reads the directory, validates every segment in order, and
// truncates the final segment's torn tail (if any) on disk.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
		if err != nil {
			return fmt.Errorf("%w: segment name %q", ErrCorrupt, name)
		}
		segs = append(segs, segment{name: name, firstID: first})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].firstID < segs[b].firstID })
	// A crash during rotation can leave a final segment shorter than
	// its own header (the file exists, the header write never landed).
	// It cannot hold records — drop it like any other torn tail.
	for len(segs) > 0 {
		last := segs[len(segs)-1]
		fi, err := os.Stat(filepath.Join(l.dir, last.name))
		if err != nil {
			return err
		}
		if fi.Size() >= segHeaderLen {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, last.name)); err != nil {
			return err
		}
		segs = segs[:len(segs)-1]
	}
	prevLast := uint64(0)
	for i := range segs {
		s := &segs[i]
		if i > 0 && s.firstID != prevLast+1 {
			return fmt.Errorf("%w: segment %s starts at ID %d, want %d", ErrCorrupt, s.name, s.firstID, prevLast+1)
		}
		final := i == len(segs)-1
		if err := l.scanSegment(s, final); err != nil {
			return err
		}
		prevLast = s.lastID
	}
	l.segs = segs
	l.lastID = prevLast
	return nil
}

// scanSegment validates one segment file, filling lastID and size. On
// the final segment an invalid tail is truncated off the file; on an
// interior segment it is ErrCorrupt.
func (l *Log) scanSegment(s *segment, final bool) error {
	path := filepath.Join(l.dir, s.name)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fmt.Errorf("%w: segment %s header: %v", ErrCorrupt, s.name, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[:4]); m != segMagic {
		return fmt.Errorf("%w: segment %s has bad magic %#x", ErrCorrupt, s.name, m)
	}
	if v := hdr[4]; v != segVersion {
		return fmt.Errorf("%w: segment %s has unsupported version %d", ErrCorrupt, s.name, v)
	}
	if kh := binary.LittleEndian.Uint64(hdr[5:]); kh != l.opts.KeyHash {
		return fmt.Errorf("%w: segment %s key hash %#x does not match this dataset (%#x)", ErrCorrupt, s.name, kh, l.opts.KeyHash)
	}
	s.lastID = s.firstID - 1
	s.size = segHeaderLen
	next := s.firstID
	r := &countReader{r: f, n: segHeaderLen}
	for {
		id, _, err := readRecord(r, next, nil)
		if errors.Is(err, io.EOF) {
			break // clean end of segment
		}
		if err != nil {
			if !final {
				return fmt.Errorf("%w: segment %s record after ID %d: %v", ErrCorrupt, s.name, s.lastID, err)
			}
			// Torn tail: everything before this record is intact;
			// truncate the damage off so appends resume on a clean end.
			return os.Truncate(path, s.size)
		}
		s.lastID = id
		s.size = r.n
		next = id + 1
	}
	return nil
}

// countReader tracks the byte offset of the last fully-consumed
// record boundary.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readRecord consumes one record. wantID is the expected (consecutive)
// ID; 0 disables the check. A clean end-of-stream returns io.EOF; any
// other failure (short read, CRC mismatch, oversized length, ID out of
// sequence) is an error describing the damage. When into is non-nil
// the payload is appended to it and returned.
func readRecord(r io.Reader, wantID uint64, into []byte) (uint64, []byte, error) {
	var hdr [recHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("truncated record header: %w", err)
	}
	crc := binary.LittleEndian.Uint32(hdr[:4])
	id := binary.LittleEndian.Uint64(hdr[4:12])
	ln := binary.LittleEndian.Uint32(hdr[12:])
	if int64(ln) > MaxRecordBytes {
		return 0, nil, fmt.Errorf("record length %d exceeds bound", ln)
	}
	start := len(into)
	payload := append(into, make([]byte, ln)...)
	if _, err := io.ReadFull(r, payload[start:]); err != nil {
		return 0, nil, fmt.Errorf("truncated record payload: %w", err)
	}
	sum := crc32.Update(crc32.Checksum(hdr[4:], castagnoli), castagnoli, payload[start:])
	if sum != crc {
		return 0, nil, fmt.Errorf("record CRC mismatch (stored %#x, computed %#x)", crc, sum)
	}
	if wantID != 0 && id != wantID {
		return 0, nil, fmt.Errorf("record ID %d out of sequence (want %d)", id, wantID)
	}
	return id, payload[start:], nil
}

// openActive opens the final segment for appending, positioned at its
// valid end. No segments yet means the first Append creates one.
func (l *Log) openActive() error {
	if len(l.segs) == 0 {
		return nil
	}
	s := &l.segs[len(l.segs)-1]
	f, err := os.OpenFile(filepath.Join(l.dir, s.name), os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if _, err := f.Seek(s.size, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.f = f
	return nil
}

// Append writes one record. id must be exactly lastID+1 — the store
// stamps consecutive IDs, and the consecutive-ID invariant is what
// lets recovery distinguish a pruned prefix from a lost record.
func (l *Log) Append(id uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if id != l.lastID+1 {
		return fmt.Errorf("wal: append ID %d out of sequence (last applied %d)", id, l.lastID)
	}
	if int64(len(payload)) > MaxRecordBytes {
		return fmt.Errorf("wal: record payload %d bytes exceeds bound", len(payload))
	}
	rec := int64(recHeaderLen + len(payload))
	active := len(l.segs) - 1
	if l.f == nil || (l.segs[active].size+rec > l.opts.segmentBytes() && l.segs[active].size > segHeaderLen) {
		if err := l.rotateLocked(id); err != nil {
			return err
		}
		active = len(l.segs) - 1
	}
	buf := make([]byte, recHeaderLen, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint64(buf[4:12], id)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(payload)))
	buf = append(buf, payload...)
	binary.LittleEndian.PutUint32(buf[:4], crc32.Checksum(buf[4:], castagnoli))
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.segs[active].size += rec
	l.segs[active].lastID = id
	l.lastID = id
	l.appends++
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.syncs++
	case SyncInterval:
		l.dirty = true
	}
	return nil
}

// rotateLocked closes the active segment (fsyncing it regardless of
// policy — a sealed segment is immutable history) and opens a fresh
// one whose first record will be id. Called with mu held.
func (l *Log) rotateLocked(id uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.syncs++
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	name := fmt.Sprintf("%s%016x%s", segPrefix, id, segSuffix)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], segMagic)
	hdr[4] = segVersion
	binary.LittleEndian.PutUint64(hdr[5:], l.opts.KeyHash)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segs = append(l.segs, segment{name: name, firstID: id, lastID: id - 1, size: segHeaderLen})
	return nil
}

// Replay streams every intact record, in ID order, to fn. It re-reads
// from disk (recovery runs it once, before serving), holding the
// append lock for the duration.
func (l *Log) Replay(fn func(id uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.segs {
		s := &l.segs[i]
		if err := l.replaySegment(s, fn); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(s *segment, fn func(id uint64, payload []byte) error) error {
	f, err := os.Open(filepath.Join(l.dir, s.name))
	if err != nil {
		return err
	}
	defer f.Close()
	// The header was validated at open; skip it. Reading is bounded by
	// the validated size so a torn tail past it (already truncated on
	// disk at open, but be defensive) is never re-read.
	r := io.LimitReader(f, s.size)
	if _, err := io.CopyN(io.Discard, r, segHeaderLen); err != nil {
		return fmt.Errorf("%w: segment %s header: %v", ErrCorrupt, s.name, err)
	}
	next := s.firstID
	for next <= s.lastID {
		id, payload, err := readRecord(r, next, nil)
		if err != nil {
			return fmt.Errorf("%w: segment %s record %d: %v", ErrCorrupt, s.name, next, err)
		}
		if err := fn(id, payload); err != nil {
			return err
		}
		next = id + 1
	}
	return nil
}

// Prune removes whole segments whose records are all covered by a
// snapshot at upTo. The active segment always survives (it holds the
// append position); partially-covered segments survive too — replay
// skips their covered prefix by ID.
func (l *Log) Prune(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	removed := false
	for i := range l.segs {
		s := l.segs[i]
		if i < len(l.segs)-1 && s.lastID <= upTo {
			if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
				return err
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// LastID reports the last appended (or recovered) record ID.
func (l *Log) LastID() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastID
}

// FirstID reports the first record ID the log still holds (0 when the
// log is empty). Pruning moves it forward; the dataset layer checks it
// against the snapshot so a lost leading segment — indistinguishable
// from pruning down here — cannot silently shorten recovered history.
func (l *Log) FirstID() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return 0
	}
	return l.segs[0].firstID
}

// LogStats is the observable state of one segment log.
type LogStats struct {
	Segments int
	Bytes    int64
	LastID   uint64
	Appends  uint64
	Syncs    uint64
}

// Stats snapshots the log's counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LogStats{Segments: len(l.segs), LastID: l.lastID, Appends: l.appends, Syncs: l.syncs}
	for _, s := range l.segs {
		st.Bytes += s.size
	}
	return st
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.syncInterval())
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && l.f != nil && !l.closed {
				if err := l.f.Sync(); err != nil && l.flushErr == nil {
					l.flushErr = err
				}
				l.syncs++
				l.dirty = false
			}
			l.mu.Unlock()
		}
	}
}

// Close syncs and closes the active segment and stops the background
// flusher. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		l.wg.Wait()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushErr
	if l.f != nil {
		if serr := l.f.Sync(); serr != nil && err == nil {
			err = serr
		}
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// syncDir fsyncs a directory so entry creations/removals survive a
// crash (the file-content fsync alone does not cover the dirent).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
