// Package router shards engine keys across a fleet of srjserver
// backends. The registry (one process) amortizes preprocessing per
// key; the server (one host) amortizes it across clients; the router
// amortizes across *hosts*: a consistent-hash ring assigns each
// (dataset, l, algorithm, seed) key a home backend, so the fleet's
// aggregate memory budget scales horizontally and a key's structures
// are built on exactly one host instead of everywhere.
//
// The Router is itself a Source factory — Bind fixes a key and
// returns the same Draw/DrawFunc contract srj.Engine and srj.Client
// serve, so callers cannot tell a sharded fleet from a single engine,
// and the shared conformance suite holds it to that.
//
// Failure handling draws one line: *transport* failures (connection
// refused, a stream dying mid-frame, a malformed response) mark the
// backend unhealthy and fail the draw over to the next ring node —
// which is exactly where the key would live if the backend were
// removed, so retried keys land where a ring resize would put them
// anyway. *Semantic* answers (an HTTP error or in-stream error frame
// from a backend that understood the request: ErrSampleCap,
// ErrBadRequest, ErrEmptyJoin, ErrLowAcceptance) and the caller's own
// context expiring surface unchanged — retrying a request the fleet
// understood and refused would turn every client error into n client
// errors and every cancellation into a stampede.
//
// Because the update broadcast keeps every shard's store a
// byte-identical replica, reads need not pin to the ring owner:
// Options.ReadReplicas spreads each key's draws across the first k
// healthy nodes of its failover order, and AddBackend/RemoveBackend
// resize the ring on a live router (see membership.go).
package router

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/server"
)

// Defaults for optional Options fields.
const (
	// DefaultVNodes is the virtual nodes per backend: enough that the
	// largest arc a backend owns stays close to 1/n of the ring.
	DefaultVNodes = 64
	// DefaultProbeInterval paces the background health probes.
	DefaultProbeInterval = 5 * time.Second
	// probeTimeout bounds one /healthz probe.
	probeTimeout = 2 * time.Second
	// maxKeyStats bounds the per-key routing table so adversarial key
	// churn cannot grow it without bound; keys beyond the cap still
	// route (the ring is stateless), they just go uncounted.
	maxKeyStats = 1024
	// maxKeySeqs bounds the per-key update sequencer map the same way.
	// Evicting a cold sequencer is safe because probing the fleet for
	// the key's highest last-applied ID is the documented cold-start
	// path — a re-entering key re-probes and resumes the sequence.
	maxKeySeqs = 1024
)

// Options configures New. The zero value serves: DefaultVNodes
// virtual nodes, DefaultProbeInterval background probing, one read
// replica, and http.DefaultClient.
type Options struct {
	// VNodes is the virtual nodes per backend (default DefaultVNodes).
	VNodes int
	// ReadReplicas spreads each key's draws across the first k healthy
	// nodes of its failover order instead of pinning every read to the
	// ring owner (default 1 — today's owner-only routing). Safe
	// because the update broadcast keeps every shard's store a
	// byte-identical replica, and a nonzero request seed makes the
	// sampled stream independent of which engine serves it. The
	// replica choice is a deterministic tie-break from the request
	// seed and the key hash — never wall clock or a global RNG — so a
	// seeded draw returns byte-identical samples no matter which
	// replica answers; unseeded draws rotate round-robin. Values
	// beyond the healthy backend count are clamped per draw.
	ReadReplicas int
	// ProbeInterval paces background /healthz probes of every backend
	// (default DefaultProbeInterval); negative disables probing —
	// health is then tracked passively, from request outcomes only.
	ProbeInterval time.Duration
	// HTTPClient is shared by all backend clients; nil uses
	// http.DefaultClient. For many concurrent draws use a transport
	// with MaxIdleConnsPerHost sized to the concurrency.
	HTTPClient *http.Client
	// Logger receives structured logs: the proxy access log at Info,
	// failovers at Warn (with the request ID, so a failover line joins
	// up with the backend's and client's view of the same draw). nil
	// disables logging.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// handler returned by Handler(). Off by default.
	EnablePprof bool
}

// backend is one srjserver plus its routing state.
type backend struct {
	addr   string
	client *server.Client

	healthy   atomic.Bool   // flipped by probes and request outcomes
	requests  atomic.Uint64 // draw attempts routed here
	failures  atomic.Uint64 // attempts the backend answered with an error or failed in transport
	failovers atomic.Uint64 // transport failures that moved a draw onward
	inflight  atomic.Int64  // draws currently streaming from this backend
}

// fleet is one immutable membership snapshot: the backends and the
// ring built over their addresses, with ring indices positional into
// the backends slice. Readers load one snapshot per operation and
// never see a half-resized fleet; membership changes build a new
// fleet and swap the pointer.
type fleet struct {
	backends []*backend
	ring     *ring
}

// keyCounter is the per-key routing record.
type keyCounter struct {
	backend   string // backend that served the key's latest draw
	draws     uint64
	failovers uint64
}

// Router routes engine keys across a fleet of srjserver backends by
// consistent hashing. Construct with New; Close stops the health
// prober. Safe for concurrent use. The fleet is resizable at runtime
// via AddBackend/RemoveBackend.
type Router struct {
	fleet    atomic.Pointer[fleet]
	vnodes   int
	replicas int
	hc       *http.Client // shared by backend clients, kept for AddBackend
	start    time.Time
	logger   *slog.Logger
	pprof    bool

	// Push-side metrics. Per-backend series come from the backend
	// atomics instead — membership is admin-bounded, so the backend
	// label stays bounded and those counters stay monotonic per
	// backend.
	drawHist    *obs.Histogram  // srj_draw_duration_seconds (all algorithms, one proxy path)
	drawSamples atomic.Uint64   // srj_draw_samples_total
	requests    *obs.CounterVec // srj_requests_total{code}, fed by the handler

	// rr rotates unseeded draws across read replicas.
	rr atomic.Uint64

	// updateMu fences updates against membership changes: every
	// stamped broadcast holds the read side for its whole flight, and
	// AddBackend holds the write side across state transfer + fleet
	// swap — so an update either completes entirely against the old
	// fleet (and is captured by the transferred snapshots) or starts
	// after the swap (and broadcasts to the new node). Reads never
	// block on it.
	updateMu sync.RWMutex
	// memberMu serializes membership operations among themselves.
	memberMu sync.Mutex

	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once

	mu          sync.Mutex
	keys        map[registry.Key]*keyCounter
	keysDropped uint64

	// Per-key update sequencing (see ApplyUpdate). seqMu guards the
	// map and the clock; each keySeq serializes stamping for its key.
	seqMu    sync.Mutex
	seq      map[registry.Key]*keySeq
	seqClock uint64 // advances per keySeqFor call; orders eviction
}

// keySeq is the update-ID counter of one dataset key. init false
// means the next stamp must first probe the fleet for its highest
// last-applied ID — at first use, and again after any broadcast
// failure left the fleet state uncertain. outstanding tracks stamps
// currently in flight (refcounted, to tolerate concurrent retries at
// one ID): a re-probe seeds next above them, so a failed broadcast
// can never cause a concurrent in-flight ID to be re-stamped with
// different contents — the one mistake probeSeq's doc calls
// unrecoverable.
type keySeq struct {
	mu          sync.Mutex
	init        bool
	next        uint64
	outstanding map[uint64]int
	// dead marks an entry evicted from r.seq; a stamper that raced
	// the eviction re-fetches a live entry instead of using it.
	dead bool
	// lastUse is the seqClock at the entry's latest keySeqFor hit;
	// guarded by Router.seqMu, not ks.mu.
	lastUse uint64
}

// note records a stamp entering flight. Caller holds ks.mu.
func (ks *keySeq) note(id uint64) {
	if ks.outstanding == nil {
		ks.outstanding = make(map[uint64]int)
	}
	ks.outstanding[id]++
}

// done records a stamp leaving flight. Caller holds ks.mu.
func (ks *keySeq) done(id uint64) {
	if n := ks.outstanding[id]; n > 1 {
		ks.outstanding[id] = n - 1
	} else {
		delete(ks.outstanding, id)
	}
}

// New returns a router over the given backend base URLs (e.g.
// "http://shard0:8080"). The address strings are identity: the ring
// hashes them, so spelling a backend two ways makes two ring members.
func New(backends []string, opts Options) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("router: at least one backend is required")
	}
	if opts.VNodes <= 0 {
		opts.VNodes = DefaultVNodes
	}
	if opts.ReadReplicas <= 0 {
		opts.ReadReplicas = 1
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}
	addrs := make([]string, 0, len(backends))
	seen := map[string]bool{}
	for _, a := range backends {
		a = strings.TrimRight(strings.TrimSpace(a), "/")
		if a == "" {
			return nil, errors.New("router: empty backend address")
		}
		if seen[a] {
			return nil, fmt.Errorf("router: duplicate backend %q", a)
		}
		seen[a] = true
		addrs = append(addrs, a)
	}
	r := &Router{
		vnodes:   opts.VNodes,
		replicas: opts.ReadReplicas,
		hc:       opts.HTTPClient,
		start:    time.Now(),
		keys:     make(map[registry.Key]*keyCounter),
		seq:      make(map[registry.Key]*keySeq),
		logger:   opts.Logger,
		pprof:    opts.EnablePprof,
		drawHist: obs.NewHistogram(obs.DrawDurationBuckets),
		requests: obs.NewCounterVec(),
	}
	f := &fleet{ring: buildRing(addrs, opts.VNodes)}
	for _, a := range addrs {
		b := &backend{addr: a, client: server.NewClient(a, opts.HTTPClient)}
		b.healthy.Store(true) // optimistic until a probe or request says otherwise
		f.backends = append(f.backends, b)
	}
	r.fleet.Store(f)
	if opts.ProbeInterval > 0 {
		r.probeStop = make(chan struct{})
		r.probeDone = make(chan struct{})
		go r.probeLoop(opts.ProbeInterval)
	}
	return r, nil
}

// Close stops the background health prober. Draws through the router
// keep working after Close; health is then tracked passively.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		if r.probeStop != nil {
			close(r.probeStop)
			<-r.probeDone
		}
	})
}

// probeLoop probes every backend once per interval until Close.
func (r *Router) probeLoop(interval time.Duration) {
	defer close(r.probeDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.probeStop:
			return
		case <-t.C:
			r.ProbeNow(context.Background())
		}
	}
}

// broadcast runs fn against every backend of the snapshot
// concurrently and returns the per-backend results, indexed like
// f.backends. Fleet-wide operations (probes, evictions, stats
// collection) use it so one slow backend costs its own timeout, not
// everyone's summed.
func (f *fleet) broadcast(fn func(i int, b *backend) error) []error {
	errs := make([]error, len(f.backends))
	var wg sync.WaitGroup
	for i, b := range f.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			errs[i] = fn(i, b)
		}(i, b)
	}
	wg.Wait()
	return errs
}

// ProbeNow probes every backend's /healthz once, concurrently,
// updates the health flags, and returns the number healthy. The
// background prober calls it on its interval; callers wanting fresh
// health before a burst (or with probing disabled) call it directly.
func (r *Router) ProbeNow(ctx context.Context) int {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	f := r.fleet.Load()
	healthy := 0
	for _, err := range f.broadcast(func(_ int, b *backend) error {
		err := b.client.Health(ctx)
		b.healthy.Store(err == nil)
		return err
	}) {
		if err == nil {
			healthy++
		}
	}
	return healthy
}

// Health reports whether the fleet can serve: it probes every backend
// now and errors only when none answers — the ring routes around any
// smaller outage.
func (r *Router) Health(ctx context.Context) error {
	if n := r.ProbeNow(ctx); n == 0 {
		return fmt.Errorf("router: none of the %d backends is healthy", len(r.fleet.Load().backends))
	}
	return nil
}

// Backends lists the backend base URLs of the current fleet, in
// membership order (construction order, runtime additions appended).
func (r *Router) Backends() []string {
	f := r.fleet.Load()
	out := make([]string, len(f.backends))
	for i, b := range f.backends {
		out[i] = b.addr
	}
	return out
}

// Locate returns the backend address that owns key on the ring — the
// stable assignment, ignoring health (failover is a per-draw detour,
// not a reassignment). The same key normalization as Bind applies.
func (r *Router) Locate(key registry.Key) string {
	f := r.fleet.Load()
	return f.backends[f.ring.owner(hashKey(normalizeKey(key)))].addr
}

// normalizeKey applies the fleet-wide default algorithm, exactly like
// Client.Bind and the server's SampleRequest.Key, so the ring and the
// backends agree on what key a request addresses.
func normalizeKey(key registry.Key) registry.Key {
	key.Algorithm = server.NormalizeAlgorithm(key.Algorithm)
	return key
}

// Bound is a Router fixed to one engine key: a Source. Create with
// Bind.
type Bound struct {
	r   *Router
	key registry.Key
}

// Bind fixes one engine key and returns the Source serving it through
// the ring. An empty Algorithm defaults to "bbst".
func (r *Router) Bind(key registry.Key) *Bound {
	return &Bound{r: r, key: normalizeKey(key)}
}

// Key returns the engine key the source is bound to.
func (b *Bound) Key() registry.Key { return b.key }

// Draw serves one request through the key's shard (failing over along
// the ring on transport errors). See the srj.Source contract; with
// req.Into the accumulation is allocation-free.
func (b *Bound) Draw(ctx context.Context, req engine.Request) (engine.Result, error) {
	start := time.Now()
	t, err := req.Resolve()
	if err != nil {
		return engine.Result{Elapsed: time.Since(start)}, err
	}
	var out []geom.Pair
	if req.Into != nil {
		// Total delivery is bounded by t <= len(Into) (each attempt
		// aborts on over-delivery and retries only fill the gap), so
		// the appends never reallocate: Result.Pairs stays backed by
		// the caller's buffer.
		out = req.Into[:0]
	} else {
		capHint := t
		if capHint > server.MaxFramePairs {
			capHint = server.MaxFramePairs
		}
		out = make([]geom.Pair, 0, capHint)
	}
	err = b.r.drawFunc(ctx, b.key, t, req.Seed, func(batch []geom.Pair) error {
		out = append(out, batch...)
		return nil
	})
	return engine.Result{Pairs: out, Elapsed: time.Since(start)}, err
}

// DrawFunc serves one request, streaming each batch to fn as it
// arrives off the wire from the key's shard. The batch's backing
// array is reused; fn must not retain it. See the srj.Source
// contract: req.Into never receives samples here.
func (b *Bound) DrawFunc(ctx context.Context, req engine.Request, fn func(batch []geom.Pair) error) error {
	t, err := req.ResolveStream()
	if err != nil {
		return err
	}
	return b.r.drawFunc(ctx, b.key, t, req.Seed, fn)
}

// drawFunc is the routed draw: walk the key's replica order (healthy
// backends first, the chosen replica rotated to the front), stream
// from the first that answers, and on a transport failure resume on
// the next node without replaying what fn already received — the
// retry re-requests the full stream and skips the delivered prefix,
// so a seeded draw stays byte-identical whether or not a shard died
// under it, and an unseeded one never double-delivers.
func (r *Router) drawFunc(ctx context.Context, key registry.Key, t int, seed uint64, fn func(batch []geom.Pair) error) error {
	sreq := server.SampleRequest{
		Dataset:   key.Dataset,
		L:         key.L,
		Algorithm: key.Algorithm,
		Seed:      key.Seed,
		DrawSeed:  seed,
		T:         t,
	}
	f := r.fleet.Load()
	order := r.order(f, key, seed)
	delivered := 0
	failovers := 0
	start := time.Now()
	defer func() {
		// One observation per routed draw, after the last attempt —
		// failover detours are part of the latency the caller saw.
		r.drawHist.Observe(time.Since(start).Seconds())
		r.drawSamples.Add(uint64(delivered))
	}()
	var lastErr error
	for _, bi := range order {
		b := f.backends[bi]
		b.requests.Add(1)
		b.inflight.Add(1)
		skip := delivered
		var fnErr error
		err := b.client.SampleFunc(ctx, sreq, func(batch []geom.Pair) error {
			if skip > 0 {
				if len(batch) <= skip {
					skip -= len(batch)
					return nil
				}
				batch = batch[skip:]
				skip = 0
			}
			delivered += len(batch)
			if ferr := fn(batch); ferr != nil {
				fnErr = ferr
				return ferr
			}
			return nil
		})
		b.inflight.Add(-1)
		if err == nil {
			b.healthy.Store(true)
			r.noteKey(key, b.addr, failovers)
			return nil
		}
		if fnErr != nil {
			// fn's own error is returned verbatim and never retried
			// (and never counted against the backend): the caller
			// aborted the draw, the fleet didn't fail it.
			return fnErr
		}
		switch classify(err) {
		case errAnswer:
			// The backend is alive — it answered, with a refusal or a
			// sampler failure. Surface it unchanged; retrying an
			// answer on every shard would turn one client error into
			// n of them.
			b.failures.Add(1)
			r.noteKey(key, b.addr, failovers)
			return err
		case errCaller:
			// The caller's own context expired; nobody failed.
			return err
		}
		// Transport failure: mark the backend down (the prober will
		// bring it back) and resume on the next ring node.
		b.failures.Add(1)
		b.healthy.Store(false)
		b.failovers.Add(1)
		failovers++
		lastErr = err
		if r.logger != nil {
			r.logger.LogAttrs(ctx, slog.LevelWarn, "failover",
				slog.String("request_id", obs.RequestIDFrom(ctx)),
				slog.String("backend", b.addr),
				slog.String("dataset", key.Dataset),
				slog.String("algorithm", key.Algorithm),
				slog.Int("delivered", delivered),
				slog.String("error", err.Error()),
			)
		}
	}
	return fmt.Errorf("router: all %d backends failed for %s: %w", len(order), key, lastErr)
}

// order returns the backends to try for key: its ring sequence,
// stably partitioned so currently-healthy nodes come first, then —
// with ReadReplicas > 1 — rotated so the chosen replica leads and the
// other replicas remain the next failover targets. Each health flag
// is loaded exactly once — a flag flipping between two reads (a probe
// racing a draw) must not drop a backend from, or duplicate it in,
// the failover order.
//
// The replica choice is deterministic for seeded draws: mix64 over
// the request seed and the key hash, so the same seeded request picks
// the same replica on every router — and since every replica's store
// is byte-identical and the stream seed is engine-independent, the
// draw is byte-identical regardless. Unseeded draws rotate a shared
// round-robin cursor instead.
func (r *Router) order(f *fleet, key registry.Key, seed uint64) []int {
	h := hashKey(key)
	seq := f.ring.sequence(h, make([]int, 0, len(f.backends)))
	healthy := make([]bool, len(f.backends))
	for _, bi := range seq {
		healthy[bi] = f.backends[bi].healthy.Load()
	}
	out := make([]int, 0, len(seq))
	for _, bi := range seq {
		if healthy[bi] {
			out = append(out, bi)
		}
	}
	nHealthy := len(out)
	for _, bi := range seq {
		if !healthy[bi] {
			out = append(out, bi)
		}
	}
	if k := r.replicas; k > 1 {
		if k > nHealthy {
			// Never spread onto known-unhealthy nodes: a degraded
			// fleet serves from whoever is left.
			k = nHealthy
		}
		if k > 1 {
			var pick int
			if seed != 0 {
				pick = int(mix64(seed^h) % uint64(k))
			} else {
				pick = int(r.rr.Add(1) % uint64(k))
			}
			rotateLeft(out[:k], pick)
		}
	}
	return out
}

// rotateLeft rotates s left by n (0 <= n < len(s)) in place.
func rotateLeft(s []int, n int) {
	if n == 0 {
		return
	}
	tmp := make([]int, n)
	copy(tmp, s[:n])
	copy(s, s[n:])
	copy(s[len(s)-n:], tmp)
}

// errKind sorts a failed draw attempt by whose fault it is, because
// each answer gets different handling: answers surface (and count
// against the backend), caller cancellations surface (and count
// against nobody), transport failures fail over.
type errKind int

const (
	// errAnswer: the backend understood the request and answered with
	// an error — an *server.APIError or *server.StreamError, including
	// server-side timeouts.
	errAnswer errKind = iota
	// errCaller: the caller's own context expired or was canceled;
	// the fleet did nothing wrong.
	errCaller
	// errTransport: a failure to communicate — connection refused,
	// TLS failures, streams truncated mid-frame, malformed responses,
	// over- and under-delivery. Eligible for failover.
	errTransport
)

// classify maps a draw attempt's error onto its errKind. Order
// matters: an APIError carrying a server-side timeout code unwraps to
// context.DeadlineExceeded too, and it is an answer, not the caller's
// context.
func classify(err error) errKind {
	var apiErr *server.APIError
	var streamErr *server.StreamError
	if errors.As(err, &apiErr) || errors.As(err, &streamErr) {
		return errAnswer
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return errCaller
	}
	return errTransport
}

// noteKey folds one completed draw into the per-key routing table.
func (r *Router) noteKey(key registry.Key, addr string, failovers int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kc, ok := r.keys[key]
	if !ok {
		if len(r.keys) >= maxKeyStats {
			r.keysDropped++
			return
		}
		kc = &keyCounter{}
		r.keys[key] = kc
	}
	kc.backend = addr
	kc.draws++
	kc.failovers += uint64(failovers)
}

// BackendStats is one backend's routing counters.
type BackendStats struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Requests uint64 `json:"requests"` // draw attempts routed here
	// Failures counts attempts the backend answered with an error or
	// failed in transport. Caller-side aborts — an fn error, the
	// caller's own context expiring — are not the backend's failure
	// and are not counted, so this number is alertable.
	Failures  uint64 `json:"failures"`
	Failovers uint64 `json:"failovers"` // transport failures that moved a draw onward
}

// KeyStats is one engine key's routing record.
type KeyStats struct {
	Key       registry.Key `json:"key"`
	Backend   string       `json:"backend"` // backend that served the latest draw
	Draws     uint64       `json:"draws"`
	Failovers uint64       `json:"failovers"`
}

// Stats is a snapshot of the router's routing state: per-backend and
// per-key counters (the latter capped at maxKeyStats tracked keys;
// KeysUntracked counts draws for keys beyond the cap).
type Stats struct {
	Backends      []BackendStats `json:"backends"`
	Keys          []KeyStats     `json:"keys"`
	KeysUntracked uint64         `json:"keys_untracked,omitempty"`
}

// Stats snapshots the routing counters. Under concurrent traffic the
// fields are individually, not jointly, consistent.
func (r *Router) Stats() Stats {
	f := r.fleet.Load()
	st := Stats{Backends: make([]BackendStats, 0, len(f.backends))}
	for _, b := range f.backends {
		st.Backends = append(st.Backends, BackendStats{
			Addr:      b.addr,
			Healthy:   b.healthy.Load(),
			Requests:  b.requests.Load(),
			Failures:  b.failures.Load(),
			Failovers: b.failovers.Load(),
		})
	}
	r.mu.Lock()
	st.Keys = make([]KeyStats, 0, len(r.keys))
	for key, kc := range r.keys {
		st.Keys = append(st.Keys, KeyStats{
			Key:       key,
			Backend:   kc.backend,
			Draws:     kc.draws,
			Failovers: kc.failovers,
		})
	}
	st.KeysUntracked = r.keysDropped
	r.mu.Unlock()
	sort.Slice(st.Keys, func(i, j int) bool { return st.Keys[i].Key.String() < st.Keys[j].Key.String() })
	return st
}

// EvictEngine asks every backend (concurrently) to drop the resident
// engine for key. It broadcasts rather than routing: failover may
// have built the engine on any ring successor, and cleanup must find
// it wherever it landed. evicted reports whether any backend dropped
// one; err reports backends that could not be asked — both can be
// set at once, and evicted=true alongside an error means an
// unreachable backend may still hold the engine.
func (r *Router) EvictEngine(ctx context.Context, key registry.Key) (evicted bool, err error) {
	key = normalizeKey(key)
	f := r.fleet.Load()
	dropped := make([]bool, len(f.backends))
	errs := f.broadcast(func(i int, b *backend) error {
		ok, err := b.client.EvictEngine(ctx, key)
		dropped[i] = ok
		return err
	})
	for i := range f.backends {
		evicted = evicted || dropped[i]
		if errs[i] != nil && err == nil {
			err = fmt.Errorf("router: evicting on %s: %w", f.backends[i].addr, errs[i])
		}
	}
	return evicted, err
}

// UpdateResult reports one fleet-wide update: the highest generation
// any backend answered with, and the update ID the batch was
// sequenced at (for an empty probe, the fleet's highest last-applied
// ID).
type UpdateResult struct {
	Generation uint64
	UpdateID   uint64
}

// ApplyUpdate sequences and broadcasts one insert/delete batch for
// key to every backend. It broadcasts rather than routing for the
// same reason eviction does — failover means any ring successor may
// be serving the key, and a shard whose store missed an update would
// serve deleted points after the next failover — plus one more: the
// key's sibling keys (same dataset, different l) live on other
// shards, and a replicated update stream keeps every shard's store
// serving the same point sets (which is also what makes replicated
// reads byte-identical).
//
// The router is the dataset's sequencer: each non-empty batch is
// stamped with the next per-key update ID (seeded from the fleet's
// highest last-applied ID the first time a key is stamped — so a
// restarted router resumes the sequence, never restarts it) and
// backends apply strictly in ID order, parking small reorderings in a
// gap buffer and acknowledging duplicates idempotently. Concurrent
// ApplyUpdates through ONE router therefore commute onto every shard
// in the same order — byte-identical replicas hold for multi-writer
// traffic. Run one router per dataset's write path; two routers
// stamping the same key independently would fork the sequence.
//
// err reports backends that could not apply. The result's UpdateID
// alongside a non-nil err is the healing handle: re-applying the same
// batch at that explicit ID (ApplyUpdateAt) is idempotent on backends
// that took it and fills the gap on backends that did not. After any
// failed broadcast the sequencer re-probes the fleet before stamping
// again — seeding above both the fleet's high-water mark and any
// stamp still in flight — so an aborted stamp cannot leave a
// permanent hole and cannot re-issue a concurrent in-flight ID.
func (r *Router) ApplyUpdate(ctx context.Context, key registry.Key, u dynamic.Update) (UpdateResult, error) {
	// Updates hold the membership read-fence for their whole flight;
	// see updateMu.
	r.updateMu.RLock()
	defer r.updateMu.RUnlock()
	key = normalizeKey(key)
	f := r.fleet.Load()
	if u.Empty() {
		// A probe consults the fleet without consuming an ID.
		return r.broadcastUpdate(ctx, f, key, u, 0)
	}
	ks := r.lockKeySeq(key)
	if !ks.init {
		last, err := r.probeSeq(ctx, f, key)
		if err != nil {
			ks.mu.Unlock()
			return UpdateResult{}, err
		}
		next := last + 1
		// Never seed below a stamp still in flight: a concurrent
		// update may hold a higher ID than any backend has applied
		// yet, and re-stamping it with different contents would fork
		// the sequence.
		for id := range ks.outstanding {
			if id >= next {
				next = id + 1
			}
		}
		ks.next = next
		ks.init = true
	}
	id := ks.next
	ks.next++
	ks.note(id)
	ks.mu.Unlock()
	// The stamp is taken before the fan-out and the lock is NOT held
	// across it: concurrent updates broadcast in parallel and may
	// arrive at a backend reordered — its gap buffer restores ID
	// order. What the lock guarantees is unique, gapless stamping.
	res, err := r.applyAt(ctx, f, key, id, u)
	ks.mu.Lock()
	ks.done(id)
	if err != nil {
		// Some backends may hold the update, others not; re-probe
		// before the next stamp so the sequence re-converges on what
		// the fleet actually applied. Our own ID is already out of
		// outstanding, so only stamps still genuinely in flight
		// constrain the re-seed.
		ks.init = false
	}
	ks.mu.Unlock()
	return res, err
}

// ApplyUpdateAt broadcasts a batch at an explicit update ID — the
// retry path. A client that got an error carrying a stamped ID (or a
// sequencer of record replaying history) re-applies at the same ID:
// backends that already hold it acknowledge idempotently, backends
// with a gap fill it.
func (r *Router) ApplyUpdateAt(ctx context.Context, key registry.Key, id uint64, u dynamic.Update) (UpdateResult, error) {
	if id == 0 || u.Empty() {
		return r.ApplyUpdate(ctx, key, u)
	}
	r.updateMu.RLock()
	defer r.updateMu.RUnlock()
	key = normalizeKey(key)
	f := r.fleet.Load()
	ks := r.lockKeySeq(key)
	if ks.init && id >= ks.next {
		// Never re-stamp an ID the caller has already used.
		ks.next = id + 1
	}
	// Explicit retries count as in flight too: a failed ApplyUpdate's
	// re-probe must not seed below an ID a caller is actively
	// re-broadcasting.
	ks.note(id)
	ks.mu.Unlock()
	res, err := r.applyAt(ctx, f, key, id, u)
	ks.mu.Lock()
	ks.done(id)
	ks.mu.Unlock()
	return res, err
}

// applyAt broadcasts a stamped batch; the result always carries the
// stamp, even when every backend failed, so callers (and the HTTP
// error body) can hand it back for an idempotent retry.
func (r *Router) applyAt(ctx context.Context, f *fleet, key registry.Key, id uint64, u dynamic.Update) (UpdateResult, error) {
	res, err := r.broadcastUpdate(ctx, f, key, u, id)
	res.UpdateID = id
	return res, err
}

// lockKeySeq returns the key's live sequencer entry with its lock
// held. The loop covers a stamper racing eviction: keySeqFor may
// return an entry evictKeySeqLocked kills before the lock lands, and
// using it would stamp into state no longer reachable from r.seq.
func (r *Router) lockKeySeq(key registry.Key) *keySeq {
	for {
		ks := r.keySeqFor(key)
		ks.mu.Lock()
		if !ks.dead {
			return ks
		}
		ks.mu.Unlock()
	}
}

// keySeqFor returns (creating) the sequencer state of one key,
// evicting the coldest idle entry when the map is at maxKeySeqs.
func (r *Router) keySeqFor(key registry.Key) *keySeq {
	r.seqMu.Lock()
	defer r.seqMu.Unlock()
	r.seqClock++
	ks, ok := r.seq[key]
	if ok {
		ks.lastUse = r.seqClock
		return ks
	}
	if len(r.seq) >= maxKeySeqs {
		r.evictKeySeqLocked()
	}
	ks = &keySeq{lastUse: r.seqClock}
	r.seq[key] = ks
	return ks
}

// evictKeySeqLocked drops the coldest evictable sequencer entry.
// Caller holds r.seqMu. An entry is evictable when its lock is free
// (TryLock — a held lock means a stamp is being taken right now) and
// nothing it stamped is still in flight; if no entry qualifies the
// map briefly exceeds the cap rather than blocking the write path.
// The victim is marked dead under its own lock so a stamper that
// fetched it before the delete re-fetches a live entry.
func (r *Router) evictKeySeqLocked() {
	var victimKey registry.Key
	var victim *keySeq
	for key, ks := range r.seq {
		if !ks.mu.TryLock() {
			continue
		}
		if len(ks.outstanding) > 0 {
			ks.mu.Unlock()
			continue
		}
		if victim == nil || ks.lastUse < victim.lastUse {
			if victim != nil {
				victim.mu.Unlock()
			}
			victimKey, victim = key, ks
			continue
		}
		ks.mu.Unlock()
	}
	if victim == nil {
		return
	}
	victim.dead = true
	victim.mu.Unlock()
	delete(r.seq, victimKey)
}

// probeSeq asks every backend for its last applied update ID (an
// empty update is the probe) and returns the fleet maximum. Every
// backend must answer: seeding the counter below an unreachable
// backend's high-water mark could re-stamp an ID it already holds
// with different contents, the one unrecoverable sequencing mistake.
func (r *Router) probeSeq(ctx context.Context, f *fleet, key registry.Key) (uint64, error) {
	res, err := r.broadcastUpdate(ctx, f, key, dynamic.Update{}, 0)
	if err != nil {
		return 0, fmt.Errorf("router: seeding update sequence for %s: %w", key, err)
	}
	return res.UpdateID, nil
}

// broadcastUpdate fans one update (stamped with id when non-zero) out
// to every backend of the snapshot and folds the responses.
func (r *Router) broadcastUpdate(ctx context.Context, f *fleet, key registry.Key, u dynamic.Update, id uint64) (UpdateResult, error) {
	ureq := server.UpdateRequest{
		Dataset:   key.Dataset,
		L:         key.L,
		Algorithm: key.Algorithm,
		Seed:      key.Seed,
		UpdateID:  id,
		InsertR:   u.InsertR,
		InsertS:   u.InsertS,
		DeleteR:   u.DeleteR,
		DeleteS:   u.DeleteS,
	}
	resps := make([]server.UpdateResponse, len(f.backends))
	errs := f.broadcast(func(i int, b *backend) error {
		resp, err := b.client.ApplyUpdate(ctx, ureq)
		resps[i] = resp
		return err
	})
	var res UpdateResult
	var err error
	for i := range f.backends {
		if errs[i] != nil {
			if err == nil {
				err = fmt.Errorf("router: updating on %s: %w", f.backends[i].addr, errs[i])
			}
			continue
		}
		if resps[i].Generation > res.Generation {
			res.Generation = resps[i].Generation
		}
		if resps[i].UpdateID > res.UpdateID {
			res.UpdateID = resps[i].UpdateID
		}
	}
	return res, err
}

// Apply serves the bound key's update path (the srjtest.Updatable
// contract): the batch is sequenced, broadcast to every shard, and
// the new generation comes back.
func (b *Bound) Apply(ctx context.Context, u dynamic.Update) (uint64, error) {
	res, err := b.r.ApplyUpdate(ctx, b.key, u)
	return res.Generation, err
}

// ServerStats fetches /v1/stats from every backend concurrently,
// keyed by address. Unreachable backends are omitted; the first
// error is returned alongside whatever was collected.
func (r *Router) ServerStats(ctx context.Context) (map[string]server.StatsResponse, error) {
	f := r.fleet.Load()
	stats := make([]server.StatsResponse, len(f.backends))
	errs := f.broadcast(func(i int, b *backend) error {
		var err error
		stats[i], err = b.client.Stats(ctx)
		return err
	})
	out := make(map[string]server.StatsResponse, len(f.backends))
	var firstErr error
	for i, b := range f.backends {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("router: stats from %s: %w", b.addr, errs[i])
			}
			continue
		}
		out[b.addr] = stats[i]
	}
	return out, firstErr
}

// Uptime reports how long the router has been up.
func (r *Router) Uptime() time.Duration { return time.Since(r.start) }
