package router

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"time"

	"repro/internal/geom"
	"repro/internal/registry"
	"repro/internal/server"
)

// Membership errors the admin endpoint maps to HTTP 400; anything
// else a membership change reports is a fleet-side failure (502).
var (
	// ErrAlreadyMember reports AddBackend of an address already in the
	// fleet.
	ErrAlreadyMember = errors.New("router: backend is already a fleet member")
	// ErrNotMember reports RemoveBackend of an address not in the
	// fleet.
	ErrNotMember = errors.New("router: backend is not a fleet member")
	// ErrLastBackend reports RemoveBackend of the only backend: a
	// router with an empty fleet could serve nothing, so the last
	// member is irremovable.
	ErrLastBackend = errors.New("router: cannot remove the last backend")
)

// drainPoll paces the in-flight drain loop in RemoveBackend.
const drainPoll = 5 * time.Millisecond

// prewarmSeed seeds the pre-warm draws RemoveBackend issues for moved
// keys. Fixed and nonzero on purpose: a seeded draw streams from a
// per-request generator, so warming never perturbs the engines' own
// unseeded streams — and determinism keeps the warm path rngdeterminism-
// clean.
const prewarmSeed = 1

// AddBackend grows the fleet by one srjserver at runtime: the address
// is health-probed, every dataset's current store state is replicated
// onto it (snapshot dump from the freshest reachable member, install
// on the newcomer — which seats its per-key last-applied ID so
// subsequent sequenced broadcasts apply gap-free), and only then does
// the ring include it for reads. In-flight stamped updates are fenced
// out during the transfer (they complete against the old fleet and
// are captured by the dumped snapshots; updates arriving after the
// swap broadcast to the new member), so no update can fall between
// the snapshot and the membership change. Draws never block; a draw
// that loaded the old fleet simply does not try the newcomer.
func (r *Router) AddBackend(ctx context.Context, addr string) error {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return errors.New("router: empty backend address")
	}
	r.memberMu.Lock()
	defer r.memberMu.Unlock()
	f := r.fleet.Load()
	for _, b := range f.backends {
		if b.addr == addr {
			return fmt.Errorf("%w: %s", ErrAlreadyMember, addr)
		}
	}
	nb := &backend{addr: addr, client: server.NewClient(addr, r.hc)}
	// Probe before fencing writes: a dead address must fail fast
	// without ever stalling the update path.
	if err := nb.client.Health(ctx); err != nil {
		return fmt.Errorf("router: probing new backend %s: %w", addr, err)
	}
	r.updateMu.Lock()
	defer r.updateMu.Unlock()
	if err := r.replicateStores(ctx, f, nb); err != nil {
		return err
	}
	nb.healthy.Store(true)
	addrs := make([]string, 0, len(f.backends)+1)
	backends := make([]*backend, 0, len(f.backends)+1)
	for _, b := range f.backends {
		addrs = append(addrs, b.addr)
		backends = append(backends, b)
	}
	addrs = append(addrs, addr)
	backends = append(backends, nb)
	r.fleet.Store(&fleet{backends: backends, ring: buildRing(addrs, r.vnodes)})
	if r.logger != nil {
		r.logger.LogAttrs(ctx, slog.LevelInfo, "backend added",
			slog.String("backend", addr),
			slog.Int("fleet_size", len(backends)),
		)
	}
	return nil
}

// replicateStores copies every dataset's dynamic-store state from the
// old fleet onto nb: for each key any reachable member reports a
// store for, dump a snapshot from the member holding the highest
// last-applied update ID and install it on nb. Keys are transferred
// in sorted order so the operation is deterministic.
func (r *Router) replicateStores(ctx context.Context, f *fleet, nb *backend) error {
	stats := make([]server.StatsResponse, len(f.backends))
	errs := f.broadcast(func(i int, b *backend) error {
		var err error
		stats[i], err = b.client.Stats(ctx)
		return err
	})
	type donor struct {
		b      *backend
		lastID uint64
	}
	donors := make(map[registry.Key]donor)
	reachable := 0
	var firstErr error
	for i, b := range f.backends {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("router: stats from %s: %w", b.addr, errs[i])
			}
			continue
		}
		reachable++
		for _, info := range stats[i].Stores {
			d, ok := donors[info.Key]
			if !ok || info.LastAppliedID > d.lastID {
				donors[info.Key] = donor{b: b, lastID: info.LastAppliedID}
			}
		}
	}
	if reachable == 0 {
		return fmt.Errorf("router: no fleet member reachable for state transfer: %w", firstErr)
	}
	keys := make([]registry.Key, 0, len(donors))
	for key := range donors {
		keys = append(keys, key)
	}
	// Install in sorted key order: map iteration order must not
	// decide the transfer sequence (rngdeterminism) or test output.
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, key := range keys {
		d := donors[key]
		dump, err := d.b.client.DumpSnapshot(ctx, key)
		if err != nil {
			return fmt.Errorf("router: dumping %s from %s: %w", key, d.b.addr, err)
		}
		if _, err := nb.client.InstallSnapshot(ctx, dump); err != nil {
			return fmt.Errorf("router: installing %s on %s: %w", key, nb.addr, err)
		}
	}
	return nil
}

// RemoveBackend shrinks the fleet by one member at runtime: the
// backend leaves the ring immediately, its in-flight draws are
// drained, its cached engines are (best-effort) evicted so a
// decommissioned-but-running server does not pin their memory, and
// the keys whose ring home moved are pre-warmed on their new homes so
// the first client draw after the resize does not pay an index build.
// The last remaining backend is irremovable (ErrLastBackend).
func (r *Router) RemoveBackend(ctx context.Context, addr string) error {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return errors.New("router: empty backend address")
	}
	r.memberMu.Lock()
	defer r.memberMu.Unlock()
	f := r.fleet.Load()
	idx := -1
	for i, b := range f.backends {
		if b.addr == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: %s", ErrNotMember, addr)
	}
	if len(f.backends) == 1 {
		return ErrLastBackend
	}
	departing := f.backends[idx]
	moved := r.movedKeys(f, idx)
	addrs := make([]string, 0, len(f.backends)-1)
	backends := make([]*backend, 0, len(f.backends)-1)
	for i, b := range f.backends {
		if i == idx {
			continue
		}
		addrs = append(addrs, b.addr)
		backends = append(backends, b)
	}
	nf := &fleet{backends: backends, ring: buildRing(addrs, r.vnodes)}
	// Fence stamped updates across the swap so no broadcast straddles
	// two memberships; reads pick up the new fleet on their next
	// draw.
	r.updateMu.Lock()
	r.fleet.Store(nf)
	r.updateMu.Unlock()
	drainErr := drainBackend(ctx, departing)
	// Best-effort cleanup: the departing server may already be gone,
	// and that is fine — eviction only matters when it lives on.
	if engines, err := departing.client.Engines(ctx); err == nil {
		seen := make(map[registry.Key]bool)
		for _, e := range engines {
			key := e.Key
			key.Generation = 0
			if seen[key] {
				continue
			}
			seen[key] = true
			departing.client.EvictEngine(ctx, key) //nolint:errcheck // best-effort
		}
	}
	for _, key := range moved {
		// A seeded one-sample draw routes through the new fleet and
		// forces the key's new home to build (or fetch) its engine;
		// errors are the next real draw's problem, not removal's.
		_ = r.drawFunc(ctx, key, 1, prewarmSeed, func([]geom.Pair) error { return nil })
	}
	if r.logger != nil {
		r.logger.LogAttrs(ctx, slog.LevelInfo, "backend removed",
			slog.String("backend", addr),
			slog.Int("fleet_size", len(backends)),
			slog.Int("keys_prewarmed", len(moved)),
		)
	}
	return drainErr
}

// movedKeys returns the tracked keys whose ring owner is the backend
// at index idx of f — the keys whose home moves when it leaves.
// Sorted for deterministic pre-warm order.
func (r *Router) movedKeys(f *fleet, idx int) []registry.Key {
	r.mu.Lock()
	var moved []registry.Key
	for key := range r.keys {
		if f.ring.owner(hashKey(key)) == idx {
			moved = append(moved, key)
		}
	}
	r.mu.Unlock()
	sort.Slice(moved, func(i, j int) bool { return moved[i].String() < moved[j].String() })
	return moved
}

// drainBackend waits for the backend's in-flight draws to finish.
// Draws that loaded the pre-removal fleet but have not dispatched yet
// can still land one attempt after the drain returns — the departing
// server answers them like any other request, so the drain is a
// bound on disruption, not a hard fence.
func drainBackend(ctx context.Context, b *backend) error {
	if b.inflight.Load() == 0 {
		return nil
	}
	t := time.NewTicker(drainPoll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("router: draining %s: %d draws still in flight: %w", b.addr, b.inflight.Load(), ctx.Err())
		case <-t.C:
			if b.inflight.Load() == 0 {
				return nil
			}
		}
	}
}
