package router

// White-box tests of the per-key update sequencer: the re-probe race
// regression (a failed broadcast must never cause a concurrent
// in-flight stamp to be re-issued with different contents) and the
// bound on the sequencer map.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/registry"
	"repro/internal/server"
)

// seqBackend is a fake shard for sequencer tests: it answers
// /v1/update like a store would — empty updates report the highest
// applied ID, non-empty updates apply at their stamped ID — while
// letting the test hold chosen updates in flight (gate) and fail
// others (fail). Updates are identified by a marker: the ID of their
// first inserted R point.
type seqBackend struct {
	t *testing.T

	mu       sync.Mutex
	applied  map[string]uint64           // per key: highest successfully applied update ID
	byStamp  map[string]map[uint64]int32 // per key: update ID -> marker that carried it
	conflict bool                        // one ID seen with two different markers

	gate    map[int32]chan struct{} // marker -> release gate
	fail    map[int32]bool          // markers answered with a 500
	arrived chan int32              // marker arrival order
}

func newSeqBackend(t *testing.T) (*seqBackend, *httptest.Server) {
	t.Helper()
	sb := &seqBackend{
		t:       t,
		applied: map[string]uint64{},
		byStamp: map[string]map[uint64]int32{},
		gate:    map[int32]chan struct{}{},
		fail:    map[int32]bool{},
		arrived: make(chan int32, 64),
	}
	ts := httptest.NewServer(http.HandlerFunc(sb.serve))
	t.Cleanup(ts.Close)
	return sb, ts
}

// hold registers a gate for marker; the update stays in flight until
// the returned func is called.
func (sb *seqBackend) hold(marker int32) func() {
	ch := make(chan struct{})
	sb.mu.Lock()
	sb.gate[marker] = ch
	sb.mu.Unlock()
	return func() { close(ch) }
}

func (sb *seqBackend) failMarker(marker int32) {
	sb.mu.Lock()
	sb.fail[marker] = true
	sb.mu.Unlock()
}

func (sb *seqBackend) serve(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/update" {
		w.WriteHeader(http.StatusOK)
		return
	}
	req, ok := server.DecodeUpdateRequest(w, r, 0)
	if !ok {
		return
	}
	// Sequences are per dataset key, exactly like real stores.
	dkey := fmt.Sprintf("%s/%g/%s/%d", req.Dataset, req.L, req.Algorithm, req.Seed)
	if len(req.InsertR) == 0 {
		// A sequence probe: report the key's applied high-water mark.
		sb.mu.Lock()
		last := sb.applied[dkey]
		sb.mu.Unlock()
		json.NewEncoder(w).Encode(server.UpdateResponse{Generation: last, UpdateID: last})
		return
	}
	marker := req.InsertR[0].ID
	sb.mu.Lock()
	if sb.byStamp[dkey] == nil {
		sb.byStamp[dkey] = map[uint64]int32{}
	}
	if prev, seen := sb.byStamp[dkey][req.UpdateID]; seen && prev != marker {
		// The unrecoverable sequencing mistake: one ID, two contents.
		sb.conflict = true
		sb.t.Errorf("update ID %d re-stamped: marker %d then %d", req.UpdateID, prev, marker)
	}
	sb.byStamp[dkey][req.UpdateID] = marker
	gate := sb.gate[marker]
	fail := sb.fail[marker]
	sb.mu.Unlock()

	sb.arrived <- marker
	if gate != nil {
		<-gate
	}
	if fail {
		server.WriteError(w, http.StatusInternalServerError, server.CodeInternal, "injected failure for marker %d", marker)
		return
	}
	sb.mu.Lock()
	if req.UpdateID > sb.applied[dkey] {
		sb.applied[dkey] = req.UpdateID
	}
	last := sb.applied[dkey]
	sb.mu.Unlock()
	json.NewEncoder(w).Encode(server.UpdateResponse{Generation: last, Ops: req.Ops().Ops(), UpdateID: req.UpdateID})
}

func seqRouter(t *testing.T, url string) *Router {
	t.Helper()
	rt, err := New([]string{url}, Options{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func markerUpdate(marker int32) dynamic.Update {
	return dynamic.Update{InsertR: []geom.Point{{ID: marker, X: 1, Y: 1}}}
}

func awaitMarker(t *testing.T, sb *seqBackend, want int32) {
	t.Helper()
	select {
	case got := <-sb.arrived:
		if got != want {
			t.Fatalf("backend saw marker %d, want %d", got, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("marker %d never reached the backend", want)
	}
}

// TestSequencerReprobeRace is the regression test for the re-probe
// race: update A fails its broadcast while update B — holding a
// higher stamped ID — is still in flight. The failure flips the key's
// sequencer back to the probe-on-next-stamp state, and the fleet's
// high-water mark is still below B's ID; before the fix the next
// stamp re-seeded from the probe alone and re-issued B's ID with
// different contents. The sequencer must seed above every stamp still
// in flight.
func TestSequencerReprobeRace(t *testing.T) {
	sb, ts := newSeqBackend(t)
	rt := seqRouter(t, ts.URL)
	key := registry.Key{Dataset: "seq", L: 100, Algorithm: "bbst", Seed: 1}
	ctx := context.Background()

	// A (marker 1) stamps ID 1 and blocks in flight.
	releaseA := sb.hold(1)
	sb.failMarker(1)
	resA := make(chan error, 1)
	go func() {
		_, err := rt.ApplyUpdate(ctx, key, markerUpdate(1))
		resA <- err
	}()
	awaitMarker(t, sb, 1)

	// B (marker 2) stamps ID 2 and blocks in flight.
	releaseB := sb.hold(2)
	resB := make(chan UpdateResult, 1)
	go func() {
		res, err := rt.ApplyUpdate(ctx, key, markerUpdate(2))
		if err != nil {
			t.Errorf("update B: %v", err)
		}
		resB <- res
	}()
	awaitMarker(t, sb, 2)

	// A's broadcast fails; the sequencer goes back to probe-on-next-
	// stamp with B (ID 2) still outstanding and the backend's high-
	// water mark still 0.
	releaseA()
	if err := <-resA; err == nil {
		t.Fatal("update A succeeded, want the injected failure")
	}

	// C must stamp ABOVE B's in-flight ID even though the re-probe
	// reports 0 applied. Before the fix it stamped ID 1 and the next
	// update re-issued B's ID 2 with C's successor contents.
	resC, err := rt.ApplyUpdate(ctx, key, markerUpdate(3))
	if err != nil {
		t.Fatalf("update C: %v", err)
	}
	awaitMarker(t, sb, 3)
	if resC.UpdateID <= 2 {
		t.Fatalf("update C stamped ID %d, want > 2 (above the in-flight stamp)", resC.UpdateID)
	}

	// B lands after C — reordered on the wire, restored by ID at the
	// store; here the fake just records it.
	releaseB()
	if res := <-resB; res.UpdateID != 2 {
		t.Fatalf("update B stamped ID %d, want 2", res.UpdateID)
	}

	// D continues the sequence past C.
	resD, err := rt.ApplyUpdate(ctx, key, markerUpdate(4))
	if err != nil {
		t.Fatalf("update D: %v", err)
	}
	awaitMarker(t, sb, 4)
	if resD.UpdateID <= resC.UpdateID {
		t.Fatalf("update D stamped ID %d, want > %d", resD.UpdateID, resC.UpdateID)
	}

	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.conflict {
		t.Fatal("an update ID was re-stamped with different contents")
	}
}

// TestKeySeqBounded: the sequencer map must stay capped like the
// per-key routing stats — one entry per key forever was the leak.
// Evicted keys re-probe on re-entry and resume their sequence.
func TestKeySeqBounded(t *testing.T) {
	sb, ts := newSeqBackend(t)
	rt := seqRouter(t, ts.URL)
	ctx := context.Background()

	first := registry.Key{Dataset: "churn", L: 100, Algorithm: "bbst", Seed: 0}
	for i := 0; i < maxKeySeqs+100; i++ {
		key := registry.Key{Dataset: "churn", L: 100, Algorithm: "bbst", Seed: uint64(i)}
		if _, err := rt.ApplyUpdate(ctx, key, markerUpdate(int32(i+1))); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		<-sb.arrived
	}
	rt.seqMu.Lock()
	n := len(rt.seq)
	_, firstLive := rt.seq[first]
	rt.seqMu.Unlock()
	if n > maxKeySeqs {
		t.Fatalf("sequencer map has %d entries, cap is %d", n, maxKeySeqs)
	}
	if firstLive {
		t.Fatal("coldest key survived 100 evictions past the cap")
	}

	// The evicted key re-enters: a fresh probe reseeds the sequence
	// past what the fleet already applied, so the next stamp is unique.
	res, err := rt.ApplyUpdate(ctx, first, markerUpdate(9999))
	if err != nil {
		t.Fatal(err)
	}
	<-sb.arrived
	if res.UpdateID != 2 {
		t.Fatalf("re-entered key stamped ID %d, want 2 (probe found 1 applied)", res.UpdateID)
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.conflict {
		t.Fatal("an update ID was re-stamped with different contents")
	}
}
