package router

// The consistent-hash ring. Every backend contributes VNodes points
// hashed from "addr#i"; an engine key hashes onto the ring and is
// owned by the first point clockwise from it. Two properties carry
// the router:
//
//   - Balance: with enough virtual nodes the arc a backend owns
//     concentrates around 1/n of the ring, so engine keys — and with
//     them the fleet's aggregate memory — spread evenly.
//   - Stability: adding or removing one backend moves only the keys
//     whose owning arc changed, ~1/n of them, so a fleet resize
//     invalidates ~1/n of the fleet's cached engines instead of all
//     of them (a modulo assignment would reshuffle nearly every key).
//
// The walk order past the owner (the successor backends, each distinct)
// doubles as the failover order: a request whose shard is unreachable
// retries on the next arc, which is exactly where the key would live
// if the shard were removed.

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
	"strconv"

	"repro/internal/registry"
)

// ringPoint is one virtual node: a position on the ring owned by a
// backend index.
type ringPoint struct {
	hash    uint64
	backend int
}

// ring is an immutable consistent-hash ring over backend indices
// 0..n-1. Build with buildRing.
type ring struct {
	points   []ringPoint // sorted by (hash, backend)
	backends int
}

// buildRing hashes vnodes virtual nodes per backend address onto the
// ring. The address — not the index — seeds the hashes, so a
// backend's arcs do not move when the list is reordered or extended.
func buildRing(addrs []string, vnodes int) *ring {
	r := &ring{
		points:   make([]ringPoint, 0, len(addrs)*vnodes),
		backends: len(addrs),
	}
	for bi, addr := range addrs {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hashString(addr + "#" + strconv.Itoa(v)),
				backend: bi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// owner returns the backend owning hash h: the one whose virtual node
// is first at or clockwise from h.
func (r *ring) owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].backend
}

// sequence appends to out every distinct backend in ring-walk order
// from h: the owner first, then each successor exactly once. This is
// the failover order for the key hashing to h.
func (r *ring) sequence(h uint64, out []int) []int {
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.backends)
	for k := 0; k < len(r.points) && len(out) < r.backends; k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}

// hashKey maps an engine key onto the ring. The encoding is explicit
// field bytes (not Key.String) so no two distinct keys can collide by
// formatting, and L hashes by its bit pattern.
func hashKey(key registry.Key) uint64 {
	h := fnv.New64a()
	var num [8]byte
	h.Write([]byte(key.Dataset))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(num[:], math.Float64bits(key.L))
	h.Write(num[:])
	h.Write([]byte(key.Algorithm))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(num[:], key.Seed)
	h.Write(num[:])
	return mix64(h.Sum64())
}

// hashString is hashKey for virtual-node labels.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a alone disperses the short,
// near-identical "addr#i" vnode labels poorly — arcs cluster and a
// backend can end up owning a multiple of its fair share — so every
// ring hash runs through a full-avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
