package router

// The router's HTTP surface: the same sampling API internal/server
// speaks, proxied shard-side. srjrouter mounts this so existing
// clients — srj.NewClient, srjbench -remote, anything speaking the
// wire protocol — point at one address and get the whole fleet:
// requests route to the key's shard, failover included, and every
// endpoint answers in the exact shapes srjserver does (same status
// codes, same error codes, same JSON bodies). Routing-specific
// telemetry lives on its own path, /v1/router, so the shared paths
// stay byte-compatible.

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/server"
)

// writeDeadline bounds one response write so a client that stops
// reading frees the handler (mirrors the server's per-frame
// deadlines).
const writeDeadline = 30 * time.Second

// Handler returns the router's HTTP API — srjserver's surface,
// fleet-wide:
//
//	POST   /v1/sample  — routed draw; JSON or the framed binary
//	                     stream, wire-compatible with srjserver
//	POST   /v1/update  — broadcast insert/delete batch (JSON or the
//	                     framed binary encoding); answers with the
//	                     fleet's new dataset generation
//	GET    /v1/stats   — aggregate fleet stats in srjserver's
//	                     StatsResponse shape (registry counters
//	                     summed, engines concatenated)
//	GET    /v1/engines — every backend's resident engines
//	DELETE /v1/engines — broadcast eviction of one key
//	GET    /v1/router  — routing stats (Stats: per-backend health
//	                     and counters, per-key assignments)
//	POST   /v1/router/backends — admin: add a backend to the live
//	                     ring (health-probe + state transfer first)
//	DELETE /v1/router/backends — admin: remove a backend (drain,
//	                     evict its engines, pre-warm moved keys)
//	GET    /healthz    — 200 while at least one backend is healthy
//
// Sample caps and dataset validation live on the backends; their
// refusals proxy through unchanged (same status, same error code).
// The one router-side bound is the JSON transport cap
// (server.DefaultMaxTJSON): the proxy buffers JSON responses in its
// own memory, so that bound is the router's, not the backends' —
// bulk transfers belong on the streamed binary transport either way.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sample", r.handleSample)
	mux.HandleFunc("POST /v1/update", r.handleUpdate)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /v1/engines", r.handleEngines)
	mux.HandleFunc("DELETE /v1/engines", r.handleEvict)
	mux.HandleFunc("GET /v1/router", r.handleRouterStats)
	mux.HandleFunc("POST /v1/router/backends", r.handleAddBackend)
	mux.HandleFunc("DELETE /v1/router/backends", r.handleRemoveBackend)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.Handle("GET /metrics", obs.Handler(r.collectMetrics))
	if r.pprof {
		obs.MountPprof(mux)
	}
	// The same middleware srjserver's ServeHTTP applies: ensure a
	// request ID (minting here makes the router the origin of the ID a
	// whole proxied draw shares — EnsureRequestID writes it back onto
	// the request headers, and the backend clients forward it from the
	// context), echo it on the response, count the outcome, log.
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := obs.EnsureRequestID(req)
		w.Header().Set(obs.RequestIDHeader, id)
		req = req.WithContext(obs.WithRequestID(req.Context(), id))
		rec := &obs.StatusRecorder{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(rec, req)
		r.requests.Inc(routerOutcome(rec))
		if r.logger != nil {
			r.logger.LogAttrs(req.Context(), slog.LevelInfo, "request",
				slog.String("request_id", id),
				slog.String("method", req.Method),
				slog.String("path", req.URL.Path),
				slog.Int("status", rec.Status),
				slog.Duration("elapsed", time.Since(start)),
			)
		}
	})
}

// routerOutcome classifies a finished response for srj_requests_total,
// mirroring the server's outcomeCode: error paths stamp their code
// into ErrorCodeHeader (WriteError does it on both tiers), everything
// else classifies by status class.
func routerOutcome(rec *obs.StatusRecorder) string {
	if code := rec.Header().Get(server.ErrorCodeHeader); code != "" {
		return code
	}
	switch {
	case rec.Status < http.StatusBadRequest:
		return "ok"
	case rec.Status < http.StatusInternalServerError:
		return server.CodeBadRequest
	default:
		return server.CodeInternal
	}
}

func (r *Router) handleSample(w http.ResponseWriter, req *http.Request) {
	sreq, binaryOut, ok := server.DecodeSampleRequest(w, req, 0, server.DefaultMaxTJSON)
	if !ok {
		return
	}
	bound := r.Bind(sreq.Key())
	if binaryOut {
		r.streamBinary(req, w, bound, engine.Request{T: sreq.T, Seed: sreq.DrawSeed})
		return
	}
	// The JSON transport buffers, but not before the fleet has seen
	// the request: Draw without Into caps its preallocation (at
	// server.MaxFramePairs) and grows only as validated samples
	// actually arrive — a burst of bogus-key requests costs the
	// router nothing, exactly as on srjserver, where the JSON buffer
	// exists only after registry.Get accepted the key.
	res, err := bound.Draw(req.Context(), engine.Request{T: sreq.T, Seed: sreq.DrawSeed})
	if err != nil {
		server.WriteError(w, server.StatusFor(err), server.CodeFor(err), "sampling: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(writeDeadline))
	json.NewEncoder(w).Encode(server.SampleResponse{Count: len(res.Pairs), Pairs: res.Pairs})
}

// streamBinary re-frames the routed draw onto the response, flushing
// per batch. The stream header is deferred until the first batch
// arrives, so a refusal that reaches us before any samples — a
// backend's ErrSampleCap, a bad key, even a shard that died before
// delivering and exhausted failover — answers with the same pre-
// stream HTTP status srjserver would send, not a 200 hiding an error
// frame. Errors after the first frame arrive as in-stream error
// frames carrying the same code a backend would; mid-stream failover
// happens underneath, invisibly, so the client only ever sees one
// contiguous stream.
func (r *Router) streamBinary(req *http.Request, w http.ResponseWriter, bound *Bound, dreq engine.Request) {
	rc := http.NewResponseController(w)
	flusher, _ := w.(http.Flusher)
	wroteHeader := false
	var scratch []byte
	err := bound.DrawFunc(req.Context(), dreq, func(batch []geom.Pair) error {
		rc.SetWriteDeadline(time.Now().Add(writeDeadline))
		if !wroteHeader {
			w.Header().Set("Content-Type", server.ContentTypeBinary)
			if herr := server.WriteStreamHeader(w); herr != nil {
				return herr
			}
			wroteHeader = true
		}
		var werr error
		scratch, werr = server.WriteStreamFrame(w, batch, scratch)
		if werr != nil {
			return werr
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	switch {
	case err != nil && !wroteHeader:
		server.WriteError(w, server.StatusFor(err), server.CodeFor(err), "sampling: %v", err)
	case err != nil:
		server.WriteStreamError(w, server.CodeFor(err), err.Error())
	case !wroteHeader:
		// Unreachable with t > 0, but a complete empty stream is the
		// right degenerate answer.
		w.Header().Set("Content-Type", server.ContentTypeBinary)
		rc.SetWriteDeadline(time.Now().Add(writeDeadline))
		if herr := server.WriteStreamHeader(w); herr != nil {
			return
		}
		server.WriteStreamEnd(w)
	default:
		server.WriteStreamEnd(w)
	}
}

// handleUpdate sequences and broadcasts one mutation batch across the
// fleet — the body and response are exactly srjserver's POST
// /v1/update, with the stamped update ID in the response. A request
// already carrying an update ID (the UpdateIDHeader) is a retry: it
// re-broadcasts at that exact ID instead of stamping a fresh one. A
// partial broadcast is an error: unlike eviction, an update a shard
// missed leaves that shard serving deleted points, so the client must
// know — and the echoed update ID is what makes its retry idempotent.
func (r *Router) handleUpdate(w http.ResponseWriter, req *http.Request) {
	ureq, ok := server.DecodeUpdateRequest(w, req, 0)
	if !ok {
		return
	}
	res, err := r.ApplyUpdateAt(req.Context(), ureq.Key(), ureq.UpdateID, ureq.Ops())
	if err != nil {
		var apiErr *server.APIError
		if errors.As(err, &apiErr) {
			// A backend understood the update and refused it — relay
			// its answer unchanged, like the sampling proxy does.
			server.WriteError(w, apiErr.Status, apiErr.Code, "%s", apiErr.Message)
			return
		}
		server.WriteError(w, http.StatusBadGateway, server.CodeInternal,
			"updating %s (fleet at generation %d, update %d): %v", ureq.Key(), res.Generation, res.UpdateID, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(server.UpdateResponse{
		Generation: res.Generation,
		Ops:        ureq.Ops().Ops(),
		UpdateID:   res.UpdateID,
	})
}

// handleStats aggregates the fleet into srjserver's StatsResponse
// shape: registry counters summed, resident engines concatenated,
// MaxT the smallest cap any reachable backend enforces. A client
// that watched one srjserver watches the whole fleet unchanged.
func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	stats, err := r.ServerStats(req.Context())
	if len(stats) == 0 {
		server.WriteError(w, http.StatusBadGateway, server.CodeInternal,
			"no backend reachable for stats: %v", err)
		return
	}
	agg := server.StatsResponse{UptimeSecs: r.Uptime().Seconds()}
	for addr, st := range stats {
		if agg.MaxT == 0 || (st.MaxT > 0 && st.MaxT < agg.MaxT) {
			agg.MaxT = st.MaxT
		}
		agg.Registry.Hits += st.Registry.Hits
		agg.Registry.Misses += st.Registry.Misses
		agg.Registry.Builds += st.Registry.Builds
		agg.Registry.Evictions += st.Registry.Evictions
		agg.Registry.ManualEvictions += st.Registry.ManualEvictions
		agg.Registry.Entries += st.Registry.Entries
		agg.Registry.Bytes += st.Registry.Bytes
		agg.Registry.Budget += st.Registry.Budget
		agg.Registry.BuildLatency = agg.Registry.BuildLatency.Merge(st.Registry.BuildLatency)
		agg.Engines = append(agg.Engines, st.Engines...)
		for _, info := range st.Stores {
			info.Backend = addr
			agg.Stores = append(agg.Stores, info)
		}
	}
	sort.Slice(agg.Stores, func(i, j int) bool {
		a, b := agg.Stores[i], agg.Stores[j]
		if a.Key != b.Key {
			return a.Key.String() < b.Key.String()
		}
		return a.Backend < b.Backend
	})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(agg)
}

// handleEngines concatenates every backend's resident engines —
// /v1/engines fleet-wide. Unreachable backends contribute nothing.
func (r *Router) handleEngines(w http.ResponseWriter, req *http.Request) {
	stats, err := r.ServerStats(req.Context())
	if len(stats) == 0 {
		server.WriteError(w, http.StatusBadGateway, server.CodeInternal,
			"no backend reachable for engines: %v", err)
		return
	}
	engines := make([]registry.EntryInfo, 0, len(stats))
	for _, st := range stats {
		engines = append(engines, st.Engines...)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(engines)
}

// handleEvict broadcasts one key's eviction across the fleet — the
// body and response are exactly srjserver's DELETE /v1/engines. A
// partial broadcast (some backend unreachable) with at least one
// eviction still answers evicted=true: the wire shape has no partial
// state, and the backends that answered are clean.
func (r *Router) handleEvict(w http.ResponseWriter, req *http.Request) {
	sreq, ok := server.DecodeEvictRequest(w, req)
	if !ok {
		return
	}
	evicted, err := r.EvictEngine(req.Context(), sreq.Key())
	if err != nil && !evicted {
		server.WriteError(w, http.StatusBadGateway, server.CodeInternal, "evicting %s: %v", sreq.Key(), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(server.EvictResponse{Evicted: evicted})
}

// handleRouterStats serves the routing-specific telemetry.
func (r *Router) handleRouterStats(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(r.Stats())
}

// handleAddBackend grows the fleet: the JSON body names one backend
// base URL, AddBackend does the probe + state transfer + ring swap,
// and the response lists the resulting membership. Membership
// refusals (already a member, an empty address) are 400s; a fleet
// that cannot complete the transfer is a 502.
func (r *Router) handleAddBackend(w http.ResponseWriter, req *http.Request) {
	breq, ok := decodeBackendRequest(w, req)
	if !ok {
		return
	}
	if err := r.AddBackend(req.Context(), breq.Backend); err != nil {
		writeMembershipError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(server.BackendsResponse{Backends: r.Backends()})
}

// handleRemoveBackend shrinks the fleet; same shapes as
// handleAddBackend. Removal's drain/evict/pre-warm steps are
// best-effort against an already-dead server, so removing a crashed
// backend succeeds.
func (r *Router) handleRemoveBackend(w http.ResponseWriter, req *http.Request) {
	breq, ok := decodeBackendRequest(w, req)
	if !ok {
		return
	}
	if err := r.RemoveBackend(req.Context(), breq.Backend); err != nil {
		writeMembershipError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(server.BackendsResponse{Backends: r.Backends()})
}

// decodeBackendRequest decodes the admin endpoints' one-field body.
func decodeBackendRequest(w http.ResponseWriter, req *http.Request) (server.BackendRequest, bool) {
	var breq server.BackendRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, server.MaxBodyBytes)).Decode(&breq); err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "decoding request: %v", err)
		return breq, false
	}
	if strings.TrimSpace(breq.Backend) == "" {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "backend address is required")
		return breq, false
	}
	return breq, true
}

// writeMembershipError sorts a membership failure into caller error
// (the request named an address the fleet cannot accept) vs fleet
// error (probe or state transfer failed).
func writeMembershipError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrAlreadyMember) || errors.Is(err, ErrNotMember) || errors.Is(err, ErrLastBackend) {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, "%v", err)
		return
	}
	server.WriteError(w, http.StatusBadGateway, server.CodeInternal, "%v", err)
}

// handleHealthz answers from the health flags the background prober
// and request outcomes maintain — a load balancer polling /healthz
// every second must not multiply probe traffic onto the fleet, and a
// single slow probe must not flap a backend's keys onto its ring
// successor. Callers needing a live fleet check use Health/ProbeNow.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	f := r.fleet.Load()
	healthy := 0
	for _, b := range f.backends {
		if b.healthy.Load() {
			healthy++
		}
	}
	if healthy == 0 {
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeInternal,
			"none of the %d backends is healthy", len(f.backends))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}
