package router

import (
	"fmt"
	"testing"

	"repro/internal/registry"
)

func testAddrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://shard-%d:8080", i)
	}
	return out
}

func testKeys(n int) []registry.Key {
	out := make([]registry.Key, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, registry.Key{
			Dataset: fmt.Sprintf("ds-%d", i%37), L: float64(i%11) + 0.5,
			Algorithm: "bbst", Seed: uint64(i),
		})
	}
	return out
}

// TestRingSequenceCoversAllBackends: the failover walk visits every
// backend exactly once, starting at the owner.
func TestRingSequenceCoversAllBackends(t *testing.T) {
	const n = 7
	r := buildRing(testAddrs(n), DefaultVNodes)
	for _, key := range testKeys(100) {
		h := hashKey(key)
		seq := r.sequence(h, nil)
		if len(seq) != n {
			t.Fatalf("sequence visited %d of %d backends", len(seq), n)
		}
		if seq[0] != r.owner(h) {
			t.Fatalf("sequence starts at %d, owner is %d", seq[0], r.owner(h))
		}
		seen := make([]bool, n)
		for _, bi := range seq {
			if bi < 0 || bi >= n || seen[bi] {
				t.Fatalf("bad or repeated backend %d in %v", bi, seq)
			}
			seen[bi] = true
		}
	}
}

// TestRingBalance: with DefaultVNodes virtual nodes, key ownership
// spreads across the backends — no backend owns more than ~3x or less
// than ~1/3 of its fair share. (The inputs are fixed, so this is a
// deterministic property of the hash, not a flaky statistical one.)
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		r := buildRing(testAddrs(n), DefaultVNodes)
		keys := testKeys(4000)
		counts := make([]int, n)
		for _, key := range keys {
			counts[r.owner(hashKey(key))]++
		}
		fair := len(keys) / n
		for bi, c := range counts {
			if c < fair/3 || c > 3*fair {
				t.Fatalf("n=%d: backend %d owns %d keys (fair share %d): %v", n, bi, c, fair, counts)
			}
		}
	}
}

// TestRingStability: resizing the fleet by one backend moves roughly
// 1/n of the keys and never moves a key between two surviving
// backends.
func TestRingStability(t *testing.T) {
	const n = 5
	base := buildRing(testAddrs(n), DefaultVNodes)
	grown := buildRing(testAddrs(n+1), DefaultVNodes)
	keys := testKeys(4000)
	moved := 0
	for _, key := range keys {
		h := hashKey(key)
		was, is := base.owner(h), grown.owner(h)
		if was != is {
			moved++
			if is != n {
				t.Fatalf("key moved from %d to surviving backend %d", was, is)
			}
		}
	}
	if f := float64(moved) / float64(len(keys)); f == 0 || f > 2.0/float64(n+1) {
		t.Fatalf("resize moved %.1f%% of keys, want ~%.1f%%", f*100, 100.0/float64(n+1))
	}
}

// TestRingOrderIndependence: the ring hashes addresses, not list
// positions — permuting the backend list must not move any key's
// home address.
func TestRingOrderIndependence(t *testing.T) {
	addrs := testAddrs(4)
	perm := []string{addrs[2], addrs[0], addrs[3], addrs[1]}
	a := buildRing(addrs, DefaultVNodes)
	b := buildRing(perm, DefaultVNodes)
	for _, key := range testKeys(500) {
		h := hashKey(key)
		if addrs[a.owner(h)] != perm[b.owner(h)] {
			t.Fatalf("key %v moved when the backend list was permuted", key)
		}
	}
}

// TestHashKeyDistinguishesFields: keys differing in exactly one field
// hash apart — the explicit field encoding leaves no room for two
// keys to collide by string formatting.
func TestHashKeyDistinguishesFields(t *testing.T) {
	base := registry.Key{Dataset: "nyc", L: 100, Algorithm: "bbst", Seed: 1}
	variants := []registry.Key{
		{Dataset: "nyc2", L: 100, Algorithm: "bbst", Seed: 1},
		{Dataset: "nyc", L: 100.5, Algorithm: "bbst", Seed: 1},
		{Dataset: "nyc", L: 100, Algorithm: "kds", Seed: 1},
		{Dataset: "nyc", L: 100, Algorithm: "bbst", Seed: 2},
	}
	h := hashKey(base)
	for _, v := range variants {
		if hashKey(v) == h {
			t.Fatalf("key %v collides with %v", v, base)
		}
	}
	if hashKey(base) != h {
		t.Fatal("hashKey is not deterministic")
	}
}
