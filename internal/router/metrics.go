package router

import (
	"time"

	"repro/internal/obs"
)

// collectMetrics assembles one GET /metrics scrape. The families the
// router shares with srjserver (srj_draw_duration_seconds,
// srj_draw_samples_total, srj_requests_total, srj_uptime_seconds)
// keep the same names and bucket bounds, so one dashboard aggregates
// both tiers; the srj_router_* families are the routing state only
// this tier owns. The backend label is bounded: membership changes
// only by operator action (construction or the admin endpoint), never
// per request. A removed backend's series stop being emitted — its
// counters leave with its fleet snapshot — which Prometheus treats as
// a stale series, not a counter reset.
func (r *Router) collectMetrics(m *obs.MetricSet) {
	m.Gauge(obs.MetricUptime, "Process uptime.", time.Since(r.start).Seconds())
	r.requests.Each(func(code string, n uint64) {
		m.Counter(obs.MetricRequests, "API requests by outcome code.",
			float64(n), obs.L(obs.LabelCode, code))
	})
	m.Histogram(obs.MetricDrawDuration, "Full draw-request latency (routed, failover included).",
		r.drawHist.Snapshot())
	m.Counter(obs.MetricDrawSamples, "Join samples delivered to clients.",
		float64(r.drawSamples.Load()))

	for _, b := range r.fleet.Load().backends {
		label := obs.L(obs.LabelBackend, b.addr)
		up := 0.0
		if b.healthy.Load() {
			up = 1
		}
		m.Gauge(obs.MetricRouterBackendUp, "Backend health flag (1 = healthy).", up, label)
		m.Counter(obs.MetricRouterBackendRequests, "Draw attempts routed to the backend.",
			float64(b.requests.Load()), label)
		m.Counter(obs.MetricRouterBackendFailures, "Attempts the backend answered with an error or failed in transport.",
			float64(b.failures.Load()), label)
		m.Counter(obs.MetricRouterFailovers, "Transport failures that moved a draw onward.",
			float64(b.failovers.Load()), label)
	}
}
