// Package exp is the experiment harness: one runner per table and
// figure of the paper's evaluation (Section V), producing the same
// rows/series the paper reports.
//
// Absolute numbers differ from the paper — the datasets are synthetic
// stand-ins at laptop scale and the implementation is Go rather than
// C++ — but each runner preserves the comparison the corresponding
// artifact makes: who wins, by roughly what factor, and how the curves
// move with the swept parameter.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Table II  -> RunTable2      pre-processing time, KDS vs BBST
//	Fig. 4    -> RunFigure4     memory usage vs dataset size
//	Sec. V-B  -> RunAccuracy    approximation ratio Σµ/|J|
//	Table III -> RunTable3      total + GM + UB decomposition
//	Table IV  -> RunTable4      sampling time and #iterations
//	Fig. 5    -> RunFigure5     impact of range (window) size
//	Fig. 6    -> RunFigure6     impact of #samples t
//	Fig. 7    -> RunFigure7     impact of dataset size
//	Fig. 8    -> RunFigure8     impact of |R|/(|R|+|S|)
//	Fig. 9    -> RunFigure9     BBST vs the kd-tree-per-cell variant
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
)

// Algo names the algorithms the harness can run.
type Algo string

// Algorithms available to the harness.
const (
	AlgoKDS          Algo = "KDS"
	AlgoKDSRejection Algo = "KDS-rejection"
	AlgoBBST         Algo = "BBST"
	AlgoGridKD       Algo = "GridKD"
	AlgoRTS          Algo = "RTS"
)

// paperAlgos are the three algorithms every paper experiment compares.
var paperAlgos = []Algo{AlgoKDS, AlgoKDSRejection, AlgoBBST}

// newSampler constructs the named algorithm.
func newSampler(a Algo, R, S []geom.Point, cfg core.Config) (core.Sampler, error) {
	switch a {
	case AlgoKDS:
		return core.NewKDS(R, S, cfg)
	case AlgoKDSRejection:
		return core.NewKDSRejection(R, S, cfg)
	case AlgoBBST:
		return core.NewBBST(R, S, cfg)
	case AlgoGridKD:
		return core.NewGridKD(R, S, cfg)
	case AlgoRTS:
		return core.NewRTS(R, S, cfg)
	default:
		return nil, fmt.Errorf("exp: unknown algorithm %q", a)
	}
}

// Scale fixes the workload sizes of a harness run. The paper's
// datasets range from 2.2M to 324M points; DefaultScale keeps their
// relative ordering (CaStreet < Foursquare < IMIS < NYC) at sizes that
// run quickly on one machine.
type Scale struct {
	// Sizes maps dataset name -> total points (before the R/S split).
	Sizes map[string]int
	// L is the default window half-extent (the paper's l = 100 on the
	// [0, 10000]^2 domain).
	L float64
	// T is the default number of samples (the paper's t = 10^6,
	// scaled down).
	T int
	// Seed drives dataset generation, the R/S split, and sampling.
	Seed uint64
}

// DefaultScale returns the standard harness scale: dataset sizes
// base, 2*base, 4*base, 8*base mirroring the paper's size ordering.
func DefaultScale(base int) Scale {
	return Scale{
		Sizes: map[string]int{
			"castreet":   base,
			"foursquare": 2 * base,
			"imis":       4 * base,
			"nyc":        8 * base,
		},
		L:    100,
		T:    100_000,
		Seed: 1,
	}
}

// DatasetNames returns the scale's datasets in the paper's order.
func (s Scale) DatasetNames() []string {
	ordered := []string{"castreet", "foursquare", "imis", "nyc"}
	var names []string
	for _, n := range ordered {
		if _, ok := s.Sizes[n]; ok {
			names = append(names, n)
		}
	}
	var extra []string
	for n := range s.Sizes {
		found := false
		for _, o := range ordered {
			if n == o {
				found = true
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// Workload is one dataset split into R and S.
type Workload struct {
	Name string
	R, S []geom.Point
}

// Workloads generates every dataset of the scale and splits each into
// R and S with the given |R| ratio (0.5 reproduces the paper's
// default |R| ≈ |S|).
func (s Scale) Workloads(ratio float64) ([]Workload, error) {
	var out []Workload
	for _, name := range s.DatasetNames() {
		gen, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		pts := gen(s.Sizes[name], s.Seed)
		R, S := dataset.SplitRS(pts, ratio, s.Seed+1)
		out = append(out, Workload{Name: name, R: R, S: S})
	}
	return out, nil
}

// Cell is one value of a result table, carrying both the numeric
// value (for tests and downstream processing) and its rendering.
type Cell struct {
	Value float64
	Text  string
}

// Table is a generic result table: one artifact of the paper.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]Cell
	Notes   []string
}

// Render produces an aligned text table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c.Text) > widths[i] {
				widths[i] = len(c.Text)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		texts := make([]string, len(row))
		for i, c := range row {
			texts[i] = c.Text
		}
		writeRow(texts)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (title and notes as
// #-comments) for machine consumption.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.Columns)
	for _, row := range t.Rows {
		texts := make([]string, len(row))
		for i, c := range row {
			texts[i] = c.Text
		}
		writeCSVRow(texts)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// cellStr makes a text-only cell.
func cellStr(s string) Cell { return Cell{Text: s} }

// cellDur renders a duration in seconds with 4 significant digits.
func cellDur(d time.Duration) Cell {
	sec := d.Seconds()
	return Cell{Value: sec, Text: fmt.Sprintf("%.4g s", sec)}
}

// cellF renders a float.
func cellF(v float64, format string) Cell {
	return Cell{Value: v, Text: fmt.Sprintf(format, v)}
}

// cellInt renders an integer count.
func cellInt(v uint64) Cell {
	return Cell{Value: float64(v), Text: fmt.Sprintf("%d", v)}
}

// cellMB renders a byte count in MiB.
func cellMB(bytes int) Cell {
	mb := float64(bytes) / (1 << 20)
	return Cell{Value: mb, Text: fmt.Sprintf("%.2f MiB", mb)}
}

// Run is one full execution of one algorithm on one workload: all
// phases plus t samples, with phase timings from the sampler's Stats.
type Run struct {
	Dataset string
	Algo    Algo
	N, M    int
	L       float64
	T       int
	Stats   core.Stats
	Bytes   int
	Err     error
}

// runOne executes algorithm a end-to-end and draws t samples.
func runOne(a Algo, w Workload, l float64, t int, seed uint64) Run {
	out := Run{Dataset: w.Name, Algo: a, N: len(w.R), M: len(w.S), L: l, T: t}
	s, err := newSampler(a, w.R, w.S, core.Config{HalfExtent: l, Seed: seed})
	if err != nil {
		out.Err = err
		return out
	}
	if err := s.Preprocess(); err != nil {
		out.Err = err
		return out
	}
	if err := s.Build(); err != nil {
		out.Err = err
		return out
	}
	if err := s.Count(); err != nil {
		out.Err = err
		out.Stats = s.Stats()
		return out
	}
	if _, err := s.Sample(t); err != nil {
		out.Err = err
	}
	out.Stats = s.Stats()
	out.Bytes = s.SizeBytes()
	return out
}
