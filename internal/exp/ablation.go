package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
	"repro/internal/stats"
)

// RunAblationBucketCap sweeps the BBST bucket capacity around the
// paper's b = ceil(log2 m) choice (Definition 3). Smaller buckets
// tighten µ (fewer spurious slots, higher acceptance) but multiply
// bucket count and tree size; larger buckets do the opposite. The
// table reports total time, Σµ/|J|, and iterations so the trade-off
// behind the paper's choice is visible.
func RunAblationBucketCap(scale Scale, factors []float64) (*Table, error) {
	if len(factors) == 0 {
		factors = []float64{0.25, 0.5, 1, 2, 4}
	}
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablation: BBST bucket capacity (t = %d, l = %g)", scale.T, scale.L),
		Columns: []string{"dataset", "capacity", "factor", "total", "Σµ/|J|", "#iterations"},
		Notes:   []string{"factor 1 is the paper's b = ceil(log2 m) (Definition 3)"},
	}
	for _, w := range ws {
		jSize := float64(join.Size(w.R, w.S, scale.L))
		if jSize == 0 {
			continue
		}
		base := defaultBucketCap(len(w.S))
		for _, f := range factors {
			cap := int(float64(base) * f)
			if cap < 1 {
				cap = 1
			}
			s, err := core.NewBBST(w.R, w.S, core.Config{
				HalfExtent: scale.L, Seed: scale.Seed, BucketCap: cap,
			})
			if err != nil {
				return nil, err
			}
			if err := s.Preprocess(); err != nil {
				return nil, err
			}
			if err := s.Build(); err != nil {
				return nil, err
			}
			if err := s.Count(); err != nil {
				return nil, err
			}
			if _, err := s.Sample(scale.T); err != nil {
				return nil, err
			}
			st := s.Stats()
			online := st.GridMapTime + st.UpperBoundTime + st.SampleTime
			t.Rows = append(t.Rows, []Cell{
				cellStr(w.Name), cellInt(uint64(cap)), cellF(f, "%g"),
				cellDur(online), cellF(st.MuSum/jSize, "%.4f"), cellInt(st.Iterations),
			})
		}
	}
	return t, nil
}

// defaultBucketCap mirrors bbst.BucketCap without importing it here.
func defaultBucketCap(m int) int {
	cap := 1
	for v := 2; v < m; v *= 2 {
		cap++
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

// RunAblationFC compares the BBST sampler with and without fractional
// cascading (the optional optimization of Lemma 4): same samples,
// different constant factors and memory.
func RunAblationFC(scale Scale) (*Table, error) {
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablation: fractional cascading (t = %d, l = %g)", scale.T, scale.L),
		Columns: []string{"dataset", "variant", "total", "UB", "sampling", "memory"},
	}
	for _, w := range ws {
		for _, fc := range []bool{false, true} {
			s, err := core.NewBBST(w.R, w.S, core.Config{
				HalfExtent: scale.L, Seed: scale.Seed, FractionalCascading: fc,
			})
			if err != nil {
				return nil, err
			}
			if err := s.Preprocess(); err != nil {
				return nil, err
			}
			if err := s.Build(); err != nil {
				return nil, err
			}
			if err := s.Count(); err != nil {
				return nil, err
			}
			if _, err := s.Sample(scale.T); err != nil {
				return nil, err
			}
			st := s.Stats()
			name := "binary-search"
			if fc {
				name = "fractional-cascading"
			}
			online := st.GridMapTime + st.UpperBoundTime + st.SampleTime
			t.Rows = append(t.Rows, []Cell{
				cellStr(w.Name), cellStr(name),
				cellDur(online), cellDur(st.UpperBoundTime), cellDur(st.SampleTime),
				cellMB(s.SizeBytes()),
			})
		}
	}
	return t, nil
}

// RunFigure4Live is the Fig. 4 memory experiment measured with the Go
// runtime's live-heap accounting instead of analytic SizeBytes: it
// GCs, builds the structures, GCs again, and reports the delta. Only
// the BBST and kd-tree columns are measured (live-heap deltas of
// several structures in one process contaminate each other, so each
// build runs in isolation).
func RunFigure4Live(scale Scale, fractions []float64) (*Table, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.5, 1.0}
	}
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 4 (live heap): measured allocation of sampler structures",
		Columns: []string{"dataset", "fraction", "n+m", "KDS", "BBST"},
		Notes:   []string{"runtime.MemStats deltas around Count(); GC-exact, slower to run"},
	}
	for _, w := range ws {
		for _, f := range fractions {
			R := dataset.Prefix(w.R, f)
			S := dataset.Prefix(w.S, f)
			row := []Cell{cellStr(w.Name), cellF(f, "%.1f"), cellInt(uint64(len(R) + len(S)))}
			for _, a := range []Algo{AlgoKDS, AlgoBBST} {
				before := stats.LiveHeapBytes()
				s, err := newSampler(a, R, S, core.Config{HalfExtent: scale.L, Seed: scale.Seed})
				if err != nil {
					return nil, err
				}
				if err := s.Count(); err != nil && err != core.ErrEmptyJoin {
					return nil, err
				}
				after := stats.LiveHeapBytes()
				delta := int(after) - int(before)
				if delta < 0 {
					delta = 0
				}
				row = append(row, cellMB(delta))
				_ = s.SizeBytes() // keep s alive past the measurement
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
