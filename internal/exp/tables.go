package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/join"
)

// RunTable2 reproduces Table II: offline pre-processing time of the
// kd-tree-based baselines (they share it) versus BBST (which only
// sorts). The paper reports BBST roughly 2x faster across datasets.
func RunTable2(scale Scale) (*Table, error) {
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table II: pre-processing time",
		Columns: []string{"dataset", "KDS", "BBST"},
		Notes:   []string{"KDS-rejection shares KDS's pre-processing (kd-tree of S)"},
	}
	for _, w := range ws {
		row := []Cell{cellStr(w.Name)}
		for _, a := range []Algo{AlgoKDS, AlgoBBST} {
			s, err := newSampler(a, w.R, w.S, core.Config{HalfExtent: scale.L, Seed: scale.Seed})
			if err != nil {
				return nil, err
			}
			if err := s.Preprocess(); err != nil {
				return nil, err
			}
			row = append(row, cellDur(s.Stats().PreprocessTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunAccuracy reproduces the Section V-B accuracy measurement: the
// approximation ratio Σ_r µ(r) / |J| of BBST's upper-bounding (the
// paper reports 1.19, 1.04, 1.07, 1.17 on its four datasets), with
// KDS-rejection's loose grid bound alongside for contrast.
func RunAccuracy(scale Scale) (*Table, error) {
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Accuracy of approximate range counting (Σµ / |J|)",
		Columns: []string{"dataset", "|J|", "BBST ratio", "KDS-rejection ratio"},
		Notes:   []string{"paper reports BBST ratios 1.19 / 1.04 / 1.07 / 1.17; lower is better, 1.0 is exact"},
	}
	for _, w := range ws {
		jSize := join.Size(w.R, w.S, scale.L)
		row := []Cell{cellStr(w.Name), cellInt(jSize)}
		for _, a := range []Algo{AlgoBBST, AlgoKDSRejection} {
			s, err := newSampler(a, w.R, w.S, core.Config{HalfExtent: scale.L, Seed: scale.Seed})
			if err != nil {
				return nil, err
			}
			if err := s.Count(); err != nil {
				if err == core.ErrEmptyJoin && jSize == 0 {
					row = append(row, cellStr("n/a"))
					continue
				}
				return nil, fmt.Errorf("%s on %s: %w", a, w.Name, err)
			}
			ratio := s.Stats().MuSum / float64(jSize)
			row = append(row, cellF(ratio, "%.4f"))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunTable3 reproduces Table III: total running time with the GM
// (grid mapping / online building) and UB (upper-bounding / counting)
// decomposition for the three paper algorithms on every dataset.
func RunTable3(scale Scale) (*Table, error) {
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Table III: total and decomposed times (t = %d, l = %g)", scale.T, scale.L),
		Columns: []string{"dataset", "algorithm", "total", "GM", "UB"},
		Notes: []string{
			"total = GM + UB + sampling (pre-processing excluded, as in the paper)",
			"for BBST, GM is the online data-structure building phase and UB the approximate range counting phase",
		},
	}
	for _, w := range ws {
		for _, a := range paperAlgos {
			r := runOne(a, w, scale.L, scale.T, scale.Seed)
			if r.Err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a, w.Name, r.Err)
			}
			online := r.Stats.GridMapTime + r.Stats.UpperBoundTime + r.Stats.SampleTime
			t.Rows = append(t.Rows, []Cell{
				cellStr(w.Name), cellStr(string(a)),
				cellDur(online), cellDur(r.Stats.GridMapTime), cellDur(r.Stats.UpperBoundTime),
			})
		}
	}
	return t, nil
}

// RunTable4 reproduces Table IV: sampling-phase time and the number
// of sampling iterations needed for t accepted samples. KDS always
// needs exactly t iterations; BBST needs ≈ t · Σµ/|J|; KDS-rejection
// needs the most.
func RunTable4(scale Scale) (*Table, error) {
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Table IV: sampling time and #iterations (t = %d)", scale.T),
		Columns: []string{"dataset", "algorithm", "sampling", "#iterations"},
	}
	for _, w := range ws {
		for _, a := range paperAlgos {
			r := runOne(a, w, scale.L, scale.T, scale.Seed)
			if r.Err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a, w.Name, r.Err)
			}
			t.Rows = append(t.Rows, []Cell{
				cellStr(w.Name), cellStr(string(a)),
				cellDur(r.Stats.SampleTime), cellInt(r.Stats.Iterations),
			})
		}
	}
	return t, nil
}
