package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rangetree"
)

// RunFigure4 reproduces Fig. 4: memory usage of each algorithm as the
// dataset size scales through the given fractions. A range-tree column
// reproduces the paper's footnote that the O(m log m)-space structure
// is the one that blows up (it ran out of memory on the paper's
// largest datasets).
func RunFigure4(scale Scale, fractions []float64) (*Table, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 4: memory usage vs dataset size",
		Columns: []string{"dataset", "fraction", "n+m", "KDS", "KDS-rejection", "BBST", "range-tree"},
		Notes: []string{
			"structure sizes after Count(); range-tree included to reproduce the out-of-memory footnote (O(m log m) space)",
		},
	}
	for _, w := range ws {
		for _, f := range fractions {
			R := dataset.Prefix(w.R, f)
			S := dataset.Prefix(w.S, f)
			row := []Cell{cellStr(w.Name), cellF(f, "%.1f"), cellInt(uint64(len(R) + len(S)))}
			for _, a := range paperAlgos {
				s, err := newSampler(a, R, S, core.Config{HalfExtent: scale.L, Seed: scale.Seed})
				if err != nil {
					return nil, err
				}
				if err := s.Count(); err != nil && err != core.ErrEmptyJoin {
					return nil, fmt.Errorf("%s on %s: %w", a, w.Name, err)
				}
				row = append(row, cellMB(s.SizeBytes()))
			}
			rt := rangetree.New(S)
			row = append(row, cellMB(rt.SizeBytes()))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// RunFigure5 reproduces Fig. 5: total running time as the range
// (window half-extent) l sweeps from very small to large. BBST should
// be nearly flat; the kd-tree baselines degrade as l (and with it |J|)
// grows.
func RunFigure5(scale Scale, ls []float64) (*Table, error) {
	if len(ls) == 0 {
		ls = []float64{1, 10, 100, 500}
	}
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 5: impact of range (window) size (t = %d)", scale.T),
		Columns: []string{"dataset", "l", "KDS", "KDS-rejection", "BBST"},
	}
	for _, w := range ws {
		for _, l := range ls {
			row := []Cell{cellStr(w.Name), cellF(l, "%g")}
			for _, a := range paperAlgos {
				r := runOne(a, w, l, scale.T, scale.Seed)
				if r.Err != nil {
					if r.Err == core.ErrEmptyJoin || r.Err == core.ErrLowAcceptance {
						row = append(row, cellStr("empty"))
						continue
					}
					return nil, fmt.Errorf("%s on %s (l=%g): %w", a, w.Name, l, r.Err)
				}
				online := r.Stats.GridMapTime + r.Stats.UpperBoundTime + r.Stats.SampleTime
				row = append(row, cellDur(online))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// RunFigure6 reproduces Fig. 6: total running time as the number of
// samples t sweeps across orders of magnitude (the paper goes to 10^9;
// the harness scales the sweep down proportionally). The baselines
// grow linearly in t; BBST's growth only becomes visible once sampling
// dominates its counting phases.
func RunFigure6(scale Scale, ts []int) (*Table, error) {
	if len(ts) == 0 {
		ts = []int{1_000, 10_000, 100_000, 1_000_000}
	}
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 6: impact of #samples (l = %g)", scale.L),
		Columns: []string{"dataset", "t", "KDS", "KDS-rejection", "BBST"},
	}
	for _, w := range ws {
		for _, tt := range ts {
			row := []Cell{cellStr(w.Name), cellInt(uint64(tt))}
			for _, a := range paperAlgos {
				r := runOne(a, w, scale.L, tt, scale.Seed)
				if r.Err != nil {
					return nil, fmt.Errorf("%s on %s (t=%d): %w", a, w.Name, tt, r.Err)
				}
				online := r.Stats.GridMapTime + r.Stats.UpperBoundTime + r.Stats.SampleTime
				row = append(row, cellDur(online))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// RunFigure7 reproduces Fig. 7: total running time as the dataset
// size scales through the given fractions; BBST outperforms both
// baselines at every size.
func RunFigure7(scale Scale, fractions []float64) (*Table, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 7: impact of dataset size (t = %d, l = %g)", scale.T, scale.L),
		Columns: []string{"dataset", "fraction", "KDS", "KDS-rejection", "BBST"},
	}
	for _, w := range ws {
		for _, f := range fractions {
			sub := Workload{Name: w.Name, R: dataset.Prefix(w.R, f), S: dataset.Prefix(w.S, f)}
			row := []Cell{cellStr(w.Name), cellF(f, "%.1f")}
			for _, a := range paperAlgos {
				r := runOne(a, sub, scale.L, scale.T, scale.Seed)
				if r.Err != nil {
					return nil, fmt.Errorf("%s on %s (f=%g): %w", a, w.Name, f, r.Err)
				}
				online := r.Stats.GridMapTime + r.Stats.UpperBoundTime + r.Stats.SampleTime
				row = append(row, cellDur(online))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// RunFigure8 reproduces Fig. 8: BBST's total running time as the
// split ratio n/(n+m) sweeps from 0.1 to 0.5 (R and S are symmetric,
// so only half the range is needed). The paper observes a flat-to-
// slightly-increasing trend depending on whether UB or GM dominates.
func RunFigure8(scale Scale, ratios []float64) (*Table, error) {
	if len(ratios) == 0 {
		ratios = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 8: impact of dataset size difference, BBST only (t = %d, l = %g)", scale.T, scale.L),
		Columns: []string{"dataset", "n/(n+m)", "n", "m", "total", "GM", "UB"},
	}
	for _, name := range scale.DatasetNames() {
		gen, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		pts := gen(scale.Sizes[name], scale.Seed)
		for _, ratio := range ratios {
			R, S := dataset.SplitRS(pts, ratio, scale.Seed+1)
			w := Workload{Name: name, R: R, S: S}
			r := runOne(AlgoBBST, w, scale.L, scale.T, scale.Seed)
			if r.Err != nil {
				return nil, fmt.Errorf("BBST on %s (ratio=%g): %w", name, ratio, r.Err)
			}
			online := r.Stats.GridMapTime + r.Stats.UpperBoundTime + r.Stats.SampleTime
			t.Rows = append(t.Rows, []Cell{
				cellStr(name), cellF(ratio, "%.1f"),
				cellInt(uint64(len(R))), cellInt(uint64(len(S))),
				cellDur(online), cellDur(r.Stats.GridMapTime), cellDur(r.Stats.UpperBoundTime),
			})
		}
	}
	return t, nil
}

// RunFigure9 reproduces Fig. 9: BBST versus the variant that replaces
// the per-cell BBST pair with a per-cell kd-tree (case 3 handled by
// KDS). The paper reports BBST up to 12x faster.
func RunFigure9(scale Scale) (*Table, error) {
	ws, err := scale.Workloads(0.5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 9: BBST vs kd-tree-per-cell variant (t = %d, l = %g)", scale.T, scale.L),
		Columns: []string{"dataset", "BBST", "variant (GridKD)", "speedup"},
	}
	for _, w := range ws {
		rb := runOne(AlgoBBST, w, scale.L, scale.T, scale.Seed)
		rv := runOne(AlgoGridKD, w, scale.L, scale.T, scale.Seed)
		if rb.Err != nil {
			return nil, fmt.Errorf("BBST on %s: %w", w.Name, rb.Err)
		}
		if rv.Err != nil {
			return nil, fmt.Errorf("GridKD on %s: %w", w.Name, rv.Err)
		}
		bOnline := rb.Stats.GridMapTime + rb.Stats.UpperBoundTime + rb.Stats.SampleTime
		vOnline := rv.Stats.GridMapTime + rv.Stats.UpperBoundTime + rv.Stats.SampleTime
		speedup := vOnline.Seconds() / bOnline.Seconds()
		t.Rows = append(t.Rows, []Cell{
			cellStr(w.Name), cellDur(bOnline), cellDur(vOnline), cellF(speedup, "%.2fx"),
		})
	}
	return t, nil
}

// RunAll executes every experiment at the given scale and returns the
// tables in paper order.
func RunAll(scale Scale) ([]*Table, error) {
	type runner struct {
		name string
		fn   func() (*Table, error)
	}
	runners := []runner{
		{"table2", func() (*Table, error) { return RunTable2(scale) }},
		{"figure4", func() (*Table, error) { return RunFigure4(scale, nil) }},
		{"accuracy", func() (*Table, error) { return RunAccuracy(scale) }},
		{"table3", func() (*Table, error) { return RunTable3(scale) }},
		{"table4", func() (*Table, error) { return RunTable4(scale) }},
		{"figure5", func() (*Table, error) { return RunFigure5(scale, nil) }},
		{"figure6", func() (*Table, error) { return RunFigure6(scale, nil) }},
		{"figure7", func() (*Table, error) { return RunFigure7(scale, nil) }},
		{"figure8", func() (*Table, error) { return RunFigure8(scale, nil) }},
		{"figure9", func() (*Table, error) { return RunFigure9(scale) }},
	}
	var out []*Table
	for _, r := range runners {
		tbl, err := r.fn()
		if err != nil {
			return out, fmt.Errorf("exp: %s: %w", r.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// Runners maps experiment names to their parameterless runners for
// the CLI.
func Runners(scale Scale) map[string]func() (*Table, error) {
	return map[string]func() (*Table, error){
		"table2":             func() (*Table, error) { return RunTable2(scale) },
		"figure4":            func() (*Table, error) { return RunFigure4(scale, nil) },
		"accuracy":           func() (*Table, error) { return RunAccuracy(scale) },
		"table3":             func() (*Table, error) { return RunTable3(scale) },
		"table4":             func() (*Table, error) { return RunTable4(scale) },
		"figure5":            func() (*Table, error) { return RunFigure5(scale, nil) },
		"figure6":            func() (*Table, error) { return RunFigure6(scale, nil) },
		"figure7":            func() (*Table, error) { return RunFigure7(scale, nil) },
		"figure8":            func() (*Table, error) { return RunFigure8(scale, nil) },
		"figure9":            func() (*Table, error) { return RunFigure9(scale) },
		"ablation-bucketcap": func() (*Table, error) { return RunAblationBucketCap(scale, nil) },
		"ablation-fc":        func() (*Table, error) { return RunAblationFC(scale) },
		"figure4-live":       func() (*Table, error) { return RunFigure4Live(scale, nil) },
	}
}
