package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// tinyScale keeps harness tests fast while still exercising every
// code path.
func tinyScale() Scale {
	return Scale{
		Sizes: map[string]int{"castreet": 2000, "foursquare": 3000},
		L:     100,
		T:     500,
		Seed:  1,
	}
}

func findColumn(t *testing.T, tbl *Table, name string) int {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("column %q not in %v", name, tbl.Columns)
	return -1
}

func TestDefaultScale(t *testing.T) {
	s := DefaultScale(1000)
	if s.Sizes["castreet"] != 1000 || s.Sizes["nyc"] != 8000 {
		t.Fatalf("sizes = %v", s.Sizes)
	}
	names := s.DatasetNames()
	want := []string{"castreet", "foursquare", "imis", "nyc"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v", names)
		}
	}
}

func TestWorkloads(t *testing.T) {
	ws, err := tinyScale().Workloads(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("got %d workloads", len(ws))
	}
	for _, w := range ws {
		total := len(w.R) + len(w.S)
		if total != tinyScale().Sizes[w.Name] {
			t.Fatalf("%s: %d points, want %d", w.Name, total, tinyScale().Sizes[w.Name])
		}
	}
}

func TestRunTable2(t *testing.T) {
	tbl, err := RunTable2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
	out := tbl.Render()
	if !strings.Contains(out, "castreet") || !strings.Contains(out, "Table II") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestRunAccuracyRatiosAtLeastOne(t *testing.T) {
	tbl, err := RunAccuracy(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	bc := findColumn(t, tbl, "BBST ratio")
	rc := findColumn(t, tbl, "KDS-rejection ratio")
	for _, row := range tbl.Rows {
		b, r := row[bc].Value, row[rc].Value
		if b < 1 {
			t.Errorf("BBST ratio %g < 1 (not an upper bound)", b)
		}
		if r < 1 {
			t.Errorf("rejection ratio %g < 1", r)
		}
		// At tiny scale cells are sparse and the BBST corner bound
		// pays its additive log m slack (Lemma 5, α = 1 case), so it
		// can exceed the grid bound here; tightness at paper-like
		// density is asserted in TestAccuracyTightAtDensity.
	}
}

// TestAccuracyTightAtDensity checks the paper's §V-B claim on a
// workload dense enough that cells hold many buckets: BBST's ratio
// must be close to 1 and tighter than the grid bound.
func TestAccuracyTightAtDensity(t *testing.T) {
	if testing.Short() {
		t.Skip("dense workload is slow in -short mode")
	}
	scale := Scale{
		Sizes: map[string]int{"nyc": 60000},
		L:     150,
		T:     100,
		Seed:  2,
	}
	tbl, err := RunAccuracy(scale)
	if err != nil {
		t.Fatal(err)
	}
	bc := findColumn(t, tbl, "BBST ratio")
	rc := findColumn(t, tbl, "KDS-rejection ratio")
	b, r := tbl.Rows[0][bc].Value, tbl.Rows[0][rc].Value
	if b < 1 {
		t.Errorf("BBST ratio %g < 1", b)
	}
	if b > r {
		t.Errorf("BBST ratio %g looser than grid ratio %g at density", b, r)
	}
	if b > 2 {
		t.Errorf("BBST ratio %g far from the paper's ~1.1 regime", b)
	}
}

func TestRunTable3And4(t *testing.T) {
	scale := tinyScale()
	t3, err := RunTable3(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 2*3 {
		t.Fatalf("table3 rows = %d", len(t3.Rows))
	}
	t4, err := RunTable4(scale)
	if err != nil {
		t.Fatal(err)
	}
	ic := findColumn(t, t4, "#iterations")
	ac := findColumn(t, t4, "algorithm")
	for _, row := range t4.Rows {
		iters := uint64(row[ic].Value)
		if iters < uint64(scale.T) {
			t.Errorf("%s iterations %d < t", row[ac].Text, iters)
		}
		if row[ac].Text == "KDS" && iters != uint64(scale.T) {
			t.Errorf("KDS iterations = %d, want exactly t", iters)
		}
	}
}

func TestRunFigure4MemoryMonotone(t *testing.T) {
	scale := tinyScale()
	tbl, err := RunFigure4(scale, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	bc := findColumn(t, tbl, "BBST")
	rc := findColumn(t, tbl, "range-tree")
	// Per dataset, memory at fraction 1.0 must exceed fraction 0.5.
	for i := 0; i+1 < len(tbl.Rows); i += 2 {
		if tbl.Rows[i+1][bc].Value <= tbl.Rows[i][bc].Value {
			t.Errorf("BBST memory not monotone: %g then %g", tbl.Rows[i][bc].Value, tbl.Rows[i+1][bc].Value)
		}
		if tbl.Rows[i+1][rc].Value <= tbl.Rows[i][rc].Value {
			t.Errorf("range-tree memory not monotone")
		}
	}
}

func TestRunFigure5(t *testing.T) {
	scale := tinyScale()
	scale.T = 200
	tbl, err := RunFigure5(scale, []float64{10, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestRunFigure6SamplingGrowth(t *testing.T) {
	scale := tinyScale()
	tbl, err := RunFigure6(scale, []int{100, 5000})
	if err != nil {
		t.Fatal(err)
	}
	kc := findColumn(t, tbl, "KDS")
	// KDS time grows with t (sampling dominates).
	for i := 0; i+1 < len(tbl.Rows); i += 2 {
		if tbl.Rows[i+1][kc].Value < tbl.Rows[i][kc].Value {
			t.Logf("warning: KDS did not grow with t on row %d (timing noise possible)", i)
		}
	}
}

func TestRunFigure7(t *testing.T) {
	tbl, err := RunFigure7(tinyScale(), []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestRunFigure8(t *testing.T) {
	tbl, err := RunFigure8(tinyScale(), []float64{0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	nc := findColumn(t, tbl, "n")
	mc := findColumn(t, tbl, "m")
	rc := findColumn(t, tbl, "n/(n+m)")
	for _, row := range tbl.Rows {
		n, m, ratio := row[nc].Value, row[mc].Value, row[rc].Value
		got := n / (n + m)
		if got < ratio-0.1 || got > ratio+0.1 {
			t.Errorf("split ratio %g produced n/(n+m) = %g", ratio, got)
		}
	}
}

func TestRunFigure9(t *testing.T) {
	tbl, err := RunFigure9(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	sc := findColumn(t, tbl, "speedup")
	for _, row := range tbl.Rows {
		if row[sc].Value <= 0 {
			t.Errorf("speedup %g not positive", row[sc].Value)
		}
	}
}

func TestRunnersCoverAllExperiments(t *testing.T) {
	rs := Runners(tinyScale())
	want := []string{"table2", "table3", "table4", "accuracy", "figure4", "figure5", "figure6", "figure7", "figure8", "figure9"}
	for _, name := range want {
		if _, ok := rs[name]; !ok {
			t.Errorf("runner %q missing", name)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "longer"},
		Rows:    [][]Cell{{cellStr("x"), cellF(1.5, "%.1f")}},
		Notes:   []string{"hello"},
	}
	out := tbl.Render()
	for _, want := range []string{"demo", "longer", "1.5", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNewSamplerUnknown(t *testing.T) {
	if _, err := newSampler("nope", nil, nil, coreConfigForTest()); err == nil {
		t.Fatal("unknown algo should fail")
	}
}

// coreConfigForTest returns a minimal valid config for constructor
// error tests.
func coreConfigForTest() core.Config { return core.Config{HalfExtent: 1} }

func TestRunAblationBucketCap(t *testing.T) {
	scale := tinyScale()
	scale.T = 300
	tbl, err := RunAblationBucketCap(scale, []float64{0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	rc := findColumn(t, tbl, "Σµ/|J|")
	cc := findColumn(t, tbl, "capacity")
	// Smaller capacity must never loosen the bound: µ per corner is
	// (#matched buckets) x cap, and halving cap at least halves the
	// per-bucket slack. Check monotonicity within each dataset.
	for i := 0; i+2 < len(tbl.Rows); i += 3 {
		small, def, big := tbl.Rows[i][rc].Value, tbl.Rows[i+1][rc].Value, tbl.Rows[i+2][rc].Value
		if small > def+1e-9 || def > big+1e-9 {
			t.Errorf("ratio not monotone in capacity: %.3f (cap %v) vs %.3f vs %.3f",
				small, tbl.Rows[i][cc].Text, def, big)
		}
		if small < 1 || def < 1 || big < 1 {
			t.Error("ratio below 1")
		}
	}
}

func TestRunAblationFC(t *testing.T) {
	scale := tinyScale()
	scale.T = 300
	tbl, err := RunAblationFC(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 { // 2 datasets x 2 variants
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	mc := findColumn(t, tbl, "memory")
	for i := 0; i+1 < len(tbl.Rows); i += 2 {
		if tbl.Rows[i+1][mc].Value <= tbl.Rows[i][mc].Value {
			t.Error("FC variant should report more memory")
		}
	}
}

func TestRunFigure4Live(t *testing.T) {
	tbl, err := RunFigure4Live(tinyScale(), []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

// TestRunAllTiny executes the complete paper reproduction end to end
// at minimal scale — the integration test for the whole harness.
func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep is slow in -short mode")
	}
	scale := Scale{
		Sizes: map[string]int{"castreet": 1200, "nyc": 2400},
		L:     150,
		T:     200,
		Seed:  3,
	}
	tables, err := RunAll(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 10 {
		t.Fatalf("got %d tables, want 10", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("table %q has no rows", tbl.Title)
		}
		if tbl.Render() == "" {
			t.Errorf("table %q renders empty", tbl.Title)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]Cell{{cellStr("x,with comma"), cellF(1.5, "%.1f")}},
		Notes:   []string{"a note"},
	}
	out := tbl.CSV()
	for _, want := range []string{"# demo", "a,b", "\"x,with comma\",1.5", "# a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
