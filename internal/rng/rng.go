// Package rng provides the deterministic pseudo-random source used by
// every sampling algorithm in this repository.
//
// All experiments in the paper depend on uniform, independent draws;
// to make tests and experiments reproducible the package implements a
// small, allocation-free PCG-XSH-RR 64/32 generator (O'Neill, 2014)
// seeded explicitly, plus a SplitMix64 seed expander so that derived
// streams (one per worker or per phase) are statistically independent.
package rng

import "math"

// splitMix64 advances the given state and returns a well-mixed 64-bit
// value. It is used for seed expansion only.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a PCG-XSH-RR 64/32 pseudo-random generator. The zero value is
// not valid; construct one with New.
type RNG struct {
	state uint64
	inc   uint64
}

// New returns a generator seeded from seed. Two generators created
// with distinct seeds produce (statistically) independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes the generator in place so that it produces the
// same stream as New(seed), without allocating. Pooled samplers use it
// to hand a recycled generator a fresh independent stream per checkout.
func (r *RNG) Reseed(seed uint64) {
	s := seed
	r.state = splitMix64(&s)
	r.inc = splitMix64(&s) | 1 // stream increment must be odd
	r.next()
}

// Split derives a new generator whose stream is independent of the
// receiver's. The receiver advances, so repeated Split calls yield
// distinct children.
func (r *RNG) Split() *RNG {
	s := uint64(r.next())<<32 | uint64(r.next())
	return New(s)
}

// next produces the next 32 random bits.
func (r *RNG) next() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint32 returns a uniform 32-bit value.
func (r *RNG) Uint32() uint32 { return r.next() }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return uint64(r.next())<<32 | uint64(r.next()) }

// Uint32n returns a uniform value in [0, n). It panics when n == 0.
// The implementation uses Lemire's nearly-divisionless bounded
// rejection so every value is exactly equally likely.
func (r *RNG) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("rng: Uint32n with n == 0")
	}
	x := uint64(r.next()) * uint64(n)
	low := uint32(x)
	if low < n {
		threshold := -n % n
		for low < threshold {
			x = uint64(r.next()) * uint64(n)
			low = uint32(x)
		}
	}
	return uint32(x >> 32)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	if n <= math.MaxUint32 {
		return int(r.Uint32n(uint32(n)))
	}
	// Rarely needed 64-bit path: rejection from the next power of two.
	mask := uint64(1)
	for mask < uint64(n) {
		mask <<= 1
	}
	mask--
	for {
		v := r.Uint64() & mask
		if v < uint64(n) {
			return int(v)
		}
	}
}

// Int63n returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with n <= 0")
	}
	return int64(r.Intn(int(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate using the
// Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p uniformly at random (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
