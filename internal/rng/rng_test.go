package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

// TestReseedMatchesNew: a reseeded generator must continue exactly as
// a freshly constructed one — the clone pool relies on this to hand
// recycled samplers fresh streams without allocating.
func TestReseedMatchesNew(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		r.Uint64() // advance to an arbitrary interior state
	}
	r.Reseed(42)
	fresh := New(42)
	for i := 0; i < 1000; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatalf("reseeded stream diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds collide too often: %d/100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint32() == c2.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide too often: %d/100", same)
	}
}

func TestUint32nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint32{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Uint32n(n)
			if v >= n {
				t.Fatalf("Uint32n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint32nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uint32n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square test over 10 buckets at ~5 sigma tolerance.
	r := New(99)
	const n = 10
	const draws = 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; critical value at p=0.001 is 27.88.
	if chi2 > 27.88 {
		t.Fatalf("Intn distribution skewed: chi2 = %g, counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestRange(t *testing.T) {
	r := New(6)
	for i := 0; i < 1000; i++ {
		v := r.Range(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Range(10,20) = %g out of bounds", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(9)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %g negative", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %g, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(11)
	const n = 5
	const draws = 50000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("Perm first element %d count %d deviates from %g", i, c, expected)
		}
	}
}

func TestShuffleSwapsAllPositions(t *testing.T) {
	r := New(12)
	vals := []string{"a", "b", "c", "d"}
	orig := append([]string(nil), vals...)
	moved := false
	for trial := 0; trial < 20 && !moved; trial++ {
		r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for i := range vals {
			if vals[i] != orig[i] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("Shuffle never changed the slice in 20 trials")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if got := float64(hits) / draws; math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %g", got)
	}
}

func TestIntnLargeRange(t *testing.T) {
	r := New(14)
	n := math.MaxUint32 + int(1e6) // exercise the 64-bit rejection path
	for i := 0; i < 100; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestInt63n(t *testing.T) {
	r := New(15)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1000)
		if v < 0 || v >= 1000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
