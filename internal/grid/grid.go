// Package grid implements the hash grid over non-empty cells used by
// both the KDS-rejection baseline and the BBST algorithm (GRID-MAPPING
// in Algorithm 1 of the paper).
//
// The cell side equals the window half-extent l (the paper states this
// as "side length l/2" for an l x l window; our windows are written as
// [r.x-l, r.x+l] following the paper's experimental setup, so the cell
// side is l). With this choice a window w(r) overlaps at most the 3x3
// block of cells around the cell containing r, and:
//
//   - the center cell is always fully covered by w(r)   (case 1, 0-sided)
//   - the four edge neighbors are 1-sided               (case 2)
//   - the four corner neighbors are 2-sided             (case 3)
//
// Cells keep two copies of their points, sorted by x and by y, so that
// 1-sided counts and samples are a single binary search.
package grid

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Direction indexes the 3x3 neighborhood of the cell containing a
// query point. The numbering groups the three paper cases so callers
// can range over them: Center (case 1), then the four edges (case 2),
// then the four corners (case 3).
type Direction int

// Neighborhood directions. W/E/S/N are 1-sided cells; SW/NW/SE/NE are
// the 2-sided corners handled by the BBST.
const (
	Center    Direction = iota // case 1: fully covered
	West                       // case 2: constraint x >= w.XMin
	East                       // case 2: constraint x <= w.XMax
	South                      // case 2: constraint y >= w.YMin
	North                      // case 2: constraint y <= w.YMax
	SouthWest                  // case 3: x >= w.XMin, y >= w.YMin
	NorthWest                  // case 3: x >= w.XMin, y <= w.YMax
	SouthEast                  // case 3: x <= w.XMax, y >= w.YMin
	NorthEast                  // case 3: x <= w.XMax, y <= w.YMax

	// NumDirections is the size of a full neighborhood.
	NumDirections = 9
)

var directionNames = [NumDirections]string{
	"center", "west", "east", "south", "north",
	"southwest", "northwest", "southeast", "northeast",
}

// String returns the lowercase name of the direction.
func (d Direction) String() string {
	if d < 0 || d >= NumDirections {
		return fmt.Sprintf("direction(%d)", int(d))
	}
	return directionNames[d]
}

// Case returns the paper's case number (1, 2 or 3) for the direction.
func (d Direction) Case() int {
	switch {
	case d == Center:
		return 1
	case d <= North:
		return 2
	default:
		return 3
	}
}

// offsets maps a Direction to its (dx, dy) cell offset.
var offsets = [NumDirections][2]int32{
	{0, 0},          // Center
	{-1, 0}, {1, 0}, // West, East
	{0, -1}, {0, 1}, // South, North
	{-1, -1}, {-1, 1}, // SouthWest, NorthWest
	{1, -1}, {1, 1}, // SouthEast, NorthEast
}

// Key identifies a grid cell by its integer coordinates.
type Key struct {
	CX, CY int32
}

// Neighbor returns the key of the cell in direction d.
func (k Key) Neighbor(d Direction) Key {
	off := offsets[d]
	return Key{CX: k.CX + off[0], CY: k.CY + off[1]}
}

// Cell holds the points of S that fall into one grid cell, in two
// sort orders. XSorted corresponds to S(c) in the paper (pre-sorted by
// x) and YSorted to Sy(c).
type Cell struct {
	Key     Key
	XSorted []geom.Point
	YSorted []geom.Point
}

// Len returns the number of points in the cell.
func (c *Cell) Len() int { return len(c.XSorted) }

// Rect returns the closed spatial extent of the cell given the grid
// cell side.
func (c *Cell) Rect(side float64) geom.Rect {
	return geom.Rect{
		XMin: float64(c.Key.CX) * side,
		YMin: float64(c.Key.CY) * side,
		XMax: float64(c.Key.CX+1) * side,
		YMax: float64(c.Key.CY+1) * side,
	}
}

// CountXAtLeast returns the number of points with X >= x, together
// with the first index of that suffix in XSorted.
func (c *Cell) CountXAtLeast(x float64) (count, start int) {
	start = sort.Search(len(c.XSorted), func(i int) bool { return c.XSorted[i].X >= x })
	return len(c.XSorted) - start, start
}

// CountXAtMost returns the number of points with X <= x; the matching
// points are the prefix XSorted[:count].
func (c *Cell) CountXAtMost(x float64) int {
	return sort.Search(len(c.XSorted), func(i int) bool { return c.XSorted[i].X > x })
}

// CountYAtLeast returns the number of points with Y >= y, together
// with the first index of that suffix in YSorted.
func (c *Cell) CountYAtLeast(y float64) (count, start int) {
	start = sort.Search(len(c.YSorted), func(i int) bool { return c.YSorted[i].Y >= y })
	return len(c.YSorted) - start, start
}

// CountYAtMost returns the number of points with Y <= y; the matching
// points are the prefix YSorted[:count].
func (c *Cell) CountYAtMost(y float64) int {
	return sort.Search(len(c.YSorted), func(i int) bool { return c.YSorted[i].Y > y })
}

// Grid is a hash grid over the non-empty cells of a point set.
type Grid struct {
	side  float64
	cells map[Key]*Cell
	size  int // total number of points
}

// Build maps each point to its cell and sorts the per-cell copies.
// It corresponds to GRID-MAPPING(S, l) plus the per-cell sorting of
// Algorithm 1. side must be positive.
func Build(points []geom.Point, side float64) (*Grid, error) {
	if side <= 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return nil, fmt.Errorf("grid: cell side must be positive and finite, got %g", side)
	}
	g := &Grid{side: side, cells: make(map[Key]*Cell), size: len(points)}
	for _, p := range points {
		k := g.KeyAt(p.X, p.Y)
		c := g.cells[k]
		if c == nil {
			c = &Cell{Key: k}
			g.cells[k] = c
		}
		c.XSorted = append(c.XSorted, p)
	}
	for _, c := range g.cells {
		sort.Slice(c.XSorted, func(i, j int) bool { return c.XSorted[i].X < c.XSorted[j].X })
		c.YSorted = append([]geom.Point(nil), c.XSorted...)
		sort.Slice(c.YSorted, func(i, j int) bool { return c.YSorted[i].Y < c.YSorted[j].Y })
	}
	return g, nil
}

// Side returns the cell side length.
func (g *Grid) Side() float64 { return g.side }

// Len returns the total number of points in the grid.
func (g *Grid) Len() int { return g.size }

// NumCells returns the number of non-empty cells.
func (g *Grid) NumCells() int { return len(g.cells) }

// KeyAt returns the key of the cell containing coordinate (x, y).
func (g *Grid) KeyAt(x, y float64) Key { return KeyFor(x, y, g.side) }

// KeyFor returns the key of the cell containing (x, y) for the given
// cell side — the grid-free spelling for callers (the incremental
// maintenance path) that track cells in a Dir instead of a Grid.
func KeyFor(x, y, side float64) Key {
	return Key{
		CX: int32(math.Floor(x / side)),
		CY: int32(math.Floor(y / side)),
	}
}

// CellAt returns the cell containing (x, y), or nil when it is empty.
func (g *Grid) CellAt(x, y float64) *Cell { return g.cells[g.KeyAt(x, y)] }

// Cell returns the cell with key k, or nil when it is empty.
func (g *Grid) Cell(k Key) *Cell { return g.cells[k] }

// Neighborhood fills dst with the 3x3 block of cells around the cell
// containing r, indexed by Direction; empty cells are nil. It returns
// dst to allow chaining.
func (g *Grid) Neighborhood(r geom.Point, dst *[NumDirections]*Cell) *[NumDirections]*Cell {
	k := g.KeyAt(r.X, r.Y)
	for d := Direction(0); d < NumDirections; d++ {
		dst[d] = g.cells[k.Neighbor(d)]
	}
	return dst
}

// Cells calls fn for every non-empty cell. Iteration order is
// unspecified.
func (g *Grid) Cells(fn func(*Cell)) {
	for _, c := range g.cells {
		fn(c)
	}
}

// SizeBytes estimates the heap footprint of the grid: two point copies
// per point plus map overhead. Used by the memory experiment.
func (g *Grid) SizeBytes() int {
	const pointSize = 24 // 2 float64 + int32 padded
	const cellOverhead = 96
	total := 0
	for _, c := range g.cells {
		total += cellOverhead + pointSize*(len(c.XSorted)+len(c.YSorted))
	}
	return total
}
