package grid

import (
	"testing"

	"repro/internal/rng"
)

func TestDirBasics(t *testing.T) {
	var d Dir[int]
	if _, ok := d.Get(Key{1, 2}); ok {
		t.Fatal("empty dir returned a value")
	}
	d2 := d.With(Key{1, 2}, 10).With(Key{3, 4}, 20).With(Key{1, 2}, 11)
	if d2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d2.Len())
	}
	if v, ok := d2.Get(Key{1, 2}); !ok || v != 11 {
		t.Fatalf("Get{1,2} = %d,%v", v, ok)
	}
	if v, ok := d2.Get(Key{3, 4}); !ok || v != 20 {
		t.Fatalf("Get{3,4} = %d,%v", v, ok)
	}
	if d.Len() != 0 {
		t.Fatal("With mutated its receiver")
	}
	d3 := d2.Without(Key{1, 2})
	if d3.Len() != 1 {
		t.Fatalf("after Without Len = %d", d3.Len())
	}
	if _, ok := d3.Get(Key{1, 2}); ok {
		t.Fatal("removed key still present")
	}
	if _, ok := d2.Get(Key{1, 2}); !ok {
		t.Fatal("Without mutated its receiver")
	}
	if d4 := d3.Without(Key{9, 9}); d4.Len() != 1 {
		t.Fatal("Without of absent key changed size")
	}
}

// TestDirRandomOpsVsMap drives thousands of random With/Without calls
// against a map oracle, keeping every intermediate version and
// verifying them all at the end (persistence).
func TestDirRandomOpsVsMap(t *testing.T) {
	r := rng.New(1)
	cur := &Dir[int]{}
	oracle := map[Key]int{}
	type version struct {
		d    *Dir[int]
		snap map[Key]int
	}
	var versions []version
	for step := 0; step < 4000; step++ {
		k := Key{CX: int32(r.Intn(40)) - 20, CY: int32(r.Intn(40)) - 20}
		if r.Bool(0.35) {
			cur = cur.Without(k)
			delete(oracle, k)
		} else {
			cur = cur.With(k, step)
			oracle[k] = step
		}
		if step%500 == 0 {
			snap := make(map[Key]int, len(oracle))
			for kk, vv := range oracle {
				snap[kk] = vv
			}
			versions = append(versions, version{cur, snap})
		}
	}
	check := func(d *Dir[int], want map[Key]int) {
		t.Helper()
		if d.Len() != len(want) {
			t.Fatalf("Len = %d, oracle %d", d.Len(), len(want))
		}
		for k, v := range want {
			if got, ok := d.Get(k); !ok || got != v {
				t.Fatalf("Get(%v) = %d,%v want %d", k, got, ok, v)
			}
		}
		seen := 0
		d.Range(func(k Key, v int) bool {
			if want[k] != v {
				t.Fatalf("Range yielded %v=%d, oracle %d", k, v, want[k])
			}
			seen++
			return true
		})
		if seen != len(want) {
			t.Fatalf("Range yielded %d pairs, oracle %d", seen, len(want))
		}
	}
	check(cur, oracle)
	for _, ver := range versions {
		check(ver.d, ver.snap)
	}
}

// TestDirForcedCollisions overrides the hash to a near-constant so the
// collision-leaf and push-down paths run.
func TestDirForcedCollisions(t *testing.T) {
	orig := dirHash
	defer func() { dirHash = orig }()
	dirHash = func(k Key) uint64 { return uint64(uint32(k.CX)) % 3 } // 3 hash classes
	var d Dir[int]
	cur := &d
	want := map[Key]int{}
	for i := 0; i < 200; i++ {
		k := Key{CX: int32(i), CY: int32(i % 7)}
		cur = cur.With(k, i)
		want[k] = i
	}
	if cur.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", cur.Len(), len(want))
	}
	for k, v := range want {
		if got, ok := cur.Get(k); !ok || got != v {
			t.Fatalf("Get(%v) = %d,%v want %d", k, got, ok, v)
		}
	}
	for k := range want {
		cur = cur.Without(k)
	}
	if cur.Len() != 0 {
		t.Fatalf("drained dir has Len %d", cur.Len())
	}
}

// TestDirRangeDeterministic pins the hash-order iteration contract:
// two directories holding the same keys (built in different op orders)
// iterate identically.
func TestDirRangeDeterministic(t *testing.T) {
	r := rng.New(2)
	keys := make([]Key, 300)
	for i := range keys {
		keys[i] = Key{CX: int32(r.Intn(1000)), CY: int32(r.Intn(1000))}
	}
	a, b := &Dir[int]{}, &Dir[int]{}
	for _, k := range keys {
		a = a.With(k, 1)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b = b.With(keys[i], 1)
	}
	// Perturb b with extra keys, then remove them.
	for i := 0; i < 50; i++ {
		b = b.With(Key{CX: -int32(i) - 1, CY: 0}, 9)
	}
	for i := 0; i < 50; i++ {
		b = b.Without(Key{CX: -int32(i) - 1, CY: 0})
	}
	var orderA, orderB []Key
	a.Range(func(k Key, _ int) bool { orderA = append(orderA, k); return true })
	b.Range(func(k Key, _ int) bool { orderB = append(orderB, k); return true })
	if len(orderA) != len(orderB) {
		t.Fatalf("lengths differ: %d vs %d", len(orderA), len(orderB))
	}
	for i := range orderA {
		if orderA[i] != orderB[i] {
			t.Fatalf("iteration order diverged at %d: %v vs %v", i, orderA[i], orderB[i])
		}
	}
}

func BenchmarkDirWith(b *testing.B) {
	r := rng.New(3)
	d := &Dir[int]{}
	for i := 0; i < 1<<14; i++ {
		d = d.With(Key{CX: int32(r.Intn(1 << 12)), CY: int32(r.Intn(1 << 12))}, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = d.With(Key{CX: int32(r.Intn(1 << 12)), CY: int32(r.Intn(1 << 12))}, i)
	}
}
