package grid

// Dir is a persistent (path-copied) cell directory: a hash array
// mapped trie over splitmix-hashed Keys with 6-bit branching. Where
// Grid's map serves the frozen bulk-build path, Dir serves the
// incremental one: With and Without return a NEW directory sharing all
// untouched structure with the old version, so an update batch can
// advance the tip in O(ops · log) while every published view keeps
// reading its own version wait-free. Iteration order is a pure
// function of the stored keys (hash order), never of Go map ordering,
// which keeps replays and equal-seed runs deterministic.

import "math/bits"

const (
	dirBits  = 6
	dirFan   = 1 << dirBits // 64-way branching
	dirMask  = dirFan - 1
	dirDepth = 64 / dirBits // hash bits consumed before the collision floor
)

// dirHash mixes a cell key into 64 well-distributed bits (splitmix64
// finalizer). A package variable so tests can force collisions.
var dirHash = func(k Key) uint64 {
	x := uint64(uint32(k.CX)) | uint64(uint32(k.CY))<<32
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// dkv is one stored key/value pair.
type dkv[V any] struct {
	k Key
	v V
}

// dslot is one compressed slot of a node: either a leaf (one or more
// pairs whose remaining hash bits agree) or a child node.
type dslot[V any] struct {
	leaf  []dkv[V]
	child *dnode[V]
}

// dnode is a bitmap-compressed trie node: bit i of bitmap set means
// hash chunk i occupies slots[popcount(bitmap & (1<<i - 1))].
type dnode[V any] struct {
	bitmap uint64
	slots  []dslot[V]
}

// Dir is one immutable version of the directory. The zero value is
// empty and ready to use.
type Dir[V any] struct {
	root *dnode[V]
	n    int
}

// Len returns the number of keys.
func (d *Dir[V]) Len() int { return d.n }

// Get returns the value stored under k.
func (d *Dir[V]) Get(k Key) (V, bool) {
	var zero V
	u := d.root
	if u == nil {
		return zero, false
	}
	h := dirHash(k)
	for shift := 0; ; shift += dirBits {
		bit := uint64(1) << ((h >> shift) & dirMask)
		if u.bitmap&bit == 0 {
			return zero, false
		}
		s := &u.slots[bits.OnesCount64(u.bitmap&(bit-1))]
		if s.child == nil {
			for _, kv := range s.leaf {
				if kv.k == k {
					return kv.v, true
				}
			}
			return zero, false
		}
		u = s.child
	}
}

// With returns a new version with k bound to v, path-copying the
// O(log) nodes from the root to k's slot.
func (d *Dir[V]) With(k Key, v V) *Dir[V] {
	h := dirHash(k)
	root, added := withNode(d.root, 0, h, k, v)
	nd := &Dir[V]{root: root, n: d.n}
	if added {
		nd.n++
	}
	return nd
}

func withNode[V any](u *dnode[V], shift int, h uint64, k Key, v V) (*dnode[V], bool) {
	bit := uint64(1) << ((h >> shift) & dirMask)
	if u == nil {
		return &dnode[V]{bitmap: bit, slots: []dslot[V]{{leaf: []dkv[V]{{k, v}}}}}, true
	}
	pos := bits.OnesCount64(u.bitmap & (bit - 1))
	nu := &dnode[V]{bitmap: u.bitmap}
	if u.bitmap&bit == 0 {
		nu.slots = make([]dslot[V], len(u.slots)+1)
		copy(nu.slots, u.slots[:pos])
		nu.slots[pos] = dslot[V]{leaf: []dkv[V]{{k, v}}}
		copy(nu.slots[pos+1:], u.slots[pos:])
		nu.bitmap |= bit
		return nu, true
	}
	nu.slots = append([]dslot[V](nil), u.slots...)
	s := u.slots[pos]
	if s.child != nil {
		child, added := withNode(s.child, shift+dirBits, h, k, v)
		nu.slots[pos] = dslot[V]{child: child}
		return nu, added
	}
	// Leaf slot. Replace in place (copied), extend the collision list
	// when every hash bit is spent, or push both occupants one level
	// down otherwise.
	for i, kv := range s.leaf {
		if kv.k == k {
			leaf := append([]dkv[V](nil), s.leaf...)
			leaf[i] = dkv[V]{k, v}
			nu.slots[pos] = dslot[V]{leaf: leaf}
			return nu, false
		}
	}
	oldHash := dirHash(s.leaf[0].k)
	if shift+dirBits >= dirDepth*dirBits || oldHash == h {
		leaf := append(append([]dkv[V](nil), s.leaf...), dkv[V]{k, v})
		nu.slots[pos] = dslot[V]{leaf: leaf}
		return nu, true
	}
	child := &dnode[V]{}
	obit := uint64(1) << ((oldHash >> (shift + dirBits)) & dirMask)
	child.bitmap = obit
	child.slots = []dslot[V]{{leaf: s.leaf}}
	child, _ = withNode(child, shift+dirBits, h, k, v)
	nu.slots[pos] = dslot[V]{child: child}
	return nu, true
}

// Without returns a new version with k removed (the receiver when k is
// absent), path-copying along the way and dropping emptied slots.
func (d *Dir[V]) Without(k Key) *Dir[V] {
	if d.root == nil {
		return d
	}
	h := dirHash(k)
	root, removed := withoutNode(d.root, 0, h, k)
	if !removed {
		return d
	}
	return &Dir[V]{root: root, n: d.n - 1}
}

func withoutNode[V any](u *dnode[V], shift int, h uint64, k Key) (*dnode[V], bool) {
	bit := uint64(1) << ((h >> shift) & dirMask)
	if u.bitmap&bit == 0 {
		return u, false
	}
	pos := bits.OnesCount64(u.bitmap & (bit - 1))
	s := u.slots[pos]
	var ns dslot[V]
	if s.child != nil {
		child, removed := withoutNode(s.child, shift+dirBits, h, k)
		if !removed {
			return u, false
		}
		if child == nil {
			return dropSlot(u, bit, pos), true
		}
		ns = dslot[V]{child: child}
	} else {
		found := -1
		for i, kv := range s.leaf {
			if kv.k == k {
				found = i
				break
			}
		}
		if found < 0 {
			return u, false
		}
		if len(s.leaf) == 1 {
			return dropSlot(u, bit, pos), true
		}
		leaf := make([]dkv[V], 0, len(s.leaf)-1)
		leaf = append(append(leaf, s.leaf[:found]...), s.leaf[found+1:]...)
		ns = dslot[V]{leaf: leaf}
	}
	nu := &dnode[V]{bitmap: u.bitmap, slots: append([]dslot[V](nil), u.slots...)}
	nu.slots[pos] = ns
	return nu, true
}

// dropSlot returns a copy of u without the slot at pos (nil when that
// was the last slot, so the parent can contract).
func dropSlot[V any](u *dnode[V], bit uint64, pos int) *dnode[V] {
	if len(u.slots) == 1 {
		return nil
	}
	nu := &dnode[V]{bitmap: u.bitmap &^ bit, slots: make([]dslot[V], len(u.slots)-1)}
	copy(nu.slots, u.slots[:pos])
	copy(nu.slots[pos:], u.slots[pos+1:])
	return nu
}

// Range calls fn for every key/value pair in hash order (deterministic
// for a given key set) until fn returns false.
func (d *Dir[V]) Range(fn func(Key, V) bool) {
	rangeNode(d.root, fn)
}

func rangeNode[V any](u *dnode[V], fn func(Key, V) bool) bool {
	if u == nil {
		return true
	}
	for i := range u.slots {
		s := &u.slots[i]
		if s.child != nil {
			if !rangeNode(s.child, fn) {
				return false
			}
			continue
		}
		for _, kv := range s.leaf {
			if !fn(kv.k, kv.v) {
				return false
			}
		}
	}
	return true
}

// SizeBytes estimates the standalone footprint of this version
// (~1.3 slots of 40 bytes per key plus node headers); shared structure
// across versions makes the incremental cost of a new version O(log n).
func (d *Dir[V]) SizeBytes() int { return 72 * d.n }
