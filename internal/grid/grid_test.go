package grid

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func randomPoints(r *rng.RNG, n int, lo, hi float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(lo, hi), Y: r.Range(lo, hi), ID: int32(i)}
	}
	return pts
}

func TestBuildRejectsBadSide(t *testing.T) {
	for _, side := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Build(nil, side); err == nil {
			t.Errorf("Build with side %g should fail", side)
		}
	}
}

func TestEmptyGrid(t *testing.T) {
	g, err := Build(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 0 || g.Len() != 0 {
		t.Fatalf("empty grid has %d cells, %d points", g.NumCells(), g.Len())
	}
	if g.CellAt(5, 5) != nil {
		t.Fatal("CellAt on empty grid should be nil")
	}
}

func TestKeyAtNegativeCoordinates(t *testing.T) {
	g, _ := Build(nil, 10)
	tests := []struct {
		x, y float64
		want Key
	}{
		{0, 0, Key{0, 0}},
		{9.99, 9.99, Key{0, 0}},
		{10, 10, Key{1, 1}},
		{-0.01, -0.01, Key{-1, -1}},
		{-10, -10, Key{-1, -1}},
		{-10.01, 0, Key{-2, 0}},
	}
	for _, tc := range tests {
		if got := g.KeyAt(tc.x, tc.y); got != tc.want {
			t.Errorf("KeyAt(%g,%g) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestCellsPartitionPoints(t *testing.T) {
	r := rng.New(1)
	pts := randomPoints(r, 2000, -100, 100)
	g, err := Build(pts, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	g.Cells(func(c *Cell) {
		total += c.Len()
		rect := c.Rect(g.Side())
		for _, p := range c.XSorted {
			if g.KeyAt(p.X, p.Y) != c.Key {
				t.Fatalf("point %v in wrong cell %v", p, c.Key)
			}
			if !rect.Contains(p) {
				t.Fatalf("point %v outside cell rect %v", p, rect)
			}
		}
		if len(c.XSorted) != len(c.YSorted) {
			t.Fatal("XSorted and YSorted lengths differ")
		}
		if !sort.SliceIsSorted(c.XSorted, func(i, j int) bool { return c.XSorted[i].X < c.XSorted[j].X }) {
			t.Fatal("XSorted not sorted by x")
		}
		if !sort.SliceIsSorted(c.YSorted, func(i, j int) bool { return c.YSorted[i].Y < c.YSorted[j].Y }) {
			t.Fatal("YSorted not sorted by y")
		}
	})
	if total != len(pts) {
		t.Fatalf("cells hold %d points, want %d", total, len(pts))
	}
}

func TestDirectionMetadata(t *testing.T) {
	if Center.Case() != 1 {
		t.Error("Center should be case 1")
	}
	for _, d := range []Direction{West, East, South, North} {
		if d.Case() != 2 {
			t.Errorf("%v should be case 2", d)
		}
	}
	for _, d := range []Direction{SouthWest, NorthWest, SouthEast, NorthEast} {
		if d.Case() != 3 {
			t.Errorf("%v should be case 3", d)
		}
	}
	if Direction(42).String() == "" || West.String() != "west" {
		t.Error("String() misbehaves")
	}
}

func TestNeighborOffsets(t *testing.T) {
	k := Key{CX: 10, CY: 20}
	if got := k.Neighbor(Center); got != k {
		t.Errorf("Center neighbor = %v", got)
	}
	if got := k.Neighbor(SouthWest); got != (Key{9, 19}) {
		t.Errorf("SouthWest = %v", got)
	}
	if got := k.Neighbor(NorthEast); got != (Key{11, 21}) {
		t.Errorf("NorthEast = %v", got)
	}
	if got := k.Neighbor(North); got != (Key{10, 21}) {
		t.Errorf("North = %v", got)
	}
}

// TestWindowCoveredByNeighborhood is the structural invariant the whole
// algorithm rests on: every point of S inside w(r) lies in the 3x3
// neighborhood of r's cell, and the center cell is fully covered.
func TestWindowCoveredByNeighborhood(t *testing.T) {
	r := rng.New(2)
	const l = 13.0
	pts := randomPoints(r, 3000, 0, 500)
	g, err := Build(pts, l)
	if err != nil {
		t.Fatal(err)
	}
	var nb [NumDirections]*Cell
	for trial := 0; trial < 200; trial++ {
		q := geom.Point{X: r.Range(0, 500), Y: r.Range(0, 500)}
		w := geom.Window(q, l)
		g.Neighborhood(q, &nb)
		inNeighborhood := make(map[int32]bool)
		for _, c := range nb {
			if c == nil {
				continue
			}
			for _, p := range c.XSorted {
				inNeighborhood[p.ID] = true
			}
		}
		for _, p := range pts {
			if w.Contains(p) && !inNeighborhood[p.ID] {
				t.Fatalf("point %v in window %v but outside 3x3 neighborhood of %v", p, w, q)
			}
		}
		// Case 1: center cell fully covered.
		if c := nb[Center]; c != nil {
			for _, p := range c.XSorted {
				if !w.Contains(p) {
					t.Fatalf("center-cell point %v not in window %v (q=%v)", p, w, q)
				}
			}
		}
	}
}

// TestCase2OneSided checks that for edge neighbors exactly one
// coordinate constraint is active: e.g. every point of the west cell
// already satisfies the window's y-range and x <= XMax.
func TestCase2OneSided(t *testing.T) {
	r := rng.New(3)
	const l = 9.0
	pts := randomPoints(r, 3000, 0, 300)
	g, err := Build(pts, l)
	if err != nil {
		t.Fatal(err)
	}
	var nb [NumDirections]*Cell
	for trial := 0; trial < 100; trial++ {
		q := geom.Point{X: r.Range(0, 300), Y: r.Range(0, 300)}
		w := geom.Window(q, l)
		g.Neighborhood(q, &nb)
		check := func(c *Cell, free func(geom.Point) bool, name string) {
			if c == nil {
				return
			}
			for _, p := range c.XSorted {
				if !free(p) {
					t.Fatalf("%s cell point %v violates the supposedly-free constraint (w=%v)", name, p, w)
				}
			}
		}
		check(nb[West], func(p geom.Point) bool { return p.Y >= w.YMin && p.Y <= w.YMax && p.X <= w.XMax }, "west")
		check(nb[East], func(p geom.Point) bool { return p.Y >= w.YMin && p.Y <= w.YMax && p.X >= w.XMin }, "east")
		check(nb[South], func(p geom.Point) bool { return p.X >= w.XMin && p.X <= w.XMax && p.Y <= w.YMax }, "south")
		check(nb[North], func(p geom.Point) bool { return p.X >= w.XMin && p.X <= w.XMax && p.Y >= w.YMin }, "north")
	}
}

func TestCellBinarySearchHelpers(t *testing.T) {
	c := &Cell{
		XSorted: []geom.Point{{X: 1, Y: 5}, {X: 2, Y: 4}, {X: 2, Y: 3}, {X: 5, Y: 1}},
		YSorted: []geom.Point{{X: 5, Y: 1}, {X: 2, Y: 3}, {X: 2, Y: 4}, {X: 1, Y: 5}},
	}
	if cnt, start := c.CountXAtLeast(2); cnt != 3 || start != 1 {
		t.Errorf("CountXAtLeast(2) = (%d,%d), want (3,1)", cnt, start)
	}
	if cnt, _ := c.CountXAtLeast(6); cnt != 0 {
		t.Errorf("CountXAtLeast(6) = %d, want 0", cnt)
	}
	if got := c.CountXAtMost(2); got != 3 {
		t.Errorf("CountXAtMost(2) = %d, want 3", got)
	}
	if got := c.CountXAtMost(0.5); got != 0 {
		t.Errorf("CountXAtMost(0.5) = %d, want 0", got)
	}
	if cnt, start := c.CountYAtLeast(3); cnt != 3 || start != 1 {
		t.Errorf("CountYAtLeast(3) = (%d,%d), want (3,1)", cnt, start)
	}
	if got := c.CountYAtMost(4); got != 3 {
		t.Errorf("CountYAtMost(4) = %d, want 3", got)
	}
}

func TestQuickCountHelpersMatchBruteForce(t *testing.T) {
	r := rng.New(4)
	f := func(seed uint64, threshold float64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(50)
		pts := randomPoints(rr, n, 0, 10)
		// Duplicates stress the boundary handling.
		if n > 3 {
			pts[1].X = pts[0].X
			pts[2].X = pts[0].X
		}
		g, err := Build(pts, 10)
		if err != nil {
			return false
		}
		th := math.Mod(math.Abs(threshold), 10)
		ok := true
		g.Cells(func(c *Cell) {
			wantGE, wantLE := 0, 0
			for _, p := range c.XSorted {
				if p.X >= th {
					wantGE++
				}
				if p.X <= th {
					wantLE++
				}
			}
			if cnt, _ := c.CountXAtLeast(th); cnt != wantGE {
				ok = false
			}
			if c.CountXAtMost(th) != wantLE {
				ok = false
			}
			wantGE, wantLE = 0, 0
			for _, p := range c.YSorted {
				if p.Y >= th {
					wantGE++
				}
				if p.Y <= th {
					wantLE++
				}
			}
			if cnt, _ := c.CountYAtLeast(th); cnt != wantGE {
				ok = false
			}
			if c.CountYAtMost(th) != wantLE {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestSizeBytesGrows(t *testing.T) {
	r := rng.New(5)
	small, _ := Build(randomPoints(r, 100, 0, 100), 10)
	big, _ := Build(randomPoints(r, 10000, 0, 100), 10)
	if small.SizeBytes() <= 0 || big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("SizeBytes not monotone: small=%d big=%d", small.SizeBytes(), big.SizeBytes())
	}
}
