package grid

// Copy-on-write cell updates for the incremental maintenance path.
// A Cell is immutable once published to a serving view; an update
// batch produces a replacement cell in one merge pass per sort order,
// leaving the original (and every reader holding it) untouched.

import (
	"sort"

	"repro/internal/geom"
)

// WithUpdates returns a new cell holding the points of c (nil means an
// empty cell with the given key) minus those matching drop, plus ins.
// Both sort orders are rebuilt in one filter-and-merge pass each —
// O(|cell| + |ins| log |ins|) for any number of changes, which is why
// the dynamic path batches its per-cell work instead of editing point
// by point. Returns nil when the result is empty (the cell leaves the
// directory). c is never modified; ins is not retained.
func WithUpdates(key Key, c *Cell, ins []geom.Point, drop func(geom.Point) bool) *Cell {
	var oldX, oldY []geom.Point
	if c != nil {
		oldX, oldY = c.XSorted, c.YSorted
	}
	keep := len(oldX)
	if drop != nil {
		keep = 0
		for _, p := range oldX {
			if !drop(p) {
				keep++
			}
		}
	}
	if keep+len(ins) == 0 {
		return nil
	}
	nc := &Cell{
		Key:     key,
		XSorted: make([]geom.Point, 0, keep+len(ins)),
		YSorted: make([]geom.Point, 0, keep+len(ins)),
	}
	insX := append([]geom.Point(nil), ins...)
	sort.Slice(insX, func(i, j int) bool { return insX[i].X < insX[j].X })
	nc.XSorted = filterMerge(nc.XSorted, oldX, insX, drop,
		func(a, b geom.Point) bool { return a.X <= b.X })
	insY := insX
	sort.Slice(insY, func(i, j int) bool { return insY[i].Y < insY[j].Y })
	nc.YSorted = filterMerge(nc.YSorted, oldY, insY, drop,
		func(a, b geom.Point) bool { return a.Y <= b.Y })
	return nc
}

// filterMerge appends to dst the merge of old (minus dropped points)
// and ins, both already ascending under le.
func filterMerge(dst, old, ins []geom.Point, drop func(geom.Point) bool, le func(a, b geom.Point) bool) []geom.Point {
	i, j := 0, 0
	for i < len(old) || j < len(ins) {
		if i < len(old) && drop != nil && drop(old[i]) {
			i++
			continue
		}
		if j >= len(ins) || (i < len(old) && le(old[i], ins[j])) {
			dst = append(dst, old[i])
			i++
		} else {
			dst = append(dst, ins[j])
			j++
		}
	}
	return dst
}
