package grid

import (
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// oracleCell rebuilds the expected cell naively: filter, append, sort.
func oracleCell(key Key, c *Cell, ins []geom.Point, drop func(geom.Point) bool) *Cell {
	var pts []geom.Point
	if c != nil {
		for _, p := range c.XSorted {
			if drop == nil || !drop(p) {
				pts = append(pts, p)
			}
		}
	}
	pts = append(pts, ins...)
	if len(pts) == 0 {
		return nil
	}
	xs := append([]geom.Point(nil), pts...)
	ys := append([]geom.Point(nil), pts...)
	sort.SliceStable(xs, func(i, j int) bool { return xs[i].X < xs[j].X })
	sort.SliceStable(ys, func(i, j int) bool { return ys[i].Y < ys[j].Y })
	return &Cell{Key: key, XSorted: xs, YSorted: ys}
}

func samePointSet(t *testing.T, label string, got, want []geom.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", label, len(got), len(want))
	}
	key := func(p geom.Point) [3]float64 { return [3]float64{p.X, p.Y, float64(p.ID)} }
	cnt := map[[3]float64]int{}
	for _, p := range want {
		cnt[key(p)]++
	}
	for _, p := range got {
		cnt[key(p)]--
		if cnt[key(p)] < 0 {
			t.Fatalf("%s: unexpected point %+v", label, p)
		}
	}
}

func checkSorted(t *testing.T, label string, pts []geom.Point, get func(geom.Point) float64) {
	t.Helper()
	for i := 1; i < len(pts); i++ {
		if get(pts[i-1]) > get(pts[i]) {
			t.Fatalf("%s: out of order at %d", label, i)
		}
	}
}

func randPts(r *rng.RNG, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 10), Y: r.Range(0, 10), ID: int32(r.Intn(1 << 20))}
	}
	return pts
}

func TestWithUpdatesVsOracle(t *testing.T) {
	r := rng.New(11)
	key := Key{CX: 3, CY: -2}
	for trial := 0; trial < 300; trial++ {
		var c *Cell
		if r.Bool(0.8) {
			base := randPts(r, r.Intn(30))
			c = oracleCell(key, nil, base, nil)
		}
		ins := randPts(r, r.Intn(10))
		var drop func(geom.Point) bool
		if r.Bool(0.6) {
			cut := r.Range(0, 10)
			drop = func(p geom.Point) bool { return p.X < cut }
		}
		var beforeX, beforeY []geom.Point
		if c != nil {
			beforeX = append([]geom.Point(nil), c.XSorted...)
			beforeY = append([]geom.Point(nil), c.YSorted...)
		}
		got := WithUpdates(key, c, ins, drop)
		want := oracleCell(key, c, ins, drop)
		if (got == nil) != (want == nil) {
			t.Fatalf("trial %d: nil mismatch got=%v want=%v", trial, got == nil, want == nil)
		}
		if got == nil {
			continue
		}
		if got.Key != key {
			t.Fatalf("trial %d: key %v", trial, got.Key)
		}
		samePointSet(t, "XSorted", got.XSorted, want.XSorted)
		samePointSet(t, "YSorted", got.YSorted, want.YSorted)
		checkSorted(t, "XSorted", got.XSorted, func(p geom.Point) float64 { return p.X })
		checkSorted(t, "YSorted", got.YSorted, func(p geom.Point) float64 { return p.Y })
		if c != nil {
			samePointSet(t, "original XSorted mutated", c.XSorted, beforeX)
			samePointSet(t, "original YSorted mutated", c.YSorted, beforeY)
			checkSorted(t, "original XSorted", c.XSorted, func(p geom.Point) float64 { return p.X })
			checkSorted(t, "original YSorted", c.YSorted, func(p geom.Point) float64 { return p.Y })
		}
	}
}

func TestWithUpdatesEdgeCases(t *testing.T) {
	key := Key{CX: 0, CY: 0}
	if got := WithUpdates(key, nil, nil, nil); got != nil {
		t.Fatal("empty in, empty out: want nil")
	}
	// Insert into a nil cell.
	ins := []geom.Point{{X: 2, Y: 1, ID: 1}, {X: 1, Y: 2, ID: 2}}
	got := WithUpdates(key, nil, ins, nil)
	if got == nil || len(got.XSorted) != 2 {
		t.Fatalf("insert into nil cell: %+v", got)
	}
	if got.XSorted[0].ID != 2 || got.YSorted[0].ID != 1 {
		t.Fatalf("orders wrong: X head %+v, Y head %+v", got.XSorted[0], got.YSorted[0])
	}
	// Drop everything -> nil.
	if got := WithUpdates(key, got, nil, func(geom.Point) bool { return true }); got != nil {
		t.Fatal("drop-all should return nil")
	}
	// ins slice must not be retained or reordered in place visible to caller.
	insCopy := append([]geom.Point(nil), ins...)
	_ = WithUpdates(key, nil, ins, nil)
	for i := range ins {
		if ins[i] != insCopy[i] {
			t.Fatalf("ins mutated at %d", i)
		}
	}
}

// TestWithUpdatesCountsAgree pins that a rebuilt cell answers the
// four count queries identically to a bulk-built one.
func TestWithUpdatesCountsAgree(t *testing.T) {
	r := rng.New(12)
	key := Key{CX: 1, CY: 1}
	c := oracleCell(key, nil, randPts(r, 40), nil)
	ins := randPts(r, 15)
	drop := func(p geom.Point) bool { return p.ID%3 == 0 }
	got := WithUpdates(key, c, ins, drop)
	want := oracleCell(key, c, ins, drop)
	for i := 0; i < 50; i++ {
		q := r.Range(-1, 11)
		a, _ := got.CountXAtLeast(q)
		b, _ := want.CountXAtLeast(q)
		if a != b {
			t.Fatalf("CountXAtLeast(%v) = %d, oracle %d", q, a, b)
		}
		if a, b := got.CountXAtMost(q), want.CountXAtMost(q); a != b {
			t.Fatalf("CountXAtMost(%v) = %d, oracle %d", q, a, b)
		}
		a, _ = got.CountYAtLeast(q)
		b, _ = want.CountYAtLeast(q)
		if a != b {
			t.Fatalf("CountYAtLeast(%v) = %d, oracle %d", q, a, b)
		}
		if a, b := got.CountYAtMost(q), want.CountYAtMost(q); a != b {
			t.Fatalf("CountYAtMost(%v) = %d, oracle %d", q, a, b)
		}
	}
}
