package server

// Fuzzing the update decoder — both transports. DecodeUpdateBody
// consumes bytes straight off the network, and the JSON form goes
// through encoding/json into the same struct; /v1/update is a write
// path, so a crash here is worse than one on the read path. Three
// properties against arbitrary input: never panic, never accept more
// operations than the cap, and every accepted binary body must
// re-encode and re-decode to the same request (the encoding is
// canonical for what the decoder accepts).

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/geom"
)

// encodeUpdate builds a valid binary body for the seed corpus.
func encodeUpdate(t testing.TB, req UpdateRequest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeUpdateRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzDecodeUpdate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not an update at all"))
	f.Add([]byte(`{"dataset":"tiny","l":3,"insert_r":[{"X":1,"Y":2,"ID":7}],"delete_s":[9]}`))
	f.Add(encodeUpdate(f, UpdateRequest{Dataset: "d", L: 1}))
	f.Add(encodeUpdate(f, UpdateRequest{
		Dataset:   "tiny",
		L:         3.5,
		Algorithm: "bbst",
		Seed:      9,
		InsertR:   []geom.Point{{ID: 1, X: 2, Y: 3}, {ID: -4, X: -1e300, Y: 0.5}},
		InsertS:   []geom.Point{{ID: 2, X: 4, Y: 6}},
		DeleteR:   []int32{5, -6},
		DeleteS:   []int32{7},
	}))
	{
		valid := encodeUpdate(f, UpdateRequest{Dataset: "x", L: 2, DeleteR: []int32{1, 2, 3}})
		f.Add(valid[:len(valid)-1]) // missing end tag
		f.Add(valid[:7])            // truncated key
		bad := append([]byte{}, valid...)
		bad[4] = 99 // future version
		f.Add(bad)
		huge := append([]byte{}, valid[:len(valid)-1]...)
		huge = append(huge, updateTagInsertR, 0xFF, 0xFF, 0xFF, 0xFF) // oversized section
		f.Add(huge)
	}

	const maxOps = 1 << 12
	f.Fuzz(func(t *testing.T, data []byte) {
		// Binary transport: decode, and on success check the cap and
		// the re-encode round trip.
		req, err := DecodeUpdateBody(bytes.NewReader(data), maxOps)
		if err == nil {
			if n := req.Ops().Ops(); n > maxOps {
				t.Fatalf("decoder accepted %d ops past the %d cap", n, maxOps)
			}
			re := encodeUpdate(t, req)
			again, err := DecodeUpdateBody(bytes.NewReader(re), maxOps)
			if err != nil {
				t.Fatalf("re-encoded body failed to decode: %v", err)
			}
			if again.Dataset != req.Dataset || again.Algorithm != req.Algorithm ||
				again.Seed != req.Seed ||
				len(again.InsertR) != len(req.InsertR) || len(again.InsertS) != len(req.InsertS) ||
				len(again.DeleteR) != len(req.DeleteR) || len(again.DeleteS) != len(req.DeleteS) {
				t.Fatalf("round trip changed the request: %+v vs %+v", req, again)
			}
		}
		// JSON transport: the same bytes through the handler's other
		// decode path must never panic either.
		var jreq UpdateRequest
		_ = json.Unmarshal(data, &jreq)
		_ = jreq.Ops().Validate()
	})
}
