package server

// End-to-end tests of the mutation path: POST /v1/update over both
// request encodings, generation-aware sampling, and the registry
// invalidation a generation bump performs.

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/registry"
	"repro/internal/rng"
)

// newUpdatableStack is newTestStack with dynamic stores wired in, the
// way srj.NewServer assembles them: the store factory resolves the
// same in-memory datasets, and generation-tagged registry keys fetch
// the store's current view engine.
func newUpdatableStack(t *testing.T, maxT int) (*Client, *registry.Registry, *dynamic.Stores, *testEnv, func()) {
	t.Helper()
	r := rng.New(4)
	te := &testEnv{
		data: map[string][2][]geom.Point{
			"tiny": {randomPoints(r, 25, 12, 0), randomPoints(r, 25, 12, 10000)},
		},
		maxT: maxT,
	}
	var stores *dynamic.Stores
	stores = dynamic.NewStores(func(ctx context.Context, key registry.Key) (*dynamic.Store, error) {
		rs, ok := te.data[key.Dataset]
		if !ok {
			return nil, errors.Join(ErrBadKey, errors.New("unknown dataset "+key.Dataset))
		}
		return dynamic.NewStore(rs[0], rs[1], dynamic.Config{
			BuildBase: func(R, S []geom.Point) (core.Cloner, error) {
				return core.NewBBST(R, S, core.Config{HalfExtent: key.L, Seed: key.Seed})
			},
			HalfExtent: key.L,
			Seed:       key.Seed,
			MaxT:       maxT,
		})
	})
	reg := registry.New(func(ctx context.Context, key registry.Key) (*engine.Engine, error) {
		if key.Generation != 0 {
			st, ok := stores.Lookup(key)
			if !ok {
				return nil, errors.Join(ErrBadKey, errors.New("no store for "+key.String()))
			}
			gen, eng, err := st.ViewEngine()
			if err != nil {
				return nil, err
			}
			if gen != key.Generation {
				return nil, dynamic.ErrStaleGeneration
			}
			return eng, nil
		}
		return te.build(ctx, key)
	}, 0)
	srv, err := New(Config{Registry: reg, Stores: stores, MaxT: maxT, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	return NewClient(ts.URL, ts.Client()), reg, stores, te, ts.Close
}

// TestUpdateEndToEnd drives the full mutation lifecycle over the
// wire: generation probe, inserts and deletes through both request
// encodings, sampling that reflects every applied batch, and the
// stale-generation eviction in the registry.
func TestUpdateEndToEnd(t *testing.T) {
	for _, format := range []string{"binary", "json"} {
		t.Run(format, func(t *testing.T) {
			cl, reg, _, te, done := newUpdatableStack(t, 100_000)
			defer done()
			ctx := context.Background()
			const l = 3.0
			key := UpdateRequest{Dataset: "tiny", L: l, Algorithm: "bbst", Seed: 5, Format: format}
			sreq := SampleRequest{Dataset: "tiny", L: l, Algorithm: "bbst", Seed: 5, T: 2000}

			// A draw before any update: the static path, generation 0.
			if _, err := cl.Sample(ctx, sreq); err != nil {
				t.Fatal(err)
			}
			ents := reg.Entries()
			if len(ents) != 1 || ents[0].Key.Generation != 0 {
				t.Fatalf("pre-update entries: %+v", ents)
			}

			// An empty update is a generation probe that also creates
			// the store.
			probe := key
			resp, err := cl.ApplyUpdate(ctx, probe)
			if err != nil || resp.Generation != 0 {
				t.Fatalf("probe: %+v, %v", resp, err)
			}

			// Insert a far-away cluster joined only with itself, and
			// delete one existing R point.
			rs := te.data["tiny"]
			victim := rs[0][0].ID
			up := key
			up.InsertR = []geom.Point{{ID: 777, X: 1000, Y: 1000}}
			up.InsertS = []geom.Point{{ID: 888, X: 1001, Y: 1001}}
			up.DeleteR = []int32{victim}
			resp, err = cl.ApplyUpdate(ctx, up)
			if err != nil || resp.Generation != 1 {
				t.Fatalf("update: %+v, %v", resp, err)
			}
			if resp.Ops != 3 {
				t.Fatalf("ops echoed %d, want 3", resp.Ops)
			}

			// Sampling now reflects the update: the deleted R point
			// never appears, the inserted pair does.
			pairs, err := cl.Sample(ctx, SampleRequest{Dataset: "tiny", L: l, Algorithm: "bbst", Seed: 5, T: 30_000})
			if err != nil {
				t.Fatal(err)
			}
			sawInserted := false
			for _, p := range pairs {
				if p.R.ID == victim {
					t.Fatalf("deleted point %d sampled after its delete", victim)
				}
				if p.R.ID == 777 && p.S.ID == 888 {
					sawInserted = true
				}
			}
			if !sawInserted {
				t.Fatal("inserted pair (777,888) never sampled")
			}

			// The registry now caches the generation-1 view; the
			// stale generation-0 entry was evicted by the update.
			for _, e := range reg.Entries() {
				if e.Key.Dataset == "tiny" && e.Key.Generation == 0 {
					t.Fatalf("stale generation-0 engine still resident: %+v", e.Key)
				}
			}

			// Deleting the inserted S point empties that cluster again.
			del := key
			del.DeleteS = []int32{888}
			resp, err = cl.ApplyUpdate(ctx, del)
			if err != nil || resp.Generation != 2 {
				t.Fatalf("delete update: %+v, %v", resp, err)
			}
			pairs, err = cl.Sample(ctx, SampleRequest{Dataset: "tiny", L: l, Algorithm: "bbst", Seed: 5, T: 20_000})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pairs {
				if p.S.ID == 888 || p.R.ID == 777 {
					t.Fatalf("pair %v touches deleted/unjoined inserts", p)
				}
			}

			// The in-place write path is observable: /v1/stats reports
			// the absorbed ops with zero rebuilds (update 1 carried 3
			// ops, update 2 carried 1), and /metrics exports the fleet
			// counter next to srj_store_rebuilds_total.
			stats, err := cl.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(stats.Stores) != 1 {
				t.Fatalf("stores in stats: %+v", stats.Stores)
			}
			info := stats.Stores[0]
			if info.InPlaceOps != 4 || !info.InPlace || info.Rebuilds != 0 {
				t.Fatalf("in-place counters not surfaced: %+v", info)
			}
			mres, err := cl.hc.Get(cl.base + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(mres.Body); err != nil {
				t.Fatal(err)
			}
			mres.Body.Close()
			if !strings.Contains(buf.String(), "srj_store_inplace_ops_total 4") {
				t.Fatalf("srj_store_inplace_ops_total missing from /metrics:\n%s", buf.String())
			}

			// DELETE /v1/engines drops every generation of the key.
			evicted, err := cl.EvictEngine(ctx, registry.Key{Dataset: "tiny", L: l, Algorithm: "bbst", Seed: 5})
			if err != nil || !evicted {
				t.Fatalf("evict: %v, %v", evicted, err)
			}
			for _, e := range reg.Entries() {
				if e.Key.Dataset == "tiny" {
					t.Fatalf("engine still resident after evict-all: %+v", e.Key)
				}
			}
		})
	}
}

// TestUpdateValidation: malformed updates answer 400 with the shared
// machine-readable codes, on both encodings; a server without stores
// answers 501.
func TestUpdateValidation(t *testing.T) {
	cl, _, _, _, done := newUpdatableStack(t, 1000)
	defer done()
	ctx := context.Background()

	// Unknown dataset → bad key.
	_, err := cl.ApplyUpdate(ctx, UpdateRequest{Dataset: "nope", L: 3, InsertR: []geom.Point{{ID: 1}}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Code != CodeBadKey {
		t.Fatalf("unknown dataset: %v", err)
	}

	// NaN insert → bad request, mapped back to the sentinel.
	_, err = cl.ApplyUpdate(ctx, UpdateRequest{
		Dataset: "tiny", L: 3,
		InsertR: []geom.Point{{ID: 1, X: math.NaN()}},
	})
	if !errors.Is(err, engine.ErrBadRequest) {
		t.Fatalf("NaN insert: %v, want ErrBadRequest", err)
	}

	// Missing dataset.
	_, err = cl.ApplyUpdate(ctx, UpdateRequest{L: 3, DeleteR: []int32{1}})
	if !errors.As(err, &apiErr) || apiErr.Code != CodeBadKey {
		t.Fatalf("missing dataset: %v", err)
	}

	// A stack without stores refuses updates outright.
	reg := registry.New(func(ctx context.Context, key registry.Key) (*engine.Engine, error) {
		return nil, ErrBadKey
	}, 0)
	srv, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	static := NewClient(ts.URL, ts.Client())
	_, err = static.ApplyUpdate(ctx, UpdateRequest{Dataset: "tiny", L: 3, DeleteR: []int32{1}})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotImplemented {
		t.Fatalf("updates on a static server: %v", err)
	}
}

// TestUpdateWireRoundTrip: the framed binary encoding round-trips
// every section kind, splits oversized sections, and rejects the
// malformed cases the fuzzer seeds.
func TestUpdateWireRoundTrip(t *testing.T) {
	req := UpdateRequest{
		Dataset:   "taxi",
		L:         42.5,
		Algorithm: "bbst",
		Seed:      7,
		DeleteR:   []int32{1, -2, 3},
		DeleteS:   []int32{9},
	}
	for i := 0; i < MaxUpdateSectionOps+10; i++ {
		req.InsertR = append(req.InsertR, geom.Point{ID: int32(i), X: float64(i), Y: -float64(i)})
	}
	req.InsertS = []geom.Point{{ID: 5, X: 1.25, Y: -2.5}}

	var buf bytes.Buffer
	if err := EncodeUpdateRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdateBody(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset != req.Dataset || got.Algorithm != req.Algorithm || got.L != req.L || got.Seed != req.Seed {
		t.Fatalf("key mismatch: %+v", got)
	}
	if len(got.InsertR) != len(req.InsertR) || len(got.InsertS) != 1 ||
		len(got.DeleteR) != 3 || len(got.DeleteS) != 1 {
		t.Fatalf("op counts: %d %d %d %d", len(got.InsertR), len(got.InsertS), len(got.DeleteR), len(got.DeleteS))
	}
	for i, p := range got.InsertR {
		if p != req.InsertR[i] {
			t.Fatalf("insert_r[%d] = %v, want %v", i, p, req.InsertR[i])
		}
	}
	if got.DeleteR[1] != -2 {
		t.Fatalf("negative ID mangled: %d", got.DeleteR[1])
	}

	// Truncations at every prefix must error, never panic or succeed.
	raw := buf.Bytes()
	for cut := 0; cut < len(raw)-1; cut += 777 {
		if _, err := DecodeUpdateBody(bytes.NewReader(raw[:cut]), 0); err == nil {
			t.Fatalf("truncated body (%d bytes) decoded cleanly", cut)
		}
	}

	// The op cap refuses before allocating the whole batch.
	if _, err := DecodeUpdateBody(bytes.NewReader(raw), 10); err == nil ||
		!strings.Contains(err.Error(), "operations") {
		t.Fatalf("op cap: %v", err)
	}

	// Bad magic.
	bad := append([]byte{}, raw...)
	bad[0] ^= 0xFF
	if _, err := DecodeUpdateBody(bytes.NewReader(bad), 0); err == nil {
		t.Fatal("bad magic decoded cleanly")
	}
}
