package server

// End-to-end tests of the serving stack: a real HTTP listener
// (httptest), the registry behind it, and the Client in front —
// sample uniformity over the wire, cache-hit behavior, eviction under
// a memory budget, and the request limits.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/testutil"
)

// testEnv is the dataset resolution and engine construction srjserver
// performs, reduced to named in-memory point sets plus a build
// counter the cache tests assert on.
type testEnv struct {
	data   map[string][2][]geom.Point
	maxT   int
	builds atomic.Int64
}

func (te *testEnv) build(ctx context.Context, key registry.Key) (*engine.Engine, error) {
	rs, ok := te.data[key.Dataset]
	if !ok {
		return nil, fmt.Errorf("%w: unknown dataset %q", ErrBadKey, key.Dataset)
	}
	if key.L <= 0 || math.IsNaN(key.L) || math.IsInf(key.L, 0) {
		return nil, fmt.Errorf("%w: bad half-extent %g", ErrBadKey, key.L)
	}
	cfg := core.Config{HalfExtent: key.L, Seed: key.Seed}
	var (
		s   core.Cloner
		err error
	)
	switch key.Algorithm {
	case "bbst":
		s, err = core.NewBBST(rs[0], rs[1], cfg)
	case "kds":
		s, err = core.NewKDS(rs[0], rs[1], cfg)
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q", ErrBadKey, key.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	te.builds.Add(1)
	eng, err := engine.New(s, key.Seed)
	if err != nil {
		return nil, err
	}
	eng.SetMaxT(te.maxT)
	return eng, nil
}

func randomPoints(r *rng.RNG, n int, extent float64, base int32) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			ID: base + int32(i),
			X:  r.Range(0, extent),
			Y:  r.Range(0, extent),
		}
	}
	return pts
}

// newTestStack brings up the full stack: datasets, registry (with the
// given budget), server on an httptest listener, and a client against
// it. "tiny" is a small instance whose exact join the uniformity test
// enumerates; "other" is a distinct dataset for eviction tests.
func newTestStack(t *testing.T, budget int64, maxT int) (*Client, *registry.Registry, *testEnv, func()) {
	t.Helper()
	r := rng.New(2)
	te := &testEnv{
		data: map[string][2][]geom.Point{
			"tiny":  {randomPoints(r, 25, 12, 0), randomPoints(r, 25, 12, 10000)},
			"other": {randomPoints(r, 300, 50, 0), randomPoints(r, 300, 50, 10000)},
		},
		maxT: maxT,
	}
	reg := registry.New(te.build, budget)
	srv, err := New(Config{Registry: reg, MaxT: maxT, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	return NewClient(ts.URL, ts.Client()), reg, te, ts.Close
}

// TestServerEndToEnd is the acceptance test of the serving stack:
// build an engine through the registry via the client, draw samples
// over the wire, and assert (a) the sampled distribution over the
// exactly-enumerated join is uniform, (b) a second request for the
// same key is a registry cache hit with no rebuild, and (c) eviction
// triggers once the memory budget is exceeded.
func TestServerEndToEnd(t *testing.T) {
	cl, reg, te, done := newTestStack(t, 0, 200_000)
	defer done()
	ctx := context.Background()

	rs := te.data["tiny"]
	const l = 3.0
	joined := join.Materialize(rs[0], rs[1], l)
	if len(joined) < 20 || len(joined) > 400 {
		t.Fatalf("test setup: |J| = %d not in a good range", len(joined))
	}
	jset := map[[2]int32]bool{}
	for _, p := range joined {
		jset[[2]int32{p.R.ID, p.S.ID}] = true
	}

	// (a) Uniformity of samples drawn over the wire, streamed in
	// chunks through the binary transport.
	const draws = 120_000
	req := SampleRequest{Dataset: "tiny", L: l, Algorithm: "bbst", Seed: 99, T: draws}
	counts := map[[2]int32]int{}
	err := cl.SampleFunc(ctx, req, func(batch []geom.Pair) error {
		for _, p := range batch {
			k := [2]int32{p.R.ID, p.S.ID}
			if !jset[k] {
				return fmt.Errorf("sampled pair %v not in J", p)
			}
			counts[k]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	expected := float64(draws) / float64(len(joined))
	chi2 := 0.0
	for k := range jset {
		d := float64(counts[k]) - expected
		chi2 += d * d / expected
	}
	dof := float64(len(joined) - 1)
	// Same p≈0.001 bound the in-process uniformity tests use.
	limit := dof + 4*math.Sqrt(2*dof) + 10
	if chi2 > limit {
		t.Fatalf("wire distribution skewed: chi2 = %.1f > %.1f (dof %g)", chi2, limit, dof)
	}

	// (b) The same key again: a cache hit, no rebuild.
	buildsBefore := te.builds.Load()
	if _, err := cl.Sample(ctx, req); err != nil {
		t.Fatal(err)
	}
	if te.builds.Load() != buildsBefore {
		t.Fatal("second request for the same key rebuilt the engine")
	}
	st := reg.Stats()
	if st.Hits < 1 || st.Builds != uint64(buildsBefore) {
		t.Fatalf("registry stats after repeat request: %+v", st)
	}

	// (c) Eviction under a budget sized for one engine.
	entries := reg.Entries()
	if len(entries) != 1 {
		t.Fatalf("expected 1 resident engine, have %d", len(entries))
	}
	budget := entries[0].SizeBytes * 3 / 2
	cl2, reg2, _, done2 := newTestStack(t, budget, 200_000)
	defer done2()
	if _, err := cl2.Sample(ctx, SampleRequest{Dataset: "tiny", L: l, Seed: 1, T: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Sample(ctx, SampleRequest{Dataset: "tiny", L: l, Seed: 2, T: 100}); err != nil {
		t.Fatal(err)
	}
	st2 := reg2.Stats()
	if st2.Evictions < 1 {
		t.Fatalf("no eviction under budget %d: %+v", budget, st2)
	}
	if st2.Bytes > budget {
		t.Fatalf("resident bytes %d exceed budget %d", st2.Bytes, budget)
	}
}

// TestServerTransportsAgree: the JSON and binary transports serve the
// same kind of valid samples.
func TestServerTransportsAgree(t *testing.T) {
	cl, _, _, done := newTestStack(t, 0, 10_000)
	defer done()
	ctx := context.Background()
	const l = 3.0
	req := SampleRequest{Dataset: "tiny", L: l, Seed: 5, T: 500}

	bin, err := cl.Sample(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	jsn, err := cl.SampleJSON(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) != 500 || len(jsn) != 500 {
		t.Fatalf("got %d binary, %d json pairs", len(bin), len(jsn))
	}
	for _, pairs := range [][]geom.Pair{bin, jsn} {
		for _, p := range pairs {
			if !geom.InWindow(p.R, p.S, l) {
				t.Fatalf("invalid pair %v", p)
			}
		}
	}
}

// TestServerLimits: malformed and over-limit requests are rejected
// with client-error statuses, never served.
func TestServerLimits(t *testing.T) {
	cl, _, te, done := newTestStack(t, 0, 1000)
	defer done()
	ctx := context.Background()

	cases := []struct {
		name   string
		req    SampleRequest
		status int
	}{
		{"over max t", SampleRequest{Dataset: "tiny", L: 3, T: 1001}, 400},
		{"zero t", SampleRequest{Dataset: "tiny", L: 3, T: 0}, 400},
		{"negative t", SampleRequest{Dataset: "tiny", L: 3, T: -5}, 400},
		{"missing dataset", SampleRequest{L: 3, T: 10}, 400},
		{"unknown dataset", SampleRequest{Dataset: "nope", L: 3, T: 10}, 400},
		{"unknown algorithm", SampleRequest{Dataset: "tiny", L: 3, Algorithm: "nope", T: 10}, 400},
		{"bad l", SampleRequest{Dataset: "tiny", L: -1, T: 10}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cl.SampleJSON(ctx, tc.req)
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("err = %v, want *APIError", err)
			}
			if apiErr.Status != tc.status {
				t.Fatalf("status = %d, want %d (%s)", apiErr.Status, tc.status, apiErr.Message)
			}
		})
	}
	// The client always sets a valid format, so exercise the unknown-
	// format and malformed-body rejections with raw requests.
	for _, body := range []string{
		`{"dataset":"tiny","l":3,"t":10,"format":"xml"}`,
		`{"dataset": truncated`,
	} {
		resp, err := http.Post(cl.base+"/v1/sample", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("raw body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if got := te.builds.Load(); got != 0 {
		t.Fatalf("rejected requests built %d engines", got)
	}

	// A provably empty join is a well-formed key that cannot serve.
	_, err := cl.SampleJSON(ctx, SampleRequest{Dataset: "tiny", L: 0.000001, T: 10})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Fatalf("empty join: err = %v, want 422", err)
	}
}

// TestServerJSONTransportCap: the buffering JSON transport has its
// own, lower cap; the same t streams fine over binary.
func TestServerJSONTransportCap(t *testing.T) {
	r := rng.New(2)
	te := &testEnv{
		data: map[string][2][]geom.Point{
			"tiny": {randomPoints(r, 25, 12, 0), randomPoints(r, 25, 12, 10000)},
		},
		maxT: 5000,
	}
	reg := registry.New(te.build, 0)
	srv, err := New(Config{Registry: reg, MaxT: 5000, MaxTJSON: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	req := SampleRequest{Dataset: "tiny", L: 3, Seed: 1, T: 2000}
	var apiErr *APIError
	if _, err := cl.SampleJSON(ctx, req); !errors.As(err, &apiErr) ||
		apiErr.Status != 400 || !strings.Contains(apiErr.Message, "binary") {
		t.Fatalf("over-JSON-cap err = %v, want 400 suggesting binary", err)
	}
	if pairs, err := cl.Sample(ctx, req); err != nil || len(pairs) != 2000 {
		t.Fatalf("binary at same t: %d pairs, %v", len(pairs), err)
	}
	if pairs, err := cl.SampleJSON(ctx, SampleRequest{Dataset: "tiny", L: 3, Seed: 1, T: 1000}); err != nil || len(pairs) != 1000 {
		t.Fatalf("JSON at cap: %d pairs, %v", len(pairs), err)
	}
}

// TestServerEvictEndpoint: DELETE /v1/engines drops a resident
// engine so load tools can clean up after themselves.
func TestServerEvictEndpoint(t *testing.T) {
	cl, reg, _, done := newTestStack(t, 0, 10_000)
	defer done()
	ctx := context.Background()
	req := SampleRequest{Dataset: "tiny", L: 3, Seed: 9, T: 100}
	if _, err := cl.Sample(ctx, req); err != nil {
		t.Fatal(err)
	}
	if st := reg.Stats(); st.Entries != 1 {
		t.Fatalf("setup: %+v", st)
	}
	ok, err := cl.EvictEngine(ctx, req.Key())
	if err != nil || !ok {
		t.Fatalf("evict: %v, %v", ok, err)
	}
	// A manual evict must not read as budget pressure.
	if st := reg.Stats(); st.Entries != 0 || st.ManualEvictions != 1 || st.Evictions != 0 {
		t.Fatalf("after evict: %+v", st)
	}
	// Idempotent: a second evict reports nothing resident.
	ok, err = cl.EvictEngine(ctx, req.Key())
	if err != nil || ok {
		t.Fatalf("double evict: %v, %v", ok, err)
	}
	// Malformed evicts are refused.
	ok, err = cl.EvictEngine(ctx, registry.Key{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 || ok {
		t.Fatalf("empty-key evict: %v, %v", ok, err)
	}
}

// TestServerFormatPrecedence: an explicit body format beats the
// Accept header; Accept only fills in when the field is empty.
func TestServerFormatPrecedence(t *testing.T) {
	cl, _, _, done := newTestStack(t, 0, 10_000)
	defer done()
	cases := []struct {
		name, body, accept, wantCT string
	}{
		{"explicit json beats binary accept",
			`{"dataset":"tiny","l":3,"t":5,"format":"json"}`, ContentTypeBinary, "application/json"},
		{"empty format follows accept",
			`{"dataset":"tiny","l":3,"t":5}`, ContentTypeBinary, ContentTypeBinary},
		{"empty format defaults to json",
			`{"dataset":"tiny","l":3,"t":5}`, "", "application/json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hr, err := http.NewRequest(http.MethodPost, cl.base+"/v1/sample", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			hr.Header.Set("Content-Type", "application/json")
			if tc.accept != "" {
				hr.Header.Set("Accept", tc.accept)
			}
			resp, err := http.DefaultClient.Do(hr)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != tc.wantCT {
				t.Fatalf("Content-Type = %q, want %q", ct, tc.wantCT)
			}
		})
	}
}

// TestServerConcurrentClients hammers one key from many goroutines
// through real HTTP; run with -race. The registry must build once.
func TestServerConcurrentClients(t *testing.T) {
	cl, reg, te, done := newTestStack(t, 0, 10_000)
	defer done()
	const clients = 12
	const requests = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for req := 0; req < requests; req++ {
				pairs, err := cl.Sample(context.Background(),
					SampleRequest{Dataset: "other", L: 5, Seed: 3, T: 500})
				if err != nil {
					errs[i] = err
					return
				}
				if len(pairs) != 500 {
					errs[i] = fmt.Errorf("got %d pairs", len(pairs))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := te.builds.Load(); got != 1 {
		t.Fatalf("herd built %d engines, want 1", got)
	}
	if st := reg.Stats(); st.Hits+st.Misses != clients*requests {
		t.Fatalf("request accounting off: %+v", st)
	}
}

// TestServerStatsEndpoints: /v1/stats, /v1/engines, /healthz.
func TestServerStatsEndpoints(t *testing.T) {
	cl, _, _, done := newTestStack(t, 0, 10_000)
	defer done()
	ctx := context.Background()
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Sample(ctx, SampleRequest{Dataset: "tiny", L: 3, Seed: 1, T: 200}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxT != 10_000 || st.Registry.Builds != 1 || len(st.Engines) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Engines[0].Engine.Samples != 200 {
		t.Fatalf("engine counters not surfaced: %+v", st.Engines[0])
	}
	engines, err := cl.Engines(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(engines) != 1 || engines[0].Key.Dataset != "tiny" {
		t.Fatalf("engines = %+v", engines)
	}
}

// TestServerDrawSeed: a nonzero draw_seed pins the request's stream —
// equal (key, draw_seed) requests return identical samples whatever
// traffic is interleaved — on both transports, and the two transports
// agree with each other.
func TestServerDrawSeed(t *testing.T) {
	cl, _, _, done := newTestStack(t, 0, 10_000)
	defer done()
	ctx := context.Background()
	seeded := SampleRequest{Dataset: "tiny", L: 3, Seed: 1, DrawSeed: 1234, T: 600}
	unseeded := SampleRequest{Dataset: "tiny", L: 3, Seed: 1, T: 600}

	a, err := cl.Sample(ctx, seeded)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Sample(ctx, unseeded); err != nil { // interleaved traffic
		t.Fatal(err)
	}
	b, err := cl.Sample(ctx, seeded)
	if err != nil {
		t.Fatal(err)
	}
	jsn, err := cl.SampleJSON(ctx, seeded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("equal draw seeds diverged at sample %d", i)
		}
		if a[i] != jsn[i] {
			t.Fatalf("transports disagree at sample %d: %v vs %v", i, a[i], jsn[i])
		}
	}
	// Unseeded requests must not replay each other.
	c, err := cl.Sample(ctx, unseeded)
	if err != nil {
		t.Fatal(err)
	}
	d, err := cl.Sample(ctx, unseeded)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range c {
		if c[i] == d[i] {
			same++
		}
	}
	if same > len(c)/2 {
		t.Fatalf("unseeded requests repeated %d/%d samples", same, len(c))
	}
}

// TestServerErrorCodes: non-2xx answers carry a machine-readable
// code, and the client unwraps it onto the canonical sentinel — the
// same errors.Is checks as against a local engine. Non-positive t is
// a 400 on every transport.
func TestServerErrorCodes(t *testing.T) {
	cl, _, _, done := newTestStack(t, 0, 1000)
	defer done()
	ctx := context.Background()

	cases := []struct {
		name     string
		req      SampleRequest
		code     string
		sentinel error
	}{
		{"zero t", SampleRequest{Dataset: "tiny", L: 3, T: 0}, CodeBadRequest, engine.ErrBadRequest},
		{"negative t", SampleRequest{Dataset: "tiny", L: 3, T: -5}, CodeBadRequest, engine.ErrBadRequest},
		{"over cap", SampleRequest{Dataset: "tiny", L: 3, T: 1001}, CodeSampleCap, engine.ErrSampleCap},
		{"unknown dataset", SampleRequest{Dataset: "nope", L: 3, T: 10}, CodeBadKey, ErrBadKey},
		{"empty join", SampleRequest{Dataset: "tiny", L: 0.000001, T: 10}, CodeEmptyJoin, core.ErrEmptyJoin},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cl.SampleJSON(ctx, tc.req)
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("err = %v, want *APIError", err)
			}
			if apiErr.Code != tc.code {
				t.Fatalf("code = %q, want %q (%s)", apiErr.Code, tc.code, apiErr.Message)
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
		})
	}

	// The binary transport answers non-positive t with the same 400
	// before any stream starts.
	for _, body := range []string{
		`{"dataset":"tiny","l":3,"t":0,"format":"binary"}`,
		`{"dataset":"tiny","l":3,"t":-7,"format":"binary"}`,
	} {
		resp, err := http.Post(cl.base+"/v1/sample", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 400 {
			t.Fatalf("binary body %q: status %d, want 400", body, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("binary body %q: error Content-Type %q", body, ct)
		}
		resp.Body.Close()
	}
}

// TestClientRejectsOverDelivery: a misbehaving server streaming more
// samples than requested is cut off at the first excess frame — the
// client's accumulators must not grow past req.T.
func TestClientRejectsOverDelivery(t *testing.T) {
	rogue := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentTypeBinary)
		WriteStreamHeader(w)
		batch := make([]geom.Pair, 1000)
		var scratch []byte
		for i := 0; i < 50; i++ { // 50k pairs, whatever was asked
			scratch, _ = WriteStreamFrame(w, batch, scratch)
		}
		WriteStreamEnd(w)
	}))
	defer rogue.Close()
	cl := NewClient(rogue.URL, rogue.Client())

	received := 0
	err := cl.SampleFunc(context.Background(), SampleRequest{Dataset: "d", L: 1, T: 2500},
		func(batch []geom.Pair) error {
			received += len(batch)
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), "more than") {
		t.Fatalf("err = %v, want over-delivery error", err)
	}
	if received > 2500 {
		t.Fatalf("fn received %d samples, beyond the %d requested", received, 2500)
	}
	pairs, err := cl.Sample(context.Background(), SampleRequest{Dataset: "d", L: 1, T: 2500})
	if err == nil {
		t.Fatal("Sample accepted an over-delivering stream")
	}
	if len(pairs) > 2500 {
		t.Fatalf("Sample accumulated %d samples, beyond the %d requested", len(pairs), 2500)
	}
}

// TestServerMidStreamErrorParity: an error after the binary stream
// has started (the 200 is on the wire) still reaches the client with
// its code, so errors.Is against the canonical sentinel works for
// mid-stream failures exactly as for pre-stream HTTP errors. The
// forced failure is the server's own deadline expiring mid-draw.
func TestServerMidStreamErrorParity(t *testing.T) {
	r := rng.New(2)
	te := &testEnv{
		data: map[string][2][]geom.Point{
			"other": {randomPoints(r, 300, 50, 0), randomPoints(r, 300, 50, 10000)},
		},
		maxT: 100_000_000,
	}
	reg := registry.New(te.build, 0)
	srv, err := New(Config{Registry: reg, MaxT: 100_000_000, Timeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL, ts.Client())

	// Warm the engine so the deadline budget is spent sampling, then
	// ask for far more samples than 80ms can draw. The client has no
	// deadline of its own, so whatever arrives is the server's error.
	if _, err := cl.Sample(context.Background(), SampleRequest{Dataset: "other", L: 5, Seed: 3, T: 10}); err != nil {
		t.Fatal(err)
	}
	err = cl.SampleFunc(context.Background(),
		SampleRequest{Dataset: "other", L: 5, Seed: 3, T: 100_000_000},
		func([]geom.Pair) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(err, context.DeadlineExceeded)", err)
	}
}

// TestServerHandlerCancellation: a client canceling mid-stream stops
// the handler's draw loop promptly and leaks no goroutines — neither
// in the handler nor in the engine underneath.
func TestServerHandlerCancellation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cl, reg, _, done := newTestStack(t, 0, 500_000)
	defer done()

	// Warm the key so the timed part is sampling, not the build.
	warmCtx := context.Background()
	if _, err := cl.Sample(warmCtx, SampleRequest{Dataset: "other", L: 5, Seed: 3, T: 10}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	received := 0
	err := cl.SampleFunc(ctx, SampleRequest{Dataset: "other", L: 5, Seed: 3, T: 400_000},
		func(batch []geom.Pair) error {
			received += len(batch)
			cancel()
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if received >= 400_000 {
		t.Fatalf("canceled stream delivered all %d samples", received)
	}

	// The server records the aborted request against the engine; wait
	// for the handler to finish its accounting (it may still be
	// unwinding when the client returns).
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries := reg.Entries()
		if len(entries) == 1 && entries[0].Engine.Requests >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never recorded the canceled request: %+v", entries)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWireRoundTrip unit-tests the framed binary encoding, including
// the error frame and truncation detection.
func TestWireRoundTrip(t *testing.T) {
	r := rng.New(7)
	pairs := make([]geom.Pair, 10_000)
	for i := range pairs {
		pairs[i] = geom.Pair{
			R: geom.Point{ID: int32(i), X: r.Range(-1e6, 1e6), Y: r.Range(-1e6, 1e6)},
			S: geom.Point{ID: int32(-i), X: r.Range(-1e6, 1e6), Y: r.Range(-1e6, 1e6)},
		}
	}
	var buf bytes.Buffer
	if err := WriteStreamHeader(&buf); err != nil {
		t.Fatal(err)
	}
	var scratch []byte
	var err error
	for off := 0; off < len(pairs); off += 4096 {
		end := off + 4096
		if end > len(pairs) {
			end = len(pairs)
		}
		if scratch, err = WriteStreamFrame(&buf, pairs[off:end], scratch); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteStreamEnd(&buf); err != nil {
		t.Fatal(err)
	}

	var got []geom.Pair
	n, err := readWireStream(bytes.NewReader(buf.Bytes()), func(batch []geom.Pair) error {
		got = append(got, batch...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(pairs) || len(got) != len(pairs) {
		t.Fatalf("round-tripped %d of %d pairs", n, len(pairs))
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("pair %d: %v != %v", i, got[i], pairs[i])
		}
	}

	// A batch larger than the reader's per-frame bound is split by
	// the writer into acceptable frames, never rejected.
	big := make([]geom.Pair, MaxFramePairs+5)
	for i := range big {
		big[i] = geom.Pair{R: geom.Point{ID: int32(i)}, S: geom.Point{ID: int32(i + 1)}}
	}
	var bbuf bytes.Buffer
	WriteStreamHeader(&bbuf)
	if _, err := WriteStreamFrame(&bbuf, big, nil); err != nil {
		t.Fatal(err)
	}
	WriteStreamEnd(&bbuf)
	n, err = readWireStream(bytes.NewReader(bbuf.Bytes()), nil)
	if err != nil || n != len(big) {
		t.Fatalf("oversized batch: %d pairs, %v", n, err)
	}

	// An error frame surfaces as a *StreamError carrying the message
	// and the machine-readable code, which unwraps onto the canonical
	// sentinel — mid-stream errors keep errors.Is parity with local
	// engines.
	var ebuf bytes.Buffer
	WriteStreamHeader(&ebuf)
	if _, err := WriteStreamFrame(&ebuf, pairs[:3], nil); err != nil {
		t.Fatal(err)
	}
	WriteStreamError(&ebuf, CodeLowAcceptance, "sampler gave up")
	n, err = readWireStream(bytes.NewReader(ebuf.Bytes()), nil)
	if n != 3 || err == nil || !strings.Contains(err.Error(), "sampler gave up") {
		t.Fatalf("error frame: n=%d err=%v", n, err)
	}
	var serr *StreamError
	if !errors.As(err, &serr) || serr.Code != CodeLowAcceptance {
		t.Fatalf("error frame: %v is not a StreamError with code %q", err, CodeLowAcceptance)
	}
	if !errors.Is(err, core.ErrLowAcceptance) {
		t.Fatalf("errors.Is(%v, core.ErrLowAcceptance) = false", err)
	}

	// Truncation (no end frame) is detected, not silently accepted.
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := readWireStream(bytes.NewReader(trunc), nil); err == nil {
		t.Fatal("truncated stream accepted")
	}

	// Garbage is rejected at the header.
	if _, err := readWireStream(strings.NewReader("not a stream at all"), nil); err == nil {
		t.Fatal("bad magic accepted")
	}
}
