package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/registry"
)

// TestSentinelRoundTrip pins the whole wire-error contract in one
// table: for every canonical sentinel, the code CodeFor assigns, the
// HTTP status StatusFor assigns, and — for the canonical (first)
// sentinel of each code — that errors.Is sees the sentinel through
// *APIError (pre-stream HTTP errors) and *StreamError (mid-stream
// error frames) exactly as it would against a local engine. The
// srjlint sentinelwire analyzer checks that every sentinel reaches
// these tables; this test checks that the mappings mean what they say.
func TestSentinelRoundTrip(t *testing.T) {
	cases := []struct {
		name      string
		sentinel  error
		code      string
		status    int
		canonical bool // first row of its code: Unwrap round-trips to it
	}{
		{"sample_cap", engine.ErrSampleCap, CodeSampleCap, http.StatusBadRequest, true},
		{"bad_request", engine.ErrBadRequest, CodeBadRequest, http.StatusBadRequest, true},
		{"no_parallel", core.ErrNoParallelWithoutReplacement, CodeBadRequest, http.StatusBadRequest, false},
		{"bad_key", ErrBadKey, CodeBadKey, http.StatusBadRequest, true},
		{"invalid_key", registry.ErrInvalidKey, CodeBadKey, http.StatusBadRequest, false},
		{"empty_join", core.ErrEmptyJoin, CodeEmptyJoin, http.StatusUnprocessableEntity, true},
		{"low_acceptance", core.ErrLowAcceptance, CodeLowAcceptance, http.StatusInternalServerError, true},
		{"stale_generation", dynamic.ErrStaleGeneration, CodeStaleGeneration, http.StatusConflict, true},
		{"update_sequence", dynamic.ErrUpdateSequence, CodeUpdateSequence, http.StatusConflict, true},
		{"timeout", context.DeadlineExceeded, CodeTimeout, http.StatusGatewayTimeout, true},
		{"canceled", context.Canceled, CodeCanceled, 499, true},
	}

	// One table row per codeSentinels row: adding a sentinel to the
	// wire tables without extending this test is itself a failure.
	if len(cases) != len(codeSentinels) {
		t.Fatalf("test covers %d sentinels, codeSentinels has %d rows; extend the table", len(cases), len(codeSentinels))
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CodeFor(tc.sentinel); got != tc.code {
				t.Errorf("CodeFor = %q, want %q", got, tc.code)
			}
			if got := StatusFor(tc.sentinel); got != tc.status {
				t.Errorf("StatusFor = %d, want %d", got, tc.status)
			}
			// Wrapping must not change the classification: handlers
			// annotate with %w on the way out.
			wrapped := fmt.Errorf("handling request: %w", tc.sentinel)
			if got := CodeFor(wrapped); got != tc.code {
				t.Errorf("CodeFor(wrapped) = %q, want %q", got, tc.code)
			}
			if got := StatusFor(wrapped); got != tc.status {
				t.Errorf("StatusFor(wrapped) = %d, want %d", got, tc.status)
			}

			// The decode direction: what a remote client reconstructs
			// from the code alone.
			canonical := sentinelFor(tc.code)
			if canonical == nil {
				t.Fatalf("sentinelFor(%q) = nil; the code decodes to nothing", tc.code)
			}
			apiErr := error(&APIError{Status: tc.status, Code: tc.code, Message: "x"})
			streamErr := error(&StreamError{Code: tc.code, Message: "x"})
			if tc.canonical {
				if !errors.Is(apiErr, tc.sentinel) {
					t.Errorf("errors.Is(APIError{%s}, %v) = false; remote callers cannot match the sentinel", tc.code, tc.sentinel)
				}
				if !errors.Is(streamErr, tc.sentinel) {
					t.Errorf("errors.Is(StreamError{%s}, %v) = false; remote callers cannot match the sentinel", tc.code, tc.sentinel)
				}
			} else {
				// A non-canonical row still classifies (encode
				// direction above); the code decodes to its
				// canonical sibling.
				if errors.Is(canonical, tc.sentinel) {
					t.Errorf("sentinelFor(%q) unexpectedly Is %v; table order changed", tc.code, tc.sentinel)
				}
			}
		})
	}
}

// TestSentinelRoundTripInternal: unknown errors decay to
// CodeInternal/500 and decode to nothing — errors.Is against any
// sentinel is false rather than wrong.
func TestSentinelRoundTripInternal(t *testing.T) {
	err := errors.New("disk on fire")
	if got := CodeFor(err); got != CodeInternal {
		t.Errorf("CodeFor = %q, want %q", got, CodeInternal)
	}
	if got := StatusFor(err); got != http.StatusInternalServerError {
		t.Errorf("StatusFor = %d, want %d", got, http.StatusInternalServerError)
	}
	if s := sentinelFor(CodeInternal); s != nil {
		t.Errorf("sentinelFor(internal) = %v, want nil", s)
	}
	apiErr := error(&APIError{Status: 500, Code: CodeInternal, Message: "x"})
	if errors.Is(apiErr, engine.ErrSampleCap) || errors.Is(apiErr, dynamic.ErrStaleGeneration) {
		t.Error("internal APIError matched a sentinel it does not carry")
	}
}
