package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/registry"
)

// Client speaks the srjserver wire protocol. The zero value is not
// usable; construct with NewClient. A Client is safe for concurrent
// use — it holds no per-request state beyond the http.Client's
// connection pool.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:8080"). hc may be nil to use
// http.DefaultClient; pass a custom client to control connection
// pooling, TLS, or transport-level timeouts (per-request deadlines
// belong in the context instead).
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// APIError is a non-2xx answer from the server.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // machine-readable error code (see the Code constants)
	Message string // the server's error body
	// RequestID echoes the X-SRJ-Request-ID of the failed exchange,
	// so an error value in a client log names the exact server/router
	// log lines that explain it.
	RequestID string
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("server: %s (HTTP %d, request %s)", e.Message, e.Status, e.RequestID)
	}
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.Status)
}

// Unwrap maps the server's error code back onto the canonical
// sentinel it was derived from, so errors.Is works identically
// against a remote server and a local engine — a sample-cap refusal
// is errors.Is(err, engine.ErrSampleCap) on both sides of the wire.
func (e *APIError) Unwrap() error { return sentinelFor(e.Code) }

// apiError decodes resp's error body into an *APIError.
func apiError(resp *http.Response) error {
	var body errorResponse
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, MaxBodyBytes)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	return &APIError{
		Status:    resp.StatusCode,
		Code:      body.Code,
		Message:   msg,
		RequestID: resp.Header.Get(obs.RequestIDHeader),
	}
}

// injectRequestID forwards the context's request ID (if any) on an
// outbound request, so a draw proxied router -> backend keeps one ID
// across every hop.
func injectRequestID(ctx context.Context, hr *http.Request) {
	if id := obs.RequestIDFrom(ctx); id != "" {
		hr.Header.Set(obs.RequestIDHeader, id)
	}
}

// postSample issues the request with the given Accept header and
// returns the response on HTTP 200. The caller owns resp.Body.
func (c *Client) postSample(ctx context.Context, req SampleRequest, accept string) (*http.Response, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sample", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("Accept", accept)
	injectRequestID(ctx, hr)
	resp, err := c.hc.Do(hr)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	return resp, nil
}

// Sample draws req.T uniform independent join samples over the wire
// using the compact binary transport. Equal requests against one
// server do not replay samples: the engine's stream advances with
// every request it serves.
func (c *Client) Sample(ctx context.Context, req SampleRequest) ([]geom.Pair, error) {
	if req.T < 0 {
		return nil, fmt.Errorf("server: negative sample count %d", req.T)
	}
	// Cap the preallocation: req.T is client input the server has not
	// validated yet, and trusting it here would reintroduce the
	// allocate-before-validate OOM that Engine.SetMaxT exists to
	// prevent. Oversized requests fail at the server before the slice
	// ever needs to grow past this.
	capHint := req.T
	if capHint > MaxFramePairs {
		capHint = MaxFramePairs
	}
	out := make([]geom.Pair, 0, capHint)
	err := c.SampleFunc(ctx, req, func(batch []geom.Pair) error {
		out = append(out, batch...)
		return nil
	})
	return out, err
}

// SampleFunc streams req.T samples, invoking fn with each decoded
// batch as it arrives off the wire — constant client memory however
// large req.T is. The batch's backing array is reused; fn must not
// retain it. An fn error aborts the stream and is returned verbatim.
func (c *Client) SampleFunc(ctx context.Context, req SampleRequest, fn func(batch []geom.Pair) error) error {
	req.Format = "binary"
	resp, err := c.postSample(ctx, req, ContentTypeBinary)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var fnErr error
	delivered := 0
	n, err := readWireStream(resp.Body, func(batch []geom.Pair) error {
		// Abort as soon as the stream exceeds what was asked for: a
		// misbehaving server must not be able to push unbounded excess
		// samples through fn (or through Sample's accumulator).
		if delivered += len(batch); delivered > req.T {
			return fmt.Errorf("server: stream delivered more than the %d samples requested", req.T)
		}
		if ferr := fn(batch); ferr != nil {
			fnErr = ferr
			return ferr
		}
		return nil
	})
	if err != nil {
		// fn's own error is returned verbatim, even when the caller's
		// context is (also) done — cancel-and-return-sentinel is a
		// legitimate early-stop idiom.
		if fnErr != nil {
			return fnErr
		}
		// A fully decoded server-side error frame wins over a
		// concurrently expiring local context: the server's failure
		// (say, ErrLowAcceptance) is what a local engine would have
		// returned, and it made it off the wire intact.
		var serr *StreamError
		if errors.As(err, &serr) {
			if serr.RequestID == "" {
				serr.RequestID = resp.Header.Get(obs.RequestIDHeader)
			}
			return err
		}
		// A context that expired mid-stream surfaces as a transport
		// read error; report the cancellation itself so callers can
		// errors.Is(err, context.Canceled) exactly as with a local
		// engine.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}
	if n != req.T {
		return fmt.Errorf("server: stream delivered %d of %d samples", n, req.T)
	}
	return nil
}

// SampleJSON draws req.T samples using the JSON transport — slower
// and larger than Sample, but self-describing (useful for debugging
// and non-Go consumers).
func (c *Client) SampleJSON(ctx context.Context, req SampleRequest) ([]geom.Pair, error) {
	req.Format = "json"
	resp, err := c.postSample(ctx, req, "application/json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body SampleResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("server: decoding response: %w", err)
	}
	return body.Pairs, nil
}

// ApplyUpdate posts one insert/delete batch to the server's dynamic
// store for the request's key and returns the server's answer — most
// importantly the new dataset generation. The framed binary request
// encoding is used unless req.Format is "json"; bulk ingest belongs
// on binary (20 bytes per point). An empty batch is a generation
// probe: the server answers with the current generation without
// bumping it.
func (c *Client) ApplyUpdate(ctx context.Context, req UpdateRequest) (UpdateResponse, error) {
	var out UpdateResponse
	var body bytes.Buffer
	contentType := "application/json"
	if req.Format == "json" {
		if err := json.NewEncoder(&body).Encode(req); err != nil {
			return out, err
		}
	} else {
		contentType = ContentTypeUpdate
		if err := EncodeUpdateRequest(&body, req); err != nil {
			return out, err
		}
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/update", &body)
	if err != nil {
		return out, err
	}
	hr.Header.Set("Content-Type", contentType)
	if req.UpdateID != 0 {
		// Sequencing metadata travels as a header on both encodings;
		// see UpdateIDHeader.
		hr.Header.Set(UpdateIDHeader, strconv.FormatUint(req.UpdateID, 10))
	}
	injectRequestID(ctx, hr)
	resp, err := c.hc.Do(hr)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("server: decoding update response: %w", err)
	}
	return out, nil
}

// getJSON fetches path and decodes the JSON body into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	injectRequestID(ctx, hr)
	resp, err := c.hc.Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Stats fetches the server's aggregate serving counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.getJSON(ctx, "/v1/stats", &out)
	return out, err
}

// Engines lists the server's resident engines, most recently used
// first.
func (c *Client) Engines(ctx context.Context) ([]registry.EntryInfo, error) {
	var out []registry.EntryInfo
	err := c.getJSON(ctx, "/v1/engines", &out)
	return out, err
}

// EvictEngine asks the server to drop the resident engine for key,
// reporting whether one existed. Benchmarks and load tools that
// insert throwaway keys should clean up with this so they do not
// crowd a long-lived server's cache.
func (c *Client) EvictEngine(ctx context.Context, key registry.Key) (bool, error) {
	payload, err := json.Marshal(SampleRequest{
		Dataset: key.Dataset, L: key.L, Algorithm: key.Algorithm, Seed: key.Seed,
	})
	if err != nil {
		return false, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/engines", bytes.NewReader(payload))
	if err != nil {
		return false, err
	}
	hr.Header.Set("Content-Type", "application/json")
	injectRequestID(ctx, hr)
	resp, err := c.hc.Do(hr)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, apiError(resp)
	}
	var body EvictResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, err
	}
	return body.Evicted, nil
}

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	injectRequestID(ctx, hr)
	resp, err := c.hc.Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Message: "health check failed"}
	}
	return nil
}
