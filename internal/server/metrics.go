package server

import (
	"time"

	"repro/internal/obs"
)

// serverMetrics holds the server's push-side metric state. It lives
// on the Server — not the registry entries — because exported
// counters and histograms must be monotonic, and registry entries get
// evicted. Labels are bounded by construction: algorithm names come
// from resolved keys (a fixed algorithm set) and outcome codes from
// the Code* constants.
type serverMetrics struct {
	drawHist    *obs.HistogramVec // srj_draw_duration_seconds{algorithm}
	drawSamples *obs.CounterVec   // srj_draw_samples_total{algorithm}
	requests    *obs.CounterVec   // srj_requests_total{code}
}

func newServerMetrics() serverMetrics {
	return serverMetrics{
		drawHist:    obs.NewHistogramVec(obs.DrawDurationBuckets),
		drawSamples: obs.NewCounterVec(),
		requests:    obs.NewCounterVec(),
	}
}

// collectMetrics assembles one scrape. Push-side families come from
// serverMetrics; everything derived from registry/store snapshots is
// exported as gauges only (snapshots of an evictable set cannot back
// a counter). Per-dataset detail stays off this surface — /metrics
// carries no dataset labels by design; /v1/stats has the keyed JSON.
func (s *Server) collectMetrics(m *obs.MetricSet) {
	m.Gauge(obs.MetricUptime, "Process uptime.", time.Since(s.start).Seconds())

	s.metrics.requests.Each(func(code string, n uint64) {
		m.Counter(obs.MetricRequests, "API requests by outcome code.",
			float64(n), obs.L(obs.LabelCode, code))
	})
	s.metrics.drawSamples.Each(func(alg string, n uint64) {
		m.Counter(obs.MetricDrawSamples, "Join samples delivered to clients.",
			float64(n), obs.L(obs.LabelAlgorithm, alg))
	})
	s.metrics.drawHist.Each(func(alg string, snap obs.HistogramSnapshot) {
		m.Histogram(obs.MetricDrawDuration, "Full draw-request latency.",
			snap, obs.L(obs.LabelAlgorithm, alg))
	})

	rs := s.cfg.Registry.Stats()
	m.Counter(obs.MetricRegistryHits, "Registry gets served by a resident engine.", float64(rs.Hits))
	m.Counter(obs.MetricRegistryMisses, "Registry gets that found no resident engine.", float64(rs.Misses))
	m.Counter(obs.MetricRegistryBuilds, "Engine builds executed.", float64(rs.Builds))
	m.Counter(obs.MetricRegistryEvictions, "Engines evicted, by reason.",
		float64(rs.Evictions), obs.L(obs.LabelReason, "budget"))
	m.Counter(obs.MetricRegistryEvictions, "Engines evicted, by reason.",
		float64(rs.ManualEvictions), obs.L(obs.LabelReason, "manual"))
	m.Gauge(obs.MetricRegistryEntries, "Resident engines.", float64(rs.Entries))
	m.Gauge(obs.MetricRegistryBytes, "Summed size of resident engines.", float64(rs.Bytes))
	m.Gauge(obs.MetricRegistryBudget, "Configured memory budget (0 = unlimited).", float64(rs.Budget))
	m.Histogram(obs.MetricRegistryBuildDuration, "Engine build duration.", rs.BuildLatency)

	// Acceptance rate per algorithm, aggregated over the resident
	// engines. A gauge: it is a ratio of a snapshot, and eviction
	// shrinking the window is fine for a gauge.
	type accum struct{ samples, trials uint64 }
	byAlg := map[string]*accum{}
	for _, e := range s.cfg.Registry.Entries() {
		a := byAlg[e.Key.Algorithm]
		if a == nil {
			a = &accum{}
			byAlg[e.Key.Algorithm] = a
		}
		a.samples += e.Engine.Samples
		a.trials += e.Engine.Trials
	}
	for alg, a := range byAlg {
		if a.trials == 0 {
			continue
		}
		m.Gauge(obs.MetricAcceptanceRate,
			"Accepted samples over rejection trials across resident engines.",
			float64(a.samples)/float64(a.trials), obs.L(obs.LabelAlgorithm, alg))
	}

	if s.cfg.Stores == nil {
		return
	}
	infos := s.cfg.Stores.Infos()
	m.Gauge(obs.MetricStores, "Live dynamic stores.", float64(len(infos)))
	if len(infos) == 0 {
		return
	}
	var maxGen, maxApplied uint64
	var maxDelta float64
	var pending int
	var rebuilds, inplaceOps uint64
	var walAppends, walSyncs, walSnapshots, persistErrs uint64
	var walSegments int
	var walBytes int64
	persisted := false
	for _, in := range infos {
		if in.Generation > maxGen {
			maxGen = in.Generation
		}
		if in.LastAppliedID > maxApplied {
			maxApplied = in.LastAppliedID
		}
		if in.DeltaFraction > maxDelta {
			maxDelta = in.DeltaFraction
		}
		pending += in.PendingOps
		rebuilds += in.Rebuilds
		inplaceOps += in.InPlaceOps
		persisted = persisted || in.WALSegments > 0 || in.WALAppends > 0 || in.WALSnapshots > 0 || in.PersistErrors > 0
		persistErrs += in.PersistErrors
		walAppends += in.WALAppends
		walSyncs += in.WALSyncs
		walSnapshots += in.WALSnapshots
		walSegments += in.WALSegments
		walBytes += in.WALBytes
	}
	m.Gauge(obs.MetricStoreGeneration, "Highest store generation.", float64(maxGen))
	m.Gauge(obs.MetricStoreDeltaFraction, "Largest store delta fraction (the rebuild-threshold ratio).", maxDelta)
	m.Gauge(obs.MetricStorePendingOps, "Buffered mutations across stores.", float64(pending))
	// Stores are never dropped from the map, so this sum of per-store
	// counters is monotonic and may be exported as a counter.
	m.Counter(obs.MetricStoreRebuilds, "Store base rebuilds swapped in.", float64(rebuilds))
	m.Counter(obs.MetricStoreInPlaceOps, "Operations absorbed by in-place index maintenance.", float64(inplaceOps))
	m.Gauge(obs.MetricStoreLastApplied, "Highest last-applied update ID across stores.", float64(maxApplied))
	if persisted {
		// Durability families appear only on servers running with a
		// data dir, so a dashboard's absence-of-series alert means "no
		// durability configured", not "zero activity".
		m.Counter(obs.MetricWALAppends, "Update records written ahead to the log.", float64(walAppends))
		m.Counter(obs.MetricWALSyncs, "Log fsyncs issued.", float64(walSyncs))
		m.Counter(obs.MetricWALSnapshots, "Point-set snapshots persisted.", float64(walSnapshots))
		m.Counter(obs.MetricStorePersistErrors, "Point-set snapshot attempts that failed.", float64(persistErrs))
		m.Gauge(obs.MetricWALSegments, "Live log segments across stores.", float64(walSegments))
		m.Gauge(obs.MetricWALBytes, "Live log bytes across stores.", float64(walBytes))
	}
}
