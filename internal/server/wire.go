package server

// The compact binary encoding for bulk pair transfer. JSON spends
// ~100 bytes per sampled pair and most of the server's CPU in the
// encoder; a sampling service exists to move millions of pairs, so
// the wire format matters. The binary stream is framed so that the
// server can flush chunks as Engine.SampleFunc produces them and the
// client can consume them incrementally with bounded memory:
//
//	header : magic uint32 ("SRJP"), version uint8
//	frame  : count uint32 > 0, then count 40-byte pair records
//	         (r.id int32, r.x, r.y float64, s.id int32, s.x, s.y)
//	end    : count uint32 == 0 — the stream completed cleanly
//	error  : count uint32 == 0xFFFFFFFF, msgLen uint32, msg bytes —
//	         the stream aborted after the header was sent
//
// All integers and floats are little-endian. The explicit end frame
// distinguishes a complete stream from a connection that died midway,
// and the error frame carries mid-stream failures that HTTP status
// codes cannot (the 200 header is long gone by then).

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

const (
	// wireMagic opens every binary pair stream.
	wireMagic = uint32(0x53524a50) // "SRJP"
	// wireVersion is bumped on incompatible format changes.
	wireVersion = uint8(1)
	// pairBytes is the encoded size of one pair record.
	pairBytes = 40
	// frameError marks an error frame's count field.
	frameError = uint32(0xFFFFFFFF)
	// maxFramePairs bounds the pairs a reader accepts in one frame,
	// so a malicious stream cannot force an unbounded allocation.
	maxFramePairs = 1 << 16
	// maxErrorLen bounds an error frame's message.
	maxErrorLen = 1 << 16

	// ContentTypeBinary is the media type of the framed stream.
	ContentTypeBinary = "application/x-srj-pairs"
)

// writeWireHeader opens a binary pair stream.
func writeWireHeader(w io.Writer) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], wireMagic)
	hdr[4] = wireVersion
	_, err := w.Write(hdr[:])
	return err
}

// writeWireFrame encodes a non-empty batch of pairs, splitting
// batches beyond maxFramePairs across several frames so the writer
// can never emit a frame the reader is obliged to reject. scratch is
// reused across calls when large enough; the (possibly grown) buffer
// is returned.
func writeWireFrame(w io.Writer, pairs []geom.Pair, scratch []byte) ([]byte, error) {
	for len(pairs) > maxFramePairs {
		var err error
		if scratch, err = writeWireFrame(w, pairs[:maxFramePairs], scratch); err != nil {
			return scratch, err
		}
		pairs = pairs[maxFramePairs:]
	}
	if len(pairs) == 0 {
		return scratch, nil
	}
	need := 4 + len(pairs)*pairBytes
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	buf := scratch[:need]
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(pairs)))
	off := 4
	for _, p := range pairs {
		off += putPoint(buf[off:], p.R)
		off += putPoint(buf[off:], p.S)
	}
	_, err := w.Write(buf)
	return scratch, err
}

// putPoint encodes one point record and returns its size.
func putPoint(b []byte, p geom.Point) int {
	binary.LittleEndian.PutUint32(b[0:4], uint32(p.ID))
	binary.LittleEndian.PutUint64(b[4:12], math.Float64bits(p.X))
	binary.LittleEndian.PutUint64(b[12:20], math.Float64bits(p.Y))
	return 20
}

// writeWireEnd closes a binary pair stream cleanly.
func writeWireEnd(w io.Writer) error {
	var b [4]byte
	_, err := w.Write(b[:])
	return err
}

// writeWireError aborts a binary pair stream with a message the
// client surfaces as an error.
func writeWireError(w io.Writer, msg string) error {
	if len(msg) > maxErrorLen {
		msg = msg[:maxErrorLen]
	}
	buf := make([]byte, 8+len(msg))
	binary.LittleEndian.PutUint32(buf[:4], frameError)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(msg)))
	copy(buf[8:], msg)
	_, err := w.Write(buf)
	return err
}

// readWireStream consumes a binary pair stream, invoking fn with
// each decoded batch (whose backing array is reused — fn must not
// retain it), and returns the total pair count. It fails on a
// malformed stream, an error frame, or an fn error.
func readWireStream(r io.Reader, fn func(batch []geom.Pair) error) (int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("server: reading stream header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[:4]); m != wireMagic {
		return 0, fmt.Errorf("server: bad stream magic %#x", m)
	}
	if v := hdr[4]; v != wireVersion {
		return 0, fmt.Errorf("server: unsupported stream version %d", v)
	}
	total := 0
	var batch []geom.Pair
	var raw []byte
	for {
		var cnt [4]byte
		if _, err := io.ReadFull(r, cnt[:]); err != nil {
			return total, fmt.Errorf("server: stream truncated mid-frame: %w", err)
		}
		n := binary.LittleEndian.Uint32(cnt[:])
		switch {
		case n == 0:
			return total, nil
		case n == frameError:
			var ln [4]byte
			if _, err := io.ReadFull(r, ln[:]); err != nil {
				return total, fmt.Errorf("server: truncated error frame: %w", err)
			}
			l := binary.LittleEndian.Uint32(ln[:])
			if l > maxErrorLen {
				return total, fmt.Errorf("server: oversized error frame (%d bytes)", l)
			}
			msg := make([]byte, l)
			if _, err := io.ReadFull(r, msg); err != nil {
				return total, fmt.Errorf("server: truncated error frame: %w", err)
			}
			return total, fmt.Errorf("server: remote error: %s", msg)
		case n > maxFramePairs:
			return total, fmt.Errorf("server: oversized frame (%d pairs)", n)
		}
		need := int(n) * pairBytes
		if cap(raw) < need {
			raw = make([]byte, need)
			batch = make([]geom.Pair, n)
		}
		raw = raw[:need]
		if _, err := io.ReadFull(r, raw); err != nil {
			return total, fmt.Errorf("server: stream truncated mid-frame: %w", err)
		}
		batch = batch[:n]
		for i := range batch {
			off := i * pairBytes
			batch[i].R = getPoint(raw[off:])
			batch[i].S = getPoint(raw[off+20:])
		}
		total += int(n)
		if fn != nil {
			if err := fn(batch); err != nil {
				return total, err
			}
		}
	}
}

// getPoint decodes one 20-byte point record.
func getPoint(b []byte) geom.Point {
	return geom.Point{
		ID: int32(binary.LittleEndian.Uint32(b[0:4])),
		X:  math.Float64frombits(binary.LittleEndian.Uint64(b[4:12])),
		Y:  math.Float64frombits(binary.LittleEndian.Uint64(b[12:20])),
	}
}
