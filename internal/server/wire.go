package server

// The compact binary encoding for bulk pair transfer. JSON spends
// ~100 bytes per sampled pair and most of the server's CPU in the
// encoder; a sampling service exists to move millions of pairs, so
// the wire format matters. The binary stream is framed so that the
// server can flush chunks as Engine.SampleFunc produces them and the
// client can consume them incrementally with bounded memory:
//
//	header : magic uint32 ("SRJP"), version uint8
//	frame  : count uint32 > 0, then count 40-byte pair records
//	         (r.id int32, r.x, r.y float64, s.id int32, s.x, s.y)
//	end    : count uint32 == 0 — the stream completed cleanly
//	error  : count uint32 == 0xFFFFFFFF, codeLen uint32, code bytes,
//	         msgLen uint32, msg bytes — the stream aborted after the
//	         header was sent
//
// All integers and floats are little-endian. The explicit end frame
// distinguishes a complete stream from a connection that died midway,
// and the error frame carries mid-stream failures that HTTP status
// codes cannot (the 200 header is long gone by then) — including the
// machine-readable error code, so errors.Is against the canonical
// sentinels works for mid-stream failures exactly as for pre-stream
// HTTP errors (version 2 added the code field).

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

const (
	// wireMagic opens every binary pair stream.
	wireMagic = uint32(0x53524a50) // "SRJP"
	// wireVersion is bumped on incompatible format changes (2: the
	// error frame grew a code field).
	wireVersion = uint8(2)
	// pairBytes is the encoded size of one pair record.
	pairBytes = 40
	// frameError marks an error frame's count field.
	frameError = uint32(0xFFFFFFFF)
	// MaxFramePairs bounds the pairs a reader accepts in one frame,
	// so a malicious stream cannot force an unbounded allocation. It
	// doubles as the preallocation cap for accumulating clients: a
	// larger t is client input the server has not validated yet, and
	// trusting it would reintroduce allocate-before-validate.
	MaxFramePairs = 1 << 16
	// maxErrorLen bounds an error frame's message.
	maxErrorLen = 1 << 16

	// ContentTypeBinary is the media type of the framed stream.
	ContentTypeBinary = "application/x-srj-pairs"
)

// WriteStreamHeader opens a binary pair stream. The Write* stream
// functions are exported for alternative serving fronts — the shard
// router's proxy re-encodes routed draws with them — so every tier
// emits one wire format.
func WriteStreamHeader(w io.Writer) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], wireMagic)
	hdr[4] = wireVersion
	_, err := w.Write(hdr[:])
	return err
}

// WriteStreamFrame encodes a non-empty batch of pairs, splitting
// batches beyond MaxFramePairs across several frames so the writer
// can never emit a frame the reader is obliged to reject. scratch is
// reused across calls when large enough; the (possibly grown) buffer
// is returned.
func WriteStreamFrame(w io.Writer, pairs []geom.Pair, scratch []byte) ([]byte, error) {
	for len(pairs) > MaxFramePairs {
		var err error
		if scratch, err = WriteStreamFrame(w, pairs[:MaxFramePairs], scratch); err != nil {
			return scratch, err
		}
		pairs = pairs[MaxFramePairs:]
	}
	if len(pairs) == 0 {
		return scratch, nil
	}
	need := 4 + len(pairs)*pairBytes
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	buf := scratch[:need]
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(pairs)))
	off := 4
	for _, p := range pairs {
		off += putPoint(buf[off:], p.R)
		off += putPoint(buf[off:], p.S)
	}
	_, err := w.Write(buf)
	return scratch, err
}

// putPoint encodes one point record and returns its size.
func putPoint(b []byte, p geom.Point) int {
	binary.LittleEndian.PutUint32(b[0:4], uint32(p.ID))
	binary.LittleEndian.PutUint64(b[4:12], math.Float64bits(p.X))
	binary.LittleEndian.PutUint64(b[12:20], math.Float64bits(p.Y))
	return 20
}

// WriteStreamEnd closes a binary pair stream cleanly.
func WriteStreamEnd(w io.Writer) error {
	var b [4]byte
	_, err := w.Write(b[:])
	return err
}

// WriteStreamError aborts a binary pair stream with a machine-readable
// code plus a message; the client surfaces both as a *StreamError.
func WriteStreamError(w io.Writer, code, msg string) error {
	if len(code) > maxErrorLen {
		code = code[:maxErrorLen]
	}
	if len(msg) > maxErrorLen {
		msg = msg[:maxErrorLen]
	}
	buf := make([]byte, 12+len(code)+len(msg))
	binary.LittleEndian.PutUint32(buf[:4], frameError)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(code)))
	off := 8 + copy(buf[8:], code)
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(msg)))
	copy(buf[off+4:], msg)
	_, err := w.Write(buf)
	return err
}

// StreamError is a mid-stream failure relayed through the binary
// transport's error frame — the HTTP 200 was already on the wire, so
// the status-code path of APIError is unavailable. Like APIError it
// unwraps onto the canonical sentinel its code names, keeping
// errors.Is behavior identical before and after the first frame.
type StreamError struct {
	Code    string // machine-readable error code (see the Code constants)
	Message string // the server's error text
	// RequestID echoes the X-SRJ-Request-ID of the stream's response
	// (filled client-side from the header; it does not travel in the
	// error frame itself).
	RequestID string
}

func (e *StreamError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("server: remote error: %s (request %s)", e.Message, e.RequestID)
	}
	return fmt.Sprintf("server: remote error: %s", e.Message)
}

// Unwrap maps the error code onto its canonical sentinel.
func (e *StreamError) Unwrap() error { return sentinelFor(e.Code) }

// readErrorFrame consumes the code and message of an error frame
// (the frameError count is already read) and returns the
// *StreamError it describes.
func readErrorFrame(r io.Reader) (*StreamError, error) {
	readStr := func(what string) (string, error) {
		var ln [4]byte
		if _, err := io.ReadFull(r, ln[:]); err != nil {
			return "", fmt.Errorf("server: truncated error frame: %w", err)
		}
		l := binary.LittleEndian.Uint32(ln[:])
		if l > maxErrorLen {
			return "", fmt.Errorf("server: oversized error frame %s (%d bytes)", what, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", fmt.Errorf("server: truncated error frame: %w", err)
		}
		return string(b), nil
	}
	code, err := readStr("code")
	if err != nil {
		return nil, err
	}
	msg, err := readStr("message")
	if err != nil {
		return nil, err
	}
	return &StreamError{Code: code, Message: msg}, nil
}

// readWireStream consumes a binary pair stream, invoking fn with
// each decoded batch (whose backing array is reused — fn must not
// retain it), and returns the total pair count. It fails on a
// malformed stream, an error frame, or an fn error.
func readWireStream(r io.Reader, fn func(batch []geom.Pair) error) (int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("server: reading stream header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[:4]); m != wireMagic {
		return 0, fmt.Errorf("server: bad stream magic %#x", m)
	}
	if v := hdr[4]; v != wireVersion {
		return 0, fmt.Errorf("server: unsupported stream version %d", v)
	}
	total := 0
	var batch []geom.Pair
	var raw []byte
	for {
		var cnt [4]byte
		if _, err := io.ReadFull(r, cnt[:]); err != nil {
			return total, fmt.Errorf("server: stream truncated mid-frame: %w", err)
		}
		n := binary.LittleEndian.Uint32(cnt[:])
		switch {
		case n == 0:
			return total, nil
		case n == frameError:
			serr, err := readErrorFrame(r)
			if err != nil {
				return total, err
			}
			return total, serr
		case n > MaxFramePairs:
			return total, fmt.Errorf("server: oversized frame (%d pairs)", n)
		}
		need := int(n) * pairBytes
		if cap(raw) < need {
			raw = make([]byte, need)
			batch = make([]geom.Pair, n)
		}
		raw = raw[:need]
		if _, err := io.ReadFull(r, raw); err != nil {
			return total, fmt.Errorf("server: stream truncated mid-frame: %w", err)
		}
		batch = batch[:n]
		for i := range batch {
			off := i * pairBytes
			batch[i].R = getPoint(raw[off:])
			batch[i].S = getPoint(raw[off+20:])
		}
		total += int(n)
		if fn != nil {
			if err := fn(batch); err != nil {
				return total, err
			}
		}
	}
}

// getPoint decodes one 20-byte point record.
func getPoint(b []byte) geom.Point {
	return geom.Point{
		ID: int32(binary.LittleEndian.Uint32(b[0:4])),
		X:  math.Float64frombits(binary.LittleEndian.Uint64(b[4:12])),
		Y:  math.Float64frombits(binary.LittleEndian.Uint64(b[12:20])),
	}
}
