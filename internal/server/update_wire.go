package server

// The compact binary encoding for bulk update transfer — the request
// sibling of the pair-stream encoding in wire.go. JSON spends ~50
// bytes per inserted point; a dataset ingesting millions of points
// should pay 20. The encoding is sectioned so encoders can stream
// batches without knowing totals up front:
//
//	header  : magic uint32 ("SRJU"), version uint8
//	key     : dsLen uint16, dataset bytes, algoLen uint16, algorithm
//	          bytes, l float64 bits, seed uint64
//	section : tag uint8 (1 insert_r, 2 insert_s, 3 delete_r,
//	          4 delete_s), count uint32 > 0, then count records —
//	          20-byte points (id, x, y) for inserts, 4-byte IDs for
//	          deletes. Sections repeat and accumulate.
//	end     : tag uint8 == 0
//
// All integers and floats are little-endian. Every count is bounded
// (MaxUpdateSectionOps per section, the caller's op cap in total), so
// a malicious body cannot force an unbounded allocation — the same
// discipline as MaxFramePairs on the sample stream.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

const (
	// updateMagic opens every binary update body.
	updateMagic = uint32(0x53524a55) // "SRJU"
	// updateVersion is bumped on incompatible format changes.
	updateVersion = uint8(1)
	// MaxUpdateSectionOps bounds one section's record count, so a
	// reader never allocates more than ~1.3 MiB before seeing bytes.
	MaxUpdateSectionOps = 1 << 16
	// maxUpdateStringLen bounds the dataset and algorithm names.
	maxUpdateStringLen = 1 << 10

	// ContentTypeUpdate is the media type of the framed update body.
	ContentTypeUpdate = "application/x-srj-update"

	updateTagEnd     = uint8(0)
	updateTagInsertR = uint8(1)
	updateTagInsertS = uint8(2)
	updateTagDeleteR = uint8(3)
	updateTagDeleteS = uint8(4)
)

// EncodeUpdateRequest writes req in the framed binary encoding. The
// Go client uses it for Format "binary"; any other producer can too.
func EncodeUpdateRequest(w io.Writer, req UpdateRequest) error {
	if len(req.Dataset) > maxUpdateStringLen || len(req.Algorithm) > maxUpdateStringLen {
		return fmt.Errorf("server: dataset or algorithm name exceeds %d bytes", maxUpdateStringLen)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], updateMagic)
	hdr[4] = updateVersion
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeUpdateString(w, req.Dataset); err != nil {
		return err
	}
	if err := writeUpdateString(w, req.Algorithm); err != nil {
		return err
	}
	var fixed [16]byte
	binary.LittleEndian.PutUint64(fixed[:8], math.Float64bits(req.L))
	binary.LittleEndian.PutUint64(fixed[8:], req.Seed)
	if _, err := w.Write(fixed[:]); err != nil {
		return err
	}
	if err := writePointSections(w, updateTagInsertR, req.InsertR); err != nil {
		return err
	}
	if err := writePointSections(w, updateTagInsertS, req.InsertS); err != nil {
		return err
	}
	if err := writeIDSections(w, updateTagDeleteR, req.DeleteR); err != nil {
		return err
	}
	if err := writeIDSections(w, updateTagDeleteS, req.DeleteS); err != nil {
		return err
	}
	_, err := w.Write([]byte{updateTagEnd})
	return err
}

func writeUpdateString(w io.Writer, s string) error {
	var ln [2]byte
	binary.LittleEndian.PutUint16(ln[:], uint16(len(s)))
	if _, err := w.Write(ln[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// writePointSections emits pts under tag, splitting batches beyond
// MaxUpdateSectionOps so the writer never emits a section the reader
// is obliged to reject.
func writePointSections(w io.Writer, tag uint8, pts []geom.Point) error {
	for len(pts) > 0 {
		chunk := pts
		if len(chunk) > MaxUpdateSectionOps {
			chunk = chunk[:MaxUpdateSectionOps]
		}
		pts = pts[len(chunk):]
		buf := make([]byte, 5+20*len(chunk))
		buf[0] = tag
		binary.LittleEndian.PutUint32(buf[1:5], uint32(len(chunk)))
		off := 5
		for _, p := range chunk {
			off += putPoint(buf[off:], p)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// writeIDSections emits ids under tag with the same splitting rule.
func writeIDSections(w io.Writer, tag uint8, ids []int32) error {
	for len(ids) > 0 {
		chunk := ids
		if len(chunk) > MaxUpdateSectionOps {
			chunk = chunk[:MaxUpdateSectionOps]
		}
		ids = ids[len(chunk):]
		buf := make([]byte, 5+4*len(chunk))
		buf[0] = tag
		binary.LittleEndian.PutUint32(buf[1:5], uint32(len(chunk)))
		off := 5
		for _, id := range chunk {
			binary.LittleEndian.PutUint32(buf[off:off+4], uint32(id))
			off += 4
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// DecodeUpdateBody consumes one framed binary update body. It fails
// on a malformed body, a section beyond MaxUpdateSectionOps, or more
// than maxOps total operations (maxOps <= 0 means
// DefaultMaxUpdateOps). It never allocates more than the bytes it
// has already validated describe.
func DecodeUpdateBody(r io.Reader, maxOps int) (UpdateRequest, error) {
	if maxOps <= 0 {
		maxOps = DefaultMaxUpdateOps
	}
	var req UpdateRequest
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return req, fmt.Errorf("server: reading update header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[:4]); m != updateMagic {
		return req, fmt.Errorf("server: bad update magic %#x", m)
	}
	if v := hdr[4]; v != updateVersion {
		return req, fmt.Errorf("server: unsupported update version %d", v)
	}
	var err error
	if req.Dataset, err = readUpdateString(r, "dataset"); err != nil {
		return req, err
	}
	if req.Algorithm, err = readUpdateString(r, "algorithm"); err != nil {
		return req, err
	}
	var fixed [16]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return req, fmt.Errorf("server: truncated update key: %w", err)
	}
	req.L = math.Float64frombits(binary.LittleEndian.Uint64(fixed[:8]))
	req.Seed = binary.LittleEndian.Uint64(fixed[8:])

	total := 0
	for {
		var tag [1]byte
		if _, err := io.ReadFull(r, tag[:]); err != nil {
			return req, fmt.Errorf("server: update truncated mid-section: %w", err)
		}
		if tag[0] == updateTagEnd {
			return req, nil
		}
		if tag[0] > updateTagDeleteS {
			return req, fmt.Errorf("server: unknown update section tag %d", tag[0])
		}
		var cnt [4]byte
		if _, err := io.ReadFull(r, cnt[:]); err != nil {
			return req, fmt.Errorf("server: update truncated mid-section: %w", err)
		}
		n := binary.LittleEndian.Uint32(cnt[:])
		if n == 0 || n > MaxUpdateSectionOps {
			return req, fmt.Errorf("server: bad update section size %d", n)
		}
		if total += int(n); total > maxOps {
			return req, fmt.Errorf("server: update carries more than %d operations", maxOps)
		}
		switch tag[0] {
		case updateTagInsertR, updateTagInsertS:
			raw := make([]byte, 20*int(n))
			if _, err := io.ReadFull(r, raw); err != nil {
				return req, fmt.Errorf("server: update truncated mid-section: %w", err)
			}
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = getPoint(raw[i*20:])
			}
			if tag[0] == updateTagInsertR {
				req.InsertR = append(req.InsertR, pts...)
			} else {
				req.InsertS = append(req.InsertS, pts...)
			}
		case updateTagDeleteR, updateTagDeleteS:
			raw := make([]byte, 4*int(n))
			if _, err := io.ReadFull(r, raw); err != nil {
				return req, fmt.Errorf("server: update truncated mid-section: %w", err)
			}
			ids := make([]int32, n)
			for i := range ids {
				ids[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
			}
			if tag[0] == updateTagDeleteR {
				req.DeleteR = append(req.DeleteR, ids...)
			} else {
				req.DeleteS = append(req.DeleteS, ids...)
			}
		}
	}
}

func readUpdateString(r io.Reader, what string) (string, error) {
	var ln [2]byte
	if _, err := io.ReadFull(r, ln[:]); err != nil {
		return "", fmt.Errorf("server: truncated update %s: %w", what, err)
	}
	l := binary.LittleEndian.Uint16(ln[:])
	if l > maxUpdateStringLen {
		return "", fmt.Errorf("server: oversized update %s (%d bytes)", what, l)
	}
	b := make([]byte, l)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("server: truncated update %s: %w", what, err)
	}
	return string(b), nil
}
