package server

// State transfer for live ring membership: when the router adds a
// backend at runtime, it dumps each dataset's current store state
// from an existing member (POST /v1/snapshot/dump) and installs it on
// the newcomer (POST /v1/snapshot/install) before the ring includes
// it for reads. The dump carries the generation and last-applied
// update ID alongside the live point sets, so the installed store
// resumes the router's per-key update sequence exactly where the
// donor left it — subsequent stamped broadcasts apply gap-free.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/geom"
	"repro/internal/registry"
)

// SnapshotDump is one dataset's complete dynamic-store state: the
// body of a /v1/snapshot/dump response and a /v1/snapshot/install
// request.
type SnapshotDump struct {
	Dataset   string  `json:"dataset"`
	L         float64 `json:"l"`
	Algorithm string  `json:"algorithm,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
	// Generation and LastAppliedID seat the installed store in the
	// dataset's version history and the router's update sequence.
	Generation    uint64 `json:"generation"`
	LastAppliedID uint64 `json:"last_applied_update_id"`
	// R and S are the live point sets at that generation.
	R []geom.Point `json:"r"`
	S []geom.Point `json:"s"`
}

// Key returns the registry key the dump addresses.
func (d SnapshotDump) Key() registry.Key {
	return registry.Key{Dataset: d.Dataset, L: d.L, Algorithm: NormalizeAlgorithm(d.Algorithm), Seed: d.Seed}
}

// SnapshotInstallResponse is the body of a successful install.
type SnapshotInstallResponse struct {
	Generation    uint64 `json:"generation"`
	LastAppliedID uint64 `json:"last_applied_update_id"`
}

// BackendRequest is the body of the router's POST/DELETE
// /v1/router/backends admin endpoint.
type BackendRequest struct {
	Backend string `json:"backend"`
}

// BackendsResponse answers a membership change with the resulting
// fleet.
type BackendsResponse struct {
	Backends []string `json:"backends"`
}

// handleSnapshotDump answers with the named dataset's complete store
// state. Only keys with a live dynamic store dump — a key served
// statically has no update sequence to transfer.
func (s *Server) handleSnapshotDump(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Stores == nil {
		WriteError(w, http.StatusNotImplemented, CodeBadRequest, "dynamic updates are disabled on this server")
		return
	}
	req, ok := DecodeEvictRequest(w, r)
	if !ok {
		return
	}
	st, ok := s.cfg.Stores.Lookup(req.Key())
	if !ok {
		WriteError(w, http.StatusNotFound, CodeBadKey, "no dynamic store for %s", req.Key())
		return
	}
	gen, lastID, rpts, spts := st.Dump()
	key := req.Key()
	w.Header().Set("Content-Type", "application/json")
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(s.cfg.Timeout))
	json.NewEncoder(w).Encode(SnapshotDump{
		Dataset:       key.Dataset,
		L:             key.L,
		Algorithm:     key.Algorithm,
		Seed:          key.Seed,
		Generation:    gen,
		LastAppliedID: lastID,
		R:             rpts,
		S:             spts,
	})
}

// handleSnapshotInstall adopts a transferred store. The actual
// construction is the host process's business (the store factory, WAL
// attachment, and engine eviction live above this package), so the
// work happens in Config.InstallStore; a server wired without it
// answers 501.
func (s *Server) handleSnapshotInstall(w http.ResponseWriter, r *http.Request) {
	if s.cfg.InstallStore == nil {
		WriteError(w, http.StatusNotImplemented, CodeBadRequest, "snapshot install is not wired on this server")
		return
	}
	var dump SnapshotDump
	// Point sets ride along, so the body cap is the update cap, not
	// the request cap.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxUpdateBodyBytes)).Decode(&dump); err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	if dump.Dataset == "" {
		WriteError(w, http.StatusBadRequest, CodeBadKey, "dataset is required")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if err := s.cfg.InstallStore(ctx, dump); err != nil {
		WriteError(w, StatusFor(err), CodeFor(err), "installing %s: %v", dump.Key(), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(SnapshotInstallResponse{
		Generation:    dump.Generation,
		LastAppliedID: dump.LastAppliedID,
	})
}

// DumpSnapshot fetches one dataset's complete store state from the
// server — the donor half of the router's state transfer.
func (c *Client) DumpSnapshot(ctx context.Context, key registry.Key) (SnapshotDump, error) {
	var out SnapshotDump
	payload, err := json.Marshal(SampleRequest{
		Dataset: key.Dataset, L: key.L, Algorithm: key.Algorithm, Seed: key.Seed,
	})
	if err != nil {
		return out, err
	}
	err = c.postJSON(ctx, "/v1/snapshot/dump", payload, &out)
	return out, err
}

// InstallSnapshot installs a transferred store state on the server —
// the recipient half of the router's state transfer. Installing a
// state the server already holds (same or older last-applied ID) is
// acknowledged idempotently.
func (c *Client) InstallSnapshot(ctx context.Context, dump SnapshotDump) (SnapshotInstallResponse, error) {
	var out SnapshotInstallResponse
	payload, err := json.Marshal(dump)
	if err != nil {
		return out, err
	}
	err = c.postJSON(ctx, "/v1/snapshot/install", payload, &out)
	return out, err
}

// AddRouterBackend asks a router to grow its fleet by one backend and
// returns the resulting membership. Only meaningful against a router
// (srjserver has no ring); a server answers 404.
func (c *Client) AddRouterBackend(ctx context.Context, backend string) ([]string, error) {
	return c.memberChange(ctx, http.MethodPost, backend)
}

// RemoveRouterBackend asks a router to shrink its fleet by one
// backend and returns the resulting membership.
func (c *Client) RemoveRouterBackend(ctx context.Context, backend string) ([]string, error) {
	return c.memberChange(ctx, http.MethodDelete, backend)
}

func (c *Client) memberChange(ctx context.Context, method, backend string) ([]string, error) {
	payload, err := json.Marshal(BackendRequest{Backend: backend})
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, method, c.base+"/v1/router/backends", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	injectRequestID(ctx, hr)
	resp, err := c.hc.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var body BackendsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Backends, nil
}

// postJSON posts a JSON payload and decodes the JSON answer.
func (c *Client) postJSON(ctx context.Context, path string, payload []byte, out any) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	injectRequestID(ctx, hr)
	resp, err := c.hc.Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
