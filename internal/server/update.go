package server

// POST /v1/update: the mutation half of the serving API. A request
// addresses one engine key (dataset, l, algorithm, seed — the same
// spelling as /v1/sample) and carries batches of point inserts and
// ID deletes per side. The server routes it to the key's dynamic
// store (created on first update from the same dataset resolver the
// static engines use), which applies the batch, bumps the dataset
// generation, and triggers its LSM-style compaction when the delta
// fraction warrants; the handler then evicts the registry engines
// the bump just made stale and answers with the new generation.
//
// Two request encodings are accepted, mirroring /v1/sample's two
// response transports: JSON (self-describing, for small batches and
// non-Go clients) and a framed binary encoding (ContentTypeUpdate,
// see update_wire.go) that carries bulk inserts at 20 bytes per
// point instead of ~50 bytes of JSON.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/registry"
)

// DefaultMaxUpdateOps caps the operations one update request may
// carry. At 20 bytes per inserted point this bounds the decoded
// request at ~20 MiB.
const DefaultMaxUpdateOps = 1 << 20

// MaxUpdateBodyBytes bounds a /v1/update request body. Binary insert
// batches are 20 bytes per point, so this comfortably fits
// DefaultMaxUpdateOps operations with framing overhead.
const MaxUpdateBodyBytes = 64 << 20

// UpdateRequest is the body of POST /v1/update: the engine key the
// update addresses plus the operation batches. The key fields follow
// SampleRequest exactly (empty Algorithm means "bbst"); the ops
// fields mirror dynamic.Update.
type UpdateRequest struct {
	Dataset   string  `json:"dataset"`
	L         float64 `json:"l"`
	Algorithm string  `json:"algorithm,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`

	// UpdateID sequences the update fleet-wide (dynamic.Store.ApplyAt
	// semantics: 0 self-stamps; otherwise apply strictly in ID order,
	// duplicates acknowledged idempotently). The router stamps it; on
	// the wire it travels in the UpdateIDHeader so the binary body
	// needs no version bump. An empty update probes the sequence.
	UpdateID uint64 `json:"update_id,omitempty"`

	InsertR []geom.Point `json:"insert_r,omitempty"`
	InsertS []geom.Point `json:"insert_s,omitempty"`
	DeleteR []int32      `json:"delete_r,omitempty"`
	DeleteS []int32      `json:"delete_s,omitempty"`

	// Format selects the client-side request encoding: "json"
	// (default) or "binary" (the framed encoding of update_wire.go).
	// Server-side the Content-Type decides; this field never travels.
	Format string `json:"-"`
}

// Key returns the registry key the update addresses (generation
// zero: the store owns the generation).
func (q UpdateRequest) Key() registry.Key {
	return registry.Key{Dataset: q.Dataset, L: q.L, Algorithm: NormalizeAlgorithm(q.Algorithm), Seed: q.Seed}
}

// Ops extracts the mutation batch.
func (q UpdateRequest) Ops() dynamic.Update {
	return dynamic.Update{
		InsertR: q.InsertR,
		InsertS: q.InsertS,
		DeleteR: q.DeleteR,
		DeleteS: q.DeleteS,
	}
}

// UpdateResponse is the body of a successful POST /v1/update.
type UpdateResponse struct {
	// Generation is the dataset generation after the update — the
	// value sampling requests will be served at. Subsequent equal
	// responses mean the update was empty (a generation probe).
	Generation uint64 `json:"generation"`
	// Ops echoes the number of operations applied.
	Ops int `json:"ops"`
	// UpdateID is the sequence ID the update applied at (self-stamped
	// when the request carried none). For an empty update it reports
	// the store's last applied ID — the sequence probe the router
	// seeds its counter from.
	UpdateID uint64 `json:"update_id,omitempty"`
	// Duplicate reports the ID was already applied; Generation is the
	// current generation and nothing was re-applied.
	Duplicate bool `json:"duplicate,omitempty"`
}

// UpdateIDHeader carries UpdateRequest.UpdateID on POST /v1/update.
// A header (rather than a body field) so the fuzz-pinned binary
// update encoding keeps its version: the ID is transport sequencing
// metadata, not part of the batch.
const UpdateIDHeader = "X-SRJ-Update-ID"

// DecodeUpdateRequest decodes and validates a POST /v1/update body in
// either encoding — shared with the router proxy like
// DecodeSampleRequest, so the tiers answer identically. On failure
// the error response is already written and ok is false.
func DecodeUpdateRequest(w http.ResponseWriter, r *http.Request, maxOps int) (req UpdateRequest, ok bool) {
	if maxOps <= 0 {
		maxOps = DefaultMaxUpdateOps
	}
	body := http.MaxBytesReader(w, r.Body, MaxUpdateBodyBytes)
	var err error
	if r.Header.Get("Content-Type") == ContentTypeUpdate {
		req, err = DecodeUpdateBody(body, maxOps)
		if err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad update body: %v", err)
			return req, false
		}
	} else {
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad update body: %v", err)
			return req, false
		}
	}
	if h := r.Header.Get(UpdateIDHeader); h != "" {
		id, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad %s header: %v", UpdateIDHeader, err)
			return req, false
		}
		req.UpdateID = id
	}
	if req.Dataset == "" {
		WriteError(w, http.StatusBadRequest, CodeBadKey, "dataset is required")
		return req, false
	}
	if n := req.Ops().Ops(); n > maxOps {
		WriteError(w, http.StatusBadRequest, CodeBadRequest,
			"update carries %d operations, cap is %d; split the batch", n, maxOps)
		return req, false
	}
	if err := req.Ops().Validate(); err != nil {
		WriteError(w, StatusFor(err), CodeFor(err), "bad update: %v", err)
		return req, false
	}
	return req, true
}

// handleUpdate applies one mutation batch and answers with the new
// generation. Engines cached for older generations of the key are
// evicted — on this server; the router broadcasts the update so every
// shard does the same.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Stores == nil {
		WriteError(w, http.StatusNotImplemented, CodeBadRequest,
			"dynamic updates are not enabled on this server")
		return
	}
	req, ok := DecodeUpdateRequest(w, r, s.cfg.MaxUpdateOps)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	res, err := s.cfg.Stores.ApplyAt(ctx, req.Key(), req.UpdateID, req.Ops())
	if err != nil {
		WriteError(w, StatusFor(err), CodeFor(err), "updating %s: %v", req.Key(), err)
		return
	}
	// The bump just made every older generation's cached engine
	// stale; drop them now rather than letting them age out.
	key := req.Key()
	key.Generation = res.Generation
	s.cfg.Registry.EvictOlder(key)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(UpdateResponse{
		Generation: res.Generation,
		Ops:        req.Ops().Ops(),
		UpdateID:   res.UpdateID,
		Duplicate:  res.Duplicate,
	})
}

// resolveEngine resolves a sample request to a serving engine. Static
// datasets go straight to the registry at generation 0. A dataset
// with a store is served at the store's current generation: the
// generation-tagged key either hits a cached engine of that exact
// generation or builds (cheaply — the store already holds the view
// engine), so a request can never be served deleted points by a
// stale cache entry. A generation racing past us mid-lookup surfaces
// as ErrStaleGeneration, which is retried with the fresh generation;
// under pathological update pressure the store's current view serves
// directly, uncached.
func (s *Server) resolveEngine(ctx context.Context, req SampleRequest) (registry.Key, *engine.Engine, error) {
	key := req.Key()
	var st *dynamic.Store
	if s.cfg.Stores != nil {
		st, _ = s.cfg.Stores.Lookup(key)
	}
	if st == nil {
		eng, err := s.cfg.Registry.Get(ctx, key)
		return key, eng, err
	}
	for attempt := 0; attempt < 4; attempt++ {
		key.Generation = st.Generation()
		eng, err := s.cfg.Registry.Get(ctx, key)
		if err == nil || !errors.Is(err, dynamic.ErrStaleGeneration) {
			return key, eng, err
		}
	}
	gen, eng, err := st.ViewEngine()
	if err != nil {
		return key, nil, fmt.Errorf("store %s: %w", key, err)
	}
	key.Generation = gen
	return key, eng, nil
}
