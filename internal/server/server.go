// Package server exposes the engine registry over HTTP, turning the
// paper's amortization into a network service: one process pays the
// Õ(n + m) preprocessing per (dataset, l, algorithm, seed) key and a
// whole fleet of clients draws Õ(1) expected-time samples from it.
//
// The API surface is small:
//
//	POST   /v1/sample  — draw t samples for a key; JSON or a framed
//	                     binary encoding (see wire.go) streamed in
//	                     Engine.SampleFunc chunks
//	POST   /v1/update  — apply an insert/delete batch to a key's
//	                     dynamic store (JSON or the framed binary
//	                     encoding of update_wire.go) and answer with
//	                     the bumped dataset generation
//	GET    /v1/stats   — registry + per-engine serving counters
//	GET    /v1/engines — the resident engines, most recently used first
//	DELETE /v1/engines — evict one engine by key (tools that insert
//	                     throwaway keys, like srjbench -remote, clean
//	                     up with this)
//	POST   /v1/snapshot/dump    — one dataset's complete store state
//	                              (router state transfer, donor side)
//	POST   /v1/snapshot/install — adopt a transferred store state
//	                              (router state transfer, recipient)
//	GET    /healthz    — liveness; 503 when a store's persister fails
//
// Every request is bounded: t is capped (Config.MaxT, and the
// buffering JSON transport at the lower Config.MaxTJSON), bodies are
// size-limited, sampling runs under a context deadline, and the
// registry caps concurrent engine builds at GOMAXPROCS — adversarial
// requests cannot force unbounded allocation or pin workers forever.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/registry"
)

// ErrBadKey marks registry build errors caused by the request — an
// unknown dataset or algorithm name, an invalid l — as distinct from
// server-side failures. Builders wrap such errors with it so the
// handler can answer 400 instead of 500.
var ErrBadKey = errors.New("server: bad engine key")

// Defaults for optional Config fields.
const (
	DefaultMaxT = 1_000_000
	// DefaultMaxTJSON is the default cap of the JSON transport,
	// which — unlike the streamed binary transport — materializes
	// the whole response (~48 bytes/pair, so ~12 MiB at this cap)
	// before writing it. Bulk transfers belong on the binary
	// transport.
	DefaultMaxTJSON = 1 << 18
	DefaultTimeout  = 30 * time.Second
	// MaxBodyBytes bounds a /v1/sample request body; requests are a
	// few short fields, so 1 MiB is generous.
	MaxBodyBytes = 1 << 20
)

// Config parameterizes a Server.
type Config struct {
	// Registry resolves keys to engines. Required.
	Registry *registry.Registry
	// Stores resolves keys to dynamic stores for POST /v1/update and
	// generation-aware sampling. nil disables updates (POST
	// /v1/update answers 501) and serves every dataset statically.
	Stores *dynamic.Stores
	// InstallStore adopts a transferred store state (POST
	// /v1/snapshot/install): construct a store at the dump's
	// generation and last-applied ID and register it for the key. The
	// host process wires it (srj.NewServer does) because store
	// construction, WAL attachment, and engine eviction live above
	// this package. nil answers 501. Installing state the server
	// already holds at the same or a newer last-applied ID must
	// succeed idempotently.
	InstallStore func(ctx context.Context, dump SnapshotDump) error
	// MaxT caps the samples one request may ask for (default
	// DefaultMaxT). Binary responses stream in constant memory, so
	// this cap is about sampling work, not response size.
	MaxT int
	// MaxTJSON caps t for the buffering JSON transport (default
	// min(DefaultMaxTJSON, MaxT); never above MaxT). It bounds
	// per-request response memory at ~48*MaxTJSON bytes — under
	// concurrent load that multiplies per in-flight request, so keep
	// it small and push bulk traffic to the binary transport.
	MaxTJSON int
	// MaxUpdateOps caps the operations one update request may carry
	// (default DefaultMaxUpdateOps).
	MaxUpdateOps int
	// Timeout bounds one request end to end, engine build included
	// (default DefaultTimeout).
	Timeout time.Duration
	// Logger receives structured request logs: the per-request access
	// log at Info, slow draws at Warn. nil disables logging.
	Logger *slog.Logger
	// SlowDraw, when positive, logs any draw slower than it at Warn
	// with full attribution (request ID, key, generation, acceptance
	// rate). Zero disables slow-draw logging.
	SlowDraw time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints do not belong on an open port.
	EnablePprof bool
}

// Server is the HTTP handler of the serving subsystem. Create with
// New; it is safe for concurrent use.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	start   time.Time
	metrics serverMetrics
}

// New validates cfg, applies defaults, and returns a ready handler.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("server: Config.Registry is required")
	}
	if cfg.MaxT <= 0 {
		cfg.MaxT = DefaultMaxT
	}
	if cfg.MaxTJSON <= 0 {
		cfg.MaxTJSON = DefaultMaxTJSON
	}
	if cfg.MaxTJSON > cfg.MaxT {
		cfg.MaxTJSON = cfg.MaxT
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now(), metrics: newServerMetrics()}
	s.mux.HandleFunc("POST /v1/sample", s.handleSample)
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/engines", s.handleEngines)
	s.mux.HandleFunc("DELETE /v1/engines", s.handleEvict)
	s.mux.HandleFunc("POST /v1/snapshot/dump", s.handleSnapshotDump)
	s.mux.HandleFunc("POST /v1/snapshot/install", s.handleSnapshotInstall)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", obs.Handler(s.collectMetrics))
	if cfg.EnablePprof {
		obs.MountPprof(s.mux)
	}
	return s, nil
}

// ServeHTTP implements http.Handler: it threads the request ID
// through (accepting a caller-supplied one, minting otherwise, and
// echoing it on the response so clients can attribute errors), counts
// the outcome code, and emits the access log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := obs.EnsureRequestID(r)
	w.Header().Set(obs.RequestIDHeader, id)
	r = r.WithContext(obs.WithRequestID(r.Context(), id))
	rec := &obs.StatusRecorder{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	s.metrics.requests.Inc(outcomeCode(rec))
	if s.cfg.Logger != nil {
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.Status),
			slog.Duration("elapsed", time.Since(start)),
		)
	}
}

// outcomeCode classifies one finished response for srj_requests_total.
// Error paths stamp their exact code into ErrorCodeHeader; anything
// without one is classified by status class. A draw that fails after
// the 200 and first frame are on the wire counts as ok here — the
// mid-stream error frame is the client's signal, not HTTP's.
func outcomeCode(rec *obs.StatusRecorder) string {
	if code := rec.Header().Get(ErrorCodeHeader); code != "" {
		return code
	}
	switch {
	case rec.Status < http.StatusBadRequest:
		return "ok"
	case rec.Status < http.StatusInternalServerError:
		return CodeBadRequest
	default:
		return CodeInternal
	}
}

// MaxT reports the configured per-request sample cap.
func (s *Server) MaxT() int { return s.cfg.MaxT }

// SampleRequest is the body of POST /v1/sample.
type SampleRequest struct {
	// Dataset names the point-set pair to join; the set of valid
	// names is the registry builder's business (srjserver: built-in
	// generators plus -load files).
	Dataset string `json:"dataset"`
	// L is the window half-extent; must be positive and finite.
	L float64 `json:"l"`
	// Algorithm selects the sampler; empty means "bbst".
	Algorithm string `json:"algorithm,omitempty"`
	// Seed drives the engine's request streams. Requests with equal
	// keys share one engine, so equal seeds do NOT replay samples —
	// the seed selects an engine, and its stream advances per request.
	Seed uint64 `json:"seed,omitempty"`
	// DrawSeed, when nonzero, is the per-request stream seed: the
	// request draws from a stream seeded with it, so equal
	// (key, draw_seed) requests return identical samples regardless
	// of interleaved traffic. Zero keeps the engine's own advancing
	// sequence. Honored by both the JSON and the framed binary
	// transport.
	DrawSeed uint64 `json:"draw_seed,omitempty"`
	// T is the number of samples to draw; 0 < T <= the server's MaxT.
	T int `json:"t"`
	// Format selects the response encoding: "json" (default) or
	// "binary" (the framed stream of wire.go). An Accept header of
	// ContentTypeBinary also selects binary.
	Format string `json:"format,omitempty"`
}

// DefaultAlgorithm is the fleet-wide default algorithm name an empty
// Algorithm field resolves to — the single definition every tier's
// key normalization shares (SampleRequest.Key, UpdateRequest.Key,
// the router's ring, srj.Server.Apply), so the sample and update
// paths can never address different keys for the same request.
const DefaultAlgorithm = "bbst"

// NormalizeAlgorithm applies the fleet-wide default algorithm name.
func NormalizeAlgorithm(a string) string {
	if a == "" {
		return DefaultAlgorithm
	}
	return a
}

// Key returns the registry key the request addresses.
func (q SampleRequest) Key() registry.Key {
	return registry.Key{Dataset: q.Dataset, L: q.L, Algorithm: NormalizeAlgorithm(q.Algorithm), Seed: q.Seed}
}

// SampleResponse is the JSON body of a successful /v1/sample.
type SampleResponse struct {
	Count int         `json:"count"`
	Pairs []geom.Pair `json:"pairs"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSecs float64              `json:"uptime_secs"`
	MaxT       int                  `json:"max_t"`
	Registry   registry.Stats       `json:"registry"`
	Engines    []registry.EntryInfo `json:"engines"`
	// Stores lists the live dynamic stores (generation, delta
	// fraction, rebuild count per key) so the JSON surface and
	// /metrics never disagree. Empty on a purely static server.
	Stores []dynamic.StoreInfo `json:"stores,omitempty"`
}

// Machine-readable error codes carried in every non-2xx answer, so
// clients can branch on error kinds without parsing messages. The Go
// client maps them back onto the canonical sentinel errors (see
// APIError.Unwrap): the same errors.Is checks work against a local
// Engine and a remote server.
const (
	CodeBadRequest    = "bad_request"    // malformed request (engine.ErrBadRequest)
	CodeBadKey        = "bad_key"        // the key names nothing buildable (ErrBadKey)
	CodeSampleCap     = "sample_cap"     // t exceeds a configured cap (engine.ErrSampleCap)
	CodeEmptyJoin     = "empty_join"     // provably empty join (core.ErrEmptyJoin)
	CodeLowAcceptance = "low_acceptance" // rejection budget exhausted (core.ErrLowAcceptance)
	// CodeStaleGeneration reports a dataset generation that raced
	// past the request mid-flight (dynamic.ErrStaleGeneration). The
	// server retries internally; a client that still sees it can
	// simply retry — the condition is transient by construction.
	CodeStaleGeneration = "stale_generation"
	// CodeUpdateSequence reports an update ID the store could not
	// apply in order (dynamic.ErrUpdateSequence): too far ahead of the
	// last applied ID, or a gap whose predecessor never arrived. The
	// stamping sequencer (the router) re-probes the fleet and retries.
	CodeUpdateSequence = "update_sequence"
	CodeTimeout        = "timeout"  // request deadline exceeded
	CodeCanceled       = "canceled" // request context canceled
	CodeInternal       = "internal" // anything else
)

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// ErrorCodeHeader carries the machine-readable error code of a
// non-2xx answer as a response header, duplicating the body's code
// field. It exists for the serving tiers themselves: the outcome
// counter behind srj_requests_total reads it after the handler ran,
// without re-parsing the body it just wrote.
const ErrorCodeHeader = "X-SRJ-Error-Code"

// WriteError answers with a JSON error body carrying apiCode. It is
// exported (with StatusFor and CodeFor) so alternative serving fronts
// — the shard router's proxy — answer errors in the exact shape this
// server does, and one client understands every tier.
func WriteError(w http.ResponseWriter, status int, apiCode string, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ErrorCodeHeader, apiCode)
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...), Code: apiCode})
}

// StatusFor maps an error to the HTTP status that describes it.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadKey), errors.Is(err, registry.ErrInvalidKey),
		errors.Is(err, engine.ErrSampleCap), errors.Is(err, engine.ErrBadRequest),
		errors.Is(err, core.ErrNoParallelWithoutReplacement):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrEmptyJoin):
		// The key is well-formed but the join it names has no pairs
		// to sample: the request cannot be processed.
		return http.StatusUnprocessableEntity
	case errors.Is(err, dynamic.ErrStaleGeneration):
		// The dataset generation moved mid-request; the state the
		// client addressed conflicts with the store's. Retryable.
		return http.StatusConflict
	case errors.Is(err, dynamic.ErrUpdateSequence):
		// The update's ID conflicts with the store's sequence state.
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the code is for the access log only.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// codeSentinels is the single source of truth tying wire-level error
// codes to the canonical sentinel errors: CodeFor and sentinelFor are
// both derived from it, so the two directions cannot drift apart.
// Order matters twice over — CodeFor takes the first sentinel the
// error Is, and sentinelFor takes the first row carrying the code
// (the canonical sentinel of a code with several rows goes first).
var codeSentinels = []struct {
	code     string
	sentinel error
}{
	{CodeSampleCap, engine.ErrSampleCap},
	{CodeBadRequest, engine.ErrBadRequest},
	// A parallel-draw request without replacement is a client mistake
	// (the combination is unsupported by contract, see
	// core.ErrNoParallelWithoutReplacement); no serving path draws in
	// parallel today, but the mapping is declared so the sentinel
	// cannot silently decay to "internal" if one ever does.
	{CodeBadRequest, core.ErrNoParallelWithoutReplacement},
	{CodeBadKey, ErrBadKey},
	{CodeBadKey, registry.ErrInvalidKey},
	{CodeEmptyJoin, core.ErrEmptyJoin},
	{CodeLowAcceptance, core.ErrLowAcceptance},
	{CodeStaleGeneration, dynamic.ErrStaleGeneration},
	{CodeUpdateSequence, dynamic.ErrUpdateSequence},
	{CodeTimeout, context.DeadlineExceeded},
	{CodeCanceled, context.Canceled},
}

// CodeFor maps an error to its wire-level error code.
func CodeFor(err error) string {
	for _, cs := range codeSentinels {
		if errors.Is(err, cs.sentinel) {
			return cs.code
		}
	}
	return CodeInternal
}

// sentinelFor inverts CodeFor: the canonical sentinel a wire-level
// error code names, or nil for unknown/internal codes. Shared by
// APIError (pre-stream HTTP errors) and StreamError (mid-stream
// error frames).
func sentinelFor(code string) error {
	for _, cs := range codeSentinels {
		if cs.code == code {
			return cs.sentinel
		}
	}
	return nil
}

// DecodeSampleRequest decodes and validates a POST /v1/sample body —
// the one validation srjserver's handler and the router proxy both
// apply, kept as a single function so the tiers cannot drift apart.
// maxT <= 0 skips the sample cap (the router defers capping to its
// backends); maxTJSON caps the buffering JSON transport. On failure
// the error response (status, code, message) is already written and
// ok is false.
func DecodeSampleRequest(w http.ResponseWriter, r *http.Request, maxT, maxTJSON int) (req SampleRequest, binaryOut, ok bool) {
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return req, false, false
	}
	if req.Dataset == "" {
		WriteError(w, http.StatusBadRequest, CodeBadKey, "dataset is required")
		return req, false, false
	}
	// Non-positive t is the client's mistake whatever the transport:
	// both formats answer 400 here, before any engine is resolved.
	if req.T <= 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "t must be positive, got %d", req.T)
		return req, false, false
	}
	if maxT > 0 && req.T > maxT {
		WriteError(w, http.StatusBadRequest, CodeSampleCap, "t=%d exceeds the server cap %d", req.T, maxT)
		return req, false, false
	}
	// An explicit body format wins; the Accept header is only a
	// fallback for clients that leave the field empty.
	if req.Format != "" && req.Format != "json" && req.Format != "binary" {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "unknown format %q (json or binary)", req.Format)
		return req, false, false
	}
	binaryOut = req.Format == "binary" ||
		(req.Format == "" && r.Header.Get("Accept") == ContentTypeBinary)
	if !binaryOut && req.T > maxTJSON {
		WriteError(w, http.StatusBadRequest, CodeSampleCap,
			"t=%d exceeds the JSON transport cap %d; use format \"binary\" for bulk transfers",
			req.T, maxTJSON)
		return req, false, false
	}
	return req, binaryOut, true
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	req, binaryOut, ok := DecodeSampleRequest(w, r, s.cfg.MaxT, s.cfg.MaxTJSON)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	key, eng, err := s.resolveEngine(ctx, req)
	if err != nil {
		WriteError(w, StatusFor(err), CodeFor(err), "building engine %s: %v", req.Key(), err)
		return
	}
	dreq := engine.Request{T: req.T, Seed: req.DrawSeed}
	start := time.Now()
	var samples int
	if binaryOut {
		samples, err = s.streamBinary(ctx, w, eng, dreq)
	} else {
		samples, err = s.respondJSON(ctx, w, eng, dreq)
	}
	elapsed := time.Since(start)
	// One histogram observation per request, after the draw — never
	// inside the sampler's rejection loop. The algorithm label comes
	// from the resolved key, whose algorithm set is bounded.
	s.metrics.drawHist.Observe(key.Algorithm, elapsed.Seconds())
	s.metrics.drawSamples.Add(key.Algorithm, uint64(samples))
	if s.cfg.Logger != nil && s.cfg.SlowDraw > 0 && elapsed >= s.cfg.SlowDraw {
		attrs := []slog.Attr{
			slog.String("request_id", obs.RequestIDFrom(r.Context())),
			slog.String("dataset", req.Dataset),
			slog.String("algorithm", key.Algorithm),
			slog.Uint64("generation", key.Generation),
			slog.Int("t", req.T),
			slog.Int("samples", samples),
			slog.Duration("elapsed", elapsed),
			slog.Float64("acceptance_rate", eng.Stats().AcceptanceRate()),
		}
		if err != nil {
			attrs = append(attrs, slog.String("error", err.Error()))
		}
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelWarn, "slow draw", attrs...)
	}
}

// respondJSON draws all requested samples (bounded by MaxTJSON), then
// encodes one JSON body. Drawing goes through the engine's
// context-aware DrawFunc, so the deadline is honored between chunks;
// the response write gets its own deadline so a client that stops
// reading cannot pin the handler.
func (s *Server) respondJSON(ctx context.Context, w http.ResponseWriter, eng *engine.Engine, req engine.Request) (int, error) {
	pairs := make([]geom.Pair, 0, req.T)
	err := eng.DrawFunc(ctx, req, func(batch []geom.Pair) error {
		pairs = append(pairs, batch...)
		return nil
	})
	if err != nil {
		WriteError(w, StatusFor(err), CodeFor(err), "sampling: %v", err)
		return len(pairs), err
	}
	w.Header().Set("Content-Type", "application/json")
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(s.cfg.Timeout))
	json.NewEncoder(w).Encode(SampleResponse{Count: len(pairs), Pairs: pairs})
	return len(pairs), nil
}

// streamBinary streams the requested samples as framed chunks,
// flushing per chunk, in constant memory. Errors after the first
// chunk arrive as an in-stream error frame (the 200 status is already
// on the wire). The engine's DrawFunc checks ctx between batches, and
// each frame write gets a fresh deadline: a client making progress
// can stream forever, but one that stops reading blocks our Write,
// trips the deadline, and frees the handler and its sampler clone —
// the between-batch ctx check alone never fires while Write is stuck.
func (s *Server) streamBinary(ctx context.Context, w http.ResponseWriter, eng *engine.Engine, req engine.Request) (int, error) {
	w.Header().Set("Content-Type", ContentTypeBinary)
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Now().Add(s.cfg.Timeout))
	if err := WriteStreamHeader(w); err != nil {
		return 0, err
	}
	flusher, _ := w.(http.Flusher)
	var scratch []byte
	delivered := 0
	err := eng.DrawFunc(ctx, req, func(batch []geom.Pair) error {
		rc.SetWriteDeadline(time.Now().Add(s.cfg.Timeout))
		var werr error
		scratch, werr = WriteStreamFrame(w, batch, scratch)
		if werr != nil {
			return werr
		}
		delivered += len(batch)
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		WriteStreamError(w, CodeFor(err), err.Error())
		return delivered, err
	}
	WriteStreamEnd(w)
	return delivered, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeSecs: time.Since(s.start).Seconds(),
		MaxT:       s.cfg.MaxT,
		Registry:   s.cfg.Registry.Stats(),
		Engines:    s.cfg.Registry.Entries(),
	}
	if s.cfg.Stores != nil {
		resp.Stores = s.cfg.Stores.Infos()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.cfg.Registry.Entries())
}

// EvictResponse is the body of DELETE /v1/engines.
type EvictResponse struct {
	Evicted bool `json:"evicted"` // false when no engine was resident
}

// handleEvict drops one key's resident engines — every generation of
// it, so a mutated dataset's history of view engines goes with the
// static entry. The body is a registry key: {"dataset":..., "l":...,
// "algorithm":..., "seed":...}; the default algorithm rule of
// SampleRequest applies.
func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	req, ok := DecodeEvictRequest(w, r)
	if !ok {
		return
	}
	// Generation MaxUint64 matches every real generation, the plain
	// gen-0 static entry included — one call evicts the key's whole
	// history.
	all := req.Key()
	all.Generation = ^uint64(0)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(EvictResponse{Evicted: s.cfg.Registry.EvictOlder(all) > 0})
}

// DecodeEvictRequest decodes and validates a DELETE /v1/engines body
// — shared with the router proxy, like DecodeSampleRequest, so the
// tiers answer identically. On failure the error response is already
// written and ok is false.
func DecodeEvictRequest(w http.ResponseWriter, r *http.Request) (req SampleRequest, ok bool) {
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return req, false
	}
	if req.Dataset == "" {
		WriteError(w, http.StatusBadRequest, CodeBadKey, "dataset is required")
		return req, false
	}
	return req, true
}

// handleHealthz is liveness plus one degradation check: a store whose
// persister is failing (disk full, permissions) still serves reads
// from memory, but it can no longer bound its recovery time — so the
// health answer flips to 503 and the router's prober takes the shard
// out of the healthy read set instead of letting it degrade silently.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Stores != nil {
		if key, err := s.cfg.Stores.FirstPersistErr(); err != nil {
			WriteError(w, http.StatusServiceUnavailable, CodeInternal,
				"degraded: store %s cannot persist: %v", key, err)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
