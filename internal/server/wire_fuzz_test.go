package server

// Fuzzing the framed binary wire decoder. readWireStream consumes
// bytes straight off the network from whatever claims to be an
// srjserver — a shard router makes that "whatever" a fleet — so it
// must hold two properties against arbitrary input: never panic, and
// never report success for a stream that did not end with an explicit
// clean-end frame (a truncated stream is an error, not a short read).

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/geom"
)

// fuzzPairs builds a deterministic batch of n valid pairs.
func fuzzPairs(n int) []geom.Pair {
	out := make([]geom.Pair, n)
	for i := range out {
		out[i] = geom.Pair{
			R: geom.Point{ID: int32(i), X: float64(i), Y: float64(2 * i)},
			S: geom.Point{ID: int32(i + 1), X: float64(i) + 0.5, Y: float64(2*i) - 0.5},
		}
	}
	return out
}

// encodeStream writes a complete, valid v2 stream: header, the given
// frames, and a clean end.
func encodeStream(t testing.TB, frames ...[]geom.Pair) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteStreamHeader(&buf); err != nil {
		t.Fatal(err)
	}
	var scratch []byte
	var err error
	for _, f := range frames {
		if scratch, err = WriteStreamFrame(&buf, f, scratch); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteStreamEnd(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrames drives readWireStream with arbitrary bytes. The
// corpus seeds every frame kind the format defines — data frames, the
// clean end, an error frame, truncations, and corrupt headers — so
// the fuzzer starts from structurally interesting inputs.
func FuzzDecodeFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a stream at all"))
	f.Add(encodeStream(f))                                // header + end only
	f.Add(encodeStream(f, fuzzPairs(1)))                  // one tiny frame
	f.Add(encodeStream(f, fuzzPairs(100), fuzzPairs(37))) // two frames
	valid := encodeStream(f, fuzzPairs(5))
	f.Add(valid[:len(valid)-4])  // missing the end frame
	f.Add(valid[:len(valid)-30]) // truncated mid-frame
	f.Add(valid[:3])             // truncated header
	{
		var buf bytes.Buffer
		WriteStreamHeader(&buf)
		WriteStreamFrame(&buf, fuzzPairs(3), nil)
		WriteStreamError(&buf, CodeLowAcceptance, "sampler gave up")
		f.Add(buf.Bytes()) // error frame after data
	}
	{
		bad := append([]byte{}, valid...)
		bad[4] = 99 // future version
		f.Add(bad)
		huge := append([]byte{}, valid[:5]...)
		huge = append(huge, 0xFE, 0xFF, 0xFF, 0xFF) // oversized frame count
		f.Add(huge)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bytes.NewReader(data)
		delivered := 0
		n, err := readWireStream(rd, func(batch []geom.Pair) error {
			if len(batch) == 0 || len(batch) > MaxFramePairs {
				t.Fatalf("callback got a %d-pair batch", len(batch))
			}
			delivered += len(batch)
			return nil
		})
		if n != delivered {
			t.Fatalf("reported %d pairs, delivered %d", n, delivered)
		}
		if err != nil {
			return
		}
		// A clean decode promises a complete stream ending in an
		// explicit end frame. When the decoder consumed the whole
		// input (no trailing bytes it rightly ignored), chopping any
		// suffix off must therefore break it. This is the no-short-
		// reads property: truncation can never masquerade as success.
		if len(data) < 9 { // header + end frame is the minimum
			t.Fatalf("decode succeeded on %d bytes", len(data))
		}
		if rd.Len() > 0 {
			return // input = stream + trailing bytes; prefixes may still hold a full stream
		}
		for _, cut := range []int{1, 2, 5} {
			if cut >= len(data) {
				continue
			}
			if _, terr := readWireStream(bytes.NewReader(data[:len(data)-cut]), nil); terr == nil {
				t.Fatalf("decode succeeded on input truncated by %d bytes", cut)
			}
		}
	})
}

// TestWireTruncationEveryPrefix is the deterministic core of the
// truncation property: every strict prefix of a valid stream must
// yield an error — never a silent short read — because only the
// explicit end frame distinguishes "done" from "the connection died".
func TestWireTruncationEveryPrefix(t *testing.T) {
	full := encodeStream(t, fuzzPairs(7), fuzzPairs(3))
	want := 10
	n, err := readWireStream(bytes.NewReader(full), nil)
	if err != nil || n != want {
		t.Fatalf("intact stream: n=%d err=%v", n, err)
	}
	for cut := 0; cut < len(full); cut++ {
		n, err := readWireStream(bytes.NewReader(full[:cut]), nil)
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly (%d pairs)", cut, len(full), n)
		}
		if n > want {
			t.Fatalf("prefix of %d bytes over-delivered %d pairs", cut, n)
		}
	}
	// Trailing garbage after the end frame is ignored by design (the
	// reader stops at the end frame); assert that explicitly so the
	// truncation loop above cannot silently rely on the opposite.
	n, err = readWireStream(bytes.NewReader(append(append([]byte{}, full...), "junk"...)), nil)
	if err != nil || n != want {
		t.Fatalf("trailing bytes broke a complete stream: n=%d err=%v", n, err)
	}
}

// TestWireCorruptFrames: targeted corruptions all error with a
// diagnosable message rather than panicking or misdecoding.
func TestWireCorruptFrames(t *testing.T) {
	valid := encodeStream(t, fuzzPairs(4))
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"future version", func(b []byte) []byte { b[4] = 99; return b }},
		{"oversized count", func(b []byte) []byte {
			b[5], b[6], b[7], b[8] = 0xFF, 0xFF, 0xFF, 0x7F
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.corrupt(append([]byte{}, valid...))
			if _, err := readWireStream(bytes.NewReader(b), nil); err == nil {
				t.Fatal("corrupt stream decoded cleanly")
			}
		})
	}
	t.Run("oversized error frame", func(t *testing.T) {
		var buf bytes.Buffer
		WriteStreamHeader(&buf)
		buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // error frame marker
		buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // absurd code length
		if _, err := readWireStream(bytes.NewReader(buf.Bytes()), nil); err == nil ||
			!bytes.Contains([]byte(err.Error()), []byte("oversized")) {
			t.Fatalf("err = %v, want oversized error frame", err)
		}
	})
	t.Run("error frame code round-trips", func(t *testing.T) {
		var buf bytes.Buffer
		WriteStreamHeader(&buf)
		WriteStreamError(&buf, CodeSampleCap, fmt.Sprintf("t=%d too big", 1<<20))
		_, err := readWireStream(bytes.NewReader(buf.Bytes()), nil)
		var serr *StreamError
		if !errors.As(err, &serr) || serr.Code != CodeSampleCap {
			t.Fatalf("err = %v, want StreamError with code %q", err, CodeSampleCap)
		}
	})
}
