package alias

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func mustWeights(t *testing.T, ws []float64) *Weights {
	t.Helper()
	w, err := NewWeights(ws)
	if err != nil {
		t.Fatalf("NewWeights(%v): %v", ws, err)
	}
	return w
}

func weightsVec(w *Weights) []float64 {
	out := make([]float64, w.Len())
	for i := range out {
		out[i] = w.Get(i)
	}
	return out
}

func TestWeightsBasics(t *testing.T) {
	w := mustWeights(t, []float64{1, 0, 3, 2, 0.5})
	if w.Len() != 5 {
		t.Fatalf("Len = %d, want 5", w.Len())
	}
	if got, want := w.Total(), 6.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Total = %g, want %g", got, want)
	}
	for i, want := range []float64{1, 0, 3, 2, 0.5} {
		if got := w.Get(i); got != want {
			t.Fatalf("Get(%d) = %g, want %g", i, got, want)
		}
	}
	if w.Get(-1) != 0 || w.Get(5) != 0 {
		t.Fatalf("out-of-range Get should be 0")
	}
}

func TestWeightsEmpty(t *testing.T) {
	w := mustWeights(t, nil)
	if w.Len() != 0 || w.Total() != 0 {
		t.Fatalf("empty Weights: Len=%d Total=%g", w.Len(), w.Total())
	}
	w2, err := w.Append(4)
	if err != nil {
		t.Fatalf("Append on empty: %v", err)
	}
	if w2.Len() != 1 || w2.Total() != 4 || w2.Get(0) != 4 {
		t.Fatalf("after Append: Len=%d Total=%g Get(0)=%g", w2.Len(), w2.Total(), w2.Get(0))
	}
	// The original version is untouched.
	if w.Len() != 0 || w.Total() != 0 {
		t.Fatalf("Append mutated its receiver")
	}
}

func TestWeightsInvalidInputs(t *testing.T) {
	if _, err := NewWeights([]float64{1, -2}); err == nil {
		t.Fatalf("NewWeights accepted a negative weight")
	}
	if _, err := NewWeights([]float64{math.NaN()}); err == nil {
		t.Fatalf("NewWeights accepted NaN")
	}
	w := mustWeights(t, []float64{1, 2})
	if _, err := w.Set(2, 1); err == nil {
		t.Fatalf("Set accepted an out-of-range index")
	}
	if _, err := w.Set(0, -1); err == nil {
		t.Fatalf("Set accepted a negative weight")
	}
	if _, err := w.Set(0, math.Inf(1)); err == nil {
		t.Fatalf("Set accepted +Inf")
	}
	if _, err := w.Append(math.NaN()); err == nil {
		t.Fatalf("Append accepted NaN")
	}
}

// TestWeightsPersistence pins the headline property: Set and Append
// return new versions and never disturb old ones, even across capacity
// growth.
func TestWeightsPersistence(t *testing.T) {
	versions := []*Weights{mustWeights(t, []float64{1, 2, 3})}
	expect := [][]float64{{1, 2, 3}}
	r := rng.New(7)
	cur := versions[0]
	vec := []float64{1, 2, 3}
	for step := 0; step < 200; step++ {
		var err error
		if r.Bool(0.5) && len(vec) > 0 {
			i := r.Intn(len(vec))
			v := math.Floor(r.Float64()*8) / 2
			cur, err = cur.Set(i, v)
			if err != nil {
				t.Fatalf("step %d Set: %v", step, err)
			}
			vec = append([]float64(nil), vec...)
			vec[i] = v
		} else {
			v := math.Floor(r.Float64()*8) / 2
			cur, err = cur.Append(v)
			if err != nil {
				t.Fatalf("step %d Append: %v", step, err)
			}
			vec = append(append([]float64(nil), vec...), v)
		}
		versions = append(versions, cur)
		expect = append(expect, vec)
	}
	for vi, w := range versions {
		got := weightsVec(w)
		want := expect[vi]
		if len(got) != len(want) {
			t.Fatalf("version %d: len %d, want %d", vi, len(got), len(want))
		}
		total := 0.0
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("version %d: slot %d = %g, want %g", vi, i, got[i], want[i])
			}
			total += want[i]
		}
		if math.Abs(w.Total()-total) > 1e-9 {
			t.Fatalf("version %d: Total = %g, want %g", vi, w.Total(), total)
		}
	}
}

// TestWeightsSampleDistribution chi-squares the sampler against the
// weight vector, including zero-weight holes that must never be drawn.
func TestWeightsSampleDistribution(t *testing.T) {
	ws := []float64{5, 0, 1, 3, 0, 2, 9, 0.25}
	w := mustWeights(t, ws)
	r := rng.New(42)
	const draws = 200000
	counts := make([]int, len(ws))
	for i := 0; i < draws; i++ {
		counts[w.Sample(r)]++
	}
	total := w.Total()
	chi2 := 0.0
	dof := 0
	for i, wi := range ws {
		if wi == 0 {
			if counts[i] != 0 {
				t.Fatalf("zero-weight slot %d drawn %d times", i, counts[i])
			}
			continue
		}
		exp := float64(draws) * wi / total
		d := float64(counts[i]) - exp
		chi2 += d * d / exp
		dof++
	}
	// 5 degrees of freedom (6 positive slots); 99.9th percentile ~ 20.5.
	if chi2 > 25 {
		t.Fatalf("chi-square %g too large (counts %v)", chi2, counts)
	}
}

// TestWeightsSampleAfterMutation verifies the distribution tracks the
// tip after churn that exercises Set-to-zero, revive, and Append.
func TestWeightsSampleAfterMutation(t *testing.T) {
	w := mustWeights(t, []float64{1, 1, 1, 1})
	var err error
	for i := 0; i < 60; i++ {
		w, err = w.Append(0)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Kill the original four, give mass to three appended slots.
	for i := 0; i < 4; i++ {
		w, err = w.Set(i, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	hot := map[int]float64{17: 2, 40: 6, 63: 4}
	for _, i := range []int{17, 40, 63} {
		w, err = w.Set(i, hot[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	r := rng.New(9)
	const draws = 120000
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		counts[w.Sample(r)]++
	}
	for i := range counts {
		if _, ok := hot[i]; !ok {
			t.Fatalf("slot %d drawn %d times but has zero weight", i, counts[i])
		}
	}
	for i, v := range hot {
		exp := float64(draws) * v / 12
		if d := math.Abs(float64(counts[i]) - exp); d > 5*math.Sqrt(exp) {
			t.Fatalf("slot %d: %d draws, expected ~%g", i, counts[i], exp)
		}
	}
}

func TestWeightsSampleZeroTotalPanics(t *testing.T) {
	w := mustWeights(t, []float64{0, 0})
	defer func() {
		if recover() == nil {
			t.Fatalf("Sample on zero-total Weights did not panic")
		}
	}()
	w.Sample(rng.New(1))
}

func TestWeightsDeterminism(t *testing.T) {
	w := mustWeights(t, []float64{3, 1, 4, 1, 5, 9, 2, 6})
	a, b := rng.New(11), rng.New(11)
	for i := 0; i < 1000; i++ {
		if x, y := w.Sample(a), w.Sample(b); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestWeightsAppendGrowth(t *testing.T) {
	w := mustWeights(t, nil)
	var err error
	for i := 0; i < 300; i++ {
		w, err = w.Append(float64(i % 7))
		if err != nil {
			t.Fatal(err)
		}
		if w.Len() != i+1 {
			t.Fatalf("Len = %d after %d appends", w.Len(), i+1)
		}
	}
	sum := 0.0
	for i := 0; i < 300; i++ {
		want := float64(i % 7)
		if got := w.Get(i); got != want {
			t.Fatalf("Get(%d) = %g, want %g", i, got, want)
		}
		sum += want
	}
	if math.Abs(w.Total()-sum) > 1e-9 {
		t.Fatalf("Total = %g, want %g", w.Total(), sum)
	}
}

func BenchmarkWeightsSet(b *testing.B) {
	ws := make([]float64, 1<<16)
	for i := range ws {
		ws[i] = 1
	}
	w, _ := NewWeights(ws)
	r := rng.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ = w.Set(r.Intn(len(ws)), r.Float64())
	}
}

func BenchmarkWeightsSample(b *testing.B) {
	ws := make([]float64, 1<<16)
	for i := range ws {
		ws[i] = 1 + float64(i%13)
	}
	w, _ := NewWeights(ws)
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Sample(r)
	}
}
