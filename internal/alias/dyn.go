package alias

// Weights is the mutable sibling of Table: a persistent (path-copied)
// binary sum tree over a growable weight vector. Where Walker's table
// answers O(1) draws over a frozen vector and must be rebuilt in O(n)
// after any change, Weights trades the draw for O(log n) and gains
// O(log n) point updates that never touch the rest of the structure —
// Set and Append return a NEW version sharing every untouched node
// with the old one, so concurrent readers keep sampling their version
// wait-free while a single writer advances the tip.
//
// internal/dynamic uses this for the per-point µ(r) weights of a
// mutated store: repairing the weight of the handful of points an
// update batch actually affects costs O(ops · log n) instead of the
// O(n) re-count-and-rebuild the delta overlay used to pay. A freshly
// built (or freshly compacted) store still serves through the Walker
// table — its O(1) draws and RNG stream are part of the byte-identity
// contract with the bulk engine — and is "unfrozen" into a Weights
// tree by its first in-place update.

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// wnode is one sum-tree node. Leaves (span 1) keep the weight in sum
// and no children; a nil child stands for an all-zero subtree, which
// is what makes sparsely-appended capacity free.
type wnode struct {
	sum         float64
	left, right *wnode
}

// Weights is one immutable version of the weight vector. The zero
// value is an empty vector; NewWeights builds one from a slice. All
// methods are read-only on the receiver: Set and Append return the
// successor version.
type Weights struct {
	root *wnode
	n    int // logical length of the vector
	span int // leaf span of root: smallest power of two >= n (0 when empty)
}

// NewWeights builds version zero over the given vector in O(n).
// Negative and NaN weights are rejected like Table's.
func NewWeights(weights []float64) (*Weights, error) {
	for i, w := range weights {
		if w < 0 || w != w {
			return nil, fmt.Errorf("alias: weight %d is invalid (%g)", i, w)
		}
	}
	w := &Weights{n: len(weights)}
	if w.n == 0 {
		return w, nil
	}
	w.span = 1
	for w.span < w.n {
		w.span *= 2
	}
	w.root = buildWNode(weights, w.span)
	return w, nil
}

// buildWNode builds the subtree covering weights padded to span.
func buildWNode(weights []float64, span int) *wnode {
	if len(weights) == 0 {
		return nil
	}
	if span == 1 {
		return &wnode{sum: weights[0]}
	}
	half := span / 2
	var l, r *wnode
	if len(weights) <= half {
		l = buildWNode(weights, half)
	} else {
		l = buildWNode(weights[:half], half)
		r = buildWNode(weights[half:], half)
	}
	u := &wnode{left: l, right: r}
	if l != nil {
		u.sum += l.sum
	}
	if r != nil {
		u.sum += r.sum
	}
	return u
}

// Len returns the logical length of the vector.
func (w *Weights) Len() int { return w.n }

// Total returns the sum of all weights.
func (w *Weights) Total() float64 {
	if w.root == nil {
		return 0
	}
	return w.root.sum
}

// Get returns weight i (0 when i is out of range — appended capacity
// is implicitly zero).
func (w *Weights) Get(i int) float64 {
	if i < 0 || i >= w.n {
		return 0
	}
	u, span := w.root, w.span
	for span > 1 {
		if u == nil {
			return 0
		}
		span /= 2
		if i < span {
			u = u.left
		} else {
			i -= span
			u = u.right
		}
	}
	if u == nil {
		return 0
	}
	return u.sum
}

// Set returns a new version with weight i replaced by v, path-copying
// O(log n) nodes. i must be in [0, Len()); v must be finite and
// non-negative.
func (w *Weights) Set(i int, v float64) (*Weights, error) {
	if i < 0 || i >= w.n {
		return nil, fmt.Errorf("alias: Set index %d out of range [0,%d)", i, w.n)
	}
	if v < 0 || v != v || math.IsInf(v, 0) {
		return nil, fmt.Errorf("alias: Set weight is invalid (%g)", v)
	}
	nw := &Weights{n: w.n, span: w.span}
	nw.root = setWNode(w.root, w.span, i, v)
	return nw, nil
}

// setWNode path-copies the nodes from u down to leaf i.
func setWNode(u *wnode, span, i int, v float64) *wnode {
	if span == 1 {
		return &wnode{sum: v}
	}
	nu := &wnode{}
	if u != nil {
		*nu = *u
	}
	half := span / 2
	if i < half {
		nu.left = setWNode(nu.left, half, i, v)
	} else {
		nu.right = setWNode(nu.right, half, i-half, v)
	}
	nu.sum = 0
	if nu.left != nil {
		nu.sum += nu.left.sum
	}
	if nu.right != nil {
		nu.sum += nu.right.sum
	}
	return nu
}

// Append returns a new version with v appended at index Len(). When
// the tree is at capacity a new root level is added (the old root
// becomes the left child), so appends stay O(log n) and never copy
// the existing leaves.
func (w *Weights) Append(v float64) (*Weights, error) {
	if v < 0 || v != v || math.IsInf(v, 0) {
		return nil, fmt.Errorf("alias: Append weight is invalid (%g)", v)
	}
	nw := &Weights{root: w.root, n: w.n, span: w.span}
	if nw.span == 0 {
		nw.span = 1
	}
	for nw.n >= nw.span {
		nw.root = &wnode{sum: nw.root.sumOrZero(), left: nw.root}
		nw.span *= 2
	}
	nw.n++
	nw.root = setWNode(nw.root, nw.span, nw.n-1, v)
	return nw, nil
}

func (u *wnode) sumOrZero() float64 {
	if u == nil {
		return 0
	}
	return u.sum
}

// Sample draws an index with probability proportional to its weight in
// O(log n): one uniform variate, then a descent by partial sums. It
// panics when Total() is zero (mirroring Small.Sample on an empty
// table) — callers gate on Total() like they gate on ErrNoWeight.
func (w *Weights) Sample(r *rng.RNG) int {
	if w.root == nil || !(w.root.sum > 0) {
		panic("alias: Sample on zero-total Weights")
	}
	u := r.Float64() * w.root.sum
	node, span, idx := w.root, w.span, 0
	for span > 1 {
		span /= 2
		l, rt := node.left, node.right
		switch {
		case rt == nil:
			node = l
		case l == nil:
			idx += span
			node = rt
		case u < l.sum && l.sum > 0:
			node = l
		case rt.sum > 0:
			// Rounding can push u to (or a hair past) the left sum even
			// when the draw "belongs" left; the measure of that boundary
			// is zero, so routing it right keeps the distribution exact.
			u -= l.sum
			idx += span
			node = rt
		default:
			node = l
		}
	}
	if idx >= w.n {
		// Unreachable for well-formed trees (all mass lies below n);
		// defend against pathological rounding anyway.
		idx = w.n - 1
	}
	return idx
}

// SizeBytes estimates the footprint of one fully-materialized version
// (~2 nodes per slot at 32 bytes each). Shared structure across
// versions makes the true incremental cost of a new version O(log n);
// this reports the standalone size, which is what a store owning the
// tip should charge itself.
func (w *Weights) SizeBytes() int { return 64 * w.n }
