// Package alias implements Walker's alias method for weighted random
// sampling, using Vose's O(n) construction. Given n non-negative
// weights, a Table draws index i with probability w_i / Σw in O(1)
// worst-case time per draw.
//
// Both baseline algorithms and the BBST algorithm of the paper rely on
// this structure: once per query an alias table is built over the
// per-point upper bounds µ(r), and each of the t sampling iterations
// performs a single O(1) weighted draw from it.
package alias

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// Table is an immutable alias table over a fixed weight vector.
type Table struct {
	prob  []float64 // probability of keeping column i (scaled to [0,1])
	alias []int32   // fallback index when the coin flip rejects column i
	total float64   // sum of the input weights
}

// ErrNoWeight is returned when the weight vector is empty or sums to
// zero; no distribution can be defined in that case.
var ErrNoWeight = errors.New("alias: weights are empty or sum to zero")

// New builds an alias table from the given weights in O(n) time.
// Negative or NaN weights are rejected.
func New(weights []float64) (*Table, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrNoWeight
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || w != w {
			return nil, fmt.Errorf("alias: weight %d is invalid (%g)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, ErrNoWeight
	}

	t := &Table{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		total: total,
	}

	// Vose's method: classify scaled weights into "small" (< 1) and
	// "large" (>= 1) worklists, then repeatedly pair one of each.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	scale := float64(n) / total
	for i, w := range weights {
		scaled[i] = w * scale
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Remaining entries should be exactly 1 up to floating error.
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t, nil
}

// MustNew is New but panics on error; for weights known to be valid.
func MustNew(weights []float64) *Table {
	t, err := New(weights)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of weights the table was built over.
func (t *Table) Len() int { return len(t.prob) }

// Total returns the sum of the input weights.
func (t *Table) Total() float64 { return t.total }

// Sample draws an index with probability proportional to its weight.
func (t *Table) Sample(r *rng.RNG) int {
	i := r.Intn(len(t.prob))
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// SizeBytes reports the memory footprint of the table, used by the
// memory-usage experiment (Fig. 4).
func (t *Table) SizeBytes() int {
	return len(t.prob)*8 + len(t.alias)*4 + 8
}

// Small is a fixed-capacity alias table specialized for the per-point
// cell distribution A_r of Algorithm 1: every r has at most nine
// overlapping cells, so the table fits in a small inline array and
// avoids per-query heap allocation. The zero value is empty; call
// Reset to (re)build it.
type Small struct {
	prob  [9]float64
	alias [9]int8
	n     int8
	total float64
}

// Reset rebuilds the table in place over weights[:n], n <= 9. Zero
// total leaves the table empty (Len() == 0).
func (s *Small) Reset(weights []float64) {
	if len(weights) > 9 {
		panic("alias: Small supports at most 9 weights")
	}
	s.n = int8(len(weights))
	s.total = 0
	for _, w := range weights {
		s.total += w
	}
	if s.total <= 0 {
		s.n = 0
		return
	}
	var scaled [9]float64
	var small, large [9]int8
	ns, nl := 0, 0
	scale := float64(len(weights)) / s.total
	for i, w := range weights {
		scaled[i] = w * scale
		if scaled[i] < 1 {
			small[ns] = int8(i)
			ns++
		} else {
			large[nl] = int8(i)
			nl++
		}
	}
	for ns > 0 && nl > 0 {
		ns--
		sm := small[ns]
		nl--
		lg := large[nl]
		s.prob[sm] = scaled[sm]
		s.alias[sm] = lg
		scaled[lg] -= 1 - scaled[sm]
		if scaled[lg] < 1 {
			small[ns] = lg
			ns++
		} else {
			large[nl] = lg
			nl++
		}
	}
	for i := 0; i < nl; i++ {
		s.prob[large[i]] = 1
		s.alias[large[i]] = large[i]
	}
	for i := 0; i < ns; i++ {
		s.prob[small[i]] = 1
		s.alias[small[i]] = small[i]
	}
}

// Len returns the number of weights in the table (0 when empty).
func (s *Small) Len() int { return int(s.n) }

// Total returns the sum of the weights the table was built over.
func (s *Small) Total() float64 { return s.total }

// Sample draws an index in [0, Len()) proportionally to its weight.
// It panics when the table is empty.
func (s *Small) Sample(r *rng.RNG) int {
	i := r.Intn(int(s.n))
	if r.Float64() < s.prob[i] {
		return i
	}
	return int(s.alias[i])
}

// Cumulative is the binary-search alternative to the alias method:
// O(n) build like the alias table, but O(log n) per draw instead of
// O(1). The paper picks Walker's method for its O(1) draws; this type
// exists so the ablation benchmarks can quantify that choice.
type Cumulative struct {
	prefix []float64 // prefix[i] = sum of weights[0..i]
}

// NewCumulative builds the prefix-sum sampler. The same weight rules
// as New apply.
func NewCumulative(weights []float64) (*Cumulative, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrNoWeight
	}
	c := &Cumulative{prefix: make([]float64, n)}
	total := 0.0
	for i, w := range weights {
		if w < 0 || w != w {
			return nil, fmt.Errorf("alias: weight %d is invalid (%g)", i, w)
		}
		total += w
		c.prefix[i] = total
	}
	if total <= 0 {
		return nil, ErrNoWeight
	}
	return c, nil
}

// Len returns the number of weights.
func (c *Cumulative) Len() int { return len(c.prefix) }

// Total returns the sum of the weights.
func (c *Cumulative) Total() float64 { return c.prefix[len(c.prefix)-1] }

// Sample draws an index proportionally to its weight in O(log n).
func (c *Cumulative) Sample(r *rng.RNG) int {
	u := r.Float64() * c.Total()
	lo, hi := 0, len(c.prefix)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.prefix[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SizeBytes reports the structure footprint.
func (c *Cumulative) SizeBytes() int { return 8 * len(c.prefix) }
