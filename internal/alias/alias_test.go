package alias

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func chi2(counts []int, weights []float64, draws int) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	stat := 0.0
	for i, c := range counts {
		expected := float64(draws) * weights[i] / total
		if expected == 0 {
			if c != 0 {
				return math.Inf(1)
			}
			continue
		}
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat
}

func TestNewErrors(t *testing.T) {
	tests := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"all zero", []float64{0, 0, 0}},
		{"negative", []float64{1, -1, 2}},
		{"nan", []float64{1, math.NaN()}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.weights); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(nil)
}

func TestSingleWeight(t *testing.T) {
	tab := MustNew([]float64{5})
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if got := tab.Sample(r); got != 0 {
			t.Fatalf("Sample = %d, want 0", got)
		}
	}
}

func TestZeroWeightNeverSampled(t *testing.T) {
	tab := MustNew([]float64{1, 0, 1, 0, 3})
	r := rng.New(2)
	for i := 0; i < 10000; i++ {
		got := tab.Sample(r)
		if got == 1 || got == 3 {
			t.Fatalf("sampled zero-weight index %d", got)
		}
	}
}

func TestDistributionMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 10, 0.5}
	tab := MustNew(weights)
	r := rng.New(3)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tab.Sample(r)]++
	}
	// 5 degrees of freedom; critical value at p=0.001 is 20.52.
	if stat := chi2(counts, weights, draws); stat > 20.52 {
		t.Fatalf("chi2 = %g too high; counts = %v", stat, counts)
	}
}

func TestUniformWeights(t *testing.T) {
	weights := make([]float64, 100)
	for i := range weights {
		weights[i] = 1
	}
	tab := MustNew(weights)
	r := rng.New(4)
	const draws = 500000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tab.Sample(r)]++
	}
	// 99 dof; p=0.001 critical value ~ 148.2.
	if stat := chi2(counts, weights, draws); stat > 148.2 {
		t.Fatalf("chi2 = %g too high", stat)
	}
}

func TestExtremeSkew(t *testing.T) {
	weights := []float64{1e-9, 1e9}
	tab := MustNew(weights)
	r := rng.New(5)
	zero := 0
	for i := 0; i < 100000; i++ {
		if tab.Sample(r) == 0 {
			zero++
		}
	}
	if zero > 5 {
		t.Fatalf("tiny weight sampled too often: %d/100000", zero)
	}
}

func TestTotalAndLen(t *testing.T) {
	tab := MustNew([]float64{2, 3})
	if tab.Total() != 5 {
		t.Errorf("Total = %g, want 5", tab.Total())
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
	if tab.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
}

func TestQuickAlwaysInRange(t *testing.T) {
	r := rng.New(6)
	f := func(raw []float64) bool {
		weights := make([]float64, 0, len(raw))
		for _, w := range raw {
			weights = append(weights, math.Abs(math.Mod(w, 1000)))
		}
		tab, err := New(weights)
		if err != nil {
			return true // empty/zero vectors are allowed to fail
		}
		for i := 0; i < 50; i++ {
			v := tab.Sample(r)
			if v < 0 || v >= len(weights) || weights[v] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallMatchesWeights(t *testing.T) {
	weights := []float64{4, 0, 1, 2, 0, 8, 1, 0, 2}
	var s Small
	s.Reset(weights)
	if s.Len() != 9 {
		t.Fatalf("Len = %d, want 9", s.Len())
	}
	if s.Total() != 18 {
		t.Fatalf("Total = %g, want 18", s.Total())
	}
	r := rng.New(7)
	const draws = 200000
	counts := make([]int, 9)
	for i := 0; i < draws; i++ {
		counts[s.Sample(r)]++
	}
	for i, w := range weights {
		if w == 0 && counts[i] != 0 {
			t.Fatalf("zero-weight cell %d sampled %d times", i, counts[i])
		}
	}
	// 5 effective dof (6 nonzero cells); p=0.001 critical ~ 20.52.
	if stat := chi2(counts, weights, draws); stat > 20.52 {
		t.Fatalf("chi2 = %g too high; counts = %v", stat, counts)
	}
}

func TestSmallReuse(t *testing.T) {
	var s Small
	s.Reset([]float64{1, 1})
	s.Reset([]float64{0, 0, 5})
	r := rng.New(8)
	for i := 0; i < 1000; i++ {
		if got := s.Sample(r); got != 2 {
			t.Fatalf("after Reset, Sample = %d, want 2", got)
		}
	}
}

func TestSmallZeroTotal(t *testing.T) {
	var s Small
	s.Reset([]float64{0, 0})
	if s.Len() != 0 {
		t.Fatalf("zero-total table should be empty, Len = %d", s.Len())
	}
}

func TestSmallPanicsOver9(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >9 weights")
		}
	}()
	var s Small
	s.Reset(make([]float64, 10))
}

func BenchmarkBuild1M(b *testing.B) {
	weights := make([]float64, 1<<20)
	r := rng.New(9)
	for i := range weights {
		weights[i] = r.Float64() * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MustNew(weights)
	}
}

func BenchmarkSample(b *testing.B) {
	weights := make([]float64, 1<<16)
	r := rng.New(10)
	for i := range weights {
		weights[i] = r.Float64() * 100
	}
	tab := MustNew(weights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Sample(r)
	}
}

func TestCumulativeErrors(t *testing.T) {
	if _, err := NewCumulative(nil); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := NewCumulative([]float64{0, 0}); err == nil {
		t.Error("zero weights should fail")
	}
	if _, err := NewCumulative([]float64{1, -2}); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestCumulativeMatchesWeights(t *testing.T) {
	weights := []float64{1, 0, 3, 4, 10, 0.5}
	c, err := NewCumulative(weights)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 6 || c.Total() != 18.5 || c.SizeBytes() <= 0 {
		t.Fatalf("metadata wrong: %d %g", c.Len(), c.Total())
	}
	r := rng.New(30)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		v := c.Sample(r)
		if weights[v] == 0 {
			t.Fatalf("sampled zero-weight index %d", v)
		}
		counts[v]++
	}
	if stat := chi2(counts, weights, draws); stat > 20.52 {
		t.Fatalf("chi2 = %g too high; counts = %v", stat, counts)
	}
}

func TestCumulativeAgreesWithAliasDistribution(t *testing.T) {
	r := rng.New(31)
	weights := make([]float64, 200)
	for i := range weights {
		weights[i] = r.Float64() * 10
	}
	tab := MustNew(weights)
	cum, err := NewCumulative(weights)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 300000
	ca := make([]int, len(weights))
	cc := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		ca[tab.Sample(r)]++
		cc[cum.Sample(r)]++
	}
	// Both empirical distributions must fit the same weights.
	if stat := chi2(ca, weights, draws); stat > 300 {
		t.Fatalf("alias chi2 = %g", stat)
	}
	if stat := chi2(cc, weights, draws); stat > 300 {
		t.Fatalf("cumulative chi2 = %g", stat)
	}
}

func BenchmarkCumulativeSample(b *testing.B) {
	weights := make([]float64, 1<<16)
	r := rng.New(32)
	for i := range weights {
		weights[i] = r.Float64() * 100
	}
	c, _ := NewCumulative(weights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Sample(r)
	}
}
