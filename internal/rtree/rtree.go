// Package rtree implements an STR (Sort-Tile-Recursive) bulk-loaded
// R-tree over 2-D points with aggregate subtree counts.
//
// The paper cites the index nested-loop join over a spatial index as a
// "simple yet still state-of-the-art" exact spatial range join
// (Section VI); this package provides that substrate. The aggregate
// counts additionally enable an independent-range-sampling primitive
// analogous to the kd-tree's, which the repository uses as an ablation
// baseline (an aggregate-R-tree sampler) to show the BBST advantage is
// not an artifact of the kd-tree choice.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rng"
)

// fanout is the maximum number of children per internal node and the
// maximum number of points per leaf.
const fanout = 16

// node is one R-tree node. Leaves (children == nil) cover pts[lo:hi].
type node struct {
	bbox     geom.Rect
	children []int32
	lo, hi   int32
	count    int32 // number of points in the subtree
}

// Tree is an immutable STR-packed R-tree.
type Tree struct {
	pts    []geom.Point // copy, reordered by STR packing
	nodes  []node
	root   int32
	height int
}

// New bulk-loads an R-tree over a copy of pts using Sort-Tile-
// Recursive packing: points are sorted into vertical slices by x, each
// slice is sorted by y and cut into leaves of at most fanout points;
// upper levels pack the child rectangles the same way by center.
func New(pts []geom.Point) *Tree {
	t := &Tree{pts: append([]geom.Point(nil), pts...), root: -1}
	if len(t.pts) == 0 {
		return t
	}
	// Leaf level.
	level := t.packLeaves()
	t.height = 1
	for len(level) > 1 {
		level = t.packNodes(level)
		t.height++
	}
	t.root = level[0]
	return t
}

// packLeaves STR-packs the point array into leaf nodes and returns
// their ids.
func (t *Tree) packLeaves() []int32 {
	n := len(t.pts)
	sort.Slice(t.pts, func(i, j int) bool { return t.pts[i].X < t.pts[j].X })
	numLeaves := (n + fanout - 1) / fanout
	numSlices := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	sliceSize := numSlices * fanout

	var leaves []int32
	for s := 0; s < n; s += sliceSize {
		e := s + sliceSize
		if e > n {
			e = n
		}
		slice := t.pts[s:e]
		sort.Slice(slice, func(i, j int) bool { return slice[i].Y < slice[j].Y })
		for ls := 0; ls < len(slice); ls += fanout {
			le := ls + fanout
			if le > len(slice) {
				le = len(slice)
			}
			lo, hi := int32(s+ls), int32(s+le)
			leaves = append(leaves, t.addNode(node{
				bbox:  geom.BoundingRect(t.pts[lo:hi]),
				lo:    lo,
				hi:    hi,
				count: hi - lo,
			}))
		}
	}
	return leaves
}

// packNodes groups one level of node ids into parents via STR on the
// child bbox centers.
func (t *Tree) packNodes(ids []int32) []int32 {
	centerX := func(id int32) float64 {
		b := t.nodes[id].bbox
		return (b.XMin + b.XMax) / 2
	}
	centerY := func(id int32) float64 {
		b := t.nodes[id].bbox
		return (b.YMin + b.YMax) / 2
	}
	sort.Slice(ids, func(i, j int) bool { return centerX(ids[i]) < centerX(ids[j]) })
	numParents := (len(ids) + fanout - 1) / fanout
	numSlices := int(math.Ceil(math.Sqrt(float64(numParents))))
	sliceSize := numSlices * fanout

	var parents []int32
	for s := 0; s < len(ids); s += sliceSize {
		e := s + sliceSize
		if e > len(ids) {
			e = len(ids)
		}
		slice := ids[s:e]
		sort.Slice(slice, func(i, j int) bool { return centerY(slice[i]) < centerY(slice[j]) })
		for ps := 0; ps < len(slice); ps += fanout {
			pe := ps + fanout
			if pe > len(slice) {
				pe = len(slice)
			}
			children := append([]int32(nil), slice[ps:pe]...)
			bbox := t.nodes[children[0]].bbox
			count := int32(0)
			for _, c := range children {
				bbox = bbox.Union(t.nodes[c].bbox)
				count += t.nodes[c].count
			}
			parents = append(parents, t.addNode(node{
				bbox:     bbox,
				children: children,
				count:    count,
			}))
		}
	}
	return parents
}

func (t *Tree) addNode(n node) int32 {
	t.nodes = append(t.nodes, n)
	return int32(len(t.nodes) - 1)
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Height returns the number of levels (0 when empty).
func (t *Tree) Height() int { return t.height }

// Count returns the number of indexed points inside w.
func (t *Tree) Count(w geom.Rect) int {
	if t.root < 0 {
		return 0
	}
	return t.count(t.root, w)
}

func (t *Tree) count(ni int32, w geom.Rect) int {
	nd := &t.nodes[ni]
	if !w.Intersects(nd.bbox) {
		return 0
	}
	if w.Covers(nd.bbox) {
		return int(nd.count)
	}
	if nd.children == nil {
		c := 0
		for _, p := range t.pts[nd.lo:nd.hi] {
			if w.Contains(p) {
				c++
			}
		}
		return c
	}
	total := 0
	for _, ch := range nd.children {
		total += t.count(ch, w)
	}
	return total
}

// Report calls fn for every indexed point inside w; fn returning false
// stops the traversal.
func (t *Tree) Report(w geom.Rect, fn func(geom.Point) bool) {
	if t.root >= 0 {
		t.report(t.root, w, fn)
	}
}

func (t *Tree) report(ni int32, w geom.Rect, fn func(geom.Point) bool) bool {
	nd := &t.nodes[ni]
	if !w.Intersects(nd.bbox) {
		return true
	}
	if nd.children == nil {
		full := w.Covers(nd.bbox)
		for _, p := range t.pts[nd.lo:nd.hi] {
			if full || w.Contains(p) {
				if !fn(p) {
					return false
				}
			}
		}
		return true
	}
	for _, ch := range nd.children {
		if !t.report(ch, w, fn) {
			return false
		}
	}
	return true
}

// Scratch holds reusable decomposition buffers for Sample.
type Scratch struct {
	ranges [][2]int32
	single []int32
}

// Sample draws one point uniformly at random from the points inside w
// and returns it with the exact count, using the aggregate counts for
// a canonical decomposition (the R-tree analogue of KDS).
func (t *Tree) Sample(w geom.Rect, r *rng.RNG, s *Scratch) (pt geom.Point, count int, ok bool) {
	s.ranges = s.ranges[:0]
	s.single = s.single[:0]
	if t.root >= 0 {
		t.decompose(t.root, w, s)
	}
	count = len(s.single)
	for _, rg := range s.ranges {
		count += int(rg[1] - rg[0])
	}
	if count == 0 {
		return geom.Point{}, 0, false
	}
	u := r.Intn(count)
	if u < len(s.single) {
		return t.pts[s.single[u]], count, true
	}
	u -= len(s.single)
	for _, rg := range s.ranges {
		n := int(rg[1] - rg[0])
		if u < n {
			return t.pts[int(rg[0])+u], count, true
		}
		u -= n
	}
	panic("rtree: sample index out of decomposition")
}

func (t *Tree) decompose(ni int32, w geom.Rect, s *Scratch) {
	nd := &t.nodes[ni]
	if !w.Intersects(nd.bbox) {
		return
	}
	if nd.children == nil {
		if w.Covers(nd.bbox) {
			s.ranges = append(s.ranges, [2]int32{nd.lo, nd.hi})
			return
		}
		for i := nd.lo; i < nd.hi; i++ {
			if w.Contains(t.pts[i]) {
				s.single = append(s.single, i)
			}
		}
		return
	}
	// Internal nodes cannot emit point ranges directly (their points
	// are not contiguous), so fully covered internal nodes still
	// recurse; every leaf below them is fully covered and emits its
	// contiguous range, keeping the piece count O(coverage).
	for _, ch := range nd.children {
		t.decompose(ch, w, s)
	}
}

// SizeBytes estimates the heap footprint (point copy + nodes).
func (t *Tree) SizeBytes() int {
	const pointSize = 24
	const nodeSize = 32 + 24 + 12
	total := len(t.pts)*pointSize + len(t.nodes)*nodeSize
	for i := range t.nodes {
		total += 4 * len(t.nodes[i].children)
	}
	return total
}

// Validate checks structural invariants and returns the first
// violation: bbox coverage, count aggregation, and leaf bounds.
func (t *Tree) Validate() error {
	if t.root < 0 {
		return nil
	}
	seen := make([]bool, len(t.pts))
	var walk func(ni int32) (int32, error)
	walk = func(ni int32) (int32, error) {
		nd := &t.nodes[ni]
		if nd.children == nil {
			if nd.hi-nd.lo > fanout || nd.hi <= nd.lo {
				return 0, fmt.Errorf("leaf %d has invalid size %d", ni, nd.hi-nd.lo)
			}
			for i := nd.lo; i < nd.hi; i++ {
				if seen[i] {
					return 0, fmt.Errorf("point %d in two leaves", i)
				}
				seen[i] = true
				if !nd.bbox.Contains(t.pts[i]) {
					return 0, fmt.Errorf("leaf %d bbox misses point %v", ni, t.pts[i])
				}
			}
			if nd.count != nd.hi-nd.lo {
				return 0, fmt.Errorf("leaf %d count mismatch", ni)
			}
			return nd.count, nil
		}
		if len(nd.children) > fanout {
			return 0, fmt.Errorf("node %d has %d children", ni, len(nd.children))
		}
		var total int32
		for _, ch := range nd.children {
			if !nd.bbox.Covers(t.nodes[ch].bbox) {
				return 0, fmt.Errorf("node %d bbox does not cover child %d", ni, ch)
			}
			c, err := walk(ch)
			if err != nil {
				return 0, err
			}
			total += c
		}
		if total != nd.count {
			return 0, fmt.Errorf("node %d count %d != sum of children %d", ni, nd.count, total)
		}
		return total, nil
	}
	total, err := walk(t.root)
	if err != nil {
		return err
	}
	if int(total) != len(t.pts) {
		return fmt.Errorf("tree covers %d of %d points", total, len(t.pts))
	}
	return nil
}
