package rtree

import (
	"testing"
	"testing/quick"

	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

func randomPoints(r *rng.RNG, n int, extent float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, extent), Y: r.Range(0, extent), ID: int32(i)}
	}
	return pts
}

func bruteCount(pts []geom.Point, w geom.Rect) int {
	c := 0
	for _, p := range pts {
		if w.Contains(p) {
			c++
		}
	}
	return c
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	w := geom.Rect{XMin: 0, YMin: 0, XMax: 1, YMax: 1}
	if tr.Count(w) != 0 || tr.Height() != 0 || tr.Len() != 0 {
		t.Fatal("empty tree misbehaves")
	}
	if _, _, ok := tr.Sample(w, rng.New(1), &Scratch{}); ok {
		t.Fatal("sample on empty tree should fail")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateVariousSizes(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, fanout, fanout + 1, 257, 4096, 10000} {
		tr := New(randomPoints(r, n, 100))
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
	}
}

func TestHeightLogarithmic(t *testing.T) {
	r := rng.New(2)
	n := 100000
	tr := New(randomPoints(r, n, 10000))
	// STR packs nearly full: height <= ceil(log_fanout n) + 1.
	maxH := int(math.Ceil(math.Log(float64(n))/math.Log(fanout))) + 1
	if tr.Height() > maxH {
		t.Fatalf("height %d exceeds %d", tr.Height(), maxH)
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{1, 20, 500, 3000} {
		pts := randomPoints(r, n, 50)
		tr := New(pts)
		for trial := 0; trial < 200; trial++ {
			w := geom.Window(geom.Point{X: r.Range(-5, 55), Y: r.Range(-5, 55)}, r.Range(0.1, 20))
			if got, want := tr.Count(w), bruteCount(pts, w); got != want {
				t.Fatalf("n=%d Count = %d, want %d", n, got, want)
			}
		}
	}
}

func TestReportMatchesBruteForce(t *testing.T) {
	r := rng.New(4)
	pts := randomPoints(r, 1000, 30)
	tr := New(pts)
	for trial := 0; trial < 50; trial++ {
		w := geom.Window(geom.Point{X: r.Range(0, 30), Y: r.Range(0, 30)}, r.Range(1, 8))
		got := map[int32]bool{}
		tr.Report(w, func(p geom.Point) bool {
			if got[p.ID] {
				t.Fatalf("duplicate report %v", p)
			}
			got[p.ID] = true
			return true
		})
		for _, p := range pts {
			if w.Contains(p) != got[p.ID] {
				t.Fatalf("mismatch for %v", p)
			}
		}
	}
}

func TestReportEarlyStop(t *testing.T) {
	r := rng.New(5)
	tr := New(randomPoints(r, 500, 10))
	seen := 0
	tr.Report(geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}, func(geom.Point) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early stop saw %d", seen)
	}
}

func TestSampleCountAndMembership(t *testing.T) {
	r := rng.New(6)
	pts := randomPoints(r, 2000, 40)
	tr := New(pts)
	var s Scratch
	for trial := 0; trial < 300; trial++ {
		w := geom.Window(geom.Point{X: r.Range(0, 40), Y: r.Range(0, 40)}, r.Range(0.5, 8))
		want := bruteCount(pts, w)
		pt, count, ok := tr.Sample(w, r, &s)
		if want == 0 {
			if ok {
				t.Fatal("sample on empty window succeeded")
			}
			continue
		}
		if !ok || count != want {
			t.Fatalf("Sample count = %d (ok=%v), want %d", count, ok, want)
		}
		if !w.Contains(pt) {
			t.Fatalf("sampled %v outside %v", pt, w)
		}
	}
}

func TestSampleUniform(t *testing.T) {
	r := rng.New(7)
	pts := randomPoints(r, 400, 10)
	tr := New(pts)
	w := geom.Rect{XMin: 3, YMin: 3, XMax: 7, YMax: 7}
	inWindow := map[int32]bool{}
	for _, p := range pts {
		if w.Contains(p) {
			inWindow[p.ID] = true
		}
	}
	if len(inWindow) < 15 {
		t.Fatalf("setup too sparse: %d", len(inWindow))
	}
	var s Scratch
	counts := map[int32]int{}
	const draws = 150000
	for i := 0; i < draws; i++ {
		pt, _, ok := tr.Sample(w, r, &s)
		if !ok {
			t.Fatal("sample failed")
		}
		counts[pt.ID]++
	}
	expected := float64(draws) / float64(len(inWindow))
	chi2 := 0.0
	for id := range inWindow {
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	if dof := float64(len(inWindow) - 1); chi2 > 2*dof+50 {
		t.Fatalf("distribution skewed: chi2 = %g", chi2)
	}
}

func TestQuickCount(t *testing.T) {
	f := func(seed uint64, qx, qy, l float64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(500)
		pts := randomPoints(rr, n, 40)
		tr := New(pts)
		q := geom.Point{X: math.Abs(math.Mod(qx, 40)), Y: math.Abs(math.Mod(qy, 40))}
		w := geom.Window(q, math.Abs(math.Mod(l, 15))+0.01)
		return tr.Count(w) == bruteCount(pts, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Point{X: 1, Y: 2, ID: int32(i)}
	}
	tr := New(pts)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	w := geom.Rect{XMin: 0, YMin: 0, XMax: 3, YMax: 3}
	if got := tr.Count(w); got != 200 {
		t.Fatalf("Count = %d, want 200", got)
	}
}

func TestSizeBytesLinear(t *testing.T) {
	r := rng.New(8)
	tr := New(randomPoints(r, 20000, 100))
	if tr.SizeBytes() > 64*tr.Len() {
		t.Fatalf("SizeBytes %d not linear", tr.SizeBytes())
	}
}

func BenchmarkBuild100k(b *testing.B) {
	r := rng.New(9)
	pts := randomPoints(r, 100000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = New(pts)
	}
}

func BenchmarkCount100k(b *testing.B) {
	r := rng.New(10)
	tr := New(randomPoints(r, 100000, 10000))
	w := geom.Window(geom.Point{X: 5000, Y: 5000}, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Count(w)
	}
}

func TestAdversarialInputs(t *testing.T) {
	const n = 4000
	for _, name := range []string{"ascending", "vertical-line"} {
		t.Run(name, func(t *testing.T) {
			pts := make([]geom.Point, n)
			for i := range pts {
				if name == "ascending" {
					pts[i] = geom.Point{X: float64(i), Y: float64(i), ID: int32(i)}
				} else {
					pts[i] = geom.Point{X: 7, Y: float64(i), ID: int32(i)}
				}
			}
			tr := New(pts)
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			w := geom.Rect{XMin: 0, YMin: 100, XMax: 3000, YMax: 900}
			if got, want := tr.Count(w), bruteCount(pts, w); got != want {
				t.Fatalf("Count = %d, want %d", got, want)
			}
		})
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	r := rng.New(20)
	pts := randomPoints(r, 500, 100)
	before := append([]geom.Point(nil), pts...)
	_ = New(pts)
	for i := range pts {
		if pts[i] != before[i] {
			t.Fatal("New mutated its input slice")
		}
	}
}
