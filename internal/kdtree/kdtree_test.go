package kdtree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func randomPoints(r *rng.RNG, n int, extent float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, extent), Y: r.Range(0, extent), ID: int32(i)}
	}
	return pts
}

func bruteCount(pts []geom.Point, w geom.Rect) int {
	c := 0
	for _, p := range pts {
		if w.Contains(p) {
			c++
		}
	}
	return c
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	w := geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}
	if tr.Count(w) != 0 {
		t.Error("empty tree count should be 0")
	}
	if _, _, ok := tr.Sample(w, rng.New(1), &Scratch{}); ok {
		t.Error("empty tree sample should fail")
	}
	tr.Report(w, func(geom.Point) bool { t.Error("report on empty tree"); return true })
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSinglePoint(t *testing.T) {
	tr := New([]geom.Point{{X: 5, Y: 5, ID: 42}})
	if got := tr.Count(geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}); got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
	if got := tr.Count(geom.Rect{XMin: 6, YMin: 0, XMax: 10, YMax: 10}); got != 0 {
		t.Errorf("miss Count = %d, want 0", got)
	}
	pt, count, ok := tr.Sample(geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}, rng.New(1), &Scratch{})
	if !ok || count != 1 || pt.ID != 42 {
		t.Errorf("Sample = (%v, %d, %v)", pt, count, ok)
	}
}

func TestValidateRandom(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 7, 8, 9, 100, 1023, 5000} {
		tr := New(randomPoints(r, n, 100))
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestValidateDuplicates(t *testing.T) {
	pts := make([]geom.Point, 1000)
	r := rng.New(2)
	for i := range pts {
		// Heavy x-duplication exercises the three-way partition.
		pts[i] = geom.Point{X: float64(i % 3), Y: r.Range(0, 10), ID: int32(i)}
	}
	tr := New(pts)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{1, 10, 100, 2000} {
		pts := randomPoints(r, n, 50)
		tr := New(pts)
		for trial := 0; trial < 200; trial++ {
			q := geom.Point{X: r.Range(-5, 55), Y: r.Range(-5, 55)}
			w := geom.Window(q, r.Range(0.1, 25))
			if got, want := tr.Count(w), bruteCount(pts, w); got != want {
				t.Fatalf("n=%d Count(%v) = %d, want %d", n, w, got, want)
			}
		}
	}
}

func TestReportMatchesBruteForce(t *testing.T) {
	r := rng.New(4)
	pts := randomPoints(r, 500, 30)
	tr := New(pts)
	for trial := 0; trial < 50; trial++ {
		w := geom.Window(geom.Point{X: r.Range(0, 30), Y: r.Range(0, 30)}, r.Range(1, 10))
		got := map[int32]bool{}
		tr.Report(w, func(p geom.Point) bool {
			if got[p.ID] {
				t.Fatalf("duplicate report of %v", p)
			}
			got[p.ID] = true
			return true
		})
		for _, p := range pts {
			if w.Contains(p) != got[p.ID] {
				t.Fatalf("report mismatch for %v in %v", p, w)
			}
		}
	}
}

func TestReportEarlyStop(t *testing.T) {
	r := rng.New(5)
	pts := randomPoints(r, 1000, 10)
	tr := New(pts)
	seen := 0
	tr.Report(geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}, func(geom.Point) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("early stop saw %d points, want 5", seen)
	}
}

func TestSampleCountAgreesWithCount(t *testing.T) {
	r := rng.New(6)
	pts := randomPoints(r, 800, 40)
	tr := New(pts)
	var s Scratch
	for trial := 0; trial < 100; trial++ {
		w := geom.Window(geom.Point{X: r.Range(0, 40), Y: r.Range(0, 40)}, r.Range(0.5, 10))
		want := tr.Count(w)
		_, count, ok := tr.Sample(w, r, &s)
		if want == 0 {
			if ok {
				t.Fatalf("Sample succeeded on empty window %v", w)
			}
			continue
		}
		if !ok || count != want {
			t.Fatalf("Sample count = %d (ok=%v), want %d", count, ok, want)
		}
	}
}

func TestSampleAlwaysInWindow(t *testing.T) {
	r := rng.New(7)
	pts := randomPoints(r, 500, 20)
	tr := New(pts)
	var s Scratch
	for trial := 0; trial < 2000; trial++ {
		w := geom.Window(geom.Point{X: r.Range(0, 20), Y: r.Range(0, 20)}, 3)
		pt, _, ok := tr.Sample(w, r, &s)
		if ok && !w.Contains(pt) {
			t.Fatalf("sampled point %v outside window %v", pt, w)
		}
	}
}

func TestSampleUniform(t *testing.T) {
	r := rng.New(8)
	pts := randomPoints(r, 300, 10)
	tr := New(pts)
	w := geom.Rect{XMin: 2, YMin: 2, XMax: 8, YMax: 8}
	inWindow := map[int32]bool{}
	for _, p := range pts {
		if w.Contains(p) {
			inWindow[p.ID] = true
		}
	}
	if len(inWindow) < 20 {
		t.Fatalf("setup: only %d in-window points", len(inWindow))
	}
	var s Scratch
	counts := map[int32]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		pt, _, ok := tr.Sample(w, r, &s)
		if !ok {
			t.Fatal("sample failed")
		}
		counts[pt.ID]++
	}
	expected := float64(draws) / float64(len(inWindow))
	chi2 := 0.0
	for id := range inWindow {
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	if dof := float64(len(inWindow) - 1); chi2 > 2*dof+50 {
		t.Fatalf("sample distribution skewed: chi2 = %g (dof %g)", chi2, dof)
	}
}

func TestQuickCountMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, qx, qy, l float64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(400)
		pts := randomPoints(rr, n, 40)
		tr := New(pts)
		q := geom.Point{
			X: math.Abs(math.Mod(qx, 40)),
			Y: math.Abs(math.Mod(qy, 40)),
		}
		w := geom.Window(q, math.Abs(math.Mod(l, 15))+0.01)
		return tr.Count(w) == bruteCount(pts, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytes(t *testing.T) {
	r := rng.New(9)
	small := New(randomPoints(r, 100, 10))
	big := New(randomPoints(r, 10000, 10))
	if small.SizeBytes() <= 0 || big.SizeBytes() <= small.SizeBytes() {
		t.Fatal("SizeBytes not monotone")
	}
	// O(m) space: generous 80 bytes/point bound.
	if big.SizeBytes() > 80*big.Len() {
		t.Fatalf("SizeBytes %d not linear for %d points", big.SizeBytes(), big.Len())
	}
}

func BenchmarkBuild100k(b *testing.B) {
	r := rng.New(10)
	pts := randomPoints(r, 100000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = New(pts)
	}
}

func BenchmarkCount100k(b *testing.B) {
	r := rng.New(11)
	tr := New(randomPoints(r, 100000, 10000))
	w := geom.Window(geom.Point{X: 5000, Y: 5000}, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Count(w)
	}
}

func BenchmarkSample100k(b *testing.B) {
	r := rng.New(12)
	tr := New(randomPoints(r, 100000, 10000))
	w := geom.Window(geom.Point{X: 5000, Y: 5000}, 100)
	var s Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = tr.Sample(w, r, &s)
	}
}

func TestAdversarialInputs(t *testing.T) {
	// Pre-sorted, reverse-sorted, collinear, and single-coordinate
	// inputs stress the quickselect pivoting and bbox degeneracy.
	const n = 5000
	makeInput := func(name string) []geom.Point {
		pts := make([]geom.Point, n)
		for i := range pts {
			switch name {
			case "ascending":
				pts[i] = geom.Point{X: float64(i), Y: float64(i), ID: int32(i)}
			case "descending":
				pts[i] = geom.Point{X: float64(n - i), Y: float64(n - i), ID: int32(i)}
			case "vertical-line":
				pts[i] = geom.Point{X: 5, Y: float64(i), ID: int32(i)}
			case "horizontal-line":
				pts[i] = geom.Point{X: float64(i), Y: 5, ID: int32(i)}
			}
		}
		return pts
	}
	for _, name := range []string{"ascending", "descending", "vertical-line", "horizontal-line"} {
		t.Run(name, func(t *testing.T) {
			pts := makeInput(name)
			tr := New(pts)
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			w := geom.Rect{XMin: 0, YMin: 100, XMax: 4000, YMax: 300}
			if got, want := tr.Count(w), bruteCount(pts, w); got != want {
				t.Fatalf("Count = %d, want %d", got, want)
			}
		})
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	r := rng.New(20)
	pts := randomPoints(r, 500, 100)
	before := append([]geom.Point(nil), pts...)
	_ = New(pts)
	for i := range pts {
		if pts[i] != before[i] {
			t.Fatal("New mutated its input slice")
		}
	}
}
