// Package kdtree implements a balanced, array-backed kd-tree over 2-D
// points with subtree counts, supporting orthogonal range counting,
// range reporting, and spatial independent range sampling (IRS).
//
// The sampling operation follows KDS (Xie et al., "Spatial Independent
// Range Sampling", SIGMOD 2021), the structure both baselines of the
// paper build on: one traversal decomposes the query window into
// canonical subtrees (fully covered, sampled by subtree size) plus the
// individual in-window points of partially covered leaves. A weighted
// uniform draw over this decomposition returns a point s ∈ S(w)
// with probability exactly 1/|S(w)|, together with the exact count
// |S(w)| — both in O(sqrt m) time for m points.
package kdtree

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// leafSize is the maximum number of points stored in a leaf. Small
// leaves keep the O(sqrt m) traversal bound tight while avoiding
// per-point node overhead.
const leafSize = 8

// node is one kd-tree node. Leaves have left == -1 and scan
// pts[lo:hi]; internal nodes split pts[lo:hi] at the median of the
// split axis.
type node struct {
	bbox        geom.Rect
	lo, hi      int32
	left, right int32 // -1 for leaves
}

// Tree is an immutable kd-tree. Build it with New.
type Tree struct {
	pts   []geom.Point // permuted copy of the input
	nodes []node
	root  int32
}

// New builds a kd-tree over a copy of pts in O(m log m) time using
// median splits on alternating axes.
func New(pts []geom.Point) *Tree {
	t := &Tree{pts: append([]geom.Point(nil), pts...), root: -1}
	if len(t.pts) == 0 {
		return t
	}
	t.nodes = make([]node, 0, 2*len(pts)/leafSize+2)
	t.root = t.build(0, int32(len(t.pts)), 0)
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// build constructs the subtree over pts[lo:hi) splitting on axis
// (0 = x, 1 = y) and returns its node index.
func (t *Tree) build(lo, hi int32, axis int) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		bbox: geom.BoundingRect(t.pts[lo:hi]),
		lo:   lo, hi: hi,
		left: -1, right: -1,
	})
	if hi-lo <= leafSize {
		return idx
	}
	mid := lo + (hi-lo)/2
	t.selectNth(lo, hi, mid, axis)
	left := t.build(lo, mid, 1-axis)
	right := t.build(mid, hi, 1-axis)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// coord returns the axis coordinate of point i.
func (t *Tree) coord(i int32, axis int) float64 {
	if axis == 0 {
		return t.pts[i].X
	}
	return t.pts[i].Y
}

// selectNth partially sorts pts[lo:hi) so that pts[n] holds the
// element of rank n-lo along axis (Hoare quickselect with
// median-of-three pivots; expected linear time).
func (t *Tree) selectNth(lo, hi, n int32, axis int) {
	for hi-lo > 1 {
		// Median-of-three pivot.
		mid := lo + (hi-lo)/2
		a, b, c := t.coord(lo, axis), t.coord(mid, axis), t.coord(hi-1, axis)
		var pivot float64
		switch {
		case (a <= b && b <= c) || (c <= b && b <= a):
			pivot = b
		case (b <= a && a <= c) || (c <= a && a <= b):
			pivot = a
		default:
			pivot = c
		}
		// Three-way partition (Dutch national flag) to cope with
		// long runs of equal coordinates.
		lt, i, gt := lo, lo, hi
		for i < gt {
			v := t.coord(i, axis)
			switch {
			case v < pivot:
				t.pts[lt], t.pts[i] = t.pts[i], t.pts[lt]
				lt++
				i++
			case v > pivot:
				gt--
				t.pts[gt], t.pts[i] = t.pts[i], t.pts[gt]
			default:
				i++
			}
		}
		switch {
		case n < lt:
			hi = lt
		case n >= gt:
			lo = gt
		default:
			return // n lands in the run of pivot-equal elements
		}
	}
}

// Count returns |S(w)|: the number of indexed points inside w.
func (t *Tree) Count(w geom.Rect) int {
	if t.root < 0 {
		return 0
	}
	return t.count(t.root, w)
}

func (t *Tree) count(ni int32, w geom.Rect) int {
	nd := &t.nodes[ni]
	if !w.Intersects(nd.bbox) {
		return 0
	}
	if w.Covers(nd.bbox) {
		return int(nd.hi - nd.lo)
	}
	if nd.left < 0 {
		c := 0
		for _, p := range t.pts[nd.lo:nd.hi] {
			if w.Contains(p) {
				c++
			}
		}
		return c
	}
	return t.count(nd.left, w) + t.count(nd.right, w)
}

// Report calls fn for every indexed point inside w. Iteration stops
// early if fn returns false.
func (t *Tree) Report(w geom.Rect, fn func(geom.Point) bool) {
	if t.root >= 0 {
		t.report(t.root, w, fn)
	}
}

func (t *Tree) report(ni int32, w geom.Rect, fn func(geom.Point) bool) bool {
	nd := &t.nodes[ni]
	if !w.Intersects(nd.bbox) {
		return true
	}
	if w.Covers(nd.bbox) || nd.left < 0 {
		full := w.Covers(nd.bbox)
		for _, p := range t.pts[nd.lo:nd.hi] {
			if full || w.Contains(p) {
				if !fn(p) {
					return false
				}
			}
		}
		return true
	}
	return t.report(nd.left, w, fn) && t.report(nd.right, w, fn)
}

// Scratch holds the reusable canonical-decomposition buffers for
// Sample. The zero value is ready; not safe for concurrent use.
type Scratch struct {
	ranges [][2]int32 // fully covered subtree point ranges
	single []int32    // indices of in-window points from partial leaves
}

// Sample draws one point uniformly at random from S(w) and returns it
// together with the exact count |S(w)|. ok is false when the window is
// empty. Successive calls are independent — this is the IRS primitive
// of KDS.
func (t *Tree) Sample(w geom.Rect, r *rng.RNG, s *Scratch) (pt geom.Point, count int, ok bool) {
	s.ranges = s.ranges[:0]
	s.single = s.single[:0]
	if t.root >= 0 {
		t.decompose(t.root, w, s)
	}
	count = len(s.single)
	for _, rg := range s.ranges {
		count += int(rg[1] - rg[0])
	}
	if count == 0 {
		return geom.Point{}, 0, false
	}
	u := r.Intn(count)
	if u < len(s.single) {
		return t.pts[s.single[u]], count, true
	}
	u -= len(s.single)
	for _, rg := range s.ranges {
		n := int(rg[1] - rg[0])
		if u < n {
			return t.pts[int(rg[0])+u], count, true
		}
		u -= n
	}
	panic("kdtree: sample index out of decomposition")
}

// decompose appends the canonical pieces of w to s.
func (t *Tree) decompose(ni int32, w geom.Rect, s *Scratch) {
	nd := &t.nodes[ni]
	if !w.Intersects(nd.bbox) {
		return
	}
	if w.Covers(nd.bbox) {
		s.ranges = append(s.ranges, [2]int32{nd.lo, nd.hi})
		return
	}
	if nd.left < 0 {
		for i := nd.lo; i < nd.hi; i++ {
			if w.Contains(t.pts[i]) {
				s.single = append(s.single, i)
			}
		}
		return
	}
	t.decompose(nd.left, w, s)
	t.decompose(nd.right, w, s)
}

// Height returns the height of the tree (0 when empty).
func (t *Tree) Height() int {
	if t.root < 0 {
		return 0
	}
	return t.height(t.root)
}

func (t *Tree) height(ni int32) int {
	nd := &t.nodes[ni]
	if nd.left < 0 {
		return 1
	}
	l, r := t.height(nd.left), t.height(nd.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// SizeBytes estimates the heap footprint: the permuted point copy plus
// the node array. Used by the memory experiment (Fig. 4).
func (t *Tree) SizeBytes() int {
	const pointSize = 24
	const nodeSize = 32 + 16
	return len(t.pts)*pointSize + len(t.nodes)*nodeSize
}

// Validate checks structural invariants (used by tests): every node's
// bbox covers its points, children partition the parent range, and
// leaves respect leafSize. It returns the first violation found.
func (t *Tree) Validate() error {
	if t.root < 0 {
		return nil
	}
	var walk func(ni int32) error
	walk = func(ni int32) error {
		nd := &t.nodes[ni]
		for _, p := range t.pts[nd.lo:nd.hi] {
			if !nd.bbox.Contains(p) {
				return fmt.Errorf("node %d bbox %v misses point %v", ni, nd.bbox, p)
			}
		}
		if nd.left < 0 {
			if nd.hi-nd.lo > leafSize {
				return fmt.Errorf("leaf %d has %d points (> %d)", ni, nd.hi-nd.lo, leafSize)
			}
			return nil
		}
		l, r := &t.nodes[nd.left], &t.nodes[nd.right]
		if l.lo != nd.lo || l.hi != r.lo || r.hi != nd.hi {
			return fmt.Errorf("node %d children do not partition [%d,%d)", ni, nd.lo, nd.hi)
		}
		if err := walk(nd.left); err != nil {
			return err
		}
		return walk(nd.right)
	}
	if err := walk(t.root); err != nil {
		return err
	}
	// Height must be logarithmic: median splits guarantee it.
	n := len(t.pts)
	if n > leafSize {
		maxH := int(math.Ceil(math.Log2(float64(n)/leafSize))) + 2
		if h := t.Height(); h > maxH {
			return fmt.Errorf("height %d exceeds bound %d for %d points", h, maxH, n)
		}
	}
	return nil
}
