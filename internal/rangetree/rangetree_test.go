package rangetree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func randomPoints(r *rng.RNG, n int, extent float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, extent), Y: r.Range(0, extent), ID: int32(i)}
	}
	return pts
}

func bruteCount(pts []geom.Point, w geom.Rect) int {
	c := 0
	for _, p := range pts {
		if w.Contains(p) {
			c++
		}
	}
	return c
}

func TestEmpty(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatal("Len should be 0")
	}
	if got := tr.Count(geom.Rect{XMin: 0, YMin: 0, XMax: 1, YMax: 1}); got != 0 {
		t.Fatalf("Count = %d", got)
	}
}

func TestSinglePoint(t *testing.T) {
	tr := New([]geom.Point{{X: 5, Y: 7}})
	if got := tr.Count(geom.Rect{XMin: 4, YMin: 6, XMax: 6, YMax: 8}); got != 1 {
		t.Fatalf("hit Count = %d, want 1", got)
	}
	if got := tr.Count(geom.Rect{XMin: 5.1, YMin: 6, XMax: 6, YMax: 8}); got != 0 {
		t.Fatalf("miss Count = %d, want 0", got)
	}
	// Boundary inclusion.
	if got := tr.Count(geom.Rect{XMin: 5, YMin: 7, XMax: 5, YMax: 7}); got != 1 {
		t.Fatalf("degenerate Count = %d, want 1", got)
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 3, 10, 63, 64, 65, 500, 4096} {
		pts := randomPoints(r, n, 50)
		tr := New(pts)
		for trial := 0; trial < 100; trial++ {
			w := geom.Window(geom.Point{X: r.Range(-5, 55), Y: r.Range(-5, 55)}, r.Range(0.1, 20))
			if got, want := tr.Count(w), bruteCount(pts, w); got != want {
				t.Fatalf("n=%d Count(%v) = %d, want %d", n, w, got, want)
			}
		}
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	r := rng.New(2)
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i % 4), Y: float64(i % 7), ID: int32(i)}
	}
	tr := New(pts)
	for trial := 0; trial < 300; trial++ {
		w := geom.Window(geom.Point{X: r.Range(-1, 5), Y: r.Range(-1, 8)}, r.Range(0.1, 4))
		if got, want := tr.Count(w), bruteCount(pts, w); got != want {
			t.Fatalf("Count = %d, want %d (w=%v)", got, want, w)
		}
	}
}

func TestQuickCount(t *testing.T) {
	f := func(seed uint64, qx, qy, l float64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(300)
		pts := randomPoints(rr, n, 30)
		tr := New(pts)
		q := geom.Point{X: math.Abs(math.Mod(qx, 30)), Y: math.Abs(math.Mod(qy, 30))}
		w := geom.Window(q, math.Abs(math.Mod(l, 10))+0.01)
		return tr.Count(w) == bruteCount(pts, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytesSuperlinear(t *testing.T) {
	r := rng.New(3)
	n1, n2 := 1000, 16000
	t1 := New(randomPoints(r, n1, 100))
	t2 := New(randomPoints(r, n2, 100))
	// O(n log n): per-point cost must grow with n.
	perPoint1 := float64(t1.SizeBytes()) / float64(n1)
	perPoint2 := float64(t2.SizeBytes()) / float64(n2)
	if perPoint2 <= perPoint1 {
		t.Fatalf("range tree per-point size should grow: %g vs %g", perPoint1, perPoint2)
	}
}

func BenchmarkCount64k(b *testing.B) {
	r := rng.New(4)
	tr := New(randomPoints(r, 1<<16, 10000))
	w := geom.Window(geom.Point{X: 5000, Y: 5000}, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Count(w)
	}
}

func BenchmarkBuild64k(b *testing.B) {
	r := rng.New(5)
	pts := randomPoints(r, 1<<16, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = New(pts)
	}
}
