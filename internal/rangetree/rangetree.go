// Package rangetree implements a static 2-D range tree (a merge-sort
// tree): a balanced hierarchy over the x-sorted points in which every
// node stores the y-coordinates of its subtree in sorted order.
//
// It answers orthogonal range counting in O(log^2 n) time but costs
// O(n log n) space — the paper reports that this structure ran out of
// memory on its largest datasets (Section V, footnote 4) and uses that
// observation to motivate the O(n)-space BBST. The repository keeps it
// as the memory-experiment comparator and as a counting oracle in
// tests.
package rangetree

import (
	"sort"

	"repro/internal/geom"
)

// Tree is an immutable 2-D range counting structure. The implicit
// node at depth k covering x-rank range [lo, hi) stores its subtree's
// y values, sorted, at levels[k][lo:hi]; children split at the
// midpoint, so the whole hierarchy needs no pointers.
type Tree struct {
	xs     []float64   // x-coordinates, ascending
	levels [][]float64 // levels[k][lo:hi] = sorted y values of node (k, lo, hi)
}

// New builds the tree over a copy of pts in O(n log n) time and space,
// merging bottom-up like merge sort.
func New(pts []geom.Point) *Tree {
	n := len(pts)
	t := &Tree{}
	if n == 0 {
		return t
	}
	sorted := append([]geom.Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	t.xs = make([]float64, n)
	leaf := make([]float64, n)
	for i, p := range sorted {
		t.xs[i] = p.X
		leaf[i] = p.Y
	}

	// Segment boundaries per level, splitting [lo, hi) at its
	// midpoint until every segment has size <= 1.
	segs := [][][2]int{{{0, n}}}
	for {
		last := segs[len(segs)-1]
		var next [][2]int
		split := false
		for _, s := range last {
			if s[1]-s[0] <= 1 {
				next = append(next, s)
				continue
			}
			mid := (s[0] + s[1]) / 2
			next = append(next, [2]int{s[0], mid}, [2]int{mid, s[1]})
			split = true
		}
		if !split {
			break
		}
		segs = append(segs, next)
	}

	depth := len(segs)
	t.levels = make([][]float64, depth)
	t.levels[depth-1] = leaf // size-<=1 segments are trivially sorted
	for k := depth - 2; k >= 0; k-- {
		t.levels[k] = make([]float64, n)
		for _, s := range segs[k] {
			if s[1]-s[0] <= 1 {
				copy(t.levels[k][s[0]:s[1]], t.levels[k+1][s[0]:s[1]])
				continue
			}
			mid := (s[0] + s[1]) / 2
			merge(t.levels[k][s[0]:s[1]], t.levels[k+1][s[0]:mid], t.levels[k+1][mid:s[1]])
		}
	}
	return t
}

// merge merges two sorted slices into dst (len(dst) == len(a)+len(b)).
func merge(dst, a, b []float64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.xs) }

// Count returns the number of points inside w in O(log^2 n) time.
func (t *Tree) Count(w geom.Rect) int {
	n := len(t.xs)
	if n == 0 || w.Empty() {
		return 0
	}
	xlo := sort.SearchFloat64s(t.xs, w.XMin)
	xhi := sort.Search(n, func(i int) bool { return t.xs[i] > w.XMax })
	if xlo >= xhi {
		return 0
	}
	return t.count(0, 0, n, xlo, xhi, w.YMin, w.YMax)
}

// count accumulates the y-range count over x-rank range [xlo, xhi)
// starting at implicit node (level, [lo, hi)).
func (t *Tree) count(level, lo, hi, xlo, xhi int, ylo, yhi float64) int {
	if xlo >= hi || xhi <= lo {
		return 0
	}
	if xlo <= lo && hi <= xhi {
		ys := t.levels[level][lo:hi]
		a := sort.SearchFloat64s(ys, ylo)
		b := sort.Search(len(ys), func(i int) bool { return ys[i] > yhi })
		return b - a
	}
	// Partially covered nodes always have size > 1 (a size-1 node is
	// either disjoint or fully covered), so children exist.
	mid := (lo + hi) / 2
	return t.count(level+1, lo, mid, xlo, xhi, ylo, yhi) +
		t.count(level+1, mid, hi, xlo, xhi, ylo, yhi)
}

// SizeBytes reports the O(n log n) footprint; the memory experiment
// uses it to reproduce the paper's out-of-memory observation for this
// structure.
func (t *Tree) SizeBytes() int {
	total := len(t.xs) * 8
	for _, lvl := range t.levels {
		total += len(lvl) * 8
	}
	return total
}
