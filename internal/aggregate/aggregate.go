// Package aggregate provides online-aggregation estimators over join
// samples — the downstream machinery for the applications that
// motivate the paper (approximate aggregation, density visualization,
// and cardinality estimation). All estimators consume uniform,
// independent samples progressively and report running confidence
// intervals, so callers can stop as soon as the interval is tight
// enough (the whole point of sampling instead of joining).
package aggregate

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
)

// Mean is a running mean/variance estimator (Welford's algorithm)
// over a numeric measure of join pairs.
type Mean struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// Count returns the number of observations.
func (m *Mean) Count() uint64 { return m.n }

// Estimate returns the running mean and its 95% confidence half-width
// (0 until two observations exist).
func (m *Mean) Estimate() (mean, ci float64) {
	if m.n < 2 {
		return m.mean, 0
	}
	variance := m.m2 / float64(m.n-1)
	return m.mean, 1.96 * math.Sqrt(variance/float64(m.n))
}

// Proportion estimates the fraction of join pairs satisfying a
// predicate, with a normal-approximation confidence interval.
type Proportion struct {
	n, hits uint64
}

// Add incorporates one observation.
func (p *Proportion) Add(hit bool) {
	p.n++
	if hit {
		p.hits++
	}
}

// Count returns the number of observations.
func (p *Proportion) Count() uint64 { return p.n }

// Estimate returns the running fraction and its 95% confidence
// half-width.
func (p *Proportion) Estimate() (frac, ci float64) {
	if p.n == 0 {
		return 0, 0
	}
	f := float64(p.hits) / float64(p.n)
	return f, 1.96 * math.Sqrt(f*(1-f)/float64(p.n))
}

// Sum estimates the join-wide SUM of a measure: mean x |J|. It needs
// the join size (exact or estimated, e.g. from JoinSizeEstimate).
type Sum struct {
	Mean
	JoinSize float64
}

// Estimate returns the estimated SUM over all of J with a 95%
// confidence half-width.
func (s *Sum) Estimate() (sum, ci float64) {
	m, c := s.Mean.Estimate()
	return m * s.JoinSize, c * s.JoinSize
}

// JoinSizeEstimate derives an unbiased estimate of |J| from a
// sampler's statistics: the acceptance rate times the known
// upper-bound mass Σµ. Exact-counting algorithms (KDS) return Σµ
// itself, which equals |J|.
func JoinSizeEstimate(st core.Stats) float64 {
	if st.Iterations == 0 {
		return 0
	}
	return float64(st.Samples) / float64(st.Iterations) * st.MuSum
}

// Histogram is a 2-D density histogram over a rectangular domain,
// used for (kernel-free) density visualization of join results from
// samples.
type Histogram struct {
	domain geom.Rect
	w, h   int
	bins   []float64
	total  float64
}

// NewHistogram creates a w x h histogram over the domain.
func NewHistogram(domain geom.Rect, w, h int) (*Histogram, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("aggregate: histogram dimensions must be positive, got %dx%d", w, h)
	}
	if domain.Empty() || domain.Area() == 0 {
		return nil, fmt.Errorf("aggregate: histogram domain must have positive area")
	}
	return &Histogram{domain: domain, w: w, h: h, bins: make([]float64, w*h)}, nil
}

// binIndex maps a coordinate to its bin, clamping to the border.
func (h *Histogram) binIndex(x, y float64) int {
	cx := int((x - h.domain.XMin) / h.domain.Width() * float64(h.w))
	cy := int((y - h.domain.YMin) / h.domain.Height() * float64(h.h))
	if cx < 0 {
		cx = 0
	}
	if cx >= h.w {
		cx = h.w - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= h.h {
		cy = h.h - 1
	}
	return cy*h.w + cx
}

// AddPoint accumulates a point observation.
func (h *Histogram) AddPoint(x, y float64) {
	h.bins[h.binIndex(x, y)]++
	h.total++
}

// AddPair accumulates a join pair at its midpoint.
func (h *Histogram) AddPair(p geom.Pair) {
	h.AddPoint((p.R.X+p.S.X)/2, (p.R.Y+p.S.Y)/2)
}

// Total returns the number of accumulated observations.
func (h *Histogram) Total() float64 { return h.total }

// At returns the raw count of bin (x, y).
func (h *Histogram) At(x, y int) float64 { return h.bins[y*h.w+x] }

// Correlation computes the Pearson correlation of two histograms of
// the same shape: ~1 when the sampled density matches the reference.
func (h *Histogram) Correlation(o *Histogram) (float64, error) {
	if h.w != o.w || h.h != o.h {
		return 0, fmt.Errorf("aggregate: histogram shapes differ (%dx%d vs %dx%d)", h.w, h.h, o.w, o.h)
	}
	n := float64(len(h.bins))
	var sa, sb, saa, sbb, sab float64
	for i := range h.bins {
		a, b := h.bins[i], o.bins[i]
		sa += a
		sb += b
		saa += a * a
		sbb += b * b
		sab += a * b
	}
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va == 0 || vb == 0 {
		return 0, fmt.Errorf("aggregate: constant histogram has no correlation")
	}
	return (sab/n - sa/n*sb/n) / math.Sqrt(va*vb), nil
}

// Render draws the histogram as ASCII art (log-scaled shading,
// north up) for terminal visualization.
func (h *Histogram) Render() string {
	shades := []rune(" .:-=+*#%@")
	max := 0.0
	for _, v := range h.bins {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for y := h.h - 1; y >= 0; y-- {
		for x := 0; x < h.w; x++ {
			level := 0
			if max > 0 {
				level = int(math.Log1p(h.At(x, y)) / math.Log1p(max) * float64(len(shades)-1))
			}
			b.WriteRune(shades[level])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GroupCount estimates per-group counts of join pairs scaled to the
// full join: count_g ≈ |J| x (samples in g) / samples. Groups are
// identified by a caller-provided key function.
type GroupCount struct {
	JoinSize float64
	n        float64
	groups   map[string]float64
}

// NewGroupCount creates an estimator given |J| (exact or estimated).
func NewGroupCount(joinSize float64) *GroupCount {
	return &GroupCount{JoinSize: joinSize, groups: make(map[string]float64)}
}

// Add assigns one sampled pair to a group.
func (g *GroupCount) Add(key string) {
	g.groups[key]++
	g.n++
}

// Estimate returns the scaled count for one group.
func (g *GroupCount) Estimate(key string) float64 {
	if g.n == 0 {
		return 0
	}
	return g.JoinSize * g.groups[key] / g.n
}

// Groups returns all group keys seen so far.
func (g *GroupCount) Groups() []string {
	out := make([]string, 0, len(g.groups))
	for k := range g.groups {
		out = append(out, k)
	}
	return out
}
