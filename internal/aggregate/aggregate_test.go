package aggregate

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rng"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	if mean, ci := m.Estimate(); mean != 0 || ci != 0 {
		t.Fatal("empty estimator should be zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	mean, ci := m.Estimate()
	if mean != 5 {
		t.Fatalf("mean = %g, want 5", mean)
	}
	if ci <= 0 {
		t.Fatalf("ci = %g, want positive", ci)
	}
	if m.Count() != 8 {
		t.Fatalf("Count = %d", m.Count())
	}
}

func TestMeanConvergesAndCovers(t *testing.T) {
	r := rng.New(1)
	var m Mean
	const trueMean = 10.0
	for i := 0; i < 100000; i++ {
		m.Add(trueMean + r.NormFloat64()*3)
	}
	mean, ci := m.Estimate()
	if math.Abs(mean-trueMean) > 0.1 {
		t.Fatalf("mean = %g", mean)
	}
	if math.Abs(mean-trueMean) > ci*3 {
		t.Fatalf("true mean far outside CI: %g ± %g", mean, ci)
	}
	if ci > 0.1 {
		t.Fatalf("ci = %g too wide at n=100k", ci)
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	if f, ci := p.Estimate(); f != 0 || ci != 0 {
		t.Fatal("empty proportion should be zero")
	}
	r := rng.New(2)
	for i := 0; i < 50000; i++ {
		p.Add(r.Float64() < 0.3)
	}
	f, ci := p.Estimate()
	if math.Abs(f-0.3) > 0.01 {
		t.Fatalf("frac = %g", f)
	}
	if math.Abs(f-0.3) > 3*ci {
		t.Fatalf("true fraction outside 3x CI")
	}
}

func TestSum(t *testing.T) {
	s := Sum{JoinSize: 1000}
	for i := 0; i < 100; i++ {
		s.Add(2)
	}
	sum, _ := s.Estimate()
	if sum != 2000 {
		t.Fatalf("sum = %g, want 2000", sum)
	}
}

func TestJoinSizeEstimateExactForKDS(t *testing.T) {
	pts := dataset.Foursquare(4000, 3)
	R, S := dataset.SplitRS(pts, 0.5, 4)
	const l = 120
	s, err := core.NewKDS(R, S, core.Config{HalfExtent: l, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(2000); err != nil {
		t.Fatal(err)
	}
	exact := float64(join.Size(R, S, l))
	got := JoinSizeEstimate(s.Stats())
	if got != exact {
		t.Fatalf("KDS estimate %g != exact %g (acceptance is 1, MuSum = |J|)", got, exact)
	}
	if JoinSizeEstimate(core.Stats{}) != 0 {
		t.Fatal("zero stats should estimate 0")
	}
}

func TestJoinSizeEstimateBBSTUnbiased(t *testing.T) {
	pts := dataset.NYC(6000, 6)
	R, S := dataset.SplitRS(pts, 0.5, 7)
	const l = 150
	s, err := core.NewBBST(R, S, core.Config{HalfExtent: l, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(30000); err != nil {
		t.Fatal(err)
	}
	exact := float64(join.Size(R, S, l))
	got := JoinSizeEstimate(s.Stats())
	if relErr := math.Abs(got-exact) / exact; relErr > 0.05 {
		t.Fatalf("estimate %g vs exact %g: rel err %g", got, exact, relErr)
	}
}

func TestHistogramErrors(t *testing.T) {
	dom := geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}
	if _, err := NewHistogram(dom, 0, 5); err == nil {
		t.Fatal("zero width should fail")
	}
	if _, err := NewHistogram(geom.Rect{}, 5, 5); err == nil {
		t.Fatal("degenerate domain should fail")
	}
	h1, _ := NewHistogram(dom, 4, 4)
	h2, _ := NewHistogram(dom, 8, 8)
	if _, err := h1.Correlation(h2); err == nil {
		t.Fatal("shape mismatch should fail")
	}
	if _, err := h1.Correlation(h1); err == nil {
		t.Fatal("constant histogram correlation should fail")
	}
}

func TestHistogramAccumulatesAndClamps(t *testing.T) {
	dom := geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}
	h, err := NewHistogram(dom, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.AddPoint(1, 1)   // bin (0,0)
	h.AddPoint(9, 9)   // bin (1,1)
	h.AddPoint(-5, -5) // clamped to (0,0)
	h.AddPoint(50, 50) // clamped to (1,1)
	if h.At(0, 0) != 2 || h.At(1, 1) != 2 || h.Total() != 4 {
		t.Fatalf("bins: %g %g total %g", h.At(0, 0), h.At(1, 1), h.Total())
	}
	h.AddPair(geom.Pair{R: geom.Point{X: 2, Y: 2}, S: geom.Point{X: 4, Y: 4}}) // midpoint (3,3) -> (0,0)
	if h.At(0, 0) != 3 {
		t.Fatalf("AddPair midpoint wrong: %g", h.At(0, 0))
	}
	if h.Render() == "" {
		t.Fatal("render should not be empty")
	}
}

func TestHistogramCorrelation(t *testing.T) {
	dom := geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}
	r := rng.New(9)
	a, _ := NewHistogram(dom, 8, 8)
	b, _ := NewHistogram(dom, 8, 8)
	c, _ := NewHistogram(dom, 8, 8)
	for i := 0; i < 20000; i++ {
		// a and b sample the same clustered distribution; c is uniform.
		x, y := 2+r.NormFloat64(), 2+r.NormFloat64()
		a.AddPoint(x, y)
		x, y = 2+r.NormFloat64(), 2+r.NormFloat64()
		b.AddPoint(x, y)
		c.AddPoint(r.Range(0, 10), r.Range(0, 10))
	}
	same, err := a.Correlation(b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := a.Correlation(c)
	if err != nil {
		t.Fatal(err)
	}
	if same < 0.95 {
		t.Fatalf("same-distribution correlation %g too low", same)
	}
	if diff > same-0.1 {
		t.Fatalf("uniform correlation %g not clearly below %g", diff, same)
	}
}

func TestGroupCount(t *testing.T) {
	g := NewGroupCount(1000)
	if g.Estimate("a") != 0 {
		t.Fatal("empty estimator should be zero")
	}
	for i := 0; i < 80; i++ {
		g.Add("a")
	}
	for i := 0; i < 20; i++ {
		g.Add("b")
	}
	if got := g.Estimate("a"); got != 800 {
		t.Fatalf("a = %g, want 800", got)
	}
	if got := g.Estimate("b"); got != 200 {
		t.Fatalf("b = %g, want 200", got)
	}
	if got := g.Estimate("missing"); got != 0 {
		t.Fatalf("missing = %g", got)
	}
	if len(g.Groups()) != 2 {
		t.Fatalf("groups = %v", g.Groups())
	}
}

// TestEndToEndAggregation mirrors the aggregation example as a test:
// sampled aggregates must match exact join aggregates.
func TestEndToEndAggregation(t *testing.T) {
	pts := dataset.IMIS(8000, 10)
	R, S := dataset.SplitRS(pts, 0.5, 11)
	const l = 100
	var exactMean Mean
	join.PlaneSweep(R, S, l, func(r, s geom.Point) bool {
		exactMean.Add(math.Hypot(r.X-s.X, r.Y-s.Y))
		return true
	})
	if exactMean.Count() == 0 {
		t.Skip("empty join in setup")
	}
	smp, err := core.NewBBST(R, S, core.Config{HalfExtent: l, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := smp.Sample(30000)
	if err != nil {
		t.Fatal(err)
	}
	var est Mean
	for _, p := range pairs {
		est.Add(math.Hypot(p.R.X-p.S.X, p.R.Y-p.S.Y))
	}
	wantMean, _ := exactMean.Estimate()
	gotMean, ci := est.Estimate()
	if math.Abs(gotMean-wantMean) > 5*ci+0.5 {
		t.Fatalf("sampled mean %g vs exact %g (ci %g)", gotMean, wantMean, ci)
	}
}
