// Package registry caches built engine.Engines behind a composite
// key so that one process — typically srjserver — can serve many
// (dataset, l, algorithm, seed) combinations without rebuilding the
// paper's preprocessing structures per request. The cache is the
// amortization argument of the paper lifted one level: the BBST pays
// Õ(n + m) once and then answers every sample in Õ(1) expected time,
// and the registry makes "once" mean once per key per residency, not
// once per process or once per request.
//
// Three properties matter for serving:
//
//   - Memory budget. Engines retain O(n + m) structures; a registry
//     holding every key ever requested would grow without bound. The
//     registry tracks the SizeBytes of each resident engine and
//     evicts least-recently-used entries when a configurable budget
//     is exceeded.
//   - Build deduplication. A thundering herd of requests for a cold
//     key must pay one preprocessing pass, not one per request:
//     concurrent Gets for the same key coalesce onto a single build
//     (singleflight) and share its result or error. Builds of
//     *distinct* keys are additionally capped at GOMAXPROCS in
//     flight — they are CPU-bound, and an unbounded fan of them
//     would hold unbounded not-yet-evictable structures outside the
//     budget's reach.
//   - Observability. Per-entry hit counts and build times plus
//     aggregate hit/miss/build/eviction counters feed /v1/stats.
package registry

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Key identifies one cacheable engine: the named dataset pair, the
// window half-extent l, the sampling algorithm, and the engine seed —
// plus, for mutable datasets, the dataset *generation* the engine was
// built at. Two requests with equal Keys are served by the same
// structures. Static datasets stay at generation 0 forever; a dynamic
// store bumps its generation on every applied update, so an engine
// cached for an older generation simply misses — it can never serve
// deleted points to a request that looked up the current generation.
type Key struct {
	Dataset    string  `json:"dataset"`
	L          float64 `json:"l"`
	Algorithm  string  `json:"algorithm"`
	Seed       uint64  `json:"seed"`
	Generation uint64  `json:"generation,omitempty"`
}

// String renders the key the way srjserver's logs and -warm flag
// spell it: dataset:l:algorithm:seed, with an @generation suffix for
// engines of a mutated dataset (generation 0 — every static engine —
// keeps the historical spelling).
func (k Key) String() string {
	if k.Generation != 0 {
		return fmt.Sprintf("%s:%g:%s:%d@%d", k.Dataset, k.L, k.Algorithm, k.Seed, k.Generation)
	}
	return fmt.Sprintf("%s:%g:%s:%d", k.Dataset, k.L, k.Algorithm, k.Seed)
}

// sameSansGeneration reports whether the keys agree on every field
// but the generation.
func (k Key) sameSansGeneration(o Key) bool {
	k.Generation, o.Generation = 0, 0
	return k == o
}

// validate rejects keys the map bookkeeping cannot track. Builders
// impose stricter rules (positive L, known names); this guard only
// keeps the maps themselves sound.
func (k Key) validate() error {
	if math.IsNaN(k.L) {
		return fmt.Errorf("%w: L is NaN", ErrInvalidKey)
	}
	return nil
}

// BuildFunc constructs the engine for a key: resolve the dataset,
// run the preprocessing and counting phases, and return the serving
// engine. It is invoked outside the registry lock (builds are slow)
// and at most once per key per miss, however many Gets race.
type BuildFunc func(ctx context.Context, key Key) (*engine.Engine, error)

// ErrInvalidKey reports a key the registry refuses to track. A NaN L
// is the load-bearing case: Go map deletes on NaN-containing keys are
// no-ops, so admitting one would permanently corrupt the registry's
// bookkeeping (leaked inflight entries, unevictable cache entries).
var ErrInvalidKey = fmt.Errorf("registry: invalid key")

// Stats is an aggregate snapshot of registry traffic. Evictions is
// the budget-pressure signal; ManualEvictions counts explicit Evict
// calls (e.g. DELETE /v1/engines) — keep them apart so a tool
// cleaning up after itself never looks like a too-small cache.
type Stats struct {
	Hits            uint64 `json:"hits"`             // Gets served by a resident engine
	Misses          uint64 `json:"misses"`           // Gets that found no resident engine
	Builds          uint64 `json:"builds"`           // builds executed (deduplicated misses)
	Evictions       uint64 `json:"evictions"`        // entries dropped to respect the budget
	ManualEvictions uint64 `json:"manual_evictions"` // entries dropped by explicit Evict calls
	Entries         int    `json:"entries"`          // resident engines
	Bytes           int64  `json:"bytes"`            // summed SizeBytes of resident engines
	Budget          int64  `json:"budget"`           // configured budget (0 = unlimited)
	// BuildLatency distributes executed build durations. It lives on
	// the Registry itself (not the entries), so eviction never makes
	// the exported histogram run backwards.
	BuildLatency obs.HistogramSnapshot `json:"build_latency"`
}

// EntryInfo describes one resident engine for /v1/engines.
type EntryInfo struct {
	Key       Key          `json:"key"`
	SizeBytes int64        `json:"size_bytes"`
	Hits      uint64       `json:"hits"`       // Gets served by this residency
	BuildTime float64      `json:"build_secs"` // wall-clock of the build
	Engine    engine.Stats `json:"engine"`     // request-level serving counters
}

// entry is one resident engine plus its bookkeeping.
type entry struct {
	key     Key
	eng     *engine.Engine
	elem    *list.Element // position in the LRU list
	size    int64
	hits    uint64
	buildNS int64
}

// call is one in-flight build that concurrent Gets coalesce onto.
// waiters (guarded by the registry mutex) counts the Gets still
// blocked on it; when every waiter gives up before the build starts,
// the build is abandoned instead of executed.
type call struct {
	done    chan struct{}
	waiters int
	eng     *engine.Engine
	err     error
}

// Registry is a concurrency-safe, memory-budgeted cache of built
// engines. The zero value is not usable; construct with New.
//
// Every mutation path — Get's hit/miss/insert, explicit Evict, and
// budget eviction — holds mu across its whole read-modify-write, and
// preserves one structural invariant: entries and lru hold exactly
// the same set, and bytes equals the summed size of that set. Two
// consequences follow and are part of the contract: an engine
// returned by Get stays usable when eviction races it (eviction only
// drops the registry's reference — in-flight holders keep serving,
// GC reclaims after the last one returns), and an Evict that races a
// build finds nothing (an in-flight build is not resident; its insert
// lands atomically afterwards). The race-focused tests in
// registry_race_test.go hammer these interleavings under -race and
// assert the invariant at quiescent points.
type Registry struct {
	build    BuildFunc
	budget   int64         // bytes; 0 = unlimited
	buildSem chan struct{} // caps concurrent builds of distinct keys

	mu       sync.Mutex
	entries  map[Key]*entry
	lru      *list.List // front = most recently used; values are *entry
	bytes    int64
	inflight map[Key]*call

	hits, misses, builds, evictions, manualEvictions uint64

	buildHist *obs.Histogram // durations of executed builds
}

// New returns a registry that builds cold keys with build and keeps
// resident engines within budgetBytes (0 disables the budget). The
// most recently inserted engine is never evicted — a single engine
// larger than the budget serves its requests and is dropped as soon
// as a different key becomes more recent.
func New(build BuildFunc, budgetBytes int64) *Registry {
	if build == nil {
		panic("registry: nil BuildFunc")
	}
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	return &Registry{
		build:     build,
		budget:    budgetBytes,
		buildSem:  make(chan struct{}, runtime.GOMAXPROCS(0)),
		entries:   make(map[Key]*entry),
		lru:       list.New(),
		inflight:  make(map[Key]*call),
		buildHist: obs.NewHistogram(obs.BuildDurationBuckets),
	}
}

// Get returns the engine for key, building it if no resident engine
// exists. Concurrent Gets for the same cold key share one build: all
// callers block until it finishes and receive the same engine or the
// same error. Build errors are not cached — the next Get retries.
//
// ctx cancels the *wait*, not the build: a build keeps running for
// the benefit of the other waiters (and the cache) even if this
// caller gives up.
func (r *Registry) Get(ctx context.Context, key Key) (*engine.Engine, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.hits++
		e.hits++
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		return e.eng, nil
	}
	r.misses++
	if c, ok := r.inflight[key]; ok {
		// Someone is already building this key; join them.
		c.waiters++
		r.mu.Unlock()
		return r.wait(ctx, c)
	}
	c := &call{done: make(chan struct{}), waiters: 1}
	r.inflight[key] = c
	r.mu.Unlock()

	// The build is shared by every waiter (and the cache), so it runs
	// in its own goroutine on a context detached from the caller that
	// happened to start it: the initiator's deadline cancels its wait
	// below, exactly like any other waiter's, never a build in
	// progress.
	buildCtx := context.WithoutCancel(ctx)
	go func() {
		// The semaphore bounds concurrent builds — and with them the
		// memory held by structures the budget cannot see yet — at
		// GOMAXPROCS; beyond that, distinct cold keys queue here. A
		// queued build whose waiters have all timed out is abandoned
		// rather than executed, so a burst of never-to-be-used keys
		// costs queue slots, not preprocessing passes.
		r.buildSem <- struct{}{}
		r.mu.Lock()
		if c.waiters == 0 {
			delete(r.inflight, key)
			c.err = context.Canceled
			r.mu.Unlock()
			<-r.buildSem
			close(c.done)
			return
		}
		r.builds++
		r.mu.Unlock()
		start := time.Now()
		eng, err := r.build(buildCtx, key)
		buildNS := time.Since(start).Nanoseconds()
		r.buildHist.Observe(time.Duration(buildNS).Seconds())
		<-r.buildSem
		r.mu.Lock()
		delete(r.inflight, key)
		c.eng, c.err = eng, err
		if err == nil {
			e := &entry{key: key, eng: eng, size: int64(eng.SizeBytes()), buildNS: buildNS}
			e.elem = r.lru.PushFront(e)
			r.entries[key] = e
			r.bytes += e.size
			r.evictLocked()
		}
		r.mu.Unlock()
		close(c.done)
	}()
	return r.wait(ctx, c)
}

// wait blocks on a shared build until it finishes or ctx expires; a
// departing waiter deregisters itself so fully-abandoned queued
// builds can be skipped.
func (r *Registry) wait(ctx context.Context, c *call) (*engine.Engine, error) {
	select {
	case <-c.done:
		return c.eng, c.err
	case <-ctx.Done():
		r.mu.Lock()
		c.waiters--
		r.mu.Unlock()
		return nil, ctx.Err()
	}
}

// evictLocked drops least-recently-used entries until the budget is
// respected. The most recent entry always stays: evicting the engine
// a request is about to use would turn an oversized engine into a
// rebuild-per-request livelock.
func (r *Registry) evictLocked() {
	if r.budget <= 0 {
		return
	}
	for r.bytes > r.budget && r.lru.Len() > 1 {
		back := r.lru.Back()
		e := back.Value.(*entry)
		r.lru.Remove(back)
		delete(r.entries, e.key)
		r.bytes -= e.size
		r.evictions++
		// In-flight requests holding the *engine.Engine keep serving;
		// the structures are freed by GC once they return.
	}
}

// Evict removes key's resident engine, reporting whether one existed.
// Requests already holding the engine are unaffected.
func (r *Registry) Evict(key Key) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok {
		return false
	}
	r.lru.Remove(e.elem)
	delete(r.entries, key)
	r.bytes -= e.size
	r.manualEvictions++
	return true
}

// EvictOlder removes every resident engine that matches key on all
// fields except the generation and carries a generation strictly
// below key.Generation, reporting how many were dropped. Two callers
// exist: the update path drops the engines a generation bump just
// made stale (pass the new generation), and DELETE /v1/engines drops
// every generation of a key (pass math.MaxUint64). Requests already
// holding a dropped engine are unaffected, exactly as with Evict.
func (r *Registry) EvictOlder(key Key) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for k, e := range r.entries {
		if k.Generation >= key.Generation || !k.sameSansGeneration(key) {
			continue
		}
		r.lru.Remove(e.elem)
		delete(r.entries, k)
		r.bytes -= e.size
		r.manualEvictions++
		n++
	}
	return n
}

// Stats snapshots the aggregate counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Hits:            r.hits,
		Misses:          r.misses,
		Builds:          r.builds,
		Evictions:       r.evictions,
		ManualEvictions: r.manualEvictions,
		Entries:         len(r.entries),
		Bytes:           r.bytes,
		Budget:          r.budget,
		BuildLatency:    r.buildHist.Snapshot(),
	}
}

// Entries lists the resident engines, most recently used first.
func (r *Registry) Entries() []EntryInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EntryInfo, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, EntryInfo{
			Key:       e.key,
			SizeBytes: e.size,
			Hits:      e.hits,
			BuildTime: time.Duration(e.buildNS).Seconds(),
			Engine:    e.eng.Stats(),
		})
	}
	return out
}
