package registry

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// testBuild returns a BuildFunc over real BBST engines (the reseed
// hook engines need is internal to core, so fakes cannot stand in)
// and an invocation counter. Engine size scales with the dataset
// size, which the eviction tests exploit.
func testBuild(n int, delay time.Duration) (BuildFunc, *atomic.Int64) {
	var builds atomic.Int64
	return func(ctx context.Context, key Key) (*engine.Engine, error) {
		builds.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		R := dataset.Uniform(n, key.Seed+1)
		S := dataset.Uniform(n, key.Seed+2)
		s, err := core.NewBBST(R, S, core.Config{HalfExtent: key.L, Seed: key.Seed})
		if err != nil {
			return nil, err
		}
		return engine.New(s, key.Seed)
	}, &builds
}

func TestRegistryHitMissStats(t *testing.T) {
	build, builds := testBuild(500, 0)
	r := New(build, 0)
	key := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 1}
	ctx := context.Background()

	e1, err := r.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("second Get did not return the cached engine")
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Builds != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != int64(e1.SizeBytes()) {
		t.Fatalf("Bytes = %d, engine SizeBytes = %d", st.Bytes, e1.SizeBytes())
	}
	ents := r.Entries()
	if len(ents) != 1 || ents[0].Key != key || ents[0].Hits != 1 || ents[0].BuildTime <= 0 {
		t.Fatalf("entries = %+v", ents)
	}
}

// TestRegistrySingleflight: a thundering herd on a cold key pays
// exactly one preprocessing pass and shares the resulting engine.
func TestRegistrySingleflight(t *testing.T) {
	build, builds := testBuild(500, 30*time.Millisecond)
	r := New(build, 0)
	key := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 2}

	const herd = 16
	engines := make([]*engine.Engine, herd)
	errs := make([]error, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			engines[i], errs[i] = r.Get(context.Background(), key)
		}(i)
	}
	wg.Wait()
	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if engines[i] != engines[0] {
			t.Fatal("herd members got different engines")
		}
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
	if st := r.Stats(); st.Hits+st.Misses != herd {
		t.Fatalf("hits %d + misses %d != %d Gets", st.Hits, st.Misses, herd)
	}
}

// TestRegistryEviction: exceeding the budget drops the least recently
// used entry; re-requesting it is a rebuild.
func TestRegistryEviction(t *testing.T) {
	build, builds := testBuild(500, 0)
	ctx := context.Background()
	keyA := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 1}
	keyB := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 2}

	// Size one engine, then budget for ~1.5 of them.
	probe := New(build, 0)
	eA, err := probe.Get(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(eA.SizeBytes()) * 3 / 2

	r := New(build, budget)
	if _, err := r.Get(ctx, keyA); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(ctx, keyB); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("after overflow: %+v", st)
	}
	if st.Bytes > budget {
		t.Fatalf("Bytes %d over budget %d", st.Bytes, budget)
	}
	ents := r.Entries()
	if len(ents) != 1 || ents[0].Key != keyB {
		t.Fatalf("survivor = %+v, want keyB", ents)
	}
	// keyA was evicted: getting it again rebuilds (and evicts keyB).
	before := builds.Load()
	if _, err := r.Get(ctx, keyA); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != before+1 {
		t.Fatal("evicted key did not rebuild")
	}
}

// TestRegistryLRUOrder: touching an entry protects it; the coldest
// entry is the one evicted.
func TestRegistryLRUOrder(t *testing.T) {
	build, _ := testBuild(500, 0)
	ctx := context.Background()
	keyA := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 1}
	keyB := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 2}
	keyC := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 3}

	probe := New(build, 0)
	eA, err := probe.Get(ctx, keyA)
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(eA.SizeBytes()) * 5 / 2 // room for two engines

	r := New(build, budget)
	for _, k := range []Key{keyA, keyB} {
		if _, err := r.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	// Touch A so B becomes the LRU victim when C arrives.
	if _, err := r.Get(ctx, keyA); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(ctx, keyC); err != nil {
		t.Fatal(err)
	}
	resident := map[Key]bool{}
	for _, e := range r.Entries() {
		resident[e.Key] = true
	}
	if !resident[keyA] || !resident[keyC] || resident[keyB] {
		t.Fatalf("resident = %v, want A and C", resident)
	}
}

// TestRegistryOversizedEngine: an engine bigger than the whole budget
// still serves (the newest entry is never evicted) and is dropped as
// soon as another key becomes more recent.
func TestRegistryOversizedEngine(t *testing.T) {
	build, _ := testBuild(500, 0)
	ctx := context.Background()
	r := New(build, 1) // one byte: everything is oversized
	keyA := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 1}
	keyB := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 2}
	if _, err := r.Get(ctx, keyA); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Entries != 1 {
		t.Fatalf("oversized engine not resident: %+v", st)
	}
	if _, err := r.Get(ctx, keyB); err != nil {
		t.Fatal(err)
	}
	ents := r.Entries()
	if len(ents) != 1 || ents[0].Key != keyB {
		t.Fatalf("entries = %+v, want only keyB", ents)
	}
}

// TestRegistryBuildErrorNotCached: a failed build is retried by the
// next Get instead of poisoning the key.
func TestRegistryBuildErrorNotCached(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	good, _ := testBuild(500, 0)
	build := func(ctx context.Context, key Key) (*engine.Engine, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return good(ctx, key)
	}
	r := New(build, 0)
	key := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 1}
	if _, err := r.Get(context.Background(), key); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := r.Stats(); st.Entries != 0 {
		t.Fatalf("failed build was cached: %+v", st)
	}
	if _, err := r.Get(context.Background(), key); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

// TestRegistryWaiterCancellation: a waiter's context cancels its
// wait, not the shared build, which completes and is cached.
func TestRegistryWaiterCancellation(t *testing.T) {
	release := make(chan struct{})
	good, _ := testBuild(500, 0)
	build := func(ctx context.Context, key Key) (*engine.Engine, error) {
		<-release
		return good(ctx, key)
	}
	r := New(build, 0)
	key := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 1}

	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		close(started)
		_, err := r.Get(context.Background(), key)
		leaderDone <- err
	}()
	<-started
	// Wait for the leader to register its in-flight build.
	for {
		r.mu.Lock()
		n := len(r.inflight)
		r.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Get(ctx, key); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Entries != 1 || st.Builds != 1 {
		t.Fatalf("build did not complete and cache: %+v", st)
	}
}

// TestRegistryInitiatorCancellation: the Get that triggers a build is
// bounded by its own context just like a joiner — it returns the
// cancellation promptly while the already-started build finishes in
// the background and lands in the cache.
func TestRegistryInitiatorCancellation(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	good, _ := testBuild(500, 0)
	build := func(ctx context.Context, key Key) (*engine.Engine, error) {
		close(started)
		<-release
		return good(ctx, key)
	}
	r := New(build, 0)
	key := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 1}

	// Cancel the initiator only once the build has provably begun, so
	// this exercises the started-build path, not abandonment.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	if _, err := r.Get(ctx, key); !errors.Is(err, context.Canceled) {
		t.Fatalf("initiator got %v, want Canceled", err)
	}
	close(release)
	// The detached build completes and is cached: a later Get with a
	// live context hits it without rebuilding.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Entries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("detached build never cached")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := r.Get(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Builds != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRegistryAbandonedBuildSkipped: a build still queued on the
// concurrency semaphore when its last waiter gives up is skipped
// outright — a burst of never-to-be-used keys must not buy
// preprocessing passes nobody is waiting for.
func TestRegistryAbandonedBuildSkipped(t *testing.T) {
	limit := runtime.GOMAXPROCS(0)
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(limit)
	var builtSeeds sync.Map
	good, _ := testBuild(200, 0)
	build := func(ctx context.Context, key Key) (*engine.Engine, error) {
		builtSeeds.Store(key.Seed, true)
		started.Done()
		<-release
		return good(ctx, key)
	}
	r := New(build, 0)

	// Fill every semaphore slot with builds blocked inside the
	// builder.
	fillers := make(chan error, limit)
	for i := 0; i < limit; i++ {
		go func(i int) {
			_, err := r.Get(context.Background(), Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: uint64(i)})
			fillers <- err
		}(i)
	}
	started.Wait()

	// This key queues behind the full semaphore; cancel its only
	// waiter before a slot frees.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	abandoned := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 999}
	if _, err := r.Get(ctx, abandoned); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued initiator got %v, want Canceled", err)
	}

	close(release)
	for i := 0; i < limit; i++ {
		if err := <-fillers; err != nil {
			t.Fatal(err)
		}
	}
	// Once the queue drains, the abandoned key must not have built
	// and must not linger in the inflight map.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		pending := len(r.inflight)
		r.mu.Unlock()
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d inflight entries never drained", pending)
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := builtSeeds.Load(uint64(999)); ok {
		t.Fatal("abandoned build executed anyway")
	}
	if st := r.Stats(); st.Builds != uint64(limit) || st.Entries != limit {
		t.Fatalf("stats = %+v, want %d builds", st, limit)
	}
}

// TestRegistryBuildConcurrencyCap: distinct cold keys cannot fan out
// more than GOMAXPROCS builds at once — the memory those builds hold
// is invisible to the budget, so the semaphore is what bounds it.
func TestRegistryBuildConcurrencyCap(t *testing.T) {
	limit := runtime.GOMAXPROCS(0)
	var cur, peak atomic.Int64
	good, _ := testBuild(200, 0)
	build := func(ctx context.Context, key Key) (*engine.Engine, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		defer cur.Add(-1)
		return good(ctx, key)
	}
	r := New(build, 0)
	const keys = 64
	var wg sync.WaitGroup
	errs := make([]error, keys)
	for i := 0; i < keys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Get(context.Background(), Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: uint64(i)})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := peak.Load(); got > int64(limit) {
		t.Fatalf("peak concurrent builds = %d > GOMAXPROCS %d", got, limit)
	}
	if st := r.Stats(); st.Builds != keys {
		t.Fatalf("builds = %d, want %d", st.Builds, keys)
	}
}

func TestRegistryExplicitEvict(t *testing.T) {
	build, _ := testBuild(500, 0)
	r := New(build, 0)
	key := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 1}
	if _, err := r.Get(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	if !r.Evict(key) {
		t.Fatal("Evict found nothing")
	}
	if r.Evict(key) {
		t.Fatal("double Evict reported success")
	}
	st := r.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after evict: %+v", st)
	}
	// Manual evictions are accounted apart from budget pressure.
	if st.ManualEvictions != 1 || st.Evictions != 0 {
		t.Fatalf("eviction accounting conflated: %+v", st)
	}
}

// TestRegistryRejectsNaNKey: a NaN L would corrupt the registry's map
// bookkeeping (Go map deletes on NaN keys are no-ops), so Get refuses
// it outright and tracks nothing.
func TestRegistryRejectsNaNKey(t *testing.T) {
	build, builds := testBuild(200, 0)
	r := New(build, 0)
	key := Key{Dataset: "uniform", L: math.NaN(), Algorithm: "bbst", Seed: 1}
	for i := 0; i < 3; i++ {
		if _, err := r.Get(context.Background(), key); !errors.Is(err, ErrInvalidKey) {
			t.Fatalf("err = %v, want ErrInvalidKey", err)
		}
	}
	if builds.Load() != 0 {
		t.Fatal("NaN key reached the builder")
	}
	r.mu.Lock()
	leaked := len(r.inflight)
	r.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d inflight entries leaked", leaked)
	}
	if st := r.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("NaN key was tracked: %+v", st)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Dataset: "nyc", L: 100.5, Algorithm: "bbst", Seed: 7}
	if got := k.String(); got != "nyc:100.5:bbst:7" {
		t.Fatalf("String = %q", got)
	}
	k.Generation = 3
	if got := k.String(); got != "nyc:100.5:bbst:7@3" {
		t.Fatalf("generation String = %q", got)
	}
}

// TestRegistryGenerationsAndEvictOlder: generation-tagged keys are
// distinct cache entries, and EvictOlder drops exactly the stale
// generations of one key — never its current generation, never other
// keys.
func TestRegistryGenerationsAndEvictOlder(t *testing.T) {
	build, builds := testBuild(200, 0)
	r := New(build, 0)
	ctx := context.Background()
	base := Key{Dataset: "dyn", L: 100, Algorithm: "bbst", Seed: 1}
	other := Key{Dataset: "static", L: 100, Algorithm: "bbst", Seed: 1}
	for gen := uint64(0); gen <= 3; gen++ {
		k := base
		k.Generation = gen
		if _, err := r.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Get(ctx, other); err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 5 {
		t.Fatalf("generations did not miss independently: %d builds", n)
	}

	cur := base
	cur.Generation = 3
	if n := r.EvictOlder(cur); n != 3 {
		t.Fatalf("EvictOlder dropped %d entries, want 3 (gens 0-2)", n)
	}
	st := r.Stats()
	if st.Entries != 2 || st.ManualEvictions != 3 {
		t.Fatalf("after EvictOlder: %+v", st)
	}
	// The current generation and the unrelated key survived: both are
	// hits, not rebuilds.
	before := builds.Load()
	if _, err := r.Get(ctx, cur); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(ctx, other); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != before {
		t.Fatal("EvictOlder dropped a live entry")
	}
	// The evict-everything spelling (MaxUint64) clears the key's
	// whole history and leaves the other key alone.
	all := base
	all.Generation = ^uint64(0)
	if n := r.EvictOlder(all); n != 1 {
		t.Fatalf("evict-all dropped %d, want 1", n)
	}
	if st := r.Stats(); st.Entries != 1 {
		t.Fatalf("after evict-all: %+v", st)
	}
}
