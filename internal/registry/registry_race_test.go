package registry

// A race-focused hammer on the registry's three mutation paths —
// Get (hit, or miss → singleflight build → insert), explicit Evict,
// and budget eviction — all attacking the same keys at once. The
// registry's correctness argument is an invariant the mutex must
// preserve across every interleaving:
//
//	bytes == Σ size of resident entries
//	entries map and LRU list hold exactly the same set
//	an engine returned by Get is usable even if evicted concurrently
//	  (eviction drops the registry's reference, never the engine)
//
// The hammer exists to let -race and the invariant check falsify
// that; the assertions below document the invariant as much as they
// test it. Run in CI under -race with -count=2 alongside the rest of
// the serving stack.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// checkInvariants asserts the registry's structural invariant under
// its own lock, so it can interleave with a running hammer.
func checkInvariants(t *testing.T, r *Registry) {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) != r.lru.Len() {
		t.Fatalf("entries map holds %d keys, LRU list %d", len(r.entries), r.lru.Len())
	}
	var bytes int64
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		got, ok := r.entries[e.key]
		if !ok {
			t.Fatalf("LRU entry %s missing from the map", e.key)
		}
		if got != e {
			t.Fatalf("map and LRU disagree on entry %s", e.key)
		}
		bytes += e.size
	}
	if bytes != r.bytes {
		t.Fatalf("bytes counter %d, entries sum to %d", r.bytes, bytes)
	}
	if r.bytes < 0 {
		t.Fatalf("negative byte accounting: %d", r.bytes)
	}
}

// TestRegistryConcurrentGetEvict hammers Get, Evict, and
// budget-eviction pressure on a handful of shared keys from many
// goroutines. Every Get must return a usable engine or a context
// error — never a stale or half-evicted one — and the bookkeeping
// must balance at every quiescent point.
func TestRegistryConcurrentGetEvict(t *testing.T) {
	build, _ := testBuild(300, 0)

	// Budget for roughly two of the ~equal-sized engines while six
	// keys fight over residency: every insert is likely to evict, so
	// the insert-evict ordering races the explicit Evicts below.
	probe := New(build, 0)
	e, err := probe.Get(context.Background(), Key{Dataset: "probe", L: 100, Algorithm: "bbst", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := New(build, int64(e.SizeBytes())*5/2)

	const (
		workers  = 8
		rounds   = 60
		hotKeys  = 6
		drawSize = 32
	)
	keyFor := func(i int) Key {
		return Key{Dataset: "hammer", L: 100, Algorithm: "bbst", Seed: uint64(i % hotKeys)}
	}

	var wg sync.WaitGroup
	var gets, evicts, draws atomic.Int64
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := keyFor(w + i)
				switch i % 3 {
				case 0, 1:
					eng, err := r.Get(context.Background(), key)
					if err != nil {
						errs[w] = fmt.Errorf("get %s: %w", key, err)
						return
					}
					gets.Add(1)
					// The engine stays usable even if an eviction
					// races this draw: eviction only drops the
					// registry's reference.
					if _, err := eng.Sample(drawSize); err != nil {
						errs[w] = fmt.Errorf("draw on %s: %w", key, err)
						return
					}
					draws.Add(1)
				case 2:
					if r.Evict(key) {
						evicts.Add(1)
					}
				}
			}
		}(w)
	}

	// Interleave invariant checks with the hammer: the invariant must
	// hold at every lock release, not just at the end.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		checkInvariants(t, r)
		select {
		case <-done:
			checkInvariants(t, r)
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			st := r.Stats()
			if st.Hits+st.Misses != uint64(gets.Load()) {
				t.Fatalf("hits %d + misses %d != %d Gets", st.Hits, st.Misses, gets.Load())
			}
			if st.ManualEvictions != uint64(evicts.Load()) {
				t.Fatalf("manual evictions %d, Evict succeeded %d times", st.ManualEvictions, evicts.Load())
			}
			if st.Budget > 0 && st.Bytes > st.Budget && st.Entries > 1 {
				t.Fatalf("budget overshot with %d entries resident: %+v", st.Entries, st)
			}
			t.Logf("%d gets (%d draws), %d manual evictions, stats %+v",
				gets.Load(), draws.Load(), evicts.Load(), st)
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// TestRegistryEvictDuringBuild pins the one genuinely subtle
// ordering: Evict racing the insert at the end of a build. Whichever
// side wins the lock, the invariant holds and the engine handed to
// the Get callers works; if the Evict ran before the insert it simply
// found nothing (an in-flight build is not resident — that is the
// documented semantics, not a bug).
func TestRegistryEvictDuringBuild(t *testing.T) {
	enter := make(chan struct{}, 1)
	release := make(chan struct{})
	good, _ := testBuild(200, 0)
	build := func(ctx context.Context, key Key) (*engine.Engine, error) {
		enter <- struct{}{}
		<-release
		return good(ctx, key)
	}
	r := New(build, 0)
	key := Key{Dataset: "uniform", L: 100, Algorithm: "bbst", Seed: 1}

	getDone := make(chan error, 1)
	go func() {
		eng, err := r.Get(context.Background(), key)
		if err == nil {
			_, err = eng.Sample(8)
		}
		getDone <- err
	}()
	<-enter // the build is provably in progress

	// Evict while the build is mid-flight: nothing is resident yet.
	if r.Evict(key) {
		t.Fatal("Evict removed an in-flight build")
	}
	close(release)
	if err := <-getDone; err != nil {
		t.Fatal(err)
	}
	// The build's insert landed after the failed Evict: resident now.
	if st := r.Stats(); st.Entries != 1 || st.ManualEvictions != 0 {
		t.Fatalf("stats = %+v, want the built engine resident", st)
	}
	checkInvariants(t, r)
	// And an Evict after the insert wins normally.
	if !r.Evict(key) {
		t.Fatal("post-build Evict found nothing")
	}
	checkInvariants(t, r)
}
