package join

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/rtree"
)

func randomPoints(r *rng.RNG, n int, extent float64, base int32) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, extent), Y: r.Range(0, extent), ID: base + int32(i)}
	}
	return pts
}

// pairKey canonicalizes a pair for set comparison.
func pairKey(r, s geom.Point) string { return fmt.Sprintf("%d|%d", r.ID, s.ID) }

func collect(run func(Emit)) map[string]int {
	out := map[string]int{}
	run(func(r, s geom.Point) bool {
		out[pairKey(r, s)]++
		return true
	})
	return out
}

func sameJoin(t *testing.T, name string, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", name, len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("%s: pair %s count %d, want %d", name, k, got[k], c)
		}
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	r := rng.New(1)
	for _, tc := range []struct {
		n, m int
		l    float64
	}{
		{0, 10, 5}, {10, 0, 5}, {1, 1, 100}, {50, 80, 3}, {200, 150, 8}, {300, 300, 0.5},
	} {
		t.Run(fmt.Sprintf("n=%d,m=%d,l=%g", tc.n, tc.m, tc.l), func(t *testing.T) {
			R := randomPoints(r, tc.n, 50, 0)
			S := randomPoints(r, tc.m, 50, 10000)
			want := collect(func(e Emit) { BruteForce(R, S, tc.l, e) })
			sameJoin(t, "planesweep", collect(func(e Emit) { PlaneSweep(R, S, tc.l, e) }), want)
			sameJoin(t, "gridjoin", collect(func(e Emit) {
				if err := GridJoin(R, S, tc.l, e); err != nil {
					t.Fatal(err)
				}
			}), want)
			sameJoin(t, "inl", collect(func(e Emit) { IndexNestedLoop(R, S, nil, tc.l, e) }), want)
			if got := Size(R, S, tc.l); got != uint64(len(want)) {
				t.Fatalf("Size = %d, want %d", got, len(want))
			}
		})
	}
}

func TestBoundaryInclusive(t *testing.T) {
	// Points exactly on the window edge must join (closed predicate).
	R := []geom.Point{{X: 10, Y: 10, ID: 1}}
	S := []geom.Point{
		{X: 15, Y: 10, ID: 2},      // on right edge (l=5)
		{X: 5, Y: 5, ID: 3},        // on corner
		{X: 10, Y: 15.0001, ID: 4}, // just outside
	}
	for _, algo := range []struct {
		name string
		run  func(Emit)
	}{
		{"brute", func(e Emit) { BruteForce(R, S, 5, e) }},
		{"sweep", func(e Emit) { PlaneSweep(R, S, 5, e) }},
		{"grid", func(e Emit) { _ = GridJoin(R, S, 5, e) }},
		{"inl", func(e Emit) { IndexNestedLoop(R, S, nil, 5, e) }},
	} {
		got := collect(algo.run)
		if len(got) != 2 || got[pairKey(R[0], S[0])] != 1 || got[pairKey(R[0], S[1])] != 1 {
			t.Fatalf("%s: got %v", algo.name, got)
		}
	}
}

func TestEarlyStop(t *testing.T) {
	r := rng.New(2)
	R := randomPoints(r, 50, 10, 0)
	S := randomPoints(r, 50, 10, 1000)
	for _, algo := range []struct {
		name string
		run  func(Emit)
	}{
		{"brute", func(e Emit) { BruteForce(R, S, 5, e) }},
		{"sweep", func(e Emit) { PlaneSweep(R, S, 5, e) }},
		{"grid", func(e Emit) { _ = GridJoin(R, S, 5, e) }},
		{"inl", func(e Emit) { IndexNestedLoop(R, S, nil, 5, e) }},
	} {
		count := 0
		algo.run(func(r, s geom.Point) bool {
			count++
			return count < 7
		})
		if count != 7 {
			t.Fatalf("%s: early stop emitted %d, want 7", algo.name, count)
		}
	}
}

func TestIndexNestedLoopPrebuiltTree(t *testing.T) {
	r := rng.New(3)
	R := randomPoints(r, 100, 20, 0)
	S := randomPoints(r, 100, 20, 1000)
	tree := rtree.New(S)
	want := collect(func(e Emit) { BruteForce(R, S, 4, e) })
	got := collect(func(e Emit) { IndexNestedLoop(R, S, tree, 4, e) })
	sameJoin(t, "inl-prebuilt", got, want)
}

func TestMaterialize(t *testing.T) {
	r := rng.New(4)
	R := randomPoints(r, 40, 20, 0)
	S := randomPoints(r, 40, 20, 1000)
	pairs := Materialize(R, S, 5)
	if uint64(len(pairs)) != Size(R, S, 5) {
		t.Fatalf("Materialize %d pairs, Size %d", len(pairs), Size(R, S, 5))
	}
	for _, p := range pairs {
		if !geom.InWindow(p.R, p.S, 5) {
			t.Fatalf("materialized invalid pair %v", p)
		}
	}
}

func TestThenSample(t *testing.T) {
	r := rng.New(5)
	R := randomPoints(r, 30, 10, 0)
	S := randomPoints(r, 30, 10, 1000)
	const l = 3
	samples := ThenSample(R, S, l, 500, r)
	if len(samples) != 500 {
		t.Fatalf("got %d samples, want 500", len(samples))
	}
	for _, p := range samples {
		if !geom.InWindow(p.R, p.S, l) {
			t.Fatalf("sampled invalid pair %v", p)
		}
	}
	// Empty join yields no samples.
	far := []geom.Point{{X: 1000, Y: 1000}}
	if got := ThenSample(R, far, 0.001, 10, r); got != nil {
		t.Fatalf("expected nil samples on empty join, got %d", len(got))
	}
}

func TestThenSampleUniform(t *testing.T) {
	r := rng.New(6)
	R := randomPoints(r, 12, 10, 0)
	S := randomPoints(r, 12, 10, 1000)
	const l = 4
	joined := Materialize(R, S, l)
	if len(joined) < 10 {
		t.Skip("join too small for distribution test")
	}
	counts := map[string]int{}
	const draws = 100000
	samples := ThenSample(R, S, l, draws, r)
	for _, p := range samples {
		counts[pairKey(p.R, p.S)]++
	}
	expected := float64(draws) / float64(len(joined))
	chi2 := 0.0
	for _, p := range joined {
		d := float64(counts[pairKey(p.R, p.S)]) - expected
		chi2 += d * d / expected
	}
	if dof := float64(len(joined) - 1); chi2 > 2*dof+50 {
		t.Fatalf("ThenSample skewed: chi2 = %g (dof %g)", chi2, dof)
	}
}

func TestQuickSweepEqualsBrute(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n, m := 1+rr.Intn(60), 1+rr.Intn(60)
		l := rr.Range(0.1, 10)
		R := randomPoints(rr, n, 20, 0)
		S := randomPoints(rr, m, 20, 1000)
		want := collect(func(e Emit) { BruteForce(R, S, l, e) })
		got := collect(func(e Emit) { PlaneSweep(R, S, l, e) })
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if got[k] != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetry(t *testing.T) {
	// |R join S| == |S join R| because the window size is shared.
	r := rng.New(7)
	R := randomPoints(r, 80, 15, 0)
	S := randomPoints(r, 90, 15, 1000)
	if a, b := Size(R, S, 3), Size(S, R, 3); a != b {
		t.Fatalf("join size not symmetric: %d vs %d", a, b)
	}
}

func TestInputsNotMutated(t *testing.T) {
	r := rng.New(8)
	R := randomPoints(r, 50, 10, 0)
	S := randomPoints(r, 50, 10, 1000)
	rCopy := append([]geom.Point(nil), R...)
	sCopy := append([]geom.Point(nil), S...)
	PlaneSweep(R, S, 2, func(geom.Point, geom.Point) bool { return true })
	_ = Size(R, S, 2)
	_ = GridJoin(R, S, 2, func(geom.Point, geom.Point) bool { return true })
	for i := range R {
		if R[i] != rCopy[i] {
			t.Fatal("R was mutated")
		}
	}
	for i := range S {
		if S[i] != sCopy[i] {
			t.Fatal("S was mutated")
		}
	}
	// Also verify points stay sorted-agnostic: sorting inside must be on copies.
	if sort.SliceIsSorted(R, func(i, j int) bool { return R[i].X < R[j].X }) != sort.SliceIsSorted(rCopy, func(i, j int) bool { return rCopy[i].X < rCopy[j].X }) {
		t.Fatal("R order changed")
	}
}

func BenchmarkPlaneSweep(b *testing.B) {
	r := rng.New(9)
	R := randomPoints(r, 20000, 10000, 0)
	S := randomPoints(r, 20000, 10000, 1000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Size(R, S, 100)
	}
}

func BenchmarkIndexNestedLoop(b *testing.B) {
	r := rng.New(10)
	R := randomPoints(r, 20000, 10000, 0)
	S := randomPoints(r, 20000, 10000, 1000000)
	tree := rtree.New(S)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		IndexNestedLoop(R, S, tree, 100, func(geom.Point, geom.Point) bool {
			count++
			return true
		})
	}
}
