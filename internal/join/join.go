// Package join implements exact spatial range join algorithms:
// plane-sweep (Patel & DeWitt-style sweep specialized to points),
// grid-partitioned join, and index nested-loop over an R-tree — the
// approaches the paper's related-work section identifies as the
// state of the art for exact joins — plus brute force for testing.
//
// The package also provides join-size counting (needed by the
// experiments to report |J| and the approximation ratio Σµ/|J|) and
// the "run the full join, then sample" strawman that the paper's
// introduction rules out; it serves as a correctness oracle and as a
// scale reference in the benchmarks.
package join

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/rtree"
)

// Emit receives one join pair; returning false stops the join early.
type Emit func(r, s geom.Point) bool

// BruteForce enumerates J by testing all n*m pairs. Only for tests
// and tiny inputs.
func BruteForce(R, S []geom.Point, l float64, emit Emit) {
	for _, r := range R {
		for _, s := range S {
			if geom.InWindow(r, s, l) {
				if !emit(r, s) {
					return
				}
			}
		}
	}
}

// PlaneSweep computes J by sweeping both sets in ascending x order,
// maintaining for each r the window [r.X-l, r.X+l] over an S cursor
// and filtering on y. Runtime O((n+m) log(n+m) + matches-in-x-band);
// for the window sizes of the paper this is close to O(|J|).
func PlaneSweep(R, S []geom.Point, l float64, emit Emit) {
	if len(R) == 0 || len(S) == 0 {
		return
	}
	rs := append([]geom.Point(nil), R...)
	ss := append([]geom.Point(nil), S...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].X < rs[j].X })
	sort.Slice(ss, func(i, j int) bool { return ss[i].X < ss[j].X })
	lo := 0
	for _, r := range rs {
		for lo < len(ss) && ss[lo].X < r.X-l {
			lo++
		}
		for i := lo; i < len(ss) && ss[i].X <= r.X+l; i++ {
			if d := r.Y - ss[i].Y; d <= l && d >= -l {
				if !emit(r, ss[i]) {
					return
				}
			}
		}
	}
}

// GridJoin computes J by mapping S onto a grid with cell side l and
// probing the 3x3 neighborhood of each r — the same decomposition the
// sampling algorithm uses, run to completion.
func GridJoin(R, S []geom.Point, l float64, emit Emit) error {
	if len(R) == 0 || len(S) == 0 {
		return nil
	}
	g, err := grid.Build(S, l)
	if err != nil {
		return err
	}
	var nb [grid.NumDirections]*grid.Cell
	for _, r := range R {
		w := geom.Window(r, l)
		g.Neighborhood(r, &nb)
		for d, c := range nb {
			if c == nil {
				continue
			}
			switch grid.Direction(d).Case() {
			case 1:
				for _, s := range c.XSorted {
					if !emit(r, s) {
						return nil
					}
				}
			default:
				for _, s := range c.XSorted {
					if w.Contains(s) {
						if !emit(r, s) {
							return nil
						}
					}
				}
			}
		}
	}
	return nil
}

// IndexNestedLoop computes J by probing an R-tree of S with each
// window w(r). Pass a prebuilt tree to amortize construction; a nil
// tree builds one internally.
func IndexNestedLoop(R []geom.Point, S []geom.Point, tree *rtree.Tree, l float64, emit Emit) {
	if tree == nil {
		tree = rtree.New(S)
	}
	stop := false
	for _, r := range R {
		if stop {
			return
		}
		rr := r
		tree.Report(geom.Window(r, l), func(s geom.Point) bool {
			if !emit(rr, s) {
				stop = true
				return false
			}
			return true
		})
	}
}

// Size returns |J| without materializing the join, via plane sweep.
func Size(R, S []geom.Point, l float64) uint64 {
	var total uint64
	if len(R) == 0 || len(S) == 0 {
		return 0
	}
	rs := append([]geom.Point(nil), R...)
	ss := append([]geom.Point(nil), S...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].X < rs[j].X })
	sort.Slice(ss, func(i, j int) bool { return ss[i].X < ss[j].X })
	lo := 0
	for _, r := range rs {
		for lo < len(ss) && ss[lo].X < r.X-l {
			lo++
		}
		for i := lo; i < len(ss) && ss[i].X <= r.X+l; i++ {
			if d := r.Y - ss[i].Y; d <= l && d >= -l {
				total++
			}
		}
	}
	return total
}

// Materialize collects the full join result. Memory is Θ(|J|); use
// only when |J| is known to be small.
func Materialize(R, S []geom.Point, l float64) []geom.Pair {
	var out []geom.Pair
	PlaneSweep(R, S, l, func(r, s geom.Point) bool {
		out = append(out, geom.Pair{R: r, S: s})
		return true
	})
	return out
}

// ThenSample is the strawman baseline: materialize J, then draw t
// uniform samples with replacement. It is exact but needs Θ(|J|) time
// and space, which is what the paper's algorithms avoid.
func ThenSample(R, S []geom.Point, l float64, t int, r *rng.RNG) []geom.Pair {
	joined := Materialize(R, S, l)
	if len(joined) == 0 || t <= 0 {
		return nil
	}
	out := make([]geom.Pair, t)
	for i := range out {
		out[i] = joined[r.Intn(len(joined))]
	}
	return out
}
