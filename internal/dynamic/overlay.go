package dynamic

// The delta-overlay sampler. A mutated dataset decomposes into the
// bulk-built base sides (R₀, S₀) plus small per-side insert buffers
// (Rᵢ, Sᵢ) and delete tombstones; the current join then decomposes
// into four disjoint components:
//
//	bb = J(R₀, S₀)   — the base sampler, rejecting tombstoned pairs
//	bi = J(R₀, Sᵢ)   — base r with inserted s, rejecting tombstoned r
//	ib = J(Rᵢ, S₀)   — inserted r with base s, rejecting tombstoned s
//	ii = J(Rᵢ, Sᵢ)   — inserted with inserted, nothing to reject
//
// Each component exposes one sampling *trial* (core.Trial): a
// candidate pair drawn with probability exactly 1/mass per trial,
// where mass is the component's Σµ (exact |J_c| for the KDS deltas,
// the paper's upper bound for an approximate base). The overlay picks
// a component by a Walker alias over the masses and runs one trial;
// a rejection — the component's own, or a tombstoned pair — retries
// the whole mixture. Every live pair is therefore returned by one
// mixture trial with probability exactly 1/Σ masses, which is the
// uniformity argument of the paper's Algorithm 1 lifted to the
// mutable setting. The price of mutability is acceptance: tombstones
// lower the live fraction of bb, so the rejection budget
// (ErrLowAcceptance) bounds the damage and the Store rebuilds the
// base before the delta fraction can rot the acceptance rate.
//
// With a single component and no tombstones (a freshly built or
// freshly compacted store) the overlay consumes no mixture
// randomness of its own, so its draws are byte-identical to the
// plain engine over the same structures — a gen-0 Store agrees with
// srj.Engine sample for sample.

import (
	"fmt"
	"time"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rng"
)

// componentShared is the immutable, clone-shared half of a mixture
// component: its trial mass, the bytes this component charges its
// view (the shared base is charged only by the view that bulk-built
// it — see Store.buildComponents), and the tombstone sets its
// candidates are rejected against (nil means no rejection on that
// side).
type componentShared struct {
	mass float64
	size int
	rejR map[int32]struct{}
	rejS map[int32]struct{}
}

// component pairs a per-clone trial handle with its shared weight.
type component struct {
	trial  core.Trial
	shared *componentShared
}

// overlay is the mixture sampler over the components of one view. It
// implements core.Sampler, core.Cloner, and core.Reseeder, so
// engine.New can pool clones of it exactly like any bulk-built
// sampler.
type overlay struct {
	name       string
	maxRejects int
	comps      []component
	tab        *alias.Table // over component masses; nil when len(comps) == 1
	rng        *rng.RNG     // mixture stream; unused with a single component
	stats      core.Stats
}

// newOverlay assembles the mixture from prepared components. It
// returns core.ErrEmptyJoin when no component has mass — the current
// join is empty.
func newOverlay(name string, maxRejects int, seed uint64, comps []component) (*overlay, error) {
	if len(comps) == 0 {
		return nil, core.ErrEmptyJoin
	}
	total := 0.0
	masses := make([]float64, len(comps))
	for i, c := range comps {
		masses[i] = c.shared.mass
		total += c.shared.mass
	}
	if total <= 0 {
		return nil, core.ErrEmptyJoin
	}
	o := &overlay{
		name:       name,
		maxRejects: maxRejects,
		comps:      comps,
		rng:        rng.New(seed),
	}
	if len(comps) > 1 {
		tab, err := alias.New(masses)
		if err != nil {
			return nil, fmt.Errorf("dynamic: building component alias: %w", err)
		}
		o.tab = tab
	}
	o.stats.MuSum = total
	return o, nil
}

// Name identifies the sampler in engine stats.
func (o *overlay) Name() string { return o.name }

// Preprocess is a no-op: every component was prepared at view build.
func (o *overlay) Preprocess() error { return nil }

// Build is a no-op: every component was prepared at view build.
func (o *overlay) Build() error { return nil }

// Count is a no-op: every component was prepared at view build.
func (o *overlay) Count() error { return nil }

// tryOnce runs one mixture trial: pick a component proportional to
// its mass, run one of its trials, and reject tombstoned candidates.
func (o *overlay) tryOnce() (geom.Pair, bool, error) {
	o.stats.Iterations++
	ci := 0
	if o.tab != nil {
		ci = o.tab.Sample(o.rng)
	}
	c := &o.comps[ci]
	p, ok, err := c.trial.TryNext()
	if err != nil || !ok {
		return geom.Pair{}, false, err
	}
	if c.shared.rejR != nil {
		if _, dead := c.shared.rejR[p.R.ID]; dead {
			return geom.Pair{}, false, nil
		}
	}
	if c.shared.rejS != nil {
		if _, dead := c.shared.rejS[p.S.ID]; dead {
			return geom.Pair{}, false, nil
		}
	}
	o.stats.Samples++
	return p, true, nil
}

// TryNext runs one mixture trial (the Trial contract, so overlays
// nest if a future tier ever wants to). Like every TryNext it leaves
// SampleTime to whoever drives the trial loop.
func (o *overlay) TryNext() (geom.Pair, bool, error) {
	return o.tryOnce()
}

// Next draws one uniform independent sample of the current join.
func (o *overlay) Next() (geom.Pair, error) {
	start := time.Now()
	defer func() { o.stats.SampleTime += time.Since(start) }()
	for attempt := 0; attempt < o.maxRejects; attempt++ {
		p, ok, err := o.tryOnce()
		if err != nil {
			return geom.Pair{}, err
		}
		if ok {
			return p, nil
		}
	}
	return geom.Pair{}, core.ErrLowAcceptance
}

// Sample draws t samples via Next.
func (o *overlay) Sample(t int) ([]geom.Pair, error) {
	if t < 0 {
		return nil, fmt.Errorf("dynamic: negative sample count %d", t)
	}
	out := make([]geom.Pair, 0, t)
	for len(out) < t {
		p, err := o.Next()
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Stats reports the mixture counters: MuSum is the total component
// mass, so aggregate.JoinSizeEstimate estimates the *live* join size
// (tombstone rejections count as ordinary rejected iterations).
func (o *overlay) Stats() core.Stats { return o.stats }

// SizeBytes sums each component's charged size (set at view build:
// the shared base counts only on the view that owns it, so summing
// engine sizes across resident generations counts shared structures
// once) plus the tombstone sets.
func (o *overlay) SizeBytes() int {
	total := 0
	for _, c := range o.comps {
		total += c.shared.size
		total += 16 * (len(c.shared.rejR) + len(c.shared.rejS))
	}
	if o.tab != nil {
		total += o.tab.SizeBytes()
	}
	return total
}

// Clone derives an independent mixture handle: each component is
// cloned (sharing its immutable structures), the mixture stream is
// split, and the shared weights are reused.
func (o *overlay) Clone() (core.Sampler, error) {
	comps := make([]component, len(o.comps))
	for i, c := range o.comps {
		cl, err := c.trial.(core.Cloner).Clone()
		if err != nil {
			return nil, err
		}
		t, ok := cl.(core.Trial)
		if !ok {
			return nil, fmt.Errorf("dynamic: %s clone does not support trials", c.trial.Name())
		}
		comps[i] = component{trial: t, shared: c.shared}
	}
	return &overlay{
		name:       o.name,
		maxRejects: o.maxRejects,
		comps:      comps,
		tab:        o.tab,
		rng:        o.rng.Split(),
		stats:      core.Stats{MuSum: o.stats.MuSum},
	}, nil
}

// Reseed reinitializes every stream the mixture consumes, so equal
// seeds draw equal samples within one view. With a single component
// the seed is handed through verbatim — a fresh store's seeded draws
// are byte-identical to a plain engine's over the same structures.
func (o *overlay) Reseed(seed uint64) {
	if len(o.comps) == 1 {
		o.comps[0].trial.(core.Reseeder).Reseed(seed)
		return
	}
	o.rng.Reseed(seed)
	for i := range o.comps {
		o.comps[i].trial.(core.Reseeder).Reseed(o.rng.Uint64())
	}
}

var (
	_ core.Sampler  = (*overlay)(nil)
	_ core.Cloner   = (*overlay)(nil)
	_ core.Trial    = (*overlay)(nil)
	_ core.Reseeder = (*overlay)(nil)
)
