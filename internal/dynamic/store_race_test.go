package dynamic

// A race-focused hammer on the store's mutation paths — concurrent
// Apply, Draw, registry Get/Evict over generation-tagged keys, and
// the background rebuild — mirroring registry_race_test.go. The
// store's correctness argument is an invariant the view swap must
// preserve across every interleaving:
//
//	a swapped-in view never serves a deleted point: every ID deleted
//	  and never re-inserted is either absent from the view's base or
//	  tombstoned in it (a rebuild racing an Apply must not lose the
//	  delete), and draws never return it
//	generations only move forward
//	a view handed to a request stays usable however many swaps,
//	  rebuilds, or registry evictions race it
//
// The in-lock half runs through the store's testHookSwap (under mu,
// at every swap); the behavioral half is the drawers asserting no
// poisoned ID is ever sampled while rebuilds churn underneath.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/registry"
)

func TestStoreConcurrentApplyDrawEvictRebuild(t *testing.T) {
	inBothModes(t, testStoreConcurrentApplyDrawEvictRebuild)
}

func testStoreConcurrentApplyDrawEvictRebuild(t *testing.T, tweak func(Config) Config) {
	R, S := testData(t)
	l := 1500.0
	cfg := tweak(testConfig(l, 21))
	cfg.RebuildFraction = 0.02 // overlay mode: rebuild constantly under the hammer
	st, err := NewStore(R, S, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Poison: base points deleted up front and never re-inserted. No
	// draw may ever return one, whatever view it lands on.
	poisonR := map[int32]bool{R[0].ID: true, R[7].ID: true, R[13].ID: true}
	poisonS := map[int32]bool{S[2].ID: true, S[9].ID: true}
	poison := Update{}
	for id := range poisonR {
		poison.DeleteR = append(poison.DeleteR, id)
	}
	for id := range poisonS {
		poison.DeleteS = append(poison.DeleteS, id)
	}

	// The in-lock invariant hook: runs under st.mu at every swap.
	var lastGen atomic.Uint64
	var hookErr atomic.Value
	fail := func(format string, args ...any) {
		if hookErr.Load() == nil {
			hookErr.Store(fmt.Errorf(format, args...))
		}
	}
	st.testHookSwap = func(v *view) {
		if prev := lastGen.Swap(v.gen); v.gen <= prev {
			fail("generation moved backwards: %d after %d", v.gen, prev)
		}
		if v.mut != nil {
			// In-place path: the swapped-in version must satisfy every
			// bucket invariant (µ consistency, free-list integrity, ID
			// indexes matching live slots), and no poisoned ID may still
			// be indexed as live.
			ix := v.mut.Index()
			if err := ix.CheckInvariants(); err != nil {
				fail("gen %d: bucket invariants: %v", v.gen, err)
			}
			for id := range poisonR {
				if ix.HasR(id) {
					fail("gen %d: poisoned R point %d live in a swapped-in mutable index", v.gen, id)
				}
			}
			for id := range poisonS {
				if ix.HasS(id) {
					fail("gen %d: poisoned S point %d live in a swapped-in mutable index", v.gen, id)
				}
			}
			return
		}
		for id := range v.delR {
			if _, ok := v.baseIDR[id]; !ok {
				fail("gen %d: R tombstone %d points at no base point", v.gen, id)
			}
		}
		for id := range v.delS {
			if _, ok := v.baseIDS[id]; !ok {
				fail("gen %d: S tombstone %d points at no base point", v.gen, id)
			}
		}
		// The core safety property: a swapped-in base never serves a
		// poisoned point — it is either gone from the base or
		// tombstoned in it, even when the swap is a rebuild that raced
		// the deleting Apply.
		for id := range poisonR {
			if _, inBase := v.baseIDR[id]; inBase {
				if _, dead := v.delR[id]; !dead {
					fail("gen %d: poisoned R point %d live in a swapped-in base", v.gen, id)
				}
			}
		}
		for id := range poisonS {
			if _, inBase := v.baseIDS[id]; inBase {
				if _, dead := v.delS[id]; !dead {
					fail("gen %d: poisoned S point %d live in a swapped-in base", v.gen, id)
				}
			}
		}
	}

	ctx := context.Background()
	if _, err := st.Apply(ctx, poison); err != nil {
		t.Fatal(err)
	}

	// A registry over generation-tagged keys, as the server wires it:
	// the build resolves the store's current view and refuses stale
	// generations.
	baseKey := registry.Key{Dataset: "hammer", L: l, Algorithm: "bbst", Seed: 21}
	reg := registry.New(func(ctx context.Context, key registry.Key) (*engine.Engine, error) {
		gen, eng, err := st.ViewEngine()
		if err != nil {
			return nil, err
		}
		if gen != key.Generation {
			return nil, ErrStaleGeneration
		}
		return eng, nil
	}, 1<<20) // small budget: inserts evict constantly

	const (
		appliers = 3
		drawers  = 4
		rounds   = 40
	)
	var wg sync.WaitGroup
	errs := make([]error, appliers+drawers+1)

	// Appliers: insert points with per-worker ID ranges, then delete a
	// slice of their own inserts. They never touch poison, so the
	// final expected sets are reconstructible.
	for w := 0; w < appliers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int32(10_000 * (w + 1))
			for i := 0; i < rounds; i++ {
				id := base + int32(i)
				u := Update{
					InsertR: []geom.Point{{ID: id, X: S[(w*7+i)%len(S)].X, Y: S[(w*7+i)%len(S)].Y}},
					InsertS: []geom.Point{{ID: id, X: R[(w*5+i)%len(R)].X, Y: R[(w*5+i)%len(R)].Y}},
				}
				if i%3 == 2 {
					u.DeleteR = []int32{base + int32(i-1)}
					u.DeleteS = []int32{base + int32(i-2)}
				}
				if _, err := st.Apply(ctx, u); err != nil {
					errs[w] = fmt.Errorf("apply %d/%d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	// Drawers: hammer Draw (direct and through the registry) and
	// assert window containment and no-poison on every sample.
	for w := 0; w < drawers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slot := appliers + w
			buf := make([]geom.Pair, 256)
			check := func(pairs []geom.Pair) error {
				for _, p := range pairs {
					if poisonR[p.R.ID] || poisonS[p.S.ID] {
						return fmt.Errorf("sampled poisoned pair (%d,%d)", p.R.ID, p.S.ID)
					}
					if !geom.Window(p.R, l).Contains(p.S) {
						return fmt.Errorf("sampled pair outside the window: %v", p)
					}
				}
				return nil
			}
			for i := 0; i < rounds*4; i++ {
				if w%2 == 0 {
					res, err := st.Draw(ctx, engine.Request{Into: buf, Seed: uint64(i%5) * 7})
					if err != nil {
						errs[slot] = fmt.Errorf("draw %d/%d: %w", w, i, err)
						return
					}
					if err := check(res.Pairs); err != nil {
						errs[slot] = err
						return
					}
					continue
				}
				key := baseKey
				key.Generation = st.Generation()
				eng, err := reg.Get(ctx, key)
				if errors.Is(err, ErrStaleGeneration) {
					continue // lost the race with an Apply; next round
				}
				if err != nil {
					errs[slot] = fmt.Errorf("registry get gen %d: %w", key.Generation, err)
					return
				}
				res, err := eng.Draw(ctx, engine.Request{T: 128})
				if err != nil {
					errs[slot] = fmt.Errorf("registry draw: %w", err)
					return
				}
				if err := check(res.Pairs); err != nil {
					errs[slot] = err
					return
				}
			}
		}(w)
	}

	// Evictor: hammer Evict and EvictOlder across recent generations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*6; i++ {
			key := baseKey
			key.Generation = st.Generation()
			switch i % 3 {
			case 0:
				reg.Evict(key)
			case 1:
				reg.EvictOlder(key)
			case 2:
				key.Generation = ^uint64(0)
				reg.EvictOlder(key)
			}
		}
	}()

	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if err, _ := hookErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err := st.LastRebuildErr(); err != nil {
		t.Fatal(err)
	}

	// Reconstruct the exact expected sets (appliers own disjoint ID
	// ranges and only delete their own inserts; poison never
	// returns) and verify the settled store serves exactly that join.
	model := &currentSets{R: R, S: S}
	model.apply(poison)
	for w := 0; w < appliers; w++ {
		base := int32(10_000 * (w + 1))
		for i := 0; i < rounds; i++ {
			id := base + int32(i)
			u := Update{
				InsertR: []geom.Point{{ID: id, X: S[(w*7+i)%len(S)].X, Y: S[(w*7+i)%len(S)].Y}},
				InsertS: []geom.Point{{ID: id, X: R[(w*5+i)%len(R)].X, Y: R[(w*5+i)%len(R)].Y}},
			}
			if i%3 == 2 {
				u.DeleteR = []int32{base + int32(i-1)}
				u.DeleteS = []int32{base + int32(i-2)}
			}
			model.apply(u)
		}
	}
	jset := joinSet(model.R, model.S, l)
	checkSupport(t, drawAll(t, st, 6000), jset)

	// Compact once more and re-verify: the final base absorbs every
	// surviving delta with nothing lost.
	if err := st.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	checkSupport(t, drawAll(t, st, 6000), jset)
}
