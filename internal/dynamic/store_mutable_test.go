package dynamic

// Tests pinning the in-place maintenance path: steady churn must be
// absorbed without a single rebuild, size accounting must charge the
// shared base exactly once across resident generations, the
// pathological-skew hatch must still schedule a background rebuild,
// and Compact must fold the mutable line back into a frozen base.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// countingPersister records write-ahead traffic — the store-level view
// of the durability contract, with no real log underneath.
type countingPersister struct {
	mu           sync.Mutex
	appends      uint64
	snapshots    uint64
	lastSnapID   uint64
	lastR, lastS int
}

func (p *countingPersister) Append(id uint64, u Update) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.appends++
	return nil
}

func (p *countingPersister) Snapshot(gen, lastID uint64, R, S []geom.Point) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.snapshots++
	p.lastSnapID = lastID
	p.lastR, p.lastS = len(R), len(S)
	return nil
}

func (p *countingPersister) PersistStats() PersistStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PersistStats{Appends: p.appends, Snapshots: p.snapshots, LastSnapshotID: p.lastSnapID}
}

// TestStoreInPlaceSnapshotCadence: with the threshold rebuild retired,
// the in-place path must still snapshot on its own cadence — otherwise
// the write-ahead log of a steadily-churning store grows forever.
func TestStoreInPlaceSnapshotCadence(t *testing.T) {
	R, S := testData(t)
	l := 1500.0
	p := &countingPersister{}
	cfg := testConfig(l, 23)
	cfg.Persister = p
	st, err := NewStore(R, S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const rounds = 100
	for i := 0; i < rounds; i++ {
		id := int32(4000 + i)
		u := Update{InsertS: []geom.Point{{ID: id, X: float64(i), Y: -float64(i)}}}
		if i >= 2 {
			u.DeleteS = []int32{int32(4000 + i - 2)}
		}
		if _, err := st.Apply(ctx, u); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	if err := st.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := st.Rebuilds(); got != 0 {
		t.Errorf("Rebuilds = %d under steady churn, want 0", got)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.appends != rounds {
		t.Errorf("appends = %d, want %d", p.appends, rounds)
	}
	// 100 records over ~120 live points at the default 0.25 fraction:
	// the cadence must have fired more than once, and the latest
	// snapshot must cover a recently-applied ID with the live sets.
	if p.snapshots < 2 {
		t.Errorf("snapshots = %d under sustained churn, want >= 2", p.snapshots)
	}
	if p.lastSnapID == 0 || p.lastSnapID > uint64(rounds) {
		t.Errorf("last snapshot covers ID %d, want in (0, %d]", p.lastSnapID, rounds)
	}
	if p.lastR != len(R) || p.lastS == 0 {
		t.Errorf("snapshot sets %d/%d points, want %d live R", p.lastR, p.lastS, len(R))
	}
}

// TestStoreInPlaceSteadyChurn is the tentpole's acceptance test at the
// store level: a long insert/delete churn with roughly constant
// cardinality is absorbed entirely in place — zero rebuilds, zero
// pending delta, every op counted by InPlaceOps — and the store still
// serves exactly the current join with valid bucket invariants.
func TestStoreInPlaceSteadyChurn(t *testing.T) {
	R, S := testData(t)
	l := 1500.0
	st, err := NewStore(R, S, testConfig(l, 7))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	model := &currentSets{R: R, S: S}

	gen, err := dataset.ByName("uniform")
	if err != nil {
		t.Fatal(err)
	}
	fresh := gen(400, 99) // coordinate donor for inserted points

	const rounds = 150
	wantOps := 0
	for i := 0; i < rounds; i++ {
		id := int32(1000 + i)
		d := fresh[i%len(fresh)]
		u := Update{
			InsertR: []geom.Point{{ID: id, X: d.X, Y: d.Y}},
			InsertS: []geom.Point{{ID: id, X: d.Y, Y: d.X}},
		}
		if i >= 3 {
			// Delete an earlier insert on each side: cardinality stays
			// flat, so the rebase hatch must never trip.
			u.DeleteR = []int32{int32(1000 + i - 3)}
			u.DeleteS = []int32{int32(1000 + i - 3)}
		}
		if _, err := st.Apply(ctx, u); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		model.apply(u)
		wantOps += u.Ops()
	}

	if got := st.Rebuilds(); got != 0 {
		t.Errorf("Rebuilds = %d after steady churn, want 0", got)
	}
	if got := st.InPlaceOps(); got != uint64(wantOps) {
		t.Errorf("InPlaceOps = %d, want %d", got, wantOps)
	}
	if !st.InPlace() {
		t.Error("InPlace = false after in-place churn")
	}
	if got := st.Pending(); got != 0 {
		t.Errorf("Pending = %d on the in-place path, want 0", got)
	}
	if got := st.DeltaFraction(); got != 0 {
		t.Errorf("DeltaFraction = %g on the in-place path, want 0", got)
	}
	v := st.view.Load()
	if v.mut == nil {
		t.Fatal("view carries no mutable index after in-place churn")
	}
	if err := v.mut.Index().CheckInvariants(); err != nil {
		t.Fatalf("bucket invariants after churn: %v", err)
	}
	checkSupport(t, drawAll(t, st, 4000), joinSet(model.R, model.S, l))
}

// TestStoreSizeAccountingAcrossGenerations is the regression test for
// the budget double-count: engines for derived generations share the
// previous view's base structures and must charge only their deltas,
// so a registry holding engines for consecutive generations of one
// store accounts the base once, not once per resident generation.
func TestStoreSizeAccountingAcrossGenerations(t *testing.T) {
	inBothModes(t, testStoreSizeAccountingAcrossGenerations)
}

func testStoreSizeAccountingAcrossGenerations(t *testing.T, tweak func(Config) Config) {
	gen, err := dataset.ByName("uniform")
	if err != nil {
		t.Fatal(err)
	}
	// A base large enough that any re-charge of it dwarfs a 2-point
	// delta, whatever the per-structure constants.
	R, S := gen(2000, 31), gen(2000, 32)
	l := 400.0
	st, err := NewStore(R, S, tweak(testConfig(l, 9)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	_, e0, err := st.ViewEngine()
	if err != nil {
		t.Fatal(err)
	}
	base := e0.SizeBytes()
	if base <= 0 {
		t.Fatalf("generation-0 engine SizeBytes = %d, want > 0", base)
	}

	u := Update{
		InsertR: []geom.Point{{ID: 50_000, X: 1, Y: 2}},
		InsertS: []geom.Point{{ID: 50_000, X: 3, Y: 4}},
	}
	if _, err := st.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}
	_, e1, err := st.ViewEngine()
	if err != nil {
		t.Fatal(err)
	}
	delta := e1.SizeBytes()
	// Pre-fix the derived engine re-charged the whole shared base, so
	// delta came out >= base. Post-fix it charges only its own
	// structures, a sliver of the base footprint.
	if 2*delta >= base {
		t.Errorf("generation-1 engine SizeBytes = %d re-charges the shared base (base = %d)", delta, base)
	}
	// The store's own footprint still covers the base exactly once:
	// at least the base, nowhere near two of them.
	if got := st.SizeBytes(); got < base/2 || got >= 2*base {
		t.Errorf("Store.SizeBytes = %d, want about one base (%d)", got, base)
	}
}

// TestStoreInPlaceRebaseHatch grows one side far past the bulk-built
// geometry: the escape hatch must schedule a background rebuild even
// though steady churn never does.
func TestStoreInPlaceRebaseHatch(t *testing.T) {
	R, S := testData(t)
	l := 1500.0
	st, err := NewStore(R, S, testConfig(l, 13))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	model := &currentSets{R: R, S: S}

	gen, err := dataset.ByName("uniform")
	if err != nil {
		t.Fatal(err)
	}
	fresh := gen(700, 77)
	for i, p := range fresh {
		u := Update{InsertS: []geom.Point{{ID: int32(2000 + i), X: p.X, Y: p.Y}}}
		if _, err := st.Apply(ctx, u); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		model.apply(u)
	}
	if err := st.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st.LastRebuildErr(); err != nil {
		t.Fatal(err)
	}
	if got := st.Rebuilds(); got == 0 {
		t.Error("Rebuilds = 0 after 10x S growth, want the skew hatch to fire")
	}
	checkSupport(t, drawAll(t, st, 4000), joinSet(model.R, model.S, l))
}

// TestStoreCompactFoldsInPlace: Compact turns a mutable view back into
// a frozen bulk-built base (the only remaining planned rebuild), and
// the next Apply unfreezes again.
func TestStoreCompactFoldsInPlace(t *testing.T) {
	R, S := testData(t)
	l := 1500.0
	st, err := NewStore(R, S, testConfig(l, 17))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	model := &currentSets{R: R, S: S}

	u := Update{
		InsertR: []geom.Point{{ID: 3000, X: 100, Y: -200}},
		DeleteS: []int32{S[4].ID},
	}
	if _, err := st.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}
	model.apply(u)
	if !st.InPlace() {
		t.Fatal("InPlace = false after an in-place apply")
	}

	genBefore := st.Generation()
	if err := st.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if st.InPlace() {
		t.Error("InPlace = true after Compact, want a frozen base")
	}
	if got := st.Rebuilds(); got != 1 {
		t.Errorf("Rebuilds = %d after Compact, want 1", got)
	}
	if got := st.Generation(); got <= genBefore {
		t.Errorf("Generation = %d after Compact, want > %d", got, genBefore)
	}
	jset := joinSet(model.R, model.S, l)
	checkSupport(t, drawAll(t, st, 3000), jset)

	// The compacted base supports in-place maintenance again.
	u2 := Update{InsertS: []geom.Point{{ID: 3001, X: -50, Y: 75}}}
	if _, err := st.Apply(ctx, u2); err != nil {
		t.Fatal(err)
	}
	model.apply(u2)
	if !st.InPlace() {
		t.Error("InPlace = false after post-Compact apply")
	}
	if got := st.Rebuilds(); got != 1 {
		t.Errorf("Rebuilds = %d after post-Compact apply, want still 1", got)
	}
	checkSupport(t, drawAll(t, st, 3000), joinSet(model.R, model.S, l))
}
