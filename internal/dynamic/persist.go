package dynamic

// Durability and fleet-wide sequencing. Each applied batch carries a
// monotonic per-dataset *update ID* (stamped by the shard router, or
// self-stamped by a store applied to directly): IDs order concurrent
// writers, key the write-ahead log, and make retries idempotent. The
// store itself stays storage-agnostic — it writes ahead through the
// narrow Persister interface, implemented by internal/wal, so this
// package never imports a storage layer (or the server package the
// WAL reuses for its record payload).

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/geom"
)

// ErrUpdateSequence reports an update ID the store cannot apply:
// too far ahead of the last applied ID (the bounded gap buffer is
// full) or a gap whose predecessor never arrived before the caller's
// deadline. Duplicates are NOT errors — they answer idempotently with
// the already-applied generation. The server maps this to HTTP 409.
var ErrUpdateSequence = errors.New("dynamic: update out of sequence")

// maxGapBuffer bounds how many out-of-order updates a store parks
// while waiting for their predecessors. Small on purpose: the router
// stamps IDs milliseconds apart, so a large buffer only hides a lost
// predecessor for longer.
const maxGapBuffer = 64

// Persister is the write-ahead durability hook of a Store. Append is
// called under the store's write lock *before* an update's view is
// published — if it errors the update fails and is never visible.
// Snapshot is called outside the lock — after a rebuild swap, or on
// the in-place path's own cadence — with the materialized point sets
// covering IDs <= lastID. Implementations must be safe for concurrent
// use; internal/wal provides the real one.
type Persister interface {
	Append(id uint64, u Update) error
	Snapshot(gen, lastID uint64, R, S []geom.Point) error
	PersistStats() PersistStats
}

// PersistStats is the observable state of a store's persister,
// surfaced on /v1/stats and /metrics.
type PersistStats struct {
	Segments       int
	Bytes          int64
	Appends        uint64
	Syncs          uint64
	Snapshots      uint64
	LastSnapshotID uint64
}

// ApplyResult reports one sequenced application.
type ApplyResult struct {
	// Generation is the dataset generation after the update (the
	// current generation for duplicates and probes).
	Generation uint64
	// UpdateID is the ID the update applied at: the caller's ID, or
	// the self-stamped lastApplied+1 when the caller passed 0. Probes
	// (empty updates) report the last applied ID.
	UpdateID uint64
	// Duplicate reports that the ID was already applied and the update
	// was acknowledged idempotently without re-applying.
	Duplicate bool
}

// SeqUpdate is one recovered sequenced update — the unit of WAL
// replay.
type SeqUpdate struct {
	ID uint64
	U  Update
}

// gapWaiter parks one out-of-order update until its predecessors
// land. res and err are written before done closes.
type gapWaiter struct {
	u    Update
	done chan struct{}
	res  ApplyResult
	err  error
}

// ApplyAt absorbs one batch at an explicit update ID. Semantics:
//
//   - id == 0: self-stamp at lastApplied+1 (a store used directly,
//     without a router sequencing writes).
//   - id == lastApplied+1: apply now — write ahead, bump generation.
//   - id <= lastApplied: already applied; acknowledge idempotently
//     with the current generation (Duplicate true). A router retrying
//     a partially-broadcast update heals the fleet this way.
//   - id > lastApplied+1: park in a bounded gap buffer until the
//     missing predecessors land (concurrent broadcasts may arrive
//     reordered); ErrUpdateSequence when the buffer is full or ctx
//     expires first.
//
// An empty update is a sequence probe: it reports the current
// generation and last applied ID without bumping either.
func (st *Store) ApplyAt(ctx context.Context, id uint64, u Update) (ApplyResult, error) {
	if err := u.Validate(); err != nil {
		return ApplyResult{}, err
	}
	if u.Empty() {
		st.mu.Lock()
		res := ApplyResult{Generation: st.view.Load().gen, UpdateID: st.lastApplied}
		st.mu.Unlock()
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return ApplyResult{}, err
	}
	st.mu.Lock()
	if id == 0 {
		id = st.lastApplied + 1
	}
	switch {
	case id <= st.lastApplied:
		res := ApplyResult{Generation: st.view.Load().gen, UpdateID: id, Duplicate: true}
		st.mu.Unlock()
		return res, nil
	case id > st.lastApplied+1:
		return st.parkLocked(ctx, id, u) // unlocks
	}
	res, err := st.applyLocked(id, u)
	if err == nil {
		st.drainGapLocked()
	}
	st.mu.Unlock()
	return res, err
}

// parkLocked buffers an update that arrived ahead of its
// predecessors. Called with mu held; releases it.
func (st *Store) parkLocked(ctx context.Context, id uint64, u Update) (ApplyResult, error) {
	if len(st.gap) >= maxGapBuffer {
		last := st.lastApplied
		st.mu.Unlock()
		return ApplyResult{}, fmt.Errorf("%w: ID %d with %d updates already buffered past last applied %d",
			ErrUpdateSequence, id, maxGapBuffer, last)
	}
	if _, dup := st.gap[id]; dup {
		st.mu.Unlock()
		return ApplyResult{}, fmt.Errorf("%w: ID %d is already buffered by a concurrent request", ErrUpdateSequence, id)
	}
	if st.gap == nil {
		st.gap = make(map[uint64]*gapWaiter)
	}
	w := &gapWaiter{u: u, done: make(chan struct{})}
	st.gap[id] = w
	st.mu.Unlock()
	select {
	case <-w.done:
		return w.res, w.err
	case <-ctx.Done():
		st.mu.Lock()
		if st.gap[id] == w {
			delete(st.gap, id)
			last := st.lastApplied
			st.mu.Unlock()
			return ApplyResult{}, fmt.Errorf("%w: gave up waiting for update %d (last applied %d): %v",
				ErrUpdateSequence, last+1, last, ctx.Err())
		}
		st.mu.Unlock()
		// The drain claimed the waiter concurrently; its result is
		// moments away and the update WAS applied — report that rather
		// than a spurious cancellation.
		<-w.done
		return w.res, w.err
	}
}

// drainGapLocked applies every buffered update that became
// consecutive. Called with mu held. Iterates by successor ID, never
// map order.
func (st *Store) drainGapLocked() {
	for {
		w, ok := st.gap[st.lastApplied+1]
		if !ok {
			return
		}
		id := st.lastApplied + 1
		delete(st.gap, id)
		w.res, w.err = st.applyLocked(id, w.u)
		close(w.done)
		if w.err != nil {
			return // lastApplied did not advance; successors keep waiting
		}
	}
}

// applyLocked builds and publishes the view for one consecutive
// update, writing ahead first. Called with mu held and
// id == lastApplied+1. When the base supports in-place maintenance
// the update edits the index copy-on-write (Õ(ops)); otherwise it is
// folded into the overlay's buffers and tombstones.
func (st *Store) applyLocked(id uint64, u Update) (ApplyResult, error) {
	cur := st.view.Load()
	nv := &view{gen: cur.gen + 1, lastID: id}
	if m := st.mutableTipLocked(cur); m != nil {
		nm, err := m.Apply(mutOps(u))
		if err != nil {
			return ApplyResult{}, err
		}
		nv.mut = nm
		nv.baseSize = nm.SizeBytes()
	} else {
		nv.baseR = cur.baseR
		nv.baseS = cur.baseS
		nv.baseIDR = cur.baseIDR
		nv.baseIDS = cur.baseIDS
		nv.base = cur.base
		nv.baseMass = cur.baseMass
		nv.baseSize = cur.baseSize
		nv.donorS = cur.donorS
		nv.insR, nv.delR = applyOps(cur.insR, cur.delR, cur.baseIDR, u.InsertR, u.DeleteR)
		nv.insS, nv.delS = applyOps(cur.insS, cur.delS, cur.baseIDS, u.InsertS, u.DeleteS)
	}
	if err := st.finishView(nv); err != nil {
		return ApplyResult{}, err
	}
	if p := st.cfg.Persister; p != nil {
		// Write-ahead: the record is durable (per the fsync policy)
		// before any reader can observe the new view. On error the
		// update fails wholesale — memory and log never diverge.
		if err := p.Append(id, u); err != nil {
			return ApplyResult{}, fmt.Errorf("dynamic: write-ahead append: %w", err)
		}
	}
	if st.rebuilding {
		// The log only feeds the in-flight rebuild's catch-up replay;
		// with no rebuild running nothing will ever read this update
		// from it (the views carry the state), so it is not retained.
		st.log = append(st.log, u)
	}
	st.lastApplied = id
	if nv.mut != nil {
		st.inplace.Add(uint64(u.Ops()))
		if st.cfg.Persister != nil {
			st.snapPending++
		}
	}
	st.swapLocked(nv)
	st.maybeRebuildLocked(nv)
	st.maybeSnapshotLocked(nv)
	return ApplyResult{Generation: nv.gen, UpdateID: id}, nil
}

// Replay folds recovered updates into the store without re-persisting
// them — they came *from* the log. One view is built for the whole
// batch (recovery of n records costs one mixture build, not n), with
// the generation advanced by the record count so a recovered store
// never reuses a pre-crash generation for different contents. IDs
// must be strictly increasing and past the last applied.
func (st *Store) Replay(recs []SeqUpdate) error {
	if len(recs) == 0 {
		return nil
	}
	for _, rec := range recs {
		if err := rec.U.Validate(); err != nil {
			return err
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.view.Load()
	nv := &view{gen: cur.gen}
	prev := st.lastApplied
	if m := st.mutableTipLocked(cur); m != nil {
		// In-place replay: fold each record into the index (Õ(ops)
		// apiece) and build one view over the final version.
		inplaceOps := 0
		for _, rec := range recs {
			if rec.ID <= prev {
				return fmt.Errorf("%w: replay ID %d not after %d", ErrUpdateSequence, rec.ID, prev)
			}
			prev = rec.ID
			nv.gen++
			nm, err := m.Apply(mutOps(rec.U))
			if err != nil {
				return err
			}
			m = nm
			inplaceOps += rec.U.Ops()
		}
		nv.mut = m
		nv.baseSize = m.SizeBytes()
		st.inplace.Add(uint64(inplaceOps))
		// Replayed records are already in the log; counting them here
		// means the first post-recovery applies snapshot early and
		// prune the recovered tail.
		st.snapPending += len(recs)
	} else {
		nv.baseR = cur.baseR
		nv.baseS = cur.baseS
		nv.baseIDR = cur.baseIDR
		nv.baseIDS = cur.baseIDS
		nv.base = cur.base
		nv.baseMass = cur.baseMass
		nv.baseSize = cur.baseSize
		nv.donorS = cur.donorS
		nv.insR = cur.insR
		nv.insS = cur.insS
		nv.delR = cur.delR
		nv.delS = cur.delS
		for _, rec := range recs {
			if rec.ID <= prev {
				return fmt.Errorf("%w: replay ID %d not after %d", ErrUpdateSequence, rec.ID, prev)
			}
			prev = rec.ID
			nv.gen++
			nv.insR, nv.delR = applyOps(nv.insR, nv.delR, nv.baseIDR, rec.U.InsertR, rec.U.DeleteR)
			nv.insS, nv.delS = applyOps(nv.insS, nv.delS, nv.baseIDS, rec.U.InsertS, rec.U.DeleteS)
		}
	}
	nv.lastID = prev
	if err := st.finishView(nv); err != nil {
		return err
	}
	if st.rebuilding {
		for _, rec := range recs {
			st.log = append(st.log, rec.U)
		}
	}
	st.lastApplied = prev
	st.swapLocked(nv)
	st.maybeRebuildLocked(nv)
	return nil
}

// SetPersister installs the durability hook. Like SetOnGeneration,
// attach it before the store is published for serving — recovery
// wires it after Replay, so replayed records are never re-appended.
func (st *Store) SetPersister(p Persister) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cfg.Persister = p
}

// LastApplied reports the last applied update ID (0 when the store
// has only ever seen unsequenced history).
func (st *Store) LastApplied() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastApplied
}

// PersistStats reports the persister's counters; ok is false when the
// store runs without durability.
func (st *Store) PersistStats() (PersistStats, bool) {
	st.mu.Lock()
	p := st.cfg.Persister
	st.mu.Unlock()
	if p == nil {
		return PersistStats{}, false
	}
	return p.PersistStats(), true
}

// LastPersistErr reports the most recent snapshot failure (nil after
// a success). Snapshot failures never tear down serving — the log
// keeps every record a snapshot would have pruned.
func (st *Store) LastPersistErr() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastPersistErr
}
