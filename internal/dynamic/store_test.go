package dynamic

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/join"
)

// testConfig returns a BBST-backed store config over half-extent l.
func testConfig(l float64, seed uint64) Config {
	return Config{
		BuildBase: func(R, S []geom.Point) (core.Cloner, error) {
			return core.NewBBST(R, S, core.Config{HalfExtent: l, Seed: seed})
		},
		HalfExtent: l,
		Seed:       seed,
	}
}

// inBothModes runs fn once on the in-place maintenance path and once
// with the delta-overlay path pinned, so path-agnostic store
// properties (uniformity, determinism, estimation) are asserted on
// both write paths.
func inBothModes(t *testing.T, fn func(t *testing.T, tweak func(Config) Config)) {
	t.Run("inplace", func(t *testing.T) {
		fn(t, func(c Config) Config { return c })
	})
	t.Run("overlay", func(t *testing.T) {
		fn(t, func(c Config) Config { c.DisableInPlace = true; return c })
	})
}

// testData generates the unit-test point sets: small enough to brute
// force, dense enough for a meaningful join.
func testData(t *testing.T) (R, S []geom.Point) {
	t.Helper()
	gen, err := dataset.ByName("uniform")
	if err != nil {
		t.Fatal(err)
	}
	return gen(60, 11), gen(60, 12)
}

// joinSet enumerates the exact current join as an ID-pair set.
func joinSet(R, S []geom.Point, l float64) map[[2]int32]bool {
	out := map[[2]int32]bool{}
	join.BruteForce(R, S, l, func(r, s geom.Point) bool {
		out[[2]int32{r.ID, s.ID}] = true
		return true
	})
	return out
}

// currentSets mirrors a store's op sequence on plain slices — the
// test-side model of what the store should be serving.
type currentSets struct {
	R, S []geom.Point
}

func (c *currentSets) apply(u Update) {
	c.R = modelApply(c.R, u.InsertR, u.DeleteR)
	c.S = modelApply(c.S, u.InsertS, u.DeleteS)
}

func modelApply(pts, add []geom.Point, del []int32) []geom.Point {
	dead := map[int32]bool{}
	for _, id := range del {
		dead[id] = true
	}
	out := pts[:0:0]
	for _, p := range pts {
		if !dead[p.ID] {
			out = append(out, p)
		}
	}
	return append(out, add...)
}

// drawAll draws t samples through the Source surface.
func drawAll(t *testing.T, st *Store, n int) []geom.Pair {
	t.Helper()
	res, err := st.Draw(context.Background(), engine.Request{T: n})
	if err != nil {
		t.Fatalf("draw %d: %v", n, err)
	}
	return res.Pairs
}

// checkSupport asserts every sampled pair is in the model join.
func checkSupport(t *testing.T, pairs []geom.Pair, jset map[[2]int32]bool) {
	t.Helper()
	for _, p := range pairs {
		if !jset[[2]int32{p.R.ID, p.S.ID}] {
			t.Fatalf("sampled pair (%d,%d) not in the current join", p.R.ID, p.S.ID)
		}
	}
}

func TestStoreAppliesAndGenerations(t *testing.T) {
	R, S := testData(t)
	l := 1000.0
	cfg := testConfig(l, 7)
	cfg.DisableAutoRebuild = true
	st, err := NewStore(R, S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 0 {
		t.Fatalf("fresh store at generation %d", st.Generation())
	}
	model := &currentSets{R: R, S: S}
	ctx := context.Background()

	// An empty update is a generation probe, not a bump.
	if gen, err := st.Apply(ctx, Update{}); err != nil || gen != 0 {
		t.Fatalf("empty update: gen %d, err %v", gen, err)
	}

	u1 := Update{
		InsertR: []geom.Point{{ID: 500, X: R[0].X + 10, Y: R[0].Y - 10}, {ID: 501, X: S[3].X, Y: S[3].Y}},
		InsertS: []geom.Point{{ID: 600, X: R[1].X + 5, Y: R[1].Y + 5}},
		DeleteR: []int32{R[2].ID, R[4].ID},
		DeleteS: []int32{S[0].ID},
	}
	gen, err := st.Apply(ctx, u1)
	if err != nil || gen != 1 {
		t.Fatalf("apply 1: gen %d, err %v", gen, err)
	}
	model.apply(u1)
	jset := joinSet(model.R, model.S, l)
	pairs := drawAll(t, st, 4000)
	checkSupport(t, pairs, jset)

	// Delete an inserted point and a base point in the same batch;
	// re-insert a deleted base ID as a new point.
	u2 := Update{
		InsertR: []geom.Point{{ID: R[2].ID, X: R[7].X, Y: R[7].Y}},
		DeleteR: []int32{500, R[5].ID},
	}
	if gen, err = st.Apply(ctx, u2); err != nil || gen != 2 {
		t.Fatalf("apply 2: gen %d, err %v", gen, err)
	}
	model.apply(u2)
	jset = joinSet(model.R, model.S, l)
	pairs = drawAll(t, st, 4000)
	checkSupport(t, pairs, jset)
	for _, p := range pairs {
		if p.R.ID == 500 {
			t.Fatal("deleted inserted point 500 sampled")
		}
	}

	// Compact folds the deltas into a fresh base at a bumped
	// generation, with identical serving behavior.
	if err := st.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if g := st.Generation(); g != 3 {
		t.Fatalf("post-compact generation %d, want 3", g)
	}
	if n := st.Pending(); n != 0 {
		t.Fatalf("post-compact pending ops %d", n)
	}
	checkSupport(t, drawAll(t, st, 4000), jset)
}

// TestStoreUniformityAfterUpdates: sampling must stay uniform over
// the live join after mutations — chi-square against the brute-force
// join of the current point sets, on both write paths (in-place index
// maintenance and the delta-overlay mixture), with rebuilds pinned
// off.
func TestStoreUniformityAfterUpdates(t *testing.T) {
	inBothModes(t, testStoreUniformityAfterUpdates)
}

func testStoreUniformityAfterUpdates(t *testing.T, tweak func(Config) Config) {
	R, S := testData(t)
	l := 1000.0
	cfg := tweak(testConfig(l, 3))
	cfg.DisableAutoRebuild = true
	st, err := NewStore(R, S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := &currentSets{R: R, S: S}
	u := Update{
		DeleteR: []int32{R[0].ID, R[9].ID, R[17].ID},
		DeleteS: []int32{S[4].ID, S[31].ID},
	}
	// Clustered inserts so the delta components carry real mass.
	for i := 0; i < 10; i++ {
		u.InsertR = append(u.InsertR, geom.Point{ID: int32(700 + i), X: S[i].X + 20, Y: S[i].Y - 20})
		u.InsertS = append(u.InsertS, geom.Point{ID: int32(800 + i), X: R[i+20].X - 15, Y: R[i+20].Y + 15})
	}
	if _, err := st.Apply(context.Background(), u); err != nil {
		t.Fatal(err)
	}
	model.apply(u)
	jset := joinSet(model.R, model.S, l)
	if len(jset) < 50 {
		t.Fatalf("test setup: |J| = %d too small for a chi-square", len(jset))
	}
	// The deltas must actually participate: some join pair touches an
	// inserted point.
	deltaPairs := 0
	for k := range jset {
		if k[0] >= 700 || k[1] >= 800 {
			deltaPairs++
		}
	}
	if deltaPairs == 0 {
		t.Fatal("test setup: no join pair touches an inserted point")
	}

	const draws = 200_000
	counts := map[[2]int32]int{}
	err = st.DrawFunc(context.Background(), engine.Request{T: draws}, func(batch []geom.Pair) error {
		for _, p := range batch {
			k := [2]int32{p.R.ID, p.S.ID}
			if !jset[k] {
				t.Fatalf("sampled pair %v not in the current join", k)
			}
			counts[k]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	expected := float64(draws) / float64(len(jset))
	chi2 := 0.0
	for k := range jset {
		d := float64(counts[k]) - expected
		chi2 += d * d / expected
	}
	dof := float64(len(jset) - 1)
	limit := dof + 4*math.Sqrt(2*dof) + 10
	if chi2 > limit {
		t.Fatalf("distribution skewed: chi2 = %.1f > %.1f (dof %g)", chi2, limit, dof)
	}
}

// TestStoreDeterminismWithinGeneration: equal request seeds draw
// identical samples within one generation, and two replicas fed the
// same op sequence agree byte for byte — the property that keeps a
// broadcast fleet's shards interchangeable.
func TestStoreDeterminismWithinGeneration(t *testing.T) {
	inBothModes(t, testStoreDeterminismWithinGeneration)
}

func testStoreDeterminismWithinGeneration(t *testing.T, tweak func(Config) Config) {
	R, S := testData(t)
	l := 1000.0
	mk := func() *Store {
		cfg := tweak(testConfig(l, 5))
		cfg.DisableAutoRebuild = true
		st, err := NewStore(R, S, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := mk(), mk()
	u := Update{
		InsertR: []geom.Point{{ID: 900, X: S[2].X, Y: S[2].Y}},
		InsertS: []geom.Point{{ID: 901, X: R[2].X, Y: R[2].Y}},
		DeleteR: []int32{R[1].ID},
	}
	ctx := context.Background()
	if _, err := a.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}
	p1, err := a.Draw(ctx, engine.Request{T: 1500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved unseeded traffic must not perturb seeded draws.
	if _, err := a.Draw(ctx, engine.Request{T: 333}); err != nil {
		t.Fatal(err)
	}
	p2, err := a.Draw(ctx, engine.Request{T: 1500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := b.Draw(ctx, engine.Request{T: 1500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Pairs {
		if p1.Pairs[i] != p2.Pairs[i] {
			t.Fatalf("equal seeds diverged at %d within one store", i)
		}
		if p1.Pairs[i] != p3.Pairs[i] {
			t.Fatalf("replica stores diverged at %d", i)
		}
	}
}

// TestStoreEmptyLifecycle: a store may start empty, answer
// ErrEmptyJoin (after request validation), become non-empty through
// Apply, and empty again through deletes.
func TestStoreEmptyLifecycle(t *testing.T) {
	l := 100.0
	cfg := testConfig(l, 1)
	cfg.MaxT = 1000
	cfg.DisableAutoRebuild = true
	st, err := NewStore(nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := st.Draw(ctx, engine.Request{T: 5}); !errors.Is(err, core.ErrEmptyJoin) {
		t.Fatalf("empty store draw: %v, want ErrEmptyJoin", err)
	}
	// Validation still precedes the empty answer.
	if _, err := st.Draw(ctx, engine.Request{T: -1}); !errors.Is(err, engine.ErrBadRequest) {
		t.Fatalf("bad request on empty store: %v", err)
	}
	if _, err := st.Draw(ctx, engine.Request{T: 2000}); !errors.Is(err, engine.ErrSampleCap) {
		t.Fatalf("over-cap on empty store: %v", err)
	}
	u := Update{
		InsertR: []geom.Point{{ID: 1, X: 50, Y: 50}},
		InsertS: []geom.Point{{ID: 2, X: 60, Y: 60}},
	}
	if _, err := st.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}
	res, err := st.Draw(ctx, engine.Request{T: 10})
	if err != nil || len(res.Pairs) != 10 {
		t.Fatalf("draw after insert: %d pairs, %v", len(res.Pairs), err)
	}
	for _, p := range res.Pairs {
		if p.R.ID != 1 || p.S.ID != 2 {
			t.Fatalf("unexpected pair %v", p)
		}
	}
	if _, err := st.Apply(ctx, Update{DeleteR: []int32{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Draw(ctx, engine.Request{T: 5}); !errors.Is(err, core.ErrEmptyJoin) {
		t.Fatalf("re-emptied store draw: %v, want ErrEmptyJoin", err)
	}
}

// TestStoreAutoRebuild: on the overlay path (pinned via
// DisableInPlace — a BBST base would otherwise absorb the ops in
// place and never rebuild), crossing the delta threshold triggers the
// background rebuild, which bumps the generation, folds the deltas
// into the base, and keeps serving the same join.
func TestStoreAutoRebuild(t *testing.T) {
	R, S := testData(t)
	l := 1000.0
	cfg := testConfig(l, 9)
	cfg.DisableInPlace = true
	cfg.RebuildFraction = 0.05 // 120 base points: 6+ ops trigger
	var hookGens []uint64
	var hookMu sync.Mutex
	cfg.OnGeneration = func(gen uint64) {
		hookMu.Lock()
		hookGens = append(hookGens, gen)
		hookMu.Unlock()
	}
	st, err := NewStore(R, S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := &currentSets{R: R, S: S}
	u := Update{DeleteR: []int32{R[0].ID, R[1].ID, R[2].ID, R[3].ID}}
	for i := 0; i < 8; i++ {
		u.InsertS = append(u.InsertS, geom.Point{ID: int32(850 + i), X: R[30+i].X, Y: R[30+i].Y})
	}
	ctx := context.Background()
	gen, err := st.Apply(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	model.apply(u)
	if err := st.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if rerr := st.LastRebuildErr(); rerr != nil {
		t.Fatal(rerr)
	}
	if g := st.Generation(); g != gen+1 {
		t.Fatalf("generation %d after rebuild, want %d", g, gen+1)
	}
	if n := st.Pending(); n != 0 {
		t.Fatalf("pending ops %d after rebuild", n)
	}
	// The invalidation hook fired for the Apply AND for the rebuild
	// swap nobody's handler observed — that second call is what keeps
	// a rebuild from stranding a stale cached engine.
	hookMu.Lock()
	gens := append([]uint64(nil), hookGens...)
	hookMu.Unlock()
	if len(gens) != 2 || gens[0] != gen || gens[1] != gen+1 {
		t.Fatalf("OnGeneration calls = %v, want [%d %d]", gens, gen, gen+1)
	}
	checkSupport(t, drawAll(t, st, 4000), joinSet(model.R, model.S, l))
}

// TestStoreEstimateJoinSize: the acceptance-rate estimator tracks the
// live join size through updates.
func TestStoreEstimateJoinSize(t *testing.T) {
	inBothModes(t, testStoreEstimateJoinSize)
}

func testStoreEstimateJoinSize(t *testing.T, tweak func(Config) Config) {
	R, S := testData(t)
	l := 1000.0
	cfg := tweak(testConfig(l, 13))
	cfg.DisableAutoRebuild = true
	st, err := NewStore(R, S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := Update{DeleteR: []int32{R[0].ID, R[1].ID, R[2].ID}}
	for i := 0; i < 6; i++ {
		u.InsertS = append(u.InsertS, geom.Point{ID: int32(860 + i), X: R[10+i].X, Y: R[10+i].Y})
	}
	if _, err := st.Apply(context.Background(), u); err != nil {
		t.Fatal(err)
	}
	model := &currentSets{R: R, S: S}
	model.apply(u)
	exact := float64(len(joinSet(model.R, model.S, l)))
	est, err := st.EstimateJoinSize(60_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > 0.15*exact {
		t.Fatalf("join size estimate %.1f, exact %.0f", est, exact)
	}
}

// TestStoreRejectsBadUpdates: non-finite inserts are refused with
// ErrBadRequest before any state changes.
func TestStoreRejectsBadUpdates(t *testing.T) {
	R, S := testData(t)
	cfg := testConfig(1000, 1)
	st, err := NewStore(R, S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := Update{InsertR: []geom.Point{{ID: 1, X: math.NaN(), Y: 0}}}
	if _, err := st.Apply(context.Background(), bad); !errors.Is(err, engine.ErrBadRequest) {
		t.Fatalf("NaN insert: %v, want ErrBadRequest", err)
	}
	if st.Generation() != 0 {
		t.Fatal("rejected update bumped the generation")
	}
}
