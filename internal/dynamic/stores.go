package dynamic

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/registry"
)

// StoreFactory builds the store for one engine key (generation
// ignored): resolve the dataset, bulk-build the base, return the
// store. Invoked at most once per key per residency, outside the
// Stores map lock (builds are slow). Key problems should wrap
// server.ErrBadKey so handlers answer 400.
type StoreFactory func(ctx context.Context, key registry.Key) (*Store, error)

// Stores tracks the mutable stores of one serving process, keyed by
// engine key with the generation stripped (a store IS the thing that
// owns the generation). A store springs into existence on the first
// update addressed to its key; sampling for keys without a store
// keeps using the static engine path, so a server that never sees an
// update serves exactly as before this package existed.
type Stores struct {
	factory StoreFactory

	mu sync.Mutex
	m  map[registry.Key]*storeEntry
}

// storeEntry coalesces concurrent creations of one key onto a single
// factory call, and publishes the store non-blockingly for the
// sampling path. err is written before done closes; waiters read it
// only after <-done.
type storeEntry struct {
	done chan struct{}
	err  error
	st   atomic.Pointer[Store]
}

// NewStores returns a store registry building cold keys with factory.
func NewStores(factory StoreFactory) *Stores {
	if factory == nil {
		panic("dynamic: nil StoreFactory")
	}
	return &Stores{factory: factory, m: make(map[registry.Key]*storeEntry)}
}

// stripGen zeroes the generation: stores are keyed by what they
// serve, not by a moment of their history.
func stripGen(key registry.Key) registry.Key {
	key.Generation = 0
	return key
}

// Lookup returns the store for key when one has been created. It
// never blocks — a store mid-creation is not yet visible, so the
// sampling path stays on the static engines until the first update
// lands.
func (s *Stores) Lookup(key registry.Key) (*Store, bool) {
	s.mu.Lock()
	e, ok := s.m[stripGen(key)]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	st := e.st.Load()
	return st, st != nil
}

// get returns key's store, creating it through the factory on first
// use. The factory runs in its own goroutine on a context detached
// from the caller that happened to trigger it — like the registry's
// builds, ctx cancels the *wait*, never a bulk build other callers
// (and the map) will share. Failed creations are forgotten so the
// next update retries.
func (s *Stores) get(ctx context.Context, key registry.Key) (*Store, error) {
	key = stripGen(key)
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		e = &storeEntry{done: make(chan struct{})}
		s.m[key] = e
		buildCtx := context.WithoutCancel(ctx)
		go func() {
			st, err := s.factory(buildCtx, key)
			if err != nil {
				e.err = err
			} else {
				e.st.Store(st)
			}
			close(e.done)
			if err != nil {
				s.mu.Lock()
				if s.m[key] == e {
					delete(s.m, key)
				}
				s.mu.Unlock()
			}
		}()
	}
	s.mu.Unlock()
	select {
	case <-e.done:
		if e.err != nil {
			return nil, e.err
		}
		return e.st.Load(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Apply routes one update batch to key's store, creating the store on
// first use, and returns the new generation.
func (s *Stores) Apply(ctx context.Context, key registry.Key, u Update) (uint64, error) {
	res, err := s.ApplyAt(ctx, key, 0, u)
	return res.Generation, err
}

// ApplyAt routes one sequenced update batch (see Store.ApplyAt) to
// key's store, creating the store on first use.
func (s *Stores) ApplyAt(ctx context.Context, key registry.Key, id uint64, u Update) (ApplyResult, error) {
	st, err := s.get(ctx, key)
	if err != nil {
		return ApplyResult{}, err
	}
	return st.ApplyAt(ctx, id, u)
}

// Adopt publishes an externally-built store for key — the recovery
// path hands over stores it restored from snapshot + log replay, so
// the first update (or stats scrape) sees the recovered state instead
// of triggering the factory's cold build. Adopting over a key that
// already has a store (or one mid-creation) is refused: two stores
// for one key would fork the generation sequence.
func (s *Stores) Adopt(key registry.Key, st *Store) error {
	if st == nil {
		return fmt.Errorf("dynamic: Adopt called with a nil store")
	}
	key = stripGen(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		return fmt.Errorf("dynamic: store for %s already exists", key)
	}
	e := &storeEntry{done: make(chan struct{})}
	e.st.Store(st)
	close(e.done)
	s.m[key] = e
	return nil
}

// StoreInfo is the observable state of one live store, served on
// /v1/stats (per-key detail lives here on the JSON surface; /metrics
// exports only key-free aggregates to keep label cardinality bounded).
type StoreInfo struct {
	// Key identifies the store (generation always zero — the live
	// generation is the Generation field).
	Key registry.Key `json:"key"`
	// Backend is empty on a server's own stats; the router fills it
	// when aggregating fleet stats per backend.
	Backend       string       `json:"backend,omitempty"`
	Generation    uint64       `json:"generation"`
	DeltaFraction float64      `json:"delta_fraction"`
	PendingOps    int          `json:"pending_ops"`
	Rebuilds      uint64       `json:"rebuilds"`
	InPlaceOps    uint64       `json:"inplace_ops"`
	InPlace       bool         `json:"inplace,omitempty"`
	SizeBytes     int          `json:"size_bytes"`
	Engine        engine.Stats `json:"engine"`

	// Durability surface (persist.go / internal/wal). LastAppliedID is
	// meaningful on every store; the WAL fields stay zero when the
	// store runs without a persister.
	LastAppliedID  uint64 `json:"last_applied_update_id"`
	WALSegments    int    `json:"wal_segments,omitempty"`
	WALBytes       int64  `json:"wal_bytes,omitempty"`
	WALAppends     uint64 `json:"wal_appends,omitempty"`
	WALSyncs       uint64 `json:"wal_syncs,omitempty"`
	WALSnapshots   uint64 `json:"wal_snapshots,omitempty"`
	LastSnapshotID uint64 `json:"last_snapshot_id,omitempty"`
	// PersistErrors counts snapshot failures over the store's life;
	// LastPersistErr carries the latest one (empty after a success).
	// Together they surface a failing disk on /v1/stats — and through
	// /healthz, which degrades to 503 while LastPersistErr is set.
	PersistErrors  uint64 `json:"persist_errors,omitempty"`
	LastPersistErr string `json:"last_persist_err,omitempty"`
}

// Each calls fn for every created store, in sorted key order (stores
// mid-creation are not yet visible). Shutdown paths use it to walk
// the stores without knowing their keys.
func (s *Stores) Each(fn func(key registry.Key, st *Store)) {
	for _, keyed := range s.snapshot() {
		fn(keyed.key, keyed.st)
	}
}

// FirstPersistErr returns the first store (in sorted key order) whose
// latest snapshot attempt failed, or a nil error when every store can
// persist — the /healthz degradation check.
func (s *Stores) FirstPersistErr() (registry.Key, error) {
	for _, keyed := range s.snapshot() {
		if err := keyed.st.LastPersistErr(); err != nil {
			return keyed.key, err
		}
	}
	return registry.Key{}, nil
}

// keyedStore pairs a created store with its (generation-stripped) key.
type keyedStore struct {
	key registry.Key
	st  *Store
}

// snapshot lists the created stores in sorted key order — the shared
// walk behind Infos, Each, and FirstPersistErr. Indexed writes, then
// sort: this package is under the rngdeterminism contract, so map
// iteration must not feed an order-dependent append.
func (s *Stores) snapshot() []keyedStore {
	s.mu.Lock()
	keys := make([]registry.Key, len(s.m))
	i := 0
	for key := range s.m {
		keys[i] = key
		i++
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].String() < keys[b].String() })
	entries := make([]*storeEntry, len(keys))
	for j, key := range keys {
		entries[j] = s.m[key]
	}
	s.mu.Unlock()
	out := make([]keyedStore, 0, len(entries))
	for j, e := range entries {
		if st := e.st.Load(); st != nil {
			out = append(out, keyedStore{key: keys[j], st: st})
		}
	}
	return out
}

// Infos snapshots every created store. Stores mid-creation are not
// yet visible (same non-blocking contract as Lookup).
func (s *Stores) Infos() []StoreInfo {
	keyed := s.snapshot()
	out := make([]StoreInfo, 0, len(keyed))
	for _, ks := range keyed {
		st := ks.st
		info := StoreInfo{
			Key:           ks.key,
			Generation:    st.Generation(),
			DeltaFraction: st.DeltaFraction(),
			PendingOps:    st.Pending(),
			Rebuilds:      st.Rebuilds(),
			InPlaceOps:    st.InPlaceOps(),
			InPlace:       st.InPlace(),
			SizeBytes:     st.SizeBytes(),
			Engine:        st.Stats(),
			LastAppliedID: st.LastApplied(),
			PersistErrors: st.PersistErrors(),
		}
		if perr := st.LastPersistErr(); perr != nil {
			info.LastPersistErr = perr.Error()
		}
		if ps, ok := st.PersistStats(); ok {
			info.WALSegments = ps.Segments
			info.WALBytes = ps.Bytes
			info.WALAppends = ps.Appends
			info.WALSyncs = ps.Syncs
			info.WALSnapshots = ps.Snapshots
			info.LastSnapshotID = ps.LastSnapshotID
		}
		out = append(out, info)
	}
	return out
}
