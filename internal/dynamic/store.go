// Package dynamic makes the paper's bulk-built join samplers mutable.
// The structures of "Random Sampling over Spatial Range Joins" are
// built once over immutable R and S; a serving system also needs
// insert and delete. This package lands that two ways:
//
//   - In-place maintenance (the default when the base supports it):
//     a base implementing Unfreezer — the BBST pipeline — is converted
//     once into a core.Mutable, and every Apply after that edits the
//     live structures copy-on-write along the touched path only, in
//     Õ(ops) per batch. There are no insert buffers, no tombstones,
//     and no threshold: steady churn never rebuilds. A bulk rebuild
//     happens only on explicit Compact, or in the background when the
//     live S count drifts so far from what the bucket capacity was
//     sized for that the corner bounds would rot the acceptance rate
//     (core.Mutable.NeedsRebase, the pathological-skew escape hatch).
//
//   - The delta overlay (bases without Unfreeze, or DisableInPlace):
//     the Store holds the bulk-built *base* sampler plus per-side
//     insert buffers and delete tombstones, samples uniformly from the
//     live join through a weighted mixture over {base, delta}
//     components (see overlay.go for the uniformity argument), and —
//     when the delta fraction crosses a threshold — rebuilds the base
//     in a background goroutine and swaps it in atomically.
//
// Either way every applied batch bumps the store's *generation
// number*.
//
// Generations are the invalidation currency of the serving stack:
// every applied batch bumps the store's generation, registry keys
// carry one (internal/registry), so engines cached for an older
// generation simply miss instead of serving deleted points, and the
// shard router broadcasts updates so every backend's stores and
// caches advance together.
//
// Concurrency model: Draw/DrawFunc never block on writers — they load
// an immutable *view* (base + deltas + per-view serving engine)
// through an atomic pointer and draw from it. Apply and the rebuild
// swap serialize on one mutex and publish whole new views; requests
// in flight on an old view finish against the structures they
// started with, exactly like a registry eviction never invalidates an
// engine already checked out.
package dynamic

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
)

// DefaultRebuildFraction is the delta fraction past which a
// background base rebuild is triggered: buffered inserts plus
// tombstones may reach this fraction of the base point count before
// the Store compacts them into a fresh bulk build.
const DefaultRebuildFraction = 0.25

// defaultMaxRejects mirrors core.Config's rejection budget.
const defaultMaxRejects = 1 << 24

// ErrStaleGeneration reports a request for a generation the store has
// already moved past. The registry's BuildFunc returns it when a
// generation-tagged key loses the race with a concurrent Apply; the
// server retries with the fresh generation. It is never cached (the
// registry does not cache build errors).
var ErrStaleGeneration = errors.New("dynamic: generation is stale")

// Update is one batch of mutations: points to insert and point IDs to
// delete, per side. Deleting an ID removes every live point carrying
// it on that side — buffered inserts are dropped, base points are
// tombstoned; an ID present nowhere is a no-op. Re-inserting a
// deleted ID is allowed: the tombstone keeps the base copy dead and
// the new point lives in the insert buffer.
type Update struct {
	InsertR []geom.Point `json:"insert_r,omitempty"`
	InsertS []geom.Point `json:"insert_s,omitempty"`
	DeleteR []int32      `json:"delete_r,omitempty"`
	DeleteS []int32      `json:"delete_s,omitempty"`
}

// Empty reports whether the update carries no operations.
func (u Update) Empty() bool { return u.Ops() == 0 }

// Ops counts the operations the update carries.
func (u Update) Ops() int {
	return len(u.InsertR) + len(u.InsertS) + len(u.DeleteR) + len(u.DeleteS)
}

// Validate rejects updates the index structures cannot absorb:
// non-finite insert coordinates. Errors wrap engine.ErrBadRequest, so
// servers answer 400 and errors.Is works identically local and
// remote.
func (u Update) Validate() error {
	if err := validFinite(u.InsertR, "insert_r"); err != nil {
		return err
	}
	return validFinite(u.InsertS, "insert_s")
}

func validFinite(pts []geom.Point, side string) error {
	for i, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("%w: %s point %d (ID %d) has non-finite coordinates",
				engine.ErrBadRequest, side, i, p.ID)
		}
	}
	return nil
}

// Config parameterizes a Store.
type Config struct {
	// BuildBase bulk-builds the base sampler over the given point
	// sets (the algorithm choice lives in this closure; the root
	// package supplies srj.NewSampler). The returned sampler must
	// implement core.Trial — BBST, KDS, GridKD, RTS, and JoinSample
	// all do. Required.
	BuildBase func(R, S []geom.Point) (core.Cloner, error)
	// HalfExtent is the window half-extent l, shared by the base and
	// the delta components. Must be positive and finite.
	HalfExtent float64
	// Seed drives the per-view serving pools and the delta samplers;
	// equal seeds make equal-seeded draws reproducible within one
	// generation.
	Seed uint64
	// MaxRejects bounds consecutive rejected mixture trials per
	// sample (0 = the core default). Tombstones consume acceptance,
	// so a store far past its rebuild threshold degrades toward
	// ErrLowAcceptance instead of returning deleted points.
	MaxRejects int
	// MaxT caps the samples one request may ask for on every view
	// engine (0 = unlimited).
	MaxT int
	// RebuildFraction is the delta fraction that triggers a
	// background base rebuild (<= 0 means DefaultRebuildFraction).
	RebuildFraction float64
	// DisableAutoRebuild suppresses threshold-triggered rebuilds and
	// the in-place path's skew escape hatch; Compact still rebuilds on
	// demand. Tests use it to pin the current structures.
	DisableAutoRebuild bool
	// DisableInPlace forces the delta-overlay path even when the base
	// sampler supports in-place maintenance (Unfreezer). Tests use it
	// to pin the overlay path; operators can use it as an escape hatch.
	DisableInPlace bool
	// OnGeneration, when non-nil, is invoked with the new generation
	// after every view swap — Applies AND background rebuild swaps,
	// which bump the generation with no Apply in sight. The serving
	// layer hangs cache invalidation here (evicting registry engines
	// of older generations), so a rebuild's bump cannot strand a
	// stale view engine in the cache until the next update. Called
	// under the store's write lock: keep it fast and do not call back
	// into the store.
	OnGeneration func(gen uint64)
	// Name labels the store's samplers in engine stats (default
	// "dynamic").
	Name string
	// Persister, when non-nil, is the write-ahead durability hook (see
	// persist.go): every applied batch is appended before its view
	// publishes, and rebuild swaps persist a base snapshot. May also be
	// installed after construction with SetPersister (recovery does,
	// so replayed records are not re-appended).
	Persister Persister
	// InitialGeneration seeds the store's generation (recovery resumes
	// at the snapshot's generation instead of 0, so pre-crash cache
	// keys can never alias post-recovery contents).
	InitialGeneration uint64
	// InitialLastApplied seeds the last applied update ID (recovery
	// resumes at the snapshot's coverage; replayed records continue
	// from there).
	InitialLastApplied uint64
}

func (c Config) rebuildFraction() float64 {
	if c.RebuildFraction > 0 {
		return c.RebuildFraction
	}
	return DefaultRebuildFraction
}

func (c Config) maxRejects() int {
	if c.MaxRejects > 0 {
		return c.MaxRejects
	}
	return defaultMaxRejects
}

// view is one immutable snapshot of the store: the base structures,
// the deltas applied on top, and the serving engine over their
// mixture. Draws load it atomically; writers replace it wholesale.
type view struct {
	gen uint64
	// lastID is the last sequenced update ID folded into this view —
	// what a snapshot of this view's materialized base covers.
	lastID uint64

	baseR, baseS     []geom.Point
	baseIDR, baseIDS map[int32]struct{}
	base             core.Cloner // prepared through Count; nil when the base join is empty
	baseMass         float64     // the base sampler's Σµ
	baseSize         int         // full footprint of the base structures (or the mutable index version)
	baseOwned        bool        // this view bulk-built its base (vs sharing the previous view's)
	donorS           *core.KDS   // lazily-indexed donor over baseS for the ib component

	// mut, when non-nil, is the in-place maintained index line: this
	// view's version of the incrementally-updated structures. Mutable
	// views carry no insert buffers, no tombstones, and none of the
	// base fields above — the index IS the current dataset.
	mut *core.Mutable

	insR, insS []geom.Point
	delR, delS map[int32]struct{}

	eng         *engine.Engine // nil when the current join is empty
	overlaySize int

	estMu sync.Mutex
	est   core.Sampler // overlay clone for join-size estimation
}

// deltaOps counts the buffered mutations the view carries.
func (v *view) deltaOps() int {
	return len(v.insR) + len(v.insS) + len(v.delR) + len(v.delS)
}

// Store is a mutable join-sampling dataset: the Source-serving front
// of this package. Construct with NewStore; all methods are safe for
// concurrent use.
type Store struct {
	cfg  Config
	view atomic.Pointer[view]

	mu             sync.Mutex
	log            []Update // updates absorbed since the current base was built
	lastApplied    uint64   // last sequenced update ID (persist.go)
	gap            map[uint64]*gapWaiter
	rebuilding     bool
	rebuildDone    chan struct{}
	lastRebuildErr error
	lastPersistErr error

	// snapPending counts write-ahead records applied since the last
	// snapshot, and snapshotting guards the one in-flight background
	// snapshot. The overlay path snapshots as a side effect of its
	// threshold rebuilds; the in-place path retires those, so it prunes
	// the log on this cadence instead (maybeSnapshotLocked).
	snapPending  int
	snapshotting bool
	snapDone     chan struct{}
	acc          engine.Stats // counters of retired view engines

	// rebuilds counts base rebuilds that swapped in successfully
	// (background compactions and explicit Compact calls alike). It
	// backs srj_store_rebuilds_total and never decreases.
	rebuilds atomic.Uint64

	// inplace counts operations absorbed by in-place index maintenance
	// (no buffering, no rebuild). It backs srj_store_inplace_ops_total
	// and the /v1/stats inplace_ops field; in steady churn it grows
	// while rebuilds stays flat.
	inplace atomic.Uint64

	// persistErrs counts snapshot failures. lastPersistErr holds only
	// the latest one (and clears on success); this counter backs the
	// monotonic srj_store_persist_errors_total, so an alert fires on
	// rate() even when a later snapshot happens to succeed.
	persistErrs atomic.Uint64

	// testHookSwap, when set (by tests, before serving), runs under mu
	// immediately after every view swap — the in-lock invariant hook
	// of the race hammer.
	testHookSwap func(*view)
}

// NewStore bulk-builds the base over R and S and returns a store
// serving them at generation 0. The slices are not copied and must
// not be mutated afterwards (Apply never touches them — mutations
// live in the store's own buffers). Empty sides are allowed: a store
// may start empty and be filled through Apply.
func NewStore(R, S []geom.Point, cfg Config) (*Store, error) {
	if cfg.BuildBase == nil {
		return nil, fmt.Errorf("dynamic: Config.BuildBase is required")
	}
	if !(cfg.HalfExtent > 0) || math.IsInf(cfg.HalfExtent, 0) {
		return nil, fmt.Errorf("dynamic: half extent must be positive and finite, got %g", cfg.HalfExtent)
	}
	if cfg.Name == "" {
		cfg.Name = "dynamic"
	}
	if err := validFinite(R, "R"); err != nil {
		return nil, err
	}
	if err := validFinite(S, "S"); err != nil {
		return nil, err
	}
	st := &Store{cfg: cfg, lastApplied: cfg.InitialLastApplied}
	v := &view{
		gen:       cfg.InitialGeneration,
		lastID:    cfg.InitialLastApplied,
		baseR:     R,
		baseS:     S,
		baseIDR:   idSet(R),
		baseIDS:   idSet(S),
		baseOwned: true,
	}
	if err := st.buildBaseInto(v); err != nil {
		return nil, err
	}
	if err := st.finishView(v); err != nil {
		return nil, err
	}
	st.view.Store(v)
	return st, nil
}

// idSet collects the IDs of one side.
func idSet(pts []geom.Point) map[int32]struct{} {
	out := make(map[int32]struct{}, len(pts))
	for _, p := range pts {
		out[p.ID] = struct{}{}
	}
	return out
}

// deltaCfg is the configuration of the delta samplers.
func (st *Store) deltaCfg() core.Config {
	return core.Config{
		HalfExtent: st.cfg.HalfExtent,
		Seed:       st.cfg.Seed,
		MaxRejects: st.cfg.MaxRejects,
	}
}

// buildBaseInto bulk-builds the base sampler for the view's base
// sides and prepares it through Count. An empty base join (including
// an empty side) leaves v.base nil — not an error for a mutable
// store, which may become non-empty through Apply.
func (st *Store) buildBaseInto(v *view) error {
	v.base, v.baseMass = nil, 0
	v.donorS = nil
	if len(v.baseS) > 0 {
		// The donor's kd-tree over baseS is built lazily, on the first
		// applied batch that inserts R points; until then it costs a
		// struct.
		donor, err := core.NewKDS(nil, v.baseS, st.deltaCfg())
		if err != nil {
			return err
		}
		v.donorS = donor
	}
	if len(v.baseR) == 0 || len(v.baseS) == 0 {
		return nil
	}
	base, err := st.cfg.BuildBase(v.baseR, v.baseS)
	if err != nil {
		if errors.Is(err, core.ErrEmptyJoin) {
			return nil
		}
		return err
	}
	if _, ok := base.(core.Trial); !ok {
		return fmt.Errorf("dynamic: %s does not support per-trial sampling (core.Trial)", base.Name())
	}
	if err := base.Count(); err != nil {
		if errors.Is(err, core.ErrEmptyJoin) {
			return nil
		}
		return err
	}
	v.base = base
	v.baseMass = base.Stats().MuSum
	v.baseSize = base.SizeBytes()
	return nil
}

// Unfreezer is implemented by base samplers whose frozen structures
// convert into a core.Mutable for in-place maintenance (the BBST
// pipeline). Bases without it stay on the delta-overlay path.
type Unfreezer interface {
	Unfreeze() (*core.Mutable, error)
}

// mutableTipLocked resolves the in-place handle the next apply should
// extend: the current view's, or a fresh unfreeze when this is the
// first apply onto a bulk-built base that supports it. Returns nil
// when the store is (or must stay) on the overlay path. Called with
// mu held — Unfreeze is the one O(n + m) step of the in-place line.
func (st *Store) mutableTipLocked(v *view) *core.Mutable {
	if v.mut != nil {
		return v.mut
	}
	if st.cfg.DisableInPlace || v.base == nil || v.deltaOps() != 0 {
		return nil
	}
	uf, ok := v.base.(Unfreezer)
	if !ok {
		return nil
	}
	m, err := uf.Unfreeze()
	if err != nil {
		return nil // this base line cannot go mutable; the overlay path serves it
	}
	return m
}

// mutOps converts an Update into the core batch type. Slices are
// shared — ApplyOps only reads them.
func mutOps(u Update) core.MutOps {
	return core.MutOps{InsR: u.InsertR, InsS: u.InsertS, DelR: u.DeleteR, DelS: u.DeleteS}
}

// buildComponents assembles the view's mixture components in a fixed
// order — base, base×insS, insR×base, insR×insS — so replicas built
// from the same op sequence are byte-identical. A mutable view is a
// single component over its index version.
//
// Component size charging: each component's size field is what the
// view's engine reports to the registry budget. The base structures
// are shared by every view stacked on one bulk build, so only the
// owning view (the one that built them) charges them; derived views
// charge their deltas alone. The same applies to mutable versions,
// which share almost all structure copy-on-write with the bulk build
// they were unfrozen from. Store.SizeBytes adds the shared base back
// exactly once.
func (st *Store) buildComponents(v *view) ([]component, error) {
	if v.mut != nil {
		mc, err := v.mut.Clone()
		if err != nil {
			return nil, err
		}
		size := 0
		if v.baseOwned {
			size = v.baseSize
		}
		return []component{{
			trial:  mc.(core.Trial),
			shared: &componentShared{mass: v.mut.Stats().MuSum, size: size},
		}}, nil
	}
	dcfg := st.deltaCfg()
	var comps []component
	addKDS := func(k *core.KDS, rejR, rejS map[int32]struct{}) error {
		err := k.Count()
		if errors.Is(err, core.ErrEmptyJoin) {
			return nil
		}
		if err != nil {
			return err
		}
		comps = append(comps, component{
			trial:  k,
			shared: &componentShared{mass: k.Stats().MuSum, size: k.SizeBytes(), rejR: rejR, rejS: rejS},
		})
		return nil
	}
	if v.base != nil {
		// Each view gets its own clone of the base as its mixture
		// component: consecutive views share v.base, and a view's
		// clone pool advances its parent's stream on every pooled
		// clone — two views cloning one shared parent would race.
		// Cloning here happens under st.mu (every view is built there),
		// so the shared original is only ever cloned serialized.
		bb, err := v.base.Clone()
		if err != nil {
			return nil, err
		}
		trial, ok := bb.(core.Trial)
		if !ok {
			return nil, fmt.Errorf("dynamic: %s clone does not support trials", v.base.Name())
		}
		size := 0
		if v.baseOwned {
			size = v.baseSize
		}
		comps = append(comps, component{
			trial: trial,
			shared: &componentShared{
				mass: v.baseMass,
				size: size,
				rejR: nilIfEmpty(v.delR),
				rejS: nilIfEmpty(v.delS),
			},
		})
	}
	if len(v.baseR) > 0 && len(v.insS) > 0 {
		k, err := core.NewKDS(v.baseR, v.insS, dcfg)
		if err != nil {
			return nil, err
		}
		if err := addKDS(k, nilIfEmpty(v.delR), nil); err != nil {
			return nil, err
		}
	}
	if len(v.insR) > 0 && v.donorS != nil {
		k, err := core.NewKDSWith(v.insR, v.donorS, dcfg)
		if err != nil {
			return nil, err
		}
		if err := addKDS(k, nil, nilIfEmpty(v.delS)); err != nil {
			return nil, err
		}
	}
	if len(v.insR) > 0 && len(v.insS) > 0 {
		k, err := core.NewKDS(v.insR, v.insS, dcfg)
		if err != nil {
			return nil, err
		}
		if err := addKDS(k, nil, nil); err != nil {
			return nil, err
		}
	}
	return comps, nil
}

func nilIfEmpty(m map[int32]struct{}) map[int32]struct{} {
	if len(m) == 0 {
		return nil
	}
	return m
}

// finishView builds the view's mixture and serving engine. An empty
// current join leaves v.eng nil; Draw answers core.ErrEmptyJoin until
// an Apply makes the join non-empty again.
func (st *Store) finishView(v *view) error {
	comps, err := st.buildComponents(v)
	if err != nil {
		return err
	}
	o, err := newOverlay(st.cfg.Name, st.cfg.maxRejects(), st.cfg.Seed, comps)
	if err != nil {
		if errors.Is(err, core.ErrEmptyJoin) {
			v.eng = nil
			v.est = nil
			v.overlaySize = 0
			return nil
		}
		return err
	}
	est, err := o.Clone()
	if err != nil {
		return err
	}
	eng, err := engine.New(o, st.cfg.Seed)
	if err != nil {
		return err
	}
	if st.cfg.MaxT > 0 {
		eng.SetMaxT(st.cfg.MaxT)
	}
	v.eng = eng
	v.est = est
	v.overlaySize = o.SizeBytes()
	return nil
}

// Apply absorbs one batch of mutations and returns the new
// generation. Batches serialize; draws in flight keep serving the
// view they started on. An empty update returns the current
// generation without bumping it (the remote tiers use this as a
// generation probe). Crossing the rebuild threshold schedules a
// background base rebuild; Apply itself stays O(base count) in the
// worst case (delta re-counting), never a bulk build.
//
// Apply self-stamps the next update ID — it is ApplyAt(ctx, 0, u),
// the single-writer spelling of the sequenced path in persist.go.
func (st *Store) Apply(ctx context.Context, u Update) (uint64, error) {
	res, err := st.ApplyAt(ctx, 0, u)
	return res.Generation, err
}

// applyOps derives one side's new insert buffer and tombstone set
// (copy-on-write: the previous view's are never mutated). Deletes
// drop every buffered copy of the ID and tombstone the base copy when
// one exists; inserts append. The removals are collected into a set
// first and the buffer filtered in one pass, so the cost is
// O(|buffer| + |batch|), not O(|buffer| · |deletes|).
func applyOps(ins []geom.Point, del, baseIDs map[int32]struct{}, add []geom.Point, remove []int32) ([]geom.Point, map[int32]struct{}) {
	nDel := del
	var rm map[int32]struct{}
	copied := false
	for _, id := range remove {
		if rm == nil {
			rm = make(map[int32]struct{}, len(remove))
		}
		rm[id] = struct{}{}
		if _, inBase := baseIDs[id]; inBase {
			if !copied {
				m := make(map[int32]struct{}, len(nDel)+len(remove))
				for k := range nDel {
					m[k] = struct{}{}
				}
				nDel = m
				copied = true
			}
			nDel[id] = struct{}{}
		}
	}
	nIns := make([]geom.Point, 0, len(ins)+len(add))
	for _, p := range ins {
		if _, dead := rm[p.ID]; !dead {
			nIns = append(nIns, p)
		}
	}
	nIns = append(nIns, add...)
	return nIns, nDel
}

// swapLocked publishes a new view, folding the retired engine's
// counters into the store accumulator. Called with mu held.
func (st *Store) swapLocked(nv *view) {
	if old := st.view.Load(); old != nil && old.eng != nil {
		st.acc = addStats(st.acc, old.eng.Stats())
	}
	st.view.Store(nv)
	if st.testHookSwap != nil {
		st.testHookSwap(nv)
	}
	if st.cfg.OnGeneration != nil {
		st.cfg.OnGeneration(nv.gen)
	}
}

// addStats sums two engine counter snapshots.
func addStats(a, b engine.Stats) engine.Stats {
	a.Requests += b.Requests
	a.Samples += b.Samples
	a.Trials += b.Trials
	a.Failures += b.Failures
	a.ClientFailures += b.ClientFailures
	a.SamplerFailures += b.SamplerFailures
	a.TotalLatency += b.TotalLatency
	if b.MaxLatency > a.MaxLatency {
		a.MaxLatency = b.MaxLatency
	}
	a.Latency = a.Latency.Merge(b.Latency)
	return a
}

// maybeRebuildLocked schedules a background base rebuild: on the
// overlay path when the delta fraction crosses the threshold, on the
// in-place path only when the skew escape hatch trips. Called with mu
// held.
func (st *Store) maybeRebuildLocked(v *view) {
	if st.rebuilding || st.cfg.DisableAutoRebuild {
		return
	}
	if v.mut != nil {
		if v.mut.NeedsRebase() {
			st.startRebuildLocked(v)
		}
		return
	}
	delta := v.deltaOps()
	if delta == 0 {
		return
	}
	baseN := len(v.baseR) + len(v.baseS)
	if float64(delta) < st.cfg.rebuildFraction()*float64(baseN) {
		return
	}
	st.startRebuildLocked(v)
}

// startRebuildLocked launches the background rebuild goroutine over
// the given view. Called with mu held and st.rebuilding false. The
// log starts empty: it accumulates exactly the updates applied while
// this rebuild is in flight (everything earlier is inside v), so the
// log never grows during steady serving.
func (st *Store) startRebuildLocked(v *view) {
	st.rebuilding = true
	st.rebuildDone = make(chan struct{})
	st.log = nil
	st.snapPending = 0 // the rebuild swap snapshots on its own
	go st.rebuild(v, st.rebuildDone)
}

// rebuild is the background compaction: materialize the current point
// sets from the snapshot view (the live sets of a mutable version, or
// base minus tombstones plus inserts on the overlay path), bulk-build
// a fresh base outside the lock, then — under the lock — replay the
// updates that arrived while building into fresh deltas over the new
// base and swap the result in at a bumped generation. The swapped-in
// view is frozen either way; a store on the in-place path unfreezes
// again on its next apply.
func (st *Store) rebuild(v *view, done chan struct{}) {
	defer close(done)
	var R, S []geom.Point
	if v.mut != nil {
		R, S = v.mut.LivePoints()
	} else {
		R = materialize(v.baseR, v.delR, v.insR)
		S = materialize(v.baseS, v.delS, v.insS)
	}
	nv := &view{
		baseR:     R,
		baseS:     S,
		baseIDR:   idSet(R),
		baseIDS:   idSet(S),
		baseOwned: true,
	}
	buildErr := st.buildBaseInto(nv) // the expensive bulk build, outside mu

	st.mu.Lock()
	st.rebuilding = false
	pending := st.log
	st.log = nil
	if buildErr != nil {
		st.lastRebuildErr = buildErr
		st.mu.Unlock()
		return
	}
	cur := st.view.Load()
	nv.gen = cur.gen + 1
	nv.lastID = cur.lastID
	for _, u := range pending {
		nv.insR, nv.delR = applyOps(nv.insR, nv.delR, nv.baseIDR, u.InsertR, u.DeleteR)
		nv.insS, nv.delS = applyOps(nv.insS, nv.delS, nv.baseIDS, u.InsertS, u.DeleteS)
	}
	if err := st.finishView(nv); err != nil {
		st.lastRebuildErr = err
		st.mu.Unlock()
		return
	}
	st.lastRebuildErr = nil
	st.rebuilds.Add(1)
	st.swapLocked(nv)
	// The pending tail can itself exceed the threshold under heavy
	// write load; check once so compaction keeps up.
	st.maybeRebuildLocked(nv)
	p := st.cfg.Persister
	st.mu.Unlock()
	if p == nil {
		return
	}
	// Persist the compacted base outside the lock. The snapshot covers
	// the *source view's* lastID, not the swap-time one: the pending
	// tail replayed above is still in the log (pruning stops at
	// v.lastID), so a crash right here replays it onto this base.
	err := p.Snapshot(nv.gen, v.lastID, R, S)
	if err != nil {
		st.persistErrs.Add(1)
	}
	st.mu.Lock()
	st.lastPersistErr = err
	st.mu.Unlock()
}

// maybeSnapshotLocked schedules a background snapshot of a mutable
// view once the write-ahead records since the last snapshot reach the
// rebuild fraction of the live point count — the cadence the retired
// threshold rebuild used to provide. Without it the in-place path
// would never prune the log: steady churn runs no rebuilds, and the
// rebuild swap was the only snapshot trigger. Called with mu held.
func (st *Store) maybeSnapshotLocked(v *view) {
	p := st.cfg.Persister
	if p == nil || v.mut == nil || st.snapshotting || st.rebuilding {
		return
	}
	ix := v.mut.Index()
	if float64(st.snapPending) < st.cfg.rebuildFraction()*float64(ix.NumR()+ix.NumS()) {
		return
	}
	st.snapPending = 0
	st.snapshotting = true
	st.snapDone = make(chan struct{})
	go st.snapshot(v, p)
}

// snapshot persists one mutable view's live point sets, outside the
// lock — the version is immutable, so appliers keep deriving new
// versions while it is read. The snapshot covers everything folded
// into v (all records <= v.lastID): the log prunes up to there.
func (st *Store) snapshot(v *view, p Persister) {
	R, S := v.mut.LivePoints()
	err := p.Snapshot(v.gen, v.lastID, R, S)
	if err != nil {
		st.persistErrs.Add(1)
	}
	st.mu.Lock()
	st.snapshotting = false
	st.lastPersistErr = err
	close(st.snapDone)
	// Records applied while this snapshot ran can already exceed the
	// cadence under heavy write load; check once so pruning keeps up.
	st.maybeSnapshotLocked(st.view.Load())
	st.mu.Unlock()
}

// materialize flattens one side: base minus tombstones plus inserts.
func materialize(base []geom.Point, del map[int32]struct{}, ins []geom.Point) []geom.Point {
	out := make([]geom.Point, 0, len(base)+len(ins))
	for _, p := range base {
		if _, dead := del[p.ID]; !dead {
			out = append(out, p)
		}
	}
	return append(out, ins...)
}

// Compact forces a base rebuild now — folding every buffered insert
// and tombstone, or the whole in-place maintained state, into a fresh
// bulk build — and waits for the swap. A rebuild already in flight is
// waited for instead of doubled. It returns nil when there is nothing
// to compact: no buffered deltas and no in-place changes since the
// last bulk build.
func (st *Store) Compact(ctx context.Context) error {
	st.mu.Lock()
	if !st.rebuilding {
		v := st.view.Load()
		if v.deltaOps() == 0 && v.mut == nil {
			st.mu.Unlock()
			return nil
		}
		st.startRebuildLocked(v)
	}
	done := st.rebuildDone
	st.mu.Unlock()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastRebuildErr
}

// SetOnGeneration installs (or replaces) the Config.OnGeneration
// hook. Callers that build stores through an intermediate layer (the
// root package's NewStore) use it to attach cache invalidation after
// construction — before the store is published for serving, or the
// earliest swaps may miss the hook.
func (st *Store) SetOnGeneration(fn func(gen uint64)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cfg.OnGeneration = fn
}

// Generation reports the current generation: 0 at construction,
// bumped by every non-empty Apply and every completed rebuild swap.
func (st *Store) Generation() uint64 { return st.view.Load().gen }

// ViewEngine returns the current generation and its serving engine.
// The error is core.ErrEmptyJoin when the current join is empty. The
// registry's BuildFunc uses the pair to cache view engines under
// generation-tagged keys.
func (st *Store) ViewEngine() (uint64, *engine.Engine, error) {
	v := st.view.Load()
	if v.eng == nil {
		return v.gen, nil, core.ErrEmptyJoin
	}
	return v.gen, v.eng, nil
}

// Draw serves one request against the current view (the srj.Source
// contract, like engine.Engine.Draw). On an empty join the request is
// still validated and capped first, then core.ErrEmptyJoin surfaces.
func (st *Store) Draw(ctx context.Context, req engine.Request) (engine.Result, error) {
	v := st.view.Load()
	if v.eng == nil {
		return engine.Result{}, st.emptyErr(req, false)
	}
	return v.eng.Draw(ctx, req)
}

// DrawFunc serves one request against the current view, streaming
// batches to fn (the srj.Source contract).
func (st *Store) DrawFunc(ctx context.Context, req engine.Request, fn func(batch []geom.Pair) error) error {
	v := st.view.Load()
	if v.eng == nil {
		return st.emptyErr(req, true)
	}
	return v.eng.DrawFunc(ctx, req, fn)
}

// emptyErr orders an empty store's refusals like a serving engine
// would: malformed requests first, the cap second, ErrEmptyJoin last.
func (st *Store) emptyErr(req engine.Request, stream bool) error {
	var t int
	var err error
	if stream {
		t, err = req.ResolveStream()
	} else {
		t, err = req.Resolve()
	}
	if err != nil {
		return err
	}
	if st.cfg.MaxT > 0 && t > st.cfg.MaxT {
		return fmt.Errorf("%w: t=%d > cap %d", engine.ErrSampleCap, t, st.cfg.MaxT)
	}
	return core.ErrEmptyJoin
}

// Stats aggregates the serving counters across every view the store
// has published. Under concurrent generation swaps the snapshot is
// approximate: requests finishing on a just-retired view after its
// counters were folded go uncounted.
func (st *Store) Stats() engine.Stats {
	st.mu.Lock()
	acc := st.acc
	st.mu.Unlock()
	if v := st.view.Load(); v != nil && v.eng != nil {
		acc = addStats(acc, v.eng.Stats())
	}
	return acc
}

// SizeBytes estimates the retained footprint of the current view:
// mixture structures, point buffers, and tombstone sets. The view
// engine (overlaySize) charges the shared base only on the view that
// bulk-built it, so derived views add it back here exactly once —
// resident structures are never counted twice. During a rebuild the
// transient next base is not counted.
func (st *Store) SizeBytes() int {
	v := st.view.Load()
	total := v.overlaySize
	if !v.baseOwned {
		total += v.baseSize
	}
	total += 24 * (len(v.baseR) + len(v.baseS) + len(v.insR) + len(v.insS))
	total += 16 * (len(v.delR) + len(v.delS))
	return total
}

// Pending reports the buffered mutation count of the current view —
// the numerator of the rebuild threshold.
func (st *Store) Pending() int { return st.view.Load().deltaOps() }

// Rebuilds reports how many base rebuilds have swapped in since the
// store was created.
func (st *Store) Rebuilds() uint64 { return st.rebuilds.Load() }

// InPlaceOps reports how many operations were absorbed by in-place
// index maintenance since the store was created.
func (st *Store) InPlaceOps() uint64 { return st.inplace.Load() }

// InPlace reports whether the current view is served by the in-place
// maintained index (vs the delta overlay or a freshly bulk-built
// base).
func (st *Store) InPlace() bool { return st.view.Load().mut != nil }

// DeltaFraction reports buffered mutations relative to the current
// base size — the rebuild threshold's own ratio, exported as the
// srj_store_delta_fraction gauge. An empty base with pending ops
// reports 1. A view on the in-place path buffers nothing, so it
// reports 0 regardless of how many operations it has absorbed.
func (st *Store) DeltaFraction() float64 {
	v := st.view.Load()
	delta := v.deltaOps()
	if delta == 0 {
		return 0
	}
	baseN := len(v.baseR) + len(v.baseS)
	if baseN == 0 {
		return 1
	}
	return float64(delta) / float64(baseN)
}

// LastRebuildErr reports the most recent background rebuild failure
// (nil after a successful swap). Rebuild failures never tear down
// serving — the previous view keeps answering.
func (st *Store) LastRebuildErr() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastRebuildErr
}

// EstimateJoinSize draws `samples` calibration samples through the
// current view's estimator clone and returns the acceptance-rate
// estimate of the live join size (exact-counting components make it
// exact up to the base algorithm's bound). The estimator accumulates
// across calls, so repeated estimates tighten. An empty join
// estimates 0 with no error.
func (st *Store) EstimateJoinSize(samples int) (float64, error) {
	v := st.view.Load()
	if v.eng == nil || v.est == nil {
		return 0, nil
	}
	v.estMu.Lock()
	defer v.estMu.Unlock()
	buf := make([]geom.Pair, 1024)
	var err error
	for drawn := 0; drawn < samples && err == nil; {
		chunk := buf
		if rem := samples - drawn; rem < len(chunk) {
			chunk = chunk[:rem]
		}
		var n int
		n, err = core.SampleInto(v.est, chunk)
		drawn += n
	}
	return aggregate.JoinSizeEstimate(v.est.Stats()), err
}

// PersistErrors reports how many snapshot attempts have failed since
// the store was created (see the persistErrs field).
func (st *Store) PersistErrors() uint64 { return st.persistErrs.Load() }

// Dump snapshots the store's complete logical state: the current
// generation, the last applied update ID, and the live point sets at
// that moment. The returned slices are freshly materialized — callers
// own them. This is the donor half of router state transfer: a store
// constructed from (R, S) at (gen, lastID) and fed the sequenced
// updates after lastID converges on this store's *logical* state —
// the same live points, tombstones, and sequence position. Byte-level
// draw identity is a stronger property that holds only between stores
// sharing the same build history (base build plus the same in-place
// applies in the same order); a store bulk-built from a flattened
// dump serves correct draws, not necessarily this store's draws.
func (st *Store) Dump() (gen, lastID uint64, R, S []geom.Point) {
	v := st.view.Load()
	if v.mut != nil {
		R, S = v.mut.LivePoints()
	} else {
		R = materialize(v.baseR, v.delR, v.insR)
		S = materialize(v.baseS, v.delS, v.insS)
	}
	return v.gen, v.lastID, R, S
}

// SnapshotNow persists the store's state through its persister
// synchronously when that can be done *faithfully* — the shutdown
// path's bound on recovery time. Faithful means recovery from the
// snapshot reproduces the exact sampler a live peer at the same
// generation carries, which holds only when the current view is a
// pure compacted base (no overlay deltas, no in-place history):
// snapshotting a mid-history view would flatten its incremental
// state into a fresh bulk build, and seeded draws after recovery
// would fork from fleet peers at the same generation. Mid-history
// stores succeed as a no-op — the write-ahead log already holds
// every record past the last faithful snapshot, and replay rebuilds
// the identical incremental history. In-flight background
// persistence is waited out first, so a snapshot the cadence already
// started is on disk before shutdown returns. A store without a
// persister succeeds as a no-op.
func (st *Store) SnapshotNow(ctx context.Context) error {
	st.mu.Lock()
	p := st.cfg.Persister
	st.mu.Unlock()
	if p == nil {
		return nil
	}
	if err := st.quiesce(ctx); err != nil {
		return err
	}
	v := st.view.Load()
	if v.mut != nil || v.deltaOps() > 0 {
		return nil
	}
	err := p.Snapshot(v.gen, v.lastID, v.baseR, v.baseS)
	if err != nil {
		st.persistErrs.Add(1)
	}
	st.mu.Lock()
	st.lastPersistErr = err
	if err == nil {
		st.snapPending = 0
	}
	st.mu.Unlock()
	return err
}

// quiesce waits for an in-flight background rebuild (tests and
// shutdown paths); it does not prevent new ones.
func (st *Store) quiesce(ctx context.Context) error {
	for {
		st.mu.Lock()
		var done chan struct{}
		switch {
		case st.rebuilding:
			done = st.rebuildDone
		case st.snapshotting:
			done = st.snapDone
		}
		st.mu.Unlock()
		if done == nil {
			return nil
		}
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Quiesce waits for any in-flight background rebuild to finish —
// benchmarks and tests use it so goroutine-leak checks and timing
// sections see a settled store.
func (st *Store) Quiesce(ctx context.Context) error { return st.quiesce(ctx) }
