// Package engine turns the one-shot join samplers of internal/core
// into a concurrent query-serving subsystem. The paper's BBST draws t
// samples in Õ(n + m + t) *after* a single preprocessing pass; a
// serving system only realizes that bound if the preprocessing is
// amortized across requests. An Engine therefore builds the sampler's
// structures exactly once and serves every subsequent request from a
// pool of lightweight clones: each request checks a clone out, gives
// it a fresh independent random stream, draws through the
// zero-allocation SampleInto hot path, and returns the clone for
// reuse. Aggregate request counters (requests, samples, failures,
// cumulative and peak latency) are maintained lock-free.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// DefaultBatch is the pooled buffer size SampleFunc streams through:
// large enough to amortize per-batch overhead, small enough (~200 KiB
// of pairs) to stay cache-resident.
const DefaultBatch = 4096

// ErrSampleCap is returned (wrapped, with the offending numbers) when
// a request asks for more samples than the Engine's configured
// per-request cap. Sample checks the cap before allocating the result
// slice, so an adversarial t cannot OOM the process; servers should
// treat this as a client error (it counts toward
// Stats.ClientFailures).
var ErrSampleCap = errors.New("engine: sample count exceeds the per-request cap")

// ErrBadRequest marks requests that are malformed independent of any
// configured cap: a non-positive sample count, or an Into buffer too
// small for the count requested. Servers map it to HTTP 400; it counts
// toward Stats.ClientFailures.
var ErrBadRequest = errors.New("engine: bad request")

// Request carries the per-request parameters of one Draw or DrawFunc.
// It is the request half of the Source contract (the root package
// re-exports it as srj.Request): the same struct parameterizes local
// and remote draws, and Resolve/ResolveStream are the single
// validation both sides apply, so malformed requests are rejected
// identically everywhere.
type Request struct {
	// T is the number of samples to draw. Zero with a non-nil Into
	// means len(Into); otherwise T must be positive.
	T int
	// Seed, when nonzero, makes the draw reproducible: the request is
	// served from a stream seeded with it, so equal (built structures,
	// Seed) pairs yield identical samples, whatever traffic is
	// interleaved — locally and over the wire (where it travels as
	// draw_seed). Zero draws from the source's own sequence: fresh
	// independent samples per request.
	Seed uint64
	// Into, when non-nil, receives the samples in place — the
	// zero-allocation path for Draw. It must hold at least T pairs
	// (ErrBadRequest otherwise). DrawFunc streams through its own
	// batches and uses Into only to default T.
	Into []geom.Pair
}

// Resolve validates the request for a buffered draw and returns the
// effective sample count: T, or len(Into) when T is zero and a
// buffer was given. Errors wrap ErrBadRequest.
func (r Request) Resolve() (int, error) {
	t, err := r.ResolveStream()
	if err != nil {
		return 0, err
	}
	if r.Into != nil && len(r.Into) < t {
		return 0, fmt.Errorf("%w: Into holds %d pairs, %d requested", ErrBadRequest, len(r.Into), t)
	}
	return t, nil
}

// ResolveStream is Resolve for streaming draws: Into still defaults
// T when T is zero, but its length is not validated — DrawFunc never
// writes into it, so a Request built for Draw streams unchanged.
func (r Request) ResolveStream() (int, error) {
	t := r.T
	if t == 0 && r.Into != nil {
		t = len(r.Into)
	}
	if t <= 0 {
		return 0, fmt.Errorf("%w: non-positive sample count %d", ErrBadRequest, t)
	}
	return t, nil
}

// Result is the answer to one Draw: the samples plus per-request
// stats. The root package re-exports it as srj.Result.
type Result struct {
	// Pairs holds the drawn samples — backed by Request.Into when one
	// was provided. On error it holds the samples drawn before the
	// failure.
	Pairs []geom.Pair
	// Elapsed is the request latency as this source observed it: for
	// an engine the full in-process request (clone checkout, sampling,
	// return to the pool); for a remote client the wall-clock of the
	// network call.
	Elapsed time.Duration
}

// Count returns the number of samples drawn.
func (r Result) Count() int { return len(r.Pairs) }

// Stats aggregates the request-level counters of an Engine. All
// durations cover the full request — clone checkout, sampling, and
// return to the pool. The JSON form (snake_case, durations in
// nanoseconds as the _ns suffixes say) is served verbatim by the
// HTTP API's /v1/stats and /v1/engines.
type Stats struct {
	// Requests counts completed requests, including failed ones.
	Requests uint64 `json:"requests"`
	// Samples counts join samples drawn across all requests.
	Samples uint64 `json:"samples"`
	// Failures is the total number of requests that returned an
	// error: ClientFailures + SamplerFailures.
	Failures uint64 `json:"failures"`
	// ClientFailures counts request-level errors: a bad or over-cap
	// t, an error returned by a SampleFunc callback, or a request
	// context that expired or was cancelled mid-draw. These are
	// problems with individual requests (or the capacity to serve
	// them in time), not with the sampling structures.
	ClientFailures uint64 `json:"client_failures"`
	// SamplerFailures counts errors from the sampling algorithm
	// itself (core.ErrLowAcceptance: the rejection budget was
	// exhausted). A monitoring system should alert on these — they
	// indicate a degenerate dataset/window, not a misbehaving client.
	SamplerFailures uint64 `json:"sampler_failures"`
	// Trials counts sampling iterations including rejections, summed
	// across requests. Samples/Trials is the observed acceptance rate
	// — the paper's load-bearing performance signal.
	Trials uint64 `json:"trials"`
	// TotalLatency is the summed request latency.
	TotalLatency time.Duration `json:"total_latency_ns"`
	// MaxLatency is the slowest single request.
	MaxLatency time.Duration `json:"max_latency_ns"`
	// Latency is the full request-latency distribution over the
	// shared obs.DrawDurationBuckets, one observation per request.
	Latency obs.HistogramSnapshot `json:"latency"`
}

// AvgLatency returns the mean request latency.
func (s Stats) AvgLatency() time.Duration {
	if s.Requests == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Requests)
}

// AcceptanceRate returns accepted samples over total sampling trials,
// or NaN before any trial ran.
func (s Stats) AcceptanceRate() float64 {
	if s.Trials == 0 {
		return math.NaN()
	}
	return float64(s.Samples) / float64(s.Trials)
}

// Engine serves concurrent sampling requests against join structures
// that were built exactly once. All methods are safe for concurrent
// use by any number of goroutines.
type Engine struct {
	pool *core.ClonePool
	name string
	size int

	buffers sync.Pool // *[]geom.Pair batches for SampleFunc

	maxT atomic.Int64 // per-request sample cap; 0 = unlimited

	requests    atomic.Uint64
	samples     atomic.Uint64
	trials      atomic.Uint64
	clientFails atomic.Uint64
	samplerFail atomic.Uint64
	latencyNS   atomic.Int64
	maxNS       atomic.Int64

	// hist observes full-request latency — exactly once per request,
	// in record, never inside the per-trial rejection loop (per-trial
	// clock reads measurably slowed the sampler; see internal/core).
	hist *obs.Histogram
}

// New prepares parent through Count — the only time the grid, corner
// indexes, and alias tables are built — and returns an Engine serving
// requests against those shared structures. seed drives the
// per-checkout stream reseeds: engines created with equal seeds serve
// identical per-request samples to a sequential client. Construction
// fails fast with core.ErrEmptyJoin on a provably empty join and with
// core.ErrNoParallelWithoutReplacement when the parent samples
// without replacement.
func New(parent core.Cloner, seed uint64) (*Engine, error) {
	pool, err := core.NewClonePool(parent, seed)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		pool: pool,
		name: parent.Name(),
		size: parent.SizeBytes(),
		hist: obs.NewHistogram(obs.DrawDurationBuckets),
	}
	e.buffers.New = func() any {
		buf := make([]geom.Pair, DefaultBatch)
		return &buf
	}
	return e, nil
}

// Name identifies the underlying algorithm.
func (e *Engine) Name() string { return e.name }

// SetMaxT caps the number of samples a single request may ask for;
// n <= 0 removes the cap. The cap is checked before any allocation,
// so it bounds per-request memory at roughly n*sizeof(Pair) bytes.
// Safe to call concurrently with serving.
func (e *Engine) SetMaxT(n int) {
	if n < 0 {
		n = 0
	}
	e.maxT.Store(int64(n))
}

// MaxT reports the per-request sample cap (0 = unlimited).
func (e *Engine) MaxT() int { return int(e.maxT.Load()) }

// capT rejects an effective sample count beyond the SetMaxT cap. The
// returned error is a client error for Stats purposes.
func (e *Engine) capT(t int) error {
	if maxT := e.maxT.Load(); maxT > 0 && int64(t) > maxT {
		return fmt.Errorf("%w: t=%d > cap %d", ErrSampleCap, t, maxT)
	}
	return nil
}

// checkout obtains a pooled clone: seeded with the request's own seed
// when one was given, from the pool's per-checkout sequence otherwise.
func (e *Engine) checkout(seed uint64) (core.Sampler, error) {
	if seed != 0 {
		return e.pool.GetSeeded(seed)
	}
	return e.pool.Get()
}

// SizeBytes estimates the retained footprint of the shared structures
// (excluding per-clone scratch, which is negligible).
func (e *Engine) SizeBytes() int { return e.size }

// Warm pre-creates n idle clones, typically one per expected
// concurrent client, so no request pays clone-construction cost.
func (e *Engine) Warm(n int) error { return e.pool.Warm(n) }

// Draw serves one request: it draws req.T uniform independent join
// samples (into req.Into when provided — the zero-allocation hot
// path — a fresh slice otherwise) and returns them with per-request
// stats. The request is rejected before any allocation when it is
// malformed (ErrBadRequest) or exceeds the SetMaxT cap (ErrSampleCap).
// ctx is checked between DefaultBatch-sized chunks, so cancellation
// stops an in-flight draw promptly; the partial result drawn so far
// is returned alongside ctx.Err().
func (e *Engine) Draw(ctx context.Context, req Request) (Result, error) {
	start := time.Now()
	t, err := req.Resolve()
	if err == nil {
		err = e.capT(t)
	}
	if err != nil {
		e.record(start, 0, err)
		return Result{Elapsed: time.Since(start)}, err
	}
	dst := req.Into
	if dst == nil {
		dst = make([]geom.Pair, t)
	}
	dst = dst[:t]
	n, err := e.drawInto(ctx, start, req.Seed, dst)
	return Result{Pairs: dst[:n], Elapsed: time.Since(start)}, err
}

// drawInto fills dst through a pooled clone, checking ctx between
// chunks, and folds the finished request into the stats. It is the
// shared core of Draw and the deprecated SampleInto shim.
func (e *Engine) drawInto(ctx context.Context, start time.Time, seed uint64, dst []geom.Pair) (int, error) {
	if err := ctx.Err(); err != nil {
		e.record(start, 0, err)
		return 0, err
	}
	s, err := e.checkout(seed)
	if err != nil {
		e.record(start, 0, err)
		return 0, err
	}
	trialsBefore := s.Stats().Iterations
	drawn := 0
	for drawn < len(dst) && err == nil {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		end := drawn + DefaultBatch
		if end > len(dst) {
			end = len(dst)
		}
		var n int
		n, err = core.SampleInto(s, dst[drawn:end])
		drawn += n
	}
	e.trials.Add(s.Stats().Iterations - trialsBefore)
	e.pool.Put(s)
	e.record(start, drawn, err)
	return drawn, err
}

// DrawFunc serves one request for req.T samples by streaming them
// through a pooled batch buffer: fn is invoked with successive batches
// (DefaultBatch pairs, the final one shorter) whose backing array is
// reused across batches and requests — fn must not retain it. An
// error from fn aborts the request and is returned verbatim. ctx is
// checked between batches: a context canceled mid-stream stops the
// draw promptly and returns ctx.Err(). req.Into never receives
// samples — it only defaults T (see Request.ResolveStream), so a
// Request built for Draw streams unchanged.
func (e *Engine) DrawFunc(ctx context.Context, req Request, fn func(batch []geom.Pair) error) error {
	start := time.Now()
	t, err := req.ResolveStream()
	if err == nil {
		err = e.capT(t)
	}
	if err != nil {
		e.record(start, 0, err)
		return err
	}
	if err := ctx.Err(); err != nil {
		e.record(start, 0, err)
		return err
	}
	s, err := e.checkout(req.Seed)
	if err != nil {
		e.record(start, 0, err)
		return err
	}
	trialsBefore := s.Stats().Iterations
	buf := e.buffers.Get().(*[]geom.Pair)
	drawn := 0
	for drawn < t && err == nil {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		batch := *buf
		if rem := t - drawn; rem < len(batch) {
			batch = batch[:rem]
		}
		var n int
		n, err = core.SampleInto(s, batch)
		drawn += n
		if n > 0 {
			if ferr := fn(batch[:n]); ferr != nil && err == nil {
				err = ferr
			}
		}
	}
	e.trials.Add(s.Stats().Iterations - trialsBefore)
	e.buffers.Put(buf)
	e.pool.Put(s)
	e.record(start, drawn, err)
	return err
}

// SampleInto serves one request: it draws len(dst) uniform independent
// join samples into the caller's buffer and returns the number
// written. It backs the root package's deprecated Engine.SampleInto
// shim; new code uses Draw with Request.Into. An empty dst returns
// immediately without checking out a clone or counting a request in
// Stats (the pre-Source implementation counted it).
func (e *Engine) SampleInto(dst []geom.Pair) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	return e.drawInto(context.Background(), time.Now(), 0, dst)
}

// Sample serves one request for t samples into a fresh slice. The
// request is rejected — before the slice is allocated — when t is
// negative or exceeds the SetMaxT cap, so no request can force an
// unbounded allocation. It backs the root package's deprecated
// Engine.Sample shim; new code uses Draw. t == 0 returns immediately
// without checking out a clone or counting a request in Stats (the
// pre-Source implementation counted it).
func (e *Engine) Sample(t int) ([]geom.Pair, error) {
	if t == 0 {
		return nil, nil
	}
	res, err := e.Draw(context.Background(), Request{T: t})
	return res.Pairs, err
}

// SampleFunc serves one request for t samples, streaming them to fn
// in pooled batches. It backs the root package's deprecated
// Engine.SampleFunc shim; new code uses DrawFunc.
func (e *Engine) SampleFunc(t int, fn func(batch []geom.Pair) error) error {
	if t == 0 {
		return nil
	}
	return e.DrawFunc(context.Background(), Request{T: t}, fn)
}

// record folds one finished request into the aggregate counters.
// Errors are classified: core.ErrLowAcceptance is the sampler giving
// up (alertable); everything else a request can produce — bad t, an
// over-cap t, a SampleFunc callback error — is the client's fault.
func (e *Engine) record(start time.Time, samples int, err error) {
	lat := time.Since(start)
	e.requests.Add(1)
	e.samples.Add(uint64(samples))
	if err != nil {
		if errors.Is(err, core.ErrLowAcceptance) {
			e.samplerFail.Add(1)
		} else {
			e.clientFails.Add(1)
		}
	}
	e.latencyNS.Add(int64(lat))
	e.hist.Observe(lat.Seconds())
	for {
		cur := e.maxNS.Load()
		if int64(lat) <= cur || e.maxNS.CompareAndSwap(cur, int64(lat)) {
			return
		}
	}
}

// Stats returns a snapshot of the aggregate request counters. Under
// concurrent traffic the fields are individually, not jointly,
// consistent.
func (e *Engine) Stats() Stats {
	client := e.clientFails.Load()
	sampler := e.samplerFail.Load()
	return Stats{
		Requests:        e.requests.Load(),
		Samples:         e.samples.Load(),
		Trials:          e.trials.Load(),
		Failures:        client + sampler,
		ClientFailures:  client,
		SamplerFailures: sampler,
		TotalLatency:    time.Duration(e.latencyNS.Load()),
		MaxLatency:      time.Duration(e.maxNS.Load()),
		Latency:         e.hist.Snapshot(),
	}
}
