package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// TestInstrumentationOverhead is the observability layer's budget
// guard: the per-request instrumentation a Draw pays — one histogram
// Observe, the trials delta, the latency/sample atomics — must stay
// far under 2% of even a small warm draw. The histogram observation
// sits OUTSIDE the per-trial rejection loop by design; if someone
// moves clock reads or atomics inside it, the per-draw cost explodes
// and this test catches it long before a benchmark diff would.
func TestInstrumentationOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	e, _ := newTestEngine(t, 7)
	if err := e.Warm(1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const reqT = 1000
	dst := make([]geom.Pair, reqT)
	// Warm-up draws so the clone pool and caches settle.
	for i := 0; i < 10; i++ {
		if _, err := e.Draw(ctx, Request{Into: dst}); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 200
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := e.Draw(ctx, Request{Into: dst}); err != nil {
			t.Fatal(err)
		}
	}
	perDraw := time.Since(start) / rounds

	// The instrumentation alone, at the same call rate: what record()
	// and the trials accounting add per finished request.
	hist := obs.NewHistogram(obs.DrawDurationBuckets)
	var trials, samples, latency int64
	start = time.Now()
	for i := 0; i < rounds; i++ {
		lat := time.Duration(i) * time.Microsecond
		hist.Observe(lat.Seconds())
		trials += int64(reqT) * 2
		samples += int64(reqT)
		latency += int64(lat)
	}
	perObs := time.Since(start) / rounds
	_ = trials + samples + latency

	if perObs*50 > perDraw {
		t.Errorf("instrumentation %v per request exceeds 2%% of a %v draw", perObs, perDraw)
	}
}
