package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rng"
)

func testPoints(r *rng.RNG, n int, extent float64, base int32) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			ID: base + int32(i),
			X:  r.Range(0, extent),
			Y:  r.Range(0, extent),
		}
	}
	return pts
}

func newTestEngine(t *testing.T, seed uint64) (*Engine, float64) {
	t.Helper()
	r := rng.New(3)
	R := testPoints(r, 400, 50, 0)
	S := testPoints(r, 400, 50, 10000)
	const l = 5.0
	s, err := core.NewBBST(R, S, core.Config{HalfExtent: l, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(s, seed)
	if err != nil {
		t.Fatal(err)
	}
	return e, l
}

func TestEngineServesValidSamples(t *testing.T) {
	e, l := newTestEngine(t, 1)
	pairs, err := e.Sample(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2000 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if !geom.InWindow(p.R, p.S, l) {
			t.Fatalf("invalid pair %v", p)
		}
	}
}

// TestEngineConcurrentStress: many goroutines share one Engine (run
// with -race; the shared structures must stay read-only). Also checks
// the aggregate counters add up.
func TestEngineConcurrentStress(t *testing.T) {
	e, l := newTestEngine(t, 2)
	if err := e.Warm(8); err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const requests = 30
	const perRequest = 200
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]geom.Pair, perRequest)
			for req := 0; req < requests; req++ {
				n, err := e.SampleInto(buf)
				if err != nil {
					errs[i] = err
					return
				}
				for _, p := range buf[:n] {
					if !geom.InWindow(p.R, p.S, l) {
						errs[i] = errors.New("pair outside window")
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Requests != goroutines*requests {
		t.Errorf("Requests = %d, want %d", st.Requests, goroutines*requests)
	}
	if st.Samples != goroutines*requests*perRequest {
		t.Errorf("Samples = %d, want %d", st.Samples, goroutines*requests*perRequest)
	}
	if st.Failures != 0 {
		t.Errorf("Failures = %d", st.Failures)
	}
	if st.TotalLatency <= 0 || st.MaxLatency <= 0 || st.AvgLatency() > st.MaxLatency {
		t.Errorf("implausible latencies: %+v", st)
	}
}

// TestEngineDeterminism: engines with equal seeds serve identical
// per-request samples to a sequential client.
func TestEngineDeterminism(t *testing.T) {
	e1, _ := newTestEngine(t, 99)
	e2, _ := newTestEngine(t, 99)
	for req := 0; req < 8; req++ {
		a, err := e1.Sample(300)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e2.Sample(300)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("request %d diverged at sample %d", req, i)
			}
		}
	}
	// Different seeds must serve different streams.
	e3, _ := newTestEngine(t, 100)
	a, err := e1.Sample(300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e3.Sample(300)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatalf("distinct seeds repeated %d/%d samples", same, len(a))
	}
}

func TestEngineSampleFunc(t *testing.T) {
	e, l := newTestEngine(t, 4)
	const want = DefaultBatch*2 + 137
	got := 0
	batches := 0
	err := e.SampleFunc(want, func(batch []geom.Pair) error {
		if len(batch) == 0 || len(batch) > DefaultBatch {
			t.Fatalf("bad batch size %d", len(batch))
		}
		for _, p := range batch {
			if !geom.InWindow(p.R, p.S, l) {
				t.Fatalf("invalid pair %v", p)
			}
		}
		got += len(batch)
		batches++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streamed %d samples, want %d", got, want)
	}
	if batches != 3 {
		t.Fatalf("got %d batches, want 3", batches)
	}
	// fn errors abort the request and count as a failure.
	boom := errors.New("boom")
	if err := e.SampleFunc(want, func([]geom.Pair) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if st := e.Stats(); st.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", st.Failures)
	}
}

func TestEngineEdgeCases(t *testing.T) {
	e, _ := newTestEngine(t, 5)
	if _, err := e.Sample(-1); err == nil {
		t.Error("negative t should fail")
	}
	if err := e.SampleFunc(-1, func([]geom.Pair) error { return nil }); err == nil {
		t.Error("negative t should fail")
	}
	if err := e.SampleFunc(0, func([]geom.Pair) error { t.Error("fn called for t=0"); return nil }); err != nil {
		t.Error(err)
	}
	out, err := e.Sample(0)
	if err != nil || len(out) != 0 {
		t.Errorf("t=0: %d pairs, %v", len(out), err)
	}
	if e.Name() != "BBST" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.SizeBytes() <= 0 {
		t.Errorf("SizeBytes = %d", e.SizeBytes())
	}
}

// TestEngineSampleCap: requests over the configured cap fail with
// ErrSampleCap before any result slice is allocated, and count as
// client failures.
func TestEngineSampleCap(t *testing.T) {
	e, _ := newTestEngine(t, 6)
	e.SetMaxT(1000)
	if e.MaxT() != 1000 {
		t.Fatalf("MaxT = %d", e.MaxT())
	}
	if _, err := e.Sample(1001); !errors.Is(err, ErrSampleCap) {
		t.Fatalf("over-cap Sample: err = %v", err)
	}
	if err := e.SampleFunc(1001, func([]geom.Pair) error { t.Error("fn called"); return nil }); !errors.Is(err, ErrSampleCap) {
		t.Fatalf("over-cap SampleFunc: err = %v", err)
	}
	// At the cap is fine.
	if pairs, err := e.Sample(1000); err != nil || len(pairs) != 1000 {
		t.Fatalf("at-cap Sample: %d pairs, %v", len(pairs), err)
	}
	// Removing the cap restores unlimited requests.
	e.SetMaxT(0)
	if pairs, err := e.Sample(1001); err != nil || len(pairs) != 1001 {
		t.Fatalf("uncapped Sample: %d pairs, %v", len(pairs), err)
	}
	st := e.Stats()
	if st.ClientFailures != 2 || st.SamplerFailures != 0 || st.Failures != 2 {
		t.Fatalf("failure split = %+v", st)
	}
}

// TestEngineFailureClassification: caller-induced errors (bad t, fn
// error) land in ClientFailures; only algorithmic give-ups
// (core.ErrLowAcceptance) land in SamplerFailures.
func TestEngineFailureClassification(t *testing.T) {
	e, _ := newTestEngine(t, 7)
	if _, err := e.Sample(-1); err == nil {
		t.Fatal("negative t accepted")
	}
	boom := errors.New("boom")
	if err := e.SampleFunc(10, func([]geom.Pair) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	st := e.Stats()
	if st.ClientFailures != 2 || st.SamplerFailures != 0 {
		t.Fatalf("client errors misclassified: %+v", st)
	}

	// A rejection budget of 1 makes the first rejected iteration fatal;
	// the BBST's corner-bucket upper bounds overcount, so drawing many
	// samples is certain to reject at least once. That give-up must be
	// classified as a sampler failure.
	r := rng.New(9)
	R := testPoints(r, 400, 50, 0)
	S := testPoints(r, 400, 50, 10000)
	s, err := core.NewBBST(R, S, core.Config{HalfExtent: 5, Seed: 1, MaxRejects: 1})
	if err != nil {
		t.Fatal(err)
	}
	le, err := New(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := le.Sample(50000); !errors.Is(err, core.ErrLowAcceptance) {
		t.Fatalf("want ErrLowAcceptance, got %v", err)
	}
	if st := le.Stats(); st.SamplerFailures != 1 || st.ClientFailures != 0 {
		t.Fatalf("sampler error misclassified: %+v", st)
	}
}

// TestEngineEmptyJoin: a provably empty join fails at construction,
// not on the first request.
func TestEngineEmptyJoin(t *testing.T) {
	R := []geom.Point{{ID: 0, X: 0, Y: 0}}
	S := []geom.Point{{ID: 0, X: 1000, Y: 1000}}
	s, err := core.NewBBST(R, S, core.Config{HalfExtent: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(s, 1); !errors.Is(err, core.ErrEmptyJoin) {
		t.Fatalf("err = %v", err)
	}
}
