package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rng"
)

func testPoints(r *rng.RNG, n int, extent float64, base int32) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			ID: base + int32(i),
			X:  r.Range(0, extent),
			Y:  r.Range(0, extent),
		}
	}
	return pts
}

func newTestEngine(t *testing.T, seed uint64) (*Engine, float64) {
	t.Helper()
	r := rng.New(3)
	R := testPoints(r, 400, 50, 0)
	S := testPoints(r, 400, 50, 10000)
	const l = 5.0
	s, err := core.NewBBST(R, S, core.Config{HalfExtent: l, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(s, seed)
	if err != nil {
		t.Fatal(err)
	}
	return e, l
}

func TestEngineServesValidSamples(t *testing.T) {
	e, l := newTestEngine(t, 1)
	pairs, err := e.Sample(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2000 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if !geom.InWindow(p.R, p.S, l) {
			t.Fatalf("invalid pair %v", p)
		}
	}
}

// TestEngineConcurrentStress: many goroutines share one Engine (run
// with -race; the shared structures must stay read-only). Also checks
// the aggregate counters add up.
func TestEngineConcurrentStress(t *testing.T) {
	e, l := newTestEngine(t, 2)
	if err := e.Warm(8); err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const requests = 30
	const perRequest = 200
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]geom.Pair, perRequest)
			for req := 0; req < requests; req++ {
				n, err := e.SampleInto(buf)
				if err != nil {
					errs[i] = err
					return
				}
				for _, p := range buf[:n] {
					if !geom.InWindow(p.R, p.S, l) {
						errs[i] = errors.New("pair outside window")
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Requests != goroutines*requests {
		t.Errorf("Requests = %d, want %d", st.Requests, goroutines*requests)
	}
	if st.Samples != goroutines*requests*perRequest {
		t.Errorf("Samples = %d, want %d", st.Samples, goroutines*requests*perRequest)
	}
	if st.Failures != 0 {
		t.Errorf("Failures = %d", st.Failures)
	}
	if st.TotalLatency <= 0 || st.MaxLatency <= 0 || st.AvgLatency() > st.MaxLatency {
		t.Errorf("implausible latencies: %+v", st)
	}
}

// TestEngineDeterminism: engines with equal seeds serve identical
// per-request samples to a sequential client.
func TestEngineDeterminism(t *testing.T) {
	e1, _ := newTestEngine(t, 99)
	e2, _ := newTestEngine(t, 99)
	for req := 0; req < 8; req++ {
		a, err := e1.Sample(300)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e2.Sample(300)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("request %d diverged at sample %d", req, i)
			}
		}
	}
	// Different seeds must serve different streams.
	e3, _ := newTestEngine(t, 100)
	a, err := e1.Sample(300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e3.Sample(300)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatalf("distinct seeds repeated %d/%d samples", same, len(a))
	}
}

func TestEngineSampleFunc(t *testing.T) {
	e, l := newTestEngine(t, 4)
	const want = DefaultBatch*2 + 137
	got := 0
	batches := 0
	err := e.SampleFunc(want, func(batch []geom.Pair) error {
		if len(batch) == 0 || len(batch) > DefaultBatch {
			t.Fatalf("bad batch size %d", len(batch))
		}
		for _, p := range batch {
			if !geom.InWindow(p.R, p.S, l) {
				t.Fatalf("invalid pair %v", p)
			}
		}
		got += len(batch)
		batches++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streamed %d samples, want %d", got, want)
	}
	if batches != 3 {
		t.Fatalf("got %d batches, want 3", batches)
	}
	// fn errors abort the request and count as a failure.
	boom := errors.New("boom")
	if err := e.SampleFunc(want, func([]geom.Pair) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if st := e.Stats(); st.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", st.Failures)
	}
}

func TestEngineEdgeCases(t *testing.T) {
	e, _ := newTestEngine(t, 5)
	if _, err := e.Sample(-1); err == nil {
		t.Error("negative t should fail")
	}
	if err := e.SampleFunc(-1, func([]geom.Pair) error { return nil }); err == nil {
		t.Error("negative t should fail")
	}
	if err := e.SampleFunc(0, func([]geom.Pair) error { t.Error("fn called for t=0"); return nil }); err != nil {
		t.Error(err)
	}
	out, err := e.Sample(0)
	if err != nil || len(out) != 0 {
		t.Errorf("t=0: %d pairs, %v", len(out), err)
	}
	if e.Name() != "BBST" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.SizeBytes() <= 0 {
		t.Errorf("SizeBytes = %d", e.SizeBytes())
	}
}

// TestEngineSampleCap: requests over the configured cap fail with
// ErrSampleCap before any result slice is allocated, and count as
// client failures.
func TestEngineSampleCap(t *testing.T) {
	e, _ := newTestEngine(t, 6)
	e.SetMaxT(1000)
	if e.MaxT() != 1000 {
		t.Fatalf("MaxT = %d", e.MaxT())
	}
	if _, err := e.Sample(1001); !errors.Is(err, ErrSampleCap) {
		t.Fatalf("over-cap Sample: err = %v", err)
	}
	if err := e.SampleFunc(1001, func([]geom.Pair) error { t.Error("fn called"); return nil }); !errors.Is(err, ErrSampleCap) {
		t.Fatalf("over-cap SampleFunc: err = %v", err)
	}
	// At the cap is fine.
	if pairs, err := e.Sample(1000); err != nil || len(pairs) != 1000 {
		t.Fatalf("at-cap Sample: %d pairs, %v", len(pairs), err)
	}
	// Removing the cap restores unlimited requests.
	e.SetMaxT(0)
	if pairs, err := e.Sample(1001); err != nil || len(pairs) != 1001 {
		t.Fatalf("uncapped Sample: %d pairs, %v", len(pairs), err)
	}
	st := e.Stats()
	if st.ClientFailures != 2 || st.SamplerFailures != 0 || st.Failures != 2 {
		t.Fatalf("failure split = %+v", st)
	}
}

// TestEngineFailureClassification: caller-induced errors (bad t, fn
// error) land in ClientFailures; only algorithmic give-ups
// (core.ErrLowAcceptance) land in SamplerFailures.
func TestEngineFailureClassification(t *testing.T) {
	e, _ := newTestEngine(t, 7)
	if _, err := e.Sample(-1); err == nil {
		t.Fatal("negative t accepted")
	}
	boom := errors.New("boom")
	if err := e.SampleFunc(10, func([]geom.Pair) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	st := e.Stats()
	if st.ClientFailures != 2 || st.SamplerFailures != 0 {
		t.Fatalf("client errors misclassified: %+v", st)
	}

	// A rejection budget of 1 makes the first rejected iteration fatal;
	// the BBST's corner-bucket upper bounds overcount, so drawing many
	// samples is certain to reject at least once. That give-up must be
	// classified as a sampler failure.
	r := rng.New(9)
	R := testPoints(r, 400, 50, 0)
	S := testPoints(r, 400, 50, 10000)
	s, err := core.NewBBST(R, S, core.Config{HalfExtent: 5, Seed: 1, MaxRejects: 1})
	if err != nil {
		t.Fatal(err)
	}
	le, err := New(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := le.Sample(50000); !errors.Is(err, core.ErrLowAcceptance) {
		t.Fatalf("want ErrLowAcceptance, got %v", err)
	}
	if st := le.Stats(); st.SamplerFailures != 1 || st.ClientFailures != 0 {
		t.Fatalf("sampler error misclassified: %+v", st)
	}
}

// TestEngineDrawSeeded: a nonzero Request.Seed pins the request's
// stream — identical samples for equal seeds regardless of the
// traffic interleaved between them — without perturbing the engine's
// own per-checkout sequence.
func TestEngineDrawSeeded(t *testing.T) {
	e1, l := newTestEngine(t, 31)
	e2, _ := newTestEngine(t, 31)
	ctx := context.Background()

	a, err := e1.Draw(ctx, Request{T: 500, Seed: 9001})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Pairs {
		if !geom.InWindow(p.R, p.S, l) {
			t.Fatalf("invalid pair %v", p)
		}
	}
	// Interleave unseeded traffic on e1 only.
	for i := 0; i < 3; i++ {
		if _, err := e1.Draw(ctx, Request{T: 100}); err != nil {
			t.Fatal(err)
		}
	}
	b, err := e1.Draw(ctx, Request{T: 500, Seed: 9001})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("equal seeds diverged at sample %d", i)
		}
	}
	// e1 has served two seeded and three unseeded requests, e2 none;
	// only the unseeded ones consumed pool seeds, so e1's next draw is
	// its 4th unseeded checkout. Skip three on e2 and the sequences
	// must line up.
	for i := 0; i < 3; i++ {
		if _, err := e2.Draw(ctx, Request{T: 100}); err != nil {
			t.Fatal(err)
		}
	}
	u1, err := e1.Draw(ctx, Request{T: 200})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := e2.Draw(ctx, Request{T: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := range u1.Pairs {
		if u1.Pairs[i] != u2.Pairs[i] {
			t.Fatalf("seeded draws perturbed the unseeded sequence (sample %d)", i)
		}
	}
}

// TestEngineDrawCancellation: a context canceled between batches
// stops the draw promptly, returns ctx.Err(), keeps the partial
// result, and counts as a client failure.
func TestEngineDrawCancellation(t *testing.T) {
	e, _ := newTestEngine(t, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Draw(ctx, Request{T: 10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Draw: err = %v", err)
	}
	if err := e.DrawFunc(ctx, Request{T: 10}, func([]geom.Pair) error {
		t.Error("fn called under a canceled context")
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled DrawFunc: err = %v", err)
	}

	// Cancel from inside the first batch: the loop must stop there.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	const want = DefaultBatch * 50
	batches := 0
	err := e.DrawFunc(ctx2, Request{T: want}, func(batch []geom.Pair) error {
		batches++
		cancel2()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel: err = %v", err)
	}
	if batches != 1 {
		t.Fatalf("draw continued for %d batches after cancellation", batches)
	}

	// Draw under a canceled context returns the (empty) partial result
	// without sampling.
	ctx3, cancel3 := context.WithCancel(context.Background())
	cancel3()
	buf := make([]geom.Pair, DefaultBatch*3)
	res, err := e.Draw(ctx3, Request{Into: buf})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("canceled Draw drew %d pairs", len(res.Pairs))
	}

	st := e.Stats()
	if st.ClientFailures == 0 || st.SamplerFailures != 0 {
		t.Fatalf("cancellations misclassified: %+v", st)
	}
}

// TestEngineDrawBadRequest: malformed requests fail with
// ErrBadRequest before any sampling.
func TestEngineDrawBadRequest(t *testing.T) {
	e, _ := newTestEngine(t, 33)
	ctx := context.Background()
	if _, err := e.Draw(ctx, Request{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero request: err = %v", err)
	}
	if _, err := e.Draw(ctx, Request{T: -1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative T: err = %v", err)
	}
	if _, err := e.Draw(ctx, Request{T: 10, Into: make([]geom.Pair, 5)}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("short Into: err = %v", err)
	}
	e.SetMaxT(100)
	if _, err := e.Draw(ctx, Request{T: 101}); !errors.Is(err, ErrSampleCap) {
		t.Fatalf("over cap: err = %v", err)
	}
	// Into with T defaulted from its length draws exactly len(Into).
	e.SetMaxT(0)
	buf := make([]geom.Pair, 64)
	res, err := e.Draw(ctx, Request{Into: buf})
	if err != nil || len(res.Pairs) != 64 {
		t.Fatalf("Into draw: %d pairs, %v", len(res.Pairs), err)
	}
	if &res.Pairs[0] != &buf[0] {
		t.Fatal("Result.Pairs not backed by Into")
	}
	if res.Elapsed <= 0 || res.Elapsed > time.Minute {
		t.Fatalf("implausible Elapsed %v", res.Elapsed)
	}
}

// TestEngineEmptyJoin: a provably empty join fails at construction,
// not on the first request.
func TestEngineEmptyJoin(t *testing.T) {
	R := []geom.Point{{ID: 0, X: 0, Y: 0}}
	S := []geom.Point{{ID: 0, X: 1000, Y: 1000}}
	s, err := core.NewBBST(R, S, core.Config{HalfExtent: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(s, 1); !errors.Is(err, core.ErrEmptyJoin) {
		t.Fatalf("err = %v", err)
	}
}
