// Package testutil holds shared test helpers. It is imported only
// from _test files; keeping the helpers in a real package lets every
// layer of the serving stack (engine, server, root) share them.
package testutil

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup
// that fails the test if, after a grace period, more goroutines are
// still alive than at the snapshot (plus a small slack for runtime
// helpers). Call it first in a test, before starting servers or
// clients, so their teardown runs before the check. It is a
// stdlib-only leak detector: counts instead of full stack
// attribution, with the goroutine dump attached on failure for
// diagnosis.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Leaked-looking goroutines are usually just not finished
		// parking yet (httptest teardown, connection close); poll
		// before declaring a leak.
		const (
			slack    = 2
			attempts = 100
			pause    = 10 * time.Millisecond
		)
		var now int
		for i := 0; i < attempts; i++ {
			now = runtime.NumGoroutine()
			if now <= before+slack {
				return
			}
			time.Sleep(pause)
		}
		var buf bytes.Buffer
		pprof.Lookup("goroutine").WriteTo(&buf, 1)
		t.Errorf("goroutine leak: %d before, %d after grace period\n%s", before, now, buf.String())
	})
}
