package testutil

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// fakeTB records what VerifyNoLeaks does to it: the cleanup it
// registers and any failure it reports. The embedded testing.TB
// satisfies the interface's unexported method; only the methods
// VerifyNoLeaks touches are overridden.
type fakeTB struct {
	testing.TB
	cleanups []func()
	failed   bool
	msg      string
}

func (f *fakeTB) Helper()           {}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}

func (f *fakeTB) runCleanups() {
	// Reverse order, as testing does.
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

// TestVerifyNoLeaksDetectsLeak: goroutines still blocked when the
// cleanup runs must fail the test, with the goroutine dump attached.
func TestVerifyNoLeaksDetectsLeak(t *testing.T) {
	fake := &fakeTB{TB: t}
	VerifyNoLeaks(fake)

	stop := make(chan struct{})
	var started sync.WaitGroup
	// More leaked goroutines than the detector's slack allows.
	for i := 0; i < 5; i++ {
		started.Add(1)
		go func() {
			started.Done()
			<-stop
		}()
	}
	started.Wait()

	fake.runCleanups()
	close(stop)

	if !fake.failed {
		t.Fatal("VerifyNoLeaks did not report blocked goroutines as a leak")
	}
	if !strings.Contains(fake.msg, "goroutine leak") {
		t.Errorf("failure message %q does not name the leak", fake.msg)
	}
	if !strings.Contains(fake.msg, "goroutine") || len(fake.msg) < 100 {
		t.Errorf("failure message carries no goroutine dump:\n%s", fake.msg)
	}
}

// TestVerifyNoLeaksCleanRun: goroutines that finish before (or
// shortly after) the cleanup runs are not leaks — the grace-period
// poll must absorb them.
func TestVerifyNoLeaksCleanRun(t *testing.T) {
	fake := &fakeTB{TB: t}
	VerifyNoLeaks(fake)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()

	fake.runCleanups()
	if fake.failed {
		t.Fatalf("VerifyNoLeaks reported a leak on a clean run:\n%s", fake.msg)
	}
}
