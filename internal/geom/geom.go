// Package geom provides the planar geometric primitives shared by every
// index structure and join algorithm in this repository: points,
// axis-aligned rectangles, and the square query windows used by spatial
// range joins.
//
// Conventions follow the paper "Random Sampling over Spatial Range
// Joins" (ICDE 2025): a window w(r) with half-extent l is the closed
// rectangle [r.x-l, r.x+l] x [r.y-l, r.y+l], and a point s matches r
// iff s lies inside w(r). Because the window size is shared by all
// points, the predicate is symmetric: w(r) contains s iff w(s)
// contains r.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-dimensional point with a caller-assigned identifier.
// The ID is carried through sampling so that downstream consumers can
// relate a sampled pair back to the source records.
type Point struct {
	X, Y float64
	ID   int32
}

// String renders the point for diagnostics.
func (p Point) String() string {
	return fmt.Sprintf("(%g, %g)#%d", p.X, p.Y, p.ID)
}

// Rect is a closed axis-aligned rectangle. A Rect with XMin > XMax or
// YMin > YMax is empty.
type Rect struct {
	XMin, YMin, XMax, YMax float64
}

// Window returns the query window of half-extent l centered at p:
// [p.X-l, p.X+l] x [p.Y-l, p.Y+l].
func Window(p Point, l float64) Rect {
	return Rect{XMin: p.X - l, YMin: p.Y - l, XMax: p.X + l, YMax: p.Y + l}
}

// NewRect builds a rectangle from two corner points in any order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		XMin: math.Min(x1, x2),
		YMin: math.Min(y1, y2),
		XMax: math.Max(x1, x2),
		YMax: math.Max(y1, y2),
	}
}

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.XMin > r.XMax || r.YMin > r.YMax }

// Contains reports whether point p lies inside the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return r.XMin <= p.X && p.X <= r.XMax && r.YMin <= p.Y && p.Y <= r.YMax
}

// ContainsXY reports whether the coordinate (x, y) lies inside the
// closed rectangle.
func (r Rect) ContainsXY(x, y float64) bool {
	return r.XMin <= x && x <= r.XMax && r.YMin <= y && y <= r.YMax
}

// Intersects reports whether the two closed rectangles share at least
// one point.
func (r Rect) Intersects(o Rect) bool {
	return r.XMin <= o.XMax && o.XMin <= r.XMax && r.YMin <= o.YMax && o.YMin <= r.YMax
}

// Covers reports whether r fully contains o.
func (r Rect) Covers(o Rect) bool {
	return r.XMin <= o.XMin && o.XMax <= r.XMax && r.YMin <= o.YMin && o.YMax <= r.YMax
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		XMin: math.Min(r.XMin, o.XMin),
		YMin: math.Min(r.YMin, o.YMin),
		XMax: math.Max(r.XMax, o.XMax),
		YMax: math.Max(r.YMax, o.YMax),
	}
}

// Intersect returns the overlap of r and o; the result is empty when
// the rectangles are disjoint.
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		XMin: math.Max(r.XMin, o.XMin),
		YMin: math.Max(r.YMin, o.YMin),
		XMax: math.Min(r.XMax, o.XMax),
		YMax: math.Min(r.YMax, o.YMax),
	}
}

// Width returns the x-extent of the rectangle (0 when empty).
func (r Rect) Width() float64 {
	if r.Empty() {
		return 0
	}
	return r.XMax - r.XMin
}

// Height returns the y-extent of the rectangle (0 when empty).
func (r Rect) Height() float64 {
	if r.Empty() {
		return 0
	}
	return r.YMax - r.YMin
}

// Area returns the area of the rectangle (0 when empty).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter; STR/R-tree heuristics use it.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// PointRect returns the degenerate rectangle covering only p.
func PointRect(p Point) Rect {
	return Rect{XMin: p.X, YMin: p.Y, XMax: p.X, YMax: p.Y}
}

// BoundingRect returns the smallest rectangle covering all points.
// It returns an empty rectangle for an empty slice.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{XMin: math.Inf(1), YMin: math.Inf(1), XMax: math.Inf(-1), YMax: math.Inf(-1)}
	}
	r := PointRect(pts[0])
	for _, p := range pts[1:] {
		if p.X < r.XMin {
			r.XMin = p.X
		}
		if p.X > r.XMax {
			r.XMax = p.X
		}
		if p.Y < r.YMin {
			r.YMin = p.Y
		}
		if p.Y > r.YMax {
			r.YMax = p.Y
		}
	}
	return r
}

// InWindow reports whether s lies in the window of half-extent l
// centered at r. This is the join predicate "w(r) ∩ s" from the paper,
// written without materializing the Rect.
func InWindow(r, s Point, l float64) bool {
	return math.Abs(r.X-s.X) <= l && math.Abs(r.Y-s.Y) <= l
}

// Pair is one element of the join result J: a point of R together with
// a point of S that lies in its window.
type Pair struct {
	R, S Point
}

// String renders the pair for diagnostics.
func (p Pair) String() string { return fmt.Sprintf("[%v ⋈ %v]", p.R, p.S) }
