package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWindow(t *testing.T) {
	w := Window(Point{X: 10, Y: 20}, 5)
	want := Rect{XMin: 5, YMin: 15, XMax: 15, YMax: 25}
	if w != want {
		t.Fatalf("Window = %+v, want %+v", w, want)
	}
}

func TestNewRectOrdersCorners(t *testing.T) {
	r := NewRect(3, 9, 1, 4)
	want := Rect{XMin: 1, YMin: 4, XMax: 3, YMax: 9}
	if r != want {
		t.Fatalf("NewRect = %+v, want %+v", r, want)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"interior", Point{X: 5, Y: 5}, true},
		{"corner", Point{X: 0, Y: 0}, true},
		{"edge", Point{X: 10, Y: 5}, true},
		{"outside x", Point{X: 10.001, Y: 5}, false},
		{"outside y", Point{X: 5, Y: -0.001}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.Contains(tc.p); got != tc.want {
				t.Fatalf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
			}
			if got := r.ContainsXY(tc.p.X, tc.p.Y); got != tc.want {
				t.Fatalf("ContainsXY(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlap", Rect{XMin: 5, YMin: 5, XMax: 15, YMax: 15}, true},
		{"touching edge", Rect{XMin: 10, YMin: 0, XMax: 20, YMax: 10}, true},
		{"touching corner", Rect{XMin: 10, YMin: 10, XMax: 20, YMax: 20}, true},
		{"disjoint x", Rect{XMin: 11, YMin: 0, XMax: 20, YMax: 10}, false},
		{"disjoint y", Rect{XMin: 0, YMin: -5, XMax: 10, YMax: -1}, false},
		{"contained", Rect{XMin: 2, YMin: 2, XMax: 3, YMax: 3}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := a.Intersects(tc.b); got != tc.want {
				t.Fatalf("Intersects = %v, want %v", got, tc.want)
			}
			if got := tc.b.Intersects(a); got != tc.want {
				t.Fatalf("Intersects (flipped) = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestRectCovers(t *testing.T) {
	a := Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}
	if !a.Covers(Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}) {
		t.Error("rect should cover itself")
	}
	if !a.Covers(Rect{XMin: 1, YMin: 1, XMax: 9, YMax: 9}) {
		t.Error("rect should cover interior rect")
	}
	if a.Covers(Rect{XMin: 1, YMin: 1, XMax: 11, YMax: 9}) {
		t.Error("rect should not cover overflowing rect")
	}
}

func TestUnionIntersect(t *testing.T) {
	a := Rect{XMin: 0, YMin: 0, XMax: 4, YMax: 4}
	b := Rect{XMin: 2, YMin: 3, XMax: 9, YMax: 5}
	u := a.Union(b)
	if want := (Rect{XMin: 0, YMin: 0, XMax: 9, YMax: 5}); u != want {
		t.Fatalf("Union = %+v, want %+v", u, want)
	}
	i := a.Intersect(b)
	if want := (Rect{XMin: 2, YMin: 3, XMax: 4, YMax: 4}); i != want {
		t.Fatalf("Intersect = %+v, want %+v", i, want)
	}
	disjoint := a.Intersect(Rect{XMin: 10, YMin: 10, XMax: 12, YMax: 12})
	if !disjoint.Empty() {
		t.Fatalf("intersection of disjoint rects should be empty, got %+v", disjoint)
	}
}

func TestAreaWidthHeightMargin(t *testing.T) {
	r := Rect{XMin: 1, YMin: 2, XMax: 4, YMax: 8}
	if got := r.Width(); got != 3 {
		t.Errorf("Width = %g, want 3", got)
	}
	if got := r.Height(); got != 6 {
		t.Errorf("Height = %g, want 6", got)
	}
	if got := r.Area(); got != 18 {
		t.Errorf("Area = %g, want 18", got)
	}
	if got := r.Margin(); got != 9 {
		t.Errorf("Margin = %g, want 9", got)
	}
	empty := Rect{XMin: 5, YMin: 5, XMax: 1, YMax: 1}
	if got := empty.Area(); got != 0 {
		t.Errorf("empty Area = %g, want 0", got)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{{X: 3, Y: 1}, {X: -2, Y: 7}, {X: 5, Y: 4}}
	r := BoundingRect(pts)
	want := Rect{XMin: -2, YMin: 1, XMax: 5, YMax: 7}
	if r != want {
		t.Fatalf("BoundingRect = %+v, want %+v", r, want)
	}
	if !BoundingRect(nil).Empty() {
		t.Error("BoundingRect(nil) should be empty")
	}
}

func TestInWindowMatchesRectContains(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(rx, ry, sx, sy float64, lraw float64) bool {
		if math.IsNaN(rx) || math.IsNaN(ry) || math.IsNaN(sx) || math.IsNaN(sy) || math.IsNaN(lraw) {
			return true
		}
		l := math.Abs(math.Mod(lraw, 100))
		r := Point{X: math.Mod(rx, 1000), Y: math.Mod(ry, 1000)}
		s := Point{X: math.Mod(sx, 1000), Y: math.Mod(sy, 1000)}
		return InWindow(r, s, l) == Window(r, l).Contains(s)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInWindowSymmetry(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(rx, ry, sx, sy float64) bool {
		r := Point{X: math.Mod(rx, 1000), Y: math.Mod(ry, 1000)}
		s := Point{X: math.Mod(sx, 1000), Y: math.Mod(sy, 1000)}
		const l = 50
		return InWindow(r, s, l) == InWindow(s, r, l)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPointRect(t *testing.T) {
	p := Point{X: 2, Y: 3}
	r := PointRect(p)
	if !r.Contains(p) {
		t.Error("PointRect must contain its point")
	}
	if r.Area() != 0 {
		t.Error("PointRect must be degenerate")
	}
}

func TestStringers(t *testing.T) {
	p := Point{X: 1, Y: 2, ID: 7}
	if p.String() == "" {
		t.Error("Point.String should not be empty")
	}
	pr := Pair{R: p, S: p}
	if pr.String() == "" {
		t.Error("Pair.String should not be empty")
	}
}
