package core

import "repro/internal/geom"

// pvec is a persistent (path-copied) vector of points: the R-slot
// array of the mutable index. Get, Set, and Append are O(log n) and
// return/lean on immutable nodes, so every published index version
// keeps reading its own slots while the tip advances — the same
// discipline as alias.Weights, which indexes the very same slots.
type pvec struct {
	root *pnode
	n    int
	span int // power-of-two leaf capacity of root
}

type pnode struct {
	left, right *pnode
	pt          geom.Point // leaf payload (span 1)
}

// Len returns the number of slots.
func (v *pvec) Len() int { return v.n }

// Get returns the point in slot i.
func (v *pvec) Get(i int) geom.Point {
	if i < 0 || i >= v.n {
		panic("core: pvec index out of range")
	}
	u, span := v.root, v.span
	for span > 1 {
		span >>= 1
		if i < span {
			u = u.left
		} else {
			u = u.right
			i -= span
		}
	}
	return u.pt
}

// Set returns a new vector with slot i replaced.
func (v *pvec) Set(i int, pt geom.Point) *pvec {
	if i < 0 || i >= v.n {
		panic("core: pvec index out of range")
	}
	nv := *v
	nv.root = setPNode(v.root, v.span, i, pt)
	return &nv
}

func setPNode(u *pnode, span, i int, pt geom.Point) *pnode {
	if span == 1 {
		return &pnode{pt: pt}
	}
	var nu pnode
	if u != nil {
		nu = *u
	}
	span >>= 1
	if i < span {
		nu.left = setPNode(nu.left, span, i, pt)
	} else {
		nu.right = setPNode(nu.right, span, i-span, pt)
	}
	return &nu
}

// Append returns a new vector with pt added at slot Len().
func (v *pvec) Append(pt geom.Point) *pvec {
	nv := *v
	if nv.span == 0 {
		nv.span = 1
	}
	for nv.n >= nv.span {
		nv.root = &pnode{left: nv.root}
		nv.span <<= 1
	}
	nv.root = setPNode(nv.root, nv.span, nv.n, pt)
	nv.n++
	return &nv
}

// newPvec bulk-builds a vector over pts.
func newPvec(pts []geom.Point) *pvec {
	v := &pvec{}
	if len(pts) == 0 {
		return v
	}
	span := 1
	for span < len(pts) {
		span <<= 1
	}
	v.span = span
	v.n = len(pts)
	v.root = buildPNode(pts, span)
	return v
}

func buildPNode(pts []geom.Point, span int) *pnode {
	if len(pts) == 0 {
		return nil
	}
	if span == 1 {
		return &pnode{pt: pts[0]}
	}
	half := span >> 1
	u := &pnode{}
	if len(pts) <= half {
		u.left = buildPNode(pts, half)
	} else {
		u.left = buildPNode(pts[:half], half)
		u.right = buildPNode(pts[half:], half)
	}
	return u
}
