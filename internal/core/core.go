// Package core implements the join-sampling algorithms of "Random
// Sampling over Spatial Range Joins" (ICDE 2025):
//
//   - KDS           — baseline 1 (Section III-A): exact range counting on a
//     kd-tree, Walker alias over |S(w(r))|, KDS point sampling.
//   - KDSRejection  — baseline 2 (Section III-B): grid upper bounds µ(r),
//     alias over µ, kd-tree sampling with rejection.
//   - BBST          — the proposed algorithm (Section IV, Algorithm 1):
//     grid + two BBSTs per cell, Õ(1) approximate counting and Õ(1)
//     expected-time sampling.
//   - GridKD        — the Fig. 9 ablation: the BBST pipeline with a
//     kd-tree per cell instead of the two BBSTs.
//   - RTS           — an extra ablation: baseline 1 with an aggregate
//     R-tree in place of the kd-tree.
//   - JoinSample    — the "run the join, then sample" strawman.
//
// Every sampler draws uniform, independent samples of the join
// J = {(r, s) | r ∈ R, s ∈ S, w(r) ∩ s} with replacement (optionally
// without), and exposes the paper's phase decomposition — offline
// preprocessing, grid mapping (GM), upper bounding (UB), sampling —
// with per-phase wall-clock timings and iteration counters so the
// experiment harness can regenerate Tables II–IV and Figures 4–9.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Errors shared by all samplers.
var (
	// ErrEmptyJoin is returned when the join result is provably empty
	// (all upper bounds are zero), so no sample exists.
	ErrEmptyJoin = errors.New("core: join result is empty")
	// ErrLowAcceptance is returned when rejection sampling fails to
	// accept for Config.MaxRejects consecutive iterations; with the
	// default budget this practically only happens when J is empty
	// but spurious corner-bucket upper bounds keep Σµ positive.
	ErrLowAcceptance = errors.New("core: rejection sampling exceeded the rejection budget")
)

// Config carries the query parameters shared by every algorithm.
type Config struct {
	// HalfExtent is l: the window of r is [r.X-l, r.X+l] x [r.Y-l, r.Y+l].
	HalfExtent float64
	// Seed drives all randomness; equal seeds reproduce equal samples.
	Seed uint64
	// WithoutReplacement rejects pairs that were already returned by
	// this sampler (Definition 2 remark). The default samples with
	// replacement.
	WithoutReplacement bool
	// MaxRejects bounds consecutive rejected iterations per sample;
	// 0 means the default of 1<<24.
	MaxRejects int
	// FractionalCascading enables the bridge-based O(log m) corner
	// queries the paper mentions as an optional optimization of the
	// BBST (Lemma 4). Only the BBST sampler reads it.
	FractionalCascading bool
	// BucketCap overrides the BBST bucket capacity (Definition 3
	// sets b = ceil(log2 m); the ablation harness sweeps other
	// values). 0 keeps the paper's choice. Only the BBST sampler
	// reads it.
	BucketCap int
}

func (c Config) maxRejects() int {
	if c.MaxRejects > 0 {
		return c.MaxRejects
	}
	return 1 << 24
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.HalfExtent <= 0 || math.IsNaN(c.HalfExtent) || math.IsInf(c.HalfExtent, 0) {
		return fmt.Errorf("core: half extent must be positive and finite, got %g", c.HalfExtent)
	}
	if c.MaxRejects < 0 {
		return fmt.Errorf("core: MaxRejects must be non-negative, got %d", c.MaxRejects)
	}
	if c.BucketCap < 0 {
		return fmt.Errorf("core: BucketCap must be non-negative, got %d", c.BucketCap)
	}
	return nil
}

// Stats captures the phase decomposition the paper reports: Table II
// times Preprocess; Table III decomposes GridMap (GM) and UpperBound
// (UB); Table IV reports SampleTime and Iterations.
type Stats struct {
	PreprocessTime time.Duration // offline structure building
	GridMapTime    time.Duration // GM: online data-structure building
	UpperBoundTime time.Duration // UB: range counting + alias building
	SampleTime     time.Duration // cumulative sampling-phase time

	Samples    uint64  // accepted join samples returned so far
	Iterations uint64  // sampling iterations including rejections
	MuSum      float64 // Σ_r µ(r): total weight of the alias over R
}

// Total returns the end-to-end time across all phases.
func (s Stats) Total() time.Duration {
	return s.PreprocessTime + s.GridMapTime + s.UpperBoundTime + s.SampleTime
}

// Sampler is the common interface of all join-sampling algorithms.
// Phases may be invoked explicitly (the experiment harness does, to
// time them separately) or implicitly: Next and Sample run any phase
// that has not happened yet.
type Sampler interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Preprocess runs the offline phase (index building / sorting).
	Preprocess() error
	// Build runs the online data-structure building phase (GM).
	Build() error
	// Count runs the (approximate) range counting phase (UB),
	// including alias construction. Returns ErrEmptyJoin when every
	// upper bound is zero.
	Count() error
	// Next draws one uniform independent join sample.
	Next() (geom.Pair, error)
	// Sample draws t samples. With WithoutReplacement it returns
	// fewer when |J| < t would make completion impossible within the
	// rejection budget.
	Sample(t int) ([]geom.Pair, error)
	// Stats returns the phase timings and counters accumulated so far.
	Stats() Stats
	// SizeBytes estimates the retained heap footprint of the
	// sampler's structures (Fig. 4).
	SizeBytes() int
}

// Trial is the per-iteration hook of a sampler: TryNext runs exactly
// one sampling iteration of the algorithm's rejection scheme. A
// candidate pair is drawn and either accepted (ok true) or rejected
// (ok false) — every pair of J is returned by one trial with
// probability exactly 1/Stats().MuSum, so a caller mixing several
// samplers (internal/dynamic's delta overlay) can weight each by its
// MuSum mass and keep the mixture uniform. The error is only the
// lifecycle kind (a failed phase, ErrEmptyJoin); a rejected trial is
// not an error, and ErrLowAcceptance never surfaces here — the
// rejection budget belongs to whoever drives the trial loop.
type Trial interface {
	Sampler
	TryNext() (geom.Pair, bool, error)
}

// Reseeder is implemented by samplers whose random stream can be
// reinitialized in place: after Reseed(seed) the sampler draws the
// same sequence a freshly constructed sampler with that seed would.
// Every sampler in this package implements it; ClonePool reseeds each
// checked-out clone through it, and composite samplers built outside
// the package (internal/dynamic) use it to hand their components
// derived streams.
type Reseeder interface {
	Reseed(seed uint64)
}

// phase tracks which lifecycle steps already ran.
type phase int

const (
	phaseNew phase = iota
	phasePreprocessed
	phaseBuilt
	phaseCounted
)

// base carries the state shared by the concrete samplers.
type base struct {
	name  string
	cfg   Config
	R, S  []geom.Point
	rng   *rng.RNG
	stats Stats
	state phase
	err   error // sticky fatal error (e.g. ErrEmptyJoin)

	seen map[uint64]struct{} // for WithoutReplacement
}

func newBase(name string, R, S []geom.Point, cfg Config) (*base, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &base{
		name: name,
		cfg:  cfg,
		R:    R,
		S:    S,
		rng:  rng.New(cfg.Seed),
	}
	if cfg.WithoutReplacement {
		b.seen = make(map[uint64]struct{})
	}
	return b, nil
}

func (b *base) Name() string { return b.name }

func (b *base) Stats() Stats { return b.stats }

// pairKey packs the two IDs for the without-replacement filter.
func pairKey(p geom.Pair) uint64 {
	return uint64(uint32(p.R.ID))<<32 | uint64(uint32(p.S.ID))
}

// window returns w(r).
func (b *base) window(r geom.Point) geom.Rect {
	return geom.Window(r, b.cfg.HalfExtent)
}

// phased is the lifecycle subset of Sampler that ensure needs; the
// shared pipeline types implement it without being full Samplers.
type phased interface {
	Preprocess() error
	Build() error
	Count() error
}

// ensure advances the sampler through its phases up to want.
func ensure(s phased, b *base, want phase) error {
	if b.err != nil {
		return b.err
	}
	if b.state < phasePreprocessed && want >= phasePreprocessed {
		if err := s.Preprocess(); err != nil {
			return err
		}
	}
	if b.state < phaseBuilt && want >= phaseBuilt {
		if err := s.Build(); err != nil {
			return err
		}
	}
	if b.state < phaseCounted && want >= phaseCounted {
		if err := s.Count(); err != nil {
			return err
		}
	}
	return b.err
}

// SampleInto fills dst with uniform independent join samples, reusing
// the caller's buffer — the zero-allocation bulk API. It returns the
// number of samples written (len(dst) unless an error stops it early).
func SampleInto(s Sampler, dst []geom.Pair) (int, error) {
	for i := range dst {
		p, err := s.Next()
		if err != nil {
			return i, err
		}
		dst[i] = p
	}
	return len(dst), nil
}

// sampleN implements Sample(t) on top of Next for every sampler.
func sampleN(s Sampler, b *base, t int) ([]geom.Pair, error) {
	if t < 0 {
		return nil, fmt.Errorf("core: negative sample count %d", t)
	}
	out := make([]geom.Pair, 0, t)
	for len(out) < t {
		p, err := s.Next()
		if err != nil {
			// Without replacement, exhausting J surfaces as a
			// rejection-budget error; return what we have.
			if b.cfg.WithoutReplacement && errors.Is(err, ErrLowAcceptance) && len(out) > 0 {
				return out, nil
			}
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}

// accept applies the without-replacement filter; it returns false when
// the pair was already emitted and must be rejected.
func (b *base) accept(p geom.Pair) bool {
	if b.seen == nil {
		return true
	}
	k := pairKey(p)
	if _, dup := b.seen[k]; dup {
		return false
	}
	b.seen[k] = struct{}{}
	return true
}

// timed runs fn and adds its wall time to *d.
func timed(d *time.Duration, fn func()) {
	start := time.Now()
	fn()
	*d += time.Since(start)
}
