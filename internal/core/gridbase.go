package core

import (
	"sort"

	"repro/internal/alias"
	"repro/internal/bbst"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/rng"
)

// cornerIndex is the per-cell structure that answers the 2-sided
// (case 3) corner queries: the two BBSTs of the paper, or the per-cell
// kd-tree of the Fig. 9 ablation.
type cornerIndex interface {
	// mu returns the (upper-bound) count of cell points matching the
	// corner constraint of w.
	mu(c bbst.Corner, w geom.Rect) int
	// sample draws one candidate slot for the corner; ok is false on
	// an empty slot. The caller still verifies window membership.
	sample(c bbst.Corner, w geom.Rect, r *rng.RNG) (geom.Point, bool)
	// sizeBytes estimates the structure footprint.
	sizeBytes() int
	// clone returns a handle sharing the immutable structure with
	// fresh scratch buffers, for concurrent use.
	clone() cornerIndex
}

// cornerFor maps a case-3 grid direction to its BBST corner query.
func cornerFor(d grid.Direction) bbst.Corner {
	switch d {
	case grid.SouthWest:
		return bbst.SouthWest
	case grid.NorthWest:
		return bbst.NorthWest
	case grid.SouthEast:
		return bbst.SouthEast
	case grid.NorthEast:
		return bbst.NorthEast
	}
	panic("core: direction is not a corner")
}

// gridSampler is the shared three-phase pipeline of Algorithm 1,
// parameterized by the case-3 structure. The BBST and GridKD samplers
// are thin wrappers around it.
type gridSampler struct {
	*base
	newCorner func(cellPoints []geom.Point, m int) cornerIndex

	sortedS []geom.Point // copy of S sorted by x (offline phase)
	g       *grid.Grid
	corners map[grid.Key]cornerIndex

	tab       *alias.Table  // alias over µ(r)
	cellAlias []alias.Small // A_r: per-point alias over the 9 cells
	mu        []float64     // µ(r) per point, retained for Unfreeze
}

// Preprocess sorts a copy of S by x — the only offline work the
// BBST pipeline needs (Table II notes this is why its pre-processing
// is cheaper than building a kd-tree).
func (g *gridSampler) Preprocess() error {
	if g.state >= phasePreprocessed {
		return g.err
	}
	timed(&g.stats.PreprocessTime, func() {
		g.sortedS = append([]geom.Point(nil), g.S...)
		sort.Slice(g.sortedS, func(i, j int) bool { return g.sortedS[i].X < g.sortedS[j].X })
	})
	g.state = phasePreprocessed
	return nil
}

// Build is the online data-structure building phase (GM): grid
// mapping of S plus per-cell corner structures (BBST-BUILDING).
func (g *gridSampler) Build() error {
	if err := ensure(g, g.base, phasePreprocessed); err != nil {
		return err
	}
	if g.state >= phaseBuilt {
		return g.err
	}
	var buildErr error
	timed(&g.stats.GridMapTime, func() {
		g.g, buildErr = grid.Build(g.sortedS, g.cfg.HalfExtent)
		if buildErr != nil {
			return
		}
		g.corners = make(map[grid.Key]cornerIndex, g.g.NumCells())
		m := len(g.S)
		g.g.Cells(func(c *grid.Cell) {
			g.corners[c.Key] = g.newCorner(c.XSorted, m)
		})
	})
	if buildErr != nil {
		g.err = buildErr
		return buildErr
	}
	g.state = phaseBuilt
	return nil
}

// muDir computes µ(r, d): exact counts for cases 1 and 2, the corner
// structure's bound for case 3 (UPPER-BOUNDING in Algorithm 1).
func (g *gridSampler) muDir(c *grid.Cell, d grid.Direction, w geom.Rect) int {
	switch d {
	case grid.Center:
		return c.Len()
	case grid.West:
		n, _ := c.CountXAtLeast(w.XMin)
		return n
	case grid.East:
		return c.CountXAtMost(w.XMax)
	case grid.South:
		n, _ := c.CountYAtLeast(w.YMin)
		return n
	case grid.North:
		return c.CountYAtMost(w.YMax)
	default:
		return g.corners[c.Key].mu(cornerFor(d), w)
	}
}

// Count is the approximate range counting phase (UB): µ(r) per point,
// the per-point cell alias A_r, and the global alias A.
func (g *gridSampler) Count() error {
	if err := ensure(g, g.base, phaseBuilt); err != nil {
		return err
	}
	if g.state >= phaseCounted {
		return g.err
	}
	var buildErr error
	timed(&g.stats.UpperBoundTime, func() {
		n := len(g.R)
		mu := make([]float64, n)
		g.cellAlias = make([]alias.Small, n)
		total := 0.0
		var nb [grid.NumDirections]*grid.Cell
		var weights [grid.NumDirections]float64
		for i, r := range g.R {
			w := g.window(r)
			g.g.Neighborhood(r, &nb)
			sum := 0.0
			for d := grid.Direction(0); d < grid.NumDirections; d++ {
				weights[d] = 0
				if nb[d] == nil {
					continue
				}
				v := float64(g.muDir(nb[d], d, w))
				weights[d] = v
				sum += v
			}
			mu[i] = sum
			total += sum
			g.cellAlias[i].Reset(weights[:])
		}
		g.stats.MuSum = total
		g.mu = mu
		if total == 0 {
			buildErr = ErrEmptyJoin
			return
		}
		g.tab, buildErr = alias.New(mu)
	})
	if buildErr != nil {
		g.err = buildErr
		return buildErr
	}
	g.state = phaseCounted
	return nil
}

// sampleDir draws one candidate point from cell c in direction d.
// Cases 1 and 2 are exact, so the candidate always lies in w; case 3
// may return an empty slot or an out-of-window point, which the
// caller rejects.
func (g *gridSampler) sampleDir(c *grid.Cell, d grid.Direction, w geom.Rect) (geom.Point, bool) {
	switch d {
	case grid.Center:
		return c.XSorted[g.rng.Intn(c.Len())], true
	case grid.West:
		n, start := c.CountXAtLeast(w.XMin)
		if n == 0 {
			return geom.Point{}, false
		}
		return c.XSorted[start+g.rng.Intn(n)], true
	case grid.East:
		n := c.CountXAtMost(w.XMax)
		if n == 0 {
			return geom.Point{}, false
		}
		return c.XSorted[g.rng.Intn(n)], true
	case grid.South:
		n, start := c.CountYAtLeast(w.YMin)
		if n == 0 {
			return geom.Point{}, false
		}
		return c.YSorted[start+g.rng.Intn(n)], true
	case grid.North:
		n := c.CountYAtMost(w.YMax)
		if n == 0 {
			return geom.Point{}, false
		}
		return c.YSorted[g.rng.Intn(n)], true
	default:
		return g.corners[c.Key].sample(cornerFor(d), w, g.rng)
	}
}

// tryOnce is one iteration of the sampling phase (lines 10–15 of
// Algorithm 1): weighted r, weighted cell, uniform slot, accept iff
// the slot holds a point of w(r). Every pair of J is accepted with
// probability exactly 1/Σµ per trial.
func (g *gridSampler) tryOnce(nb *[grid.NumDirections]*grid.Cell) (geom.Pair, bool) {
	g.stats.Iterations++
	ri := g.tab.Sample(g.rng)
	ca := &g.cellAlias[ri]
	if ca.Len() == 0 {
		return geom.Pair{}, false // µ(r) == 0; alias weight 0 makes this unreachable
	}
	r := g.R[ri]
	w := g.window(r)
	d := grid.Direction(ca.Sample(g.rng))
	g.g.Neighborhood(r, nb)
	c := nb[d]
	if c == nil {
		return geom.Pair{}, false // zero-weight direction; defensive
	}
	s, ok := g.sampleDir(c, d, w)
	if !ok || !w.Contains(s) {
		return geom.Pair{}, false // empty slot or out-of-window candidate
	}
	p := geom.Pair{R: r, S: s}
	if !g.accept(p) {
		return geom.Pair{}, false
	}
	g.stats.Samples++
	return p, true
}

// next drives tryOnce under the rejection budget.
func (g *gridSampler) next(self phased) (geom.Pair, error) {
	if err := ensure(self, g.base, phaseCounted); err != nil {
		return geom.Pair{}, err
	}
	var out geom.Pair
	var err error
	timed(&g.stats.SampleTime, func() {
		var nb [grid.NumDirections]*grid.Cell
		for attempt := 0; attempt < g.cfg.maxRejects(); attempt++ {
			if p, ok := g.tryOnce(&nb); ok {
				out = p
				return
			}
		}
		err = ErrLowAcceptance
	})
	return out, err
}

// tryNext exposes one trial (the Trial contract) for mixture callers.
// Unlike next it does not charge SampleTime: a mixture driver calls
// it once per rejection attempt on its hot loop and owns the timing
// of the whole draw — two clock reads per trial would dominate the
// trial itself.
func (g *gridSampler) tryNext(self phased) (geom.Pair, bool, error) {
	if err := ensure(self, g.base, phaseCounted); err != nil {
		return geom.Pair{}, false, err
	}
	var nb [grid.NumDirections]*grid.Cell
	p, ok := g.tryOnce(&nb)
	return p, ok, nil
}

// cloneGrid derives an independent gridSampler over the same immutable
// structures (grid, corner indexes, aliases): fresh base (split RNG,
// fresh stats) and fresh corner scratch buffers.
func (g *gridSampler) cloneGrid(self phased) (gridSampler, error) {
	if err := ensure(self, g.base, phaseCounted); err != nil {
		return gridSampler{}, err
	}
	nb, err := g.base.cloneBase()
	if err != nil {
		return gridSampler{}, err
	}
	corners := make(map[grid.Key]cornerIndex, len(g.corners))
	for k, ci := range g.corners {
		corners[k] = ci.clone()
	}
	return gridSampler{
		base:      nb,
		newCorner: g.newCorner,
		sortedS:   g.sortedS,
		g:         g.g,
		corners:   corners,
		tab:       g.tab,
		cellAlias: g.cellAlias,
	}, nil
}

// sizeBytes sums the pipeline structures: grid, corner structures,
// global alias, and per-point cell aliases.
func (g *gridSampler) sizeBytes() int {
	total := 0
	if g.g != nil {
		total += g.g.SizeBytes()
	}
	for _, ci := range g.corners {
		total += ci.sizeBytes()
	}
	if g.tab != nil {
		total += g.tab.SizeBytes()
	}
	total += 96 * len(g.cellAlias)
	total += 24 * len(g.sortedS)
	return total
}
