package core

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/rng"
	"repro/internal/rtree"
)

// pointIndex abstracts the spatial index used by the exact-counting
// baselines: the kd-tree for KDS (the paper's baseline) and the
// aggregate R-tree for the RTS ablation.
type pointIndex interface {
	// Build indexes S; called once in the offline phase.
	Build(S []geom.Point)
	// Count returns |S(w)| exactly.
	Count(w geom.Rect) int
	// Sample draws a uniform point of S(w) and returns the exact
	// count; ok is false when S(w) is empty.
	Sample(w geom.Rect, r *rng.RNG) (pt geom.Point, count int, ok bool)
	// SizeBytes estimates the index footprint.
	SizeBytes() int
	// clone returns a handle sharing the immutable tree with fresh
	// scratch buffers, for concurrent use.
	clone() pointIndex
}

// kdIndex adapts kdtree.Tree to pointIndex.
type kdIndex struct {
	tree    *kdtree.Tree
	scratch kdtree.Scratch
}

func (k *kdIndex) Build(S []geom.Point) { k.tree = kdtree.New(S) }
func (k *kdIndex) Count(w geom.Rect) int {
	return k.tree.Count(w)
}
func (k *kdIndex) Sample(w geom.Rect, r *rng.RNG) (geom.Point, int, bool) {
	return k.tree.Sample(w, r, &k.scratch)
}
func (k *kdIndex) SizeBytes() int {
	if k.tree == nil {
		return 0
	}
	return k.tree.SizeBytes()
}

// rIndex adapts rtree.Tree to pointIndex.
type rIndex struct {
	tree    *rtree.Tree
	scratch rtree.Scratch
}

func (k *rIndex) Build(S []geom.Point) { k.tree = rtree.New(S) }
func (k *rIndex) Count(w geom.Rect) int {
	return k.tree.Count(w)
}
func (k *rIndex) Sample(w geom.Rect, r *rng.RNG) (geom.Point, int, bool) {
	return k.tree.Sample(w, r, &k.scratch)
}
func (k *rIndex) SizeBytes() int {
	if k.tree == nil {
		return 0
	}
	return k.tree.SizeBytes()
}

// KDS is the first baseline (Section III-A): it range-counts
// |S(w(r))| exactly for every r ∈ R (O(n sqrt m)), builds a Walker
// alias over the counts, and then draws each join sample by one alias
// draw plus one O(sqrt m) independent range sample — every iteration
// accepts.
type KDS struct {
	*base
	index pointIndex
	tab   *alias.Table
}

// NewKDS builds the baseline-1 sampler over R and S.
func NewKDS(R, S []geom.Point, cfg Config) (*KDS, error) {
	b, err := newBase("KDS", R, S, cfg)
	if err != nil {
		return nil, err
	}
	return &KDS{base: b, index: &kdIndex{}}, nil
}

// NewRTS builds the aggregate-R-tree ablation of baseline 1; it is
// identical to KDS except for the index structure.
func NewRTS(R, S []geom.Point, cfg Config) (*KDS, error) {
	b, err := newBase("RTS", R, S, cfg)
	if err != nil {
		return nil, err
	}
	return &KDS{base: b, index: &rIndex{}}, nil
}

// NewKDSWith builds a KDS over R and the donor's S side, sharing the
// donor's already-built spatial index instead of building a new one.
// The donor must be preprocessed (NewKDSWith preprocesses it when
// not); the returned sampler starts at the preprocessed phase with a
// zero PreprocessTime, since the index cost was the donor's. The
// dynamic-update overlay uses this to re-count small insert buffers
// against a large immutable base side on every applied batch without
// paying an O(m log m) tree rebuild each time.
func NewKDSWith(R []geom.Point, donor *KDS, cfg Config) (*KDS, error) {
	if err := donor.Preprocess(); err != nil {
		return nil, err
	}
	b, err := newBase(donor.name, R, donor.S, cfg)
	if err != nil {
		return nil, err
	}
	b.state = phasePreprocessed
	return &KDS{base: b, index: donor.index.clone()}, nil
}

// Preprocess builds the spatial index over S (the offline phase of
// Table II).
func (k *KDS) Preprocess() error {
	if k.state >= phasePreprocessed {
		return k.err
	}
	timed(&k.stats.PreprocessTime, func() {
		k.index.Build(k.S)
	})
	k.state = phasePreprocessed
	return nil
}

// Build is a no-op: baseline 1 uses no grid.
func (k *KDS) Build() error {
	if err := ensure(k, k.base, phasePreprocessed); err != nil {
		return err
	}
	if k.state < phaseBuilt {
		k.state = phaseBuilt
	}
	return nil
}

// Count runs the exact range counting over all of R and builds the
// alias (steps 1–2 of the baseline).
func (k *KDS) Count() error {
	if err := ensure(k, k.base, phaseBuilt); err != nil {
		return err
	}
	if k.state >= phaseCounted {
		return k.err
	}
	var buildErr error
	timed(&k.stats.UpperBoundTime, func() {
		weights := make([]float64, len(k.R))
		total := 0.0
		for i, r := range k.R {
			c := float64(k.index.Count(k.window(r)))
			weights[i] = c
			total += c
		}
		k.stats.MuSum = total
		if total == 0 {
			buildErr = ErrEmptyJoin
			return
		}
		k.tab, buildErr = alias.New(weights)
	})
	if buildErr != nil {
		k.err = buildErr
		return buildErr
	}
	k.state = phaseCounted
	return nil
}

// Next draws one join sample: alias-weighted r, then a uniform
// in-window s. For KDS the counts are exact, so every iteration
// accepts (modulo the without-replacement filter).
func (k *KDS) Next() (geom.Pair, error) {
	if err := ensure(k, k.base, phaseCounted); err != nil {
		return geom.Pair{}, err
	}
	var out geom.Pair
	var err error
	timed(&k.stats.SampleTime, func() {
		for attempt := 0; attempt < k.cfg.maxRejects(); attempt++ {
			if p, ok := k.tryOnce(); ok {
				out = p
				return
			}
		}
		err = ErrLowAcceptance
	})
	return out, err
}

// tryOnce is one sampling iteration: alias-weighted r, uniform
// in-window s. Exact counts mean it only rejects through the
// without-replacement filter.
func (k *KDS) tryOnce() (geom.Pair, bool) {
	k.stats.Iterations++
	r := k.R[k.tab.Sample(k.rng)]
	s, _, ok := k.index.Sample(k.window(r), k.rng)
	if !ok {
		// Impossible with exact counts; defensive.
		return geom.Pair{}, false
	}
	p := geom.Pair{R: r, S: s}
	if !k.accept(p) {
		return geom.Pair{}, false
	}
	k.stats.Samples++
	return p, true
}

// TryNext runs one sampling trial (the Trial contract). It does not
// charge SampleTime — the mixture driving it owns the draw's timing.
func (k *KDS) TryNext() (geom.Pair, bool, error) {
	if err := ensure(k, k.base, phaseCounted); err != nil {
		return geom.Pair{}, false, err
	}
	p, ok := k.tryOnce()
	return p, ok, nil
}

// Sample draws t samples via Next.
func (k *KDS) Sample(t int) ([]geom.Pair, error) { return sampleN(k, k.base, t) }

// SizeBytes reports index + alias footprint.
func (k *KDS) SizeBytes() int {
	total := k.index.SizeBytes()
	if k.tab != nil {
		total += k.tab.SizeBytes()
	}
	return total
}

var (
	_ Sampler = (*KDS)(nil)
	_ Trial   = (*KDS)(nil)
)

// String aids debugging.
func (k *KDS) String() string {
	return fmt.Sprintf("%s{n=%d, m=%d, l=%g}", k.name, len(k.R), len(k.S), k.cfg.HalfExtent)
}

// clone returns an index handle sharing the tree with fresh scratch.
func (k *kdIndex) clone() pointIndex { return &kdIndex{tree: k.tree} }

// clone returns an index handle sharing the tree with fresh scratch.
func (k *rIndex) clone() pointIndex { return &rIndex{tree: k.tree} }

// Clone prepares the sampler and returns an independent handle over
// the same kd-tree/alias for concurrent sampling.
func (k *KDS) Clone() (Sampler, error) {
	if err := ensure(k, k.base, phaseCounted); err != nil {
		return nil, err
	}
	nb, err := k.base.cloneBase()
	if err != nil {
		return nil, err
	}
	return &KDS{base: nb, index: k.index.clone(), tab: k.tab}, nil
}
