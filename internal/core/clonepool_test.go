package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rng"
)

func newPoolBBST(t *testing.T, seed uint64) (*ClonePool, []geom.Point, []geom.Point, float64) {
	t.Helper()
	r := rng.New(11)
	R := randomPoints(r, 300, 40, 0)
	S := randomPoints(r, 300, 40, 10000)
	const l = 5.0
	s, err := NewBBST(R, S, Config{HalfExtent: l, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewClonePool(s, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p, R, S, l
}

func TestClonePoolServesValidSamples(t *testing.T) {
	p, _, _, l := newPoolBBST(t, 1)
	for req := 0; req < 20; req++ {
		s, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 50; k++ {
			pr, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !geom.InWindow(pr.R, pr.S, l) {
				t.Fatalf("invalid pair %v", pr)
			}
		}
		p.Put(s)
	}
}

// TestClonePoolSequentialDeterminism: with equal pool seeds, the k-th
// request draws the same samples regardless of clone recycling.
func TestClonePoolSequentialDeterminism(t *testing.T) {
	p1, _, _, _ := newPoolBBST(t, 42)
	p2, _, _, _ := newPoolBBST(t, 42)
	// Force p2 through a different clone population: extra idle clones
	// must not change what each request draws.
	if err := p2.Warm(3); err != nil {
		t.Fatal(err)
	}
	for req := 0; req < 10; req++ {
		s1, err := p1.Get()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p2.Get()
		if err != nil {
			t.Fatal(err)
		}
		a, err := s1.Sample(100)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s2.Sample(100)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("request %d diverged at sample %d: %v vs %v", req, i, a[i], b[i])
			}
		}
		p1.Put(s1)
		p2.Put(s2)
	}
}

// TestClonePoolStreamsDiffer: consecutive checkouts must draw from
// independent streams even when the same clone object is recycled.
func TestClonePoolStreamsDiffer(t *testing.T) {
	p, _, _, _ := newPoolBBST(t, 7)
	s1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	a, err := s1.Sample(200)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(s1)
	s2, err := p.Get() // very likely the same object, reseeded
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.Sample(200)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(s2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatalf("recycled checkout repeated %d/%d samples", same, len(a))
	}
}

// TestClonePoolGetSeeded: seeded checkouts draw identical sequences
// for equal seeds, and consume nothing from the pool's own seed
// sequence — unseeded traffic stays reproducible around them.
func TestClonePoolGetSeeded(t *testing.T) {
	p1, _, _, _ := newPoolBBST(t, 42)
	p2, _, _, _ := newPoolBBST(t, 42)

	draw := func(p *ClonePool, seeded bool, seed uint64) []geom.Pair {
		t.Helper()
		var (
			s   Sampler
			err error
		)
		if seeded {
			s, err = p.GetSeeded(seed)
		} else {
			s, err = p.Get()
		}
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := s.Sample(150)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(s)
		return pairs
	}
	equal := func(a, b []geom.Pair) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return len(a) == len(b)
	}

	// Equal seeds ⇒ equal sequences, on the same pool and across pools.
	a := draw(p1, true, 77)
	b := draw(p1, true, 77)
	if !equal(a, b) {
		t.Fatal("equal seeds diverged on one pool")
	}
	if c := draw(p2, true, 77); !equal(a, c) {
		t.Fatal("equal seeds diverged across pools")
	}
	if d := draw(p1, true, 78); equal(a, d) {
		t.Fatal("distinct seeds drew identical sequences")
	}

	// p1 served three seeded checkouts p2 never saw; the unseeded
	// sequences of the two pools must nevertheless still agree.
	u1, u2 := draw(p1, false, 0), draw(p2, false, 0)
	if !equal(u1, u2) {
		t.Fatal("seeded checkouts perturbed the unseeded sequence")
	}
}

// TestClonePoolConcurrentStress hammers one pool from many goroutines
// (run with -race: the shared structures must be read-only).
func TestClonePoolConcurrentStress(t *testing.T) {
	for name, mk := range map[string]func(R, S []geom.Point, cfg Config) (Cloner, error){
		"BBST":   func(R, S []geom.Point, cfg Config) (Cloner, error) { return NewBBST(R, S, cfg) },
		"KDS":    func(R, S []geom.Point, cfg Config) (Cloner, error) { return NewKDS(R, S, cfg) },
		"GridKD": func(R, S []geom.Point, cfg Config) (Cloner, error) { return NewGridKD(R, S, cfg) },
	} {
		t.Run(name, func(t *testing.T) {
			r := rng.New(21)
			R := clustered(r, 400, 50, 0)
			S := clustered(r, 400, 50, 10000)
			const l = 5.0
			s, err := mk(R, S, Config{HalfExtent: l, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			p, err := NewClonePool(s, 1)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make([]error, 8)
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for req := 0; req < 50; req++ {
						c, err := p.Get()
						if err != nil {
							errs[i] = err
							return
						}
						for k := 0; k < 20; k++ {
							pr, err := c.Next()
							if err != nil {
								errs[i] = err
								return
							}
							if !geom.InWindow(pr.R, pr.S, l) {
								errs[i] = errors.New("pair outside window")
								return
							}
						}
						p.Put(c)
					}
				}(i)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestClonePoolUniformity: pooled, reseeded checkouts must still draw
// uniformly over J.
func TestClonePoolUniformity(t *testing.T) {
	r := rng.New(31)
	R := randomPoints(r, 25, 12, 0)
	S := randomPoints(r, 25, 12, 10000)
	const l = 3.0
	joined := join.Materialize(R, S, l)
	if len(joined) < 20 {
		t.Fatalf("setup: |J| = %d", len(joined))
	}
	jset := map[string]bool{}
	for _, p := range joined {
		jset[pairID(p)] = true
	}
	s, err := NewBBST(R, S, Config{HalfExtent: l, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewClonePool(s, 17)
	if err != nil {
		t.Fatal(err)
	}
	const requests = 120
	const perRequest = 1000
	counts := map[string]int{}
	for req := 0; req < requests; req++ {
		c, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := c.Sample(perRequest)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			k := pairID(p)
			if !jset[k] {
				t.Fatalf("pair %s not in J", k)
			}
			counts[k]++
		}
		pool.Put(c)
	}
	draws := float64(requests * perRequest)
	expected := draws / float64(len(joined))
	chi2 := 0.0
	for k := range jset {
		d := float64(counts[k]) - expected
		chi2 += d * d / expected
	}
	dof := float64(len(joined) - 1)
	if limit := dof + 4*math.Sqrt(2*dof) + 10; chi2 > limit {
		t.Fatalf("pooled samples skewed: chi2 = %.1f > %.1f", chi2, limit)
	}
}

// TestClonePoolRejectsWithoutReplacement: the duplicate filter cannot
// be pooled.
func TestClonePoolRejectsWithoutReplacement(t *testing.T) {
	r := rng.New(41)
	R := randomPoints(r, 50, 10, 0)
	S := randomPoints(r, 50, 10, 10000)
	s, err := NewBBST(R, S, Config{HalfExtent: 3, Seed: 1, WithoutReplacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClonePool(s, 1); !errors.Is(err, ErrNoParallelWithoutReplacement) {
		t.Fatalf("err = %v", err)
	}
}

// TestClonePoolEmptyJoin: construction surfaces ErrEmptyJoin.
func TestClonePoolEmptyJoin(t *testing.T) {
	R := []geom.Point{{ID: 0, X: 0, Y: 0}}
	S := []geom.Point{{ID: 0, X: 1000, Y: 1000}}
	s, err := NewBBST(R, S, Config{HalfExtent: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClonePool(s, 1); !errors.Is(err, ErrEmptyJoin) {
		t.Fatalf("err = %v", err)
	}
}
