package core

import (
	"repro/internal/alias"
	"repro/internal/geom"
	"repro/internal/grid"
)

// KDSRejection is the second baseline (Section III-B). It replaces
// baseline 1's O(n sqrt m) exact counting with O(n) grid upper bounds
// µ(r) = Σ |S(c)| over the nine cells overlapping w(r), then corrects
// the bias by rejection: a candidate (r, s) drawn via the kd-tree is
// accepted with probability |S(w(r))| / µ(r). Because the grid bound
// has no approximation guarantee, the acceptance probability — and
// with it the sampling phase — can degrade badly; that observation
// motivates the BBST.
type KDSRejection struct {
	*base
	index pointIndex
	g     *grid.Grid
	tab   *alias.Table
	mu    []float64
}

// NewKDSRejection builds the baseline-2 sampler over R and S.
func NewKDSRejection(R, S []geom.Point, cfg Config) (*KDSRejection, error) {
	b, err := newBase("KDS-rejection", R, S, cfg)
	if err != nil {
		return nil, err
	}
	return &KDSRejection{base: b, index: &kdIndex{}}, nil
}

// Preprocess builds the kd-tree over S offline (shared with KDS, as
// in Table II).
func (k *KDSRejection) Preprocess() error {
	if k.state >= phasePreprocessed {
		return k.err
	}
	timed(&k.stats.PreprocessTime, func() {
		k.index.Build(k.S)
	})
	k.state = phasePreprocessed
	return nil
}

// Build maps S onto the grid (GM). The grid cannot be built offline
// because the cell side equals the query's half extent.
func (k *KDSRejection) Build() error {
	if err := ensure(k, k.base, phasePreprocessed); err != nil {
		return err
	}
	if k.state >= phaseBuilt {
		return k.err
	}
	var buildErr error
	timed(&k.stats.GridMapTime, func() {
		k.g, buildErr = grid.Build(k.S, k.cfg.HalfExtent)
	})
	if buildErr != nil {
		k.err = buildErr
		return buildErr
	}
	k.state = phaseBuilt
	return nil
}

// Count computes µ(r) for every r in O(1) each — the sum of the nine
// overlapping cell sizes — and builds the alias over µ (UB).
func (k *KDSRejection) Count() error {
	if err := ensure(k, k.base, phaseBuilt); err != nil {
		return err
	}
	if k.state >= phaseCounted {
		return k.err
	}
	var buildErr error
	timed(&k.stats.UpperBoundTime, func() {
		k.mu = make([]float64, len(k.R))
		total := 0.0
		var nb [grid.NumDirections]*grid.Cell
		for i, r := range k.R {
			k.g.Neighborhood(r, &nb)
			m := 0
			for _, c := range &nb {
				if c != nil {
					m += c.Len()
				}
			}
			k.mu[i] = float64(m)
			total += float64(m)
		}
		k.stats.MuSum = total
		if total == 0 {
			buildErr = ErrEmptyJoin
			return
		}
		k.tab, buildErr = alias.New(k.mu)
	})
	if buildErr != nil {
		k.err = buildErr
		return buildErr
	}
	k.state = phaseCounted
	return nil
}

// Next draws one join sample: alias-weighted r by µ(r), kd-tree
// sample s with exact count |S(w(r))|, accepted with probability
// |S(w(r))|/µ(r). Acceptance keeps every pair at probability 1/Σµ,
// so accepted samples are uniform and independent.
func (k *KDSRejection) Next() (geom.Pair, error) {
	if err := ensure(k, k.base, phaseCounted); err != nil {
		return geom.Pair{}, err
	}
	var out geom.Pair
	var err error
	timed(&k.stats.SampleTime, func() {
		for attempt := 0; attempt < k.cfg.maxRejects(); attempt++ {
			k.stats.Iterations++
			ri := k.tab.Sample(k.rng)
			r := k.R[ri]
			s, count, ok := k.index.Sample(k.window(r), k.rng)
			if !ok {
				continue // |S(w(r))| == 0: reject
			}
			// Accept with probability count/µ(r); µ >= count by
			// construction (the window is inside the nine cells).
			if k.rng.Float64()*k.mu[ri] >= float64(count) {
				continue
			}
			p := geom.Pair{R: r, S: s}
			if !k.accept(p) {
				continue
			}
			k.stats.Samples++
			out = p
			return
		}
		err = ErrLowAcceptance
	})
	return out, err
}

// Sample draws t samples via Next.
func (k *KDSRejection) Sample(t int) ([]geom.Pair, error) { return sampleN(k, k.base, t) }

// SizeBytes reports kd-tree + grid + alias footprint.
func (k *KDSRejection) SizeBytes() int {
	total := k.index.SizeBytes()
	if k.g != nil {
		total += k.g.SizeBytes()
	}
	if k.tab != nil {
		total += k.tab.SizeBytes()
	}
	total += 8 * len(k.mu)
	return total
}

var _ Sampler = (*KDSRejection)(nil)

// Clone prepares the sampler and returns an independent handle over
// the same kd-tree, grid, and alias for concurrent sampling.
func (k *KDSRejection) Clone() (Sampler, error) {
	if err := ensure(k, k.base, phaseCounted); err != nil {
		return nil, err
	}
	nb, err := k.base.cloneBase()
	if err != nil {
		return nil, err
	}
	return &KDSRejection{base: nb, index: k.index.clone(), g: k.g, tab: k.tab, mu: k.mu}, nil
}
