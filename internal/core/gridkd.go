package core

import (
	"repro/internal/bbst"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/rng"
)

// kdCorner answers case-3 queries with a per-cell kd-tree: exact
// counting via Count and exact sampling via the KDS primitive. This is
// the variant the paper compares against in Fig. 9 to isolate the
// benefit of the BBST structure.
type kdCorner struct {
	tree    *kdtree.Tree
	scratch kdtree.Scratch
}

// cornerRegion clips the corner constraint into a rectangle; the cell
// contains only its own points, so querying the half-open constraint
// region is equivalent to querying w(r) within the cell.
func cornerRegion(c bbst.Corner, w geom.Rect) geom.Rect {
	// The opposite two sides of the window lie outside the corner
	// cell, so they never exclude a cell point; use the full window.
	return w
}

func (k *kdCorner) mu(c bbst.Corner, w geom.Rect) int {
	return k.tree.Count(cornerRegion(c, w))
}

func (k *kdCorner) sample(c bbst.Corner, w geom.Rect, r *rng.RNG) (geom.Point, bool) {
	pt, _, ok := k.tree.Sample(cornerRegion(c, w), r, &k.scratch)
	return pt, ok
}

func (k *kdCorner) sizeBytes() int { return k.tree.SizeBytes() }

func (k *kdCorner) clone() cornerIndex { return &kdCorner{tree: k.tree} }

// GridKD is the Fig. 9 ablation of the proposed algorithm: the same
// grid pipeline (exact cases 1–2) but with one kd-tree per cell in
// place of the two BBSTs, sampled with KDS. Counting and sampling at
// the corners cost O(sqrt |S(c)|) instead of Õ(1); the paper reports
// BBST beating this variant by up to 12x.
type GridKD struct {
	gridSampler
}

// NewGridKD builds the kd-tree-per-cell variant over R and S.
func NewGridKD(R, S []geom.Point, cfg Config) (*GridKD, error) {
	b, err := newBase("GridKD", R, S, cfg)
	if err != nil {
		return nil, err
	}
	s := &GridKD{gridSampler{base: b}}
	s.newCorner = func(cellPoints []geom.Point, m int) cornerIndex {
		return &kdCorner{tree: kdtree.New(cellPoints)}
	}
	return s, nil
}

// Next draws one uniform independent join sample.
func (s *GridKD) Next() (geom.Pair, error) { return s.next(s) }

// TryNext runs one sampling trial (the Trial contract).
func (s *GridKD) TryNext() (geom.Pair, bool, error) { return s.tryNext(s) }

// Sample draws t samples via Next.
func (s *GridKD) Sample(t int) ([]geom.Pair, error) { return sampleN(s, s.base, t) }

// SizeBytes reports the pipeline footprint.
func (s *GridKD) SizeBytes() int { return s.sizeBytes() }

// Clone prepares the sampler and returns an independent handle over
// the same grid/kd-tree/alias structures for concurrent sampling.
func (s *GridKD) Clone() (Sampler, error) {
	gs, err := s.cloneGrid(s)
	if err != nil {
		return nil, err
	}
	return &GridKD{gs}, nil
}

var (
	_ Sampler = (*GridKD)(nil)
	_ Cloner  = (*GridKD)(nil)
	_ Trial   = (*GridKD)(nil)
)
