package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rng"
)

// cloners returns the samplers that support Clone.
func cloners(R, S []geom.Point, cfg Config) map[string]Cloner {
	out := map[string]Cloner{}
	if s, err := NewKDS(R, S, cfg); err == nil {
		out["KDS"] = s
	}
	if s, err := NewKDSRejection(R, S, cfg); err == nil {
		out["KDS-rejection"] = s
	}
	if s, err := NewBBST(R, S, cfg); err == nil {
		out["BBST"] = s
	}
	if s, err := NewGridKD(R, S, cfg); err == nil {
		out["GridKD"] = s
	}
	if s, err := NewJoinSample(R, S, cfg); err == nil {
		out["JoinSample"] = s
	}
	return out
}

func TestParallelSampleBasics(t *testing.T) {
	r := rng.New(1)
	R := randomPoints(r, 300, 40, 0)
	S := randomPoints(r, 300, 40, 10000)
	const l = 5.0
	for name, s := range cloners(R, S, Config{HalfExtent: l, Seed: 3}) {
		t.Run(name, func(t *testing.T) {
			pairs, err := ParallelSample(s, 5000, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != 5000 {
				t.Fatalf("got %d pairs", len(pairs))
			}
			for _, p := range pairs {
				if !geom.InWindow(p.R, p.S, l) {
					t.Fatalf("invalid pair %v", p)
				}
			}
		})
	}
}

func TestParallelSampleEdgeCases(t *testing.T) {
	r := rng.New(2)
	R := randomPoints(r, 50, 10, 0)
	S := randomPoints(r, 50, 10, 10000)
	s, err := NewBBST(R, S, Config{HalfExtent: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParallelSample(s, -1, 4); err == nil {
		t.Error("negative t should fail")
	}
	if _, err := ParallelSample(s, 10, 0); err == nil {
		t.Error("zero workers should fail")
	}
	out, err := ParallelSample(s, 0, 4)
	if err != nil || len(out) != 0 {
		t.Errorf("t=0: %d pairs, %v", len(out), err)
	}
	// More workers than samples.
	out, err = ParallelSample(s, 3, 16)
	if err != nil || len(out) != 3 {
		t.Errorf("t=3 workers=16: %d pairs, %v", len(out), err)
	}
}

func TestParallelSampleRejectsWithoutReplacement(t *testing.T) {
	r := rng.New(3)
	R := randomPoints(r, 50, 10, 0)
	S := randomPoints(r, 50, 10, 10000)
	s, err := NewBBST(R, S, Config{HalfExtent: 3, Seed: 1, WithoutReplacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParallelSample(s, 100, 4); !errors.Is(err, ErrNoParallelWithoutReplacement) {
		t.Fatalf("err = %v", err)
	}
}

// TestParallelUniformity: the union of worker outputs must still be
// uniform over J.
func TestParallelUniformity(t *testing.T) {
	r := rng.New(4)
	R := randomPoints(r, 25, 12, 0)
	S := randomPoints(r, 25, 12, 10000)
	const l = 3.0
	joined := join.Materialize(R, S, l)
	if len(joined) < 20 {
		t.Fatalf("setup: |J| = %d", len(joined))
	}
	jset := map[string]bool{}
	for _, p := range joined {
		jset[pairID(p)] = true
	}
	s, err := NewBBST(R, S, Config{HalfExtent: l, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	const draws = 120000
	pairs, err := ParallelSample(s, draws, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, p := range pairs {
		k := pairID(p)
		if !jset[k] {
			t.Fatalf("pair %s not in J", k)
		}
		counts[k]++
	}
	expected := float64(draws) / float64(len(joined))
	chi2 := 0.0
	for k := range jset {
		d := float64(counts[k]) - expected
		chi2 += d * d / expected
	}
	dof := float64(len(joined) - 1)
	if limit := dof + 4*math.Sqrt(2*dof) + 10; chi2 > limit {
		t.Fatalf("parallel samples skewed: chi2 = %.1f > %.1f", chi2, limit)
	}
}

// TestClonesConcurrentlySafe hammers clones from many goroutines with
// the race detector in mind (go test -race).
func TestClonesConcurrentlySafe(t *testing.T) {
	r := rng.New(5)
	R := clustered(r, 500, 60, 0)
	S := clustered(r, 500, 60, 10000)
	for name, s := range cloners(R, S, Config{HalfExtent: 5, Seed: 7}) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make([]error, 8)
			for i := 0; i < 8; i++ {
				c, err := s.Clone()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int, c Sampler) {
					defer wg.Done()
					for k := 0; k < 500; k++ {
						if _, err := c.Next(); err != nil {
							errs[i] = err
							return
						}
					}
				}(i, c)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestCloneStreamsDiffer: two clones must not produce the same sample
// sequence.
func TestCloneStreamsDiffer(t *testing.T) {
	r := rng.New(6)
	R := randomPoints(r, 200, 30, 0)
	S := randomPoints(r, 200, 30, 10000)
	s, err := NewBBST(R, S, Config{HalfExtent: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	a, err := c1.Sample(200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c2.Sample(200)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatalf("clones produced %d/%d identical samples", same, len(a))
	}
}
