package core

import (
	"fmt"
	"sync"

	"repro/internal/rng"
)

// Reseed reinitializes the sampler's random stream in place (the
// Reseeder contract). ClonePool calls it on every checkout so that the
// samples a request draws depend only on the pool's seed and the
// checkout order — never on which recycled clone happens to serve the
// request. Every sampler embeds *base, so every clone implements it.
func (b *base) Reseed(seed uint64) { b.rng.Reseed(seed) }

// ClonePool is a concurrency-safe pool of sampler clones over one
// prepared parent. The parent's structures (grid, corner indexes,
// spatial trees, alias tables) are built exactly once — in
// NewClonePool — and every clone shares them read-only; each clone
// only owns scratch buffers, statistics, and a random stream. Get and
// Put may be called from any number of goroutines.
//
// On every checkout the clone's stream is reseeded from the pool's
// seed sequence, so request streams stay uniform and independent of
// each other, and a single-goroutine request sequence is reproducible
// across runs of a pool with the same seed.
type ClonePool struct {
	parent Cloner

	mu  sync.Mutex // guards seq and parent.Clone (both advance RNG state)
	seq *rng.RNG   // per-checkout seed sequence

	pool sync.Pool // idle Sampler clones
}

// NewClonePool prepares parent through Count (building every shared
// structure) and returns a pool serving clones of it. Construction
// surfaces data-dependent errors immediately — most notably
// ErrEmptyJoin when the join is provably empty — rather than on the
// first request. Sampling without replacement is not poolable (the
// duplicate filter would need cross-clone coordination) and is
// rejected here, as ErrNoParallelWithoutReplacement.
func NewClonePool(parent Cloner, seed uint64) (*ClonePool, error) {
	first, err := parent.Clone()
	if err != nil {
		return nil, err
	}
	if _, ok := first.(Reseeder); !ok {
		return nil, fmt.Errorf("core: %s clones do not support reseeding", parent.Name())
	}
	p := &ClonePool{parent: parent, seq: rng.New(seed)}
	p.pool.Put(first)
	return p, nil
}

// idleOrClone returns an idle pooled clone, or creates one under the
// lock (Clone advances the parent's RNG state). The returned clone
// still carries its previous stream; callers reseed it.
func (p *ClonePool) idleOrClone() (Sampler, error) {
	if v := p.pool.Get(); v != nil {
		return v.(Sampler), nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.parent.Clone()
}

// Get checks a clone out of the pool — creating one when no idle clone
// is available — and gives it a fresh independent random stream.
// Exactly one seed is consumed from the pool's sequence per call,
// whether or not a clone had to be created.
func (p *ClonePool) Get() (Sampler, error) {
	s, err := p.idleOrClone()
	p.mu.Lock()
	seed := p.seq.Uint64()
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.(Reseeder).Reseed(seed)
	return s, nil
}

// GetSeeded is Get with a caller-chosen stream seed: the checked-out
// clone is reseeded with seed instead of the pool's sequence, so two
// checkouts with equal seeds draw identical sample sequences — the
// determinism hook behind per-request seeds in the serving layer.
// Unlike Get, it consumes nothing from the pool's seed sequence, so
// seeded checkouts never perturb the reproducibility of the unseeded
// request stream interleaved with them.
func (p *ClonePool) GetSeeded(seed uint64) (Sampler, error) {
	s, err := p.idleOrClone()
	if err != nil {
		return nil, err
	}
	s.(Reseeder).Reseed(seed)
	return s, nil
}

// Put returns a clone obtained from Get to the pool for reuse. The
// caller must not use s afterwards.
func (p *ClonePool) Put(s Sampler) {
	if s == nil {
		return
	}
	p.pool.Put(s)
}

// Warm pre-populates the pool with n idle clones so that the first n
// concurrent checkouts pay no construction cost.
func (p *ClonePool) Warm(n int) error {
	for i := 0; i < n; i++ {
		p.mu.Lock()
		c, err := p.parent.Clone()
		p.mu.Unlock()
		if err != nil {
			return err
		}
		p.pool.Put(c)
	}
	return nil
}

// Parent exposes the prepared parent sampler (for Name, SizeBytes, and
// structure-level Stats). Callers must not sample from it while the
// pool is serving.
func (p *ClonePool) Parent() Cloner { return p.parent }
