package core

// Incremental index maintenance: the mutable successor of the frozen
// BBST pipeline. A frozen BBSTSampler answers draws over immutable
// structures built in bulk; a Mutable answers the same draws over
// structures that absorb point inserts and deletes in place:
//
//   - the S side keeps one copy-on-write cell (grid.WithUpdates) plus
//     one incrementally-maintained BBST pair (bbst.Insert/Delete on a
//     CloneForUpdate copy) per non-empty grid cell, reached through a
//     persistent directory (grid.Dir) instead of a Go map;
//   - the R side keeps an append-with-reuse slot array (pvec) whose
//     per-slot µ(r) weights live in a persistent sum tree
//     (alias.Weights) — the mutable replacement for the frozen Walker
//     alias — plus a cell→slots reverse index so an S-side change
//     recomputes µ only for the R points whose 3×3 neighborhood was
//     touched;
//   - deleting an R point zeroes its weight and threads the slot onto
//     a free list encoded in the slot array itself, so sustained churn
//     reuses slots instead of growing without bound.
//
// Every version of the index is immutable: ApplyOps path-copies the
// touched cells, slots, and weight paths and returns a NEW index, so
// published views keep serving the version they started with — the
// same discipline the dynamic store already applies to whole views.
// One batch of k operations costs Õ(k) (each op touches O(log) nodes
// plus one cell's O(|cell|) copy-on-write, amortized by the batch),
// which is what retires the threshold-triggered base rebuild.
//
// Sampling stays the paper's Algorithm 1: draw a slot proportional to
// µ(r) through the weight tree, pick one of the 9 neighborhood
// directions by a cumulative scan of the per-direction counts (exact
// for cases 1–2, the BBST bound for corners), draw a uniform slot
// within the direction, accept iff the candidate lies in w(r). The
// per-direction counts are recomputed per trial instead of being
// cached in a per-point alias.Small: the index version is immutable,
// so they sum to exactly the stored µ(r) and every live pair is
// returned by one trial with probability exactly 1/Σµ — the Trial
// contract the delta overlay mixes on.

import (
	"fmt"
	"math"

	"repro/internal/alias"
	"repro/internal/bbst"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/rng"
)

// MutOps is one batch of mutations for ApplyOps: points to insert and
// point IDs to delete, per side. Deleting an ID removes every live
// point carrying it on that side; an absent ID is a no-op. Deletes
// are applied before inserts, so a batch may delete an ID and insert
// its replacement.
type MutOps struct {
	InsR, InsS []geom.Point
	DelR, DelS []int32
}

// Empty reports whether the batch carries no operations.
func (o MutOps) Empty() bool {
	return len(o.InsR) == 0 && len(o.InsS) == 0 && len(o.DelR) == 0 && len(o.DelS) == 0
}

// mutCell is the per-cell S-side structure: the copy-on-write cell
// (two sorted point orders for the exact 0/1-sided cases) and the
// incrementally-maintained BBST pair (the 2-sided corners).
type mutCell struct {
	cell *grid.Cell
	pair *bbst.Pair
}

// rlist is one R cell's slot list. Deletes only decrement live (an
// O(1) copy of the value struct) and leave the dead slot in the list;
// the list is re-filtered when garbage exceeds live entries, so the
// amortized cost per operation stays Õ(1). Readers validate entries
// against the slot array before use.
type rlist struct {
	slots []int32
	live  int32
}

// idKey packs a point ID into a directory key, so the persistent cell
// directory doubles as a persistent ID index.
func idKey(id int32) grid.Key { return grid.Key{CX: id} }

// freeMarker encodes a free-list link in a dead slot: NaN X marks the
// slot dead, ID carries the next free slot (-1 ends the chain).
func freeMarker(next int32) geom.Point {
	return geom.Point{X: math.NaN(), ID: next}
}

func isFreeSlot(pt geom.Point) bool { return math.IsNaN(pt.X) }

// MutableIndex is one immutable version of the maintained structures.
// ApplyOps returns a new version; old versions stay valid and answer
// concurrent draws unchanged.
type MutableIndex struct {
	cfg  Config
	side float64 // grid cell side (= HalfExtent), fixed per index line
	bcap int     // BBST bucket capacity, sized for s0 live S points

	// S side.
	scells *grid.Dir[*mutCell]
	sids   *grid.Dir[[]geom.Point] // ID -> live points with that ID
	sCount int
	s0     int // live S count the bucket capacity was sized for

	// R side.
	slots    *pvec // slot -> point; dead slots hold free markers
	freeHead int32 // head of the dead-slot chain (-1 when none)
	nFree    int
	weights  *alias.Weights // slot -> µ(r); 0 for dead and zero-match slots
	rcells   *grid.Dir[rlist]
	rids     *grid.Dir[[]int32] // ID -> live slots with that ID
	rCount   int
}

// NumR and NumS report the live point counts.
func (ix *MutableIndex) NumR() int { return ix.rCount }
func (ix *MutableIndex) NumS() int { return ix.sCount }

// MuSum is the total alias mass Σ_r µ(r) of this version.
func (ix *MutableIndex) MuSum() float64 {
	if ix.weights == nil {
		return 0
	}
	return ix.weights.Total()
}

// muDirAt counts the S points of mc matching direction d of window w:
// exact for cases 1–2, the BBST upper bound for corners.
func (ix *MutableIndex) muDirAt(mc *mutCell, d grid.Direction, w geom.Rect, sc *bbst.Scratch) int {
	switch d {
	case grid.Center:
		return mc.cell.Len()
	case grid.West:
		n, _ := mc.cell.CountXAtLeast(w.XMin)
		return n
	case grid.East:
		return mc.cell.CountXAtMost(w.XMax)
	case grid.South:
		n, _ := mc.cell.CountYAtLeast(w.YMin)
		return n
	case grid.North:
		return mc.cell.CountYAtMost(w.YMax)
	default:
		return mc.pair.MuS(cornerFor(d), w, sc)
	}
}

// sampleDirAt draws one candidate slot of direction d; ok is false on
// an empty corner slot. The caller verifies window membership.
func (ix *MutableIndex) sampleDirAt(mc *mutCell, d grid.Direction, w geom.Rect, r *rng.RNG, sc *bbst.Scratch) (geom.Point, bool) {
	c := mc.cell
	switch d {
	case grid.Center:
		return c.XSorted[r.Intn(c.Len())], true
	case grid.West:
		n, start := c.CountXAtLeast(w.XMin)
		if n == 0 {
			return geom.Point{}, false
		}
		return c.XSorted[start+r.Intn(n)], true
	case grid.East:
		n := c.CountXAtMost(w.XMax)
		if n == 0 {
			return geom.Point{}, false
		}
		return c.XSorted[r.Intn(n)], true
	case grid.South:
		n, start := c.CountYAtLeast(w.YMin)
		if n == 0 {
			return geom.Point{}, false
		}
		return c.YSorted[start+r.Intn(n)], true
	case grid.North:
		n := c.CountYAtMost(w.YMax)
		if n == 0 {
			return geom.Point{}, false
		}
		return c.YSorted[r.Intn(n)], true
	default:
		return mc.pair.SampleSlotS(cornerFor(d), w, r, sc)
	}
}

// muOf computes µ(r) for one R point against this version's S side.
func (ix *MutableIndex) muOf(pt geom.Point, sc *bbst.Scratch) float64 {
	w := geom.Window(pt, ix.cfg.HalfExtent)
	k := grid.KeyFor(pt.X, pt.Y, ix.side)
	sum := 0
	for d := grid.Direction(0); d < grid.NumDirections; d++ {
		if mc, ok := ix.scells.Get(k.Neighbor(d)); ok {
			sum += ix.muDirAt(mc, d, w, sc)
		}
	}
	return float64(sum)
}

// scw is the per-cell S work of one batch.
type scw struct {
	ins    []geom.Point
	del    []geom.Point
	delIDs map[int32]struct{}
}

// ApplyOps absorbs one batch and returns the new index version. The
// receiver is never modified. S operations are applied first (grouped
// per cell, one copy-on-write cell replacement and one cloned BBST
// pair per touched cell), then R deletes, then R inserts with µ
// computed against the final S state, and finally µ is recomputed for
// the live R slots whose 3×3 neighborhood contains a touched S cell.
func (ix *MutableIndex) ApplyOps(ops MutOps) (*MutableIndex, error) {
	if err := checkMutFinite(ops.InsR, "R"); err != nil {
		return nil, err
	}
	if err := checkMutFinite(ops.InsS, "S"); err != nil {
		return nil, err
	}
	nx := *ix
	var sc bbst.Scratch

	// S side: group per-cell work in first-touch order (deterministic —
	// derived from the batch's own order, never map iteration).
	var cellKeys []grid.Key
	cells := make(map[grid.Key]*scw)
	touch := func(k grid.Key) *scw {
		w := cells[k]
		if w == nil {
			w = &scw{}
			cells[k] = w
			cellKeys = append(cellKeys, k)
		}
		return w
	}
	for _, id := range ops.DelS {
		pts, ok := nx.sids.Get(idKey(id))
		if !ok {
			continue
		}
		for _, pt := range pts {
			w := touch(grid.KeyFor(pt.X, pt.Y, nx.side))
			w.del = append(w.del, pt)
			if w.delIDs == nil {
				w.delIDs = make(map[int32]struct{})
			}
			w.delIDs[id] = struct{}{}
		}
		nx.sids = nx.sids.Without(idKey(id))
		nx.sCount -= len(pts)
	}
	for _, pt := range ops.InsS {
		w := touch(grid.KeyFor(pt.X, pt.Y, nx.side))
		w.ins = append(w.ins, pt)
		old, _ := nx.sids.Get(idKey(pt.ID))
		nx.sids = nx.sids.With(idKey(pt.ID), append(old[:len(old):len(old)], pt))
		nx.sCount++
	}
	for _, k := range cellKeys {
		if err := nx.applySCell(k, cells[k]); err != nil {
			return nil, err
		}
	}

	// R deletes: zero the weight, thread the slot onto the free list,
	// and retire the slot from its cell's reverse list.
	for _, id := range ops.DelR {
		slots, ok := nx.rids.Get(idKey(id))
		if !ok {
			continue
		}
		for _, slot := range slots {
			pt := nx.slots.Get(int(slot))
			k := grid.KeyFor(pt.X, pt.Y, nx.side)
			w, err := nx.weights.Set(int(slot), 0)
			if err != nil {
				return nil, err
			}
			nx.weights = w
			nx.slots = nx.slots.Set(int(slot), freeMarker(nx.freeHead))
			nx.freeHead = slot
			nx.nFree++
			if err := nx.dropFromRCell(k); err != nil {
				return nil, err
			}
		}
		nx.rids = nx.rids.Without(idKey(id))
		nx.rCount -= len(slots)
	}

	// R inserts: reuse a free slot when one exists, µ against final S.
	for _, pt := range ops.InsR {
		mu := nx.muOf(pt, &sc)
		var slot int32
		if nx.freeHead >= 0 {
			slot = nx.freeHead
			nx.freeHead = nx.slots.Get(int(slot)).ID
			nx.nFree--
			nx.slots = nx.slots.Set(int(slot), pt)
			w, err := nx.weights.Set(int(slot), mu)
			if err != nil {
				return nil, err
			}
			nx.weights = w
		} else {
			slot = int32(nx.slots.Len())
			nx.slots = nx.slots.Append(pt)
			w, err := nx.weights.Append(mu)
			if err != nil {
				return nil, err
			}
			nx.weights = w
		}
		nx.addToRCell(grid.KeyFor(pt.X, pt.Y, nx.side), slot)
		old, _ := nx.rids.Get(idKey(pt.ID))
		nx.rids = nx.rids.With(idKey(pt.ID), append(old[:len(old):len(old)], slot))
		nx.rCount++
	}

	// Recompute µ for every live R slot with a touched S cell in its
	// neighborhood (the 3×3 relation is symmetric, so those are exactly
	// the slots in the 3×3 blocks around the touched cells). Freshly
	// inserted slots recompute to the value just stored — harmless.
	if len(cellKeys) > 0 {
		seen := make(map[grid.Key]struct{}, 9*len(cellKeys))
		var rkeys []grid.Key
		for _, k := range cellKeys {
			for d := grid.Direction(0); d < grid.NumDirections; d++ {
				rk := k.Neighbor(d)
				if _, dup := seen[rk]; dup {
					continue
				}
				seen[rk] = struct{}{}
				rkeys = append(rkeys, rk)
			}
		}
		for _, rk := range rkeys {
			rl, ok := nx.rcells.Get(rk)
			if !ok {
				continue
			}
			for _, slot := range rl.slots {
				pt := nx.slots.Get(int(slot))
				if isFreeSlot(pt) || grid.KeyFor(pt.X, pt.Y, nx.side) != rk {
					continue // retired entry awaiting re-filter
				}
				w, err := nx.weights.Set(int(slot), nx.muOf(pt, &sc))
				if err != nil {
					return nil, err
				}
				nx.weights = w
			}
		}
	}
	return &nx, nil
}

func checkMutFinite(pts []geom.Point, side string) error {
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("core: mutable %s insert: point ID %d has non-finite coordinates", side, p.ID)
		}
	}
	return nil
}

// applySCell replaces one S cell: the copy-on-write cell in one merge
// pass, the BBST pair via clone-and-edit (or a bulk build for a brand
// new cell).
func (nx *MutableIndex) applySCell(k grid.Key, w *scw) error {
	var oldCell *grid.Cell
	var oldPair *bbst.Pair
	if mc, ok := nx.scells.Get(k); ok {
		oldCell, oldPair = mc.cell, mc.pair
	}
	var drop func(geom.Point) bool
	if len(w.delIDs) > 0 {
		ids := w.delIDs
		drop = func(p geom.Point) bool {
			_, dead := ids[p.ID]
			return dead
		}
	}
	ncell := grid.WithUpdates(k, oldCell, w.ins, drop)
	if ncell == nil {
		nx.scells = nx.scells.Without(k)
		return nil
	}
	var npair *bbst.Pair
	if oldPair == nil {
		p, err := bbst.Build(ncell.XSorted, nx.bcap)
		if err != nil {
			return err
		}
		npair = p
	} else {
		npair = oldPair.CloneForUpdate()
		for _, pt := range w.del {
			found, err := npair.Delete(pt)
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("core: mutable S delete: point ID %d missing from cell (%d,%d)", pt.ID, k.CX, k.CY)
			}
		}
		for _, pt := range w.ins {
			if err := npair.Insert(pt); err != nil {
				return err
			}
		}
	}
	nx.scells = nx.scells.With(k, &mutCell{cell: ncell, pair: npair})
	return nil
}

// dropFromRCell retires one live slot from cell k's reverse list.
func (nx *MutableIndex) dropFromRCell(k grid.Key) error {
	rl, ok := nx.rcells.Get(k)
	if !ok || rl.live == 0 {
		return fmt.Errorf("core: mutable R delete: cell (%d,%d) has no live slots", k.CX, k.CY)
	}
	rl.live--
	if rl.live == 0 {
		nx.rcells = nx.rcells.Without(k)
		return nil
	}
	if len(rl.slots) > 2*int(rl.live) {
		rl.slots = nx.filterRList(k, rl.slots)
	}
	nx.rcells = nx.rcells.With(k, rl)
	return nil
}

// addToRCell appends one live slot to cell k's reverse list. The
// append may extend the backing array shared with published versions,
// which is safe: their rlist value caps their view of it, ApplyOps
// runs single-writer, and readers never touch rcells — only ApplyOps
// and test invariants (both serialized) do.
func (nx *MutableIndex) addToRCell(k grid.Key, slot int32) {
	rl, _ := nx.rcells.Get(k)
	rl.slots = append(rl.slots, slot)
	rl.live++
	if len(rl.slots) > 2*int(rl.live) {
		rl.slots = nx.filterRList(k, rl.slots)
	}
	nx.rcells = nx.rcells.With(k, rl)
}

// filterRList rebuilds a reverse list keeping only slots that are live
// and still belong to cell k.
func (nx *MutableIndex) filterRList(k grid.Key, slots []int32) []int32 {
	out := make([]int32, 0, len(slots)/2+1)
	for _, slot := range slots {
		pt := nx.slots.Get(int(slot))
		if !isFreeSlot(pt) && grid.KeyFor(pt.X, pt.Y, nx.side) == k {
			out = append(out, slot)
		}
	}
	return out
}

// rebaseDriftFactor is the live-S-count drift (either way) past which
// the fixed bucket capacity is considered mis-sized.
const rebaseDriftFactor = 8

// NeedsRebase reports whether the live S count has drifted so far from
// the count the bucket capacity was sized for that the corner upper
// bounds may rot the acceptance rate — the pathological-skew escape
// hatch. Steady churn keeps the live count near s0 and never trips it.
func (ix *MutableIndex) NeedsRebase() bool {
	hi := ix.s0 * rebaseDriftFactor
	if hi < 64 {
		hi = 64
	}
	return ix.sCount > hi || (ix.sCount > 0 && ix.sCount*rebaseDriftFactor < ix.s0)
}

// SizeBytes estimates the standalone footprint of this version in O(1)
// from the live counts (pvec and weight nodes, two sorted point copies
// plus BBST buckets per S point, directory slots).
func (ix *MutableIndex) SizeBytes() int {
	nslots := 0
	if ix.slots != nil {
		nslots = ix.slots.Len()
	}
	total := 80 * nslots // pvec node per slot
	if ix.weights != nil {
		total += ix.weights.SizeBytes()
	}
	total += 140 * ix.sCount // cell copies + bucket storage + tree nodes
	if ix.scells != nil {
		total += ix.scells.SizeBytes() + ix.sids.SizeBytes()
	}
	if ix.rcells != nil {
		total += ix.rcells.SizeBytes() + ix.rids.SizeBytes() + 8*nslots
	}
	return total
}

// Mutable is a sampling handle over one MutableIndex version: the
// core.Trial / core.Cloner / core.Reseeder implementation the dynamic
// store serves through. Handles are cheap; Apply returns a new handle
// over the new version.
type Mutable struct {
	idx        *MutableIndex
	name       string
	maxRejects int
	rng        *rng.RNG
	scratch    bbst.Scratch
	stats      Stats
}

// Unfreeze converts the prepared sampler into a Mutable sharing every
// frozen structure: the per-cell BBST pairs are adopted as-is (the
// first mutation of a cell clones them copy-on-write, so the frozen
// sampler keeps serving untouched), the retained µ vector seeds the
// persistent weight tree, and the reverse indexes are built in one
// pass. This is the one O(n + m) step of the mutable path; every
// ApplyOps after it is Õ(ops).
func (s *BBSTSampler) Unfreeze() (*Mutable, error) {
	if s.cfg.WithoutReplacement {
		return nil, ErrNoParallelWithoutReplacement
	}
	if err := ensure(s, s.base, phaseCounted); err != nil {
		return nil, err
	}
	bcap := s.cfg.BucketCap
	if bcap == 0 {
		bcap = bbst.BucketCap(len(s.S))
	}
	ix := &MutableIndex{
		cfg:      s.cfg,
		side:     s.g.Side(),
		bcap:     bcap,
		scells:   &grid.Dir[*mutCell]{},
		sids:     &grid.Dir[[]geom.Point]{},
		sCount:   len(s.sortedS),
		s0:       len(s.sortedS),
		freeHead: -1,
		rcells:   &grid.Dir[rlist]{},
		rids:     &grid.Dir[[]int32]{},
		rCount:   len(s.R),
	}
	var cellList []*grid.Cell
	s.g.Cells(func(c *grid.Cell) { cellList = append(cellList, c) })
	for _, c := range cellList {
		bc, ok := s.corners[c.Key].(*bbstCorner)
		if !ok {
			return nil, fmt.Errorf("core: unfreeze: cell (%d,%d) has no BBST pair", c.Key.CX, c.Key.CY)
		}
		ix.scells = ix.scells.With(c.Key, &mutCell{cell: c, pair: bc.pair})
	}
	for _, pt := range s.sortedS {
		old, _ := ix.sids.Get(idKey(pt.ID))
		ix.sids = ix.sids.With(idKey(pt.ID), append(old[:len(old):len(old)], pt))
	}
	ix.slots = newPvec(s.R)
	w, err := alias.NewWeights(s.mu)
	if err != nil {
		return nil, err
	}
	ix.weights = w
	for i, pt := range s.R {
		k := grid.KeyFor(pt.X, pt.Y, ix.side)
		rl, _ := ix.rcells.Get(k)
		rl.slots = append(rl.slots, int32(i))
		rl.live++
		ix.rcells = ix.rcells.With(k, rl)
		old, _ := ix.rids.Get(idKey(pt.ID))
		ix.rids = ix.rids.With(idKey(pt.ID), append(old[:len(old):len(old)], int32(i)))
	}
	m := &Mutable{
		idx:        ix,
		name:       s.name,
		maxRejects: s.cfg.maxRejects(),
		rng:        rng.New(s.cfg.Seed),
	}
	m.stats.MuSum = ix.MuSum()
	return m, nil
}

// Apply absorbs one batch into a new index version and returns a
// handle over it. The receiver keeps serving its own version.
func (m *Mutable) Apply(ops MutOps) (*Mutable, error) {
	nx, err := m.idx.ApplyOps(ops)
	if err != nil {
		return nil, err
	}
	nm := &Mutable{
		idx:        nx,
		name:       m.name,
		maxRejects: m.maxRejects,
		rng:        m.rng.Split(),
	}
	nm.stats.MuSum = nx.MuSum()
	return nm, nil
}

// Index returns the handle's immutable index version.
func (m *Mutable) Index() *MutableIndex { return m.idx }

// Name identifies the sampler in engine stats.
func (m *Mutable) Name() string { return m.name }

// Preprocess is a no-op: the index is maintained, not built in phases.
func (m *Mutable) Preprocess() error { return nil }

// Build is a no-op: the index is maintained, not built in phases.
func (m *Mutable) Build() error { return nil }

// Count is a no-op: µ is maintained incrementally.
func (m *Mutable) Count() error { return nil }

// TryNext runs one sampling trial: slot ∝ µ(r), direction by a
// cumulative scan of the per-direction counts, uniform slot within the
// direction, accept iff the candidate lies in w(r).
func (m *Mutable) TryNext() (geom.Pair, bool, error) {
	ix := m.idx
	if ix.weights == nil || ix.weights.Total() <= 0 {
		return geom.Pair{}, false, ErrEmptyJoin
	}
	m.stats.Iterations++
	slot := ix.weights.Sample(m.rng)
	r := ix.slots.Get(slot)
	w := geom.Window(r, ix.cfg.HalfExtent)
	muR := ix.weights.Get(slot)
	u := m.rng.Float64() * muR
	k := grid.KeyFor(r.X, r.Y, ix.side)
	acc := 0.0
	for d := grid.Direction(0); d < grid.NumDirections; d++ {
		mc, ok := ix.scells.Get(k.Neighbor(d))
		if !ok {
			continue
		}
		wd := float64(ix.muDirAt(mc, d, w, &m.scratch))
		if wd == 0 {
			continue
		}
		acc += wd
		if u < acc {
			s, ok := ix.sampleDirAt(mc, d, w, m.rng, &m.scratch)
			if !ok || !w.Contains(s) {
				return geom.Pair{}, false, nil
			}
			m.stats.Samples++
			return geom.Pair{R: r, S: s}, true, nil
		}
	}
	// The direction weights sum to exactly the stored µ(r) on an
	// immutable version; reaching here means u landed on the boundary
	// by rounding. Reject the trial.
	return geom.Pair{}, false, nil
}

// Next draws one uniform independent join sample under the rejection
// budget.
func (m *Mutable) Next() (geom.Pair, error) {
	var out geom.Pair
	var err error
	timed(&m.stats.SampleTime, func() {
		for attempt := 0; attempt < m.maxRejects; attempt++ {
			p, ok, terr := m.TryNext()
			if terr != nil {
				err = terr
				return
			}
			if ok {
				out = p
				return
			}
		}
		err = ErrLowAcceptance
	})
	return out, err
}

// Sample draws t samples via Next.
func (m *Mutable) Sample(t int) ([]geom.Pair, error) {
	if t < 0 {
		return nil, fmt.Errorf("core: negative sample count %d", t)
	}
	out := make([]geom.Pair, 0, t)
	for len(out) < t {
		p, err := m.Next()
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Stats reports the handle's counters; MuSum is the version's Σµ.
func (m *Mutable) Stats() Stats { return m.stats }

// SizeBytes estimates the index footprint.
func (m *Mutable) SizeBytes() int { return m.idx.SizeBytes() }

// Clone returns an independent handle over the same index version.
func (m *Mutable) Clone() (Sampler, error) {
	nm := &Mutable{
		idx:        m.idx,
		name:       m.name,
		maxRejects: m.maxRejects,
		rng:        m.rng.Split(),
	}
	nm.stats.MuSum = m.stats.MuSum
	return nm, nil
}

// Reseed reinitializes the handle's random stream.
func (m *Mutable) Reseed(seed uint64) { m.rng.Reseed(seed) }

// LivePoints materializes the live point sets (R in slot order, S in
// directory hash order) — the compaction path's input.
func (m *Mutable) LivePoints() (R, S []geom.Point) {
	ix := m.idx
	if ix.slots != nil {
		for i := 0; i < ix.slots.Len(); i++ {
			if pt := ix.slots.Get(i); !isFreeSlot(pt) {
				R = append(R, pt)
			}
		}
	}
	ix.scells.Range(func(_ grid.Key, mc *mutCell) bool {
		S = append(S, mc.cell.XSorted...)
		return true
	})
	return R, S
}

// NeedsRebase exposes the index's pathological-skew escape hatch.
func (m *Mutable) NeedsRebase() bool { return m.idx.NeedsRebase() }

// HasR and HasS report whether any live point of the side carries the
// ID — invariant probes for callers asserting deletes stuck.
func (ix *MutableIndex) HasR(id int32) bool { _, ok := ix.rids.Get(idKey(id)); return ok }
func (ix *MutableIndex) HasS(id int32) bool { _, ok := ix.sids.Get(idKey(id)); return ok }

var (
	_ Sampler  = (*Mutable)(nil)
	_ Cloner   = (*Mutable)(nil)
	_ Trial    = (*Mutable)(nil)
	_ Reseeder = (*Mutable)(nil)
)

// CheckInvariants exhaustively validates one index version against its
// own redundant state — every per-cell BBST invariant, the reverse
// indexes, the free list, and every stored µ against a recount. Test
// and race-hammer use only: O(everything).
func (ix *MutableIndex) CheckInvariants() error {
	var sc bbst.Scratch
	// S side: cells well-formed, pairs in sync, counts add up.
	sTotal := 0
	var cellErr error
	ix.scells.Range(func(k grid.Key, mc *mutCell) bool {
		c := mc.cell
		if c.Len() == 0 {
			cellErr = fmt.Errorf("empty cell (%d,%d) left in directory", k.CX, k.CY)
			return false
		}
		for _, pt := range c.XSorted {
			if grid.KeyFor(pt.X, pt.Y, ix.side) != k {
				cellErr = fmt.Errorf("cell (%d,%d) holds point ID %d of another cell", k.CX, k.CY, pt.ID)
				return false
			}
		}
		for i := 1; i < len(c.XSorted); i++ {
			if c.XSorted[i-1].X > c.XSorted[i].X {
				cellErr = fmt.Errorf("cell (%d,%d) XSorted out of order", k.CX, k.CY)
				return false
			}
		}
		for i := 1; i < len(c.YSorted); i++ {
			if c.YSorted[i-1].Y > c.YSorted[i].Y {
				cellErr = fmt.Errorf("cell (%d,%d) YSorted out of order", k.CX, k.CY)
				return false
			}
		}
		if err := mc.pair.CheckInvariants(); err != nil {
			cellErr = fmt.Errorf("cell (%d,%d): %w", k.CX, k.CY, err)
			return false
		}
		if mc.pair.NumPoints() != c.Len() {
			cellErr = fmt.Errorf("cell (%d,%d): pair holds %d points, cell %d", k.CX, k.CY, mc.pair.NumPoints(), c.Len())
			return false
		}
		sTotal += c.Len()
		return true
	})
	if cellErr != nil {
		return cellErr
	}
	if sTotal != ix.sCount {
		return fmt.Errorf("sCount %d, cells hold %d", ix.sCount, sTotal)
	}
	sidTotal := 0
	var sidErr error
	ix.sids.Range(func(k grid.Key, pts []geom.Point) bool {
		sidTotal += len(pts)
		for _, pt := range pts {
			if pt.ID != k.CX {
				sidErr = fmt.Errorf("sids list %d holds point ID %d", k.CX, pt.ID)
				return false
			}
			mc, ok := ix.scells.Get(grid.KeyFor(pt.X, pt.Y, ix.side))
			if !ok {
				sidErr = fmt.Errorf("sids point ID %d has no cell", pt.ID)
				return false
			}
			found := false
			for _, q := range mc.cell.XSorted {
				if q == pt {
					found = true
					break
				}
			}
			if !found {
				sidErr = fmt.Errorf("sids point ID %d missing from its cell", pt.ID)
				return false
			}
		}
		return true
	})
	if sidErr != nil {
		return sidErr
	}
	if sidTotal != ix.sCount {
		return fmt.Errorf("sids hold %d points, sCount %d", sidTotal, ix.sCount)
	}
	// R side: slots, free chain, weights, reverse indexes.
	nslots := 0
	if ix.slots != nil {
		nslots = ix.slots.Len()
	}
	if ix.weights != nil && ix.weights.Len() != nslots {
		return fmt.Errorf("weights len %d, slots %d", ix.weights.Len(), nslots)
	}
	live := 0
	for i := 0; i < nslots; i++ {
		pt := ix.slots.Get(i)
		if isFreeSlot(pt) {
			if w := ix.weights.Get(i); w != 0 {
				return fmt.Errorf("dead slot %d has weight %g", i, w)
			}
			continue
		}
		live++
		if got, want := ix.weights.Get(i), ix.muOf(pt, &sc); got != want {
			return fmt.Errorf("slot %d (ID %d): stored µ %g, recount %g", i, pt.ID, got, want)
		}
	}
	if live != ix.rCount {
		return fmt.Errorf("rCount %d, live slots %d", ix.rCount, live)
	}
	chain := 0
	for s := ix.freeHead; s >= 0; {
		pt := ix.slots.Get(int(s))
		if !isFreeSlot(pt) {
			return fmt.Errorf("free chain reaches live slot %d", s)
		}
		chain++
		if chain > nslots {
			return fmt.Errorf("free chain cycles")
		}
		s = pt.ID
	}
	if chain != ix.nFree {
		return fmt.Errorf("free chain length %d, nFree %d", chain, ix.nFree)
	}
	if live+ix.nFree != nslots {
		return fmt.Errorf("live %d + free %d != slots %d", live, ix.nFree, nslots)
	}
	seen := make(map[int32]struct{}, live)
	var rcErr error
	rcLive := 0
	ix.rcells.Range(func(k grid.Key, rl rlist) bool {
		n := 0
		for _, slot := range rl.slots {
			pt := ix.slots.Get(int(slot))
			if isFreeSlot(pt) || grid.KeyFor(pt.X, pt.Y, ix.side) != k {
				continue
			}
			if _, dup := seen[slot]; dup {
				rcErr = fmt.Errorf("slot %d listed twice in rcells", slot)
				return false
			}
			seen[slot] = struct{}{}
			n++
		}
		if n != int(rl.live) {
			rcErr = fmt.Errorf("cell (%d,%d): live %d, list holds %d valid", k.CX, k.CY, rl.live, n)
			return false
		}
		if n == 0 {
			rcErr = fmt.Errorf("cell (%d,%d) with no live slots left in rcells", k.CX, k.CY)
			return false
		}
		rcLive += n
		return true
	})
	if rcErr != nil {
		return rcErr
	}
	if rcLive != ix.rCount {
		return fmt.Errorf("rcells cover %d slots, rCount %d", rcLive, ix.rCount)
	}
	ridTotal := 0
	var ridErr error
	ix.rids.Range(func(k grid.Key, slots []int32) bool {
		ridTotal += len(slots)
		for _, slot := range slots {
			pt := ix.slots.Get(int(slot))
			if isFreeSlot(pt) || pt.ID != k.CX {
				ridErr = fmt.Errorf("rids list %d holds slot %d (free or wrong ID)", k.CX, slot)
				return false
			}
		}
		return true
	})
	if ridErr != nil {
		return ridErr
	}
	if ridTotal != ix.rCount {
		return fmt.Errorf("rids hold %d slots, rCount %d", ridTotal, ix.rCount)
	}
	return nil
}
