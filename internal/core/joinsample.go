package core

import (
	"repro/internal/geom"
	"repro/internal/join"
)

// JoinSample is the strawman the paper's introduction rules out: run
// the full spatial range join, materialize J, and sample from it.
// Exact and trivially uniform, but Θ(|J|) time and space — it exists
// as a correctness oracle and as the scale reference in benchmarks.
type JoinSample struct {
	*base
	joined []geom.Pair
}

// NewJoinSample builds the join-then-sample strawman over R and S.
func NewJoinSample(R, S []geom.Point, cfg Config) (*JoinSample, error) {
	b, err := newBase("JoinSample", R, S, cfg)
	if err != nil {
		return nil, err
	}
	return &JoinSample{base: b}, nil
}

// Preprocess is a no-op; the strawman has no offline structure.
func (j *JoinSample) Preprocess() error {
	if j.state < phasePreprocessed {
		j.state = phasePreprocessed
	}
	return j.err
}

// Build materializes the full join via plane sweep; its cost is the
// Θ(|J|) the sampling algorithms avoid. Timed as GM for comparison.
func (j *JoinSample) Build() error {
	if err := ensure(j, j.base, phasePreprocessed); err != nil {
		return err
	}
	if j.state >= phaseBuilt {
		return j.err
	}
	timed(&j.stats.GridMapTime, func() {
		j.joined = join.Materialize(j.R, j.S, j.cfg.HalfExtent)
	})
	j.state = phaseBuilt
	return nil
}

// Count only checks emptiness; the materialized join needs no alias.
func (j *JoinSample) Count() error {
	if err := ensure(j, j.base, phaseBuilt); err != nil {
		return err
	}
	if j.state >= phaseCounted {
		return j.err
	}
	j.stats.MuSum = float64(len(j.joined))
	if len(j.joined) == 0 {
		j.err = ErrEmptyJoin
		return j.err
	}
	j.state = phaseCounted
	return nil
}

// Next draws one uniform sample from the materialized join.
func (j *JoinSample) Next() (geom.Pair, error) {
	if err := ensure(j, j.base, phaseCounted); err != nil {
		return geom.Pair{}, err
	}
	var out geom.Pair
	var err error
	timed(&j.stats.SampleTime, func() {
		for attempt := 0; attempt < j.cfg.maxRejects(); attempt++ {
			if p, ok := j.tryOnce(); ok {
				out = p
				return
			}
		}
		err = ErrLowAcceptance
	})
	return out, err
}

// tryOnce is one sampling iteration over the materialized join.
func (j *JoinSample) tryOnce() (geom.Pair, bool) {
	j.stats.Iterations++
	p := j.joined[j.rng.Intn(len(j.joined))]
	if !j.accept(p) {
		return geom.Pair{}, false
	}
	j.stats.Samples++
	return p, true
}

// TryNext runs one sampling trial (the Trial contract). It does not
// charge SampleTime — the mixture driving it owns the draw's timing.
func (j *JoinSample) TryNext() (geom.Pair, bool, error) {
	if err := ensure(j, j.base, phaseCounted); err != nil {
		return geom.Pair{}, false, err
	}
	p, ok := j.tryOnce()
	return p, ok, nil
}

// Sample draws t samples via Next.
func (j *JoinSample) Sample(t int) ([]geom.Pair, error) { return sampleN(j, j.base, t) }

// SizeBytes reports the Θ(|J|) footprint of the materialized join.
func (j *JoinSample) SizeBytes() int { return 48 * len(j.joined) }

// JoinSize exposes |J| after Build; the harness uses it to report the
// approximation ratio Σµ/|J|.
func (j *JoinSample) JoinSize() int { return len(j.joined) }

var _ Sampler = (*JoinSample)(nil)

// Clone prepares the sampler and returns an independent handle over
// the same materialized join for concurrent sampling.
func (j *JoinSample) Clone() (Sampler, error) {
	if err := ensure(j, j.base, phaseCounted); err != nil {
		return nil, err
	}
	nb, err := j.base.cloneBase()
	if err != nil {
		return nil, err
	}
	return &JoinSample{base: nb, joined: j.joined}, nil
}
