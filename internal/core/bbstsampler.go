package core

import (
	"repro/internal/bbst"
	"repro/internal/geom"
	"repro/internal/rng"
)

// bbstCorner adapts a cell's BBST pair to the cornerIndex interface.
type bbstCorner struct {
	pair    *bbst.Pair
	scratch bbst.Scratch
}

func (b *bbstCorner) mu(c bbst.Corner, w geom.Rect) int {
	return b.pair.MuS(c, w, &b.scratch)
}

func (b *bbstCorner) sample(c bbst.Corner, w geom.Rect, r *rng.RNG) (geom.Point, bool) {
	return b.pair.SampleSlotS(c, w, r, &b.scratch)
}

func (b *bbstCorner) sizeBytes() int { return b.pair.SizeBytes() + b.pair.SizeBytesFC() }

func (b *bbstCorner) clone() cornerIndex { return &bbstCorner{pair: b.pair} }

// BBSTSampler is the paper's proposed algorithm (Section IV,
// Algorithm 1): grid mapping converts the 4-sided window into at most
// 2-sided per-cell queries; cases 1–2 are counted and sampled exactly
// via sorted arrays, and the 2-sided corners use two Bucket-based
// Binary Search Trees per cell, giving Õ(1)-approximate counting and
// Õ(1) expected-time sampling. The end-to-end expected running time
// for t samples is Õ(n + m + t) with O(n + m) space.
type BBSTSampler struct {
	gridSampler
}

// NewBBST builds the proposed sampler over R and S.
func NewBBST(R, S []geom.Point, cfg Config) (*BBSTSampler, error) {
	b, err := newBase("BBST", R, S, cfg)
	if err != nil {
		return nil, err
	}
	s := &BBSTSampler{gridSampler{base: b}}
	s.newCorner = func(cellPoints []geom.Point, m int) cornerIndex {
		cap := cfg.BucketCap
		if cap == 0 {
			cap = bbst.BucketCap(m)
		}
		pair, err := bbst.Build(cellPoints, cap)
		if err != nil {
			// Cell points come from the grid pre-sorted by x and the
			// capacity is >= 1, so Build cannot fail here.
			panic("core: bbst build failed: " + err.Error())
		}
		if cfg.FractionalCascading {
			pair.EnableFractionalCascading()
		}
		return &bbstCorner{pair: pair}
	}
	return s, nil
}

// Next draws one uniform independent join sample.
func (s *BBSTSampler) Next() (geom.Pair, error) { return s.next(s) }

// TryNext runs one sampling trial (the Trial contract).
func (s *BBSTSampler) TryNext() (geom.Pair, bool, error) { return s.tryNext(s) }

// Sample draws t samples via Next.
func (s *BBSTSampler) Sample(t int) ([]geom.Pair, error) { return sampleN(s, s.base, t) }

// SizeBytes reports the pipeline footprint.
func (s *BBSTSampler) SizeBytes() int { return s.sizeBytes() }

// Clone prepares the sampler and returns an independent handle over
// the same grid/BBST/alias structures for concurrent sampling.
func (s *BBSTSampler) Clone() (Sampler, error) {
	gs, err := s.cloneGrid(s)
	if err != nil {
		return nil, err
	}
	return &BBSTSampler{gs}, nil
}

var (
	_ Sampler = (*BBSTSampler)(nil)
	_ Cloner  = (*BBSTSampler)(nil)
	_ Trial   = (*BBSTSampler)(nil)
)
