package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/geom"
)

// Cloner is implemented by samplers that can produce an independent
// handle over the same immutable structures: the clone shares the
// grid/index/alias state (read-only after Count) but has its own
// random stream, scratch buffers, and statistics. Clones may be used
// concurrently with each other and with the parent.
type Cloner interface {
	Sampler
	// Clone prepares the sampler through Count and returns the
	// independent handle. Not supported with WithoutReplacement (the
	// duplicate filter would need cross-clone coordination).
	Clone() (Sampler, error)
}

// ErrNoParallelWithoutReplacement rejects parallel sampling when the
// duplicate filter is on.
var ErrNoParallelWithoutReplacement = errors.New(
	"core: parallel sampling is not supported with WithoutReplacement")

// cloneBase derives the shared part of a clone: same configuration
// and data, split random stream, fresh stats, already-counted state.
func (b *base) cloneBase() (*base, error) {
	if b.cfg.WithoutReplacement {
		return nil, ErrNoParallelWithoutReplacement
	}
	return &base{
		name:  b.name,
		cfg:   b.cfg,
		R:     b.R,
		S:     b.S,
		rng:   b.rng.Split(),
		state: b.state,
		err:   b.err,
	}, nil
}

// ParallelSample draws t uniform independent join samples using the
// given number of worker goroutines, each on its own clone. Output
// order interleaves worker outputs deterministically (worker-major),
// and every sample remains uniform and independent because the worker
// streams are independent splits of the parent stream.
func ParallelSample(s Cloner, t, workers int) ([]geom.Pair, error) {
	if t < 0 {
		return nil, fmt.Errorf("core: negative sample count %d", t)
	}
	if workers < 1 {
		return nil, fmt.Errorf("core: need at least one worker, got %d", workers)
	}
	if workers > t {
		workers = t
	}
	if t == 0 {
		return nil, nil
	}
	// Prepare the shared structures once, in the parent.
	clones := make([]Sampler, workers)
	for i := range clones {
		c, err := s.Clone()
		if err != nil {
			return nil, err
		}
		clones[i] = c
	}
	type result struct {
		pairs []geom.Pair
		err   error
	}
	results := make([]result, workers)
	per := t / workers
	extra := t % workers
	var wg sync.WaitGroup
	for i := range clones {
		quota := per
		if i < extra {
			quota++
		}
		wg.Add(1)
		go func(i, quota int) {
			defer wg.Done()
			pairs, err := clones[i].Sample(quota)
			results[i] = result{pairs: pairs, err: err}
		}(i, quota)
	}
	wg.Wait()
	out := make([]geom.Pair, 0, t)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.pairs...)
	}
	return out, nil
}
