package core

import (
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rng"
)

func mustUnfreeze(t *testing.T, R, S []geom.Point, cfg Config) *Mutable {
	t.Helper()
	s, err := NewBBST(R, S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Count(); err != nil {
		t.Fatal(err)
	}
	m, err := s.Unfreeze()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUnfreezeMatchesFrozen(t *testing.T) {
	r := rng.New(1)
	l := 6.0
	R := randomPoints(r, 120, 100, 0)
	S := randomPoints(r, 150, 100, 10000)
	s, err := NewBBST(R, S, Config{HalfExtent: l, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Count(); err != nil {
		t.Fatal(err)
	}
	m, err := s.Unfreeze()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Stats().MuSum, s.Stats().MuSum; got != want {
		t.Fatalf("MuSum after unfreeze %g, frozen %g", got, want)
	}
	if err := m.Index().CheckInvariants(); err != nil {
		t.Fatalf("invariants after unfreeze: %v", err)
	}
	// The frozen sampler must keep answering after mutations of the
	// unfrozen line (cells are cloned copy-on-write before edits).
	nm, err := m.Apply(MutOps{DelS: []int32{S[0].ID, S[1].ID}, InsS: randomPoints(r, 5, 100, 20000)})
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.Index().CheckInvariants(); err != nil {
		t.Fatalf("invariants after apply: %v", err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatalf("frozen sampler broken by unfrozen mutations: %v", err)
	}
}

// drawLive verifies n draws all land in the exact live join and
// returns the per-pair counts.
func drawLive(t *testing.T, m *Mutable, R, S []geom.Point, l float64, n int) map[string]int {
	t.Helper()
	livePairs := make(map[string]bool)
	join.BruteForce(R, S, l, func(r, s geom.Point) bool {
		livePairs[pairID(geom.Pair{R: r, S: s})] = true
		return true
	})
	if len(livePairs) == 0 {
		t.Fatal("test setup: empty live join")
	}
	counts := make(map[string]int, len(livePairs))
	for i := 0; i < n; i++ {
		p, err := m.Next()
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		id := pairID(p)
		if !livePairs[id] {
			t.Fatalf("draw %d: pair %s is not in the live join", i, id)
		}
		counts[id]++
	}
	return counts
}

func TestMutableChurnVsOracle(t *testing.T) {
	r := rng.New(2)
	l := 7.0
	R := randomPoints(r, 100, 100, 0)
	S := randomPoints(r, 120, 100, 10000)
	m := mustUnfreeze(t, R, S, Config{HalfExtent: l, Seed: 3})

	liveR := append([]geom.Point(nil), R...)
	liveS := append([]geom.Point(nil), S...)
	nextID := int32(50000)
	for batch := 0; batch < 60; batch++ {
		var ops MutOps
		// Deletes: up to 3 per side, drawn from the live sets.
		for k := 0; k < 3 && len(liveR) > 20; k++ {
			i := r.Intn(len(liveR))
			ops.DelR = append(ops.DelR, liveR[i].ID)
			liveR = append(liveR[:i], liveR[i+1:]...)
		}
		for k := 0; k < 3 && len(liveS) > 20; k++ {
			i := r.Intn(len(liveS))
			ops.DelS = append(ops.DelS, liveS[i].ID)
			liveS = append(liveS[:i], liveS[i+1:]...)
		}
		// Inserts: up to 4 per side.
		for k := 0; k < 2+r.Intn(3); k++ {
			p := geom.Point{X: r.Range(0, 100), Y: r.Range(0, 100), ID: nextID}
			nextID++
			ops.InsR = append(ops.InsR, p)
			liveR = append(liveR, p)
		}
		for k := 0; k < 2+r.Intn(3); k++ {
			p := geom.Point{X: r.Range(0, 100), Y: r.Range(0, 100), ID: nextID}
			nextID++
			ops.InsS = append(ops.InsS, p)
			liveS = append(liveS, p)
		}
		nm, err := m.Apply(ops)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		m = nm
		if batch%10 == 0 {
			if err := m.Index().CheckInvariants(); err != nil {
				t.Fatalf("batch %d: %v", batch, err)
			}
		}
	}
	if err := m.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nr, ns := m.Index().NumR(), m.Index().NumS(); nr != len(liveR) || ns != len(liveS) {
		t.Fatalf("live counts (%d,%d), oracle (%d,%d)", nr, ns, len(liveR), len(liveS))
	}
	// Materialized sets must match the oracle as multisets.
	gotR, gotS := m.LivePoints()
	if len(gotR) != len(liveR) || len(gotS) != len(liveS) {
		t.Fatalf("LivePoints (%d,%d), oracle (%d,%d)", len(gotR), len(gotS), len(liveR), len(liveS))
	}
	wantR := make(map[geom.Point]int)
	for _, p := range liveR {
		wantR[p]++
	}
	for _, p := range gotR {
		wantR[p]--
		if wantR[p] < 0 {
			t.Fatalf("unexpected live R point %+v", p)
		}
	}
	// MuSum must upper-bound the exact live join size.
	jsize := float64(join.Size(liveR, liveS, l))
	if m.Stats().MuSum < jsize {
		t.Fatalf("MuSum %g below exact join size %g", m.Stats().MuSum, jsize)
	}
	// Every draw lands in the live join, and coverage is broad.
	m.Reseed(77)
	counts := drawLive(t, m, liveR, liveS, l, 30000)
	jint := int(jsize)
	if len(counts) < jint*7/10 {
		t.Fatalf("draws covered %d of %d live pairs", len(counts), jint)
	}
}

func TestMutableUniformityAfterChurn(t *testing.T) {
	r := rng.New(4)
	l := 10.0
	R := randomPoints(r, 40, 60, 0)
	S := randomPoints(r, 50, 60, 10000)
	m := mustUnfreeze(t, R, S, Config{HalfExtent: l, Seed: 8})
	liveR, liveS := append([]geom.Point(nil), R...), append([]geom.Point(nil), S...)
	nextID := int32(90000)
	for batch := 0; batch < 40; batch++ {
		var ops MutOps
		if len(liveS) > 15 {
			i := r.Intn(len(liveS))
			ops.DelS = append(ops.DelS, liveS[i].ID)
			liveS = append(liveS[:i], liveS[i+1:]...)
		}
		if len(liveR) > 15 {
			i := r.Intn(len(liveR))
			ops.DelR = append(ops.DelR, liveR[i].ID)
			liveR = append(liveR[:i], liveR[i+1:]...)
		}
		pR := geom.Point{X: r.Range(0, 60), Y: r.Range(0, 60), ID: nextID}
		pS := geom.Point{X: r.Range(0, 60), Y: r.Range(0, 60), ID: nextID + 1}
		nextID += 2
		ops.InsR = append(ops.InsR, pR)
		ops.InsS = append(ops.InsS, pS)
		liveR = append(liveR, pR)
		liveS = append(liveS, pS)
		var err error
		m, err = m.Apply(ops)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
	jsize := int(join.Size(liveR, liveS, l))
	if jsize < 50 {
		t.Skipf("join too small for a chi-square (%d pairs)", jsize)
	}
	draws := 200 * jsize
	if draws > 400000 {
		draws = 400000
	}
	m.Reseed(123)
	counts := drawLive(t, m, liveR, liveS, l, draws)
	expected := float64(draws) / float64(jsize)
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// Pairs never drawn contribute expected each.
	chi2 += float64(jsize-len(counts)) * expected
	dof := float64(jsize - 1)
	if chi2 > 2*dof+100 {
		t.Fatalf("chi2 %.1f over %0.f dof — draws not uniform after churn", chi2, dof)
	}
}

func TestMutableEqualSeedDeterminism(t *testing.T) {
	build := func() *Mutable {
		r := rng.New(5)
		R := randomPoints(r, 80, 80, 0)
		S := randomPoints(r, 90, 80, 10000)
		m := mustUnfreeze(t, R, S, Config{HalfExtent: 8, Seed: 21})
		for batch := 0; batch < 20; batch++ {
			ops := MutOps{
				InsR: randomPoints(r, 2, 80, 20000+int32(batch)*10),
				InsS: randomPoints(r, 2, 80, 30000+int32(batch)*10),
				DelR: []int32{int32(batch)},
				DelS: []int32{10000 + int32(batch)},
			}
			var err error
			m, err = m.Apply(ops)
			if err != nil {
				t.Fatal(err)
			}
		}
		m.Reseed(99)
		return m
	}
	a, b := build(), build()
	for i := 0; i < 500; i++ {
		pa, errA := a.Next()
		pb, errB := b.Next()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("draw %d: error mismatch %v vs %v", i, errA, errB)
		}
		if pa != pb {
			t.Fatalf("draw %d: %+v vs %+v — equal seeds diverged", i, pa, pb)
		}
	}
}

func TestMutableVersionIsolation(t *testing.T) {
	r := rng.New(6)
	l := 8.0
	R := randomPoints(r, 70, 70, 0)
	S := randomPoints(r, 80, 70, 10000)
	old := mustUnfreeze(t, R, S, Config{HalfExtent: l, Seed: 31})
	oldMu := old.Stats().MuSum

	cur := old
	for batch := 0; batch < 30; batch++ {
		var err error
		cur, err = cur.Apply(MutOps{
			InsS: randomPoints(r, 3, 70, 40000+int32(batch)*10),
			DelS: []int32{10000 + int32(batch)},
			InsR: randomPoints(r, 2, 70, 50000+int32(batch)*10),
			DelR: []int32{int32(batch)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// The old version still validates and still answers only from the
	// ORIGINAL point sets.
	if err := old.Index().CheckInvariants(); err != nil {
		t.Fatalf("old version corrupted by later applies: %v", err)
	}
	if got := old.Stats().MuSum; got != oldMu {
		t.Fatalf("old version MuSum drifted: %g vs %g", got, oldMu)
	}
	old.Reseed(7)
	drawLive(t, old, R, S, l, 3000)
}

func TestMutableDrainAndRefill(t *testing.T) {
	r := rng.New(7)
	R := randomPoints(r, 30, 40, 0)
	S := randomPoints(r, 30, 40, 10000)
	m := mustUnfreeze(t, R, S, Config{HalfExtent: 20, Seed: 1})
	// Drain R entirely.
	var ops MutOps
	for _, p := range R {
		ops.DelR = append(ops.DelR, p.ID)
	}
	m, err := m.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().MuSum != 0 {
		t.Fatalf("MuSum %g after draining R", m.Stats().MuSum)
	}
	if _, _, err := m.TryNext(); !errors.Is(err, ErrEmptyJoin) {
		t.Fatalf("TryNext on drained index: %v", err)
	}
	// Refill: slots must be reused, not appended.
	before := m.Index().slots.Len()
	m, err = m.Apply(MutOps{InsR: randomPoints(r, len(R), 40, 60000)})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Index().slots.Len(); got != before {
		t.Fatalf("slot array grew %d -> %d despite %d free slots", before, got, len(R))
	}
	if err := m.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.Reseed(5)
	if _, err := m.Next(); err != nil {
		t.Fatalf("draw after refill: %v", err)
	}
}

func TestMutableNeedsRebase(t *testing.T) {
	r := rng.New(8)
	R := randomPoints(r, 40, 50, 0)
	S := randomPoints(r, 40, 50, 10000)
	m := mustUnfreeze(t, R, S, Config{HalfExtent: 10, Seed: 2})
	if m.NeedsRebase() {
		t.Fatal("fresh index claims rebase")
	}
	// Balanced churn never trips the hatch.
	for batch := 0; batch < 20; batch++ {
		var err error
		m, err = m.Apply(MutOps{
			InsS: randomPoints(r, 1, 50, 70000+int32(batch)),
			DelS: []int32{10000 + int32(batch)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.NeedsRebase() {
			t.Fatalf("balanced churn tripped the hatch at batch %d", batch)
		}
	}
	// 8x growth does.
	var err error
	m, err = m.Apply(MutOps{InsS: randomPoints(r, 40*rebaseDriftFactor, 50, 80000)})
	if err != nil {
		t.Fatal(err)
	}
	if !m.NeedsRebase() {
		t.Fatal("8x S growth did not trip the hatch")
	}
}

func TestMutableCloneIndependence(t *testing.T) {
	r := rng.New(9)
	R := randomPoints(r, 60, 60, 0)
	S := randomPoints(r, 60, 60, 10000)
	m := mustUnfreeze(t, R, S, Config{HalfExtent: 10, Seed: 13})
	c1, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Clones share structures but draw independent streams.
	p1, err1 := c1.Next()
	p2, err2 := c2.Next()
	if err1 != nil || err2 != nil {
		t.Fatalf("clone draws: %v, %v", err1, err2)
	}
	_ = p1
	_ = p2
	// Reseeding both identically makes them agree.
	c1.(*Mutable).Reseed(42)
	c2.(*Mutable).Reseed(42)
	for i := 0; i < 100; i++ {
		q1, e1 := c1.Next()
		q2, e2 := c2.Next()
		if e1 != nil || e2 != nil || q1 != q2 {
			t.Fatalf("reseeded clones diverged at %d", i)
		}
	}
}

func TestPvecBasics(t *testing.T) {
	r := rng.New(10)
	var versions []*pvec
	var oracles [][]geom.Point
	v := &pvec{}
	var oracle []geom.Point
	for i := 0; i < 300; i++ {
		if i%3 == 2 && v.Len() > 0 {
			j := r.Intn(v.Len())
			pt := geom.Point{X: float64(i), Y: 1, ID: int32(i)}
			v = v.Set(j, pt)
			oracle[j] = pt
		} else {
			pt := geom.Point{X: float64(i), ID: int32(i)}
			v = v.Append(pt)
			oracle = append(oracle, pt)
		}
		if i%50 == 0 {
			versions = append(versions, v)
			oracles = append(oracles, append([]geom.Point(nil), oracle...))
		}
	}
	check := func(v *pvec, want []geom.Point) {
		t.Helper()
		if v.Len() != len(want) {
			t.Fatalf("len %d, want %d", v.Len(), len(want))
		}
		for i, w := range want {
			if got := v.Get(i); got != w {
				t.Fatalf("slot %d: %+v, want %+v", i, got, w)
			}
		}
	}
	check(v, oracle)
	for i := range versions {
		check(versions[i], oracles[i])
	}
	// Bulk build agrees with append-built.
	bulk := newPvec(oracle)
	check(bulk, oracle)
}
