package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/join"
	"repro/internal/rng"
)

func randomPoints(r *rng.RNG, n int, extent float64, base int32) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, extent), Y: r.Range(0, extent), ID: base + int32(i)}
	}
	return pts
}

// clustered generates a skewed point set (Gaussian blobs) to stress
// non-uniform densities.
func clustered(r *rng.RNG, n int, extent float64, base int32) []geom.Point {
	centers := make([]geom.Point, 5)
	for i := range centers {
		centers[i] = geom.Point{X: r.Range(0, extent), Y: r.Range(0, extent)}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[r.Intn(len(centers))]
		pts[i] = geom.Point{
			X:  math.Mod(math.Abs(c.X+r.NormFloat64()*extent/20), extent),
			Y:  math.Mod(math.Abs(c.Y+r.NormFloat64()*extent/20), extent),
			ID: base + int32(i),
		}
	}
	return pts
}

type factory struct {
	name string
	make func(R, S []geom.Point, cfg Config) (Sampler, error)
}

func allFactories() []factory {
	return []factory{
		{"KDS", func(R, S []geom.Point, cfg Config) (Sampler, error) { return NewKDS(R, S, cfg) }},
		{"KDS-rejection", func(R, S []geom.Point, cfg Config) (Sampler, error) { return NewKDSRejection(R, S, cfg) }},
		{"BBST", func(R, S []geom.Point, cfg Config) (Sampler, error) { return NewBBST(R, S, cfg) }},
		{"GridKD", func(R, S []geom.Point, cfg Config) (Sampler, error) { return NewGridKD(R, S, cfg) }},
		{"RTS", func(R, S []geom.Point, cfg Config) (Sampler, error) { return NewRTS(R, S, cfg) }},
		{"JoinSample", func(R, S []geom.Point, cfg Config) (Sampler, error) { return NewJoinSample(R, S, cfg) }},
	}
}

func pairID(p geom.Pair) string { return fmt.Sprintf("%d|%d", p.R.ID, p.S.ID) }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{HalfExtent: 0},
		{HalfExtent: -1},
		{HalfExtent: math.NaN()},
		{HalfExtent: math.Inf(1)},
		{HalfExtent: 1, MaxRejects: -3},
	}
	for _, cfg := range bad {
		for _, f := range allFactories() {
			if _, err := f.make(nil, nil, cfg); err == nil {
				t.Errorf("%s accepted invalid config %+v", f.name, cfg)
			}
		}
	}
}

func TestSamplesSatisfyPredicate(t *testing.T) {
	r := rng.New(1)
	R := randomPoints(r, 200, 50, 0)
	S := randomPoints(r, 250, 50, 10000)
	const l = 4.0
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.make(R, S, Config{HalfExtent: l, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			pairs, err := s.Sample(2000)
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != 2000 {
				t.Fatalf("got %d samples", len(pairs))
			}
			for _, p := range pairs {
				if !geom.InWindow(p.R, p.S, l) {
					t.Fatalf("invalid pair %v", p)
				}
				if p.R.ID >= 10000 || p.S.ID < 10000 {
					t.Fatalf("pair sides swapped: %v", p)
				}
			}
			st := s.Stats()
			if st.Samples != 2000 {
				t.Errorf("Stats.Samples = %d", st.Samples)
			}
			if st.Iterations < st.Samples {
				t.Errorf("Iterations %d < Samples %d", st.Iterations, st.Samples)
			}
			if s.SizeBytes() <= 0 {
				t.Errorf("SizeBytes = %d", s.SizeBytes())
			}
		})
	}
}

// TestUniformity is the correctness core: enumerate J exactly on a
// small instance and chi-square test each sampler's empirical pair
// distribution against uniform.
func TestUniformity(t *testing.T) {
	r := rng.New(2)
	R := randomPoints(r, 25, 12, 0)
	S := randomPoints(r, 25, 12, 10000)
	const l = 3.0
	joined := join.Materialize(R, S, l)
	if len(joined) < 20 || len(joined) > 400 {
		t.Fatalf("test setup: |J| = %d not in a good range", len(joined))
	}
	jset := map[string]bool{}
	for _, p := range joined {
		jset[pairID(p)] = true
	}
	const draws = 120000
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.make(R, S, Config{HalfExtent: l, Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			counts := map[string]int{}
			pairs, err := s.Sample(draws)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pairs {
				k := pairID(p)
				if !jset[k] {
					t.Fatalf("sampled pair %s not in J", k)
				}
				counts[k]++
			}
			expected := float64(draws) / float64(len(joined))
			chi2 := 0.0
			for k := range jset {
				d := float64(counts[k]) - expected
				chi2 += d * d / expected
			}
			dof := float64(len(joined) - 1)
			// p=0.001-ish bound: dof + 4*sqrt(2*dof) covers far beyond
			// the 99.9th percentile for dof >= 20.
			limit := dof + 4*math.Sqrt(2*dof) + 10
			if chi2 > limit {
				t.Fatalf("distribution skewed: chi2 = %.1f > %.1f (dof %g)", chi2, limit, dof)
			}
		})
	}
}

// TestUniformityClustered repeats the uniformity test on a heavily
// skewed instance where grid cells have very different densities.
func TestUniformityClustered(t *testing.T) {
	r := rng.New(3)
	R := clustered(r, 30, 20, 0)
	S := clustered(r, 30, 20, 10000)
	const l = 2.5
	joined := join.Materialize(R, S, l)
	if len(joined) < 10 {
		t.Fatalf("setup: |J| = %d too small", len(joined))
	}
	jset := map[string]bool{}
	for _, p := range joined {
		jset[pairID(p)] = true
	}
	const draws = 100000
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.make(R, S, Config{HalfExtent: l, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			counts := map[string]int{}
			pairs, err := s.Sample(draws)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pairs {
				k := pairID(p)
				if !jset[k] {
					t.Fatalf("sampled pair %s not in J", k)
				}
				counts[k]++
			}
			expected := float64(draws) / float64(len(joined))
			chi2 := 0.0
			for k := range jset {
				d := float64(counts[k]) - expected
				chi2 += d * d / expected
			}
			dof := float64(len(joined) - 1)
			limit := dof + 4*math.Sqrt(2*dof) + 10
			if chi2 > limit {
				t.Fatalf("distribution skewed: chi2 = %.1f > %.1f (dof %g)", chi2, limit, dof)
			}
		})
	}
}

// TestIndependence checks first-lag serial correlation of sample
// indices: consecutive samples must not be correlated.
func TestIndependence(t *testing.T) {
	r := rng.New(4)
	R := randomPoints(r, 40, 15, 0)
	S := randomPoints(r, 40, 15, 10000)
	const l = 3.0
	joined := join.Materialize(R, S, l)
	if len(joined) < 30 {
		t.Fatalf("setup: |J| = %d", len(joined))
	}
	index := map[string]int{}
	for i, p := range joined {
		index[pairID(p)] = i
	}
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.make(R, S, Config{HalfExtent: l, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			const draws = 50000
			pairs, err := s.Sample(draws)
			if err != nil {
				t.Fatal(err)
			}
			xs := make([]float64, len(pairs))
			for i, p := range pairs {
				xs[i] = float64(index[pairID(p)])
			}
			mean, varSum := 0.0, 0.0
			for _, x := range xs {
				mean += x
			}
			mean /= float64(len(xs))
			cov := 0.0
			for i := range xs {
				varSum += (xs[i] - mean) * (xs[i] - mean)
				if i > 0 {
					cov += (xs[i] - mean) * (xs[i-1] - mean)
				}
			}
			corr := cov / varSum
			// Under independence corr ~ N(0, 1/draws): |corr| beyond
			// 5/sqrt(draws) is a real signal.
			if math.Abs(corr) > 5/math.Sqrt(draws) {
				t.Fatalf("serial correlation %g too high", corr)
			}
		})
	}
}

func TestDeterministicBySeed(t *testing.T) {
	r := rng.New(5)
	R := randomPoints(r, 100, 30, 0)
	S := randomPoints(r, 100, 30, 10000)
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			run := func() []geom.Pair {
				s, err := f.make(R, S, Config{HalfExtent: 5, Seed: 1234})
				if err != nil {
					t.Fatal(err)
				}
				out, err := s.Sample(200)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("sample %d differs across equal-seed runs", i)
				}
			}
		})
	}
}

func TestEmptyJoin(t *testing.T) {
	R := []geom.Point{{X: 0, Y: 0, ID: 1}}
	S := []geom.Point{{X: 1000, Y: 1000, ID: 2}}
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.make(R, S, Config{HalfExtent: 1, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Next(); !errors.Is(err, ErrEmptyJoin) {
				t.Fatalf("Next err = %v, want ErrEmptyJoin", err)
			}
			// Error is sticky.
			if _, err := s.Sample(5); !errors.Is(err, ErrEmptyJoin) {
				t.Fatalf("Sample err = %v, want ErrEmptyJoin", err)
			}
		})
	}
}

func TestEmptyInputs(t *testing.T) {
	r := rng.New(6)
	S := randomPoints(r, 10, 10, 0)
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			for _, io := range [][2][]geom.Point{{nil, S}, {S, nil}, {nil, nil}} {
				s, err := f.make(io[0], io[1], Config{HalfExtent: 1, Seed: 1})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Next(); !errors.Is(err, ErrEmptyJoin) {
					t.Fatalf("Next err = %v, want ErrEmptyJoin", err)
				}
			}
		})
	}
}

func TestWithoutReplacement(t *testing.T) {
	r := rng.New(7)
	R := randomPoints(r, 20, 10, 0)
	S := randomPoints(r, 20, 10, 10000)
	const l = 3.0
	jSize := int(join.Size(R, S, l))
	if jSize < 10 {
		t.Fatalf("setup: |J| = %d", jSize)
	}
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.make(R, S, Config{HalfExtent: l, Seed: 3, WithoutReplacement: true, MaxRejects: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			// Ask for more than |J|: must return exactly |J| distinct pairs.
			pairs, err := s.Sample(jSize + 50)
			if err != nil && !errors.Is(err, ErrLowAcceptance) {
				t.Fatal(err)
			}
			if len(pairs) != jSize {
				t.Fatalf("got %d distinct pairs, want %d", len(pairs), jSize)
			}
			seen := map[string]bool{}
			for _, p := range pairs {
				k := pairID(p)
				if seen[k] {
					t.Fatalf("duplicate pair %s", k)
				}
				seen[k] = true
			}
		})
	}
}

func TestExplicitPhases(t *testing.T) {
	r := rng.New(8)
	R := randomPoints(r, 300, 40, 0)
	S := randomPoints(r, 300, 40, 10000)
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.make(R, S, Config{HalfExtent: 4, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Preprocess(); err != nil {
				t.Fatal(err)
			}
			if err := s.Build(); err != nil {
				t.Fatal(err)
			}
			if err := s.Count(); err != nil {
				t.Fatal(err)
			}
			// Phases are idempotent.
			if err := s.Preprocess(); err != nil {
				t.Fatal(err)
			}
			if err := s.Count(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Next(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Total() <= 0 {
				t.Error("Total time should be positive")
			}
			if st.MuSum <= 0 {
				t.Error("MuSum should be positive")
			}
		})
	}
}

// TestMuSumUpperBoundsJoinSize: Σµ >= |J| for every algorithm, and
// the BBST bound is tighter than KDS-rejection's (the paper's §V-B
// accuracy claim, qualitatively).
func TestMuSumUpperBoundsJoinSize(t *testing.T) {
	r := rng.New(9)
	R := clustered(r, 500, 100, 0)
	S := clustered(r, 500, 100, 10000)
	const l = 6.0
	jSize := float64(join.Size(R, S, l))
	if jSize == 0 {
		t.Fatal("setup: empty join")
	}
	muOf := func(f factory) float64 {
		s, err := f.make(R, S, Config{HalfExtent: l, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Count(); err != nil {
			t.Fatal(err)
		}
		return s.Stats().MuSum
	}
	fs := allFactories()
	kdsMu := muOf(fs[0])  // exact counting: MuSum == |J|
	rejMu := muOf(fs[1])  // loose grid bound
	bbstMu := muOf(fs[2]) // tight hybrid bound
	if math.Abs(kdsMu-jSize) > 1e-6 {
		t.Errorf("KDS MuSum = %g, want |J| = %g", kdsMu, jSize)
	}
	if bbstMu < jSize {
		t.Errorf("BBST MuSum %g below |J| %g", bbstMu, jSize)
	}
	if rejMu < jSize {
		t.Errorf("KDS-rejection MuSum %g below |J| %g", rejMu, jSize)
	}
	if bbstMu > rejMu {
		t.Errorf("BBST bound %g looser than grid bound %g", bbstMu, rejMu)
	}
	// §V-B reports ratios 1.04–1.19 on real data; accept anything
	// clearly better than the crude bound.
	if ratio := bbstMu / jSize; ratio > 3 {
		t.Errorf("BBST approximation ratio %g unexpectedly poor", ratio)
	}
}

// TestIterationEfficiency mirrors Table IV: KDS needs exactly t
// iterations; BBST needs only slightly more; KDS-rejection needs the
// most.
func TestIterationEfficiency(t *testing.T) {
	r := rng.New(10)
	R := clustered(r, 800, 100, 0)
	S := clustered(r, 800, 100, 10000)
	const l, draws = 5.0, 5000
	iters := map[string]uint64{}
	for _, f := range allFactories()[:3] { // KDS, KDS-rejection, BBST
		s, err := f.make(R, S, Config{HalfExtent: l, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Sample(draws); err != nil {
			t.Fatal(err)
		}
		iters[f.name] = s.Stats().Iterations
	}
	if iters["KDS"] != draws {
		t.Errorf("KDS iterations = %d, want %d", iters["KDS"], draws)
	}
	if iters["BBST"] > iters["KDS-rejection"] {
		t.Errorf("BBST iterations %d exceed KDS-rejection's %d", iters["BBST"], iters["KDS-rejection"])
	}
	if float64(iters["BBST"]) > 3*draws {
		t.Errorf("BBST iterations %d too many for %d draws", iters["BBST"], draws)
	}
}

func TestNegativeSampleCount(t *testing.T) {
	s, err := NewBBST(nil, nil, Config{HalfExtent: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(-1); err == nil {
		t.Fatal("negative t should error")
	}
}

func TestSampleZero(t *testing.T) {
	r := rng.New(11)
	R := randomPoints(r, 10, 10, 0)
	S := randomPoints(r, 10, 10, 100)
	s, err := NewBBST(R, S, Config{HalfExtent: 5})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Sample(0)
	if err != nil || len(out) != 0 {
		t.Fatalf("Sample(0) = (%d, %v)", len(out), err)
	}
}

// TestProgressive verifies Definition 2's t = ∞ remark: samples can be
// drawn one at a time indefinitely.
func TestProgressive(t *testing.T) {
	r := rng.New(12)
	R := randomPoints(r, 50, 20, 0)
	S := randomPoints(r, 50, 20, 10000)
	s, err := NewBBST(R, S, Config{HalfExtent: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
	}
	if got := s.Stats().Samples; got != 1000 {
		t.Fatalf("Samples = %d", got)
	}
}

func TestRejectionBudget(t *testing.T) {
	// A single R point whose corner bucket matches by bounding box but
	// contains no in-window point: µ > 0 yet J = ∅, so sampling must
	// hit the budget rather than loop forever.
	R := []geom.Point{{X: 10.0, Y: 10.0, ID: 1}}
	// Points in the SW corner cell whose bucket summary overlaps the
	// window but which individually miss it: (x >= xmin, y < ymin) and
	// (x < xmin, y >= ymin).
	S := []geom.Point{
		{X: 9.5, Y: 8.9, ID: 2}, // x in window band, y below
		{X: 8.9, Y: 9.5, ID: 3}, // y in window band, x left
	}
	s, err := NewBBST(R, S, Config{HalfExtent: 1, Seed: 1, MaxRejects: 4096})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Next()
	if !errors.Is(err, ErrLowAcceptance) && !errors.Is(err, ErrEmptyJoin) {
		t.Fatalf("err = %v, want budget/empty error", err)
	}
}

func TestStatsPhaseAttribution(t *testing.T) {
	r := rng.New(13)
	R := randomPoints(r, 2000, 100, 0)
	S := randomPoints(r, 2000, 100, 100000)
	s, err := NewBBST(R, S, Config{HalfExtent: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Preprocess(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.GridMapTime != 0 || st.UpperBoundTime != 0 || st.SampleTime != 0 {
		t.Error("later phases should have zero time before running")
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().GridMapTime <= 0 {
		t.Error("GridMapTime should be positive after Build")
	}
	if err := s.Count(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().UpperBoundTime <= 0 {
		t.Error("UpperBoundTime should be positive after Count")
	}
	if _, err := s.Sample(100); err != nil {
		t.Fatal(err)
	}
	if s.Stats().SampleTime <= 0 {
		t.Error("SampleTime should be positive after sampling")
	}
}

func TestJoinSampleJoinSize(t *testing.T) {
	r := rng.New(14)
	R := randomPoints(r, 60, 20, 0)
	S := randomPoints(r, 60, 20, 10000)
	const l = 4.0
	js, err := NewJoinSample(R, S, Config{HalfExtent: l})
	if err != nil {
		t.Fatal(err)
	}
	if err := js.Build(); err != nil {
		t.Fatal(err)
	}
	if got, want := js.JoinSize(), int(join.Size(R, S, l)); got != want {
		t.Fatalf("JoinSize = %d, want %d", got, want)
	}
}

// TestBBSTFractionalCascadingEquivalent: the FC-enabled BBST sampler
// must be statistically identical to the plain one — same MuSum, same
// uniformity — since the decomposition is semantically unchanged.
func TestBBSTFractionalCascadingEquivalent(t *testing.T) {
	r := rng.New(30)
	R := clustered(r, 400, 50, 0)
	S := clustered(r, 400, 50, 10000)
	const l = 4.0
	plain, err := NewBBST(R, S, Config{HalfExtent: l, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewBBST(R, S, Config{HalfExtent: l, Seed: 5, FractionalCascading: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Count(); err != nil {
		t.Fatal(err)
	}
	if err := fc.Count(); err != nil {
		t.Fatal(err)
	}
	if plain.Stats().MuSum != fc.Stats().MuSum {
		t.Fatalf("MuSum differs: plain %g, fc %g", plain.Stats().MuSum, fc.Stats().MuSum)
	}
	// Same seed, same decomposition semantics => identical samples.
	a, err := plain.Sample(2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fc.Sample(2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if fc.SizeBytes() <= plain.SizeBytes() {
		t.Error("FC sampler should report extra bridge memory")
	}
}

// TestBBSTFractionalCascadingUniform runs the chi-square uniformity
// check against an enumerated join with FC enabled.
func TestBBSTFractionalCascadingUniform(t *testing.T) {
	r := rng.New(31)
	R := randomPoints(r, 25, 12, 0)
	S := randomPoints(r, 25, 12, 10000)
	const l = 3.0
	joined := join.Materialize(R, S, l)
	if len(joined) < 15 {
		t.Fatalf("setup: |J| = %d", len(joined))
	}
	jset := map[string]bool{}
	for _, p := range joined {
		jset[pairID(p)] = true
	}
	s, err := NewBBST(R, S, Config{HalfExtent: l, Seed: 9, FractionalCascading: true})
	if err != nil {
		t.Fatal(err)
	}
	const draws = 80000
	pairs, err := s.Sample(draws)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, p := range pairs {
		k := pairID(p)
		if !jset[k] {
			t.Fatalf("pair %s not in J", k)
		}
		counts[k]++
	}
	expected := float64(draws) / float64(len(joined))
	chi2 := 0.0
	for k := range jset {
		d := float64(counts[k]) - expected
		chi2 += d * d / expected
	}
	dof := float64(len(joined) - 1)
	if limit := dof + 4*math.Sqrt(2*dof) + 10; chi2 > limit {
		t.Fatalf("FC sampler skewed: chi2 = %.1f > %.1f", chi2, limit)
	}
}

func TestKDSStringer(t *testing.T) {
	s, err := NewKDS(nil, nil, Config{HalfExtent: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got == "" {
		t.Fatal("String should not be empty")
	}
}

func TestCloneOfEmptyJoinFails(t *testing.T) {
	R := []geom.Point{{X: 0, Y: 0, ID: 1}}
	S := []geom.Point{{X: 5000, Y: 5000, ID: 2}}
	for name, s := range cloners(R, S, Config{HalfExtent: 1, Seed: 1}) {
		if _, err := s.Clone(); !errors.Is(err, ErrEmptyJoin) {
			t.Errorf("%s: Clone err = %v, want ErrEmptyJoin", name, err)
		}
	}
}

func TestCloneAutoPreparesParent(t *testing.T) {
	r := rng.New(40)
	R := randomPoints(r, 100, 20, 0)
	S := randomPoints(r, 100, 20, 10000)
	s, err := NewBBST(R, S, Config{HalfExtent: 5, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	// Clone before any explicit phase call: it must run the phases.
	c, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	// Parent remains usable too.
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
}

func TestKDSRejectionAcceptanceBound(t *testing.T) {
	// The rejection baseline's acceptance probability is |J|/Σµ; with
	// uniform data and l covering ~1 cell the 9-cell bound is ~9x
	// loose, so iterations/samples should sit well above 1 but below
	// the rejection budget.
	r := rng.New(42)
	R := randomPoints(r, 2000, 100, 0)
	S := randomPoints(r, 2000, 100, 10000)
	s, err := NewKDSRejection(R, S, Config{HalfExtent: 5, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	const draws = 2000
	if _, err := s.Sample(draws); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	ratio := float64(st.Iterations) / float64(draws)
	if ratio < 1 {
		t.Fatalf("iteration ratio %g < 1", ratio)
	}
	if ratio > 50 {
		t.Fatalf("iteration ratio %g implausibly high", ratio)
	}
}

func TestSampleInto(t *testing.T) {
	r := rng.New(50)
	R := randomPoints(r, 100, 20, 0)
	S := randomPoints(r, 100, 20, 10000)
	s, err := NewBBST(R, S, Config{HalfExtent: 5, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]geom.Pair, 500)
	n, err := SampleInto(s, buf)
	if err != nil || n != 500 {
		t.Fatalf("SampleInto = (%d, %v)", n, err)
	}
	for _, p := range buf {
		if !geom.InWindow(p.R, p.S, 5) {
			t.Fatalf("invalid pair %v", p)
		}
	}
	// Empty join: writes nothing, surfaces the error.
	far, err := NewBBST([]geom.Point{{X: 0, Y: 0}}, []geom.Point{{X: 9999, Y: 9999}}, Config{HalfExtent: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := SampleInto(far, buf); n != 0 || !errors.Is(err, ErrEmptyJoin) {
		t.Fatalf("empty join SampleInto = (%d, %v)", n, err)
	}
}

// TestRMarginalDistribution: beyond pair-level uniformity, the R-side
// marginal must match the theory — r appears with probability
// |S(w(r))| / |J|.
func TestRMarginalDistribution(t *testing.T) {
	r := rng.New(60)
	R := randomPoints(r, 15, 10, 0)
	S := randomPoints(r, 60, 10, 10000)
	const l = 2.5
	counts := make(map[int32]int) // per-r exact |S(w(r))|
	total := 0
	for _, rp := range R {
		c := 0
		for _, sp := range S {
			if geom.InWindow(rp, sp, l) {
				c++
			}
		}
		counts[rp.ID] = c
		total += c
	}
	if total < 20 {
		t.Fatalf("setup: |J| = %d", total)
	}
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.make(R, S, Config{HalfExtent: l, Seed: 61})
			if err != nil {
				t.Fatal(err)
			}
			const draws = 60000
			pairs, err := s.Sample(draws)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[int32]int)
			for _, p := range pairs {
				got[p.R.ID]++
			}
			chi2 := 0.0
			cells := 0
			for id, c := range counts {
				if c == 0 {
					if got[id] != 0 {
						t.Fatalf("r %d has empty window but was sampled", id)
					}
					continue
				}
				expected := float64(draws) * float64(c) / float64(total)
				d := float64(got[id]) - expected
				chi2 += d * d / expected
				cells++
			}
			dof := float64(cells - 1)
			if limit := dof + 4*math.Sqrt(2*dof) + 10; chi2 > limit {
				t.Fatalf("R-marginal skewed: chi2 = %.1f > %.1f", chi2, limit)
			}
		})
	}
}

// TestExhaustiveSmallUniverse enumerates every pair of a tiny integer
// lattice universe and verifies that each sampler's support equals J
// exactly — every joining pair is reachable and no non-joining pair
// ever appears. Boundary-heavy by construction (many points exactly
// on window edges and grid-cell borders).
func TestExhaustiveSmallUniverse(t *testing.T) {
	var R, S []geom.Point
	id := int32(0)
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			R = append(R, geom.Point{X: float64(x), Y: float64(y), ID: id})
			S = append(S, geom.Point{X: float64(x), Y: float64(y), ID: id + 1000})
			id++
		}
	}
	const l = 1.0 // windows land exactly on lattice lines
	want := map[string]bool{}
	for _, rp := range R {
		for _, sp := range S {
			if geom.InWindow(rp, sp, l) {
				want[pairID(geom.Pair{R: rp, S: sp})] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("setup: empty join")
	}
	for _, f := range allFactories() {
		t.Run(f.name, func(t *testing.T) {
			s, err := f.make(R, S, Config{HalfExtent: l, Seed: 70})
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]bool{}
			// Enough draws to hit every pair w.h.p. (coupon collector).
			pairs, err := s.Sample(len(want) * 40)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pairs {
				k := pairID(p)
				if !want[k] {
					t.Fatalf("sampled pair %s outside J", k)
				}
				got[k] = true
			}
			for k := range want {
				if !got[k] {
					t.Errorf("pair %s in J never sampled in %d draws", k, len(pairs))
				}
			}
		})
	}
}
