package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestSuppressions runs ctxloop over the allow testdata package and
// checks the //lint:allow semantics end to end: a directive with a
// reason silences the diagnostic (same line or line above), a bare
// directive silences nothing and is itself reported, unknown analyzer
// names are reported, and unused directives are reported. Asserted by
// message substring because want comments cannot share a line with
// the directive they describe.
func TestSuppressions(t *testing.T) {
	p := linttest.Load(t, "testdata", "allow")
	diags, err := lint.RunAnalyzers(p.Fset, p.Files, p.Pkg, p.Info, []*lint.Analyzer{lint.CtxLoop})
	if err != nil {
		t.Fatal(err)
	}

	wantSubstrings := []struct {
		analyzer string
		substr   string
	}{
		{"ctxloop", "loop calls TryNext"},       // bare directive does not suppress
		{"lintdirective", "needs a reason"},     // ...and is reported itself
		{"lintdirective", "unknown analyzer"},   // nosuchanalyzer
		{"lintdirective", "suppresses nothing"}, // stale directive
	}
	if len(diags) != len(wantSubstrings) {
		for _, d := range diags {
			pos := p.Fset.Position(d.Pos)
			t.Logf("got: %s: %s [%s]", pos, d.Message, d.Analyzer)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wantSubstrings))
	}
	for _, w := range wantSubstrings {
		found := false
		for _, d := range diags {
			if d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s diagnostic containing %q", w.analyzer, w.substr)
		}
	}

	// Exactly one loop diagnostic survives (func bare's); the two
	// justified loops stayed suppressed or the count above would
	// already have failed, but make the invariant explicit.
	ctxloops := 0
	for _, d := range diags {
		if d.Analyzer == "ctxloop" {
			ctxloops++
		}
	}
	if ctxloops != 1 {
		t.Errorf("got %d ctxloop diagnostics, want 1 (justified suppressions must hold)", ctxloops)
	}
}
