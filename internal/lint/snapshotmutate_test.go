package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestSnapshotMutate(t *testing.T) {
	linttest.Run(t, "testdata", "snapshot", lint.SnapshotMutate)
}
