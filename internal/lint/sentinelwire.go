package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SentinelWire keeps errors.Is working across the process boundary.
// Two checks:
//
//  1. Exhaustiveness: in the package that defines the wire error
//     tables (it declares CodeFor), every exported Err* sentinel of
//     the error-defining packages it imports (path segments core,
//     engine, dynamic, registry) — plus its own — must appear in
//     those tables. A sentinel missing from CodeFor/sentinelFor
//     decays to code "internal" on the wire and errors.Is breaks for
//     remote callers; exactly the drift that left ErrStaleGeneration
//     unmapped after PR 5.
//
//  2. %w wrapping: wire-crossing tiers (path segments server,
//     router) must wrap underlying errors with %w, never %v/%s —
//     fmt.Errorf that swallows an error's identity strips the
//     sentinel before CodeFor can classify it.
var SentinelWire = &Analyzer{
	Name: "sentinelwire",
	Doc: "sentinelwire checks that every canonical Err* sentinel reachable from " +
		"the wire tables is mapped by CodeFor/sentinelFor, and that " +
		"server/router code wraps errors with %w so errors.Is survives the wire.",
	Run: runSentinelWire,
}

// sentinelSourceSegments are the import-path segments of packages
// whose exported Err* variables are wire-relevant sentinels.
var sentinelSourceSegments = []string{"core", "engine", "dynamic", "registry"}

// wireTierSegments are the import-path segments of packages whose
// errors cross the process boundary.
var wireTierSegments = []string{"server", "router"}

func runSentinelWire(pass *Pass) error {
	if decl := findFuncDecl(pass, "CodeFor"); decl != nil {
		checkSentinelExhaustiveness(pass, decl)
	}
	for _, seg := range wireTierSegments {
		if pathHasSegment(pass.Pkg.Path(), seg) {
			checkErrorfWrapping(pass)
			break
		}
	}
	return nil
}

// findFuncDecl returns the package-level function declaration named
// name, or nil.
func findFuncDecl(pass *Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// checkSentinelExhaustiveness collects the candidate sentinels and
// verifies each is mentioned somewhere in this package's non-test
// code (the code tables live here; a sentinel never named cannot be
// mapped). Reported at the CodeFor declaration so the fix site is
// obvious.
func checkSentinelExhaustiveness(pass *Pass, codeFor *ast.FuncDecl) {
	type sentinel struct {
		obj  types.Object
		qual string // pkgname.ErrX, for the report
	}
	var candidates []sentinel

	collect := func(pkg *types.Package, qualifier string) {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			v, ok := obj.(*types.Var)
			if !ok || !v.Exported() || !strings.HasPrefix(name, "Err") {
				continue
			}
			if !isErrorType(v.Type()) {
				continue
			}
			candidates = append(candidates, sentinel{obj: v, qual: qualifier + name})
		}
	}

	for _, imp := range pass.Pkg.Imports() {
		for _, seg := range sentinelSourceSegments {
			if pathHasSegment(imp.Path(), seg) {
				collect(imp, imp.Name()+".")
				break
			}
		}
	}
	collect(pass.Pkg, "")

	// A sentinel is "mapped" when the wire-table code mentions it:
	// the bodies of CodeFor/StatusFor/sentinelFor, or any package-
	// level var initializer (codeSentinels is such a table). A use
	// elsewhere — an errors.Is in a handler, say — does not count:
	// that is exactly how ErrStaleGeneration hid from review. The
	// analyzer checks reach; the round-trip test checks semantics.
	used := make(map[types.Object]bool)
	markUses := func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					used[obj] = true
				}
			}
			return true
		})
	}
	tableFuncs := map[string]bool{"CodeFor": true, "StatusFor": true, "sentinelFor": true}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && tableFuncs[d.Name.Name] && d.Body != nil {
					markUses(d.Body)
				}
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					markUses(d)
				}
			}
		}
	}

	sort.Slice(candidates, func(i, j int) bool { return candidates[i].qual < candidates[j].qual })
	for _, s := range candidates {
		if used[s.obj] {
			continue
		}
		// Defined-here-but-unused would already be a compile error;
		// this fires for imported sentinels only.
		pass.Reportf(codeFor.Pos(), "sentinel %s has no entry in this package's wire tables (CodeFor/sentinelFor/StatusFor); remote errors.Is will not see it", s.qual)
	}
}

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface())
}

var errType *types.Interface

func errorIface() *types.Interface {
	if errType == nil {
		errType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errType
}

// checkErrorfWrapping flags fmt.Errorf calls that pass an error
// argument without a %w verb in a constant format string.
func checkErrorfWrapping(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "fmt" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			format, ok := constantString(pass, call.Args[0])
			if !ok || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if types.Implements(tv.Type, errorIface()) || types.Implements(types.NewPointer(tv.Type), errorIface()) {
					pass.Reportf(call.Pos(), "fmt.Errorf wraps an error without %%w; the sentinel is stripped before CodeFor can classify it (errors.Is breaks across the wire)")
					return true
				}
			}
			return true
		})
	}
}

// constantString evaluates e as a compile-time string constant.
func constantString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
