package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestCtxLoop(t *testing.T) {
	linttest.Run(t, "testdata", "ctxloop", lint.CtxLoop)
}
