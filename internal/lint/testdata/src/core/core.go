// Flagged and clean randomness use for the rngdeterminism analyzer.
// The package path ends in "core", putting it inside the analyzer's
// deterministic-sampling scope.
package core

import (
	"math/rand"
	"time"
)

// seedFromClock turns the wall clock into seed material: flagged.
func seedFromClock() int64 {
	return time.Now().UnixNano() // want `wall-clock seed material`
}

// globalDraw consumes the process-global source: flagged.
func globalDraw() int {
	return rand.Int() // want `draws from the process-global source`
}

// seeded builds an explicitly seeded generator: the constructors are
// exempt, and method draws on the local Rand are clean.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// measure uses time.Now for a duration, not a seed: clean.
func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// orderDependentSum accumulates a float over map order: flagged
// (float addition is not associative).
func orderDependentSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order`
		sum += v
	}
	return sum
}

// orderDependentAppend builds a slice in map order: flagged.
func orderDependentAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order`
		keys = append(keys, k)
	}
	return keys
}

// orderInsensitive counts integers: addition commutes, clean.
func orderInsensitive(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
