// Flagged and clean registry.Key constructions for the keynormalize
// analyzer.
package keyuser

import (
	"registry"
	"srj"
)

// mint passes request input straight into the key: flagged.
func mint(algo string) registry.Key {
	return registry.Key{Dataset: "d", Algorithm: algo} // want `Algorithm must flow through NormalizeAlgorithm`
}

// mintLiteral hardcodes the default's spelling: flagged — that
// spelling is exactly what drifts.
func mintLiteral() registry.Key {
	return registry.Key{Dataset: "d", Algorithm: "bbst"} // want `Algorithm must flow through NormalizeAlgorithm`
}

// positional hides the Algorithm source: flagged.
func positional() registry.Key {
	return registry.Key{"d", 1, "bbst", 0} // want `must use keyed fields`
}

// assign writes raw input into an existing key: flagged.
func assign(k *registry.Key, algo string) {
	k.Algorithm = algo // want `Algorithm must flow through NormalizeAlgorithm`
}

// mintNormalized flows through NormalizeAlgorithm at the literal:
// clean.
func mintNormalized(algo string) registry.Key {
	return registry.Key{Dataset: "d", Algorithm: srj.NormalizeAlgorithm(algo)}
}

// mintLocal normalizes into a local first: the cheap local dataflow
// keeps this clean.
func mintLocal(algo string) registry.Key {
	a := srj.NormalizeAlgorithm(algo)
	return registry.Key{Dataset: "d", Algorithm: a}
}

// mintConst uses a typed algorithm constant: an explicit,
// compile-checked choice, clean.
func mintConst() registry.Key {
	return registry.Key{Dataset: "d", Algorithm: string(srj.BBST)}
}

// copyKey copies an already-normalized key's field: clean.
func copyKey(k registry.Key) registry.Key {
	return registry.Key{Dataset: k.Dataset, Algorithm: k.Algorithm}
}

// assignNormalized writes a normalized value: clean.
func assignNormalized(k *registry.Key, algo string) {
	k.Algorithm = srj.NormalizeAlgorithm(algo)
}

// zeroKey omits Algorithm entirely: a zero Key is a legitimate
// lookup/aggregate value, clean.
func zeroKey() registry.Key {
	return registry.Key{Dataset: "d"}
}
