// Suppression-directive cases for the //lint:allow escape hatch,
// exercised through the ctxloop analyzer. The expected diagnostics are
// asserted directly by suppress_test.go (want comments cannot share a
// line with the directive they describe).
package allow

import "context"

type src struct{}

func (src) TryNext() (int, bool) { return 0, false }

// justified: a directive with a reason on the line above the loop
// suppresses the diagnostic.
func justified(ctx context.Context, s src) {
	//lint:allow ctxloop the caller bounds this drain by wall clock
	for {
		s.TryNext()
	}
}

// justifiedSameLine: same, with the directive trailing the flagged
// line itself.
func justifiedSameLine(ctx context.Context, s src) {
	for { //lint:allow ctxloop the caller bounds this drain by wall clock
		s.TryNext()
	}
}

// bare: a directive without a reason suppresses nothing — the loop
// diagnostic survives AND the directive itself is reported.
func bare(ctx context.Context, s src) {
	//lint:allow ctxloop
	for {
		s.TryNext()
	}
}

// unknown: naming a nonexistent analyzer is reported.
func unknown(ctx context.Context, s src) {
	//lint:allow nosuchanalyzer because reasons
	for {
		if ctx.Err() != nil {
			return
		}
		s.TryNext()
	}
}

// stale: the loop below is clean, so the directive suppresses nothing
// and is reported as unused.
func stale(ctx context.Context, s src) {
	//lint:allow ctxloop stale justification kept after a refactor
	for {
		if ctx.Err() != nil {
			return
		}
		s.TryNext()
	}
}
