// Package atomic is a minimal mock of sync/atomic for lint testdata;
// snapshotmutate matches the Pointer and Value Store methods by the
// receiver type's import path.
package atomic

type Pointer[T any] struct{ p *T }

func (p *Pointer[T]) Load() *T   { return p.p }
func (p *Pointer[T]) Store(v *T) { p.p = v }

type Value struct{ v any }

func (v *Value) Load() any   { return v.v }
func (v *Value) Store(x any) { v.v = x }
