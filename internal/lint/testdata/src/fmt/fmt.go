// Package fmt is a minimal mock for lint testdata; sentinelwire
// matches fmt.Errorf by the imported package's path.
package fmt

func Errorf(format string, args ...any) error   { return nil }
func Sprintf(format string, args ...any) string { return "" }
