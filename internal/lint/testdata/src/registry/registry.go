// Package registry mocks the engine-key package for the keynormalize
// testdata: the analyzer matches the Key type by name and defining
// package name. The package itself is exempt from the analyzer — it
// stores keys, it does not mint them from request input — so the raw
// literal below is legal here and nowhere else.
package registry

type Key struct {
	Dataset   string
	L         float64
	Algorithm string
	Seed      uint64
}

// String renders the key, dataset name included — which is exactly
// why the metriclabel analyzer rejects it as a metric label value.
func (k Key) String() string { return k.Dataset }

// Canonical mints a key with a raw algorithm string: exempt inside
// the defining package.
func Canonical() Key {
	return Key{Dataset: "d", Algorithm: "bbst"}
}
