// Flagged and clean draw loops for the ctxloop analyzer.
package ctxloop

import "context"

type source struct{}

func (source) Draw(ctx context.Context, t int) (int, error) { return 0, nil }
func (source) Sample(t int) []int                           { return nil }
func (source) TryNext() (int, bool)                         { return 0, false }

// drainNoCtx has a ctx but its draw loop never consults one.
func drainNoCtx(ctx context.Context, src source, batches int) {
	for i := 0; i < batches; i++ { // want `loop calls Sample but never consults a context`
		src.Sample(100)
	}
}

// drainRange: range loops are checked the same way.
func drainRange(ctx context.Context, src source, ts []int) {
	for range ts { // want `loop calls TryNext but never consults a context`
		src.TryNext()
	}
}

// drainChecked consults ctx.Err() per batch: clean.
func drainChecked(ctx context.Context, src source, batches int) {
	for i := 0; i < batches; i++ {
		if ctx.Err() != nil {
			return
		}
		src.Sample(100)
	}
}

// drainCtxDraw passes ctx into the draw itself: clean (every Source
// implementation checks it per batch).
func drainCtxDraw(ctx context.Context, src source, batches int) {
	for i := 0; i < batches; i++ {
		_, _ = src.Draw(ctx, 100)
	}
}

// drainNoParam has no context parameter, so there is nothing to
// consult: clean by contract (the caller owns cancellation).
func drainNoParam(src source, batches int) {
	for i := 0; i < batches; i++ {
		src.Sample(100)
	}
}

// launcher: a nested function literal owns its own context
// discipline, and is checked independently of its enclosing function.
func launcher(src source) {
	go func(ctx context.Context) {
		for { // want `loop calls TryNext but never consults a context`
			src.TryNext()
		}
	}(context.Background())
}

// noDraws loops without sampling: clean, whatever it does with ctx.
func noDraws(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
