// Package time is a minimal mock for lint testdata; rngdeterminism
// matches time.Now() by the imported package's path.
package time

type Time struct{}

func Now() Time { return Time{} }

func (Time) Unix() int64     { return 0 }
func (Time) UnixNano() int64 { return 0 }

type Duration int64

func Since(t Time) Duration { return 0 }
