// Flagged and clean metric-label constructions for the metriclabel
// analyzer.
package metricuser

import (
	"obs"
	"registry"
)

// SampleRequest stands in for the serving tiers' request payloads:
// every field is client-chosen.
type SampleRequest struct {
	Dataset   string
	Algorithm string
	T         int
}

// labelFromDataset puts a dataset name on a label: flagged — one
// series per dataset the clients ever name.
func labelFromDataset(req SampleRequest) obs.Label {
	return obs.L("dataset", req.Dataset) // want `Dataset field`
}

// labelFromKeyString stringifies a whole key: flagged — the key
// embeds the dataset name.
func labelFromKeyString(key registry.Key) obs.Label {
	return obs.L("key", key.String()) // want `derived from a registry.Key`
}

// literalFromDataset builds the Label directly: same rule, same flag.
func literalFromDataset(req SampleRequest) obs.Label {
	return obs.Label{Name: "dataset", Value: req.Dataset} // want `Dataset field`
}

// vecKeyedByDataset keys a counter by dataset: flagged.
func vecKeyedByDataset(c *obs.CounterVec, req SampleRequest) {
	c.Inc(req.Dataset) // want `Dataset field`
}

// vecKeyedByKey keys a histogram by stringified key: flagged.
func vecKeyedByKey(h *obs.HistogramVec, key registry.Key) {
	h.Observe(key.String(), 1.5) // want `derived from a registry.Key`
}

// labelFromRequestField labels by a client-chosen request field that
// is neither Dataset nor Algorithm: flagged.
func labelFromRequestField(req SampleRequest, render func(int) string) obs.Label {
	return obs.L("t", render(req.T)) // want `request field`
}

// labelFromAlgorithm is clean: the algorithm set is closed, even when
// the selector reads through a request or a key.
func labelFromAlgorithm(req SampleRequest, key registry.Key, c *obs.CounterVec) {
	_ = obs.L("algorithm", req.Algorithm)
	_ = obs.L("algorithm", key.Algorithm)
	c.Inc(key.Algorithm)
}

// boundedLabels are clean: literals, plain locals, and non-vec
// Observe calls are out of scope.
func boundedLabels(c *obs.CounterVec, h *obs.Histogram, code string) {
	_ = obs.L("code", "ok")
	c.Inc(code)
	h.Observe(1.5)
}
