// Flagged and clean snapshot-publication sequences for the
// snapshotmutate analyzer.
package snapshot

import "sync/atomic"

type view struct {
	n   int
	ids []int
}

type holder struct {
	cur atomic.Pointer[view]
	val atomic.Value
}

func testHookSwap(v *view) {}

// publishThenMutate writes a field after the atomic publish: flagged
// (readers hold the pointer concurrently).
func publishThenMutate(h *holder) {
	v := &view{n: 1}
	h.cur.Store(v)
	v.n = 2 // want `write to v after it was published`
}

// valueThenMutate: atomic.Value publishes the same way.
func valueThenMutate(h *holder) {
	v := &view{}
	h.val.Store(v)
	v.n = 3 // want `write to v after it was published`
}

// hookThenMutate: handing the value to a testHook* publishes it too.
func hookThenMutate(v2 *view) {
	testHookSwap(v2)
	v2.n = 9 // want `write to v2 after it was published`
}

// incAfterPublish: increments are writes.
func incAfterPublish(h *holder) {
	v := &view{}
	h.cur.Store(v)
	v.n++ // want `write to v after it was published`
}

// buildThenPublish does all its writes before the Store: clean — the
// snapshot is fully built before it escapes.
func buildThenPublish(h *holder) {
	v := &view{}
	v.n = 1
	v.ids = append(v.ids, 7)
	h.cur.Store(v)
}

// reassignedBetween publishes, then rebinds v to a fresh value: the
// later write touches the unpublished replacement, clean.
func reassignedBetween(h *holder) {
	v := &view{n: 1}
	h.cur.Store(v)
	v = &view{}
	v.n = 2
	h.cur.Store(v)
}
