// Package rand is a minimal mock of math/rand for lint testdata;
// rngdeterminism distinguishes the global draws (Int, Intn, Float64)
// from the seeded constructors (New, NewSource) by name, and matches
// the package by import path.
package rand

type Source interface {
	Int63() int64
	Seed(seed int64)
}

type Rand struct{}

func New(src Source) *Rand        { return &Rand{} }
func NewSource(seed int64) Source { return nil }

func Int() int         { return 0 }
func Intn(n int) int   { return 0 }
func Float64() float64 { return 0 }

func (*Rand) Intn(n int) int   { return 0 }
func (*Rand) Float64() float64 { return 0 }
