// The same randomness patterns as the core testdata, in a package
// outside rngdeterminism's scope segments: none of it is flagged —
// tooling and benchmarks may use the global source.
package outofscope

import (
	"math/rand"
	"time"
)

func seedFromClock() int64 { return time.Now().UnixNano() }

func globalDraw() int { return rand.Int() }

func orderDependentAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
