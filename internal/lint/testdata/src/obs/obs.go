// Package obs mocks the observability package for the metriclabel
// testdata: the analyzer matches Label, L, and the vec methods by
// name and defining package name. The package itself is exempt — it
// moves label values around generically, it does not choose them.
package obs

type Label struct {
	Name  string
	Value string
}

func L(name, value string) Label { return Label{Name: name, Value: value} }

type CounterVec struct{}

func (c *CounterVec) Add(value string, delta uint64) {}
func (c *CounterVec) Inc(value string)               {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

type HistogramVec struct{}

func (h *HistogramVec) With(value string) *Histogram    { return &Histogram{} }
func (h *HistogramVec) Observe(value string, v float64) {}
