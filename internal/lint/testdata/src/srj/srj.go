// Package srj mocks the root package's Algorithm vocabulary for the
// keynormalize testdata: a named string type whose non-empty constants
// count as explicit, compile-checked algorithm choices.
package srj

type Algorithm string

const (
	BBST Algorithm = "bbst"
	KDS  Algorithm = "kds"
)

// NormalizeAlgorithm is the single definition of the empty-means-
// default spelling; the analyzer accepts any call with this name.
func NormalizeAlgorithm(algo string) string {
	if algo == "" {
		return string(BBST)
	}
	return algo
}
