// Package context is a minimal mock of the standard context package
// for lint testdata: the analyzers match the named type
// context.Context by import path, so the mock must live at exactly
// this path.
package context

type Context interface {
	Err() error
	Done() <-chan struct{}
}

func Background() Context { return nil }
