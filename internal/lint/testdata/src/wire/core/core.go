// A sentinel-defining package for the sentinelwire testdata: the path
// segment "core" marks its exported Err* variables as wire-relevant.
package core

import "errors"

var ErrMapped = errors.New("core: mapped")
var ErrUnmapped = errors.New("core: unmapped")

// errUnexported is not a candidate: sentinels are exported by
// definition.
var errUnexported = errors.New("core: internal detail")

// ErrCount is exported and Err-prefixed but not an error value, so it
// is not a candidate either.
var ErrCount = 2

func internalUse() error { return errUnexported }
