// A wire-tier package for the sentinelwire testdata: it declares
// CodeFor (so the exhaustiveness check runs here) and its path has the
// segment "server" (so the %w wrapping check runs here too).
package server

import (
	"errors"
	"fmt"

	"wire/core"
)

const (
	codeMapped   = "mapped"
	codeInternal = "internal"
)

// codeSentinels is the wire table; core.ErrMapped appears,
// core.ErrUnmapped does not — the exhaustiveness check reports the
// gap at the CodeFor declaration.
var codeSentinels = []struct {
	code string
	err  error
}{
	{codeMapped, core.ErrMapped},
}

func CodeFor(err error) string { // want `sentinel core\.ErrUnmapped has no entry`
	for _, cs := range codeSentinels {
		if errors.Is(err, cs.err) {
			return cs.code
		}
	}
	return codeInternal
}

func sentinelFor(code string) error {
	for _, cs := range codeSentinels {
		if cs.code == code {
			return cs.err
		}
	}
	return nil
}

// handler demonstrates that an errors.Is use outside the wire tables
// does NOT count as mapping the sentinel (exactly how a sentinel hid
// from review before this analyzer), and that %v-wrapping an error is
// flagged while %w is clean.
func handler(err error) error {
	if errors.Is(err, core.ErrUnmapped) {
		return nil
	}
	return fmt.Errorf("handling: %v", err) // want `wraps an error without %w`
}

func wrapped(err error) error {
	return fmt.Errorf("handling: %w", err)
}

// formatted interpolates plain values, no error identity involved:
// clean.
func formatted(code string, n int) error {
	return fmt.Errorf("bad frame %s at %d", code, n)
}
