package lint

import (
	"go/ast"
	"go/token"
)

// CtxLoop enforces the PR 3 cancellation contract: a function that
// was handed a context and loops over draw calls must consult that
// context inside the loop — by checking ctx.Err()/ctx.Done() per
// batch, or by passing the ctx into the draw itself (every Source
// implementation checks it per batch). A ctx-less draw loop turns a
// canceled request into unbounded sampling work: the exact defect
// class the Source migration fixed in srjbench and srjsample.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "ctxloop flags for-loops that issue sampling calls (Draw, DrawFunc, " +
		"Sample, SampleInto, SampleFunc, TryNext) inside a function that has a " +
		"context.Context parameter without consulting any context in the loop " +
		"body. Cancellation must take effect between batches.",
	Run: runCtxLoop,
}

// drawCallNames are the method/function names that mean "sampling
// work happens here". The Source API names plus the per-trial
// TryNext; matching is by name so the check also covers mocks and
// future implementations without a types dependency on the repo.
var drawCallNames = map[string]bool{
	"Draw":       true,
	"DrawFunc":   true,
	"Sample":     true,
	"SampleInto": true,
	"SampleFunc": true,
	"TryNext":    true,
}

func runCtxLoop(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var typ *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				typ, body = fn.Type, fn.Body
			case *ast.FuncLit:
				typ, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || !funcHasCtxParam(pass, typ) {
				return true
			}
			checkCtxLoops(pass, body)
			return true
		})
	}
	return nil
}

// funcHasCtxParam reports whether the function type declares a
// context.Context parameter.
func funcHasCtxParam(pass *Pass, typ *ast.FuncType) bool {
	if typ.Params == nil {
		return false
	}
	for _, field := range typ.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// checkCtxLoops walks one function body (skipping nested function
// literals, which own their context discipline) and reports draw
// loops that never consult a context.
func checkCtxLoops(pass *Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested function: separate contract
		case *ast.ForStmt:
			checkOneLoop(pass, n.Body, n.Pos())
		case *ast.RangeStmt:
			checkOneLoop(pass, n.Body, n.Pos())
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkOneLoop reports the loop at pos when its body issues a draw
// call (outside nested function literals) but no expression in the
// body — nested literals included, a deferred cancel counts —
// denotes a context value.
func checkOneLoop(pass *Pass, body *ast.BlockStmt, pos token.Pos) {
	draw := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name := calleeName(call); drawCallNames[name] && draw == "" {
				draw = name
			}
		}
		return true
	})
	if draw == "" {
		return
	}
	if usesContext(pass.TypesInfo, body) {
		return
	}
	pass.Reportf(pos, "loop calls %s but never consults a context; check ctx.Err() per batch or pass ctx into the draw", draw)
}
