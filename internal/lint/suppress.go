package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The `//lint:allow <analyzer> <reason>` escape hatch. A suppression
// comment placed on the flagged line, or on the line directly above
// it, silences that analyzer's diagnostics for that line. The reason
// is mandatory: an allow without one (or naming an unknown analyzer,
// or suppressing nothing) is itself reported, so every suppression in
// the tree carries a written justification and cannot rot silently.

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// parseAllows extracts the //lint:allow directives of all files,
// keyed by "filename:line".
func parseAllows(fset *token.FileSet, files []*ast.File) map[string][]*allowDirective {
	allows := make(map[string][]*allowDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "lint:allow")
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				fields := strings.Fields(text)
				d := &allowDirective{pos: c.Pos()}
				if len(fields) > 0 {
					d.analyzer = fields[0]
					d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				p := fset.Position(c.Pos())
				key := lineKey(p.Filename, p.Line)
				allows[key] = append(allows[key], d)
			}
		}
	}
	return allows
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// applySuppressions filters diags through the files' //lint:allow
// directives and appends a diagnostic for every malformed or unused
// directive. Directive hygiene is judged against the analyzers of
// this run: an allow naming an analyzer outside the run is left
// alone, so running a single analyzer (as the tests do) does not
// misreport the others' suppressions.
func applySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic, analyzers []*Analyzer) []Diagnostic {
	allows := parseAllows(fset, files)
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for name := range running {
		known[name] = true
	}

	kept := diags[:0]
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, line := range []int{p.Line, p.Line - 1} {
			for _, a := range allows[lineKey(p.Filename, line)] {
				if a.analyzer != d.Analyzer {
					continue
				}
				a.used = true
				if a.reason != "" {
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	for _, perLine := range allows {
		for _, a := range perLine {
			switch {
			case !known[a.analyzer]:
				kept = append(kept, Diagnostic{
					Analyzer: "lintdirective",
					Pos:      a.pos,
					Message:  fmt.Sprintf("lint:allow names unknown analyzer %q", a.analyzer),
				})
			case a.reason == "" && running[a.analyzer]:
				kept = append(kept, Diagnostic{
					Analyzer: "lintdirective",
					Pos:      a.pos,
					Message:  fmt.Sprintf("lint:allow %s needs a reason (//lint:allow %s <why>)", a.analyzer, a.analyzer),
				})
			case !a.used && running[a.analyzer]:
				kept = append(kept, Diagnostic{
					Analyzer: "lintdirective",
					Pos:      a.pos,
					Message:  fmt.Sprintf("lint:allow %s suppresses nothing here; delete it", a.analyzer),
				})
			}
		}
	}
	return kept
}
