package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestSentinelWire(t *testing.T) {
	linttest.Run(t, "testdata", "wire/server", lint.SentinelWire)
}

// TestSentinelWireSourcePackage: the sentinel-defining package itself
// declares no wire tables and is not a wire tier; nothing is flagged
// there.
func TestSentinelWireSourcePackage(t *testing.T) {
	linttest.Run(t, "testdata", "wire/core", lint.SentinelWire)
}
