package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestKeyNormalize(t *testing.T) {
	linttest.Run(t, "testdata", "keyuser", lint.KeyNormalize)
}

// TestKeyNormalizeRegistryExempt: the package that defines Key stores
// keys rather than minting them from request input, so its raw
// literals are legal.
func TestKeyNormalizeRegistryExempt(t *testing.T) {
	linttest.Run(t, "testdata", "registry", lint.KeyNormalize)
}
