package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// KeyNormalize enforces the fleet-wide key-normalization contract: a
// registry.Key's Algorithm field must flow through NormalizeAlgorithm
// (the single definition of the empty-means-"bbst" default). Before
// PR 5's review pass that defaulting was spelled five independent
// ways; a tier that spells it differently — or hardcodes "bbst" —
// addresses a different cache key for the same request, the exact
// drift this analyzer makes impossible to reintroduce.
//
// Accepted Algorithm sources: a NormalizeAlgorithm(...) call, another
// Key's .Algorithm field (already normalized), or a local variable
// assigned from either. Everything else — string literals included —
// is flagged. The package that defines Key (registry) is exempt: it
// stores keys, it does not mint them from request input.
var KeyNormalize = &Analyzer{
	Name: "keynormalize",
	Doc: "keynormalize flags registry.Key constructions and assignments whose " +
		"Algorithm value does not flow through NormalizeAlgorithm, the single " +
		"definition of the fleet-wide default-algorithm spelling.",
	Run: runKeyNormalize,
}

func runKeyNormalize(pass *Pass) error {
	if pass.Pkg.Name() == "registry" {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Walk function by function so local normalize-assignments
		// can vouch for identifiers used nearby.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkKeyLiteral(pass, f, n)
			case *ast.AssignStmt:
				checkKeyFieldAssign(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// isRegistryKeyType reports whether t is the registry Key type (or a
// pointer to it). The match is by type name and defining package
// name, so the srj.EngineKey alias resolves to the same named type.
func isRegistryKeyType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Key" && obj.Pkg() != nil && obj.Pkg().Name() == "registry"
}

// checkKeyLiteral validates the Algorithm element of a Key composite
// literal. Literals that omit Algorithm are left alone: a zero Key is
// a legitimate lookup/aggregate value, and the serving tiers
// normalize at their decode boundary.
func checkKeyLiteral(pass *Pass, file *ast.File, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !isRegistryKeyType(tv.Type) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			pass.Reportf(lit.Pos(), "registry.Key literal must use keyed fields so the Algorithm source is auditable")
			return
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Algorithm" {
			continue
		}
		if !isNormalizedAlgorithmExpr(pass, file, kv.Value) {
			pass.Reportf(kv.Value.Pos(), "registry.Key.Algorithm must flow through NormalizeAlgorithm (the empty-means-default spelling drifts otherwise)")
		}
	}
}

// isAlgorithmNamedType reports whether t is the named Algorithm type
// of the root srj package (matched by name so testdata mocks work).
func isAlgorithmNamedType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Algorithm" && obj.Pkg() != nil && obj.Pkg().Name() == "srj"
}

// checkKeyFieldAssign validates `k.Algorithm = expr` writes.
func checkKeyFieldAssign(pass *Pass, file *ast.File, assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Algorithm" {
			continue
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !isRegistryKeyType(tv.Type) {
			continue
		}
		if i >= len(assign.Rhs) {
			continue // tuple assignment; out of this analyzer's depth
		}
		if !isNormalizedAlgorithmExpr(pass, file, assign.Rhs[i]) {
			pass.Reportf(assign.Rhs[i].Pos(), "registry.Key.Algorithm must flow through NormalizeAlgorithm (the empty-means-default spelling drifts otherwise)")
		}
	}
}

// isNormalizedAlgorithmExpr reports whether e is an accepted
// Algorithm source.
func isNormalizedAlgorithmExpr(pass *Pass, file *ast.File, e ast.Expr) bool {
	e = ast.Unparen(e)
	// A constant of the root package's named Algorithm type
	// (string(srj.BBST)) is an explicit, compile-checked algorithm
	// choice — renaming breaks the build instead of drifting. A raw
	// "bbst" string literal is not: that spelling is what drifts.
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil &&
		tv.Value.Kind() == constant.String && constant.StringVal(tv.Value) != "" &&
		isAlgorithmNamedType(tv.Type) {
		return true
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if calleeName(e) == "NormalizeAlgorithm" {
			return true
		}
		// A conversion wrapping an accepted value: string(srj.BBST)
		// or string(norm(...)).
		if len(e.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return isNormalizedAlgorithmExpr(pass, file, e.Args[0])
			}
		}
	case *ast.SelectorExpr:
		// key.Algorithm copied from an existing Key: already normalized.
		if e.Sel.Name == "Algorithm" {
			if tv, ok := pass.TypesInfo.Types[e.X]; ok && isRegistryKeyType(tv.Type) {
				return true
			}
		}
	case *ast.Ident:
		return identFedByNormalize(pass, file, e)
	}
	return false
}

// identFedByNormalize reports whether some assignment or definition
// in the same file feeds this identifier's object from a
// NormalizeAlgorithm call or a Key.Algorithm copy — the cheap local
// dataflow that keeps `algo := NormalizeAlgorithm(q.Algorithm)`
// followed by `Key{Algorithm: algo}` legal.
func identFedByNormalize(pass *Pass, file *ast.File, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	fed := false
	ast.Inspect(file, func(n ast.Node) bool {
		if fed {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || i >= len(assign.Rhs) {
				continue
			}
			lobj := pass.TypesInfo.Defs[lid]
			if lobj == nil {
				lobj = pass.TypesInfo.Uses[lid]
			}
			if lobj != obj {
				continue
			}
			rhs := ast.Unparen(assign.Rhs[i])
			if call, ok := rhs.(*ast.CallExpr); ok && calleeName(call) == "NormalizeAlgorithm" {
				fed = true
				return false
			}
			if sel, ok := rhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Algorithm" {
				if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isRegistryKeyType(tv.Type) {
					fed = true
					return false
				}
			}
		}
		return true
	})
	return fed
}
