package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotMutate flags the shared-base clone race the PR 5 hammer
// found: a view/snapshot value published through an atomic pointer
// (or handed to a test hook) and then mutated. Readers hold the old
// pointer concurrently, so any write after the publish is a data
// race — snapshots must be fully built before they escape, and a
// published snapshot is immutable forever.
//
// The check is per-function and flow-insensitive about loops (the
// race shape is straight-line): after a statement that publishes
// identifier v — v passed to atomic.Pointer.Store / atomic.Value.
// Store, or to a testHook* call — any later write through v
// (v.field = x, v.field++, delete through v, writes to v.a.b) is
// reported, unless v was wholly reassigned in between.
var SnapshotMutate = &Analyzer{
	Name: "snapshotmutate",
	Doc: "snapshotmutate flags writes to struct fields of a value after it was " +
		"published through atomic.Pointer.Store/atomic.Value.Store or a " +
		"testHook* call; published snapshots are immutable.",
	Run: runSnapshotMutate,
}

func runSnapshotMutate(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkPublishes(pass, body)
			}
			return true
		})
	}
	return nil
}

// event is one position-ordered occurrence concerning an identifier's
// object: a publish, a whole-value reassignment, or a field write.
type event struct {
	pos  token.Pos
	kind int // 0 publish, 1 reassign, 2 field write
	obj  types.Object
	via  string // for publishes: what published it, for the report
}

func checkPublishes(pass *Pass, body *ast.BlockStmt) {
	var events []event

	record := func(pos token.Pos, kind int, obj types.Object, via string) {
		if obj != nil {
			events = append(events, event{pos: pos, kind: kind, obj: obj, via: via})
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions are their own scope
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if via, arg := publishedArg(pass, n); arg != nil {
				record(n.Pos(), 0, identObj(pass, arg), via)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				lhs = ast.Unparen(lhs)
				if id, ok := lhs.(*ast.Ident); ok {
					record(n.Pos(), 1, identObj(pass, id), "")
					continue
				}
				if root := rootIdent(lhs); root != nil && lhs != ast.Expr(root) {
					record(n.Pos(), 2, identObj(pass, root), "")
				}
			}
		case *ast.IncDecStmt:
			if root := rootIdent(n.X); root != nil && ast.Unparen(n.X) != ast.Expr(root) {
				record(n.Pos(), 2, identObj(pass, root), "")
			}
		}
		return true
	})

	// For each field write, find a publish of the same object that
	// precedes it with no whole-value reassignment in between.
	for _, w := range events {
		if w.kind != 2 {
			continue
		}
		var publish *event
		for i := range events {
			e := &events[i]
			if e.obj != w.obj || e.pos >= w.pos {
				continue
			}
			switch e.kind {
			case 0:
				if publish == nil || e.pos > publish.pos {
					publish = e
				}
			case 1:
				if publish != nil && e.pos > publish.pos {
					publish = nil
				}
			}
		}
		// Reassignments between publish and write: scan again (the
		// loop above only clears reassignments seen after the current
		// best publish, which is exactly the in-between window).
		if publish != nil {
			pass.Reportf(w.pos, "write to %s after it was published via %s; a published snapshot is immutable (readers hold it concurrently)",
				w.obj.Name(), publish.via)
		}
	}
}

// publishedArg reports whether call publishes one of its arguments:
// an atomic.Pointer/atomic.Value Store method call (argument 0), or
// a call to anything named testHook* (argument 0). It returns a
// human-readable description and the published identifier expression.
func publishedArg(pass *Pass, call *ast.CallExpr) (string, ast.Expr) {
	if len(call.Args) == 0 {
		return "", nil
	}
	arg := ast.Unparen(call.Args[0])
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		arg = ast.Unparen(ue.X)
	}
	if _, ok := arg.(*ast.Ident); !ok {
		return "", nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Store" {
			if tv, ok := pass.TypesInfo.Types[fun.X]; ok {
				if isNamedType(tv.Type, "sync/atomic", "Pointer") || isNamedType(tv.Type, "sync/atomic", "Value") {
					return "atomic " + typeShort(tv.Type) + ".Store", arg
				}
			}
		}
		if isTestHookName(fun.Sel.Name) {
			return fun.Sel.Name, arg
		}
	case *ast.Ident:
		if isTestHookName(fun.Name) {
			return fun.Name, arg
		}
	}
	return "", nil
}

func isTestHookName(name string) bool {
	return len(name) > len("testHook") && name[:len("testHook")] == "testHook"
}

func typeShort(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func identObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
