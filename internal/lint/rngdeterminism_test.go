package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestRNGDeterminism(t *testing.T) {
	linttest.Run(t, "testdata", "core", lint.RNGDeterminism)
}

// TestRNGDeterminismOutOfScope: the same patterns in a package outside
// the deterministic-sampling scope produce no diagnostics — tooling
// and benchmarks may use the global source.
func TestRNGDeterminismOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata", "outofscope", lint.RNGDeterminism)
}
