// Package lint is srjlint's analysis framework: a deliberately small,
// stdlib-only re-implementation of the golang.org/x/tools go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the five analyzers that
// machine-check this repository's hard-won invariants. Each analyzer
// encodes a defect class that an earlier PR's review pass caught by
// hand:
//
//   - ctxloop: draw loops must consult their context per batch
//   - rngdeterminism: seeded-draw byte-identity must not depend on
//     global randomness, wall-clock seeds, or map iteration order
//   - sentinelwire: error sentinels must round-trip through the wire
//     code tables, and wire tiers must wrap errors with %w
//   - keynormalize: registry.Key.Algorithm must flow through
//     NormalizeAlgorithm
//   - snapshotmutate: atomically published snapshots are immutable
//
// The framework exists because the module vendors no third-party
// code: analyzers run over plain go/ast + go/types packages, and
// cmd/srjlint drives them through the `go vet -vettool` unit protocol
// (see unit.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis and its checker function. It is
// the stdlib-only analog of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppression comments.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Run applies the analyzer to one type-checked package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a position and a message, tagged with
// the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Analyzers returns srjlint's full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CtxLoop,
		RNGDeterminism,
		SentinelWire,
		KeyNormalize,
		SnapshotMutate,
		MetricLabel,
	}
}

// RunAnalyzers applies analyzers to one type-checked package and
// returns the diagnostics that survive `//lint:allow` suppression
// (see suppress.go), sorted by position. An analyzer returning an
// error aborts the run.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = applySuppressions(fset, files, diags, analyzers)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// --- shared helpers used by several analyzers ---

// isTestFile reports whether the file containing pos is a _test.go
// file. Most analyzers enforce production invariants only.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// pathHasSegment reports whether one "/"-separated element of the
// import path equals seg (so "core" matches "repro/internal/core" but
// not "repro/internal/corespray").
func pathHasSegment(path, seg string) bool {
	for len(path) > 0 {
		i := strings.IndexByte(path, '/')
		var elem string
		if i < 0 {
			elem, path = path, ""
		} else {
			elem, path = path[:i], path[i+1:]
		}
		if elem == seg {
			return true
		}
	}
	return false
}

// isNamedType reports whether t (or the pointee, if t is a pointer)
// is the named type pkgPath.name. Generic instantiations match their
// origin. Aliases are looked through by go/types before we get here.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && isNamedType(t, "context", "Context")
}

// usesContext reports whether any expression under n denotes a value
// of type context.Context — a ctx.Err() / ctx.Done() consultation, a
// ctx argument threaded into a call, or a select on ctx.Done().
func usesContext(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[e]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeName returns the bare name of a call's callee: "Draw" for
// both draw(...) and src.Draw(...). Empty when the callee is not an
// identifier or selector (e.g. a call of a call).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// rootIdent returns the identifier at the base of a selector chain
// (v for v.a.b), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
