package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestMetricLabel(t *testing.T) {
	linttest.Run(t, "testdata", "metricuser", lint.MetricLabel)
}

// TestMetricLabelObsExempt: the obs package moves label values around
// generically (render, parse, vec plumbing) without choosing them, so
// it is exempt.
func TestMetricLabelObsExempt(t *testing.T) {
	linttest.Run(t, "testdata", "obs", lint.MetricLabel)
}
