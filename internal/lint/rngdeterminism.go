package lint

import (
	"go/ast"
	"go/types"
)

// RNGDeterminism guards the cross-tier byte-identity invariant: a
// seeded draw must return the same bytes from an Engine, a remote
// Client, a Router, and a Store replica. Everything under
// internal/{core,dynamic,alias,rng} therefore derives all randomness
// from the seeded rng streams, never from process-global state. The
// analyzer flags, in non-test code of those packages:
//
//   - calls to math/rand (and math/rand/v2) package-level functions,
//     which draw from the shared global source;
//   - wall-clock seed material (time.Now().UnixNano() and friends);
//   - map iterations whose loop body produces order-dependent
//     results: appending to a slice, or accumulating a float — both
//     make the outcome depend on Go's randomized iteration order.
var RNGDeterminism = &Analyzer{
	Name: "rngdeterminism",
	Doc: "rngdeterminism forbids global math/rand functions, wall-clock seeds, " +
		"and order-dependent map iteration in the deterministic sampling " +
		"packages (internal/core, internal/dynamic, internal/alias, " +
		"internal/rng), where seeded-draw byte-identity is a tested invariant.",
	Run: runRNGDeterminism,
}

// rngScopeSegments are the import-path segments naming the packages
// under the byte-identity contract.
var rngScopeSegments = []string{"core", "dynamic", "alias", "rng"}

// globalRandOK lists the math/rand package-level functions that do
// NOT draw from the global source: constructors for explicitly
// seeded generators.
var globalRandOK = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runRNGDeterminism(pass *Pass) error {
	inScope := false
	for _, seg := range rngScopeSegments {
		if pathHasSegment(pass.Pkg.Path(), seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkGlobalRand(pass, n)
				checkClockSeed(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkGlobalRand flags calls to math/rand package-level functions
// that consume the process-global source.
func checkGlobalRand(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	path := pkgName.Imported().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	if globalRandOK[sel.Sel.Name] {
		return
	}
	pass.Reportf(call.Pos(), "%s.%s draws from the process-global source; use the package's seeded rng streams (seeded-draw byte-identity is a tested invariant)",
		pkgName.Name(), sel.Sel.Name)
}

// clockSeedMethods are the time.Time methods that turn a wall-clock
// reading into integer seed material. Plain time.Now() for duration
// measurement stays legal — timings are not part of the drawn bytes.
var clockSeedMethods = map[string]bool{
	"Unix":       true,
	"UnixNano":   true,
	"UnixMilli":  true,
	"UnixMicro":  true,
	"Nanosecond": true,
}

// checkClockSeed flags time.Now().UnixNano()-style expressions: the
// canonical nondeterministic-seed pattern.
func checkClockSeed(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !clockSeedMethods[sel.Sel.Name] {
		return
	}
	inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
	if !ok {
		return
	}
	innerSel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
	if !ok || innerSel.Sel.Name != "Now" {
		return
	}
	id, ok := ast.Unparen(innerSel.X).(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "time" {
		return
	}
	pass.Reportf(call.Pos(), "time.Now().%s() is wall-clock seed material; deterministic packages must derive randomness from configured seeds only", sel.Sel.Name)
}

// checkMapRange flags range-over-map loops whose body makes the
// result depend on iteration order: appending to a slice, or
// accumulating into a float variable (float addition is not
// associative). Order-insensitive bodies — rebuilding another map,
// integer counting, deleting keys — pass.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var why string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					why = "appends to a slice"
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if tv, ok := pass.TypesInfo.Types[lhs]; ok && isFloat(tv.Type) && isAccumulation(n) {
					why = "accumulates a float (float addition is order-dependent)"
				}
			}
		}
		return true
	})
	if why != "" {
		pass.Reportf(rng.Pos(), "map iteration order is randomized and this loop %s; iterate a sorted key slice instead", why)
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isAccumulation reports whether the assignment reuses its own LHS:
// x += e, or x = x + e style updates.
func isAccumulation(assign *ast.AssignStmt) bool {
	switch assign.Tok.String() {
	case "+=", "-=", "*=", "/=":
		return true
	case "=":
		// x = x + e — conservative: any mention of an LHS ident on
		// the RHS counts.
		for i, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || i >= len(assign.Rhs) {
				continue
			}
			found := false
			ast.Inspect(assign.Rhs[i], func(n ast.Node) bool {
				if rid, ok := n.(*ast.Ident); ok && rid.Name == id.Name {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}
