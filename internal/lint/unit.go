package lint

// The `go vet -vettool` unit protocol, reimplemented on the standard
// library (the x/tools unitchecker is not vendored here). The go
// command drives a vet tool like this:
//
//	tool -V=full            print a version line keyed by the binary,
//	                        used as the content hash for vet caching
//	tool -flags             print the tool's flags as JSON so go vet
//	                        can validate command-line analyzer flags
//	tool [flags] foo.cfg    analyze one package unit described by the
//	                        JSON config, writing the facts file the
//	                        config names and reporting diagnostics on
//	                        stderr; exit 0 = clean, nonzero = findings
//
// The config carries everything needed to type-check the unit
// without invoking the build system again: the file list, the import
// map, and the export-data file of every dependency. srjlint's
// analyzers are all single-package (no cross-package facts), so for
// fact-only dependency runs (VetxOnly) the driver just writes an
// empty facts file and exits.

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// unitConfig mirrors the JSON the go command writes for each vet
// unit (cmd/go/internal/work's vetConfig; field names are the wire
// contract). Unused fields are decoded and ignored.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/srjlint.
func Main() {
	log.SetFlags(0)
	log.SetPrefix("srjlint: ")

	analyzers := Analyzers()
	enabled := make(map[string]*bool, len(analyzers))
	fs := flag.NewFlagSet("srjlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "srjlint checks this repository's serving invariants.")
		fmt.Fprintln(os.Stderr, "usage: go vet -vettool=$(go env GOPATH)/bin/srjlint ./...   (or any built srjlint path)")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "\n  %s\n	%s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	version := fs.Bool("V", false, "print version and exit (the go command passes -V=full)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (used by go vet)")
	jsonOut := fs.Bool("json", false, "emit JSON output (accepted for go vet compatibility; plain output is always written)")
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}

	// -V=full arrives as a value flag; flag.Bool accepts -V but not
	// -V=full, so intercept it before parsing.
	args := os.Args[1:]
	for _, arg := range args {
		if arg == "-V=full" || arg == "--V=full" {
			printVersion()
			return
		}
	}
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
	if *version {
		printVersion()
		return
	}
	if *printFlags {
		printFlagsJSON(fs)
		return
	}
	_ = jsonOut

	rest := fs.Args()
	if len(rest) != 1 || !strings.HasSuffix(rest[0], ".cfg") {
		fs.Usage()
		os.Exit(2)
	}
	var run []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	os.Exit(runUnit(rest[0], run))
}

// printVersion emits the version line the go command requires from a
// vet tool: the binary's base name plus a content hash, so the vet
// result cache is invalidated whenever the tool changes.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(exe), h.Sum(nil))
}

// printFlagsJSON describes the tool's flags in the JSON shape go vet
// expects from `tool -flags`.
func printFlagsJSON(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		flags = append(flags, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
}

// runUnit analyzes one vet unit and returns the process exit code.
func runUnit(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}

	// Dependencies are vetted only for cross-package facts, which
	// srjlint does not use: satisfy the protocol (the go command
	// expects the facts file to exist) and skip the work.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	diags, err := RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [srjlint/%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typeCheck type-checks the unit against its dependencies' export
// data, resolving import paths through the unit's ImportMap exactly
// as the compiler did.
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *unitConfig) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	base := importer.ForCompiler(fset, compiler, lookup)
	imp := &mappedImporter{base: base, importMap: cfg.ImportMap}

	tcfg := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
		Error:    func(error) {}, // collect just the first hard error below
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// mappedImporter resolves import paths through the unit's ImportMap
// before delegating to the export-data importer, and serves "unsafe"
// directly.
type mappedImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.base.Import(path)
}
