// Package linttest runs srjlint analyzers over self-contained testdata
// packages and checks their diagnostics against `// want "regex"`
// comment expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest (which this module
// cannot vendor). Testdata packages live under <testdata>/src/<path>
// and may import each other by those paths. The handful of standard-
// library packages the analyzers match on (context, sync/atomic,
// math/rand, time, fmt, errors) are provided as minimal mocks at the
// same import paths, so loading is hermetic: no GOROOT parsing, no
// go/build, no network.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// A Package is one loaded, type-checked testdata package — exactly the
// inputs lint.RunAnalyzers wants.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Load parses and type-checks <testdata>/src/<path> (resolving its
// imports from the same tree) and fails the test on any error: lint
// testdata must always type-check, otherwise the analyzers silently
// see incomplete type information.
func Load(t *testing.T, testdata, path string) *Package {
	t.Helper()
	im := newImporter(testdata)
	lp, err := im.load(path)
	if err != nil {
		t.Fatalf("loading testdata package %q: %v", path, err)
	}
	return &Package{Fset: im.fset, Files: lp.files, Pkg: lp.pkg, Info: lp.info}
}

// Run loads the testdata package, applies the analyzers, and compares
// the surviving diagnostics against the package's `// want` comments:
// every diagnostic must match a want regex on its line, and every want
// must be hit by at least one diagnostic.
func Run(t *testing.T, testdata, path string, analyzers ...*lint.Analyzer) {
	t.Helper()
	p := Load(t, testdata, path)
	diags, err := lint.RunAnalyzers(p.Fset, p.Files, p.Pkg, p.Info, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %q: %v", path, err)
	}
	wants := collectWants(t, p.Fset, p.Files)
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// want is one expectation parsed from a `// want "regex"` comment,
// anchored to the comment's line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantArgRe tokenizes the argument list of a want comment: backquoted
// or double-quoted Go string literals, each holding one regexp.
var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants extracts every want expectation from the files'
// comments. A comment may carry several patterns: // want `a` `b`.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				args := wantArgRe.FindAllString(text, -1)
				if len(args) == 0 {
					t.Fatalf("%s: malformed want comment (need quoted regexps): %s", pos, c.Text)
				}
				for _, arg := range args {
					s, err := strconv.Unquote(arg)
					if err != nil {
						t.Fatalf("%s: bad want argument %s: %v", pos, arg, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: s})
				}
			}
		}
	}
	return wants
}

// --- the testdata importer ---

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// testImporter resolves every import path against <testdata>/src,
// caching packages so diamond imports share one *types.Package (type
// identity across the tree depends on it).
type testImporter struct {
	fset    *token.FileSet
	src     string
	pkgs    map[string]*loadedPkg
	loading map[string]bool
}

func newImporter(testdata string) *testImporter {
	return &testImporter{
		fset:    token.NewFileSet(),
		src:     filepath.Join(testdata, "src"),
		pkgs:    make(map[string]*loadedPkg),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer.
func (im *testImporter) Import(path string) (*types.Package, error) {
	lp, err := im.load(path)
	if err != nil {
		return nil, err
	}
	return lp.pkg, nil
}

func (im *testImporter) load(path string) (*loadedPkg, error) {
	if lp, ok := im.pkgs[path]; ok {
		return lp, nil
	}
	if im.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	im.loading[path] = true
	defer delete(im.loading, path)

	dir := filepath.Join(im.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("no testdata package at %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("testdata package %q has no .go files", path)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := types.Config{Importer: im}
	pkg, err := cfg.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %q: %w", path, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	im.pkgs[path] = lp
	return lp, nil
}
