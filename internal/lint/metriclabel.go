package lint

import (
	"go/ast"
	"go/types"
)

// MetricLabel enforces the bounded-cardinality contract of the obs
// metric taxonomy: label values must come from bounded sets
// (algorithm names, outcome codes, backend addresses fixed at
// construction) — never from request input. A dataset key or a
// stringified registry.Key as a label value mints one time series per
// distinct request, which is how a Prometheus scrape target grows
// until the scraper falls over. The obs package itself is exempt: it
// moves label values around generically, it does not choose them.
//
// Flagged label-value sources: any selector named Dataset, any
// expression of registry.Key type (so key.String() and fmt.Sprint(key)
// are both caught), and any field of a *Request type other than
// Algorithm. Checked sinks: obs.L's value argument, obs.Label
// composite literals, and the label argument of CounterVec.Add/Inc
// and HistogramVec.With/Observe.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc: "metriclabel flags metric label values drawn from unbounded sources " +
		"(dataset keys, registry.Key strings, request fields): each distinct " +
		"value mints a new time series, so label sets must stay bounded.",
	Run: runMetricLabel,
}

func runMetricLabel(pass *Pass) error {
	if pass.Pkg.Name() == "obs" {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkLabelCall(pass, n)
			case *ast.CompositeLit:
				checkLabelLiteral(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkLabelCall inspects the label-value argument of the obs
// package's label-accepting calls: L(name, value), and the vec
// methods keyed by a label value (Add, Inc, With, Observe).
func checkLabelCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return
	}
	switch obj.Name() {
	case "L":
		if len(call.Args) >= 2 {
			checkLabelValue(pass, call.Args[1])
		}
	case "Add", "Inc", "With", "Observe":
		if isVecMethod(obj) && len(call.Args) >= 1 {
			checkLabelValue(pass, call.Args[0])
		}
	}
}

// isVecMethod reports whether obj is a method of CounterVec or
// HistogramVec — the obs types keyed by a label value. Histogram also
// has an Observe, but its argument is the observation, not a label.
func isVecMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "CounterVec" || name == "HistogramVec"
}

// checkLabelLiteral inspects obs.Label composite literals: the Value
// element is a label value however the Label was built.
func checkLabelLiteral(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Label" ||
		named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "obs" {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Value" {
			checkLabelValue(pass, kv.Value)
		}
	}
}

// checkLabelValue walks one label-value expression and reports every
// unbounded source in it. An .Algorithm selector is bounded (the
// algorithm set is closed) and vouches for its whole subtree.
func checkLabelValue(pass *Pass, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if sel, ok := expr.(*ast.SelectorExpr); ok {
			switch {
			case sel.Sel.Name == "Algorithm":
				return false // bounded: the algorithm set is closed
			case sel.Sel.Name == "Dataset":
				pass.Reportf(sel.Pos(), "metric label value from a Dataset field: dataset names are unbounded request input, use a bounded label or drop it")
				return false
			case isRequestField(pass, sel):
				pass.Reportf(sel.Pos(), "metric label value from a request field: request input is unbounded, use a bounded label or drop it")
				return false
			}
		}
		if tv, ok := pass.TypesInfo.Types[expr]; ok && isRegistryKeyType(tv.Type) {
			pass.Reportf(expr.Pos(), "metric label value derived from a registry.Key: keys embed the dataset name, so each key mints a new time series")
			return false
		}
		return true
	})
}

// isRequestField reports whether sel reads a field of a named type
// ending in "Request" (SampleRequest, UpdateRequest, ...): request
// payloads carry client-chosen values.
func isRequestField(pass *Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return len(name) >= len("Request") && name[len(name)-len("Request"):] == "Request"
}
