// Package stats provides the statistical checks and measurement
// helpers used by the test suite and the experiment harness: a
// chi-square goodness-of-fit test for sample uniformity, a serial-
// correlation test for independence, and live-heap measurement for
// the memory experiment.
package stats

import (
	"fmt"
	"math"
	"runtime"
)

// ChiSquareUniform computes the chi-square statistic of observed
// counts against a uniform distribution over k categories with the
// given total number of draws. It returns the statistic and the
// degrees of freedom (k - 1).
func ChiSquareUniform(counts []int, draws int) (stat float64, dof int) {
	k := len(counts)
	if k == 0 || draws == 0 {
		return 0, 0
	}
	expected := float64(draws) / float64(k)
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, k - 1
}

// ChiSquareCritical approximates the upper critical value of the
// chi-square distribution at the given significance level using the
// Wilson–Hilferty cube-root normal approximation; accurate to a few
// percent for dof >= 10, which is all the harness needs.
func ChiSquareCritical(dof int, alpha float64) float64 {
	if dof <= 0 {
		return 0
	}
	z := normalQuantile(1 - alpha)
	d := float64(dof)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// normalQuantile returns the standard normal quantile via the
// Acklam rational approximation (max absolute error ~4.5e-4, ample
// for test thresholds).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// SerialCorrelation returns the lag-1 autocorrelation of the series;
// near zero for independent draws.
func SerialCorrelation(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var varSum, cov float64
	for i, x := range xs {
		varSum += (x - mean) * (x - mean)
		if i > 0 {
			cov += (x - mean) * (xs[i-1] - mean)
		}
	}
	if varSum == 0 {
		return 0
	}
	return cov / varSum
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (0 for fewer than 2
// elements).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return s / float64(len(xs))
}

// LiveHeapBytes forces a GC and returns the current live heap size;
// the memory experiment diffs it around structure construction.
func LiveHeapBytes() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// HumanBytes renders a byte count with a binary-unit suffix.
func HumanBytes(b int) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := int64(b) / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
