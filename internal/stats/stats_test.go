package stats

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/rng"
)

func TestChiSquareUniformZeroCases(t *testing.T) {
	if s, d := ChiSquareUniform(nil, 0); s != 0 || d != 0 {
		t.Fatal("empty input should be zero")
	}
	if s, d := ChiSquareUniform([]int{10}, 10); s != 0 || d != 0 {
		t.Fatalf("single category: stat=%g dof=%d", s, d)
	}
}

func TestChiSquareUniformPerfect(t *testing.T) {
	stat, dof := ChiSquareUniform([]int{100, 100, 100, 100}, 400)
	if stat != 0 || dof != 3 {
		t.Fatalf("perfect fit: stat=%g dof=%d", stat, dof)
	}
}

func TestChiSquareDetectsSkew(t *testing.T) {
	stat, dof := ChiSquareUniform([]int{400, 0, 0, 0}, 400)
	if stat <= ChiSquareCritical(dof, 0.001) {
		t.Fatalf("extreme skew not detected: stat=%g", stat)
	}
}

func TestChiSquareUniformRandomPasses(t *testing.T) {
	r := rng.New(1)
	const k, draws = 50, 100000
	counts := make([]int, k)
	for i := 0; i < draws; i++ {
		counts[r.Intn(k)]++
	}
	stat, dof := ChiSquareUniform(counts, draws)
	if crit := ChiSquareCritical(dof, 0.001); stat > crit {
		t.Fatalf("uniform RNG flagged: stat=%g > crit=%g", stat, crit)
	}
}

func TestChiSquareCriticalKnownValues(t *testing.T) {
	// Reference values from standard tables.
	cases := []struct {
		dof   int
		alpha float64
		want  float64
		tol   float64
	}{
		{10, 0.05, 18.31, 0.3},
		{30, 0.05, 43.77, 0.5},
		{100, 0.01, 135.81, 1.5},
		{9, 0.001, 27.88, 0.6},
	}
	for _, c := range cases {
		got := ChiSquareCritical(c.dof, c.alpha)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("ChiSquareCritical(%d, %g) = %g, want %g±%g", c.dof, c.alpha, got, c.want, c.tol)
		}
	}
	if ChiSquareCritical(0, 0.05) != 0 {
		t.Error("dof 0 should return 0")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.95996}, {0.999, 3.0902}, {0.025, -1.95996}, {0.01, -2.3263},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 0.01 {
			t.Errorf("normalQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("edge quantiles should be infinite")
	}
}

func TestSerialCorrelation(t *testing.T) {
	// Perfectly correlated ramp.
	ramp := make([]float64, 1000)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	if got := SerialCorrelation(ramp); got < 0.9 {
		t.Fatalf("ramp correlation = %g, want ~1", got)
	}
	// Alternating series: strongly negative.
	alt := make([]float64, 1000)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	if got := SerialCorrelation(alt); got > -0.9 {
		t.Fatalf("alternating correlation = %g, want ~-1", got)
	}
	// Random series: near zero.
	r := rng.New(2)
	rnd := make([]float64, 100000)
	for i := range rnd {
		rnd[i] = r.Float64()
	}
	if got := SerialCorrelation(rnd); math.Abs(got) > 0.02 {
		t.Fatalf("random correlation = %g, want ~0", got)
	}
	// Degenerate inputs.
	if SerialCorrelation(nil) != 0 || SerialCorrelation([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
	if SerialCorrelation([]float64{3, 3, 3}) != 0 {
		t.Fatal("constant series should return 0")
	}
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{5}) != 0 {
		t.Fatal("degenerate inputs")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %g, want 4", got)
	}
}

func TestLiveHeapBytes(t *testing.T) {
	before := LiveHeapBytes()
	block := make([]byte, 32<<20)
	for i := range block {
		block[i] = byte(i)
	}
	after := LiveHeapBytes()
	runtime.KeepAlive(block)
	if after <= before {
		t.Skip("heap measurement too noisy in this environment")
	}
	if after-before < 16<<20 {
		t.Errorf("32MiB allocation measured as %d bytes", after-before)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		in   int
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.in); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
