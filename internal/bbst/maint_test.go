package bbst

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// oraclePoints extracts the live point multiset of a pair, sorted for
// comparison.
func oraclePoints(p *Pair) []geom.Point {
	var out []geom.Point
	for _, b := range p.Buckets() {
		out = append(out, b.Pts...)
	}
	sortPoints(out)
	return out
}

func sortPoints(pts []geom.Point) {
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.X != b.X {
			return a.X < b.X
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.ID < b.ID
	})
}

func samePoints(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainstOracle verifies p against the plain point list: full
// structural invariants, exact membership under random corner queries,
// and the Lemma 5 upper-bound inequality.
func checkAgainstOracle(t *testing.T, p *Pair, live []geom.Point, r *rng.RNG, extent float64) {
	t.Helper()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if p.NumPoints() != len(live) {
		t.Fatalf("NumPoints = %d, oracle has %d", p.NumPoints(), len(live))
	}
	got := oraclePoints(p)
	want := append([]geom.Point(nil), live...)
	sortPoints(want)
	if !samePoints(got, want) {
		t.Fatalf("point multiset diverged: %d stored vs %d oracle", len(got), len(want))
	}
	var s Scratch
	for trial := 0; trial < 10; trial++ {
		q := geom.Point{X: r.Range(-1, extent+1), Y: r.Range(-1, extent+1)}
		w := geom.Window(q, r.Range(0.1, extent/2))
		for _, c := range allCorners {
			pred := cornerPredicate(c, w)
			exact := 0
			for _, pt := range live {
				if pred(pt) {
					exact++
				}
			}
			if mu := p.MuS(c, w, &s); exact > mu {
				t.Fatalf("%v: exact %d > µ %d after churn", c, exact, mu)
			}
			reported := 0
			p.ReportPoints(c, w, &s, func(geom.Point) bool { reported++; return true })
			if reported != exact {
				t.Fatalf("%v: reported %d points, oracle says %d", c, reported, exact)
			}
		}
	}
}

func TestInsertIntoEmptyPair(t *testing.T) {
	p, err := Build(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	var live []geom.Point
	for i := 0; i < 100; i++ {
		pt := geom.Point{X: r.Range(0, 20), Y: r.Range(0, 20), ID: int32(i)}
		if err := p.Insert(pt); err != nil {
			t.Fatal(err)
		}
		live = append(live, pt)
	}
	checkAgainstOracle(t, p, live, r, 20)
}

func TestDeleteToEmptyAndRefill(t *testing.T) {
	r := rng.New(2)
	pts := sortedPoints(r, 60, 10)
	p, err := Build(pts, BucketCap(60))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		found, err := p.Delete(pt)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("point %v not found", pt)
		}
	}
	if p.NumPoints() != 0 || p.NumBuckets() != 0 {
		t.Fatalf("drained pair not empty: %d points, %d buckets", p.NumPoints(), p.NumBuckets())
	}
	if found, _ := p.Delete(pts[0]); found {
		t.Fatal("delete on empty pair reported found")
	}
	var live []geom.Point
	for i := 0; i < 40; i++ {
		pt := geom.Point{X: r.Range(0, 10), Y: r.Range(0, 10), ID: int32(1000 + i)}
		if err := p.Insert(pt); err != nil {
			t.Fatal(err)
		}
		live = append(live, pt)
	}
	checkAgainstOracle(t, p, live, r, 10)
}

// TestSustainedChurnAgainstOracle is the long-haul maintenance test:
// thousands of random inserts and deletes (forcing splits, merges,
// steals, and bucket death) with invariants and oracle agreement
// checked throughout, and a final cross-check against a from-scratch
// bulk rebuild of the surviving points.
func TestSustainedChurnAgainstOracle(t *testing.T) {
	r := rng.New(3)
	const extent = 30.0
	pts := sortedPoints(r, 500, extent)
	p, err := Build(pts, BucketCap(500))
	if err != nil {
		t.Fatal(err)
	}
	live := append([]geom.Point(nil), pts...)
	nextID := int32(10000)
	for step := 0; step < 4000; step++ {
		if len(live) > 0 && r.Bool(0.5) {
			i := r.Intn(len(live))
			found, err := p.Delete(live[i])
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("step %d: live point %v not found", step, live[i])
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			pt := geom.Point{X: r.Range(0, extent), Y: r.Range(0, extent), ID: nextID}
			nextID++
			if err := p.Insert(pt); err != nil {
				t.Fatal(err)
			}
			live = append(live, pt)
		}
		if step%400 == 0 {
			checkAgainstOracle(t, p, live, r, extent)
		}
	}
	checkAgainstOracle(t, p, live, r, extent)

	// A from-scratch bulk build over the survivors must agree on every
	// exact query (bucketization differs; the answered point sets must
	// not).
	sorted := append([]geom.Point(nil), live...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	fresh, err := Build(sorted, p.Cap())
	if err != nil {
		t.Fatal(err)
	}
	var s1, s2 Scratch
	for trial := 0; trial < 100; trial++ {
		w := geom.Window(geom.Point{X: r.Range(0, extent), Y: r.Range(0, extent)}, r.Range(0.5, 10))
		for _, c := range allCorners {
			a := map[int32]bool{}
			p.ReportPoints(c, w, &s1, func(pt geom.Point) bool { a[pt.ID] = true; return true })
			b := map[int32]bool{}
			fresh.ReportPoints(c, w, &s2, func(pt geom.Point) bool { b[pt.ID] = true; return true })
			if len(a) != len(b) {
				t.Fatalf("%v: churned pair reports %d points, fresh build %d", c, len(a), len(b))
			}
			for id := range a {
				if !b[id] {
					t.Fatalf("%v: churned pair reports %d, fresh build does not", c, id)
				}
			}
		}
	}
}

// TestChurnSamplingUniform verifies the paper's uniformity argument
// survives maintenance: after heavy churn, accepted SampleSlot draws
// are uniform over the qualifying points.
func TestChurnSamplingUniform(t *testing.T) {
	r := rng.New(4)
	pts := sortedPoints(r, 200, 20)
	p, err := Build(pts, 7)
	if err != nil {
		t.Fatal(err)
	}
	live := map[int32]geom.Point{}
	for _, pt := range pts {
		live[pt.ID] = pt
	}
	ids := make([]int32, 0, len(live))
	for _, pt := range pts {
		ids = append(ids, pt.ID)
	}
	nextID := int32(5000)
	for step := 0; step < 3000; step++ {
		if len(ids) > 50 && r.Bool(0.5) {
			i := r.Intn(len(ids))
			id := ids[i]
			if found, _ := p.Delete(live[id]); !found {
				t.Fatalf("step %d: delete missed", step)
			}
			delete(live, id)
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
		} else {
			pt := geom.Point{X: r.Range(0, 20), Y: r.Range(0, 20), ID: nextID}
			if err := p.Insert(pt); err != nil {
				t.Fatal(err)
			}
			live[nextID] = pt
			ids = append(ids, nextID)
			nextID++
		}
	}
	w := geom.Rect{XMin: 5, YMin: 5, XMax: 40, YMax: 40}
	pred := cornerPredicate(SouthWest, w)
	qualifying := map[int32]bool{}
	for id, pt := range live {
		if pred(pt) {
			qualifying[id] = true
		}
	}
	if len(qualifying) < 10 {
		t.Fatalf("setup too sparse: %d qualifying", len(qualifying))
	}
	var s Scratch
	counts := map[int32]int{}
	accepted := 0
	const draws = 300000
	for i := 0; i < draws; i++ {
		pt, ok := p.SampleSlotS(SouthWest, w, r, &s)
		if !ok || !pred(pt) {
			continue
		}
		if !qualifying[pt.ID] {
			t.Fatalf("sampled non-live or non-qualifying point %d", pt.ID)
		}
		counts[pt.ID]++
		accepted++
	}
	if accepted < draws/8 {
		t.Fatalf("acceptance collapsed after churn: %d/%d", accepted, draws)
	}
	expected := float64(accepted) / float64(len(qualifying))
	chi2 := 0.0
	for id := range qualifying {
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	if dof := float64(len(qualifying) - 1); chi2 > 2*dof+50 {
		t.Fatalf("post-churn sampling skewed: chi2 = %g (dof %g)", chi2, dof)
	}
}

// TestDepthHatchBoundsHeight drives the worst case for a key-immutable
// BST — strictly ascending inserts — and checks the rebuild hatch
// keeps the height logarithmic.
func TestDepthHatchBoundsHeight(t *testing.T) {
	p, err := Build(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		pt := geom.Point{X: float64(i), Y: float64(i % 97), ID: int32(i)}
		if err := p.Insert(pt); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	nb := p.NumBuckets()
	limit := 2*int(math.Ceil(math.Log2(float64(nb)))) + 10
	if h := p.Height(); h > limit {
		t.Fatalf("height %d exceeds hatch bound %d (%d buckets)", h, limit, nb)
	}
	// Descending, for the mirrored lean.
	p2, _ := Build(nil, 5)
	for i := 0; i < 4000; i++ {
		pt := geom.Point{X: float64(-i), Y: float64(i % 89), ID: int32(i)}
		if err := p2.Insert(pt); err != nil {
			t.Fatal(err)
		}
	}
	if err := p2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	nb = p2.NumBuckets()
	limit = 2*int(math.Ceil(math.Log2(float64(nb)))) + 10
	if h := p2.Height(); h > limit {
		t.Fatalf("descending height %d exceeds hatch bound %d (%d buckets)", h, limit, nb)
	}
}

// TestCloneForUpdateIsolation pins the copy-on-write contract: heavy
// mutation of a clone leaves the original's answers byte-identical.
func TestCloneForUpdateIsolation(t *testing.T) {
	r := rng.New(6)
	pts := sortedPoints(r, 300, 15)
	p, err := Build(pts, BucketCap(300))
	if err != nil {
		t.Fatal(err)
	}
	type answer struct {
		count int
		ids   []int32
	}
	queries := make([]geom.Rect, 40)
	for i := range queries {
		queries[i] = geom.Window(geom.Point{X: r.Range(0, 15), Y: r.Range(0, 15)}, r.Range(0.5, 6))
	}
	snap := func(pr *Pair) []answer {
		var s Scratch
		var out []answer
		for _, w := range queries {
			for _, c := range allCorners {
				a := answer{count: pr.CountBucketsS(c, w, &s)}
				pr.ReportPoints(c, w, &s, func(pt geom.Point) bool {
					a.ids = append(a.ids, pt.ID)
					return true
				})
				out = append(out, a)
			}
		}
		return out
	}
	before := snap(p)

	cl := p.CloneForUpdate()
	for i := 0; i < 2000; i++ {
		if r.Bool(0.5) && cl.NumPoints() > 0 {
			bks := cl.Buckets()
			b := bks[r.Intn(len(bks))]
			if _, err := cl.Delete(b.Pts[r.Intn(len(b.Pts))]); err != nil {
				t.Fatal(err)
			}
		} else {
			pt := geom.Point{X: r.Range(0, 15), Y: r.Range(0, 15), ID: int32(9000 + i)}
			if err := cl.Insert(pt); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("original invariants after clone churn: %v", err)
	}
	after := snap(p)
	if len(before) != len(after) {
		t.Fatal("snapshot shape changed")
	}
	for i := range before {
		if before[i].count != after[i].count || len(before[i].ids) != len(after[i].ids) {
			t.Fatalf("query %d: original's answers changed under clone mutation", i)
		}
		for j := range before[i].ids {
			if before[i].ids[j] != after[i].ids[j] {
				t.Fatalf("query %d: original's reported ids changed", i)
			}
		}
	}
}

func TestMutationRefusedWhenFrozen(t *testing.T) {
	r := rng.New(7)
	pts := sortedPoints(r, 50, 10)
	p, err := Build(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableFractionalCascading()
	if err := p.Insert(geom.Point{X: 1, Y: 1, ID: 99}); err == nil {
		t.Fatal("Insert on FC pair should fail")
	}
	if _, err := p.Delete(pts[0]); err == nil {
		t.Fatal("Delete on FC pair should fail")
	}
	// The clone sheds FC and mutates freely.
	cl := p.CloneForUpdate()
	if cl.HasFractionalCascading() {
		t.Fatal("clone kept FC")
	}
	if err := cl.Insert(geom.Point{X: 1, Y: 1, ID: 99}); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePointsChurn(t *testing.T) {
	// Many identical coordinates stress equal-key runs in order, trees,
	// and y-arrays.
	p, err := Build(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	var live []geom.Point
	r := rng.New(8)
	for i := 0; i < 600; i++ {
		pt := geom.Point{X: float64(i % 3), Y: float64(i % 2), ID: int32(i)}
		if err := p.Insert(pt); err != nil {
			t.Fatal(err)
		}
		live = append(live, pt)
	}
	checkAgainstOracle(t, p, live, r, 3)
	for i := 0; i < 400; i++ {
		j := r.Intn(len(live))
		if found, _ := p.Delete(live[j]); !found {
			t.Fatalf("delete %v missed", live[j])
		}
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	checkAgainstOracle(t, p, live, r, 3)
}

func BenchmarkInsert(b *testing.B) {
	r := rng.New(9)
	pts := sortedPoints(r, 1<<14, 1000)
	p, _ := Build(pts, BucketCap(1<<14))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := geom.Point{X: r.Range(0, 1000), Y: r.Range(0, 1000), ID: int32(1 << 20)}
		if err := p.Insert(pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeleteInsert(b *testing.B) {
	r := rng.New(10)
	pts := sortedPoints(r, 1<<14, 1000)
	p, _ := Build(pts, BucketCap(1<<14))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bks := p.Buckets()
		victim := bks[r.Intn(len(bks))].Pts[0]
		if found, err := p.Delete(victim); err != nil || !found {
			b.Fatalf("delete: %v found=%v", err, found)
		}
		if err := p.Insert(victim); err != nil {
			b.Fatal(err)
		}
	}
}
