package bbst

// In-place maintenance (the dynamic half of Section IV-B). Definition
// 3's capacity b = ceil(log2 m) leaves deliberate slack in every
// bucket, which is what makes the structure insert-friendly: a point
// insert fills slack, a full bucket splits in two, an underflowing
// bucket merges with (or steals from) an x-adjacent neighbor, and in
// every case only the O(log) root paths of the two trees are patched —
// the id is removed from the per-node y-orders under its old summary
// and re-inserted under the new one, with empty subtrees pruned on the
// way out. Tree node keys are immutable; inserts that find no node
// with their key grow a leaf, and a depth escape hatch rebuilds a
// cell's trees (O(nb log nb), amortized away) when repeated
// single-sided growth has made them lopsided.
//
// Concurrency contract: Insert and Delete mutate the Pair and must be
// externally serialized against readers. For the serving stack's
// snapshot discipline, CloneForUpdate produces a Pair whose mutations
// never write through to the original: the bucket table, order, and
// tree arrays are copied eagerly (O(cell) once per touched cell per
// update batch), while point slices are shared — safe because every
// bucket mutation replaces the Pts slice instead of writing into it.

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/geom"
)

// ErrFrozen reports a mutation attempted on a pair with fractional
// cascading enabled: the bridge arrays index positions of the y-orders
// and cannot survive edits, so FC pairs are frozen (the dynamic path
// never enables FC).
var ErrFrozen = fmt.Errorf("bbst: pair is frozen (fractional cascading enabled)")

// Insert adds one point to the cell, maintaining bucket occupancy
// 1..Cap(), exact summaries, and the x-disjointness of bucket ranges.
// Cost: O(log m) slice work in the target bucket plus O(log) tree-path
// patches (amortized — a split or the depth hatch costs more).
func (p *Pair) Insert(pt geom.Point) error {
	if p.fcOn {
		return ErrFrozen
	}
	if len(p.order) == 0 {
		id := p.allocBucket(bucketOf([]geom.Point{pt}))
		p.attach(id)
		p.npts++
		return nil
	}
	// Target: the last bucket whose MinX <= pt.X (the first bucket when
	// pt precedes them all). Disjoint ranges make this the only bucket
	// that can contain pt.X, or the nearest one when pt falls in a gap.
	pos := sort.Search(len(p.order), func(i int) bool {
		return p.buckets[p.order[i]].MinX > pt.X
	}) - 1
	if pos < 0 {
		pos = 0
	}
	id := p.order[pos]
	if b := p.buckets[id]; b.Len() >= p.cap {
		if b.Len() >= 2 {
			hiID := p.split(id)
			if pt.X >= p.buckets[hiID].MinX {
				id = hiID
			}
		} else {
			// cap == 1: a full bucket is a singleton and cannot halve;
			// grow a fresh singleton for the new point instead.
			nid := p.allocBucket(bucketOf([]geom.Point{pt}))
			p.attach(nid)
			p.npts++
			if p.deep {
				p.rebuildTrees()
			}
			return nil
		}
	}
	p.bucketInsert(id, pt)
	p.npts++
	if p.deep {
		p.rebuildTrees()
	}
	return nil
}

// Delete removes the live point equal to pt (matching X, Y, and ID)
// and reports whether one was found. When several identical points
// exist, exactly one is removed. Underflow (occupancy below Cap()/4)
// triggers a merge with an x-adjacent bucket when the union fits, or a
// boundary-point steal otherwise, so acceptance never decays from
// emptying buckets.
func (p *Pair) Delete(pt geom.Point) (bool, error) {
	if p.fcOn {
		return false, ErrFrozen
	}
	// Candidate buckets have MinX <= pt.X <= MaxX: a run ending at the
	// last bucket with MinX <= pt.X (disjointness bounds the leftward
	// scan by the first bucket with MaxX < pt.X).
	hi := sort.Search(len(p.order), func(i int) bool {
		return p.buckets[p.order[i]].MinX > pt.X
	})
	for pos := hi - 1; pos >= 0; pos-- {
		id := p.order[pos]
		b := p.buckets[id]
		if b.MaxX < pt.X {
			break
		}
		for j, q := range b.Pts {
			if q.X == pt.X && q.Y == pt.Y && q.ID == pt.ID {
				p.removePoint(id, j)
				p.npts--
				if p.deep {
					// Rebalancing reattachments can grow leaves too.
					p.rebuildTrees()
				}
				return true, nil
			}
		}
	}
	return false, nil
}

// allocBucket places b in the bucket table (reusing a free slot when
// one exists) and returns its id, without attaching it to order/trees.
func (p *Pair) allocBucket(b Bucket) int32 {
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		p.buckets[id] = b
		return id
	}
	p.buckets = append(p.buckets, b)
	return int32(len(p.buckets) - 1)
}

// attach inserts a live bucket id into the order list and both trees,
// keyed by its current summary.
func (p *Pair) attach(id int32) {
	p.orderInsert(id)
	p.treeInsert(&p.tMin, p.buckets[id].MinX, id)
	p.treeInsert(&p.tMax, p.buckets[id].MaxX, id)
}

// detach removes a bucket id from the order list and both trees. It
// must run before the bucket's summary is mutated — navigation uses
// the summary the structures were attached under.
func (p *Pair) detach(id int32) {
	p.orderRemove(id)
	p.treeRemove(&p.tMin, p.buckets[id].MinX, id)
	p.treeRemove(&p.tMax, p.buckets[id].MaxX, id)
}

// bucketInsert adds pt to bucket id, copying the point slice (never
// writing through a possibly-shared backing array) and repositioning
// the bucket in order/trees when its summary changes.
func (p *Pair) bucketInsert(id int32, pt geom.Point) {
	b := p.buckets[id]
	changed := pt.X < b.MinX || pt.X > b.MaxX || pt.Y < b.MinY || pt.Y > b.MaxY
	if changed {
		p.detach(id)
	}
	i := sort.Search(len(b.Pts), func(j int) bool { return b.Pts[j].X > pt.X })
	np := make([]geom.Point, len(b.Pts)+1)
	copy(np, b.Pts[:i])
	np[i] = pt
	copy(np[i+1:], b.Pts[i:])
	b.Pts = np
	b.MinX = math.Min(b.MinX, pt.X)
	b.MaxX = math.Max(b.MaxX, pt.X)
	b.MinY = math.Min(b.MinY, pt.Y)
	b.MaxY = math.Max(b.MaxY, pt.Y)
	p.buckets[id] = b
	if changed {
		p.attach(id)
	}
}

// split divides a full bucket into two x-halves, attaching the upper
// half as a fresh bucket, and returns the new bucket's id.
func (p *Pair) split(id int32) int32 {
	b := p.buckets[id]
	h := len(b.Pts) / 2
	lo := append([]geom.Point(nil), b.Pts[:h]...)
	hiPts := append([]geom.Point(nil), b.Pts[h:]...)
	p.detach(id)
	p.buckets[id] = bucketOf(lo)
	p.attach(id)
	hiID := p.allocBucket(bucketOf(hiPts))
	p.attach(hiID)
	return hiID
}

// removePoint deletes point index j from bucket id and rebalances:
// an emptied bucket dies, an underflowing one merges with or steals
// from an x-adjacent neighbor.
func (p *Pair) removePoint(id int32, j int) {
	b := p.buckets[id]
	if len(b.Pts) == 1 {
		p.detach(id)
		p.freeBucket(id)
		return
	}
	np := make([]geom.Point, len(b.Pts)-1)
	copy(np, b.Pts[:j])
	copy(np[j:], b.Pts[j+1:])
	nb := bucketOf(np)
	changed := nb.MinX != b.MinX || nb.MaxX != b.MaxX || nb.MinY != b.MinY || nb.MaxY != b.MaxY
	if changed {
		p.detach(id)
	}
	p.buckets[id] = nb
	if changed {
		p.attach(id)
	}
	if 4*len(np) < p.cap && len(p.order) > 1 {
		p.rebalance(id)
	}
}

// freeBucket marks id dead and recycles its slot.
func (p *Pair) freeBucket(id int32) {
	p.buckets[id] = Bucket{}
	p.free = append(p.free, id)
}

// rebalance fixes an underflowing bucket: merge with an x-adjacent
// neighbor when the union fits in one bucket, otherwise steal the
// neighbor's boundary point. Both preserve x-disjointness.
func (p *Pair) rebalance(id int32) {
	pos := p.orderPos(id)
	nbrPos := pos + 1
	if nbrPos >= len(p.order) {
		nbrPos = pos - 1
	}
	nid := p.order[nbrPos]
	b, nb := p.buckets[id], p.buckets[nid]
	if b.Len()+nb.Len() <= p.cap {
		// Merge: concatenate in x order (the lower-range bucket first).
		first, second := b.Pts, nb.Pts
		if nbrPos < pos {
			first, second = nb.Pts, b.Pts
		}
		merged := make([]geom.Point, 0, len(first)+len(second))
		merged = append(append(merged, first...), second...)
		p.detach(id)
		p.detach(nid)
		p.buckets[id] = bucketOf(merged)
		p.attach(id)
		p.freeBucket(nid)
		return
	}
	// Steal the neighbor's point nearest our range.
	var stolen geom.Point
	var rest []geom.Point
	if nbrPos > pos {
		stolen = nb.Pts[0]
		rest = append([]geom.Point(nil), nb.Pts[1:]...)
	} else {
		stolen = nb.Pts[len(nb.Pts)-1]
		rest = append([]geom.Point(nil), nb.Pts[:len(nb.Pts)-1]...)
	}
	p.detach(nid)
	p.buckets[nid] = bucketOf(rest)
	p.attach(nid)
	p.bucketInsert(id, stolen)
}

// orderPos locates id in the order list: binary search by MinX, then a
// scan across the equal-MinX run.
func (p *Pair) orderPos(id int32) int {
	minX := p.buckets[id].MinX
	i := sort.Search(len(p.order), func(j int) bool {
		return p.buckets[p.order[j]].MinX >= minX
	})
	for ; i < len(p.order); i++ {
		if p.order[i] == id {
			return i
		}
		if p.buckets[p.order[i]].MinX > minX {
			break
		}
	}
	panic("bbst: bucket id missing from order list")
}

// orderInsert places id into the order list by (MinX, MaxX). The
// secondary key matters for ties: disjointness forces every MinX-tied
// bucket except the last to be degenerate (MaxX == MinX), so sorting
// ties by MaxX keeps a freshly split-off or stolen-into bucket in
// front of a wider one sharing its MinX.
func (p *Pair) orderInsert(id int32) {
	minX, maxX := p.buckets[id].MinX, p.buckets[id].MaxX
	i := sort.Search(len(p.order), func(j int) bool {
		b := p.buckets[p.order[j]]
		if b.MinX != minX {
			return b.MinX > minX
		}
		return b.MaxX > maxX
	})
	p.order = append(p.order, 0)
	copy(p.order[i+1:], p.order[i:])
	p.order[i] = id
}

// orderRemove deletes id from the order list.
func (p *Pair) orderRemove(id int32) {
	i := p.orderPos(id)
	copy(p.order[i:], p.order[i+1:])
	p.order = p.order[:len(p.order)-1]
}

// depthLimit is the insert-path depth past which the trees are
// considered lopsided enough to rebuild: twice the balanced height
// plus slack for the churn between hatch firings.
func (p *Pair) depthLimit() int {
	return 2*bits.Len(uint(len(p.order))) + 8
}

// treeInsert adds id (with tree key k) along the root path of t:
// every visited node's subtree y-orders gain the id at its summary's
// position; the node owning key k (grown as a leaf when absent) also
// gains it in its b-lists.
func (p *Pair) treeInsert(t *tree, k float64, id int32) {
	link := &t.root
	depth := 0
	for {
		u := *link
		if u == nil {
			*link = &node{
				x:     k,
				bMinY: []int32{id}, bMaxY: []int32{id},
				aMinY: []int32{id}, aMaxY: []int32{id},
			}
			break
		}
		depth++
		u.aMinY = p.insertMinY(u.aMinY, id)
		u.aMaxY = p.insertMaxY(u.aMaxY, id)
		switch {
		case k == u.x:
			u.bMinY = p.insertMinY(u.bMinY, id)
			u.bMaxY = p.insertMaxY(u.bMaxY, id)
			if depth > p.depthLimit() {
				p.deep = true
			}
			return
		case k < u.x:
			link = &u.left
		default:
			link = &u.right
		}
	}
	if depth > p.depthLimit() {
		p.deep = true
	}
}

// treeRemove deletes id (attached under tree key k) from the root
// path of t and prunes any subtree the removal emptied.
func (p *Pair) treeRemove(t *tree, k float64, id int32) {
	var path []**node
	link := &t.root
	for {
		u := *link
		if u == nil {
			panic("bbst: treeRemove: bucket id not reachable under its key")
		}
		path = append(path, link)
		u.aMinY = p.removeMinY(u.aMinY, id)
		u.aMaxY = p.removeMaxY(u.aMaxY, id)
		if k == u.x {
			u.bMinY = p.removeMinY(u.bMinY, id)
			u.bMaxY = p.removeMaxY(u.bMaxY, id)
			break
		}
		if k < u.x {
			link = &u.left
		} else {
			link = &u.right
		}
	}
	// An empty subtree array means no bucket lives below: unlink. Only
	// a suffix of the path can be empty (subtree sizes shrink downward).
	for i := len(path) - 1; i >= 0; i-- {
		if len((*path[i]).aMinY) != 0 {
			break
		}
		*path[i] = nil
	}
}

// insertMinY/insertMaxY splice id into a MinY- (MaxY-) ascending id
// array at its bucket's current value, in place (node arrays are
// uniquely owned by their Pair).
func (p *Pair) insertMinY(ids []int32, id int32) []int32 {
	y := p.buckets[id].MinY
	i := sort.Search(len(ids), func(j int) bool { return p.buckets[ids[j]].MinY > y })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

func (p *Pair) insertMaxY(ids []int32, id int32) []int32 {
	y := p.buckets[id].MaxY
	i := sort.Search(len(ids), func(j int) bool { return p.buckets[ids[j]].MaxY > y })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeMinY/removeMaxY delete id from a y-ascending id array: binary
// search to the start of the equal-value run, scan for the id.
func (p *Pair) removeMinY(ids []int32, id int32) []int32 {
	y := p.buckets[id].MinY
	i := sort.Search(len(ids), func(j int) bool { return p.buckets[ids[j]].MinY >= y })
	for ; i < len(ids); i++ {
		if ids[i] == id {
			copy(ids[i:], ids[i+1:])
			return ids[:len(ids)-1]
		}
	}
	panic("bbst: bucket id missing from MinY order")
}

func (p *Pair) removeMaxY(ids []int32, id int32) []int32 {
	y := p.buckets[id].MaxY
	i := sort.Search(len(ids), func(j int) bool { return p.buckets[ids[j]].MaxY >= y })
	for ; i < len(ids); i++ {
		if ids[i] == id {
			copy(ids[i:], ids[i+1:])
			return ids[:len(ids)-1]
		}
	}
	panic("bbst: bucket id missing from MaxY order")
}

// CloneForUpdate returns a pair whose Insert/Delete never write
// through to the receiver: bucket table, order/free lists, and all
// tree nodes with their id arrays are copied; point slices are shared
// (bucket mutations replace, never write into, Pts). Fractional
// cascading does not survive the clone — the clone is for mutating,
// and mutation invalidates bridges.
func (p *Pair) CloneForUpdate() *Pair {
	np := &Pair{
		buckets: append([]Bucket(nil), p.buckets...),
		order:   append([]int32(nil), p.order...),
		free:    append([]int32(nil), p.free...),
		npts:    p.npts,
		cap:     p.cap,
	}
	np.tMin.root = cloneNode(p.tMin.root)
	np.tMax.root = cloneNode(p.tMax.root)
	return np
}

func cloneNode(u *node) *node {
	if u == nil {
		return nil
	}
	return &node{
		x:     u.x,
		bMinY: append([]int32(nil), u.bMinY...),
		bMaxY: append([]int32(nil), u.bMaxY...),
		aMinY: append([]int32(nil), u.aMinY...),
		aMaxY: append([]int32(nil), u.aMaxY...),
		left:  cloneNode(u.left),
		right: cloneNode(u.right),
	}
}

// CheckInvariants verifies the full structural contract — bucket
// occupancy and exact summaries, x-sorted disjoint order, free-list
// consistency, and both trees' key/y-order/subtree-array invariants.
// Test batteries (race hammer, fuzz) call it after every operation.
func (p *Pair) CheckInvariants() error {
	if p.cap < 1 {
		return fmt.Errorf("bbst: cap %d < 1", p.cap)
	}
	live := make(map[int32]bool, len(p.order))
	npts := 0
	for i, id := range p.order {
		if id < 0 || int(id) >= len(p.buckets) {
			return fmt.Errorf("bbst: order[%d] = %d out of table range", i, id)
		}
		if live[id] {
			return fmt.Errorf("bbst: bucket %d appears twice in order", id)
		}
		live[id] = true
		b := p.buckets[id]
		if b.Pts == nil {
			return fmt.Errorf("bbst: order[%d] = %d is a dead bucket", i, id)
		}
		if b.Len() < 1 || b.Len() > p.cap {
			return fmt.Errorf("bbst: bucket %d occupancy %d outside [1,%d]", id, b.Len(), p.cap)
		}
		want := bucketOf(b.Pts)
		if b.MinX != want.MinX || b.MaxX != want.MaxX || b.MinY != want.MinY || b.MaxY != want.MaxY {
			return fmt.Errorf("bbst: bucket %d summary not exact", id)
		}
		for j := 1; j < len(b.Pts); j++ {
			if b.Pts[j-1].X > b.Pts[j].X {
				return fmt.Errorf("bbst: bucket %d points not x-sorted at %d", id, j)
			}
		}
		if i > 0 {
			prev := p.buckets[p.order[i-1]]
			if prev.MinX > b.MinX || prev.MaxX > b.MinX {
				return fmt.Errorf("bbst: order not x-disjoint at position %d", i)
			}
		}
		npts += b.Len()
	}
	if npts != p.npts {
		return fmt.Errorf("bbst: npts %d != summed occupancy %d", p.npts, npts)
	}
	for _, id := range p.free {
		if live[id] {
			return fmt.Errorf("bbst: bucket %d both live and free", id)
		}
		if int(id) >= len(p.buckets) || p.buckets[id].Pts != nil {
			return fmt.Errorf("bbst: free bucket %d not dead", id)
		}
	}
	if len(p.order)+len(p.free) != len(p.buckets) {
		return fmt.Errorf("bbst: %d live + %d free != %d table slots",
			len(p.order), len(p.free), len(p.buckets))
	}
	if err := p.checkTree(p.tMin.root, live, func(b Bucket) float64 { return b.MinX },
		math.Inf(-1), math.Inf(1)); err != nil {
		return fmt.Errorf("tMin: %w", err)
	}
	if err := p.checkTree(p.tMax.root, live, func(b Bucket) float64 { return b.MaxX },
		math.Inf(-1), math.Inf(1)); err != nil {
		return fmt.Errorf("tMax: %w", err)
	}
	for _, root := range []*node{p.tMin.root, p.tMax.root} {
		n := 0
		if root != nil {
			n = len(root.aMinY)
		}
		if n != len(p.order) {
			return fmt.Errorf("bbst: root subtree holds %d buckets, %d live", n, len(p.order))
		}
	}
	return nil
}

// checkTree validates one subtree: key bounds, y-sorted arrays, b-list
// keys equal to the node key, a-arrays exactly the union of the b-list
// and child a-arrays, and no empty subtrees.
func (p *Pair) checkTree(u *node, live map[int32]bool, key func(Bucket) float64, lo, hi float64) error {
	if u == nil {
		return nil
	}
	if !(u.x > lo) || !(u.x < hi) {
		return fmt.Errorf("node key %g outside (%g, %g)", u.x, lo, hi)
	}
	if len(u.aMinY) == 0 {
		return fmt.Errorf("empty subtree at key %g not pruned", u.x)
	}
	if len(u.aMinY) != len(u.aMaxY) || len(u.bMinY) != len(u.bMaxY) {
		return fmt.Errorf("order lengths disagree at key %g", u.x)
	}
	for _, id := range u.bMinY {
		if !live[id] {
			return fmt.Errorf("dead bucket %d in b-list at key %g", id, u.x)
		}
		if key(p.buckets[id]) != u.x {
			return fmt.Errorf("bucket %d key %g in b-list of node %g", id, key(p.buckets[id]), u.x)
		}
	}
	for j := 1; j < len(u.bMinY); j++ {
		if p.buckets[u.bMinY[j-1]].MinY > p.buckets[u.bMinY[j]].MinY {
			return fmt.Errorf("bMinY unsorted at key %g", u.x)
		}
	}
	for j := 1; j < len(u.bMaxY); j++ {
		if p.buckets[u.bMaxY[j-1]].MaxY > p.buckets[u.bMaxY[j]].MaxY {
			return fmt.Errorf("bMaxY unsorted at key %g", u.x)
		}
	}
	for j := 1; j < len(u.aMinY); j++ {
		if p.buckets[u.aMinY[j-1]].MinY > p.buckets[u.aMinY[j]].MinY {
			return fmt.Errorf("aMinY unsorted at key %g", u.x)
		}
	}
	for j := 1; j < len(u.aMaxY); j++ {
		if p.buckets[u.aMaxY[j-1]].MaxY > p.buckets[u.aMaxY[j]].MaxY {
			return fmt.Errorf("aMaxY unsorted at key %g", u.x)
		}
	}
	want := map[int32]int{}
	for _, id := range u.bMinY {
		want[id]++
	}
	if u.left != nil {
		for _, id := range u.left.aMinY {
			want[id]++
		}
	}
	if u.right != nil {
		for _, id := range u.right.aMinY {
			want[id]++
		}
	}
	got := map[int32]int{}
	for _, id := range u.aMinY {
		got[id]++
	}
	if len(got) != len(want) {
		return fmt.Errorf("a-array of node %g is not the union of b-list and children", u.x)
	}
	for id, n := range want {
		if got[id] != n {
			return fmt.Errorf("a-array of node %g disagrees on bucket %d", u.x, id)
		}
	}
	if err := p.checkTree(u.left, live, key, lo, u.x); err != nil {
		return err
	}
	return p.checkTree(u.right, live, key, u.x, hi)
}
