// Package bbst implements the Bucket-based Binary Search Tree, the
// core data structure of "Random Sampling over Spatial Range Joins"
// (ICDE 2025, Section IV-B).
//
// A BBST answers 2-sided orthogonal range questions over the points of
// one grid cell — exactly the queries that arise at the four corner
// cells of a window's 3x3 neighborhood (case 3). The points of the
// cell, pre-sorted by x, are partitioned into consecutive buckets of
// capacity b = ceil(log2 m); each bucket records min/max of both
// coordinates. A balanced binary search tree is built over the buckets
// keyed by the bucket's min-x (T^min) or max-x (T^max); every node
// additionally stores the buckets of its subtree in two y-orders (by
// min-y and by max-y), which is what turns the second coordinate into
// a binary search instead of a tree walk.
//
// For a corner query the tree gives a canonical decomposition of the
// x-constraint into O(log) node sets; within each set a binary search
// on the appropriate y-order counts matching buckets. The approximate
// count is (number of matching buckets) x b, which Lemma 5 of the
// paper shows is an O(log m)-approximate upper bound of the exact
// count. The same decomposition supports drawing a uniform (bucket,
// slot) pair, which is how the sampling phase picks candidate points.
package bbst

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Bucket summarizes one bucket of a cell: at most Cap() points in
// ascending x order, plus the exact min/max of both coordinates. After
// a bulk Build the Pts slices are zero-copy windows into the caller's
// x-sorted slice; every in-place mutation (Insert/Delete) replaces the
// slice rather than writing through it, so the caller's backing array
// is never modified. A nil Pts marks a dead (free-listed) slot in the
// Pair's bucket table and never appears in query results.
type Bucket struct {
	Pts        []geom.Point
	MinX, MaxX float64
	MinY, MaxY float64
}

// Len returns the number of points in the bucket.
func (b Bucket) Len() int { return len(b.Pts) }

// Corner identifies which 2-sided query a BBST pair answers; it maps
// one-to-one onto the four case-3 grid directions.
type Corner int

// The four 2-sided corner queries. The comment gives the constraint the
// corner cell imposes on a point s given window w.
const (
	SouthWest Corner = iota // s.x >= w.XMin && s.y >= w.YMin
	NorthWest               // s.x >= w.XMin && s.y <= w.YMax
	SouthEast               // s.x <= w.XMax && s.y >= w.YMin
	NorthEast               // s.x <= w.XMax && s.y <= w.YMax
)

// String names the corner for diagnostics.
func (c Corner) String() string {
	switch c {
	case SouthWest:
		return "southwest"
	case NorthWest:
		return "northwest"
	case SouthEast:
		return "southeast"
	case NorthEast:
		return "northeast"
	}
	return fmt.Sprintf("corner(%d)", int(c))
}

// node is one BBST node. Bucket ids with key equal to the node key
// live in the b-lists; the a-arrays hold every bucket of the subtree.
// Both are kept in two y-orders (by bucket MinY and by bucket MaxY).
type node struct {
	x            float64 // node key: the median bucket key
	bMinY, bMaxY []int32
	aMinY, aMaxY []int32
	left, right  *node
	fc           *fcNode // fractional-cascading bridges; nil unless enabled
}

// tree is one of the two BBSTs of a cell: keyed by bucket MinX
// (answers "key <= q") or by bucket MaxX (answers "key >= q").
type tree struct {
	root *node
}

// Pair bundles the shared bucket array and the two trees built over
// one cell's x-sorted points, i.e. (T^min_c, T^max_c) in the paper.
// A Pair built by Build is immediately queryable and, unless
// fractional cascading has been enabled, mutable through Insert and
// Delete (see maint.go).
type Pair struct {
	buckets []Bucket
	order   []int32 // live bucket ids in ascending (MinX, MaxX) order
	free    []int32 // dead bucket ids available for reuse
	npts    int     // live point count
	cap     int     // bucket capacity b = ceil(log2 m)
	tMin    tree
	tMax    tree
	fcOn    bool // fractional cascading enabled
	deep    bool // an insert descended past the depth hatch; rebuild trees
}

// BucketCap returns the bucket capacity for a dataset of m points:
// b = ceil(log2 m), at least 1 (Definition 3).
func BucketCap(m int) int {
	if m <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(m))))
}

// Build constructs the two BBSTs over points, which must already be
// sorted in ascending x order (the paper pre-sorts S by x). bucketCap
// is the bucket capacity b; use BucketCap(m) for the paper's setting.
// The slice is retained, not copied.
func Build(points []geom.Point, bucketCap int) (*Pair, error) {
	if bucketCap < 1 {
		return nil, fmt.Errorf("bbst: bucket capacity must be >= 1, got %d", bucketCap)
	}
	if !sort.SliceIsSorted(points, func(i, j int) bool { return points[i].X < points[j].X }) {
		return nil, fmt.Errorf("bbst: points must be sorted by x")
	}
	p := &Pair{cap: bucketCap, npts: len(points)}
	for start := 0; start < len(points); start += bucketCap {
		end := start + bucketCap
		if end > len(points) {
			end = len(points)
		}
		// Three-index subslice: a later append through this header can
		// never clobber the caller's array past end.
		b := bucketOf(points[start:end:end])
		p.order = append(p.order, int32(len(p.buckets)))
		p.buckets = append(p.buckets, b)
	}
	if len(p.buckets) > 0 {
		p.rebuildTrees()
	}
	return p, nil
}

// bucketOf wraps pts (ascending x, non-empty) in a Bucket with exact
// summaries. The slice is retained as-is.
func bucketOf(pts []geom.Point) Bucket {
	b := Bucket{
		Pts:  pts,
		MinX: pts[0].X, MaxX: pts[len(pts)-1].X,
		MinY: math.Inf(1), MaxY: math.Inf(-1),
	}
	for _, pt := range pts {
		if pt.Y < b.MinY {
			b.MinY = pt.Y
		}
		if pt.Y > b.MaxY {
			b.MaxY = pt.Y
		}
	}
	return b
}

// rebuildTrees bulk-rebuilds both trees over the live buckets — the
// build path, Compact, and the depth escape hatch of the incremental
// path all land here.
func (p *Pair) rebuildTrees() {
	p.deep = false
	if len(p.order) == 0 {
		p.tMin.root, p.tMax.root = nil, nil
		return
	}
	p.tMin.root = p.makeTree(func(b Bucket) float64 { return b.MinX })
	p.tMax.root = p.makeTree(func(b Bucket) float64 { return b.MaxX })
}

// makeTree builds one balanced tree over the live buckets using key(b)
// as the bucket's x-coordinate (Algorithm 2).
func (p *Pair) makeTree(key func(Bucket) float64) *node {
	byKey := append([]int32(nil), p.order...)
	sort.SliceStable(byKey, func(i, j int) bool {
		return key(p.buckets[byKey[i]]) < key(p.buckets[byKey[j]])
	})
	byMinY := append([]int32(nil), byKey...)
	sort.SliceStable(byMinY, func(i, j int) bool {
		return p.buckets[byMinY[i]].MinY < p.buckets[byMinY[j]].MinY
	})
	byMaxY := append([]int32(nil), byKey...)
	sort.SliceStable(byMaxY, func(i, j int) bool {
		return p.buckets[byMaxY[i]].MaxY < p.buckets[byMaxY[j]].MaxY
	})
	return p.makeNode(byKey, byMinY, byMaxY, key)
}

// makeNode recursively builds the subtree for the given bucket ids.
// byKey is sorted by the tree key; byMinY/byMaxY are the same ids in
// the two y-orders and become the node's a-arrays.
func (p *Pair) makeNode(byKey, byMinY, byMaxY []int32, key func(Bucket) float64) *node {
	if len(byKey) == 0 {
		return nil
	}
	u := &node{
		x:     key(p.buckets[byKey[len(byKey)/2]]),
		aMinY: byMinY,
		aMaxY: byMaxY,
	}
	// Partition each order into (< median), (== median), (> median),
	// preserving the respective sort order.
	var keyL, keyR []int32
	for _, id := range byKey {
		switch k := key(p.buckets[id]); {
		case k < u.x:
			keyL = append(keyL, id)
		case k > u.x:
			keyR = append(keyR, id)
		}
	}
	var minL, minR, maxL, maxR []int32
	for _, id := range byMinY {
		switch k := key(p.buckets[id]); {
		case k < u.x:
			minL = append(minL, id)
		case k > u.x:
			minR = append(minR, id)
		default:
			u.bMinY = append(u.bMinY, id)
		}
	}
	for _, id := range byMaxY {
		switch k := key(p.buckets[id]); {
		case k < u.x:
			maxL = append(maxL, id)
		case k > u.x:
			maxR = append(maxR, id)
		default:
			u.bMaxY = append(u.bMaxY, id)
		}
	}
	u.left = p.makeNode(keyL, minL, maxL, key)
	u.right = p.makeNode(keyR, minR, maxR, key)
	return u
}

// NumBuckets returns the number of live buckets in the cell.
func (p *Pair) NumBuckets() int { return len(p.order) }

// NumPoints returns the number of live points in the cell.
func (p *Pair) NumPoints() int { return p.npts }

// Cap returns the bucket capacity the pair was built with.
func (p *Pair) Cap() int { return p.cap }

// Buckets returns the live bucket summaries in ascending x order, for
// tests and diagnostics. The returned slice is freshly allocated (the
// internal table may contain free-listed holes).
func (p *Pair) Buckets() []Bucket {
	out := make([]Bucket, len(p.order))
	for i, id := range p.order {
		out[i] = p.buckets[id]
	}
	return out
}

// piece is one element of the canonical decomposition: a y-sorted
// bucket-id array together with the contiguous matching region
// [lo, hi) under the query's y-constraint.
type piece struct {
	ids    []int32
	lo, hi int32
}

// cornerQuery resolves a Corner plus window into the concrete
// traversal parameters.
func cornerQuery(c Corner, w geom.Rect) (qx, qy float64, xGE, yGE bool) {
	switch c {
	case SouthWest:
		return w.XMin, w.YMin, true, true
	case NorthWest:
		return w.XMin, w.YMax, true, false
	case SouthEast:
		return w.XMax, w.YMin, false, true
	case NorthEast:
		return w.XMax, w.YMax, false, false
	}
	panic("bbst: invalid corner")
}

// decompose walks the appropriate tree and appends to dst one piece
// per visited node: the node's own b-list for on-path nodes and the
// a-array for canonical subtrees, each restricted to the region that
// satisfies the y-constraint. It returns the extended slice and the
// total number of matching buckets.
func (p *Pair) decompose(c Corner, w geom.Rect, dst []piece) ([]piece, int) {
	if p.fcOn {
		return p.decomposeFC(c, w, dst)
	}
	qx, qy, xGE, yGE := cornerQuery(c, w)
	// The x-constraint "MaxX >= qx" is answered by the tree keyed on
	// MaxX and vice versa; both trees store both y-orders, so the y
	// side is independent.
	var u *node
	if xGE {
		u = p.tMax.root
	} else {
		u = p.tMin.root
	}
	total := 0
	addPiece := func(n *node, canonical bool) {
		var ids []int32
		if canonical {
			if yGE {
				ids = n.aMaxY
			} else {
				ids = n.aMinY
			}
		} else {
			if yGE {
				ids = n.bMaxY
			} else {
				ids = n.bMinY
			}
		}
		if len(ids) == 0 {
			return
		}
		var lo, hi int32
		if yGE {
			// Matching buckets have MaxY >= qy: a suffix of the
			// MaxY-ascending order.
			lo = int32(sort.Search(len(ids), func(i int) bool {
				return p.buckets[ids[i]].MaxY >= qy
			}))
			hi = int32(len(ids))
		} else {
			// Matching buckets have MinY <= qy: a prefix of the
			// MinY-ascending order.
			lo = 0
			hi = int32(sort.Search(len(ids), func(i int) bool {
				return p.buckets[ids[i]].MinY > qy
			}))
		}
		if lo >= hi {
			return
		}
		dst = append(dst, piece{ids: ids, lo: lo, hi: hi})
		total += int(hi - lo)
	}
	for u != nil {
		if xGE {
			if u.x < qx {
				u = u.right
				continue
			}
			// All buckets at u and in its right subtree satisfy
			// key >= qx.
			addPiece(u, false)
			if u.right != nil {
				addPiece(u.right, true)
			}
			if u.x == qx {
				break
			}
			u = u.left
		} else {
			if u.x > qx {
				u = u.left
				continue
			}
			addPiece(u, false)
			if u.left != nil {
				addPiece(u.left, true)
			}
			if u.x == qx {
				break
			}
			u = u.right
		}
	}
	return dst, total
}

// CountBuckets returns the number of buckets whose min/max summary
// satisfies the 2-sided constraint of corner c for window w. The
// paper's upper bound is µ(r, corner) = Cap() * CountBuckets(...).
// scratch, if non-nil, is reused to avoid per-query allocation.
func (p *Pair) CountBuckets(c Corner, w geom.Rect, scratch *[]piece) int {
	var buf []piece
	if scratch != nil {
		buf = (*scratch)[:0]
	}
	buf, total := p.decompose(c, w, buf)
	if scratch != nil {
		*scratch = buf
	}
	return total
}

// Mu returns the paper's approximate upper bound µ(r, corner) for the
// number of points of this cell inside w: bucket count times capacity.
func (p *Pair) Mu(c Corner, w geom.Rect, scratch *[]piece) int {
	return p.CountBuckets(c, w, scratch) * p.cap
}

// SampleSlot draws a uniform slot among the µ(r, corner) candidate
// slots of corner c (each matching bucket contributes exactly Cap()
// slots). It returns the point occupying the slot, or ok == false when
// the slot is empty (bucket shorter than Cap()) — the caller must then
// reject the whole sampling iteration to preserve uniformity. The
// caller is also responsible for the final w(r)-membership check.
func (p *Pair) SampleSlot(c Corner, w geom.Rect, r *rng.RNG, scratch *[]piece) (pt geom.Point, ok bool) {
	var buf []piece
	if scratch != nil {
		buf = (*scratch)[:0]
	}
	buf, total := p.decompose(c, w, buf)
	if scratch != nil {
		*scratch = buf
	}
	if total == 0 {
		return geom.Point{}, false
	}
	u := r.Intn(total * p.cap)
	bucketPos := u / p.cap
	slot := u % p.cap
	for _, pc := range buf {
		n := int(pc.hi - pc.lo)
		if bucketPos < n {
			b := p.buckets[pc.ids[int(pc.lo)+bucketPos]]
			if slot >= b.Len() {
				return geom.Point{}, false
			}
			return b.Pts[slot], true
		}
		bucketPos -= n
	}
	// Unreachable: total is the sum of piece sizes.
	panic("bbst: slot index out of decomposition")
}

// Scratch is an opaque reusable buffer for CountBuckets/Mu/SampleSlot.
// A zero value is ready to use; it must not be shared across
// goroutines.
type Scratch struct{ pieces []piece }

// CountBucketsS is CountBuckets using a Scratch buffer.
func (p *Pair) CountBucketsS(c Corner, w geom.Rect, s *Scratch) int {
	return p.CountBuckets(c, w, &s.pieces)
}

// MuS is Mu using a Scratch buffer.
func (p *Pair) MuS(c Corner, w geom.Rect, s *Scratch) int {
	return p.Mu(c, w, &s.pieces)
}

// SampleSlotS is SampleSlot using a Scratch buffer.
func (p *Pair) SampleSlotS(c Corner, w geom.Rect, r *rng.RNG, s *Scratch) (geom.Point, bool) {
	return p.SampleSlot(c, w, r, &s.pieces)
}

// Height returns the height of the taller of the two trees (root-only
// trees have height 1); 0 when the cell is empty. Used by tests to
// verify balance.
func (p *Pair) Height() int {
	h1 := height(p.tMin.root)
	h2 := height(p.tMax.root)
	if h1 > h2 {
		return h1
	}
	return h2
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NumNodes returns the node count of both trees combined; tests use it
// to verify the O(N / log m) node bound.
func (p *Pair) NumNodes() int { return countNodes(p.tMin.root) + countNodes(p.tMax.root) }

func countNodes(n *node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// SizeBytes estimates the heap footprint of the pair (buckets, nodes,
// and all id arrays), excluding the point storage itself, which a
// freshly built pair shares with the grid cell (callers that account
// for mutated, bucket-owned points add 16*NumPoints on top). Used by
// the memory experiment (Fig. 4).
func (p *Pair) SizeBytes() int {
	const bucketSize = 24 + 4*8     // Pts header + 4 float summaries
	const nodeSize = 8 + 4*24 + 2*8 // key + 4 slice headers + 2 pointers
	total := len(p.buckets)*bucketSize + 4*(len(p.order)+len(p.free))
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		total += nodeSize + 4*(len(n.bMinY)+len(n.bMaxY)+len(n.aMinY)+len(n.aMaxY))
		walk(n.left)
		walk(n.right)
	}
	walk(p.tMin.root)
	walk(p.tMax.root)
	return total
}

// ReportBuckets calls fn for every bucket whose summary matches the
// corner constraint of w, using the same canonical decomposition as
// counting. fn returning false stops the enumeration. The per-bucket
// point ranges let callers scan exactly the candidate points (each
// bucket holds at most Cap() of them).
func (p *Pair) ReportBuckets(c Corner, w geom.Rect, scratch *Scratch, fn func(Bucket) bool) {
	var buf []piece
	if scratch != nil {
		buf = scratch.pieces[:0]
	}
	buf, _ = p.decompose(c, w, buf)
	if scratch != nil {
		scratch.pieces = buf
	}
	for _, pc := range buf {
		for _, id := range pc.ids[pc.lo:pc.hi] {
			if !fn(p.buckets[id]) {
				return
			}
		}
	}
}

// ReportPoints calls fn for every point of the cell that satisfies the
// corner's 2-sided constraint exactly (bucket candidates are filtered
// point-by-point). fn returning false stops the enumeration.
func (p *Pair) ReportPoints(c Corner, w geom.Rect, scratch *Scratch, fn func(geom.Point) bool) {
	qx, qy, xGE, yGE := cornerQuery(c, w)
	match := func(pt geom.Point) bool {
		if xGE && pt.X < qx {
			return false
		}
		if !xGE && pt.X > qx {
			return false
		}
		if yGE && pt.Y < qy {
			return false
		}
		if !yGE && pt.Y > qy {
			return false
		}
		return true
	}
	stopped := false
	p.ReportBuckets(c, w, scratch, func(b Bucket) bool {
		for _, pt := range b.Pts {
			if match(pt) {
				if !fn(pt) {
					stopped = true
					return false
				}
			}
		}
		return true
	})
	_ = stopped
}
