package bbst

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

// buildBoth returns the same point set indexed with and without
// fractional cascading.
func buildBoth(t testing.TB, pts []geom.Point, cap int) (plain, fc *Pair) {
	t.Helper()
	var err error
	plain, err = Build(pts, cap)
	if err != nil {
		t.Fatal(err)
	}
	fc, err = Build(pts, cap)
	if err != nil {
		t.Fatal(err)
	}
	fc.EnableFractionalCascading()
	return plain, fc
}

func TestFCIdempotentAndEmpty(t *testing.T) {
	p, err := Build(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableFractionalCascading()
	if p.HasFractionalCascading() {
		t.Fatal("empty pair should not enable FC")
	}
	pts := sortedPoints(rng.New(1), 100, 10)
	p2, err := Build(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2.EnableFractionalCascading()
	p2.EnableFractionalCascading() // second call must be a no-op
	if !p2.HasFractionalCascading() {
		t.Fatal("FC not enabled")
	}
	if p2.SizeBytesFC() <= 0 {
		t.Fatal("FC bridges should have positive size")
	}
}

// TestFCCountEquivalence: the cascaded decomposition must return
// exactly the same counts as the binary-search decomposition for all
// corners and random windows.
func TestFCCountEquivalence(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{1, 7, 64, 500, 3000} {
		pts := sortedPoints(r, n, 50)
		plain, fc := buildBoth(t, pts, BucketCap(n))
		var s1, s2 Scratch
		for trial := 0; trial < 400; trial++ {
			q := geom.Point{X: r.Range(-5, 55), Y: r.Range(-5, 55)}
			w := geom.Window(q, r.Range(0.1, 20))
			for _, c := range allCorners {
				want := plain.CountBucketsS(c, w, &s1)
				got := fc.CountBucketsS(c, w, &s2)
				if got != want {
					t.Fatalf("n=%d %v: FC count %d != plain %d (w=%v)", n, c, got, want, w)
				}
			}
		}
	}
}

func TestFCWithDuplicateYKeys(t *testing.T) {
	// Equal y keys stress the >= / > boundary of the bridges.
	r := rng.New(3)
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, 20), Y: float64(i % 4), ID: int32(i)}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	plain, fc := buildBoth(t, pts, 8)
	for trial := 0; trial < 500; trial++ {
		// Windows whose y edges land exactly on the duplicated keys.
		q := geom.Point{X: r.Range(0, 20), Y: float64(r.Intn(5))}
		w := geom.Window(q, float64(r.Intn(3))+0.0) // integer extents hit exact keys
		if w.YMax == w.YMin {
			w.YMax++
		}
		for _, c := range allCorners {
			if got, want := fc.CountBuckets(c, w, nil), plain.CountBuckets(c, w, nil); got != want {
				t.Fatalf("%v: FC %d != plain %d (w=%v)", c, got, want, w)
			}
		}
	}
}

func TestFCSampleEquivalence(t *testing.T) {
	// The FC decomposition must expose the identical slot universe:
	// with the same RNG stream both samplers return the same points.
	r := rng.New(4)
	pts := sortedPoints(r, 600, 30)
	plain, fc := buildBoth(t, pts, BucketCap(600))
	for trial := 0; trial < 300; trial++ {
		q := geom.Point{X: r.Range(0, 30), Y: r.Range(0, 30)}
		w := geom.Window(q, 5)
		for _, c := range allCorners {
			r1 := rng.New(uint64(trial))
			r2 := rng.New(uint64(trial))
			p1, ok1 := plain.SampleSlot(c, w, r1, nil)
			p2, ok2 := fc.SampleSlot(c, w, r2, nil)
			if ok1 != ok2 || (ok1 && p1 != p2) {
				t.Fatalf("%v: FC sample (%v,%v) != plain (%v,%v)", c, p2, ok2, p1, ok1)
			}
		}
	}
}

func TestFCQuickEquivalence(t *testing.T) {
	f := func(seed uint64, qx, qy, l float64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(300)
		pts := sortedPoints(rr, n, 40)
		plain, err := Build(pts, BucketCap(n))
		if err != nil {
			return false
		}
		fc, err := Build(pts, BucketCap(n))
		if err != nil {
			return false
		}
		fc.EnableFractionalCascading()
		q := geom.Point{X: mod(qx, 40), Y: mod(qy, 40)}
		w := geom.Window(q, mod(l, 15)+0.01)
		for _, c := range allCorners {
			if plain.CountBuckets(c, w, nil) != fc.CountBuckets(c, w, nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func mod(v, m float64) float64 {
	x := v - float64(int(v/m))*m
	if x < 0 {
		x += m
	}
	return x
}

func BenchmarkCountPlain(b *testing.B) {
	r := rng.New(5)
	n := 1 << 15
	pts := sortedPoints(r, n, 1000)
	p, _ := Build(pts, BucketCap(n))
	w := geom.Window(geom.Point{X: 500, Y: 500}, 100)
	var s Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.CountBucketsS(SouthWest, w, &s)
	}
}

func BenchmarkCountFC(b *testing.B) {
	r := rng.New(5)
	n := 1 << 15
	pts := sortedPoints(r, n, 1000)
	p, _ := Build(pts, BucketCap(n))
	p.EnableFractionalCascading()
	w := geom.Window(geom.Point{X: 500, Y: 500}, 100)
	var s Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.CountBucketsS(SouthWest, w, &s)
	}
}
