package bbst

import (
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// FuzzBucketOps drives random insert/delete sequences against the
// in-place maintenance path and checks, after every operation, the
// full structural invariants plus agreement with a plain point-list
// oracle; at the end, exact corner queries are cross-checked against a
// from-scratch bulk build of the surviving points. Each op byte picks
// insert vs delete (and which victim); coordinates come from a PCG
// stream seeded by the fuzzed seed, so the corpus stays tiny while
// covering splits, merges, steals, bucket death, and the depth hatch.
func FuzzBucketOps(f *testing.F) {
	f.Add(uint64(1), uint8(4), []byte{0x00})
	f.Add(uint64(2), uint8(1), []byte{0x10, 0x91, 0x22, 0xb3, 0x44, 0xd5})
	f.Add(uint64(3), uint8(5), []byte("insert-delete-insert-delete-churn"))
	f.Add(uint64(4), uint8(7), []byte{
		0x01, 0x81, 0x02, 0x82, 0x03, 0x83, 0x04, 0x84,
		0x05, 0x85, 0x06, 0x86, 0x07, 0x87, 0x08, 0x88,
	})
	f.Add(uint64(42), uint8(3), []byte{0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x7f, 0x7f})
	f.Fuzz(func(t *testing.T, seed uint64, capRaw uint8, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		bucketCap := int(capRaw)%12 + 1
		r := rng.New(seed)
		// Seed population: a bulk build over 0..n points.
		n := r.Intn(64)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: r.Range(0, 16), Y: r.Range(0, 16), ID: int32(i)}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		p, err := Build(pts, bucketCap)
		if err != nil {
			t.Fatal(err)
		}
		live := append([]geom.Point(nil), pts...)
		nextID := int32(1000)
		for step, op := range ops {
			if op&0x80 != 0 && len(live) > 0 {
				i := int(op&0x7f) % len(live)
				found, err := p.Delete(live[i])
				if err != nil {
					t.Fatalf("step %d delete: %v", step, err)
				}
				if !found {
					t.Fatalf("step %d: live point %v not found", step, live[i])
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				// Low bits shape the coordinate distribution so equal and
				// boundary values (duplicate keys, equal-y runs) come up.
				var pt geom.Point
				switch op & 0x03 {
				case 0:
					pt = geom.Point{X: r.Range(0, 16), Y: r.Range(0, 16)}
				case 1:
					pt = geom.Point{X: float64(int(op>>2) % 8), Y: r.Range(0, 16)}
				case 2:
					pt = geom.Point{X: r.Range(0, 16), Y: float64(int(op>>2) % 8)}
				default:
					pt = geom.Point{X: float64(int(op>>4) % 4), Y: float64(int(op>>2) % 4)}
				}
				pt.ID = nextID
				nextID++
				if err := p.Insert(pt); err != nil {
					t.Fatalf("step %d insert: %v", step, err)
				}
				live = append(live, pt)
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if p.NumPoints() != len(live) {
				t.Fatalf("step %d: NumPoints %d, oracle %d", step, p.NumPoints(), len(live))
			}
		}
		// Final oracle sweep: exact queries vs a from-scratch build.
		sorted := append([]geom.Point(nil), live...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
		fresh, err := Build(sorted, bucketCap)
		if err != nil {
			t.Fatal(err)
		}
		var s1, s2 Scratch
		for trial := 0; trial < 8; trial++ {
			w := geom.Window(geom.Point{X: r.Range(0, 16), Y: r.Range(0, 16)}, r.Range(0.2, 8))
			for _, c := range allCorners {
				got := map[int32]bool{}
				p.ReportPoints(c, w, &s1, func(pt geom.Point) bool { got[pt.ID] = true; return true })
				want := map[int32]bool{}
				fresh.ReportPoints(c, w, &s2, func(pt geom.Point) bool { want[pt.ID] = true; return true })
				if len(got) != len(want) {
					t.Fatalf("%v: churned %d points, fresh %d", c, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("%v: missing point %d", c, id)
					}
				}
				exact := 0
				for _, pt := range live {
					if cornerPredicate(c, w)(pt) {
						exact++
					}
				}
				if mu := p.MuS(c, w, &s1); exact > mu {
					t.Fatalf("%v: exact %d > µ %d", c, exact, mu)
				}
			}
		}
	})
}
